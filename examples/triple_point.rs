//! Distributed triple-point shock interaction: four simulated GPU ranks
//! exchanging packed halos through the message-passing runtime — the
//! paper's weak-scaling workload at miniature scale, with an ASCII
//! rendering of the adaptive hierarchy following the shock.
//!
//! ```text
//! cargo run --release --example triple_point
//! ```

use rbamr::geometry::IntVector;
use rbamr::hydro::{HydroConfig, HydroSim, Placement};
use rbamr::netsim::Cluster;
use rbamr::perfmodel::{Category, Machine};
use rbamr::problems::triple_point::{triple_point_regions, TRIPLE_POINT_EXTENT};

fn render_hierarchy(sim: &HydroSim) {
    const COLS: i64 = 70;
    const ROWS: i64 = 30;
    let h = sim.hierarchy();
    let domain = h.level_domain(0).bounding();
    println!("hierarchy coverage ('.' level 0, '+' level 1, '#' level 2):");
    for r in (0..ROWS).rev() {
        let mut line = String::new();
        for c in 0..COLS {
            let x = domain.lo.x + c * domain.size().x / COLS;
            let y = domain.lo.y + r * domain.size().y / ROWS;
            let mut ch = '.';
            for l in 1..h.num_levels() {
                let ratio = h.cumulative_ratio(l);
                let p = IntVector::new(x, y).scale(ratio);
                if h.level(l).covered().contains(p) {
                    ch = if l == 1 { '+' } else { '#' };
                }
            }
            line.push(ch);
        }
        println!("|{line}|");
    }
}

fn main() {
    let nranks = 4;
    let cluster = Cluster::new(Machine::titan());
    println!("running triple point on {nranks} simulated Titan ranks...\n");

    let results = cluster.run(nranks, |comm| {
        let mut config = HydroConfig { regrid_interval: 5, ..HydroConfig::default() };
        config.regrid.max_patch_size = 64;
        let mut sim = HydroSim::new(
            Machine::titan(),
            Placement::Device,
            comm.clock().clone(),
            TRIPLE_POINT_EXTENT,
            (112, 48),
            2,
            2,
            config,
            triple_point_regions(),
            comm.rank(),
            comm.size(),
        );
        sim.initialize(Some(&comm));
        for _ in 0..30 {
            sim.step(Some(&comm));
        }
        let summary = sim.summary(Some(&comm));
        let local_cells: i64 = (0..sim.hierarchy().num_levels())
            .map(|l| sim.hierarchy().level(l).local().iter().map(|p| p.num_cells()).sum::<i64>())
            .sum();
        // Rank 0 renders the hierarchy.
        let render = if comm.rank() == 0 {
            render_hierarchy(&sim);
            true
        } else {
            false
        };
        let _ = render;
        (summary, local_cells, sim.time())
    });

    println!("\nper-rank results:");
    for r in &results {
        println!(
            "  rank {}: {:>6} local cells, hydro {:>8.3} ms, halo {:>7.3} ms, regrid {:>7.3} ms",
            r.rank,
            r.value.1,
            r.time.get(Category::HydroKernel) * 1e3,
            r.time.get(Category::HaloExchange) * 1e3,
            r.time.get(Category::Regrid) * 1e3,
        );
    }
    let job = Cluster::job_time(&results);
    let (summary, _, t_end) = results[0].value;
    println!("\nsimulated t = {t_end:.4}");
    println!("global mass = {:.10}, total energy = {:.10}", summary.mass, summary.total_energy());
    println!(
        "job virtual time: total {:.3} ms (hydrodynamics {:.3} ms, sync {:.3} ms, regrid {:.3} ms)",
        job.total() * 1e3,
        job.hydrodynamics() * 1e3,
        job.get(Category::Synchronize) * 1e3,
        job.get(Category::Regrid) * 1e3,
    );
}
