//! Framework-level tour of the AMR machinery, without hydrodynamics:
//! build a hierarchy by hand, flag a moving feature, watch
//! Berger–Rigoutsos clustering and load balancing track it, and inspect
//! the tag-compression transfer savings (the Section IV-C
//! optimisation).
//!
//! ```text
//! cargo run --release --example amr_hierarchy
//! ```

use rbamr::amr::ops::ConservativeCellRefine;
use rbamr::amr::regrid::{CellTagger, TransferSpec};
use rbamr::amr::{
    balance, GridGeometry, HostDataFactory, PatchHierarchy, RegridParams, Regridder, TagBitmap,
    VariableRegistry,
};
use rbamr::geometry::{BoxList, Centring, GBox, IntVector};
use std::sync::Arc;

/// Tags a circular front whose centre moves with "time".
struct MovingFront {
    t: f64,
}

impl CellTagger for MovingFront {
    fn tag_cells(&self, h: &PatchHierarchy, level: usize, _time: f64) -> Vec<TagBitmap> {
        let centre = (20.0 + 40.0 * self.t, 32.0);
        let radius = 10.0 + 6.0 * self.t;
        h.level(level)
            .local()
            .iter()
            .map(|p| {
                let cells: Vec<i32> = p
                    .cell_box()
                    .iter()
                    .map(|q| {
                        if level > 0 {
                            return 0;
                        }
                        let d = ((q.x as f64 - centre.0).powi(2) + (q.y as f64 - centre.1).powi(2))
                            .sqrt();
                        i32::from((d - radius).abs() < 2.5)
                    })
                    .collect();
                TagBitmap::compress(p.cell_box(), &cells)
            })
            .collect()
    }
}

fn render(h: &PatchHierarchy) {
    const COLS: i64 = 64;
    const ROWS: i64 = 32;
    let domain = h.level_domain(0).bounding();
    for r in (0..ROWS).rev() {
        let mut line = String::new();
        for c in 0..COLS {
            let x = domain.lo.x + c * domain.size().x / COLS;
            let y = domain.lo.y + r * domain.size().y / ROWS;
            let p = IntVector::new(x, y).scale(h.cumulative_ratio(1));
            let fine = h.num_levels() > 1 && h.level(1).covered().contains(p);
            line.push(if fine { '#' } else { '.' });
        }
        println!("|{line}|");
    }
}

fn main() {
    let mut registry = VariableRegistry::new(Arc::new(HostDataFactory::new()));
    let q = registry.register("q", Centring::Cell, IntVector::uniform(2));

    let domain = GBox::from_coords(0, 0, 64, 64);
    let mut hierarchy = PatchHierarchy::new(
        GridGeometry::unit(1.0 / 64.0),
        BoxList::from_box(domain),
        IntVector::uniform(2),
        2,
        0,
        1,
    );
    hierarchy.set_level(0, vec![domain], vec![0], &registry);

    let params = RegridParams { max_patch_size: 32, ..RegridParams::default() };
    let regridder = Regridder::new(params);
    let specs = [TransferSpec { var: q, refine_op: Arc::new(ConservativeCellRefine) }];

    for frame in 0..3 {
        let t = frame as f64 * 0.5;
        let tagger = MovingFront { t };

        // Show the compression statistics the paper's Section IV-C
        // optimisation is about.
        let bitmaps = tagger.tag_cells(&hierarchy, 0, t);
        let (mut raw, mut compressed) = (0u64, 0u64);
        for bm in &bitmaps {
            raw += bm.uncompressed_bytes();
            compressed += bm.transfer_bytes();
        }

        regridder.regrid(&mut hierarchy, &registry, &tagger, &specs, None, t);

        println!("\n=== t = {t} ===");
        println!(
            "tag transfer: {raw} B raw -> {compressed} B compressed ({}x saved)",
            raw / compressed.max(1)
        );
        let lvl1 = hierarchy.num_levels() > 1;
        if lvl1 {
            let l1 = hierarchy.level(1);
            println!(
                "level 1: {} patches, {} cells; load split over 4 hypothetical ranks: {:?}",
                l1.num_patches(),
                l1.num_cells(),
                balance::partition_sfc(l1.global_boxes(), 4)
            );
        }
        render(&hierarchy);
    }
}
