//! Sod shock tube validated against the exact Riemann solution.
//!
//! Runs the CPU baseline and the GPU-resident build side by side,
//! prints the density profile along the midline as ASCII, and reports
//! the L1 error of each against the exact solution — the two builds
//! must agree to machine precision with each other.
//!
//! ```text
//! cargo run --release --example sod_shock_tube
//! ```

use rbamr::hydro::{HydroConfig, HydroSim, Placement};
use rbamr::perfmodel::{Clock, Machine};
use rbamr::problems::sod::{sod_exact, sod_l1_error, sod_regions};

fn build(placement: Placement) -> HydroSim {
    let machine = match placement {
        Placement::Host => Machine::ipa_cpu_node(),
        _ => Machine::ipa_gpu(),
    };
    let config = HydroConfig { regrid_interval: 5, ..HydroConfig::default() };
    let mut sim = HydroSim::new(
        machine,
        placement,
        Clock::new(),
        (1.0, 1.0),
        (96, 32),
        2,
        2,
        config,
        sod_regions(),
        0,
        1,
    );
    sim.initialize(None);
    sim
}

fn ascii_profile(profile: &[(f64, f64)], exact: &[(f64, f64)]) {
    const ROWS: usize = 16;
    const COLS: usize = 72;
    let mut grid = vec![vec![' '; COLS]; ROWS];
    let plot = |grid: &mut Vec<Vec<char>>, data: &[(f64, f64)], ch: char| {
        for &(x, rho) in data {
            let col = ((x * COLS as f64) as usize).min(COLS - 1);
            let row = (((1.05 - rho) / 1.05 * ROWS as f64) as usize).min(ROWS - 1);
            if grid[row][col] == ' ' || ch == '*' {
                grid[row][col] = ch;
            }
        }
    };
    plot(&mut grid, exact, '.');
    plot(&mut grid, profile, '*');
    println!("density profile ('*' computed, '.' exact):");
    for row in grid {
        println!("|{}|", row.into_iter().collect::<String>());
    }
}

fn main() {
    let t_end = 0.15;

    let mut host = build(Placement::Host);
    let host_steps = host.run_to_time(t_end, None);
    let host_profile = host.density_profile();

    let mut dev = build(Placement::Device);
    let dev_steps = dev.run_to_time(t_end, None);
    let dev_profile = dev.density_profile();

    println!("host  : {host_steps} steps to t = {:.4}", host.time());
    println!("device: {dev_steps} steps to t = {:.4}\n", dev.time());

    // Host and device builds run identical arithmetic.
    let max_div = host_profile
        .iter()
        .zip(&dev_profile)
        .map(|((_, a), (_, b))| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("max |host - device| density divergence: {max_div:.3e}");

    let exact = sod_exact();
    let exact_profile: Vec<(f64, f64)> =
        host_profile.iter().map(|&(x, _)| (x, exact.sample((x - 0.5) / host.time()).rho)).collect();
    ascii_profile(&host_profile, &exact_profile);

    let err_host = sod_l1_error(&host_profile, host.time());
    let err_dev = sod_l1_error(&dev_profile, dev.time());
    println!("\nL1 density error vs exact Riemann solution:");
    println!("  host   : {err_host:.5}");
    println!("  device : {err_dev:.5}");
    println!(
        "\nstar state: p* = {:.5} (exact 0.30313), u* = {:.5} (exact 0.92745)",
        exact.p_star, exact.u_star
    );
}
