//! Sedov-like point blast with AMR tracking the expanding shock,
//! checkpointing mid-run and dumping VTK output — the full
//! production-workflow surface of the library in one example.
//!
//! ```text
//! cargo run --release --example sedov_blast
//! ```

use rbamr::hydro::{HydroConfig, HydroSim, Placement};
use rbamr::perfmodel::{Clock, Machine};
use rbamr::problems::sedov::sedov_regions;

fn build() -> HydroSim {
    let config = HydroConfig { regrid_interval: 5, ..HydroConfig::default() };
    let mut sim = HydroSim::new(
        Machine::ipa_gpu(),
        Placement::Device,
        Clock::new(),
        (1.0, 1.0),
        (64, 64),
        2,
        2,
        config,
        sedov_regions(1.0, 0.08, 8.0),
        0,
        1,
    );
    sim.initialize(None);
    sim
}

fn main() {
    let mut sim = build();
    println!("Sedov blast, 64^2 base grid, 2 levels, device-resident\n");

    for _ in 0..15 {
        sim.step(None);
    }
    let s = sim.summary(None);
    println!(
        "t = {:.4}: levels = {}, cells = {}, KE share = {:.1}%",
        sim.time(),
        sim.hierarchy().num_levels(),
        sim.hierarchy().total_cells(),
        s.kinetic_energy / s.total_energy() * 100.0
    );

    // Checkpoint, resume in a fresh simulation, continue.
    let db = sim.save_checkpoint();
    let mut resumed = build();
    resumed.restore_checkpoint(&db, None);
    for _ in 0..15 {
        resumed.step(None);
    }
    let s = resumed.summary(None);
    println!(
        "after restart +15 steps: t = {:.4}, KE share = {:.1}%",
        resumed.time(),
        s.kinetic_energy / s.total_energy() * 100.0
    );

    // VTK dump for VisIt/ParaView.
    let dir = std::env::temp_dir().join("rbamr_sedov_dump");
    let n = resumed.write_vtk_dump(&dir).expect("vtk dump");
    println!("wrote {n} VTK patch files to {}", dir.display());

    // The expanding ring of refinement.
    let covered = resumed.hierarchy().level(1).covered();
    let centre = rbamr::geometry::IntVector::new(64, 64); // level-1 indices
    println!(
        "refined region: {} fine cells; centre cell refined: {}",
        covered.num_cells(),
        covered.contains(centre),
    );
}
