//! The CleverLeaf driver — a command-line front end over the full
//! library, the shape a downstream user actually runs:
//!
//! ```text
//! cargo run --release --example cleverleaf -- \
//!     [--problem sod|triple|sedov | --deck clover.in] [--cells N] [--levels L] \
//!     [--placement host|device|copyback] [--ranks R] \
//!     [--metadata replicated|partitioned] \
//!     [--steps N | --time T] [--vtk DIR] [--summary-every N]
//! ```
//!
//! Examples:
//!
//! ```text
//! cargo run --release --example cleverleaf -- --problem sod --cells 128 --steps 100
//! cargo run --release --example cleverleaf -- --problem triple --ranks 4 --time 0.5
//! cargo run --release --example cleverleaf -- --placement copyback --steps 20
//! ```

use rbamr::hydro::{HydroConfig, HydroSim, MetadataMode, Placement, RegionInit};
use rbamr::netsim::Cluster;
use rbamr::perfmodel::{Category, Machine};
use rbamr::problems::{parse_deck, sedov::sedov_regions, sod_regions, triple_point_regions};
use std::path::PathBuf;

/// A parsed problem setup: physical extent, coarse cells, regions.
type Setup = ((f64, f64), (i64, i64), Vec<RegionInit>);

#[derive(Clone, Debug)]
struct Args {
    problem: String,
    deck: Option<PathBuf>,
    cells: i64,
    levels: usize,
    placement: Placement,
    ranks: usize,
    steps: Option<usize>,
    t_end: Option<f64>,
    vtk: Option<PathBuf>,
    summary_every: usize,
    metadata: Option<MetadataMode>,
}

impl Args {
    fn parse() -> Result<Args, String> {
        let mut args = Args {
            problem: "sod".into(),
            deck: None,
            cells: 64,
            levels: 3,
            placement: Placement::Device,
            ranks: 1,
            steps: None,
            t_end: None,
            vtk: None,
            summary_every: 10,
            metadata: None,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut value = || it.next().ok_or(format!("{flag} needs a value"));
            match flag.as_str() {
                "--problem" => args.problem = value()?,
                "--deck" => args.deck = Some(PathBuf::from(value()?)),
                "--cells" => args.cells = value()?.parse().map_err(|e| format!("{e}"))?,
                "--levels" => args.levels = value()?.parse().map_err(|e| format!("{e}"))?,
                "--ranks" => args.ranks = value()?.parse().map_err(|e| format!("{e}"))?,
                "--steps" => args.steps = Some(value()?.parse().map_err(|e| format!("{e}"))?),
                "--time" => args.t_end = Some(value()?.parse().map_err(|e| format!("{e}"))?),
                "--vtk" => args.vtk = Some(PathBuf::from(value()?)),
                "--summary-every" => {
                    args.summary_every = value()?.parse().map_err(|e| format!("{e}"))?
                }
                "--placement" => {
                    args.placement = match value()?.as_str() {
                        "host" => Placement::Host,
                        "device" => Placement::Device,
                        "copyback" => Placement::DeviceCopyBack,
                        other => return Err(format!("unknown placement {other}")),
                    }
                }
                "--metadata" => {
                    args.metadata = Some(match value()?.as_str() {
                        "replicated" => MetadataMode::Replicated,
                        "partitioned" => MetadataMode::Partitioned,
                        other => return Err(format!("unknown metadata mode {other}")),
                    })
                }
                "--help" | "-h" => {
                    println!("see the module docs at the top of examples/cleverleaf.rs");
                    std::process::exit(0);
                }
                other => return Err(format!("unknown flag {other}")),
            }
        }
        Ok(args)
    }

    fn setup(&mut self) -> Result<Setup, String> {
        if let Some(path) = &self.deck {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{e}"))?;
            let deck = parse_deck(&text).map_err(|e| format!("{e}"))?;
            if !deck.ignored.is_empty() {
                eprintln!("(deck keys ignored: {})", deck.ignored.join(", "));
            }
            self.levels = deck.max_levels;
            if self.steps.is_none() && self.t_end.is_none() {
                self.steps = deck.end_step;
                self.t_end = deck.end_time;
            }
            // CLI `--metadata` wins over the deck's `metadata_mode` key.
            if self.metadata.is_none() {
                self.metadata = Some(deck.metadata_mode);
            }
            self.problem = format!("deck {}", path.display());
            return Ok((deck.extent, deck.cells, deck.regions));
        }
        match self.problem.as_str() {
            "sod" => Ok(((1.0, 1.0), (self.cells, self.cells), sod_regions())),
            "triple" => {
                let ny = self.cells;
                Ok(((7.0, 3.0), (ny * 7 / 3, ny), triple_point_regions()))
            }
            "sedov" => Ok(((1.0, 1.0), (self.cells, self.cells), sedov_regions(1.0, 0.06, 8.0))),
            other => Err(format!("unknown problem {other} (sod|triple|sedov)")),
        }
    }
}

fn main() {
    let args = match Args::parse() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let mut args = args;
    let (extent, cells, regions) = match args.setup() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    if args.steps.is_none() && args.t_end.is_none() {
        args.steps = Some(50);
    }
    let machine = match args.placement {
        Placement::Host => Machine::ipa_cpu_node(),
        _ => Machine::ipa_gpu(),
    };
    println!(
        "CleverLeaf: {} on {}x{} cells, {} levels, {:?}, {} rank(s)",
        args.problem, cells.0, cells.1, args.levels, args.placement, args.ranks
    );

    let cluster = Cluster::new(machine.clone());
    let a = args.clone();
    let results = cluster.run(args.ranks, move |comm| {
        let comm_opt = if comm.size() > 1 { Some(&comm) } else { None };
        let mut config =
            HydroConfig { metadata_mode: a.metadata.unwrap_or_default(), ..HydroConfig::default() };
        if comm.size() > 1 {
            let max_patch =
                (cells.0 as f64 / (comm.size() as f64).sqrt() / 2.0).clamp(16.0, 512.0) as i64;
            config.max_patch_size = max_patch;
            config.regrid.max_patch_size = max_patch;
        }
        let mut sim = HydroSim::new(
            machine.clone(),
            a.placement,
            comm.clock().clone(),
            extent,
            cells,
            a.levels,
            2,
            config,
            regions.clone(),
            comm.rank(),
            comm.size(),
        );
        sim.initialize(comm_opt);

        let mut steps_done = 0usize;
        loop {
            let finished = match (a.steps, a.t_end) {
                (Some(n), _) => steps_done >= n,
                (_, Some(t)) => sim.time() >= t,
                _ => unreachable!(),
            };
            if finished {
                break;
            }
            let stats = sim.step(comm_opt);
            steps_done += 1;
            if comm.rank() == 0 && steps_done.is_multiple_of(a.summary_every) {
                println!(
                    "  step {:>5}  t = {:.5}  dt = {:.3e}  levels = {}  cells = {}",
                    steps_done, stats.time, stats.dt, stats.levels, stats.total_cells
                );
            }
        }
        let summary = sim.summary(comm_opt);
        if let Some(dir) = &a.vtk {
            if comm.size() == 1 {
                if comm.rank() == 0 {
                    let n = sim.write_vtk_dump(dir).expect("vtk dump failed");
                    println!("wrote {n} VTK files to {}", dir.display());
                }
            } else {
                let n = sim.write_vtk_dump_distributed(dir, &comm).expect("vtk dump failed");
                if comm.rank() == 0 {
                    println!("wrote {n} VTK files to {}", dir.display());
                }
            }
        }
        (summary, sim.time(), steps_done)
    });

    let (summary, t_end, steps) = results[0].value;
    let job = Cluster::job_time(&results);
    println!("\nfinished: {steps} steps to t = {t_end:.5}");
    println!("mass = {:.10}  total energy = {:.10}", summary.mass, summary.total_energy());
    println!(
        "modelled runtime: {:.3} s (hydro {:.3}, dt {:.3}, sync {:.3}, regrid {:.3})",
        job.total(),
        job.hydrodynamics(),
        job.get(Category::Timestep),
        job.get(Category::Synchronize),
        job.get(Category::Regrid),
    );
}
