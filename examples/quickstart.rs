//! Quickstart: run a GPU-resident AMR shock-tube simulation and print
//! per-step progress plus the residency evidence (PCIe traffic counters).
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rbamr::hydro::{HydroConfig, HydroSim, Placement};
use rbamr::perfmodel::{Category, Clock, Machine};
use rbamr::problems::sod_regions;

fn main() {
    // Build a Sod shock tube on a 64^2 coarse grid with two levels of
    // refinement (ratio 2) — data resident on a simulated K20x.
    let config = HydroConfig { regrid_interval: 5, ..HydroConfig::default() };
    let mut sim = HydroSim::new(
        Machine::ipa_gpu(),
        Placement::Device,
        Clock::new(),
        (1.0, 1.0),
        (64, 64),
        3,
        2,
        config,
        sod_regions(),
        0,
        1,
    );
    sim.initialize(None);
    println!(
        "initialised: {} levels, {} cells total",
        sim.hierarchy().num_levels(),
        sim.hierarchy().total_cells()
    );

    let device = sim.device().expect("device build").clone();
    device.reset_transfer_stats();

    for _ in 0..20 {
        let stats = sim.step(None);
        if (stats.step + 1) % 5 == 0 {
            println!(
                "step {:>3}  t = {:.5}  dt = {:.2e}  levels = {}  cells = {}",
                stats.step + 1,
                stats.time,
                stats.dt,
                stats.levels,
                stats.total_cells
            );
        }
    }

    // Residency: after 20 steps the only device<->host traffic is dt
    // scalars and the compressed tag bitmaps at the four regrids.
    let s = device.stats();
    println!("\n--- residency evidence over 20 steps ---");
    println!("kernel launches : {}", s.kernel_launches);
    println!("H2D bytes       : {}", s.h2d_bytes);
    println!("D2H bytes       : {}", s.d2h_bytes);
    println!("device memory   : {:.1} MiB", s.allocated_bytes as f64 / (1 << 20) as f64);

    let t = sim.clock().snapshot();
    println!("\n--- modelled K20x time by component ---");
    for c in Category::ALL {
        println!("{:<14}: {:>10.4} ms", c.name(), t.get(c) * 1e3);
    }
    println!("{:<14}: {:>10.4} ms", "TOTAL", t.total() * 1e3);

    println!("\n--- mesh statistics ---");
    print!("{}", rbamr::amr::hierarchy_stats(sim.hierarchy()).table());

    let summary = sim.summary(None);
    println!("\nconserved mass = {:.12}", summary.mass);
    println!("total energy   = {:.12}", summary.total_energy());
}
