//! # rbamr — Resident Block-Structured AMR on (Simulated) GPUs
//!
//! A Rust reproduction of *Beckingsale, Gaudin, Herdman, Jarvis —
//! "Resident Block-Structured Adaptive Mesh Refinement on Thousands of
//! Graphics Processing Units"* (ICPP 2015): a block-structured AMR
//! framework in the style of SAMRAI, device-resident patch data with
//! data-parallel pack/refine/coarsen operators (the paper's
//! contribution), and the CleverLeaf compressible-hydrodynamics
//! mini-app driving it, with CPU-baseline and GPU-resident builds that
//! produce bit-identical physics.
//!
//! Hardware the paper used (K20x GPUs, MPI on Titan) is substituted by
//! simulated equivalents with calibrated cost models — see `DESIGN.md`
//! for the substitution table and `EXPERIMENTS.md` for the
//! paper-vs-reproduction results.
//!
//! ## Quickstart
//!
//! ```
//! use rbamr::hydro::{HydroConfig, HydroSim, Placement};
//! use rbamr::perfmodel::{Clock, Machine};
//! use rbamr::problems::sod_regions;
//!
//! // A GPU-resident Sod shock tube on a 32^2 base grid, 2 levels.
//! let mut sim = HydroSim::new(
//!     Machine::ipa_gpu(),
//!     Placement::Device,
//!     Clock::new(),
//!     (1.0, 1.0),
//!     (32, 32),
//!     2,
//!     2,
//!     HydroConfig::default(),
//!     sod_regions(),
//!     0,
//!     1,
//! );
//! sim.initialize(None);
//! let stats = sim.run_steps(10, None);
//! assert!(stats.time > 0.0);
//! assert_eq!(sim.hierarchy().num_levels(), 2); // refinement tracks the shock
//! ```

/// Index-space calculus (boxes, box lists, overlaps).
pub use rbamr_geometry as geometry;

/// Architecture cost models and virtual time.
pub use rbamr_perfmodel as perfmodel;

/// The simulated accelerator.
pub use rbamr_device as device;

/// The message-passing runtime (MPI substitute).
pub use rbamr_netsim as netsim;

/// The block-structured AMR framework (SAMRAI substitute).
pub use rbamr_amr as amr;

/// Device-resident patch data and data-parallel operators — the
/// paper's contribution.
pub use rbamr_gpu_amr as gpu_amr;

/// CleverLeaf: shock hydrodynamics with AMR.
pub use rbamr_hydro as hydro;

/// Test problems and the weak-scaling workload model.
pub use rbamr_problems as problems;

/// Spans, counters, cross-rank edge events, causal critical-path
/// attribution, and trace/metrics exporters.
pub use rbamr_telemetry as telemetry;
