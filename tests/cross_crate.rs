//! Integration tests spanning the whole stack: geometry → device →
//! netsim → amr → gpu-amr → hydro → problems.
//!
//! The key end-to-end contracts of the reproduction:
//!
//! * physics is **rank-count invariant**: a distributed run produces the
//!   same solution as a serial run;
//! * host and device builds produce **bit-identical** solutions;
//! * the device build is **resident**: per-step PCIe traffic is packed
//!   halos + tag bitmaps + dt scalars only;
//! * the Sod solution **converges** to the exact Riemann solution;
//! * conserved quantities stay conserved through regridding.

use rbamr::hydro::{HydroConfig, HydroSim, Placement, Summary};
use rbamr::netsim::Cluster;
use rbamr::perfmodel::{Category, Clock, Machine};
use rbamr::problems::sod::{sod_l1_error, sod_regions};

fn config(max_patch: i64) -> HydroConfig {
    let mut c =
        HydroConfig { regrid_interval: 4, max_patch_size: max_patch, ..HydroConfig::default() };
    c.regrid.max_patch_size = max_patch;
    c
}

fn sod(
    placement: Placement,
    n: i64,
    levels: usize,
    max_patch: i64,
    rank: usize,
    nranks: usize,
    clock: Clock,
) -> HydroSim {
    let machine = match placement {
        Placement::Host => Machine::ipa_cpu_node(),
        _ => Machine::ipa_gpu(),
    };
    HydroSim::new(
        machine,
        placement,
        clock,
        (1.0, 1.0),
        (n, n),
        levels,
        2,
        config(max_patch),
        sod_regions(),
        rank,
        nranks,
    )
}

fn run_distributed(placement: Placement, nranks: usize, n: i64, steps: usize) -> Summary {
    let cluster = Cluster::new(Machine::ipa_cpu_node());
    let results = cluster.run(nranks, |comm| {
        let mut sim = sod(
            placement,
            n,
            2,
            16, // small patches so every rank owns several
            comm.rank(),
            comm.size(),
            comm.clock().clone(),
        );
        sim.initialize(Some(&comm));
        for _ in 0..steps {
            sim.step(Some(&comm));
        }
        sim.summary(Some(&comm))
    });
    // Every rank reports the same reduced summary.
    let s0 = results[0].value;
    for r in &results {
        assert!((r.value.mass - s0.mass).abs() < 1e-12);
    }
    s0
}

#[test]
fn distributed_run_matches_serial() {
    let steps = 8;
    let serial = {
        let mut sim = sod(Placement::Host, 48, 2, 16, 0, 1, Clock::new());
        sim.initialize(None);
        for _ in 0..steps {
            sim.step(None);
        }
        sim.summary(None)
    };
    for nranks in [2usize, 4] {
        let dist = run_distributed(Placement::Host, nranks, 48, steps);
        // Same physics; summation order differs across ranks, so allow
        // roundoff-level drift only.
        assert!(
            ((dist.mass - serial.mass) / serial.mass).abs() < 1e-11,
            "{nranks} ranks: mass {} vs serial {}",
            dist.mass,
            serial.mass
        );
        assert!(
            ((dist.total_energy() - serial.total_energy()) / serial.total_energy()).abs() < 1e-11,
            "{nranks} ranks: energy {} vs serial {}",
            dist.total_energy(),
            serial.total_energy()
        );
        assert!(((dist.pressure - serial.pressure) / serial.pressure).abs() < 1e-11);
    }
}

#[test]
fn device_distributed_matches_host_distributed() {
    let host = run_distributed(Placement::Host, 2, 48, 6);
    let dev = run_distributed(Placement::Device, 2, 48, 6);
    assert!(((host.mass - dev.mass) / host.mass).abs() < 1e-12);
    assert!(((host.total_energy() - dev.total_energy()) / host.total_energy()).abs() < 1e-12);
    assert!(
        ((host.kinetic_energy - dev.kinetic_energy) / host.kinetic_energy.max(1e-30)).abs() < 1e-9
    );
}

#[test]
fn distributed_device_build_is_resident() {
    let cluster = Cluster::new(Machine::ipa_gpu());
    let results = cluster.run(2, |comm| {
        let mut sim =
            sod(Placement::Device, 32, 1, 16, comm.rank(), comm.size(), comm.clock().clone());
        sim.initialize(Some(&comm));
        sim.step(Some(&comm)); // warm-up (no regrid at interval 4)
        let device = sim.device().unwrap().clone();
        device.reset_transfer_stats();
        sim.step(Some(&comm));
        let stats = device.stats();
        // Packed halos cross PCIe in both directions; the dt scalar
        // comes back. No full arrays: with 16^2-cell patches, a full
        // 23-field array image would be ~750 kB.
        (stats.d2h_bytes, stats.h2d_bytes)
    });
    for r in &results {
        let (d2h, h2d) = r.value;
        assert!(d2h > 8, "halos must cross PCIe");
        assert!(d2h < 200_000, "D2H too large for packed halos: {d2h}");
        assert!(h2d > 0 && h2d < 200_000, "H2D too large: {h2d}");
    }
}

#[test]
fn sod_converges_to_exact_riemann() {
    let mut errors = Vec::new();
    for n in [32i64, 64] {
        let mut sim = sod(Placement::Host, n, 2, 1 << 20, 0, 1, Clock::new());
        sim.initialize(None);
        sim.run_to_time(0.12, None);
        let profile = sim.density_profile();
        errors.push(sod_l1_error(&profile, sim.time()));
    }
    assert!(errors[0] < 0.05, "coarse L1 error too large: {}", errors[0]);
    assert!(errors[1] < errors[0] * 0.75, "no convergence: {:?}", errors);
}

#[test]
fn amr_matches_its_own_fine_features() {
    // The refined region must track the shock: compare the fine level's
    // coverage centre against the analytic shock position.
    let mut sim = sod(Placement::Host, 64, 2, 1 << 20, 0, 1, Clock::new());
    sim.initialize(None);
    sim.run_to_time(0.1, None);
    let exact = rbamr::problems::sod::sod_exact();
    let shock_x = 0.5 + 1.7522 * sim.time(); // Toro's Sod shock speed
    let covered = sim.hierarchy().level(1).covered();
    let dx1 = sim.hierarchy().dx(1).0;
    let shock_i = (shock_x / dx1) as i64;
    let mid_j = 64; // level-1 midline
    assert!(
        covered.contains(rbamr::geometry::IntVector::new(shock_i, mid_j)),
        "shock cell {shock_i} not refined (coverage {covered:?})"
    );
    let _ = exact;
}

#[test]
fn long_run_with_regridding_conserves_mass() {
    let mut sim = sod(Placement::Host, 48, 3, 1 << 20, 0, 1, Clock::new());
    sim.initialize(None);
    let m0 = sim.summary(None).mass;
    for _ in 0..30 {
        sim.step(None);
    }
    let m1 = sim.summary(None).mass;
    // Regridding interpolates conservatively; tolerate only small drift
    // from newly refined regions near limiter activity.
    assert!(
        ((m1 - m0) / m0).abs() < 5e-4,
        "mass drift over 30 steps with regridding: {m0} -> {m1}"
    );
}

#[test]
fn virtual_time_accumulates_in_every_category() {
    let mut sim = sod(Placement::Device, 48, 2, 16, 0, 1, Clock::new());
    sim.initialize(None);
    for _ in 0..4 {
        sim.step(None);
    }
    let t = sim.clock().snapshot();
    assert!(t.get(Category::HydroKernel) > 0.0);
    assert!(t.get(Category::HaloExchange) > 0.0);
    assert!(t.get(Category::Timestep) > 0.0);
    assert!(t.get(Category::Synchronize) > 0.0);
    assert!(t.get(Category::Regrid) > 0.0, "regrid at interval 4 must charge time");
    assert!(t.hydrodynamics() > t.get(Category::Timestep));
}

#[test]
fn distributed_triple_point_conserves_mass_and_energy() {
    // The paper's weak-scaling workload at miniature scale: three
    // device ranks, three levels, regridding live — conserved totals
    // must stay conserved through the whole machinery.
    use rbamr::problems::triple_point::{triple_point_regions, TRIPLE_POINT_EXTENT};
    let cluster = Cluster::new(Machine::titan());
    let results = cluster.run(3, |comm| {
        let mut c = HydroConfig { regrid_interval: 4, ..HydroConfig::default() };
        c.max_patch_size = 24;
        c.regrid.max_patch_size = 24;
        let mut sim = HydroSim::new(
            Machine::titan(),
            Placement::Device,
            comm.clock().clone(),
            TRIPLE_POINT_EXTENT,
            (56, 24),
            3,
            2,
            c,
            triple_point_regions(),
            comm.rank(),
            comm.size(),
        );
        sim.initialize(Some(&comm));
        let m0 = sim.summary(Some(&comm)).mass;
        for _ in 0..10 {
            sim.step(Some(&comm));
        }
        let s1 = sim.summary(Some(&comm));
        (m0, s1.mass, s1.total_energy())
    });
    let (m0, m1, e1) = results[0].value;
    // Initial mass: 1x3x1 + 6x1.5x1 + 6x1.5x0.125 = 13.125.
    assert!((m0 - 13.125).abs() < 1e-9, "bad initial mass {m0}");
    assert!(((m1 - m0) / m0).abs() < 1e-3, "mass drift {m0} -> {m1}");
    assert!(e1.is_finite() && e1 > 0.0);
    // All ranks agree on the reduced totals.
    for r in &results {
        assert!((r.value.1 - m1).abs() < 1e-12);
    }
}

#[test]
fn partitioned_metadata_matches_replicated_bitwise() {
    // The same Sod run under `metadata_mode = partitioned` — owned +
    // ghosted views, owner-computes planning, digest-verified exchange
    // — must be indistinguishable from the replicated oracle: bitwise
    // identical local field state, identical `RegridOutcome`s from a
    // live regrid, identical structure digests.
    use rbamr::amr::MetadataMode;
    let run = |nranks: usize, mode: MetadataMode| {
        let cluster = Cluster::new(Machine::ipa_cpu_node());
        cluster.run(nranks, move |comm| {
            let mut sim =
                sod(Placement::Host, 48, 2, 16, comm.rank(), comm.size(), comm.clock().clone());
            sim.set_metadata_mode(mode);
            sim.initialize(Some(&comm));
            for _ in 0..8 {
                sim.step(Some(&comm)); // regrid_interval 4: live regrids
            }
            let outcome = sim.regrid(Some(&comm));
            let digests: Vec<u64> = (0..sim.hierarchy().num_levels())
                .map(|l| sim.hierarchy().structure_digest(l))
                .collect();
            (
                sim.local_state_digest(),
                digests,
                outcome.num_levels,
                outcome.levels_changed,
                outcome.tags_flagged,
            )
        })
    };
    for nranks in [1usize, 4] {
        let rep = run(nranks, MetadataMode::Replicated);
        let part = run(nranks, MetadataMode::Partitioned);
        for (a, b) in rep.iter().zip(&part) {
            assert_eq!(a.value.0, b.value.0, "rank {}: field state diverges", a.rank);
            assert_eq!(a.value.1, b.value.1, "rank {}: structure digests diverge", a.rank);
            assert_eq!(a.value.2, b.value.2, "rank {}: outcome num_levels", a.rank);
            assert_eq!(a.value.3, b.value.3, "rank {}: outcome levels_changed", a.rank);
            assert_eq!(a.value.4, b.value.4, "rank {}: outcome tags_flagged", a.rank);
        }
    }
}

/// Run a 2-rank Sod deck with full telemetry attached and return the
/// per-rank recorders.
fn traced_sod_run() -> Vec<rbamr::telemetry::Recorder> {
    use rbamr::telemetry::Recorder;
    let cluster = Cluster::new(Machine::ipa_gpu());
    let results = cluster.run(2, |mut comm| {
        let rec = Recorder::new(comm.rank(), comm.clock().clone());
        comm.set_recorder(rec.clone());
        let mut sim =
            sod(Placement::Device, 48, 2, 16, comm.rank(), comm.size(), comm.clock().clone());
        sim.set_recorder(rec.clone());
        sim.initialize(Some(&comm));
        for _ in 0..6 {
            sim.step(Some(&comm)); // regrid_interval 4: one live regrid
        }
        rec
    });
    results.into_iter().map(|r| r.value).collect()
}

#[test]
fn causal_trace_of_distributed_sod_is_deterministic() {
    // Same seed (there is none — everything is virtual) → byte-identical
    // Chrome trace and causal bucket report.
    use rbamr::telemetry::{analyze, chrome_trace, report_text};
    let a = traced_sod_run();
    let b = traced_sod_run();
    assert_eq!(chrome_trace(&a), chrome_trace(&b), "chrome trace is not deterministic");
    let ra = report_text(&analyze(&a).expect("causal DAG must build"));
    let rb = report_text(&analyze(&b).expect("causal DAG must build"));
    assert_eq!(ra, rb, "causal report is not deterministic");
}

#[test]
fn causal_buckets_account_for_distributed_sod_wall_time() {
    // The tentpole's accounting identity on a real run: every recv edge
    // matched, per-rank buckets sum to the makespan, and per-step
    // per-rank buckets sum to the step window within 1%.
    use rbamr::telemetry::analyze;
    let recs = traced_sod_run();
    let analysis = analyze(&recs).expect("causal DAG must build");
    assert!(analysis.edges_matched > 0, "distributed Sod must exchange messages");
    assert_eq!(analysis.unmatched_sends, 0);
    for rb in &analysis.ranks {
        let err = (rb.buckets.total() - analysis.makespan).abs();
        assert!(
            err <= 0.01 * analysis.makespan,
            "rank {}: buckets sum {} vs makespan {}",
            rb.rank,
            rb.buckets.total(),
            analysis.makespan
        );
    }
    assert!(!analysis.steps.is_empty(), "step spans must be attributed");
    for step in &analysis.steps {
        for (rank, buckets) in &step.ranks {
            let err = (buckets.total() - step.window).abs();
            assert!(
                err <= 0.01 * step.window.max(1e-12),
                "step {} rank {rank}: buckets sum {} vs window {}",
                step.step,
                buckets.total(),
                step.window
            );
        }
    }
    // The critical path decomposes the makespan exactly.
    let cp = &analysis.critical_path;
    assert!((cp.compute + cp.comm - analysis.makespan).abs() <= 1e-9 * analysis.makespan);
}

#[test]
fn regridding_is_rank_count_invariant() {
    // The hierarchy structure (clustered boxes) produced by the
    // distributed regrid — gathering tags through the collective path —
    // must match the serial result exactly.
    let serial_boxes: Vec<_> = {
        let mut sim = sod(Placement::Host, 48, 2, 16, 0, 1, Clock::new());
        sim.initialize(None);
        sim.hierarchy().level(1).global_boxes().to_vec()
    };
    let cluster = Cluster::new(Machine::ipa_cpu_node());
    let results = cluster.run(4, |comm| {
        let mut sim =
            sod(Placement::Host, 48, 2, 16, comm.rank(), comm.size(), comm.clock().clone());
        sim.initialize(Some(&comm));
        sim.hierarchy().level(1).global_boxes().to_vec()
    });
    for r in &results {
        assert_eq!(r.value, serial_boxes, "rank {} sees different level-1 boxes", r.rank);
    }
}
