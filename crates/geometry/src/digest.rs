//! Cheap structure digests for box-level metadata.
//!
//! The schedule cache (`rbamr-amr`) needs to recognise that a regrid
//! reproduced an existing level structure without comparing box arrays
//! element-by-element on every lookup. This module provides the two
//! building blocks:
//!
//! * [`Fnv64`] — a streaming 64-bit FNV-1a hasher over machine words,
//!   finalised through [`mix64`] (the splitmix64 finaliser) so closely
//!   related inputs land far apart.
//! * [`UnorderedDigest`] — a commutative accumulator: items may be fed
//!   in any traversal order and yield the same digest. Position
//!   sensitivity, where required, is obtained by mixing the index into
//!   each item hash before adding it.
//!
//! Both are deterministic across processes and ranks (no random keys),
//! which matters because every rank must compute the identical digest
//! for the replicated level metadata. No cryptographic strength is
//! claimed or needed: a collision merely reuses a schedule for a
//! structurally different level, and the consumers additionally bind
//! level number, ratio, and domain into the stream to keep accidental
//! collisions implausible.

use crate::gbox::GBox;
use crate::ivec::IntVector;

/// splitmix64 finaliser: a fast, well-mixing 64-bit bijection.
#[inline]
#[must_use]
pub fn mix64(mut z: u64) -> u64 {
    z ^= z >> 30;
    z = z.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    z
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming 64-bit FNV-1a over whole words (not bytes — the inputs are
/// small fixed-arity records, so word granularity is enough and ~8x
/// cheaper). Call [`Fnv64::finish`] to get the mixed digest.
#[derive(Clone, Copy, Debug)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    /// A fresh hasher at the FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        Self(FNV_OFFSET)
    }

    /// Absorb one 64-bit word.
    #[inline]
    pub fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(FNV_PRIME);
    }

    /// Absorb a signed word (sign-extended reinterpretation).
    #[inline]
    pub fn write_i64(&mut self, v: i64) {
        self.write_u64(v as u64);
    }

    /// Absorb a `usize`.
    #[inline]
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Absorb an [`IntVector`] component-wise.
    #[inline]
    pub fn write_ivec(&mut self, v: IntVector) {
        self.write_i64(v.x);
        self.write_i64(v.y);
    }

    /// Absorb a [`GBox`] (both corners).
    #[inline]
    pub fn write_gbox(&mut self, b: GBox) {
        self.write_ivec(b.lo);
        self.write_ivec(b.hi);
    }

    /// Finalise: the accumulated state passed through [`mix64`].
    #[inline]
    #[must_use]
    pub fn finish(&self) -> u64 {
        mix64(self.0)
    }
}

/// Order-independent digest accumulator.
///
/// Items are mixed individually through [`mix64`] and combined with
/// commutative operations (wrapping sum and xor) plus a count, so the
/// digest is invariant under the order items are added in but sensitive
/// to the multiset of items. Duplicated items are distinguished by the
/// count and sum channels.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UnorderedDigest {
    sum: u64,
    xor: u64,
    count: u64,
}

impl UnorderedDigest {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one item hash (pre-mixing with [`mix64`] is applied here; pass
    /// the raw item hash).
    #[inline]
    pub fn add(&mut self, item: u64) {
        let m = mix64(item);
        self.sum = self.sum.wrapping_add(m);
        self.xor ^= m;
        self.count += 1;
    }

    /// Number of items added.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Fold another accumulator into this one. Because every channel is
    /// commutative and associative, merging per-rank partial digests (in
    /// any order, e.g. through an allreduce) yields exactly the digest a
    /// single pass over the union of the items would have produced —
    /// this is what lets a rank holding only its owned metadata verify
    /// agreement with the replicated whole.
    #[inline]
    pub fn merge(&mut self, other: &Self) {
        self.sum = self.sum.wrapping_add(other.sum);
        self.xor ^= other.xor;
        self.count = self.count.wrapping_add(other.count);
    }

    /// The raw channel words `[sum, xor, count]` for wire transport
    /// (e.g. a 3-word allreduce whose combine matches [`Self::merge`]).
    #[must_use]
    pub fn to_words(&self) -> [u64; 3] {
        [self.sum, self.xor, self.count]
    }

    /// Rebuild an accumulator from its [`Self::to_words`] channels.
    #[must_use]
    pub fn from_words(words: [u64; 3]) -> Self {
        Self { sum: words[0], xor: words[1], count: words[2] }
    }

    /// Collapse to a single 64-bit digest.
    #[must_use]
    pub fn finish(&self) -> u64 {
        let mut f = Fnv64::new();
        f.write_u64(self.sum);
        f.write_u64(self.xor);
        f.write_u64(self.count);
        f.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(i: usize, b: GBox, owner: usize) -> u64 {
        let mut f = Fnv64::new();
        f.write_usize(i);
        f.write_gbox(b);
        f.write_usize(owner);
        f.finish()
    }

    #[test]
    fn unordered_digest_is_order_independent() {
        let boxes = [
            GBox::from_coords(0, 0, 4, 4),
            GBox::from_coords(4, 0, 8, 4),
            GBox::from_coords(0, 4, 4, 8),
        ];
        let mut fwd = UnorderedDigest::new();
        for (i, b) in boxes.iter().enumerate() {
            fwd.add(item(i, *b, i % 2));
        }
        let mut rev = UnorderedDigest::new();
        for (i, b) in boxes.iter().enumerate().rev() {
            rev.add(item(i, *b, i % 2));
        }
        assert_eq!(fwd.finish(), rev.finish());
    }

    #[test]
    fn unordered_digest_detects_permuted_indices() {
        // Same multiset of (box, owner) but bound to different indices
        // must digest differently: schedule plans address patches by
        // index, so a permutation is a different structure.
        let a = GBox::from_coords(0, 0, 4, 4);
        let b = GBox::from_coords(4, 0, 8, 4);
        let mut d1 = UnorderedDigest::new();
        d1.add(item(0, a, 0));
        d1.add(item(1, b, 0));
        let mut d2 = UnorderedDigest::new();
        d2.add(item(0, b, 0));
        d2.add(item(1, a, 0));
        assert_ne!(d1.finish(), d2.finish());
    }

    #[test]
    fn unordered_digest_detects_owner_and_box_changes() {
        let a = GBox::from_coords(0, 0, 4, 4);
        let base = {
            let mut d = UnorderedDigest::new();
            d.add(item(0, a, 0));
            d.finish()
        };
        let owner_changed = {
            let mut d = UnorderedDigest::new();
            d.add(item(0, a, 1));
            d.finish()
        };
        let box_changed = {
            let mut d = UnorderedDigest::new();
            d.add(item(0, GBox::from_coords(0, 0, 4, 5), 0));
            d.finish()
        };
        assert_ne!(base, owner_changed);
        assert_ne!(base, box_changed);
    }

    #[test]
    fn unordered_digest_distinguishes_duplicates() {
        let h = item(0, GBox::from_coords(0, 0, 4, 4), 0);
        let mut once = UnorderedDigest::new();
        once.add(h);
        let mut twice = UnorderedDigest::new();
        twice.add(h);
        twice.add(h);
        assert_ne!(once.finish(), twice.finish());
        assert_eq!(twice.count(), 2);
    }

    #[test]
    fn fnv64_is_word_sensitive() {
        let mut a = Fnv64::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = Fnv64::new();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
        assert_ne!(Fnv64::new().finish(), a.finish());
    }

    #[test]
    fn mix64_scatters_small_inputs() {
        // (0 is the finaliser's fixed point; inputs here are FNV states,
        // which start at the non-zero offset basis.)
        assert_ne!(mix64(1), 1);
        assert_ne!(mix64(1), mix64(2));
        assert_ne!(mix64(u64::MAX), u64::MAX);
    }
}
