//! Index-space calculus for block-structured adaptive mesh refinement.
//!
//! This crate is the foundation of the `rbamr` workspace: it provides the
//! integer index-space primitives that SAMRAI calls *box calculus* —
//! [`IntVector`] (a 2D integer vector), [`GBox`] (a logically rectangular
//! region of index space), [`BoxList`] (a set of boxes closed under union
//! and difference), centring conversions between cell-, node- and
//! side-centred index spaces, ghost-region/overlap computation, a
//! Morton space-filling curve used for load balancing, and a
//! Morton-sorted spatial box index ([`BoxIndex`]) answering "which
//! boxes intersect region R" in O(log N + k) for the schedule and
//! regrid metadata paths, and deterministic structure digests
//! ([`Fnv64`], [`UnorderedDigest`]) used to key cached communication
//! schedules on level structure.
//!
//! All boxes use an **inclusive lower / exclusive upper** convention: the
//! box `[lo, hi)` contains the cells with `lo.x <= i < hi.x` and
//! `lo.y <= j < hi.y`. A box with any `hi <= lo` component is *empty*.
//!
//! The crate is deliberately 2D: the paper's CleverLeaf mini-app solves
//! Euler's equations on 2D structured grids, and every index computation
//! in the reproduced kernels (Figures 5 and 8 of the paper) is 2D.

pub mod boxlist;
pub mod centring;
pub mod digest;
pub mod gbox;
pub mod index;
pub mod ivec;
pub mod overlap;
pub mod sfc;

pub use boxlist::BoxList;
pub use centring::Centring;
pub use digest::{mix64, Fnv64, UnorderedDigest};
pub use gbox::GBox;
pub use index::BoxIndex;
pub use ivec::IntVector;
pub use overlap::{copy_overlap, ghost_overlaps, BoxOverlap};
pub use sfc::morton_key;

/// The spatial dimensionality of every index space in this workspace.
pub const DIM: usize = 2;
