//! Morton (Z-order) space-filling curve used for load balancing.
//!
//! SAMRAI's default load balancer orders patches along a space-filling
//! curve before partitioning so that contiguous rank assignments are
//! spatially compact, keeping halo-exchange neighbours close. The `amr`
//! crate's partitioners sort patch centroids by [`morton_key`].

/// Interleave the low 32 bits of `v` into the even bit positions.
fn spread(v: u64) -> u64 {
    let mut x = v & 0xFFFF_FFFF;
    x = (x | (x << 16)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x << 8)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    x = (x | (x << 1)) & 0x5555_5555_5555_5555;
    x
}

/// Morton key of a 2D point with possibly negative coordinates.
///
/// Coordinates are biased by `2^31` so that the full `i32` range maps
/// monotonically (per axis) onto unsigned space, then bit-interleaved
/// (x in even bits, y in odd bits). Points closer on the Z-curve get
/// closer keys, which is all the partitioner needs.
///
/// # Panics
/// Debug-asserts that the biased coordinates fit in 32 bits; index
/// spaces in this workspace are far smaller than `2^31`.
pub fn morton_key(x: i64, y: i64) -> u64 {
    const BIAS: i64 = 1 << 31;
    let bx = x + BIAS;
    let by = y + BIAS;
    debug_assert!((0..(1i64 << 32)).contains(&bx), "morton_key: x out of range");
    debug_assert!((0..(1i64 << 32)).contains(&by), "morton_key: y out of range");
    spread(bx as u64) | (spread(by as u64) << 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_maps_to_bias_pattern() {
        // The key is deterministic and equal for equal points.
        assert_eq!(morton_key(0, 0), morton_key(0, 0));
    }

    #[test]
    fn interleaving_is_correct_for_small_values() {
        // Remove the bias contribution by comparing relative structure:
        // keys of (x,0) and (0,x) differ exactly by the odd/even lane.
        let k10 = morton_key(1, 0) ^ morton_key(0, 0);
        let k01 = morton_key(0, 1) ^ morton_key(0, 0);
        assert_eq!(k10, 0b01);
        assert_eq!(k01, 0b10);
        let k32 = morton_key(3, 2) ^ morton_key(0, 0);
        // x=3 -> bits 0,2 set; y=2 -> bit 3 set.
        assert_eq!(k32, 0b1101);
    }

    #[test]
    fn negative_coordinates_are_ordered() {
        // Along one axis the biased key must be monotone.
        let ks: Vec<u64> = (-4..4).map(|x| morton_key(x, 0)).collect();
        for w in ks.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn locality_beats_distance() {
        // Adjacent quadrant cells share long key prefixes: the key
        // distance between (0,0) and (1,1) is smaller than between
        // (0,0) and (1024,1024).
        let near = morton_key(1, 1) - morton_key(0, 0);
        let far = morton_key(1024, 1024) - morton_key(0, 0);
        assert!(near < far);
    }
}
