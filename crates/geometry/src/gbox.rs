//! Logically rectangular index-space regions ("boxes").

use crate::ivec::IntVector;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A logically rectangular region of 2D index space: `[lo, hi)`.
///
/// `GBox` is the unit of the box calculus on which every AMR structure is
/// built: a patch covers a box, ghost regions are boxes grown from patch
/// boxes, overlaps between patches are box intersections, and the
/// refine/coarsen index maps of the paper's Section II are the
/// [`GBox::refine`] / [`GBox::coarsen`] operations.
///
/// The name avoids colliding with [`std::boxed::Box`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GBox {
    /// Inclusive lower corner.
    pub lo: IntVector,
    /// Exclusive upper corner.
    pub hi: IntVector,
}

impl GBox {
    /// Create a box from its inclusive lower and exclusive upper corners.
    pub const fn new(lo: IntVector, hi: IntVector) -> Self {
        Self { lo, hi }
    }

    /// Create a box from corner coordinates `[x0, y0) x [x1, y1)`.
    pub const fn from_coords(x0: i64, y0: i64, x1: i64, y1: i64) -> Self {
        Self::new(IntVector::new(x0, y0), IntVector::new(x1, y1))
    }

    /// The canonical empty box.
    pub const EMPTY: Self = Self::new(IntVector::ZERO, IntVector::ZERO);

    /// A box with lower corner at the origin and the given size.
    pub fn at_origin(size: IntVector) -> Self {
        Self::new(IntVector::ZERO, size)
    }

    /// True if the box contains no cells (any `hi <= lo` component).
    pub fn is_empty(self) -> bool {
        self.hi.x <= self.lo.x || self.hi.y <= self.lo.y
    }

    /// Size vector `hi - lo` (component-wise cell counts). Meaningless
    /// for empty boxes.
    pub fn size(self) -> IntVector {
        self.hi - self.lo
    }

    /// Number of cells in the box; zero for empty boxes.
    pub fn num_cells(self) -> i64 {
        if self.is_empty() {
            0
        } else {
            self.size().product()
        }
    }

    /// True if the cell index `p` lies inside the box.
    pub fn contains(self, p: IntVector) -> bool {
        p.all_ge(self.lo) && self.hi.all_gt(p)
    }

    /// True if every cell of `other` lies inside `self`. Empty boxes are
    /// contained in everything.
    pub fn contains_box(self, other: GBox) -> bool {
        other.is_empty() || (other.lo.all_ge(self.lo) && self.hi.all_ge(other.hi))
    }

    /// Intersection of two boxes (empty if they do not overlap).
    pub fn intersect(self, other: GBox) -> GBox {
        let b = GBox::new(self.lo.max(other.lo), self.hi.min(other.hi));
        if b.is_empty() {
            GBox::EMPTY
        } else {
            b
        }
    }

    /// True if the two boxes share at least one cell.
    pub fn intersects(self, other: GBox) -> bool {
        !self.intersect(other).is_empty()
    }

    /// Grow the box by `g` cells on every side (negative values shrink).
    /// This is how ghost boxes are formed from patch interiors.
    pub fn grow(self, g: IntVector) -> GBox {
        GBox::new(self.lo - g, self.hi + g)
    }

    /// Grow the box by `g` cells only on the lower side of each axis.
    pub fn grow_lower(self, g: IntVector) -> GBox {
        GBox::new(self.lo - g, self.hi)
    }

    /// Grow the box by `g` cells only on the upper side of each axis.
    pub fn grow_upper(self, g: IntVector) -> GBox {
        GBox::new(self.lo, self.hi + g)
    }

    /// Translate the box by `shift`.
    pub fn shift(self, shift: IntVector) -> GBox {
        GBox::new(self.lo + shift, self.hi + shift)
    }

    /// Map the box to the index space of the next finer level with
    /// refinement ratio `ratio`: cell `(i, j)` becomes the `ratio.x ×
    /// ratio.y` block of fine cells covering it.
    ///
    /// # Panics
    /// Panics if any ratio component is not positive.
    pub fn refine(self, ratio: IntVector) -> GBox {
        assert!(ratio.all_gt(IntVector::ZERO), "refine: ratio must be positive");
        GBox::new(self.lo.scale(ratio), self.hi.scale(ratio))
    }

    /// Map the box to the index space of the next coarser level: the
    /// smallest coarse box whose refinement covers `self`.
    ///
    /// # Panics
    /// Panics if any ratio component is not positive.
    pub fn coarsen(self, ratio: IntVector) -> GBox {
        assert!(ratio.all_gt(IntVector::ZERO), "coarsen: ratio must be positive");
        GBox::new(self.lo.div_floor(ratio), self.hi.div_ceil(ratio))
    }

    /// True if the box starts and ends on coarse-cell boundaries for the
    /// given ratio — the "fine grid must start and end at the corner of a
    /// cell in the next coarser grid" nesting rule from Section II.
    pub fn is_aligned(self, ratio: IntVector) -> bool {
        self.lo.x.rem_euclid(ratio.x) == 0
            && self.lo.y.rem_euclid(ratio.y) == 0
            && self.hi.x.rem_euclid(ratio.x) == 0
            && self.hi.y.rem_euclid(ratio.y) == 0
    }

    /// The smallest box containing both operands (their bounding box).
    pub fn bounding(self, other: GBox) -> GBox {
        if self.is_empty() {
            return other;
        }
        if other.is_empty() {
            return self;
        }
        GBox::new(self.lo.min(other.lo), self.hi.max(other.hi))
    }

    /// Subtract `other` from `self`, pushing the (up to four) disjoint
    /// rectangular remainders onto `out`.
    ///
    /// The decomposition slices bottom strip, top strip, then left and
    /// right strips of the middle band, so the output pieces are disjoint
    /// and their union is exactly `self \ other`.
    pub fn subtract_into(self, other: GBox, out: &mut Vec<GBox>) {
        if self.is_empty() {
            return;
        }
        let cut = self.intersect(other);
        if cut.is_empty() {
            out.push(self);
            return;
        }
        if cut == self {
            return;
        }
        // Bottom strip (full width).
        if cut.lo.y > self.lo.y {
            out.push(GBox::from_coords(self.lo.x, self.lo.y, self.hi.x, cut.lo.y));
        }
        // Top strip (full width).
        if cut.hi.y < self.hi.y {
            out.push(GBox::from_coords(self.lo.x, cut.hi.y, self.hi.x, self.hi.y));
        }
        // Left strip of the middle band.
        if cut.lo.x > self.lo.x {
            out.push(GBox::from_coords(self.lo.x, cut.lo.y, cut.lo.x, cut.hi.y));
        }
        // Right strip of the middle band.
        if cut.hi.x < self.hi.x {
            out.push(GBox::from_coords(cut.hi.x, cut.lo.y, self.hi.x, cut.hi.y));
        }
    }

    /// Linear (row-major) offset of cell `p` inside the box. The x axis
    /// varies fastest, matching the layout of the device array kernels
    /// (Figures 5 and 8 of the paper).
    ///
    /// # Panics
    /// Debug-asserts that `p` lies inside the box.
    #[inline]
    pub fn offset_of(self, p: IntVector) -> usize {
        debug_assert!(self.contains(p), "offset_of: {p} outside {self:?}");
        let rel = p - self.lo;
        (rel.y * self.size().x + rel.x) as usize
    }

    /// Iterate over all cell indices in the box in row-major order.
    pub fn iter(self) -> BoxIter {
        BoxIter { b: self, cur: self.lo, done: self.is_empty() }
    }

    /// Split the box at coordinate `at` along `axis`, returning the lower
    /// and upper halves. `at` must satisfy `lo[axis] < at < hi[axis]`.
    ///
    /// # Panics
    /// Panics if `at` does not strictly split the box.
    pub fn split(self, axis: usize, at: i64) -> (GBox, GBox) {
        assert!(
            self.lo.get(axis) < at && at < self.hi.get(axis),
            "split: {at} does not split {self:?} along axis {axis}"
        );
        let lower = GBox::new(self.lo, self.hi.with(axis, at));
        let upper = GBox::new(self.lo.with(axis, at), self.hi);
        (lower, upper)
    }

    /// The axis along which the box is longest (ties go to x).
    pub fn longest_axis(self) -> usize {
        if self.size().y > self.size().x {
            1
        } else {
            0
        }
    }
}

impl fmt::Debug for GBox {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}..{})", self.lo, self.hi)
    }
}

impl fmt::Display for GBox {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}..{})", self.lo, self.hi)
    }
}

/// Row-major iterator over the cells of a box.
pub struct BoxIter {
    b: GBox,
    cur: IntVector,
    done: bool,
}

impl Iterator for BoxIter {
    type Item = IntVector;

    fn next(&mut self) -> Option<IntVector> {
        if self.done {
            return None;
        }
        let out = self.cur;
        self.cur.x += 1;
        if self.cur.x >= self.b.hi.x {
            self.cur.x = self.b.lo.x;
            self.cur.y += 1;
            if self.cur.y >= self.b.hi.y {
                self.done = true;
            }
        }
        Some(out)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        if self.done {
            return (0, Some(0));
        }
        let remaining_rows = (self.b.hi.y - self.cur.y - 1) * self.b.size().x;
        let this_row = self.b.hi.x - self.cur.x;
        let n = (remaining_rows + this_row) as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for BoxIter {}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(x0: i64, y0: i64, x1: i64, y1: i64) -> GBox {
        GBox::from_coords(x0, y0, x1, y1)
    }

    #[test]
    fn emptiness_and_size() {
        assert!(GBox::EMPTY.is_empty());
        assert!(b(0, 0, 0, 5).is_empty());
        assert!(b(3, 3, 2, 5).is_empty());
        let bx = b(1, 2, 4, 6);
        assert!(!bx.is_empty());
        assert_eq!(bx.size(), IntVector::new(3, 4));
        assert_eq!(bx.num_cells(), 12);
        assert_eq!(GBox::EMPTY.num_cells(), 0);
    }

    #[test]
    fn containment() {
        let bx = b(0, 0, 4, 4);
        assert!(bx.contains(IntVector::new(0, 0)));
        assert!(bx.contains(IntVector::new(3, 3)));
        assert!(!bx.contains(IntVector::new(4, 0)));
        assert!(bx.contains_box(b(1, 1, 3, 3)));
        assert!(bx.contains_box(GBox::EMPTY));
        assert!(!bx.contains_box(b(1, 1, 5, 3)));
    }

    #[test]
    fn intersection() {
        let a = b(0, 0, 4, 4);
        let c = b(2, 2, 6, 6);
        assert_eq!(a.intersect(c), b(2, 2, 4, 4));
        assert!(a.intersects(c));
        assert!(!a.intersects(b(4, 0, 8, 4))); // edge-adjacent, no shared cell
        assert_eq!(a.intersect(b(10, 10, 12, 12)), GBox::EMPTY);
    }

    #[test]
    fn grow_and_shift() {
        let a = b(2, 2, 4, 4);
        assert_eq!(a.grow(IntVector::uniform(2)), b(0, 0, 6, 6));
        assert_eq!(a.grow(IntVector::uniform(-1)), b(3, 3, 3, 3));
        assert_eq!(a.shift(IntVector::new(1, -1)), b(3, 1, 5, 3));
        assert_eq!(a.grow_lower(IntVector::ONE), b(1, 1, 4, 4));
        assert_eq!(a.grow_upper(IntVector::ONE), b(2, 2, 5, 5));
    }

    #[test]
    fn refine_coarsen_roundtrip() {
        let a = b(1, 2, 3, 5);
        let r = IntVector::uniform(2);
        let fine = a.refine(r);
        assert_eq!(fine, b(2, 4, 6, 10));
        assert_eq!(fine.coarsen(r), a);
    }

    #[test]
    fn coarsen_covers_unaligned_boxes() {
        let r = IntVector::uniform(2);
        // [1,5) coarsens to [0,3): the coarse cells 0,1,2 cover fine 1..5.
        assert_eq!(b(1, 1, 5, 5).coarsen(r), b(0, 0, 3, 3));
        // Negative indices round toward -inf.
        assert_eq!(b(-3, -3, -1, -1).coarsen(r), b(-2, -2, 0, 0));
    }

    #[test]
    fn alignment() {
        let r = IntVector::uniform(2);
        assert!(b(0, 2, 4, 6).is_aligned(r));
        assert!(!b(1, 2, 4, 6).is_aligned(r));
        assert!(b(-4, -2, 0, 2).is_aligned(r));
    }

    #[test]
    fn bounding_box() {
        assert_eq!(b(0, 0, 2, 2).bounding(b(4, 4, 6, 6)), b(0, 0, 6, 6));
        assert_eq!(GBox::EMPTY.bounding(b(1, 1, 2, 2)), b(1, 1, 2, 2));
        assert_eq!(b(1, 1, 2, 2).bounding(GBox::EMPTY), b(1, 1, 2, 2));
    }

    #[test]
    fn subtraction_cases() {
        let a = b(0, 0, 4, 4);
        let mut out = Vec::new();

        // Disjoint: whole box survives.
        a.subtract_into(b(10, 10, 12, 12), &mut out);
        assert_eq!(out, vec![a]);

        // Full cover: nothing survives.
        out.clear();
        a.subtract_into(b(-1, -1, 5, 5), &mut out);
        assert!(out.is_empty());

        // Hole in the middle: four pieces, disjoint, correct total area.
        out.clear();
        a.subtract_into(b(1, 1, 3, 3), &mut out);
        assert_eq!(out.len(), 4);
        let total: i64 = out.iter().map(|p| p.num_cells()).sum();
        assert_eq!(total, 16 - 4);
        for (i, p) in out.iter().enumerate() {
            for q in &out[i + 1..] {
                assert!(!p.intersects(*q), "{p:?} overlaps {q:?}");
            }
        }

        // Corner bite.
        out.clear();
        a.subtract_into(b(2, 2, 6, 6), &mut out);
        let total: i64 = out.iter().map(|p| p.num_cells()).sum();
        assert_eq!(total, 16 - 4);
    }

    #[test]
    fn row_major_offsets() {
        let a = b(2, 3, 5, 6); // 3x3
        assert_eq!(a.offset_of(IntVector::new(2, 3)), 0);
        assert_eq!(a.offset_of(IntVector::new(4, 3)), 2);
        assert_eq!(a.offset_of(IntVector::new(2, 4)), 3);
        assert_eq!(a.offset_of(IntVector::new(4, 5)), 8);
    }

    #[test]
    fn iteration_is_row_major_and_complete() {
        let a = b(1, 1, 3, 3);
        let cells: Vec<_> = a.iter().collect();
        assert_eq!(
            cells,
            vec![
                IntVector::new(1, 1),
                IntVector::new(2, 1),
                IntVector::new(1, 2),
                IntVector::new(2, 2),
            ]
        );
        assert_eq!(a.iter().len(), 4);
        assert_eq!(GBox::EMPTY.iter().count(), 0);
    }

    #[test]
    fn offsets_match_iteration_order() {
        let a = b(-2, 7, 4, 11);
        for (k, p) in a.iter().enumerate() {
            assert_eq!(a.offset_of(p), k);
        }
    }

    #[test]
    fn split_and_longest_axis() {
        let a = b(0, 0, 8, 4);
        assert_eq!(a.longest_axis(), 0);
        let (lo, hi) = a.split(0, 3);
        assert_eq!(lo, b(0, 0, 3, 4));
        assert_eq!(hi, b(3, 0, 8, 4));
        assert_eq!(b(0, 0, 2, 6).longest_axis(), 1);
    }

    #[test]
    #[should_panic(expected = "does not split")]
    fn split_rejects_degenerate_cut() {
        b(0, 0, 4, 4).split(0, 0);
    }
}
