//! Sets of boxes closed under union and difference.

use crate::gbox::GBox;
use crate::ivec::IntVector;
use serde::{Deserialize, Serialize};

/// A set of disjoint boxes representing an arbitrary (non-rectangular)
/// region of index space.
///
/// `BoxList` is the workhorse of level description: the paper's level
/// `G_l` is the union of its patch boxes (`G_0 = ∪_j G_{0,j}`), and
/// regridding, proper-nesting enforcement and overlap computation all
/// reduce to unions, intersections and differences of box lists.
///
/// Invariant: the stored boxes are pairwise disjoint and non-empty.
/// Construction enforces this by rewriting inputs through
/// [`BoxList::add`].
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BoxList {
    boxes: Vec<GBox>,
}

impl BoxList {
    /// The empty region.
    pub fn new() -> Self {
        Self::default()
    }

    /// A region consisting of a single box (empty boxes are dropped).
    pub fn from_box(b: GBox) -> Self {
        let mut l = Self::new();
        l.add(b);
        l
    }

    /// Build a region from arbitrary (possibly overlapping) boxes.
    pub fn from_boxes<I: IntoIterator<Item = GBox>>(boxes: I) -> Self {
        let mut l = Self::new();
        for b in boxes {
            l.add(b);
        }
        l
    }

    /// The disjoint boxes making up the region.
    pub fn boxes(&self) -> &[GBox] {
        &self.boxes
    }

    /// Number of component boxes.
    pub fn len(&self) -> usize {
        self.boxes.len()
    }

    /// True if the region contains no cells.
    pub fn is_empty(&self) -> bool {
        self.boxes.is_empty()
    }

    /// Total number of cells in the region.
    pub fn num_cells(&self) -> i64 {
        self.boxes.iter().map(|b| b.num_cells()).sum()
    }

    /// Add a box to the region, keeping components disjoint: only the
    /// part of `b` not already covered is inserted.
    pub fn add(&mut self, b: GBox) {
        if b.is_empty() {
            return;
        }
        // Carve b against every existing box.
        let mut pending = vec![b];
        let mut next = Vec::new();
        for &existing in &self.boxes {
            next.clear();
            for piece in pending.drain(..) {
                piece.subtract_into(existing, &mut next);
            }
            std::mem::swap(&mut pending, &mut next);
            if pending.is_empty() {
                return;
            }
        }
        self.boxes.extend(pending);
    }

    /// Union with another region.
    pub fn union(&mut self, other: &BoxList) {
        for &b in &other.boxes {
            self.add(b);
        }
    }

    /// Remove `b` from the region.
    pub fn subtract_box(&mut self, b: GBox) {
        if b.is_empty() || self.boxes.is_empty() {
            return;
        }
        let mut out = Vec::with_capacity(self.boxes.len());
        for &mine in &self.boxes {
            mine.subtract_into(b, &mut out);
        }
        self.boxes = out;
    }

    /// Remove another region from this one.
    pub fn subtract(&mut self, other: &BoxList) {
        for &b in &other.boxes {
            self.subtract_box(b);
        }
    }

    /// The intersection of two regions.
    pub fn intersect(&self, other: &BoxList) -> BoxList {
        let mut out = BoxList::new();
        for &b in &self.boxes {
            out.union(&other.intersect_box(b));
        }
        out
    }

    /// The intersection of the region with a single box.
    pub fn intersect_box(&self, b: GBox) -> BoxList {
        let boxes = self.boxes.iter().map(|m| m.intersect(b)).filter(|m| !m.is_empty()).collect();
        BoxList { boxes }
    }

    /// True if the cell `p` lies in the region.
    pub fn contains(&self, p: IntVector) -> bool {
        self.boxes.iter().any(|b| b.contains(p))
    }

    /// True if every cell of `b` lies in the region.
    pub fn contains_box(&self, b: GBox) -> bool {
        let mut remainder = vec![b];
        let mut next = Vec::new();
        for &mine in &self.boxes {
            next.clear();
            for piece in remainder.drain(..) {
                piece.subtract_into(mine, &mut next);
            }
            std::mem::swap(&mut remainder, &mut next);
            if remainder.is_empty() {
                return true;
            }
        }
        remainder.iter().all(|b| b.is_empty())
    }

    /// Refine every box (see [`GBox::refine`]).
    pub fn refine(&self, ratio: IntVector) -> BoxList {
        BoxList { boxes: self.boxes.iter().map(|b| b.refine(ratio)).collect() }
    }

    /// Coarsen every box (see [`GBox::coarsen`]). The result may contain
    /// overlapping coarse boxes for unaligned inputs, so it is rebuilt
    /// through [`BoxList::from_boxes`].
    pub fn coarsen(&self, ratio: IntVector) -> BoxList {
        BoxList::from_boxes(self.boxes.iter().map(|b| b.coarsen(ratio)))
    }

    /// Grow every box by `g` and re-normalise to a disjoint set.
    pub fn grow(&self, g: IntVector) -> BoxList {
        BoxList::from_boxes(self.boxes.iter().map(|b| b.grow(g)))
    }

    /// The bounding box of the whole region.
    pub fn bounding(&self) -> GBox {
        self.boxes.iter().fold(GBox::EMPTY, |acc, &b| acc.bounding(b))
    }

    /// Merge adjacent boxes that form exact rectangles, reducing
    /// fragmentation after repeated subtraction. Runs to a fixed point.
    pub fn coalesce(&mut self) {
        loop {
            let mut merged = false;
            'outer: for i in 0..self.boxes.len() {
                for j in (i + 1)..self.boxes.len() {
                    let (a, b) = (self.boxes[i], self.boxes[j]);
                    if let Some(m) = try_merge(a, b) {
                        self.boxes[i] = m;
                        self.boxes.swap_remove(j);
                        merged = true;
                        break 'outer;
                    }
                }
            }
            if !merged {
                return;
            }
        }
    }

    /// Iterate over component boxes.
    pub fn iter(&self) -> impl Iterator<Item = &GBox> {
        self.boxes.iter()
    }
}

impl FromIterator<GBox> for BoxList {
    fn from_iter<I: IntoIterator<Item = GBox>>(iter: I) -> Self {
        Self::from_boxes(iter)
    }
}

/// If `a` and `b` tile an exact rectangle, return it.
fn try_merge(a: GBox, b: GBox) -> Option<GBox> {
    for axis in 0..2 {
        let other = 1 - axis;
        if a.lo.get(other) == b.lo.get(other)
            && a.hi.get(other) == b.hi.get(other)
            && (a.hi.get(axis) == b.lo.get(axis) || b.hi.get(axis) == a.lo.get(axis))
        {
            return Some(a.bounding(b));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(x0: i64, y0: i64, x1: i64, y1: i64) -> GBox {
        GBox::from_coords(x0, y0, x1, y1)
    }

    #[test]
    fn add_keeps_disjointness() {
        let mut l = BoxList::new();
        l.add(b(0, 0, 4, 4));
        l.add(b(2, 2, 6, 6)); // overlaps; only the new part is added
        assert_eq!(l.num_cells(), 16 + 16 - 4);
        for (i, p) in l.boxes().iter().enumerate() {
            for q in &l.boxes()[i + 1..] {
                assert!(!p.intersects(*q));
            }
        }
    }

    #[test]
    fn add_fully_covered_is_noop() {
        let mut l = BoxList::from_box(b(0, 0, 8, 8));
        l.add(b(2, 2, 4, 4));
        assert_eq!(l.len(), 1);
        assert_eq!(l.num_cells(), 64);
    }

    #[test]
    fn empty_boxes_are_dropped() {
        let l = BoxList::from_boxes([GBox::EMPTY, b(0, 0, 1, 1), b(5, 5, 5, 9)]);
        assert_eq!(l.len(), 1);
        assert_eq!(l.num_cells(), 1);
    }

    #[test]
    fn subtraction() {
        let mut l = BoxList::from_box(b(0, 0, 4, 4));
        l.subtract_box(b(1, 1, 3, 3));
        assert_eq!(l.num_cells(), 12);
        assert!(!l.contains(IntVector::new(1, 1)));
        assert!(l.contains(IntVector::new(0, 0)));
        l.subtract(&BoxList::from_box(b(0, 0, 4, 4)));
        assert!(l.is_empty());
    }

    #[test]
    fn union_of_lists() {
        let mut a = BoxList::from_box(b(0, 0, 2, 2));
        let c = BoxList::from_box(b(1, 0, 3, 2));
        a.union(&c);
        assert_eq!(a.num_cells(), 6);
    }

    #[test]
    fn containment_queries() {
        let l = BoxList::from_boxes([b(0, 0, 2, 4), b(2, 0, 4, 4)]);
        assert!(l.contains_box(b(0, 0, 4, 4))); // spans both components
        assert!(l.contains_box(b(1, 1, 3, 3)));
        assert!(!l.contains_box(b(3, 3, 5, 5)));
        assert!(l.contains_box(GBox::EMPTY));
    }

    #[test]
    fn refine_coarsen() {
        let l = BoxList::from_box(b(1, 1, 3, 3));
        let r = IntVector::uniform(2);
        assert_eq!(l.refine(r).num_cells(), 16);
        assert_eq!(l.refine(r).coarsen(r), l);
        // Coarsening unaligned overlapping results stays disjoint.
        let l2 = BoxList::from_boxes([b(1, 1, 3, 3), b(3, 1, 5, 3)]);
        let c = l2.coarsen(r);
        assert!(c.contains_box(b(0, 0, 3, 2)));
    }

    #[test]
    fn intersect_box_clips() {
        let l = BoxList::from_boxes([b(0, 0, 4, 4), b(6, 6, 8, 8)]);
        let c = l.intersect_box(b(2, 2, 7, 7));
        assert_eq!(c.num_cells(), 4 + 1);
    }

    #[test]
    fn list_intersection() {
        let a = BoxList::from_boxes([b(0, 0, 4, 4), b(6, 6, 10, 10)]);
        let c = BoxList::from_boxes([b(2, 2, 8, 8)]);
        let i = a.intersect(&c);
        // [2,4)^2 (4 cells) plus [6,8)^2 (4 cells).
        assert_eq!(i.num_cells(), 8);
        assert!(i.contains(IntVector::new(3, 3)));
        assert!(i.contains(IntVector::new(7, 7)));
        assert!(!i.contains(IntVector::new(5, 5)));
        // Intersection is commutative.
        assert_eq!(c.intersect(&a).num_cells(), 8);
        // With the empty region: empty.
        assert!(a.intersect(&BoxList::new()).is_empty());
    }

    #[test]
    fn bounding_box_spans_components() {
        let l = BoxList::from_boxes([b(0, 0, 1, 1), b(5, 7, 6, 9)]);
        assert_eq!(l.bounding(), b(0, 0, 6, 9));
        assert_eq!(BoxList::new().bounding(), GBox::EMPTY);
    }

    #[test]
    fn coalesce_merges_tiles() {
        let mut l = BoxList::from_boxes([b(0, 0, 2, 2), b(2, 0, 4, 2), b(0, 2, 4, 4)]);
        assert_eq!(l.len(), 3);
        l.coalesce();
        assert_eq!(l.len(), 1);
        assert_eq!(l.boxes()[0], b(0, 0, 4, 4));
    }

    #[test]
    fn coalesce_leaves_non_mergeable() {
        let mut l = BoxList::from_boxes([b(0, 0, 2, 2), b(3, 3, 5, 5)]);
        l.coalesce();
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn grow_renormalises() {
        let l = BoxList::from_boxes([b(0, 0, 2, 2), b(3, 0, 5, 2)]);
        let g = l.grow(IntVector::ONE);
        // Grown boxes [-1,3)x[-1,3) and [2,6)x[-1,3) overlap in a 1x4
        // strip; the result must stay disjoint with correct area.
        assert_eq!(g.num_cells(), 16 + 16 - 4);
        for (i, p) in g.boxes().iter().enumerate() {
            for q in &g.boxes()[i + 1..] {
                assert!(!p.intersects(*q));
            }
        }
    }
}
