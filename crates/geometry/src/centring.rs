//! Data centrings: where on the mesh a quantity lives.

use crate::gbox::GBox;
use crate::ivec::IntVector;
use serde::{Deserialize, Serialize};

/// The mesh centring of a simulation quantity.
///
/// The paper's hydro scheme needs exactly three centrings (Section IV-B):
/// cell-centred (density, energy, pressure), node-centred (velocities on
/// the staggered grid) and side-centred (volume/mass fluxes through cell
/// faces). Each centring induces a different *data box* for the same
/// cell box: a patch of `n × m` cells stores `(n+1) × (m+1)` node values
/// and `(n+1) × m` x-side values.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Centring {
    /// Values at cell centres.
    Cell,
    /// Values at cell corners (nodes of the dual grid).
    Node,
    /// Values at face centres with normal along `axis` (0 = x, 1 = y).
    Side(usize),
}

impl Centring {
    /// Map a cell box to the index box of data with this centring.
    ///
    /// * `Cell` — unchanged.
    /// * `Node` — one extra layer on the upper side in both axes.
    /// * `Side(d)` — one extra layer on the upper side along `d`.
    pub fn data_box(self, cell_box: GBox) -> GBox {
        if cell_box.is_empty() {
            return GBox::EMPTY;
        }
        match self {
            Centring::Cell => cell_box,
            Centring::Node => cell_box.grow_upper(IntVector::ONE),
            Centring::Side(axis) => {
                assert!(axis < 2, "Centring::Side axis out of range");
                cell_box.grow_upper(IntVector::unit(axis))
            }
        }
    }

    /// Number of data values this centring stores for a given cell box.
    pub fn num_values(self, cell_box: GBox) -> i64 {
        self.data_box(cell_box).num_cells()
    }

    /// Short human-readable name (used in variable registries and
    /// diagnostics).
    pub fn name(self) -> &'static str {
        match self {
            Centring::Cell => "cell",
            Centring::Node => "node",
            Centring::Side(0) => "side-x",
            Centring::Side(1) => "side-y",
            Centring::Side(_) => unreachable!("2D centring"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(x0: i64, y0: i64, x1: i64, y1: i64) -> GBox {
        GBox::from_coords(x0, y0, x1, y1)
    }

    #[test]
    fn cell_box_unchanged() {
        let c = b(0, 0, 4, 3);
        assert_eq!(Centring::Cell.data_box(c), c);
        assert_eq!(Centring::Cell.num_values(c), 12);
    }

    #[test]
    fn node_box_one_larger_each_axis() {
        let c = b(0, 0, 4, 3);
        assert_eq!(Centring::Node.data_box(c), b(0, 0, 5, 4));
        assert_eq!(Centring::Node.num_values(c), 20);
    }

    #[test]
    fn side_boxes_one_larger_along_normal() {
        let c = b(0, 0, 4, 3);
        assert_eq!(Centring::Side(0).data_box(c), b(0, 0, 5, 3));
        assert_eq!(Centring::Side(1).data_box(c), b(0, 0, 4, 4));
        assert_eq!(Centring::Side(0).num_values(c), 15);
        assert_eq!(Centring::Side(1).num_values(c), 16);
    }

    #[test]
    fn empty_boxes_stay_empty() {
        assert!(Centring::Node.data_box(GBox::EMPTY).is_empty());
        assert_eq!(Centring::Side(1).num_values(GBox::EMPTY), 0);
    }

    #[test]
    fn names() {
        assert_eq!(Centring::Cell.name(), "cell");
        assert_eq!(Centring::Node.name(), "node");
        assert_eq!(Centring::Side(0).name(), "side-x");
        assert_eq!(Centring::Side(1).name(), "side-y");
    }
}
