//! Spatial box index: "which boxes intersect this region?" in
//! O(log N + k) instead of O(N).
//!
//! Every communication schedule and every regrid in the `amr` crate
//! asks the same question — which patches of a level overlap a given
//! ghost, scratch or transfer region — and the level metadata is
//! globally replicated, so the question used to be answered by scanning
//! all N boxes for each of N destinations. That quadratic metadata
//! cost is exactly the regridding overhead the paper's Fig. 11 shows
//! growing with scale; production frameworks (e.g. AMReX) answer it
//! with hashed or sorted spatial indices instead.
//!
//! [`BoxIndex`] is the sorted variant: boxes are ordered along the
//! Morton space-filling curve of their centroids (the same curve the
//! load balancer uses, so spatially adjacent boxes are adjacent in the
//! array), and an implicit bounding-box tree over that order prunes
//! whole subtrees whose bounds miss the query region. Queries return
//! original box indices in ascending order, so a plan built from index
//! candidates is *identical* — not merely equivalent — to one built
//! from the brute-force scan (the `amr` proptests assert this).

use crate::gbox::GBox;
use crate::ivec::IntVector;
use crate::sfc::morton_key;

/// A static spatial index over a set of boxes.
///
/// Built once from a level's (replicated) box array; queries never
/// mutate. The optional `ghost` growth is applied to every stored box
/// at build time, so a single index answers "which boxes come within
/// `ghost` cells of region R" without growing every query.
#[derive(Clone, Debug)]
pub struct BoxIndex {
    /// Grown boxes in Morton order, paired with their original index.
    entries: Vec<(GBox, u32)>,
    /// Implicit binary tree: `tree[1]` is the root, node `i` has
    /// children `2i` and `2i+1`, and `tree[cap + j]` bounds
    /// `entries[j]`. Padding leaves are [`GBox::EMPTY`] and prune
    /// themselves (nothing intersects an empty box).
    tree: Vec<GBox>,
    /// Leaf offset: the number of leaves, rounded up to a power of two.
    cap: usize,
}

impl BoxIndex {
    /// Build an index over `boxes`, each grown by `ghost` cells per
    /// side. Empty input boxes are never reported (they cannot
    /// intersect anything, even grown).
    ///
    /// Cost: O(N log N) for the Morton sort.
    ///
    /// # Panics
    /// Panics if any `ghost` component is negative.
    pub fn new(boxes: &[GBox], ghost: IntVector) -> Self {
        assert!(ghost.all_ge(IntVector::ZERO), "BoxIndex: negative ghost width");
        assert!(boxes.len() <= u32::MAX as usize, "BoxIndex: too many boxes");
        let mut entries: Vec<(GBox, u32)> = boxes
            .iter()
            .enumerate()
            .filter(|(_, b)| !b.is_empty())
            .map(|(i, &b)| (b.grow(ghost), i as u32))
            .collect();
        entries.sort_by_key(|&(b, i)| {
            // Floor (not truncating) division: centroids of boxes
            // straddling the origin must stay on their side of the
            // Morton split.
            let cx = (b.lo.x + b.hi.x).div_euclid(2);
            let cy = (b.lo.y + b.hi.y).div_euclid(2);
            (morton_key(cx, cy), i)
        });
        let cap = entries.len().next_power_of_two().max(1);
        let mut tree = vec![GBox::EMPTY; 2 * cap];
        for (j, &(b, _)) in entries.iter().enumerate() {
            tree[cap + j] = b;
        }
        for i in (1..cap).rev() {
            tree[i] = tree[2 * i].bounding(tree[2 * i + 1]);
        }
        Self { entries, tree, cap }
    }

    /// Number of (non-empty) boxes in the index.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the index holds no boxes.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Indices of all stored (grown) boxes intersecting `region`,
    /// ascending. Convenience wrapper over [`BoxIndex::query_into`].
    pub fn query(&self, region: GBox) -> Vec<usize> {
        let mut out = Vec::new();
        self.query_into(region, &mut out);
        out
    }

    /// Collect into `out` (cleared first) the original indices of all
    /// stored boxes intersecting `region`, in ascending index order —
    /// the same order a brute-force scan visits them.
    ///
    /// Cost: O(log N + k) expected for k results — the Morton order
    /// keeps spatially close boxes in contiguous subtrees, so the
    /// descent prunes all but O(log N) off-path nodes.
    pub fn query_into(&self, region: GBox, out: &mut Vec<usize>) {
        out.clear();
        if region.is_empty() || self.entries.is_empty() {
            return;
        }
        // Explicit-stack descent; depth is log2(cap) <= 32.
        let mut stack = [0usize; 64];
        let mut top = 0;
        stack[top] = 1;
        top += 1;
        while top > 0 {
            top -= 1;
            let node = stack[top];
            if !self.tree[node].intersects(region) {
                continue;
            }
            if node >= self.cap {
                out.push(self.entries[node - self.cap].1 as usize);
            } else {
                stack[top] = 2 * node;
                stack[top + 1] = 2 * node + 1;
                top += 2;
            }
        }
        out.sort_unstable();
    }

    /// Reference implementation: linear scan over the stored (grown)
    /// boxes. The schedules keep this as their test oracle.
    pub fn query_bruteforce(&self, region: GBox) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .entries
            .iter()
            .filter(|(b, _)| b.intersects(region))
            .map(|&(_, i)| i as usize)
            .collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(x0: i64, y0: i64, x1: i64, y1: i64) -> GBox {
        GBox::from_coords(x0, y0, x1, y1)
    }

    fn tiles(n: i64, size: i64, origin: IntVector) -> Vec<GBox> {
        let mut out = Vec::new();
        for j in 0..n {
            for i in 0..n {
                let lo = origin + IntVector::new(i * size, j * size);
                out.push(GBox::new(lo, lo + IntVector::uniform(size)));
            }
        }
        out
    }

    #[test]
    fn finds_exactly_the_intersecting_set() {
        let boxes = tiles(4, 8, IntVector::ZERO);
        let ix = BoxIndex::new(&boxes, IntVector::ZERO);
        assert_eq!(ix.len(), 16);
        // A region covering the lower-left 2x2 tiles plus one cell of
        // the next ring.
        let q = b(0, 0, 17, 17);
        let expect: Vec<usize> = (0..boxes.len()).filter(|&i| boxes[i].intersects(q)).collect();
        assert_eq!(ix.query(q), expect);
        assert_eq!(ix.query(q), ix.query_bruteforce(q));
    }

    #[test]
    fn touching_edges_and_corners_do_not_count_without_ghosts() {
        // [0,8)² and [8,16)² share an edge coordinate but no cell.
        let boxes = vec![b(0, 0, 8, 8), b(8, 0, 16, 8), b(8, 8, 16, 16)];
        let ix = BoxIndex::new(&boxes, IntVector::ZERO);
        // Query exactly box 0: the edge-adjacent box 1 and the
        // corner-adjacent box 2 must not appear.
        assert_eq!(ix.query(b(0, 0, 8, 8)), vec![0]);
        // One cell across the edge picks up box 1 only.
        assert_eq!(ix.query(b(7, 0, 9, 8)), vec![0, 1]);
        // One cell across the corner picks up everything it touches.
        assert_eq!(ix.query(b(7, 7, 9, 9)), vec![0, 1, 2]);
    }

    #[test]
    fn ghost_width_only_overlaps_are_found() {
        // Two boxes separated by a 1-cell gap: a ghost width of 2
        // reaches across the gap into the neighbour, ghost 1 only
        // reaches the empty gap cell, ghost 0 sees nothing.
        let boxes = vec![b(0, 0, 4, 4), b(5, 0, 9, 4)];
        let bare = BoxIndex::new(&boxes, IntVector::ZERO);
        assert_eq!(bare.query(b(0, 0, 4, 4)), vec![0]);
        let near = BoxIndex::new(&boxes, IntVector::ONE);
        assert_eq!(near.query(b(0, 0, 4, 4)), vec![0]);
        let grown = BoxIndex::new(&boxes, IntVector::uniform(2));
        assert_eq!(grown.query(b(0, 0, 4, 4)), vec![0, 1]);
        // The gap cell itself intersects both grown boxes.
        assert_eq!(grown.query(b(4, 0, 5, 4)), vec![0, 1]);
        // A region clear of both grown boxes finds nothing.
        assert!(grown.query(b(20, 20, 24, 24)).is_empty());
    }

    #[test]
    fn empty_inputs_and_queries() {
        let ix = BoxIndex::new(&[], IntVector::ZERO);
        assert!(ix.is_empty());
        assert!(ix.query(b(0, 0, 100, 100)).is_empty());
        // Empty boxes are dropped even though growing them would make
        // them non-empty.
        let ix = BoxIndex::new(&[GBox::EMPTY, b(0, 0, 2, 2)], IntVector::uniform(3));
        assert_eq!(ix.len(), 1);
        assert_eq!(ix.query(b(-1, -1, 0, 0)), vec![1]);
        assert!(ix.query(GBox::EMPTY).is_empty());
    }

    #[test]
    fn negative_index_space() {
        let boxes = tiles(4, 7, IntVector::uniform(-14));
        let ix = BoxIndex::new(&boxes, IntVector::ONE);
        for &q in &[b(-14, -14, -7, -7), b(-1, -1, 1, 1), b(-20, -20, 20, 20)] {
            assert_eq!(ix.query(q), ix.query_bruteforce(q), "query {q}");
        }
    }

    #[test]
    fn duplicate_and_nested_boxes() {
        let boxes = vec![b(0, 0, 8, 8), b(0, 0, 8, 8), b(2, 2, 4, 4)];
        let ix = BoxIndex::new(&boxes, IntVector::ZERO);
        assert_eq!(ix.query(b(3, 3, 4, 4)), vec![0, 1, 2]);
    }
}
