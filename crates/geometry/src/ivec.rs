//! 2D integer vectors used for indices, box corners, ghost widths and
//! refinement ratios.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A 2D integer vector.
///
/// `IntVector` plays every integer-vector role in the AMR framework: cell
/// indices, box corners, ghost-cell widths, and refinement ratios
/// (`r_l = h_{l-1} / h_l` in the paper's Section II).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct IntVector {
    /// Component along the x (column, fastest-varying) axis.
    pub x: i64,
    /// Component along the y (row, slowest-varying) axis.
    pub y: i64,
}

impl IntVector {
    /// Create a vector from its two components.
    pub const fn new(x: i64, y: i64) -> Self {
        Self { x, y }
    }

    /// The zero vector.
    pub const ZERO: Self = Self::new(0, 0);

    /// The all-ones vector.
    pub const ONE: Self = Self::new(1, 1);

    /// A vector with both components equal to `v`.
    pub const fn uniform(v: i64) -> Self {
        Self::new(v, v)
    }

    /// The unit vector along axis `axis` (0 = x, 1 = y).
    ///
    /// # Panics
    /// Panics if `axis >= 2`.
    pub const fn unit(axis: usize) -> Self {
        match axis {
            0 => Self::new(1, 0),
            1 => Self::new(0, 1),
            _ => panic!("IntVector::unit: axis out of range"),
        }
    }

    /// Component-wise minimum.
    pub fn min(self, other: Self) -> Self {
        Self::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Component-wise maximum.
    pub fn max(self, other: Self) -> Self {
        Self::new(self.x.max(other.x), self.y.max(other.y))
    }

    /// Component-wise absolute value.
    pub fn abs(self) -> Self {
        Self::new(self.x.abs(), self.y.abs())
    }

    /// Product of the components. For a box size vector this is the cell
    /// count, hence the return type is `i64` (can be large but never
    /// overflows for realistic meshes).
    pub fn product(self) -> i64 {
        self.x * self.y
    }

    /// True if every component of `self` is `>=` the matching component
    /// of `other`.
    pub fn all_ge(self, other: Self) -> bool {
        self.x >= other.x && self.y >= other.y
    }

    /// True if every component of `self` is `>` the matching component of
    /// `other`.
    pub fn all_gt(self, other: Self) -> bool {
        self.x > other.x && self.y > other.y
    }

    /// Component-wise multiplication.
    pub fn scale(self, other: Self) -> Self {
        Self::new(self.x * other.x, self.y * other.y)
    }

    /// Component-wise Euclidean (floor) division: the quotient is rounded
    /// toward negative infinity, which is the coarsening rule for cell
    /// indices (`coarse = floor(fine / ratio)`).
    ///
    /// # Panics
    /// Panics if any component of `other` is zero.
    pub fn div_floor(self, other: Self) -> Self {
        Self::new(self.x.div_euclid(other.x), self.y.div_euclid(other.y))
    }

    /// Component-wise ceiling division (rounds toward positive infinity).
    ///
    /// # Panics
    /// Panics if any component of `other` is not positive.
    pub fn div_ceil(self, other: Self) -> Self {
        assert!(other.all_gt(IntVector::ZERO), "div_ceil: ratio must be positive");
        let q = |a: i64, b: i64| a.div_euclid(b) + i64::from(a.rem_euclid(b) != 0);
        Self::new(q(self.x, other.x), q(self.y, other.y))
    }

    /// Access a component by axis index (0 = x, 1 = y).
    pub fn get(self, axis: usize) -> i64 {
        match axis {
            0 => self.x,
            1 => self.y,
            _ => panic!("IntVector::get: axis out of range"),
        }
    }

    /// Set a component by axis index, returning the modified vector.
    pub fn with(self, axis: usize, v: i64) -> Self {
        match axis {
            0 => Self::new(v, self.y),
            1 => Self::new(self.x, v),
            _ => panic!("IntVector::with: axis out of range"),
        }
    }
}

impl fmt::Debug for IntVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

impl fmt::Display for IntVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

impl Add for IntVector {
    type Output = Self;
    fn add(self, o: Self) -> Self {
        Self::new(self.x + o.x, self.y + o.y)
    }
}

impl AddAssign for IntVector {
    fn add_assign(&mut self, o: Self) {
        *self = *self + o;
    }
}

impl Sub for IntVector {
    type Output = Self;
    fn sub(self, o: Self) -> Self {
        Self::new(self.x - o.x, self.y - o.y)
    }
}

impl SubAssign for IntVector {
    fn sub_assign(&mut self, o: Self) {
        *self = *self - o;
    }
}

impl Neg for IntVector {
    type Output = Self;
    fn neg(self) -> Self {
        Self::new(-self.x, -self.y)
    }
}

impl Mul<i64> for IntVector {
    type Output = Self;
    fn mul(self, s: i64) -> Self {
        Self::new(self.x * s, self.y * s)
    }
}

impl Div<i64> for IntVector {
    type Output = Self;
    fn div(self, s: i64) -> Self {
        Self::new(self.x / s, self.y / s)
    }
}

impl Index<usize> for IntVector {
    type Output = i64;
    fn index(&self, axis: usize) -> &i64 {
        match axis {
            0 => &self.x,
            1 => &self.y,
            _ => panic!("IntVector: axis out of range"),
        }
    }
}

impl IndexMut<usize> for IntVector {
    fn index_mut(&mut self, axis: usize) -> &mut i64 {
        match axis {
            0 => &mut self.x,
            1 => &mut self.y,
            _ => panic!("IntVector: axis out of range"),
        }
    }
}

impl From<(i64, i64)> for IntVector {
    fn from(t: (i64, i64)) -> Self {
        Self::new(t.0, t.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_ops() {
        let a = IntVector::new(3, -2);
        let b = IntVector::new(1, 5);
        assert_eq!(a + b, IntVector::new(4, 3));
        assert_eq!(a - b, IntVector::new(2, -7));
        assert_eq!(-a, IntVector::new(-3, 2));
        assert_eq!(a * 2, IntVector::new(6, -4));
        assert_eq!(a.scale(b), IntVector::new(3, -10));
    }

    #[test]
    fn min_max_abs() {
        let a = IntVector::new(3, -2);
        let b = IntVector::new(1, 5);
        assert_eq!(a.min(b), IntVector::new(1, -2));
        assert_eq!(a.max(b), IntVector::new(3, 5));
        assert_eq!(a.abs(), IntVector::new(3, 2));
    }

    #[test]
    fn floor_division_rounds_down_for_negatives() {
        let r = IntVector::uniform(2);
        assert_eq!(IntVector::new(-1, -3).div_floor(r), IntVector::new(-1, -2));
        assert_eq!(IntVector::new(5, 4).div_floor(r), IntVector::new(2, 2));
    }

    #[test]
    fn ceil_division_rounds_up() {
        let r = IntVector::uniform(2);
        assert_eq!(IntVector::new(-1, -3).div_ceil(r), IntVector::new(0, -1));
        assert_eq!(IntVector::new(5, 4).div_ceil(r), IntVector::new(3, 2));
    }

    #[test]
    fn component_access() {
        let mut a = IntVector::new(7, 9);
        assert_eq!(a[0], 7);
        assert_eq!(a[1], 9);
        assert_eq!(a.get(0), 7);
        a[1] = 4;
        assert_eq!(a, IntVector::new(7, 4));
        assert_eq!(a.with(0, 0), IntVector::new(0, 4));
    }

    #[test]
    fn unit_vectors() {
        assert_eq!(IntVector::unit(0), IntVector::new(1, 0));
        assert_eq!(IntVector::unit(1), IntVector::new(0, 1));
    }

    #[test]
    fn comparisons() {
        assert!(IntVector::new(2, 2).all_ge(IntVector::new(2, 1)));
        assert!(!IntVector::new(2, 0).all_ge(IntVector::new(2, 1)));
        assert!(IntVector::new(3, 2).all_gt(IntVector::new(2, 1)));
        assert!(!IntVector::new(2, 2).all_gt(IntVector::new(2, 1)));
    }

    #[test]
    fn product_counts_cells() {
        assert_eq!(IntVector::new(10, 20).product(), 200);
        assert_eq!(IntVector::ZERO.product(), 0);
    }
}
