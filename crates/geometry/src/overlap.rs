//! Overlap computation: which parts of one patch's data fill another
//! patch's ghost region.

use crate::boxlist::BoxList;
use crate::centring::Centring;
use crate::gbox::GBox;
use crate::ivec::IntVector;
use serde::{Deserialize, Serialize};

/// Description of a data transfer between two patches.
///
/// This is the analogue of SAMRAI's `BoxOverlap` (it appears throughout
/// the `PatchData` interface in Figure 2 of the paper): the set of
/// destination-index-space boxes to fill, plus the shift that maps a
/// destination index back to the source index space (non-zero only for
/// periodic images; the reproduced problems use reflective physical
/// boundaries, so the shift is usually zero).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BoxOverlap {
    /// Regions to fill, expressed in the *destination* index space and in
    /// the *data* (centring-adjusted) index space.
    pub dst_boxes: BoxList,
    /// `src_index = dst_index - shift`.
    pub shift: IntVector,
    /// The centring of the data being moved.
    pub centring: Centring,
}

impl BoxOverlap {
    /// An empty overlap (nothing to transfer).
    pub fn empty(centring: Centring) -> Self {
        Self { dst_boxes: BoxList::new(), shift: IntVector::ZERO, centring }
    }

    /// True if there is nothing to transfer.
    pub fn is_empty(&self) -> bool {
        self.dst_boxes.is_empty()
    }

    /// Total number of data values the overlap moves.
    pub fn num_values(&self) -> i64 {
        self.dst_boxes.num_cells()
    }
}

/// Compute the overlap needed to fill the ghost region of a destination
/// patch from the interior of a source patch on the same level.
///
/// * `dst_cell_box` — destination patch interior (cell space).
/// * `ghosts` — destination ghost width in cells.
/// * `src_cell_box` — source patch interior (cell space).
/// * `centring` — centring of the quantity being filled.
/// * `shift` — maps destination indices to source space (`src = dst -
///   shift`); pass [`IntVector::ZERO`] except for periodic images.
///
/// The result covers `(ghost data box ∩ shifted source data box)` minus
/// the destination's own interior data box, so a patch never overwrites
/// values it owns. For node- and side-centred data, values on the shared
/// patch boundary are owned by the destination (both patches hold
/// identical values there by construction of the scheme).
pub fn ghost_overlaps(
    dst_cell_box: GBox,
    ghosts: IntVector,
    src_cell_box: GBox,
    centring: Centring,
    shift: IntVector,
) -> BoxOverlap {
    let dst_data = centring.data_box(dst_cell_box);
    let dst_ghost_data = centring.data_box(dst_cell_box.grow(ghosts));
    let src_data = centring.data_box(src_cell_box).shift(shift);
    let mut fill = BoxList::from_box(dst_ghost_data.intersect(src_data));
    fill.subtract_box(dst_data);
    fill.coalesce();
    BoxOverlap { dst_boxes: fill, shift, centring }
}

/// Compute the overlap for a plain interior-to-interior copy (used when
/// data moves between old and new patches during regridding): the
/// intersection of the two data boxes, without ghost growth.
pub fn copy_overlap(dst_cell_box: GBox, src_cell_box: GBox, centring: Centring) -> BoxOverlap {
    let dst_data = centring.data_box(dst_cell_box);
    let src_data = centring.data_box(src_cell_box);
    let fill = BoxList::from_box(dst_data.intersect(src_data));
    BoxOverlap { dst_boxes: fill, shift: IntVector::ZERO, centring }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(x0: i64, y0: i64, x1: i64, y1: i64) -> GBox {
        GBox::from_coords(x0, y0, x1, y1)
    }

    const G2: IntVector = IntVector::uniform(2);

    #[test]
    fn adjacent_patches_cell_overlap() {
        // Two 4x4 patches side by side; dst ghost width 2.
        let dst = b(0, 0, 4, 4);
        let src = b(4, 0, 8, 4);
        let ov = ghost_overlaps(dst, G2, src, Centring::Cell, IntVector::ZERO);
        // Fill region: x in [4,6), y in [0,4) => 8 cells.
        assert_eq!(ov.num_values(), 8);
        assert!(ov.dst_boxes.contains_box(b(4, 0, 6, 4)));
    }

    #[test]
    fn distant_patches_do_not_overlap() {
        let ov =
            ghost_overlaps(b(0, 0, 4, 4), G2, b(10, 10, 14, 14), Centring::Cell, IntVector::ZERO);
        assert!(ov.is_empty());
    }

    #[test]
    fn node_overlap_excludes_owned_boundary_nodes() {
        let dst = b(0, 0, 4, 4);
        let src = b(4, 0, 8, 4);
        let ov = ghost_overlaps(dst, G2, src, Centring::Node, IntVector::ZERO);
        // Destination node data box is [0,5)x[0,5); the shared column of
        // nodes at x=4 is owned by dst, so the fill starts at x=5.
        assert!(!ov.dst_boxes.contains(IntVector::new(4, 0)));
        assert!(ov.dst_boxes.contains(IntVector::new(5, 0)));
        // x in [5,7), y in [0,5) => 10 nodes.
        assert_eq!(ov.num_values(), 10);
    }

    #[test]
    fn side_overlap_respects_normal_axis() {
        let dst = b(0, 0, 4, 4);
        let src = b(4, 0, 8, 4);
        // x-sides: dst owns x=4 faces; fill x in [5,7), 4 rows => 8.
        let ovx = ghost_overlaps(dst, G2, src, Centring::Side(0), IntVector::ZERO);
        assert_eq!(ovx.num_values(), 8);
        // y-sides: dst data box is [0,4)x[0,5); fill x in [4,6), y in [0,5) => 10.
        let ovy = ghost_overlaps(dst, G2, src, Centring::Side(1), IntVector::ZERO);
        assert_eq!(ovy.num_values(), 10);
    }

    #[test]
    fn diagonal_corner_overlap() {
        let dst = b(0, 0, 4, 4);
        let src = b(4, 4, 8, 8);
        let ov = ghost_overlaps(dst, G2, src, Centring::Cell, IntVector::ZERO);
        // Corner: x,y in [4,6) => 4 cells.
        assert_eq!(ov.num_values(), 4);
    }

    #[test]
    fn shifted_overlap_for_periodic_image() {
        // Source physically at [8,12) but periodic image shifted to abut
        // dst's low side: shift maps dst index -> src index - shift.
        let dst = b(0, 0, 4, 4);
        let src = b(8, 0, 12, 4);
        let shift = IntVector::new(-12, 0); // src appears at [-4,0)
        let ov = ghost_overlaps(dst, G2, src, Centring::Cell, shift);
        assert_eq!(ov.num_values(), 8);
        assert!(ov.dst_boxes.contains_box(b(-2, 0, 0, 4)));
    }

    #[test]
    fn copy_overlap_is_interior_intersection() {
        let ov = copy_overlap(b(0, 0, 4, 4), b(2, 2, 6, 6), Centring::Cell);
        assert_eq!(ov.num_values(), 4);
        let ovn = copy_overlap(b(0, 0, 4, 4), b(2, 2, 6, 6), Centring::Node);
        // Node boxes [0,5)^2 and [2,7)^2 intersect in [2,5)^2 = 9.
        assert_eq!(ovn.num_values(), 9);
    }

    #[test]
    fn overlapping_patches_fill_only_ghosts() {
        // Pathological but legal: src overlaps dst interior. The interior
        // must not appear in the fill region.
        let dst = b(0, 0, 4, 4);
        let src = b(2, 0, 8, 4);
        let ov = ghost_overlaps(dst, IntVector::ONE, src, Centring::Cell, IntVector::ZERO);
        assert!(!ov.dst_boxes.contains(IntVector::new(3, 0)));
        assert!(ov.dst_boxes.contains(IntVector::new(4, 0)));
    }
}
