//! Property-based tests for the box calculus invariants that the AMR
//! framework relies on.

use proptest::prelude::*;
use rbamr_geometry::{BoxList, Centring, GBox, IntVector};

fn arb_box() -> impl Strategy<Value = GBox> {
    (-50i64..50, -50i64..50, 1i64..30, 1i64..30)
        .prop_map(|(x, y, w, h)| GBox::from_coords(x, y, x + w, y + h))
}

fn arb_ratio() -> impl Strategy<Value = IntVector> {
    (1i64..5, 1i64..5).prop_map(|(x, y)| IntVector::new(x, y))
}

proptest! {
    /// Intersection is commutative and contained in both operands.
    #[test]
    fn intersection_laws(a in arb_box(), b in arb_box()) {
        let ab = a.intersect(b);
        prop_assert_eq!(ab, b.intersect(a));
        prop_assert!(a.contains_box(ab));
        prop_assert!(b.contains_box(ab));
    }

    /// Subtraction produces disjoint pieces whose area is |a| - |a ∩ b|
    /// and which never intersect b.
    #[test]
    fn subtraction_partitions(a in arb_box(), b in arb_box()) {
        let mut out = Vec::new();
        a.subtract_into(b, &mut out);
        let area: i64 = out.iter().map(|p| p.num_cells()).sum();
        prop_assert_eq!(area, a.num_cells() - a.intersect(b).num_cells());
        for (i, p) in out.iter().enumerate() {
            prop_assert!(!p.is_empty());
            prop_assert!(!p.intersects(b));
            prop_assert!(a.contains_box(*p));
            for q in &out[i + 1..] {
                prop_assert!(!p.intersects(*q));
            }
        }
    }

    /// refine then coarsen is the identity for any positive ratio.
    #[test]
    fn refine_coarsen_identity(a in arb_box(), r in arb_ratio()) {
        prop_assert_eq!(a.refine(r).coarsen(r), a);
    }

    /// Coarsening covers: refining the coarsened box contains the
    /// original.
    #[test]
    fn coarsen_covers(a in arb_box(), r in arb_ratio()) {
        let c = a.coarsen(r);
        prop_assert!(c.refine(r).contains_box(a));
    }

    /// A refined box is always aligned to its ratio.
    #[test]
    fn refined_boxes_are_aligned(a in arb_box(), r in arb_ratio()) {
        prop_assert!(a.refine(r).is_aligned(r));
    }

    /// BoxList area accounting: adding boxes one at a time produces the
    /// area of the true set union (checked against per-cell membership).
    #[test]
    fn boxlist_union_area(boxes in prop::collection::vec(arb_box(), 1..6)) {
        let list = BoxList::from_boxes(boxes.iter().copied());
        // Count cells by membership in any input box over the bounding box.
        let bound = boxes.iter().fold(GBox::EMPTY, |acc, &b| acc.bounding(b));
        let mut count = 0i64;
        for p in bound.iter() {
            if boxes.iter().any(|b| b.contains(p)) {
                count += 1;
            }
        }
        prop_assert_eq!(list.num_cells(), count);
        // Components are disjoint.
        for (i, p) in list.boxes().iter().enumerate() {
            for q in &list.boxes()[i + 1..] {
                prop_assert!(!p.intersects(*q));
            }
        }
    }

    /// Subtracting a list from itself leaves nothing.
    #[test]
    fn boxlist_self_subtraction(boxes in prop::collection::vec(arb_box(), 1..6)) {
        let mut list = BoxList::from_boxes(boxes.iter().copied());
        let other = list.clone();
        list.subtract(&other);
        prop_assert!(list.is_empty());
    }

    /// Coalescing never changes the region (area and membership).
    #[test]
    fn coalesce_preserves_region(boxes in prop::collection::vec(arb_box(), 1..6)) {
        let list = BoxList::from_boxes(boxes.iter().copied());
        let mut merged = list.clone();
        merged.coalesce();
        prop_assert_eq!(merged.num_cells(), list.num_cells());
        prop_assert!(merged.len() <= list.len());
        let bound = list.bounding();
        for p in bound.iter() {
            prop_assert_eq!(merged.contains(p), list.contains(p));
        }
    }

    /// Data boxes nest: the cell data box is contained in the side data
    /// box which is contained in the node data box.
    #[test]
    fn centring_data_boxes_nest(a in arb_box()) {
        let cell = Centring::Cell.data_box(a);
        let node = Centring::Node.data_box(a);
        for axis in 0..2 {
            let side = Centring::Side(axis).data_box(a);
            prop_assert!(side.contains_box(cell));
            prop_assert!(node.contains_box(side));
        }
    }

    /// Ghost overlap fill regions lie inside the ghost box and outside
    /// the interior, for every centring.
    #[test]
    fn ghost_overlap_placement(dst in arb_box(), src in arb_box(), g in 1i64..4) {
        let ghosts = IntVector::uniform(g);
        for centring in [Centring::Cell, Centring::Node, Centring::Side(0), Centring::Side(1)] {
            let ov = rbamr_geometry::ghost_overlaps(dst, ghosts, src, centring, IntVector::ZERO);
            let interior = centring.data_box(dst);
            let ghost_data = centring.data_box(dst.grow(ghosts));
            let src_data = centring.data_box(src);
            for b in ov.dst_boxes.boxes() {
                prop_assert!(ghost_data.contains_box(*b));
                prop_assert!(!b.intersects(interior));
                prop_assert!(src_data.contains_box(*b));
            }
        }
    }

    /// The spatial index returns exactly the brute-force intersecting
    /// set, for any box population, ghost width and query region.
    #[test]
    fn box_index_matches_bruteforce(
        boxes in proptest::collection::vec(arb_box(), 0..40),
        q in arb_box(),
        g in 0i64..4,
    ) {
        let ix = rbamr_geometry::BoxIndex::new(&boxes, IntVector::uniform(g));
        let expect: Vec<usize> = (0..boxes.len())
            .filter(|&i| boxes[i].grow(IntVector::uniform(g)).intersects(q))
            .collect();
        prop_assert_eq!(ix.query(q), expect.clone());
        prop_assert_eq!(ix.query_bruteforce(q), expect);
    }
}
