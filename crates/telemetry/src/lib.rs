//! # rbamr-telemetry
//!
//! Observability layer for the whole stack: lightweight spans recorded
//! against the **virtual** clock (so traces are deterministic — the
//! same run always produces byte-identical output), named monotonic
//! counters and peak gauges, and exporters for Chrome trace-event JSON
//! (`chrome://tracing` / Perfetto), a flat JSON metrics snapshot, and
//! an aligned text report reproducing the paper's Fig. 11 percentage
//! breakdown from real spans.
//!
//! On top of the per-rank streams, [`EdgeEvent`]s record every network
//! transfer (send, recv, rendezvous collective) with enough identity
//! to match them across ranks; [`causal::analyze`] merges all ranks
//! into a causal DAG, attributes wall time into compute /
//! exposed-comm / late-sender-wait / imbalance buckets, and extracts
//! the critical path. [`chrome_trace`] emits the matched edges as
//! flow events so message arrows render in Perfetto.
//!
//! A [`Recorder`] is a cheaply cloneable per-rank handle threaded
//! alongside the existing `Clock`. [`Recorder::disabled()`] is a no-op
//! handle: every operation short-circuits on a `None`, so untouched
//! call sites pay essentially nothing.
//!
//! ```
//! use rbamr_perfmodel::{Category, Clock};
//! use rbamr_telemetry::Recorder;
//!
//! let clock = Clock::new();
//! let rec = Recorder::new(0, clock.clone());
//! {
//!     let _step = rec.span("step", Category::Other);
//!     clock.advance(Category::HydroKernel, 1.0);
//!     rec.count("device.kernel_launches", 1);
//! }
//! assert_eq!(rec.counter("device.kernel_launches"), 1);
//! let json = rbamr_telemetry::chrome_trace(&[rec]);
//! assert!(json.contains("\"ph\":\"X\""));
//! ```

pub mod causal;
mod export;
mod recorder;

pub use causal::{analyze, report_text, Buckets, CausalAnalysis, CausalError, CriticalPath};
pub use export::{chrome_trace, fig11_report, metrics_json, MetricsSnapshot};
pub use recorder::{EdgeEvent, EdgeKind, Recorder, SpanEvent, SpanGuard, TraceCtx};
