//! Cross-rank causal analysis: merge per-rank span streams and message
//! edge events into a deterministic DAG over the virtual clock, then
//! attribute wall time and extract the critical path.
//!
//! ## Model
//!
//! Each rank's [`Recorder`] yields an ordered stream of [`EdgeEvent`]s
//! at nondecreasing local (virtual-clock) times. Locally, a rank's
//! clock only counts time it was *charged* — it knows nothing about
//! waiting on peers. The causal pass replays all ranks' streams
//! together and maintains an **adjusted** time per rank:
//!
//! - between events, adjusted time advances 1:1 with local time;
//! - a `Recv` completes at `max(local readiness, sender departure +
//!   transfer cost)` — the excess over local readiness is
//!   **late-sender wait**;
//! - a rendezvous `Collective` departs at the latest member's arrival —
//!   each member's excess is **collective (imbalance) wait**.
//!
//! Per rank, the whole run then decomposes into four buckets that sum
//! *exactly* to the global makespan: **compute** (charged local time
//! minus transfer costs), **exposed-comm** (charged transfer costs),
//! **late-sender-wait** (p2p waits), and **imbalance** (collective
//! waits plus end-of-run slack behind the slowest rank).
//!
//! The critical path is recovered by backtracking from the rank that
//! determines the makespan through the recorded determining
//! predecessor of every event (local work, a matched send, or the
//! latest collective arrival).

use crate::recorder::{EdgeEvent, EdgeKind, Recorder, SpanEvent};
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;

/// The four attribution buckets. All values are virtual seconds.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Buckets {
    /// Charged local time minus transfer costs.
    pub compute: f64,
    /// Charged transfer costs (message + collective cost laws).
    pub exposed_comm: f64,
    /// Time spent blocked on a matched sender that departed late.
    pub late_sender_wait: f64,
    /// Collective rendezvous waits plus end slack behind the
    /// makespan-setting rank.
    pub imbalance: f64,
}

impl Buckets {
    pub fn total(&self) -> f64 {
        self.compute + self.exposed_comm + self.late_sender_wait + self.imbalance
    }
}

/// Whole-run buckets for one rank. `buckets.total()` equals the
/// analysis makespan for every rank, by construction.
#[derive(Clone, Debug)]
pub struct RankBuckets {
    pub rank: usize,
    pub buckets: Buckets,
    /// Causally adjusted end time of this rank's local timeline.
    pub adjusted_end: f64,
}

/// Attribution of one simulation step (a depth-0 `"step"` span).
#[derive(Clone, Debug)]
pub struct StepAttribution {
    /// The step index (the `"step"` span's argument).
    pub step: i64,
    /// Step window makespan: latest adjusted step-exit minus earliest
    /// adjusted step-entry over all ranks that ran the step.
    pub window: f64,
    /// Per-rank buckets; each sums to `window` (residual compute
    /// absorbs boundary effects, clamped at zero).
    pub ranks: Vec<(usize, Buckets)>,
}

/// Communication/wait totals attributed to one phase or level.
#[derive(Clone, Copy, Debug, Default)]
pub struct CommProfile {
    pub exposed_comm: f64,
    pub late_sender_wait: f64,
    pub collective_wait: f64,
    pub events: u64,
}

/// Critical-path totals per step (and `"(outside)"` work).
#[derive(Clone, Copy, Debug, Default)]
pub struct CpSegment {
    pub compute: f64,
    pub comm: f64,
    pub cross_edges: usize,
}

/// The makespan-determining chain through the causal DAG.
#[derive(Clone, Debug, Default)]
pub struct CriticalPath {
    /// Local compute time on the path.
    pub compute: f64,
    /// Transfer/collective cost time on the path.
    pub comm: f64,
    /// Matched send→recv edges the path crosses.
    pub cross_edges: usize,
    /// Times the path hops from one rank to another.
    pub rank_switches: usize,
    /// Rank whose adjusted end sets the makespan (lowest on ties).
    pub end_rank: usize,
    /// Path totals per step index (−1 = outside any step).
    pub steps: BTreeMap<i64, CpSegment>,
}

/// Full result of [`analyze`].
#[derive(Clone, Debug, Default)]
pub struct CausalAnalysis {
    pub nranks: usize,
    /// Latest causally adjusted end over all ranks.
    pub makespan: f64,
    pub ranks: Vec<RankBuckets>,
    pub steps: Vec<StepAttribution>,
    /// Comm/wait per phase (depth-1 span under a `"step"` span, else
    /// the enclosing depth-0 span name, else `"(outside)"`).
    pub phases: BTreeMap<String, CommProfile>,
    /// Comm/wait per AMR level (nearest enclosing span argument).
    pub levels: BTreeMap<i64, CommProfile>,
    pub critical_path: CriticalPath,
    /// Matched send→recv pairs.
    pub edges_matched: usize,
    /// Send edges whose receive was never recorded.
    pub unmatched_sends: usize,
}

/// Why a causal DAG could not be built.
#[derive(Clone, Debug, PartialEq)]
pub enum CausalError {
    /// A recv edge has no matching send on `(src, dst, tag, occurrence)`.
    UnmatchedRecv { rank: usize, src: usize, tag: u64, occurrence: u64 },
    /// The replay stalled: a dependency cycle or an incomplete
    /// collective group (some member never arrived).
    Stalled { pending_ranks: Vec<usize> },
}

impl std::fmt::Display for CausalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CausalError::UnmatchedRecv { rank, src, tag, occurrence } => write!(
                f,
                "recv on rank {rank} from {src} (tag {tag}, occurrence {occurrence}) \
                 has no matching send edge"
            ),
            CausalError::Stalled { pending_ranks } => {
                write!(f, "causal replay stalled; pending ranks {pending_ranks:?}")
            }
        }
    }
}

impl std::error::Error for CausalError {}

/// Phase label for an event: the depth-1 span under a `"step"` span,
/// else the enclosing depth-0 span's name, else `"(outside)"`.
fn phase_of(spans: &[SpanEvent], ctx_span: Option<usize>) -> &'static str {
    let mut i = match ctx_span {
        Some(i) => i,
        None => return "(outside)",
    };
    loop {
        let s = &spans[i];
        match s.parent {
            None => return s.name,
            Some(p) => {
                if spans[p].parent.is_none() && spans[p].name == "step" {
                    return s.name;
                }
                i = p;
            }
        }
    }
}

/// AMR level for an event: nearest enclosing span carrying an
/// argument, skipping `"step"` spans (whose argument is the step).
fn level_of(spans: &[SpanEvent], ctx_span: Option<usize>) -> Option<i64> {
    let mut i = ctx_span?;
    loop {
        let s = &spans[i];
        if s.name != "step" {
            if let Some(arg) = s.arg {
                return Some(arg);
            }
        }
        i = s.parent?;
    }
}

/// Step index for an event: argument of the enclosing depth-0
/// `"step"` span, if any.
fn step_of(spans: &[SpanEvent], ctx_span: Option<usize>) -> Option<i64> {
    let mut i = ctx_span?;
    loop {
        let s = &spans[i];
        match s.parent {
            None => return if s.name == "step" { s.arg } else { None },
            Some(p) => i = p,
        }
    }
}

/// Adjusted time at local time `x` on one rank, from the replay's
/// checkpoints `(local, adjusted)`: piecewise `adjusted = chk.1 +
/// (x - chk.0)` from the last checkpoint at or before `x`.
fn adj_at(checkpoints: &[(f64, f64)], x: f64) -> f64 {
    let k = checkpoints.partition_point(|&(local, _)| local <= x);
    if k == 0 {
        return x;
    }
    let (local, adj) = checkpoints[k - 1];
    adj + (x - local)
}

/// Per-event replay record.
#[derive(Clone, Copy, Debug, Default)]
struct EventState {
    /// Adjusted time after the event completed.
    adj_after: f64,
    /// Wait incurred at this event (p2p or collective).
    wait: f64,
    /// Determining predecessor `(rank index, event index)`; `None`
    /// means local work determined completion.
    det: Option<(usize, usize)>,
    /// Collective arrival time, while blocked at a rendezvous.
    arrival: Option<f64>,
}

/// Build the causal DAG from all enabled recorders and attribute time.
///
/// Deterministic: ranks are processed in rank order, events in
/// recorded order, and every reduction iterates ordered containers —
/// the same recorders always produce an identical analysis.
pub fn analyze(recorders: &[Recorder]) -> Result<CausalAnalysis, CausalError> {
    let mut recs: Vec<&Recorder> = recorders.iter().filter(|r| r.is_enabled()).collect();
    recs.sort_by_key(|r| r.rank());
    let n = recs.len();
    if n == 0 {
        return Ok(CausalAnalysis::default());
    }
    let ranks: Vec<usize> = recs.iter().map(|r| r.rank()).collect();
    let edges: Vec<Vec<EdgeEvent>> = recs.iter().map(|r| r.edges()).collect();
    let spans: Vec<Vec<SpanEvent>> = recs.iter().map(|r| r.spans()).collect();
    let final_t: Vec<f64> = recs.iter().map(|r| r.clock_snapshot().total()).collect();

    // Index sends by channel key and group collectives by rendezvous
    // sequence (all members of one rendezvous share the tag).
    let mut send_lookup: HashMap<(usize, usize, u64, u64), (usize, usize)> = HashMap::new();
    let mut groups: BTreeMap<u64, Vec<(usize, usize)>> = BTreeMap::new();
    let mut unmatched_sends = 0usize;
    for (ri, evs) in edges.iter().enumerate() {
        for (ei, e) in evs.iter().enumerate() {
            match e.kind {
                EdgeKind::Send => {
                    send_lookup.insert(e.channel_key().unwrap(), (ri, ei));
                }
                EdgeKind::Collective => groups.entry(e.tag).or_default().push((ri, ei)),
                EdgeKind::Recv => {}
            }
        }
    }
    // Verify every recv has a sender before replaying.
    let mut matched = 0usize;
    for (ri, evs) in edges.iter().enumerate() {
        for e in evs {
            if e.kind == EdgeKind::Recv {
                match e.channel_key().and_then(|k| send_lookup.get(&k)) {
                    Some(_) => matched += 1,
                    None => {
                        return Err(CausalError::UnmatchedRecv {
                            rank: ranks[ri],
                            src: e.peer,
                            tag: e.tag,
                            occurrence: e.occurrence,
                        })
                    }
                }
            }
        }
    }
    unmatched_sends += send_lookup.len().saturating_sub(matched);

    // Replay.
    let mut cur = vec![0usize; n];
    let mut adj = vec![0.0f64; n];
    let mut prev = vec![0.0f64; n];
    let mut state: Vec<Vec<EventState>> =
        edges.iter().map(|e| vec![EventState::default(); e.len()]).collect();
    let mut checkpoints: Vec<Vec<(f64, f64)>> = vec![vec![(0.0, 0.0)]; n];
    let mut group_done: BTreeMap<u64, bool> = groups.keys().map(|&k| (k, false)).collect();
    loop {
        let mut progressed = false;
        let mut all_done = true;
        for r in 0..n {
            while cur[r] < edges[r].len() {
                let i = cur[r];
                let e = &edges[r][i];
                let delta = (e.time.total() - prev[r]).max(0.0);
                match e.kind {
                    EdgeKind::Send => {
                        adj[r] += delta;
                        prev[r] = e.time.total();
                        state[r][i].adj_after = adj[r];
                        checkpoints[r].push((prev[r], adj[r]));
                        cur[r] += 1;
                        progressed = true;
                    }
                    EdgeKind::Recv => {
                        let (sr, si) = send_lookup[&e.channel_key().unwrap()];
                        if cur[sr] <= si {
                            break; // sender not replayed yet
                        }
                        let ready = adj[r] + delta;
                        let arrive = state[sr][si].adj_after + e.cost;
                        let done = ready.max(arrive);
                        state[r][i].wait = done - ready;
                        state[r][i].det = if arrive > ready { Some((sr, si)) } else { None };
                        state[r][i].adj_after = done;
                        adj[r] = done;
                        prev[r] = e.time.total();
                        checkpoints[r].push((prev[r], adj[r]));
                        cur[r] += 1;
                        progressed = true;
                    }
                    EdgeKind::Collective => {
                        if state[r][i].arrival.is_none() {
                            state[r][i].arrival = Some(adj[r] + delta);
                            progressed = true;
                        }
                        let members = &groups[&e.tag];
                        let complete = members
                            .iter()
                            .all(|&(mr, mi)| state[mr][mi].arrival.is_some() && cur[mr] == mi);
                        if !complete {
                            break; // rendezvous not yet full
                        }
                        // Latest arrival sets the departure; ties go
                        // to the lowest rank (members are rank-sorted).
                        let mut departure = f64::NEG_INFINITY;
                        let mut det_member = (0usize, 0usize);
                        for &(mr, mi) in members {
                            let a = state[mr][mi].arrival.unwrap();
                            if a > departure {
                                departure = a;
                                det_member = (mr, mi);
                            }
                        }
                        for &(mr, mi) in members {
                            let a = state[mr][mi].arrival.unwrap();
                            state[mr][mi].wait = departure - a;
                            state[mr][mi].det =
                                if det_member == (mr, mi) { None } else { Some(det_member) };
                            state[mr][mi].adj_after = departure;
                            adj[mr] = departure;
                            prev[mr] = edges[mr][mi].time.total();
                            checkpoints[mr].push((prev[mr], departure));
                            cur[mr] += 1;
                        }
                        group_done.insert(e.tag, true);
                        progressed = true;
                    }
                }
            }
            if cur[r] < edges[r].len() {
                all_done = false;
            }
        }
        if all_done {
            break;
        }
        if !progressed {
            let pending: Vec<usize> =
                (0..n).filter(|&r| cur[r] < edges[r].len()).map(|r| ranks[r]).collect();
            return Err(CausalError::Stalled { pending_ranks: pending });
        }
    }
    // Tail: local work after the last event.
    let mut adj_end = vec![0.0f64; n];
    for r in 0..n {
        let tail = (final_t[r] - prev[r]).max(0.0);
        adj_end[r] = adj[r] + tail;
        checkpoints[r].push((final_t[r], adj_end[r]));
    }
    let makespan = adj_end.iter().cloned().fold(0.0, f64::max);

    // Whole-run per-rank buckets. Identity: adjusted end = local total
    // + all waits, so compute + comm + waits + end slack = makespan.
    let mut rank_buckets = Vec::with_capacity(n);
    for r in 0..n {
        let mut comm = 0.0;
        let mut ls_wait = 0.0;
        let mut coll_wait = 0.0;
        for (e, s) in edges[r].iter().zip(&state[r]) {
            comm += e.cost;
            match e.kind {
                EdgeKind::Recv => ls_wait += s.wait,
                EdgeKind::Collective => coll_wait += s.wait,
                EdgeKind::Send => {}
            }
        }
        let compute = (final_t[r] - comm).max(0.0);
        rank_buckets.push(RankBuckets {
            rank: ranks[r],
            buckets: Buckets {
                compute,
                exposed_comm: comm,
                late_sender_wait: ls_wait,
                imbalance: coll_wait + (makespan - adj_end[r]),
            },
            adjusted_end: adj_end[r],
        });
    }

    // Per-phase and per-level comm/wait attribution.
    let mut phases: BTreeMap<String, CommProfile> = BTreeMap::new();
    let mut levels: BTreeMap<i64, CommProfile> = BTreeMap::new();
    for r in 0..n {
        for (e, s) in edges[r].iter().zip(&state[r]) {
            let p = phases.entry(phase_of(&spans[r], e.ctx.span).to_string()).or_default();
            p.exposed_comm += e.cost;
            p.events += 1;
            match e.kind {
                EdgeKind::Recv => p.late_sender_wait += s.wait,
                EdgeKind::Collective => p.collective_wait += s.wait,
                EdgeKind::Send => {}
            }
            if let Some(level) = level_of(&spans[r], e.ctx.span) {
                let l = levels.entry(level).or_default();
                l.exposed_comm += e.cost;
                l.events += 1;
                match e.kind {
                    EdgeKind::Recv => l.late_sender_wait += s.wait,
                    EdgeKind::Collective => l.collective_wait += s.wait,
                    EdgeKind::Send => {}
                }
            }
        }
    }

    // Per-step attribution. Step windows come from the depth-0
    // "step" spans; events are assigned by span ancestry.
    let mut step_windows: BTreeMap<i64, Vec<(usize, f64, f64)>> = BTreeMap::new();
    for r in 0..n {
        for s in &spans[r] {
            if s.parent.is_none() && s.name == "step" {
                if let Some(k) = s.arg {
                    let b = adj_at(&checkpoints[r], s.begin.total());
                    let e = adj_at(&checkpoints[r], s.end.total());
                    step_windows.entry(k).or_default().push((r, b, e));
                }
            }
        }
    }
    let mut per_step_events: Vec<BTreeMap<i64, (f64, f64, f64)>> = vec![BTreeMap::new(); n];
    for r in 0..n {
        for (e, s) in edges[r].iter().zip(&state[r]) {
            if let Some(k) = step_of(&spans[r], e.ctx.span) {
                let slot = per_step_events[r].entry(k).or_insert((0.0, 0.0, 0.0));
                slot.0 += e.cost;
                match e.kind {
                    EdgeKind::Recv => slot.1 += s.wait,
                    EdgeKind::Collective => slot.2 += s.wait,
                    EdgeKind::Send => {}
                }
            }
        }
    }
    let mut steps = Vec::new();
    for (&k, members) in &step_windows {
        let begin = members.iter().map(|m| m.1).fold(f64::INFINITY, f64::min);
        let end = members.iter().map(|m| m.2).fold(0.0, f64::max);
        let window = (end - begin).max(0.0);
        let mut rows = Vec::with_capacity(members.len());
        for &(r, b, e) in members {
            let span = e - b;
            let (comm, ls_wait, coll_wait) =
                per_step_events[r].get(&k).copied().unwrap_or((0.0, 0.0, 0.0));
            let slack = (window - span).max(0.0);
            let compute = (span - comm - ls_wait - coll_wait).max(0.0);
            rows.push((
                ranks[r],
                Buckets {
                    compute,
                    exposed_comm: comm,
                    late_sender_wait: ls_wait,
                    imbalance: coll_wait + slack,
                },
            ));
        }
        steps.push(StepAttribution { step: k, window, ranks: rows });
    }

    // Critical path: backtrack from the makespan-setting rank through
    // recorded determining predecessors.
    let end_rank_idx =
        (0..n).min_by(|&a, &b| adj_end[b].partial_cmp(&adj_end[a]).unwrap().then(a.cmp(&b)));
    let mut cp = CriticalPath::default();
    if let Some(er) = end_rank_idx {
        cp.end_rank = ranks[er];
        // Tail after the last event is pure local compute.
        let tail_start = state[er].last().map(|s| s.adj_after).unwrap_or(0.0);
        cp.compute += adj_end[er] - tail_start;
        if adj_end[er] > tail_start {
            cp.steps.entry(-1).or_default().compute += adj_end[er] - tail_start;
        }
        let mut node = edges[er].len().checked_sub(1).map(|i| (er, i));
        while let Some((r, i)) = node {
            let e = &edges[r][i];
            let s = &state[r][i];
            let step_key = step_of(&spans[r], e.ctx.span).unwrap_or(-1);
            match s.det {
                Some((pr, pi)) => {
                    if e.kind == EdgeKind::Recv {
                        cp.comm += e.cost;
                        cp.cross_edges += 1;
                        let seg = cp.steps.entry(step_key).or_default();
                        seg.comm += e.cost;
                        seg.cross_edges += 1;
                    }
                    if pr != r {
                        cp.rank_switches += 1;
                    }
                    node = Some((pr, pi));
                }
                None => {
                    let before = if i > 0 { state[r][i - 1].adj_after } else { 0.0 };
                    let seg_total = (s.adj_after - s.wait - before).max(0.0);
                    let comm = e.cost.min(seg_total);
                    let compute = seg_total - comm;
                    cp.comm += comm;
                    cp.compute += compute;
                    let seg = cp.steps.entry(step_key).or_default();
                    seg.comm += comm;
                    seg.compute += compute;
                    node = i.checked_sub(1).map(|pi| (r, pi));
                }
            }
        }
    }

    Ok(CausalAnalysis {
        nranks: n,
        makespan,
        ranks: rank_buckets,
        steps,
        phases,
        levels,
        critical_path: cp,
        edges_matched: matched,
        unmatched_sends,
    })
}

fn pct(part: f64, whole: f64) -> f64 {
    if whole <= 0.0 {
        0.0
    } else {
        100.0 * part / whole
    }
}

/// Deterministic aligned text report of a [`CausalAnalysis`].
pub fn report_text(a: &CausalAnalysis) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "causal attribution: {} ranks, makespan {:.6}s, {} matched edges",
        a.nranks, a.makespan, a.edges_matched
    );
    let _ = writeln!(
        out,
        "{:<6} {:>11} {:>11} {:>11} {:>11} {:>8}",
        "rank", "compute", "comm", "late-send", "imbalance", "total%"
    );
    for rb in &a.ranks {
        let b = &rb.buckets;
        let _ = writeln!(
            out,
            "{:<6} {:>10.6}s {:>10.6}s {:>10.6}s {:>10.6}s {:>7.1}%",
            rb.rank,
            b.compute,
            b.exposed_comm,
            b.late_sender_wait,
            b.imbalance,
            pct(b.total(), a.makespan),
        );
    }
    let _ = writeln!(
        out,
        "critical path: compute {:.6}s, comm {:.6}s, {} cross edges, {} rank switches, ends rank {}",
        a.critical_path.compute,
        a.critical_path.comm,
        a.critical_path.cross_edges,
        a.critical_path.rank_switches,
        a.critical_path.end_rank,
    );
    if !a.steps.is_empty() {
        let _ = writeln!(
            out,
            "{:<6} {:>11} {:>11} {:>11} {:>11} {:>11}",
            "step", "window", "compute", "comm", "late-send", "imbalance"
        );
        for s in &a.steps {
            let mut sum = Buckets::default();
            for (_, b) in &s.ranks {
                sum.compute += b.compute;
                sum.exposed_comm += b.exposed_comm;
                sum.late_sender_wait += b.late_sender_wait;
                sum.imbalance += b.imbalance;
            }
            let _ = writeln!(
                out,
                "{:<6} {:>10.6}s {:>10.6}s {:>10.6}s {:>10.6}s {:>10.6}s",
                s.step,
                s.window,
                sum.compute,
                sum.exposed_comm,
                sum.late_sender_wait,
                sum.imbalance
            );
        }
    }
    if !a.phases.is_empty() {
        let _ = writeln!(
            out,
            "{:<16} {:>11} {:>11} {:>11} {:>8}",
            "phase", "comm", "late-send", "coll-wait", "events"
        );
        for (name, p) in &a.phases {
            let _ = writeln!(
                out,
                "{:<16} {:>10.6}s {:>10.6}s {:>10.6}s {:>8}",
                name, p.exposed_comm, p.late_sender_wait, p.collective_wait, p.events
            );
        }
    }
    if !a.levels.is_empty() {
        let _ = writeln!(
            out,
            "{:<16} {:>11} {:>11} {:>11} {:>8}",
            "level", "comm", "late-send", "coll-wait", "events"
        );
        for (level, p) in &a.levels {
            let _ = writeln!(
                out,
                "{:<16} {:>10.6}s {:>10.6}s {:>10.6}s {:>8}",
                level, p.exposed_comm, p.late_sender_wait, p.collective_wait, p.events
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbamr_perfmodel::{Category, Clock};

    #[test]
    fn late_sender_wait_is_attributed_to_the_receiver() {
        // Rank 1 computes 1.0s then sends; rank 0 computes 0.2s, is
        // charged a 0.3s transfer, and receives. Causally the recv
        // cannot complete before 1.0 + 0.3 = 1.3s.
        let c0 = Clock::new();
        let r0 = Recorder::new(0, c0.clone());
        let c1 = Clock::new();
        let r1 = Recorder::new(1, c1.clone());
        c1.advance(Category::HydroKernel, 1.0);
        r1.edge_send(0, 7, 0, 1024, Category::HaloExchange);
        c0.advance(Category::HydroKernel, 0.2);
        c0.advance(Category::HaloExchange, 0.3);
        r0.edge_recv(1, 7, 0, 1024, 0.3, Category::HaloExchange);
        let a = analyze(&[r0, r1]).unwrap();
        assert!((a.makespan - 1.3).abs() < 1e-12);
        let b0 = &a.ranks[0].buckets;
        assert!((b0.compute - 0.2).abs() < 1e-12);
        assert!((b0.exposed_comm - 0.3).abs() < 1e-12);
        assert!((b0.late_sender_wait - 0.8).abs() < 1e-12);
        assert!((b0.imbalance - 0.0).abs() < 1e-12);
        let b1 = &a.ranks[1].buckets;
        assert!((b1.compute - 1.0).abs() < 1e-12);
        assert!((b1.imbalance - 0.3).abs() < 1e-12);
        for rb in &a.ranks {
            assert!((rb.buckets.total() - a.makespan).abs() < 1e-12, "buckets must sum");
        }
        // Critical path: 1.0s compute on rank 1, one 0.3s cross edge.
        let cp = &a.critical_path;
        assert_eq!(cp.end_rank, 0);
        assert_eq!(cp.cross_edges, 1);
        assert!((cp.comm - 0.3).abs() < 1e-12);
        assert!((cp.compute - 1.0).abs() < 1e-12);
        assert!((cp.compute + cp.comm - a.makespan).abs() < 1e-12);
    }

    #[test]
    fn collective_imbalance_is_charged_to_early_arrivals() {
        let mk = |rank: usize, work: f64| {
            let c = Clock::new();
            let r = Recorder::new(rank, c.clone());
            c.advance(Category::HydroKernel, work);
            c.advance(Category::Timestep, 0.1);
            r.edge_collective("allreduce-min", 0, 8, 0.1, Category::Timestep);
            r
        };
        let a = analyze(&[mk(0, 1.0), mk(1, 2.0), mk(2, 3.0)]).unwrap();
        assert!((a.makespan - 3.1).abs() < 1e-12);
        let waits: Vec<f64> = a.ranks.iter().map(|r| r.buckets.imbalance).collect();
        assert!((waits[0] - 2.0).abs() < 1e-12);
        assert!((waits[1] - 1.0).abs() < 1e-12);
        assert!((waits[2] - 0.0).abs() < 1e-12);
        for rb in &a.ranks {
            assert!((rb.buckets.total() - a.makespan).abs() < 1e-12);
        }
        let cp = &a.critical_path;
        assert_eq!(cp.end_rank, 0); // tie on adjusted end -> lowest rank
        assert_eq!(cp.rank_switches, 1); // jump to rank 2's arrival
        assert!((cp.compute - 3.0).abs() < 1e-12);
        assert!((cp.comm - 0.1).abs() < 1e-12);
    }

    #[test]
    fn steps_and_phases_attribute_comm() {
        let c0 = Clock::new();
        let r0 = Recorder::new(0, c0.clone());
        let c1 = Clock::new();
        let r1 = Recorder::new(1, c1.clone());
        for step in 0..2i64 {
            {
                let _s = r1.span_arg("step", Category::Other, step);
                {
                    let _p = r1.span("lagrangian", Category::HydroKernel);
                    c1.advance(Category::HydroKernel, 1.0);
                    r1.edge_send(0, 3, step as u64, 64, Category::HaloExchange);
                }
                c1.advance(Category::Timestep, 0.05);
                r1.edge_collective("allreduce-min", step as u64, 8, 0.05, Category::Timestep);
            }
            {
                let _s = r0.span_arg("step", Category::Other, step);
                {
                    let _p = r0.span_arg("fill-start", Category::HaloExchange, 1);
                    c0.advance(Category::HaloExchange, 0.2);
                    r0.edge_recv(1, 3, step as u64, 64, 0.2, Category::HaloExchange);
                }
                c0.advance(Category::Timestep, 0.05);
                r0.edge_collective("allreduce-min", step as u64, 8, 0.05, Category::Timestep);
            }
        }
        let a = analyze(&[r0, r1]).unwrap();
        assert_eq!(a.steps.len(), 2);
        for s in &a.steps {
            for (_, b) in &s.ranks {
                let err = (b.total() - s.window).abs() / s.window.max(1e-12);
                assert!(err < 0.01, "step {} rank buckets off by {err}", s.step);
            }
        }
        assert!(a.phases.contains_key("fill-start"));
        assert!(a.phases.contains_key("step")); // collectives outside phase spans
        assert!(a.phases["fill-start"].late_sender_wait > 0.0);
        assert_eq!(a.levels[&1].events, 2); // one recv per step at level 1
        assert_eq!(a.edges_matched, 2);
    }

    #[test]
    fn analysis_and_report_are_deterministic() {
        let build = || {
            let mk = |rank: usize, work: f64| {
                let c = Clock::new();
                let r = Recorder::new(rank, c.clone());
                let _s = r.span_arg("step", Category::Other, 0);
                c.advance(Category::HydroKernel, work);
                c.advance(Category::Timestep, 0.01);
                r.edge_collective("allreduce-min", 0, 8, 0.01, Category::Timestep);
                drop(_s);
                r
            };
            vec![mk(0, 0.5), mk(1, 0.25), mk(2, 0.75), mk(3, 1.0)]
        };
        let a = report_text(&analyze(&build()).unwrap());
        let b = report_text(&analyze(&build()).unwrap());
        assert_eq!(a, b);
        assert!(a.contains("causal attribution: 4 ranks"));
    }

    #[test]
    fn unmatched_recv_is_an_error() {
        let c = Clock::new();
        let r = Recorder::new(0, c.clone());
        c.advance(Category::HaloExchange, 0.1);
        r.edge_recv(1, 9, 0, 64, 0.1, Category::HaloExchange);
        let err = analyze(&[r]).unwrap_err();
        assert_eq!(err, CausalError::UnmatchedRecv { rank: 0, src: 1, tag: 9, occurrence: 0 });
    }

    #[test]
    fn empty_input_yields_empty_analysis() {
        let a = analyze(&[Recorder::disabled()]).unwrap();
        assert_eq!(a.nranks, 0);
        assert_eq!(a.makespan, 0.0);
    }
}
