//! Exporters: Chrome trace-event JSON, flat JSON metrics snapshot,
//! and the Fig. 11 text report. All output is deterministic — spans
//! are timestamped by the virtual clock and maps are ordered — so the
//! same simulation always produces byte-identical artifacts.

use crate::recorder::{EdgeEvent, EdgeKind, Recorder};
use rbamr_perfmodel::{Category, TimeBreakdown};
use std::collections::BTreeMap;
use std::fmt::Write as _;

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Microseconds of virtual time, fixed-point so output is stable.
fn micros(seconds: f64) -> String {
    format!("{:.3}", seconds * 1.0e6)
}

/// Render all ranks' spans as Chrome trace-event JSON (the format
/// `chrome://tracing` and Perfetto load). One track (`tid`) per rank;
/// timestamps are **virtual** microseconds.
pub fn chrome_trace(recorders: &[Recorder]) -> String {
    let mut recs: Vec<&Recorder> = recorders.iter().filter(|r| r.is_enabled()).collect();
    recs.sort_by_key(|r| r.rank());
    let mut out = String::new();
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    out.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\
         \"args\":{\"name\":\"rbamr (virtual time)\"}}",
    );
    for rec in &recs {
        let rank = rec.rank();
        let _ = write!(
            out,
            ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{rank},\
             \"args\":{{\"name\":\"rank {rank}\"}}}}",
        );
        let _ = write!(
            out,
            ",\n{{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":0,\"tid\":{rank},\
             \"args\":{{\"sort_index\":{rank}}}}}",
        );
    }
    for rec in &recs {
        let rank = rec.rank();
        for span in rec.spans() {
            let _ = write!(
                out,
                ",\n{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":0,\"tid\":{rank},\"args\":{{\"seq\":{}",
                escape_json(span.name),
                span.category.name(),
                micros(span.begin.total()),
                micros(span.elapsed().total()),
                span.seq,
            );
            if let Some(arg) = span.arg {
                let _ = write!(out, ",\"level\":{arg}");
            }
            out.push_str("}}");
        }
    }
    // Message-flow events: an arrow from each send (`ph:"s"`) to its
    // matching recv (`ph:"f"`, binding to the enclosing slice), plus a
    // multi-point flow tying together the ranks of one rendezvous
    // collective. Perfetto renders these as arrows between tracks.
    let mut collectives: BTreeMap<u64, Vec<(usize, EdgeEvent)>> = BTreeMap::new();
    for rec in &recs {
        let rank = rec.rank();
        for edge in rec.edges() {
            match edge.kind {
                EdgeKind::Send => {
                    let _ = write!(
                        out,
                        ",\n{{\"name\":\"msg\",\"cat\":\"{}\",\"ph\":\"s\",\"ts\":{},\
                         \"pid\":0,\"tid\":{rank},\"id\":{},\
                         \"args\":{{\"seq\":{},\"bytes\":{}}}}}",
                        edge.category.name(),
                        micros(edge.time.total()),
                        edge.flow_id(),
                        edge.ctx.seq,
                        edge.bytes,
                    );
                }
                EdgeKind::Recv => {
                    let _ = write!(
                        out,
                        ",\n{{\"name\":\"msg\",\"cat\":\"{}\",\"ph\":\"f\",\"bp\":\"e\",\
                         \"ts\":{},\"pid\":0,\"tid\":{rank},\"id\":{},\
                         \"args\":{{\"seq\":{},\"bytes\":{}}}}}",
                        edge.category.name(),
                        micros(edge.time.total()),
                        edge.flow_id(),
                        edge.ctx.seq,
                        edge.bytes,
                    );
                }
                EdgeKind::Collective => {
                    collectives.entry(edge.tag).or_default().push((rank, edge));
                }
            }
        }
    }
    for group in collectives.values() {
        if group.len() < 2 {
            continue;
        }
        for (i, (rank, edge)) in group.iter().enumerate() {
            let (ph, bind) = if i == 0 {
                ("s", "")
            } else if i + 1 == group.len() {
                ("f", ",\"bp\":\"e\"")
            } else {
                ("t", "")
            };
            let _ = write!(
                out,
                ",\n{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{ph}\"{bind},\"ts\":{},\
                 \"pid\":0,\"tid\":{rank},\"id\":{},\
                 \"args\":{{\"seq\":{},\"bytes\":{}}}}}",
                escape_json(edge.name),
                edge.category.name(),
                micros(edge.time.total()),
                edge.flow_id(),
                edge.ctx.seq,
                edge.bytes,
            );
        }
    }
    out.push_str("\n]}\n");
    out
}

fn breakdown_json(b: &TimeBreakdown) -> String {
    let mut out = String::from("{");
    for (i, &c) in Category::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{:.9}", c.name(), b.get(c));
    }
    let _ = write!(out, ",\"total\":{:.9}}}", b.total());
    out
}

fn map_json(map: &BTreeMap<String, u64>) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{v}", escape_json(k));
    }
    out.push('}');
    out
}

/// Aggregated view of one or more recorders: counters summed across
/// ranks, gauges combined by max, and the two per-category breakdowns
/// (raw clock vs. reconstructed from top-level spans) merged.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Monotonic counters, summed over ranks.
    pub counters: BTreeMap<String, u64>,
    /// Peak gauges, max over ranks.
    pub gauges: BTreeMap<String, u64>,
    /// Raw clock breakdown, merged (summed) over ranks.
    pub clock: TimeBreakdown,
    /// Span-derived breakdown (top-level spans), merged over ranks.
    pub spans: TimeBreakdown,
}

impl MetricsSnapshot {
    pub fn from_recorder(rec: &Recorder) -> Self {
        Self::from_recorders(std::slice::from_ref(rec))
    }

    pub fn from_recorders(recorders: &[Recorder]) -> Self {
        let mut snap = Self::default();
        for rec in recorders.iter().filter(|r| r.is_enabled()) {
            for (k, v) in rec.counters() {
                *snap.counters.entry(k).or_insert(0) += v;
            }
            for (k, v) in rec.gauges() {
                let entry = snap.gauges.entry(k).or_insert(0);
                *entry = (*entry).max(v);
            }
            snap.clock = snap.clock.merged(&rec.clock_snapshot());
            snap.spans = snap.spans.merged(&rec.span_breakdown());
        }
        snap
    }

    /// Fraction of clock-charged virtual time covered by top-level
    /// spans (1.0 = every charged second happened inside a span).
    pub fn coverage(&self) -> f64 {
        if self.clock.total() == 0.0 {
            1.0
        } else {
            (self.spans.total() / self.clock.total()).min(1.0)
        }
    }

    /// Do the span-derived and clock breakdowns agree within `tol`
    /// (a fraction of total runtime) on **every** category? This is
    /// the Fig. 11 honesty check: the paper's series are percentages
    /// of total time, so the natural tolerance is in those units.
    pub fn agreement_within(&self, tol: f64) -> bool {
        let scale = self.clock.total().max(f64::MIN_POSITIVE);
        Category::ALL.iter().all(|&c| (self.spans.get(c) - self.clock.get(c)).abs() / scale <= tol)
    }
}

/// Flat JSON metrics snapshot: one object per rank plus aggregated
/// totals, ready for `jq` or a dashboard.
pub fn metrics_json(recorders: &[Recorder]) -> String {
    let mut recs: Vec<&Recorder> = recorders.iter().filter(|r| r.is_enabled()).collect();
    recs.sort_by_key(|r| r.rank());
    let mut out = String::from("{\"ranks\":[\n");
    for (i, rec) in recs.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let _ = write!(
            out,
            "{{\"rank\":{},\"clock\":{},\"spans\":{},\"counters\":{},\"gauges\":{}}}",
            rec.rank(),
            breakdown_json(&rec.clock_snapshot()),
            breakdown_json(&rec.span_breakdown()),
            map_json(&rec.counters()),
            map_json(&rec.gauges()),
        );
    }
    let totals = MetricsSnapshot::from_recorders(recorders);
    let _ = write!(
        out,
        "\n],\"total\":{{\"clock\":{},\"spans\":{},\"counters\":{},\"gauges\":{},\
         \"coverage\":{:.6}}}}}\n",
        breakdown_json(&totals.clock),
        breakdown_json(&totals.spans),
        map_json(&totals.counters),
        map_json(&totals.gauges),
        totals.coverage(),
    );
    out
}

/// The paper's Fig. 11 series, in presentation order.
fn fig11_series(b: &TimeBreakdown) -> [(&'static str, f64); 4] {
    [
        ("Hydrodynamics", b.hydrodynamics()),
        ("Synchronization", b.get(Category::Synchronize)),
        ("Regridding", b.get(Category::Regrid)),
        ("Timestep", b.get(Category::Timestep)),
    ]
}

/// Aligned text report reproducing the paper's Fig. 11 percentage
/// breakdown, with the raw-clock and span-derived columns side by
/// side so drift in instrumentation coverage is immediately visible.
pub fn fig11_report(clock: &TimeBreakdown, spans: &TimeBreakdown) -> String {
    let mut out = String::new();
    let _ =
        writeln!(out, "{:<16} {:>12} {:>7}   {:>12} {:>7}", "series", "clock", "%", "spans", "%");
    let (ct, st) = (clock.total().max(f64::MIN_POSITIVE), spans.total().max(f64::MIN_POSITIVE));
    for ((name, cv), (_, sv)) in fig11_series(clock).into_iter().zip(fig11_series(spans)) {
        let _ = writeln!(
            out,
            "{name:<16} {cv:>11.4}s {:>6.1}%   {sv:>11.4}s {:>6.1}%",
            100.0 * cv / ct,
            100.0 * sv / st,
        );
    }
    let other = (clock.get(Category::Other), spans.get(Category::Other));
    let _ = writeln!(
        out,
        "{:<16} {:>11.4}s {:>6.1}%   {:>11.4}s {:>6.1}%",
        "Other",
        other.0,
        100.0 * other.0 / ct,
        other.1,
        100.0 * other.1 / st,
    );
    let _ = writeln!(
        out,
        "{:<16} {:>11.4}s {:>7}   {:>11.4}s",
        "total",
        clock.total(),
        "",
        spans.total()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbamr_perfmodel::Clock;

    fn scripted_recorder(rank: usize) -> Recorder {
        let clock = Clock::new();
        let rec = Recorder::new(rank, clock.clone());
        {
            let _step = rec.span("step", Category::Other);
            {
                let _k = rec.span("flux-calc", Category::HydroKernel);
                clock.advance(Category::HydroKernel, 2.0);
            }
            {
                let _fill = rec.span_arg("halo-fill", Category::HaloExchange, 1);
                clock.advance(Category::HaloExchange, 0.5);
            }
            {
                let _dt = rec.span("dt-reduce", Category::Timestep);
                clock.advance(Category::Timestep, 0.25);
            }
            rec.count("net.send_bytes", 4096);
        }
        {
            let _rg = rec.span("regrid", Category::Regrid);
            clock.advance(Category::Regrid, 1.0);
        }
        {
            let _sync = rec.span("synchronize", Category::Synchronize);
            clock.advance(Category::Synchronize, 0.25);
        }
        rec
    }

    #[test]
    fn chrome_trace_is_deterministic_and_well_formed() {
        let a = chrome_trace(&[scripted_recorder(0), scripted_recorder(1)]);
        let b = chrome_trace(&[scripted_recorder(1), scripted_recorder(0)]);
        // Same spans, either construction order: byte-identical.
        assert_eq!(a, b);
        assert!(a.contains("\"tid\":0"));
        assert!(a.contains("\"tid\":1"));
        assert!(a.contains("\"name\":\"halo-fill\""));
        assert!(a.contains("\"level\":1"));
        // Every Category appears as a span category.
        for c in Category::ALL {
            assert!(a.contains(&format!("\"cat\":\"{}\"", c.name())), "missing {c:?}");
        }
        // Balanced braces/brackets — cheap well-formedness proxy.
        assert_eq!(a.matches('{').count(), a.matches('}').count());
        assert_eq!(a.matches('[').count(), a.matches(']').count());
    }

    #[test]
    fn nested_span_ordering_is_stable() {
        let rec = scripted_recorder(0);
        let spans = rec.spans();
        let names: Vec<_> = spans.iter().map(|s| (s.name, s.depth)).collect();
        assert_eq!(
            names,
            [
                ("step", 0),
                ("flux-calc", 1),
                ("halo-fill", 1),
                ("dt-reduce", 1),
                ("regrid", 0),
                ("synchronize", 0)
            ]
        );
        // Sequence numbers strictly increase in begin order.
        assert!(spans.windows(2).all(|w| w[0].seq < w[1].seq));
        // The trace orders events by the same sequence.
        let json = chrome_trace(&[rec]);
        let step = json.find("\"name\":\"step\"").unwrap();
        let fill = json.find("\"name\":\"halo-fill\"").unwrap();
        let regrid = json.find("\"name\":\"regrid\"").unwrap();
        assert!(step < fill && fill < regrid);
    }

    #[test]
    fn snapshot_aggregates_and_agrees() {
        let snap = MetricsSnapshot::from_recorders(&[scripted_recorder(0), scripted_recorder(1)]);
        assert_eq!(snap.counters["net.send_bytes"], 8192);
        assert_eq!(snap.clock.get(Category::HydroKernel), 4.0);
        // Fully covered scripted run: spans reproduce the clock.
        assert!(snap.agreement_within(1e-12));
        assert!((snap.coverage() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn metrics_json_lists_all_ranks() {
        let json = metrics_json(&[scripted_recorder(1), scripted_recorder(0)]);
        assert!(json.contains("\"rank\":0"));
        assert!(json.contains("\"rank\":1"));
        assert!(json.contains("\"net.send_bytes\":4096"));
        assert!(json.find("\"rank\":0").unwrap() < json.find("\"rank\":1").unwrap());
    }

    #[test]
    fn fig11_report_shows_both_columns() {
        let rec = scripted_recorder(0);
        let report = fig11_report(&rec.clock_snapshot(), &rec.span_breakdown());
        assert!(report.contains("Hydrodynamics"));
        assert!(report.contains("Synchronization"));
        assert!(report.contains("Regridding"));
        assert!(report.contains("Timestep"));
        // Fully instrumented: both columns render the same totals.
        let lines: Vec<&str> = report.lines().collect();
        assert_eq!(lines.len(), 7); // header + 5 series + total
    }

    #[test]
    fn flow_events_pair_sends_and_recvs() {
        let make = || {
            let ca = Clock::new();
            let a = Recorder::new(0, ca.clone());
            let cb = Clock::new();
            let b = Recorder::new(1, cb.clone());
            a.edge_send(1, 5, 0, 256, Category::HaloExchange);
            cb.advance(Category::HaloExchange, 0.125);
            b.edge_recv(0, 5, 0, 256, 0.125, Category::HaloExchange);
            a.edge_collective("allreduce-min", 0, 8, 0.01, Category::Timestep);
            b.edge_collective("allreduce-min", 0, 8, 0.01, Category::Timestep);
            vec![a, b]
        };
        let json = chrome_trace(&make());
        assert_eq!(json, chrome_trace(&make()));
        // One send start, one recv finish, same flow id.
        assert_eq!(json.matches("\"ph\":\"s\"").count(), 2); // msg + collective
        assert_eq!(json.matches("\"ph\":\"f\"").count(), 2);
        let id = make()[0].edges()[0].flow_id();
        assert_eq!(json.matches(&format!("\"id\":{id}")).count(), 2);
        assert!(json.contains("\"name\":\"allreduce-min\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn escapes_special_characters_in_labels() {
        assert_eq!(escape_json("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
        assert_eq!(escape_json("ctrl\u{1}"), "ctrl\\u0001");
        let clock = Clock::new();
        let rec = Recorder::new(0, clock.clone());
        {
            let _s = rec.span("weird \"label\" with \\slashes\\", Category::Other);
            clock.advance(Category::Other, 1.0);
        }
        let json = chrome_trace(&[rec]);
        assert!(json.contains("weird \\\"label\\\" with \\\\slashes\\\\"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        // The escaped output parses back to the original label.
        let parsed = parse_json(&json);
        let events = parsed.get("traceEvents").as_arr();
        let found =
            events.iter().any(|e| e.get("name").as_str() == "weird \"label\" with \\slashes\\");
        assert!(found, "escaped label did not roundtrip");
    }

    #[test]
    fn metrics_json_roundtrips_through_a_parser() {
        let recs = [scripted_recorder(0), scripted_recorder(1)];
        let parsed = parse_json(&metrics_json(&recs));
        let ranks = parsed.get("ranks").as_arr();
        assert_eq!(ranks.len(), 2);
        assert_eq!(ranks[0].get("rank").as_num(), 0.0);
        assert_eq!(ranks[1].get("rank").as_num(), 1.0);
        assert_eq!(ranks[0].get("counters").get("net.send_bytes").as_num(), 4096.0);
        let total = parsed.get("total");
        assert_eq!(total.get("counters").get("net.send_bytes").as_num(), 8192.0);
        let clock_total = total.get("clock").get("total").as_num();
        assert!((clock_total - 2.0 * recs[0].clock_snapshot().total()).abs() < 1e-6);
        assert!((total.get("coverage").as_num() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn fig11_percentages_sum_to_100() {
        let rec = scripted_recorder(0);
        let report = fig11_report(&rec.clock_snapshot(), &rec.span_breakdown());
        let lines: Vec<&str> = report.lines().collect();
        let mut clock_pct = 0.0;
        let mut span_pct = 0.0;
        // Rows 1..=5: the four Fig. 11 series plus Other.
        for line in &lines[1..6] {
            let tokens: Vec<&str> = line.split_whitespace().collect();
            let pcts: Vec<f64> = tokens
                .iter()
                .filter(|t| t.ends_with('%'))
                .map(|t| t.trim_end_matches('%').parse().unwrap())
                .collect();
            assert_eq!(pcts.len(), 2, "row missing a percentage: {line}");
            clock_pct += pcts[0];
            span_pct += pcts[1];
        }
        assert!((clock_pct - 100.0).abs() <= 0.1, "clock % sum {clock_pct}");
        assert!((span_pct - 100.0).abs() <= 0.1, "span % sum {span_pct}");
    }

    /// Minimal JSON value + recursive-descent parser, test-only: the
    /// workspace has no vendored JSON crate, and round-tripping our
    /// hand-rolled output through an independent reader is the point.
    #[derive(Debug, PartialEq)]
    enum Json {
        Null,
        Bool(bool),
        Num(f64),
        Str(String),
        Arr(Vec<Json>),
        Obj(BTreeMap<String, Json>),
    }

    impl Json {
        fn get(&self, key: &str) -> &Json {
            match self {
                Json::Obj(m) => m.get(key).unwrap_or_else(|| panic!("missing key {key}")),
                other => panic!("get({key}) on non-object {other:?}"),
            }
        }
        fn as_arr(&self) -> &[Json] {
            match self {
                Json::Arr(v) => v,
                other => panic!("not an array: {other:?}"),
            }
        }
        fn as_num(&self) -> f64 {
            match self {
                Json::Num(n) => *n,
                other => panic!("not a number: {other:?}"),
            }
        }
        fn as_str(&self) -> &str {
            match self {
                Json::Str(s) => s,
                other => panic!("not a string: {other:?}"),
            }
        }
    }

    fn parse_json(s: &str) -> Json {
        let mut p = Parser { b: s.as_bytes(), i: 0 };
        let v = p.value();
        p.ws();
        assert_eq!(p.i, p.b.len(), "trailing garbage after JSON value");
        v
    }

    struct Parser<'a> {
        b: &'a [u8],
        i: usize,
    }

    impl Parser<'_> {
        fn ws(&mut self) {
            while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
                self.i += 1;
            }
        }
        fn expect(&mut self, c: u8) {
            self.ws();
            assert_eq!(self.b[self.i], c, "expected {} at byte {}", c as char, self.i);
            self.i += 1;
        }
        fn value(&mut self) -> Json {
            self.ws();
            match self.b[self.i] {
                b'{' => {
                    self.i += 1;
                    let mut m = BTreeMap::new();
                    self.ws();
                    if self.b[self.i] == b'}' {
                        self.i += 1;
                        return Json::Obj(m);
                    }
                    loop {
                        self.ws();
                        let k = self.string();
                        self.expect(b':');
                        m.insert(k, self.value());
                        self.ws();
                        match self.b[self.i] {
                            b',' => self.i += 1,
                            b'}' => {
                                self.i += 1;
                                return Json::Obj(m);
                            }
                            c => panic!("bad object separator {}", c as char),
                        }
                    }
                }
                b'[' => {
                    self.i += 1;
                    let mut v = Vec::new();
                    self.ws();
                    if self.b[self.i] == b']' {
                        self.i += 1;
                        return Json::Arr(v);
                    }
                    loop {
                        v.push(self.value());
                        self.ws();
                        match self.b[self.i] {
                            b',' => self.i += 1,
                            b']' => {
                                self.i += 1;
                                return Json::Arr(v);
                            }
                            c => panic!("bad array separator {}", c as char),
                        }
                    }
                }
                b'"' => Json::Str(self.string()),
                b't' => {
                    self.i += 4;
                    Json::Bool(true)
                }
                b'f' => {
                    self.i += 5;
                    Json::Bool(false)
                }
                b'n' => {
                    self.i += 4;
                    Json::Null
                }
                _ => {
                    let start = self.i;
                    while self.i < self.b.len()
                        && matches!(self.b[self.i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                    {
                        self.i += 1;
                    }
                    Json::Num(std::str::from_utf8(&self.b[start..self.i]).unwrap().parse().unwrap())
                }
            }
        }
        fn string(&mut self) -> String {
            assert_eq!(self.b[self.i], b'"');
            self.i += 1;
            let mut out = Vec::new();
            loop {
                let c = self.b[self.i];
                self.i += 1;
                match c {
                    b'"' => break,
                    b'\\' => {
                        let e = self.b[self.i];
                        self.i += 1;
                        match e {
                            b'"' => out.push(b'"'),
                            b'\\' => out.push(b'\\'),
                            b'/' => out.push(b'/'),
                            b'n' => out.push(b'\n'),
                            b't' => out.push(b'\t'),
                            b'r' => out.push(b'\r'),
                            b'u' => {
                                let hex = std::str::from_utf8(&self.b[self.i..self.i + 4]).unwrap();
                                self.i += 4;
                                let cp = u32::from_str_radix(hex, 16).unwrap();
                                let mut buf = [0u8; 4];
                                let s = char::from_u32(cp).unwrap().encode_utf8(&mut buf);
                                out.extend_from_slice(s.as_bytes());
                            }
                            c => panic!("bad escape \\{}", c as char),
                        }
                    }
                    c => out.push(c),
                }
            }
            String::from_utf8(out).unwrap()
        }
    }

    #[test]
    fn disabled_recorders_are_skipped() {
        let json = chrome_trace(&[Recorder::disabled()]);
        assert!(!json.contains("thread_name"));
        let snap = MetricsSnapshot::from_recorders(&[Recorder::disabled()]);
        assert_eq!(snap.clock.total(), 0.0);
        assert_eq!(snap.coverage(), 1.0);
    }
}
