//! The per-rank recorder: span guards against the virtual clock,
//! monotonic counters, and peak gauges.

use parking_lot::Mutex;
use rbamr_perfmodel::{Category, Clock, TimeBreakdown};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One completed (or in-flight) span. Begin/end are full virtual-clock
/// snapshots: the difference is the *exact* per-category time charged
/// while the span was open, so breakdowns reconstructed from spans
/// carry no sampling error.
#[derive(Clone, Debug)]
pub struct SpanEvent {
    /// Static span name (e.g. `"halo-fill"`).
    pub name: &'static str,
    /// Nominal phase of the span (its track colour in a trace viewer).
    pub category: Category,
    /// Optional numeric argument (typically an AMR level number).
    pub arg: Option<i64>,
    /// Nesting depth at begin: 0 = top-level.
    pub depth: usize,
    /// Monotonic per-recorder sequence number (total order of begins).
    pub seq: u64,
    /// Clock snapshot when the span opened.
    pub begin: TimeBreakdown,
    /// Clock snapshot when the guard dropped (== `begin` while open).
    pub end: TimeBreakdown,
}

impl SpanEvent {
    /// Virtual time elapsed inside the span, per category.
    pub fn elapsed(&self) -> TimeBreakdown {
        self.end.since(&self.begin)
    }
}

#[derive(Default)]
struct State {
    spans: Vec<SpanEvent>,
    depth: usize,
    next_seq: u64,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
}

struct Inner {
    rank: usize,
    clock: Clock,
    state: Mutex<State>,
}

/// Cheaply cloneable per-rank telemetry handle. Clones share the same
/// underlying store, so the device, the network layer, and the
/// integrator can all record into one rank-local stream.
#[derive(Clone)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl Recorder {
    /// An enabled recorder for `rank`, timestamping against `clock`.
    pub fn new(rank: usize, clock: Clock) -> Self {
        Self { inner: Some(Arc::new(Inner { rank, clock, state: Mutex::new(State::default()) })) }
    }

    /// The no-op recorder: every operation short-circuits, so
    /// uninstrumented configurations pay only an `Option` check.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The rank this recorder belongs to (0 when disabled).
    pub fn rank(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| i.rank)
    }

    /// Open a span; it closes (and records its end snapshot) when the
    /// returned guard drops.
    #[must_use = "the span closes when the guard drops"]
    pub fn span(&self, name: &'static str, category: Category) -> SpanGuard {
        self.begin_span(name, category, None)
    }

    /// Open a span carrying a numeric argument (e.g. an AMR level).
    #[must_use = "the span closes when the guard drops"]
    pub fn span_arg(&self, name: &'static str, category: Category, arg: i64) -> SpanGuard {
        self.begin_span(name, category, Some(arg))
    }

    fn begin_span(&self, name: &'static str, category: Category, arg: Option<i64>) -> SpanGuard {
        let Some(inner) = &self.inner else {
            return SpanGuard { inner: None, index: 0 };
        };
        let begin = inner.clock.snapshot();
        let mut state = inner.state.lock();
        let seq = state.next_seq;
        state.next_seq += 1;
        let depth = state.depth;
        state.depth += 1;
        let index = state.spans.len();
        state.spans.push(SpanEvent { name, category, arg, depth, seq, begin, end: begin });
        SpanGuard { inner: Some(inner.clone()), index }
    }

    /// Add `delta` to the named monotonic counter.
    pub fn count(&self, name: &str, delta: u64) {
        let Some(inner) = &self.inner else { return };
        let mut state = inner.state.lock();
        if let Some(v) = state.counters.get_mut(name) {
            *v += delta;
        } else {
            state.counters.insert(name.to_string(), delta);
        }
    }

    /// Raise the named gauge to `value` if it is a new peak.
    pub fn gauge_max(&self, name: &str, value: u64) {
        let Some(inner) = &self.inner else { return };
        let mut state = inner.state.lock();
        if let Some(v) = state.gauges.get_mut(name) {
            *v = (*v).max(value);
        } else {
            state.gauges.insert(name.to_string(), value);
        }
    }

    /// Current value of one counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner.as_ref().and_then(|i| i.state.lock().counters.get(name).copied()).unwrap_or(0)
    }

    /// Snapshot of all counters.
    pub fn counters(&self) -> BTreeMap<String, u64> {
        self.inner.as_ref().map_or_else(BTreeMap::new, |i| i.state.lock().counters.clone())
    }

    /// Snapshot of all gauges.
    pub fn gauges(&self) -> BTreeMap<String, u64> {
        self.inner.as_ref().map_or_else(BTreeMap::new, |i| i.state.lock().gauges.clone())
    }

    /// Snapshot of all spans recorded so far, in begin order.
    pub fn spans(&self) -> Vec<SpanEvent> {
        self.inner.as_ref().map_or_else(Vec::new, |i| i.state.lock().spans.clone())
    }

    /// Snapshot of the recorder's clock.
    pub fn clock_snapshot(&self) -> TimeBreakdown {
        self.inner.as_ref().map_or_else(TimeBreakdown::default, |i| i.clock.snapshot())
    }

    /// Per-category virtual time reconstructed from **top-level**
    /// spans only (nested spans are already contained in their
    /// parents). Because every span stores exact clock snapshots, this
    /// equals the raw `Clock` breakdown wherever instrumentation
    /// covers the charged code — comparing the two measures coverage.
    pub fn span_breakdown(&self) -> TimeBreakdown {
        let mut out = TimeBreakdown::default();
        let Some(inner) = &self.inner else { return out };
        for span in inner.state.lock().spans.iter().filter(|s| s.depth == 0) {
            out = out.merged(&span.elapsed());
        }
        out
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => f.write_str("Recorder(disabled)"),
            Some(i) => f
                .debug_struct("Recorder")
                .field("rank", &i.rank)
                .field("spans", &i.state.lock().spans.len())
                .finish(),
        }
    }
}

/// RAII guard returned by [`Recorder::span`]; records the end snapshot
/// and pops the nesting depth on drop.
pub struct SpanGuard {
    inner: Option<Arc<Inner>>,
    index: usize,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(inner) = &self.inner else { return };
        let end = inner.clock.snapshot();
        let mut state = inner.state.lock();
        state.depth = state.depth.saturating_sub(1);
        if let Some(span) = state.spans.get_mut(self.index) {
            span.end = end;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = Recorder::disabled();
        {
            let _g = rec.span("step", Category::Other);
            rec.count("x", 3);
            rec.gauge_max("g", 9);
        }
        assert!(!rec.is_enabled());
        assert_eq!(rec.counter("x"), 0);
        assert!(rec.spans().is_empty());
        assert_eq!(rec.span_breakdown().total(), 0.0);
    }

    #[test]
    fn spans_nest_and_snapshot_the_clock() {
        let clock = Clock::new();
        let rec = Recorder::new(3, clock.clone());
        {
            let _outer = rec.span("step", Category::Other);
            clock.advance(Category::HydroKernel, 1.0);
            {
                let _inner = rec.span_arg("halo-fill", Category::HaloExchange, 1);
                clock.advance(Category::HaloExchange, 0.5);
            }
            clock.advance(Category::Timestep, 0.25);
        }
        let spans = rec.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "step");
        assert_eq!(spans[0].depth, 0);
        assert_eq!(spans[1].name, "halo-fill");
        assert_eq!(spans[1].depth, 1);
        assert_eq!(spans[1].arg, Some(1));
        assert!(spans[0].seq < spans[1].seq);
        assert_eq!(spans[0].elapsed().total(), 1.75);
        assert_eq!(spans[1].elapsed().get(Category::HaloExchange), 0.5);
        // Top-level reconstruction matches the raw clock exactly.
        assert_eq!(rec.span_breakdown(), clock.snapshot());
    }

    #[test]
    fn counters_and_gauges_accumulate() {
        let rec = Recorder::new(0, Clock::new());
        rec.count("net.send_bytes", 100);
        rec.count("net.send_bytes", 28);
        rec.gauge_max("device.peak_bytes", 10);
        rec.gauge_max("device.peak_bytes", 7);
        assert_eq!(rec.counter("net.send_bytes"), 128);
        assert_eq!(rec.gauges()["device.peak_bytes"], 10);
    }

    #[test]
    fn clones_share_the_store() {
        let rec = Recorder::new(0, Clock::new());
        let other = rec.clone();
        other.count("k", 2);
        assert_eq!(rec.counter("k"), 2);
    }

    #[test]
    fn uncovered_clock_time_is_visible() {
        let clock = Clock::new();
        let rec = Recorder::new(0, clock.clone());
        clock.advance(Category::Regrid, 5.0); // charged outside any span
        {
            let _g = rec.span("step", Category::Other);
            clock.advance(Category::HydroKernel, 1.0);
        }
        let spans = rec.span_breakdown();
        assert_eq!(spans.get(Category::HydroKernel), 1.0);
        assert_eq!(spans.get(Category::Regrid), 0.0);
        assert_eq!(clock.snapshot().get(Category::Regrid), 5.0);
    }
}
