//! The per-rank recorder: span guards against the virtual clock,
//! monotonic counters, and peak gauges.

use parking_lot::Mutex;
use rbamr_perfmodel::{Category, Clock, TimeBreakdown};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One completed (or in-flight) span. Begin/end are full virtual-clock
/// snapshots: the difference is the *exact* per-category time charged
/// while the span was open, so breakdowns reconstructed from spans
/// carry no sampling error.
#[derive(Clone, Debug)]
pub struct SpanEvent {
    /// Static span name (e.g. `"halo-fill"`).
    pub name: &'static str,
    /// Nominal phase of the span (its track colour in a trace viewer).
    pub category: Category,
    /// Optional numeric argument (typically an AMR level number).
    pub arg: Option<i64>,
    /// Nesting depth at begin: 0 = top-level.
    pub depth: usize,
    /// Monotonic per-recorder sequence number (total order of begins,
    /// shared with [`EdgeEvent`]s).
    pub seq: u64,
    /// Index (into [`Recorder::spans`]) of the enclosing span open when
    /// this one began, if any. Parent chains let the causal analysis
    /// attribute any event to its phase without time-interval guesswork.
    pub parent: Option<usize>,
    /// Clock snapshot when the span opened.
    pub begin: TimeBreakdown,
    /// Clock snapshot when the guard dropped (== `begin` while open).
    pub end: TimeBreakdown,
}

/// What kind of communication dependency an [`EdgeEvent`] records.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum EdgeKind {
    /// A point-to-point message leaving this rank.
    Send,
    /// A point-to-point message arriving at this rank.
    Recv,
    /// Arrival at an all-ranks rendezvous collective (allreduce,
    /// barrier, digest). One event per participating rank, matched by
    /// the shared collective sequence number carried in `tag`.
    Collective,
}

/// The causal trace context of one communication event: which rank
/// produced it, under which open span, at which local sequence number.
/// This is the identity threaded through every `netsim` transfer; the
/// matching rule (channel + occurrence for point-to-point, collective
/// sequence for rendezvous) is what lets per-rank streams be merged
/// into one cross-rank DAG.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceCtx {
    /// The recording rank.
    pub rank: usize,
    /// Index of the innermost open span at record time, if any.
    pub span: Option<usize>,
    /// The event's recorder-local sequence number.
    pub seq: u64,
}

/// One matched communication edge endpoint, recorded against the
/// virtual clock. A `Send` on rank *a* and the `Recv` with the same
/// `(src, dst, tag, occurrence)` key on rank *b* form one cross-rank
/// edge of the causal DAG; `Collective` events with the same `tag`
/// (the rendezvous sequence number) form an all-ranks barrier node.
#[derive(Clone, Debug)]
pub struct EdgeEvent {
    /// Send / Recv / Collective.
    pub kind: EdgeKind,
    /// Peer rank: destination for `Send`, source for `Recv`; unused
    /// (`usize::MAX`) for `Collective`.
    pub peer: usize,
    /// Message tag for point-to-point; the shared rendezvous sequence
    /// number for `Collective`.
    pub tag: u64,
    /// Which occurrence on the `(src, dst, tag)` channel this message
    /// is (mailboxes are FIFO per channel, so sender and receiver
    /// number occurrences identically). Zero for collectives.
    pub occurrence: u64,
    /// Logical payload bytes.
    pub bytes: u64,
    /// Virtual seconds this operation charged to the local clock
    /// (transfer cost at a recv, the modelled collective cost at a
    /// rendezvous; zero for buffered sends).
    pub cost: f64,
    /// Display name (`"send"`, `"recv"`, or the collective's name).
    pub name: &'static str,
    /// Category the charge was attributed to.
    pub category: Category,
    /// Trace context: rank, innermost open span, local sequence.
    pub ctx: TraceCtx,
    /// Clock snapshot when the event was recorded (post-charge).
    pub time: TimeBreakdown,
}

impl EdgeEvent {
    /// The `(src, dst, tag, occurrence)` channel key of a
    /// point-to-point edge, or `None` for collectives.
    pub fn channel_key(&self) -> Option<(usize, usize, u64, u64)> {
        match self.kind {
            EdgeKind::Send => Some((self.ctx.rank, self.peer, self.tag, self.occurrence)),
            EdgeKind::Recv => Some((self.peer, self.ctx.rank, self.tag, self.occurrence)),
            EdgeKind::Collective => None,
        }
    }

    /// A stable 64-bit id for this edge's pairing key, used as the
    /// Chrome-trace flow-event id so both endpoints bind to the same
    /// arrow. FNV-1a over the key words; deterministic by construction.
    pub fn flow_id(&self) -> u64 {
        let words = match self.channel_key() {
            Some((src, dst, tag, occ)) => [src as u64, dst as u64, tag, occ],
            None => [u64::MAX, u64::MAX, self.tag, 0],
        };
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for w in words {
            for b in w.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }
}

impl SpanEvent {
    /// Virtual time elapsed inside the span, per category.
    pub fn elapsed(&self) -> TimeBreakdown {
        self.end.since(&self.begin)
    }
}

#[derive(Default)]
struct State {
    spans: Vec<SpanEvent>,
    edges: Vec<EdgeEvent>,
    /// Indices (into `spans`) of the currently open spans, innermost
    /// last.
    open: Vec<usize>,
    depth: usize,
    next_seq: u64,
    counters: BTreeMap<String, u64>,
    /// Counters addressed by a `(prefix, suffix)` pair of static
    /// strings — the hot-path form: incrementing never allocates; the
    /// composed `"{prefix}{suffix}"` name is only materialised when a
    /// snapshot is taken.
    scoped_counters: BTreeMap<(&'static str, &'static str), u64>,
    gauges: BTreeMap<String, u64>,
}

struct Inner {
    rank: usize,
    clock: Clock,
    state: Mutex<State>,
}

/// Cheaply cloneable per-rank telemetry handle. Clones share the same
/// underlying store, so the device, the network layer, and the
/// integrator can all record into one rank-local stream.
#[derive(Clone)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl Recorder {
    /// An enabled recorder for `rank`, timestamping against `clock`.
    pub fn new(rank: usize, clock: Clock) -> Self {
        Self { inner: Some(Arc::new(Inner { rank, clock, state: Mutex::new(State::default()) })) }
    }

    /// The no-op recorder: every operation short-circuits, so
    /// uninstrumented configurations pay only an `Option` check.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The rank this recorder belongs to (0 when disabled).
    pub fn rank(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| i.rank)
    }

    /// Open a span; it closes (and records its end snapshot) when the
    /// returned guard drops.
    #[must_use = "the span closes when the guard drops"]
    pub fn span(&self, name: &'static str, category: Category) -> SpanGuard {
        self.begin_span(name, category, None)
    }

    /// Open a span carrying a numeric argument (e.g. an AMR level).
    #[must_use = "the span closes when the guard drops"]
    pub fn span_arg(&self, name: &'static str, category: Category, arg: i64) -> SpanGuard {
        self.begin_span(name, category, Some(arg))
    }

    fn begin_span(&self, name: &'static str, category: Category, arg: Option<i64>) -> SpanGuard {
        let Some(inner) = &self.inner else {
            return SpanGuard { inner: None, index: 0 };
        };
        let begin = inner.clock.snapshot();
        let mut state = inner.state.lock();
        let seq = state.next_seq;
        state.next_seq += 1;
        let depth = state.depth;
        state.depth += 1;
        let index = state.spans.len();
        let parent = state.open.last().copied();
        state.open.push(index);
        state.spans.push(SpanEvent { name, category, arg, depth, seq, parent, begin, end: begin });
        SpanGuard { inner: Some(inner.clone()), index }
    }

    /// Record a communication edge event at the current clock time.
    /// Returns the event's [`TraceCtx`] (None when disabled). Counts
    /// `net.edge.sends` / `net.edge.recvs` / `net.edge.collectives`.
    #[allow(clippy::too_many_arguments)]
    pub fn edge(
        &self,
        kind: EdgeKind,
        name: &'static str,
        peer: usize,
        tag: u64,
        occurrence: u64,
        bytes: u64,
        cost: f64,
        category: Category,
    ) -> Option<TraceCtx> {
        let inner = self.inner.as_ref()?;
        let time = inner.clock.snapshot();
        let mut state = inner.state.lock();
        let seq = state.next_seq;
        state.next_seq += 1;
        let ctx = TraceCtx { rank: inner.rank, span: state.open.last().copied(), seq };
        state.edges.push(EdgeEvent {
            kind,
            peer,
            tag,
            occurrence,
            bytes,
            cost,
            name,
            category,
            ctx,
            time,
        });
        let counter = match kind {
            EdgeKind::Send => ("net.edge.", "sends"),
            EdgeKind::Recv => ("net.edge.", "recvs"),
            EdgeKind::Collective => ("net.edge.", "collectives"),
        };
        *state.scoped_counters.entry(counter).or_insert(0) += 1;
        Some(ctx)
    }

    /// Record the sending endpoint of a point-to-point edge.
    pub fn edge_send(
        &self,
        dst: usize,
        tag: u64,
        occurrence: u64,
        bytes: u64,
        category: Category,
    ) -> Option<TraceCtx> {
        self.edge(EdgeKind::Send, "send", dst, tag, occurrence, bytes, 0.0, category)
    }

    /// Record the receiving endpoint of a point-to-point edge; `cost`
    /// is the virtual transfer time the receive charged locally.
    pub fn edge_recv(
        &self,
        src: usize,
        tag: u64,
        occurrence: u64,
        bytes: u64,
        cost: f64,
        category: Category,
    ) -> Option<TraceCtx> {
        self.edge(EdgeKind::Recv, "recv", src, tag, occurrence, bytes, cost, category)
    }

    /// Record arrival at rendezvous collective number `cseq` (all
    /// participating ranks record the same `cseq` for one collective).
    pub fn edge_collective(
        &self,
        name: &'static str,
        cseq: u64,
        bytes: u64,
        cost: f64,
        category: Category,
    ) -> Option<TraceCtx> {
        self.edge(EdgeKind::Collective, name, usize::MAX, cseq, 0, bytes, cost, category)
    }

    /// Snapshot of all edge events recorded so far, in record order.
    pub fn edges(&self) -> Vec<EdgeEvent> {
        self.inner.as_ref().map_or_else(Vec::new, |i| i.state.lock().edges.clone())
    }

    /// Add `delta` to the named monotonic counter.
    pub fn count(&self, name: &str, delta: u64) {
        let Some(inner) = &self.inner else { return };
        let mut state = inner.state.lock();
        if let Some(v) = state.counters.get_mut(name) {
            *v += delta;
        } else {
            state.counters.insert(name.to_string(), delta);
        }
    }

    /// Add `delta` to the counter named `"{prefix}{suffix}"` without
    /// composing the name — the hot-path form for per-kernel / per-kind
    /// counters. The composed name only materialises in snapshots
    /// ([`Recorder::counters`] / [`Recorder::counter`]), so call sites
    /// in kernel-launch and message loops never allocate.
    pub fn count_scoped(&self, prefix: &'static str, suffix: &'static str, delta: u64) {
        let Some(inner) = &self.inner else { return };
        let mut state = inner.state.lock();
        *state.scoped_counters.entry((prefix, suffix)).or_insert(0) += delta;
    }

    /// Raise the named gauge to `value` if it is a new peak.
    pub fn gauge_max(&self, name: &str, value: u64) {
        let Some(inner) = &self.inner else { return };
        let mut state = inner.state.lock();
        if let Some(v) = state.gauges.get_mut(name) {
            *v = (*v).max(value);
        } else {
            state.gauges.insert(name.to_string(), value);
        }
    }

    /// Current value of one counter (0 if never incremented). Scoped
    /// counters are visible under their composed `"{prefix}{suffix}"`
    /// name.
    pub fn counter(&self, name: &str) -> u64 {
        let Some(inner) = &self.inner else { return 0 };
        let state = inner.state.lock();
        if let Some(v) = state.counters.get(name) {
            return *v;
        }
        state
            .scoped_counters
            .iter()
            .find(|((p, s), _)| {
                p.len() + s.len() == name.len() && name.starts_with(p) && name.ends_with(s)
            })
            .map_or(0, |(_, v)| *v)
    }

    /// Snapshot of all counters, scoped counters composed into their
    /// full `"{prefix}{suffix}"` names.
    pub fn counters(&self) -> BTreeMap<String, u64> {
        let Some(inner) = &self.inner else { return BTreeMap::new() };
        let state = inner.state.lock();
        let mut out = state.counters.clone();
        for ((prefix, suffix), v) in &state.scoped_counters {
            *out.entry(format!("{prefix}{suffix}")).or_insert(0) += v;
        }
        out
    }

    /// Snapshot of all gauges.
    pub fn gauges(&self) -> BTreeMap<String, u64> {
        self.inner.as_ref().map_or_else(BTreeMap::new, |i| i.state.lock().gauges.clone())
    }

    /// Snapshot of all spans recorded so far, in begin order.
    pub fn spans(&self) -> Vec<SpanEvent> {
        self.inner.as_ref().map_or_else(Vec::new, |i| i.state.lock().spans.clone())
    }

    /// Snapshot of the recorder's clock.
    pub fn clock_snapshot(&self) -> TimeBreakdown {
        self.inner.as_ref().map_or_else(TimeBreakdown::default, |i| i.clock.snapshot())
    }

    /// Per-category virtual time reconstructed from **top-level**
    /// spans only (nested spans are already contained in their
    /// parents). Because every span stores exact clock snapshots, this
    /// equals the raw `Clock` breakdown wherever instrumentation
    /// covers the charged code — comparing the two measures coverage.
    pub fn span_breakdown(&self) -> TimeBreakdown {
        let mut out = TimeBreakdown::default();
        let Some(inner) = &self.inner else { return out };
        for span in inner.state.lock().spans.iter().filter(|s| s.depth == 0) {
            out = out.merged(&span.elapsed());
        }
        out
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => f.write_str("Recorder(disabled)"),
            Some(i) => f
                .debug_struct("Recorder")
                .field("rank", &i.rank)
                .field("spans", &i.state.lock().spans.len())
                .finish(),
        }
    }
}

/// RAII guard returned by [`Recorder::span`]; records the end snapshot
/// and pops the nesting depth on drop.
pub struct SpanGuard {
    inner: Option<Arc<Inner>>,
    index: usize,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(inner) = &self.inner else { return };
        let end = inner.clock.snapshot();
        let mut state = inner.state.lock();
        state.depth = state.depth.saturating_sub(1);
        // Guards normally drop LIFO; search from the back so an
        // out-of-order drop still removes the right entry.
        if let Some(pos) = state.open.iter().rposition(|&i| i == self.index) {
            state.open.remove(pos);
        }
        if let Some(span) = state.spans.get_mut(self.index) {
            span.end = end;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = Recorder::disabled();
        {
            let _g = rec.span("step", Category::Other);
            rec.count("x", 3);
            rec.gauge_max("g", 9);
        }
        assert!(!rec.is_enabled());
        assert_eq!(rec.counter("x"), 0);
        assert!(rec.spans().is_empty());
        assert_eq!(rec.span_breakdown().total(), 0.0);
    }

    #[test]
    fn spans_nest_and_snapshot_the_clock() {
        let clock = Clock::new();
        let rec = Recorder::new(3, clock.clone());
        {
            let _outer = rec.span("step", Category::Other);
            clock.advance(Category::HydroKernel, 1.0);
            {
                let _inner = rec.span_arg("halo-fill", Category::HaloExchange, 1);
                clock.advance(Category::HaloExchange, 0.5);
            }
            clock.advance(Category::Timestep, 0.25);
        }
        let spans = rec.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "step");
        assert_eq!(spans[0].depth, 0);
        assert_eq!(spans[1].name, "halo-fill");
        assert_eq!(spans[1].depth, 1);
        assert_eq!(spans[1].arg, Some(1));
        assert!(spans[0].seq < spans[1].seq);
        assert_eq!(spans[0].elapsed().total(), 1.75);
        assert_eq!(spans[1].elapsed().get(Category::HaloExchange), 0.5);
        // Top-level reconstruction matches the raw clock exactly.
        assert_eq!(rec.span_breakdown(), clock.snapshot());
    }

    #[test]
    fn counters_and_gauges_accumulate() {
        let rec = Recorder::new(0, Clock::new());
        rec.count("net.send_bytes", 100);
        rec.count("net.send_bytes", 28);
        rec.gauge_max("device.peak_bytes", 10);
        rec.gauge_max("device.peak_bytes", 7);
        assert_eq!(rec.counter("net.send_bytes"), 128);
        assert_eq!(rec.gauges()["device.peak_bytes"], 10);
    }

    #[test]
    fn clones_share_the_store() {
        let rec = Recorder::new(0, Clock::new());
        let other = rec.clone();
        other.count("k", 2);
        assert_eq!(rec.counter("k"), 2);
    }

    #[test]
    fn edges_carry_context_and_match_keys() {
        let clock = Clock::new();
        let rec = Recorder::new(1, clock.clone());
        {
            let _step = rec.span("step", Category::Other);
            clock.advance(Category::HaloExchange, 0.5);
            let ctx = rec.edge_send(3, 42, 0, 128, Category::HaloExchange).unwrap();
            assert_eq!(ctx.rank, 1);
            assert_eq!(ctx.span, Some(0));
            rec.edge_recv(2, 42, 0, 64, 0.25, Category::HaloExchange);
            rec.edge_collective("allreduce-min", 7, 8, 0.125, Category::Timestep);
        }
        let edges = rec.edges();
        assert_eq!(edges.len(), 3);
        assert_eq!(edges[0].channel_key(), Some((1, 3, 42, 0)));
        assert_eq!(edges[1].channel_key(), Some((2, 1, 42, 0)));
        assert_eq!(edges[2].channel_key(), None);
        assert_eq!(edges[1].cost, 0.25);
        assert_eq!(edges[0].time.get(Category::HaloExchange), 0.5);
        // Sequence numbers interleave with span begins.
        assert!(edges[0].ctx.seq > rec.spans()[0].seq);
        assert_eq!(rec.counter("net.edge.sends"), 1);
        assert_eq!(rec.counter("net.edge.recvs"), 1);
        assert_eq!(rec.counter("net.edge.collectives"), 1);
        // A send and its matching recv produce the same flow id.
        let other = Recorder::new(3, Clock::new());
        other.edge_recv(1, 42, 0, 128, 0.1, Category::HaloExchange);
        assert_eq!(other.edges()[0].flow_id(), edges[0].flow_id());
        assert_ne!(edges[0].flow_id(), edges[1].flow_id());
    }

    #[test]
    fn span_parents_track_nesting() {
        let clock = Clock::new();
        let rec = Recorder::new(0, clock.clone());
        {
            let _a = rec.span("step", Category::Other);
            {
                let _b = rec.span("lagrangian", Category::HydroKernel);
                let ctx = rec.edge_send(1, 0, 0, 8, Category::HaloExchange).unwrap();
                assert_eq!(ctx.span, Some(1));
            }
            {
                let _c = rec.span("advection", Category::HydroKernel);
            }
            let ctx = rec.edge_send(1, 0, 1, 8, Category::HaloExchange).unwrap();
            assert_eq!(ctx.span, Some(0));
        }
        let spans = rec.spans();
        assert_eq!(spans[0].parent, None);
        assert_eq!(spans[1].parent, Some(0));
        assert_eq!(spans[2].parent, Some(0));
        // Outside all spans: no context.
        let ctx = rec.edge_send(1, 0, 2, 8, Category::HaloExchange).unwrap();
        assert_eq!(ctx.span, None);
    }

    #[test]
    fn scoped_counters_compose_names_in_snapshots() {
        let rec = Recorder::new(0, Clock::new());
        rec.count_scoped("device.kernel_launches.", "pack", 2);
        rec.count_scoped("device.kernel_launches.", "pack", 1);
        rec.count_scoped("net.sends.kind", "15", 4);
        rec.count("device.kernel_launches.unpack", 9);
        assert_eq!(rec.counter("device.kernel_launches.pack"), 3);
        assert_eq!(rec.counter("net.sends.kind15"), 4);
        assert_eq!(rec.counter("device.kernel_launches.unpack"), 9);
        let all = rec.counters();
        assert_eq!(all["device.kernel_launches.pack"], 3);
        assert_eq!(all["net.sends.kind15"], 4);
        // Disabled recorder: all scoped ops are no-ops.
        let off = Recorder::disabled();
        off.count_scoped("a", "b", 1);
        assert_eq!(off.counter("ab"), 0);
        assert!(off.edges().is_empty());
        assert!(off.edge_send(0, 0, 0, 0, Category::Other).is_none());
    }

    #[test]
    fn uncovered_clock_time_is_visible() {
        let clock = Clock::new();
        let rec = Recorder::new(0, clock.clone());
        clock.advance(Category::Regrid, 5.0); // charged outside any span
        {
            let _g = rec.span("step", Category::Other);
            clock.advance(Category::HydroKernel, 1.0);
        }
        let spans = rec.span_breakdown();
        assert_eq!(spans.get(Category::HydroKernel), 1.0);
        assert_eq!(spans.get(Category::Regrid), 0.0);
        assert_eq!(clock.snapshot().get(Category::Regrid), 5.0);
    }
}
