//! Per-phase host/device equivalence: every method of the
//! [`PatchIntegrator`] trait must produce bit-identical results on the
//! CPU baseline and the GPU-resident build, starting from identical
//! random patch states. End-to-end equivalence is covered elsewhere;
//! these tests localise a divergence to the exact phase that caused it.

use rand::{Rng, SeedableRng};
use rbamr_amr::patch::PatchId;
use rbamr_amr::{HostData, HostDataFactory, Patch, VariableRegistry};
use rbamr_device::Device;
use rbamr_geometry::GBox;
use rbamr_gpu_amr::{DeviceData, DeviceDataFactory};
use rbamr_hydro::{
    DevicePatchIntegrator, Fields, FlagThresholds, HostPatchIntegrator, PatchIntegrator,
};
use rbamr_perfmodel::Category;
use std::sync::Arc;

const DX: (f64, f64) = (0.05, 0.05);
const GAMMA: f64 = 1.4;
const DT: f64 = 1e-3;

/// Build matched host and device patches with identical random state in
/// every field (positive for densities/energies, signed for the rest).
fn matched_patches(seed: u64) -> (Patch, Fields, Patch, Fields, Device) {
    let cell_box = GBox::from_coords(0, 0, 12, 10);

    let mut host_reg = VariableRegistry::new(Arc::new(HostDataFactory::new()));
    let host_fields = Fields::register(&mut host_reg);
    let mut host_patch = Patch::new(PatchId { level: 0, index: 0 }, cell_box, 0, &host_reg);

    let device = Device::k20x();
    let mut dev_reg = VariableRegistry::new(Arc::new(DeviceDataFactory::new(device.clone())));
    let dev_fields = Fields::register(&mut dev_reg);
    let mut dev_patch = Patch::new(PatchId { level: 0, index: 0 }, cell_box, 0, &dev_reg);

    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    for v in 0..host_reg.len() {
        let var = rbamr_amr::VariableId(v);
        let positive = v < 7; // densities/energies/EOS fields stay positive
        let len = host_patch.host::<f64>(var).as_slice().len();
        let image: Vec<f64> = (0..len)
            .map(|_| if positive { rng.gen_range(0.2..2.0) } else { rng.gen_range(-1.0..1.0) })
            .collect();
        host_patch.host_mut::<f64>(var).as_mut_slice().copy_from_slice(&image);
        dev_patch
            .data_mut(var)
            .as_any_mut()
            .downcast_mut::<DeviceData<f64>>()
            .unwrap()
            .upload_all(&image, Category::Other);
    }
    (host_patch, host_fields, dev_patch, dev_fields, device)
}

/// Compare every field of the two patches bit for bit.
fn assert_all_fields_equal(host: &Patch, dev: &Patch, nvars: usize, phase: &str) {
    for v in 0..nvars {
        let var = rbamr_amr::VariableId(v);
        let h: &HostData<f64> = host.host(var);
        let d = dev
            .data(var)
            .as_any()
            .downcast_ref::<DeviceData<f64>>()
            .unwrap()
            .download_all(Category::Other);
        for (i, (a, b)) in h.as_slice().iter().zip(&d).enumerate() {
            assert!(
                a == b || (a.is_nan() && b.is_nan()),
                "{phase}: field {v} diverges at linear index {i}: host {a:e} vs device {b:e}"
            );
        }
    }
}

fn check_phase(seed: u64, phase: &str, run: impl Fn(&dyn PatchIntegrator, &mut Patch, &Fields)) {
    let (mut hp, hf, mut dp, df, _device) = matched_patches(seed);
    let host = HostPatchIntegrator::new();
    let dev = DevicePatchIntegrator::new();
    run(&host, &mut hp, &hf);
    run(&dev, &mut dp, &df);
    assert_all_fields_equal(&hp, &dp, 22, phase);
}

#[test]
fn ideal_gas_phase_matches() {
    check_phase(11, "ideal_gas", |ig, p, f| ig.ideal_gas(p, f, GAMMA, false));
    check_phase(12, "ideal_gas predict", |ig, p, f| ig.ideal_gas(p, f, GAMMA, true));
}

#[test]
fn viscosity_phase_matches() {
    check_phase(21, "viscosity", |ig, p, f| ig.viscosity(p, f, DX));
}

#[test]
fn calc_dt_matches() {
    let (mut hp, hf, mut dp, df, _device) = matched_patches(31);
    let host = HostPatchIntegrator::new();
    let dev = DevicePatchIntegrator::new();
    let a = host.calc_dt(&mut hp, &hf, DX, 0.5);
    let b = dev.calc_dt(&mut dp, &df, DX, 0.5);
    assert_eq!(a, b, "dt reductions diverge");
    assert!(a.is_finite() && a > 0.0);
}

#[test]
fn pdv_phase_matches() {
    check_phase(41, "pdv predict", |ig, p, f| ig.pdv(p, f, DX, DT, true));
    check_phase(42, "pdv correct", |ig, p, f| ig.pdv(p, f, DX, DT, false));
}

#[test]
fn revert_phase_matches() {
    check_phase(51, "revert", |ig, p, f| ig.revert(p, f));
}

#[test]
fn accelerate_phase_matches() {
    check_phase(61, "accelerate", |ig, p, f| ig.accelerate(p, f, DX, DT));
}

#[test]
fn flux_calc_phase_matches() {
    check_phase(71, "flux_calc", |ig, p, f| ig.flux_calc(p, f, DX, DT));
}

#[test]
fn advec_cell_phase_matches() {
    for dir in 0..2 {
        for sweep in 1..=2 {
            check_phase(
                80 + (dir * 2 + sweep) as u64,
                &format!("advec_cell dir {dir} sweep {sweep}"),
                |ig, p, f| ig.advec_cell(p, f, DX, dir, sweep),
            );
        }
    }
}

#[test]
fn advec_mom_phase_matches() {
    for dir in 0..2 {
        check_phase(90 + dir as u64, &format!("advec_mom dir {dir}"), |ig, p, f| {
            // Momentum advection consumes the volumes and fluxes the
            // cell sweep computes; run both for a realistic state.
            ig.advec_cell(p, f, DX, dir, 1);
            ig.advec_mom(p, f, DX, dir, 1);
        });
    }
}

#[test]
fn reset_phase_matches() {
    check_phase(101, "reset", |ig, p, f| ig.reset(p, f));
}

#[test]
fn flagging_matches() {
    let (hp, hf, dp, df, _device) = matched_patches(111);
    let host = HostPatchIntegrator::new();
    let dev = DevicePatchIntegrator::new();
    let th = FlagThresholds::default();
    let a = host.flag_cells(&hp, &hf, &th);
    let b = dev.flag_cells(&dp, &df, &th);
    assert_eq!(a.tagged_cells(), b.tagged_cells(), "flagging diverges");
}

#[test]
fn field_summary_matches() {
    let (hp, hf, dp, df, _device) = matched_patches(121);
    let host = HostPatchIntegrator::new();
    let dev = DevicePatchIntegrator::new();
    let region = GBox::from_coords(0, 0, 12, 10);
    let a = host.field_summary(&hp, &hf, DX, region);
    let b = dev.field_summary(&dp, &df, DX, region);
    assert_eq!(a.mass, b.mass);
    assert_eq!(a.internal_energy, b.internal_energy);
    // Kinetic energy sums in parallel with non-deterministic order on
    // both paths; allow roundoff.
    assert!((a.kinetic_energy - b.kinetic_energy).abs() < 1e-12 * a.kinetic_energy.abs().max(1.0));
    assert_eq!(a.volume, b.volume);
}
