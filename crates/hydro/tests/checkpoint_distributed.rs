//! Distributed checkpoint/restore: a checkpoint saved by a multi-rank
//! run must restore into fresh simulations — including under
//! partitioned level metadata — and replay the uninterrupted
//! trajectory bitwise.

use rbamr_amr::MetadataMode;
use rbamr_hydro::{HydroConfig, HydroSim, Placement, RegionInit};
use rbamr_netsim::{Cluster, Comm};
use rbamr_perfmodel::Machine;
use std::time::Duration;

fn sod_regions() -> Vec<RegionInit> {
    vec![
        RegionInit { rect: (0.0, 0.0, 0.5, 1.0), density: 1.0, energy: 2.5, xvel: 0.0, yvel: 0.0 },
        RegionInit {
            rect: (0.5, 0.0, 1.0, 1.0),
            density: 0.125,
            energy: 2.0,
            xvel: 0.0,
            yvel: 0.0,
        },
    ]
}

fn build(mode: MetadataMode, comm: &Comm) -> HydroSim {
    let mut config = HydroConfig {
        regrid_interval: 5,
        max_patch_size: 8,
        metadata_mode: mode,
        ..HydroConfig::default()
    };
    config.regrid.cluster.min_size = 4;
    HydroSim::new(
        Machine::ipa_cpu_node(),
        Placement::Host,
        comm.clock().clone(),
        (1.0, 1.0),
        (24, 24),
        2,
        2,
        config,
        sod_regions(),
        comm.rank(),
        2,
    )
}

/// Save at step 3, then compare the uninterrupted run against a fresh
/// sim restored from the checkpoint, step for step.
fn roundtrip(mode: MetadataMode) {
    let results = Cluster::new(Machine::ipa_cpu_node())
        .with_deadlock_timeout(Duration::from_secs(5))
        .run(2, |comm| {
            let mut original = build(mode, &comm);
            original.initialize(Some(&comm));
            original.run_steps(3, Some(&comm));
            let ckpt = original.save_checkpoint();
            let step_at_save = original.steps_taken();
            let time_at_save = original.time();

            // Restore into a simulation that never ran a step.
            let mut restored = build(mode, &comm);
            restored
                .try_restore_checkpoint(&ckpt, Some(&comm))
                .expect("a just-saved checkpoint restores cleanly");
            assert_eq!(restored.steps_taken(), step_at_save);
            assert_eq!(restored.time(), time_at_save);
            assert_eq!(
                restored.hierarchy().num_levels(),
                original.hierarchy().num_levels(),
                "restore must rebuild the full hierarchy"
            );

            // The persisted fields replay the uninterrupted trajectory
            // bitwise. (Digests straight after restore are not compared:
            // the re-priming fill refreshes ghost cells the running sim
            // had left stale, and the first step's fill erases the
            // difference anyway.)
            let mut digests = Vec::new();
            for _ in 0..4 {
                original.run_steps(1, Some(&comm));
                restored.run_steps(1, Some(&comm));
                digests.push((original.state_field_digest(), restored.state_field_digest()));
            }
            digests
        });
    for r in results {
        for (step, (original, restored)) in r.value.into_iter().enumerate() {
            assert_eq!(
                original,
                restored,
                "rank {}: restored run diverges {} steps after the checkpoint",
                r.rank,
                step + 1
            );
        }
    }
}

#[test]
fn replicated_roundtrip_replays_bitwise_at_two_ranks() {
    roundtrip(MetadataMode::Replicated);
}

#[test]
fn partitioned_roundtrip_replays_bitwise_at_two_ranks() {
    roundtrip(MetadataMode::Partitioned);
}
