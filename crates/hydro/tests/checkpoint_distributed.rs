//! Distributed checkpoint/restore: a checkpoint saved by a multi-rank
//! run must restore into fresh simulations — including under
//! partitioned level metadata — and replay the uninterrupted
//! trajectory bitwise.

use rbamr_amr::MetadataMode;
use rbamr_hydro::{HydroConfig, HydroSim, Placement, RegionInit};
use rbamr_netsim::{Cluster, Comm};
use rbamr_perfmodel::Machine;
use std::time::Duration;

fn sod_regions() -> Vec<RegionInit> {
    vec![
        RegionInit { rect: (0.0, 0.0, 0.5, 1.0), density: 1.0, energy: 2.5, xvel: 0.0, yvel: 0.0 },
        RegionInit {
            rect: (0.5, 0.0, 1.0, 1.0),
            density: 0.125,
            energy: 2.0,
            xvel: 0.0,
            yvel: 0.0,
        },
    ]
}

fn build_at(mode: MetadataMode, clock: rbamr_perfmodel::Clock, rank: usize, nranks: usize) -> HydroSim {
    let mut config = HydroConfig {
        regrid_interval: 5,
        max_patch_size: 8,
        metadata_mode: mode,
        ..HydroConfig::default()
    };
    config.regrid.cluster.min_size = 4;
    HydroSim::new(
        Machine::ipa_cpu_node(),
        Placement::Host,
        clock,
        (1.0, 1.0),
        (24, 24),
        2,
        2,
        config,
        sod_regions(),
        rank,
        nranks,
    )
}

fn build(mode: MetadataMode, comm: &Comm) -> HydroSim {
    build_at(mode, comm.clock().clone(), comm.rank(), comm.size())
}

/// Save at step 3, then compare the uninterrupted run against a fresh
/// sim restored from the checkpoint, step for step.
fn roundtrip(mode: MetadataMode) {
    let results = Cluster::new(Machine::ipa_cpu_node())
        .with_deadlock_timeout(Duration::from_secs(5))
        .run(2, |comm| {
            let mut original = build(mode, &comm);
            original.initialize(Some(&comm));
            original.run_steps(3, Some(&comm));
            let ckpt = original
                .try_save_checkpoint(Some(&comm))
                .expect("a fault-free distributed save succeeds");
            let step_at_save = original.steps_taken();
            let time_at_save = original.time();

            // Restore into a simulation that never ran a step.
            let mut restored = build(mode, &comm);
            restored
                .try_restore_checkpoint(&ckpt, Some(&comm))
                .expect("a just-saved checkpoint restores cleanly");
            assert_eq!(restored.steps_taken(), step_at_save);
            assert_eq!(restored.time(), time_at_save);
            assert_eq!(
                restored.hierarchy().num_levels(),
                original.hierarchy().num_levels(),
                "restore must rebuild the full hierarchy"
            );

            // The persisted fields replay the uninterrupted trajectory
            // bitwise. (Digests straight after restore are not compared:
            // the re-priming fill refreshes ghost cells the running sim
            // had left stale, and the first step's fill erases the
            // difference anyway.)
            let mut digests = Vec::new();
            for _ in 0..4 {
                original.run_steps(1, Some(&comm));
                restored.run_steps(1, Some(&comm));
                digests.push((original.state_field_digest(), restored.state_field_digest()));
            }
            digests
        });
    for r in results {
        for (step, (original, restored)) in r.value.into_iter().enumerate() {
            assert_eq!(
                original,
                restored,
                "rank {}: restored run diverges {} steps after the checkpoint",
                r.rank,
                step + 1
            );
        }
    }
}

#[test]
fn replicated_roundtrip_replays_bitwise_at_two_ranks() {
    roundtrip(MetadataMode::Replicated);
}

#[test]
fn partitioned_roundtrip_replays_bitwise_at_two_ranks() {
    roundtrip(MetadataMode::Partitioned);
}

/// The elastic-recovery acceptance at the checkpoint layer: a manifest
/// written by a 2-rank run is identical on every rank, restores into a
/// 1-rank simulation, and replays the trajectory a fresh 1-rank run
/// produces — bitwise.
fn shrink_restore(mode: MetadataMode) {
    use rbamr_amr::restart::Database;

    let results = Cluster::new(Machine::ipa_cpu_node())
        .with_deadlock_timeout(Duration::from_secs(5))
        .run(2, |comm| {
            let mut sim = build(mode, &comm);
            sim.initialize(Some(&comm));
            sim.run_steps(3, Some(&comm));
            sim.try_save_checkpoint(Some(&comm))
                .expect("a fault-free distributed save succeeds")
                .to_bytes()
        });
    assert_eq!(
        results[0].value, results[1].value,
        "the global manifest must be identical on every rank"
    );
    let ckpt = Database::from_bytes(&results[0].value).expect("manifest decodes");

    // Fresh 1-rank reference trajectory.
    let mut fresh = build_at(mode, rbamr_perfmodel::Clock::new(), 0, 1);
    fresh.initialize(None);
    fresh.run_steps(3, None);

    // Restore the 2-rank checkpoint into a 1-rank simulation.
    let mut restored = build_at(mode, rbamr_perfmodel::Clock::new(), 0, 1);
    restored
        .try_restore_checkpoint(&ckpt, None)
        .expect("a 2-rank manifest restores at 1 rank");
    assert_eq!(restored.steps_taken(), fresh.steps_taken());

    // Digests straight after restore are not compared (re-priming
    // refreshes ghosts the running sim left stale); after each
    // subsequent step the persisted fields must match bitwise.
    for step in 0..4 {
        fresh.run_steps(1, None);
        restored.run_steps(1, None);
        assert_eq!(
            fresh.state_field_digest(),
            restored.state_field_digest(),
            "shrunk restore diverges {} steps after the checkpoint",
            step + 1
        );
    }
}

#[test]
fn replicated_two_rank_checkpoint_restores_at_one_rank() {
    shrink_restore(MetadataMode::Replicated);
}

#[test]
fn partitioned_two_rank_checkpoint_restores_at_one_rank() {
    shrink_restore(MetadataMode::Partitioned);
}

/// Per-rank digests of `steps` further steps, starting either from a
/// fresh `m`-rank initialisation or from `ckpt` restored at `m` ranks.
fn trajectory(
    mode: MetadataMode,
    m: usize,
    ckpt: Option<Vec<u8>>,
    steps: usize,
) -> Vec<Vec<u64>> {
    use rbamr_amr::restart::Database;

    Cluster::new(Machine::ipa_cpu_node())
        .with_deadlock_timeout(Duration::from_secs(10))
        .run(m, move |comm| {
            let mut sim = build(mode, &comm);
            match &ckpt {
                Some(bytes) => {
                    let db = Database::from_bytes(bytes).expect("manifest decodes");
                    sim.try_restore_checkpoint(&db, Some(&comm))
                        .expect("a rank-count-independent manifest restores at any rank count");
                }
                None => {
                    sim.initialize(Some(&comm));
                    sim.run_steps(3, Some(&comm));
                }
            }
            let mut digests = Vec::with_capacity(steps);
            for _ in 0..steps {
                sim.run_steps(1, Some(&comm));
                digests.push(sim.state_field_digest());
            }
            digests
        })
        .into_iter()
        .map(|r| r.value)
        .collect()
}

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The rank-count-independence property behind elastic recovery: a
    /// checkpoint saved at step 3 by an N-rank run restores at ANY
    /// smaller rank count M (1 ≤ M < N) in either metadata mode, and
    /// the restored trajectory's `state_field_digest` matches a fresh
    /// M-rank run bitwise on every rank, step for step.
    #[test]
    fn checkpoint_at_n_ranks_restores_bitwise_at_any_fewer(
        n in 2usize..6,
        m_sel in 0usize..4,
        partitioned in any::<bool>(),
    ) {
        let m = 1 + m_sel % (n - 1);
        let mode =
            if partitioned { MetadataMode::Partitioned } else { MetadataMode::Replicated };

        let saved = Cluster::new(Machine::ipa_cpu_node())
            .with_deadlock_timeout(Duration::from_secs(10))
            .run(n, move |comm| {
                let mut sim = build(mode, &comm);
                sim.initialize(Some(&comm));
                sim.run_steps(3, Some(&comm));
                sim.try_save_checkpoint(Some(&comm))
                    .expect("a fault-free distributed save succeeds")
                    .to_bytes()
            });
        for r in &saved[1..] {
            prop_assert_eq!(
                &r.value, &saved[0].value,
                "the global manifest must be identical on every saving rank"
            );
        }

        let steps = 3;
        let fresh = trajectory(mode, m, None, steps);
        let restored = trajectory(mode, m, Some(saved[0].value.clone()), steps);
        for rank in 0..m {
            prop_assert_eq!(
                &restored[rank], &fresh[rank],
                "{:?}: {}-rank checkpoint restored at {} ranks diverges on rank {}",
                mode, n, m, rank
            );
        }
    }
}
