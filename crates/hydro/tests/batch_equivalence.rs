//! The batch-equivalence layer: batched + overlapped execution must be
//! observationally identical to the per-patch oracle.
//!
//! Property-tests random hierarchy configurations (deck, rank count,
//! metadata mode, grid size) and asserts, per rank and per step:
//!
//! * the batched run's `state_field_digest` is bitwise identical to
//!   the per-patch oracle's on the event-driven engine;
//! * the batched run is **engine-invariant**: the event-driven and
//!   thread-per-rank netsim engines produce identical digests, device
//!   counters, recorder counters, and causal-edge streams (tags,
//!   occurrences, bytes, and bit-exact virtual costs);
//! * in the many-patch regime the batched executor issues strictly
//!   fewer kernel launches than the oracle;
//! * under fault schedules (message drops and corruption during the
//!   overlapped halo exchange), recovery reproduces the fault-free
//!   digest — which itself equals the oracle's.

use proptest::prelude::*;
use rbamr_amr::MetadataMode;
use rbamr_device::DeviceStats;
use rbamr_hydro::{
    HydroConfig, HydroSim, Placement, RecoveryPolicy, RegionInit, ResilientSim, SimSpec,
};
use rbamr_netsim::{Cluster, Engine, FaultKind, FaultPlan, FaultRule};
use rbamr_perfmodel::Machine;
use rbamr_telemetry::Recorder;
use std::time::Duration;

/// Sod shock tube: the canonical two-state deck.
fn sod_regions() -> Vec<RegionInit> {
    vec![
        RegionInit { rect: (0.0, 0.0, 0.5, 1.0), density: 1.0, energy: 2.5, xvel: 0.0, yvel: 0.0 },
        RegionInit {
            rect: (0.5, 0.0, 1.0, 1.0),
            density: 0.125,
            energy: 2.0,
            xvel: 0.0,
            yvel: 0.0,
        },
    ]
}

/// A three-state blast deck: refines in a different pattern than Sod,
/// so regrids exercise different box structures and batch plans.
fn blast_regions() -> Vec<RegionInit> {
    vec![
        RegionInit { rect: (0.0, 0.0, 1.0, 1.0), density: 0.2, energy: 1.0, xvel: 0.0, yvel: 0.0 },
        RegionInit { rect: (0.3, 0.3, 0.7, 0.7), density: 1.0, energy: 3.0, xvel: 0.0, yvel: 0.0 },
        RegionInit { rect: (0.0, 0.7, 0.3, 1.0), density: 0.5, energy: 1.5, xvel: 0.0, yvel: 0.0 },
    ]
}

#[derive(Clone, Copy, Debug)]
struct RunConfig {
    deck: u8,
    ranks: usize,
    cells: i64,
    mode: MetadataMode,
    steps: usize,
}

/// Everything observable about one rank of a run: per-step digests,
/// cumulative device transfer/launch statistics, deterministic recorder
/// counters, and the full causal-edge stream.
#[derive(Debug, PartialEq)]
struct RankTrace {
    digests: Vec<u64>,
    device: DeviceStats,
    counters: Vec<(String, u64)>,
    /// (name, peer, tag, occurrence, bytes, cost bits) per edge, in
    /// record order.
    edges: Vec<(String, usize, u64, u64, u64, u64)>,
}

fn run(cfg: RunConfig, engine: Engine, batched: bool) -> Vec<RankTrace> {
    let machine = Machine::ipa_gpu();
    let m = machine.clone();
    let results = Cluster::new(machine)
        .with_engine(engine)
        .with_deadlock_timeout(Duration::from_secs(30))
        .run(cfg.ranks, move |mut comm| {
            let rec = Recorder::new(comm.rank(), comm.clock().clone());
            comm.set_recorder(rec.clone());
            let mut config = HydroConfig {
                regrid_interval: 3,
                max_patch_size: 8,
                metadata_mode: cfg.mode,
                batched,
                ..HydroConfig::default()
            };
            config.regrid.cluster.min_size = 4;
            config.regrid.max_patch_size = 8;
            let regions = if cfg.deck == 0 { sod_regions() } else { blast_regions() };
            let mut sim = HydroSim::new(
                m.clone(),
                Placement::Device,
                comm.clock().clone(),
                (1.0, 1.0),
                (cfg.cells, cfg.cells),
                2,
                2,
                config,
                regions,
                comm.rank(),
                comm.size(),
            );
            sim.set_recorder(rec.clone());
            sim.initialize(Some(&comm));
            let mut digests = Vec::new();
            for _ in 0..cfg.steps {
                sim.step(Some(&comm));
                digests.push(sim.state_field_digest());
            }
            let device = sim.device().expect("device placement").stats();
            // Wall-clock counters (`*_ns`) are inherently noisy; every
            // other counter must be engine-invariant.
            let counters =
                rec.counters().into_iter().filter(|(name, _)| !name.ends_with("_ns")).collect();
            let edges = rec
                .edges()
                .into_iter()
                .map(|e| {
                    (e.name.to_string(), e.peer, e.tag, e.occurrence, e.bytes, e.cost.to_bits())
                })
                .collect();
            RankTrace { digests, device, counters, edges }
        });
    let mut out: Vec<_> = results.into_iter().map(|r| (r.rank, r.value)).collect();
    out.sort_by_key(|(rank, _)| *rank);
    out.into_iter().map(|(_, t)| t).collect()
}

/// The core property: batched == oracle physics, and the batched run
/// itself is engine-invariant down to counters and edge costs.
fn check_equivalence(cfg: RunConfig) {
    let oracle = run(cfg, Engine::EventDriven, false);
    let batched = run(cfg, Engine::EventDriven, true);
    let batched_tpr = run(cfg, Engine::ThreadPerRank, true);

    for (rank, (o, b)) in oracle.iter().zip(&batched).enumerate() {
        assert_eq!(
            o.digests, b.digests,
            "{cfg:?}: rank {rank}: batched digests diverge from the per-patch oracle"
        );
    }
    for (rank, (ed, tpr)) in batched.iter().zip(&batched_tpr).enumerate() {
        assert_eq!(
            ed.digests, tpr.digests,
            "{cfg:?}: rank {rank}: digests differ across netsim engines"
        );
        assert_eq!(
            ed.device, tpr.device,
            "{cfg:?}: rank {rank}: device counters differ across netsim engines"
        );
        assert_eq!(
            ed.counters, tpr.counters,
            "{cfg:?}: rank {rank}: recorder counters differ across netsim engines"
        );
        assert_eq!(
            ed.edges, tpr.edges,
            "{cfg:?}: rank {rank}: causal-edge streams differ across netsim engines"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random hierarchies at 1–8 ranks, both decks, both metadata
    /// modes: batched == oracle, and batched is engine-invariant.
    #[test]
    fn random_hierarchies_match_oracle_across_engines(
        deck in prop::sample::select(vec![0u8, 1]),
        ranks in prop::sample::select(vec![1usize, 2, 3, 5, 8]),
        cells in prop::sample::select(vec![24i64, 32]),
        partitioned in any::<bool>(),
    ) {
        let mode = if partitioned { MetadataMode::Partitioned } else { MetadataMode::Replicated };
        check_equivalence(RunConfig { deck, ranks, cells, mode, steps: 3 });
    }
}

/// Fixed corner pins the proptest strategy's ends: the largest rank
/// count with partitioned metadata on the non-Sod deck.
#[test]
fn eight_rank_partitioned_blast_matches() {
    check_equivalence(RunConfig {
        deck: 1,
        ranks: 8,
        cells: 32,
        mode: MetadataMode::Partitioned,
        steps: 3,
    });
}

/// In the many-patch regime (patches per rank ≫ levels) the batched
/// executor issues strictly fewer kernel launches than the per-patch
/// oracle, on every rank, while remaining bitwise identical.
#[test]
fn batched_issues_fewer_launches_in_many_patch_regime() {
    let cfg = RunConfig { deck: 0, ranks: 2, cells: 32, mode: MetadataMode::Replicated, steps: 4 };
    let oracle = run(cfg, Engine::EventDriven, false);
    let batched = run(cfg, Engine::EventDriven, true);
    for (rank, (o, b)) in oracle.iter().zip(&batched).enumerate() {
        assert_eq!(o.digests, b.digests, "rank {rank}: digests diverge");
        assert!(
            b.device.kernel_launches < o.device.kernel_launches,
            "rank {rank}: batched issued {} launches, oracle {}",
            b.device.kernel_launches,
            o.device.kernel_launches
        );
    }
}

fn resilient_digests(plan: FaultPlan, batched: bool) -> Vec<u64> {
    let machine = Machine::ipa_gpu();
    let m = machine.clone();
    let results = Cluster::new(machine)
        .with_deadlock_timeout(Duration::from_secs(30))
        .with_fault_plan(plan)
        .run(2, move |comm| {
            let mut config = HydroConfig {
                regrid_interval: 3,
                max_patch_size: 8,
                batched,
                ..HydroConfig::default()
            };
            config.regrid.cluster.min_size = 4;
            config.regrid.max_patch_size = 8;
            let spec = SimSpec {
                machine: m.clone(),
                placement: Placement::Device,
                extent: (1.0, 1.0),
                coarse_cells: (24, 24),
                max_levels: 2,
                ratio: 2,
                config,
                regions: sod_regions(),
                rank: comm.rank(),
                nranks: 2,
            };
            let policy = RecoveryPolicy {
                checkpoint_interval: 3,
                max_retries: 6,
                backoff_base: 0.05,
                ..RecoveryPolicy::default()
            };
            let recorder = Recorder::new(comm.rank(), comm.clock().clone());
            let mut sim = ResilientSim::new(spec, policy, recorder, Some(&comm))
                .expect("resilient sim builds");
            sim.run_steps(6, Some(&comm)).expect("faults are recoverable");
            sim.sim().state_field_digest()
        });
    let mut out: Vec<_> = results.into_iter().map(|r| (r.rank, r.value)).collect();
    out.sort_by_key(|(rank, _)| *rank);
    out.into_iter().map(|(_, d)| d).collect()
}

/// Fault schedules landing during the overlapped exchange: rollback +
/// replay under batching reproduces the fault-free digest, which
/// itself equals the per-patch oracle's.
#[test]
fn fault_recovery_under_batching_reproduces_fault_free_digest() {
    let fault_free_oracle = resilient_digests(FaultPlan::none(), false);
    let fault_free_batched = resilient_digests(FaultPlan::none(), true);
    assert_eq!(
        fault_free_oracle, fault_free_batched,
        "fault-free batched run must match the per-patch oracle"
    );
    for (name, rules) in [
        ("drop", vec![FaultRule::once_on(FaultKind::MsgDrop, 0, 12)]),
        ("corrupt", vec![FaultRule::once_on(FaultKind::MsgCorrupt, 1, 20)]),
        (
            "drop+corrupt",
            vec![
                FaultRule::once_on(FaultKind::MsgDrop, 0, 8),
                FaultRule::once_on(FaultKind::MsgCorrupt, 1, 30),
            ],
        ),
    ] {
        let faulted = resilient_digests(FaultPlan::new(9000, rules), true);
        assert_eq!(
            faulted, fault_free_batched,
            "{name}: batched recovery must reproduce the fault-free digest"
        );
    }
}
