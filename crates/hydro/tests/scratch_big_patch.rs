//! Scratch review test: batched vs oracle with LARGE patches so the
//! interior/boundary overlap split is non-degenerate.
use rbamr_hydro::{HydroConfig, HydroSim, Placement, RegionInit};
use rbamr_netsim::Cluster;
use rbamr_perfmodel::{Clock, Machine};

fn sod_regions() -> Vec<RegionInit> {
    vec![
        RegionInit { rect: (0.0, 0.0, 0.5, 1.0), density: 1.0, energy: 2.5, xvel: 0.0, yvel: 0.0 },
        RegionInit { rect: (0.5, 0.0, 1.0, 1.0), density: 0.125, energy: 2.0, xvel: 0.0, yvel: 0.0 },
    ]
}

fn digests(batched: bool, ranks: usize) -> Vec<Vec<u64>> {
    let machine = Machine::ipa_gpu();
    let m = machine.clone();
    let results = Cluster::new(machine).run(ranks, move |mut comm| {
        let mut config = HydroConfig {
            regrid_interval: 3,
            max_patch_size: 64,
            batched,
            ..HydroConfig::default()
        };
        config.regrid.max_patch_size = 64;
        let mut sim = HydroSim::new(
            m.clone(),
            Placement::Device,
            comm.clock().clone(),
            (1.0, 1.0),
            (64, 64),
            2,
            2,
            config,
            sod_regions(),
            comm.rank(),
            comm.size(),
        );
        sim.initialize(Some(&comm));
        let mut out = Vec::new();
        for _ in 0..6 {
            sim.step(Some(&comm));
            out.push(sim.state_field_digest());
        }
        out
    });
    let mut v: Vec<_> = results.into_iter().map(|r| (r.rank, r.value)).collect();
    v.sort_by_key(|(r, _)| *r);
    v.into_iter().map(|(_, d)| d).collect()
}

#[test]
fn big_patch_batched_matches_oracle() {
    for ranks in [1usize, 2] {
        let o = digests(false, ranks);
        let b = digests(true, ranks);
        assert_eq!(o, b, "ranks={ranks}: batched diverges from oracle with 64-wide patches");
    }
}
