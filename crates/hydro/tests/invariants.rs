//! Physical invariants of the hydro scheme, checked end-to-end through
//! the full AMR machinery.

use proptest::prelude::*;
use rbamr_hydro::{HydroConfig, HydroSim, Placement, RegionInit};
use rbamr_perfmodel::{Clock, Machine};

fn sim_with(regions: Vec<RegionInit>, n: i64, levels: usize) -> HydroSim {
    let config = HydroConfig { regrid_interval: 4, ..HydroConfig::default() };
    let mut sim = HydroSim::new(
        Machine::ipa_cpu_node(),
        Placement::Host,
        Clock::new(),
        (1.0, 1.0),
        (n, n),
        levels,
        2,
        config,
        regions,
        0,
        1,
    );
    sim.initialize(None);
    sim
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any uniform state is a fixed point of the full timestep: no
    /// waves, no drift, regridding finds nothing to refine.
    #[test]
    fn uniform_state_is_a_fixed_point(
        density in 0.1f64..5.0,
        energy in 0.1f64..5.0,
    ) {
        let regions = vec![RegionInit {
            rect: (0.0, 0.0, 1.0, 1.0),
            density,
            energy,
            xvel: 0.0,
            yvel: 0.0,
        }];
        let mut sim = sim_with(regions, 16, 2);
        prop_assert_eq!(sim.hierarchy().num_levels(), 1, "nothing to refine");
        let before = sim.summary(None);
        for _ in 0..5 {
            sim.step(None);
        }
        let after = sim.summary(None);
        prop_assert!((after.mass - before.mass).abs() < 1e-12);
        prop_assert!((after.internal_energy - before.internal_energy).abs() < 1e-10);
        prop_assert!(after.kinetic_energy.abs() < 1e-18, "spurious motion {}", after.kinetic_energy);
    }

    /// A pressure jump normal to x keeps the solution y-invariant: the
    /// 2D scheme preserves the 1D symmetry of the problem through
    /// sweeps in both directions.
    #[test]
    fn planar_problem_stays_planar(p_ratio in 2.0f64..10.0) {
        let regions = vec![
            RegionInit { rect: (0.0, 0.0, 0.5, 1.0), density: 1.0, energy: p_ratio / 0.4, xvel: 0.0, yvel: 0.0 },
            RegionInit { rect: (0.5, 0.0, 1.0, 1.0), density: 1.0, energy: 1.0 / 0.4, xvel: 0.0, yvel: 0.0 },
        ];
        let mut sim = sim_with(regions, 24, 1);
        for _ in 0..6 {
            sim.step(None);
        }
        // Compare two rows of the density field: must be identical.
        let hierarchy = sim.hierarchy();
        let f = *sim.fields();
        for patch in hierarchy.level(0).local() {
            let d = patch.host::<f64>(f.density0);
            let cb = patch.cell_box();
            for x in cb.lo.x..cb.hi.x {
                let v0 = d.at(rbamr_geometry::IntVector::new(x, cb.lo.y));
                for y in cb.lo.y..cb.hi.y {
                    let v = d.at(rbamr_geometry::IntVector::new(x, y));
                    prop_assert!((v - v0).abs() < 1e-11, "row asymmetry at x={x}, y={y}: {v} vs {v0}");
                }
            }
        }
    }
}

#[test]
fn blast_preserves_fourfold_symmetry() {
    // A centred hot square must stay symmetric under x<->(N-1-x) and
    // y<->(N-1-y) through full AMR steps (sweep alternation included).
    let regions = vec![
        RegionInit { rect: (0.0, 0.0, 1.0, 1.0), density: 1.0, energy: 1e-2, xvel: 0.0, yvel: 0.0 },
        RegionInit {
            rect: (0.375, 0.375, 0.625, 0.625),
            density: 1.0,
            energy: 5.0,
            xvel: 0.0,
            yvel: 0.0,
        },
    ];
    let n = 32i64;
    let mut sim = sim_with(regions, n, 2);
    for _ in 0..8 {
        sim.step(None);
    }
    let f = *sim.fields();
    let read = |x: i64, y: i64| -> f64 {
        for patch in sim.hierarchy().level(0).local() {
            if patch.cell_box().contains(rbamr_geometry::IntVector::new(x, y)) {
                return patch.host::<f64>(f.density0).at(rbamr_geometry::IntVector::new(x, y));
            }
        }
        panic!("cell ({x},{y}) not found");
    };
    for y in 0..n {
        for x in 0..n {
            let v = read(x, y);
            assert!((v - read(n - 1 - x, y)).abs() < 1e-10, "x-mirror broken at ({x},{y})");
            assert!((v - read(x, n - 1 - y)).abs() < 1e-10, "y-mirror broken at ({x},{y})");
        }
    }
}

#[test]
fn shocks_heat_the_gas() {
    // Entropy sanity: after a strong shock passes, downstream internal
    // energy exceeds the initial downstream value (shock heating), and
    // no state variable goes negative anywhere.
    let regions = vec![
        RegionInit { rect: (0.0, 0.0, 0.3, 1.0), density: 1.0, energy: 25.0, xvel: 0.0, yvel: 0.0 },
        RegionInit { rect: (0.3, 0.0, 1.0, 1.0), density: 0.5, energy: 1.0, xvel: 0.0, yvel: 0.0 },
    ];
    let mut sim = sim_with(regions, 48, 2);
    sim.run_to_time(0.05, None);
    let f = *sim.fields();
    let mut max_downstream_e = 0.0f64;
    for patch in sim.hierarchy().level(0).local() {
        let d = patch.host::<f64>(f.density0);
        let e = patch.host::<f64>(f.energy0);
        for q in patch.cell_box().iter() {
            assert!(d.at(q) > 0.0, "negative density at {q}");
            assert!(e.at(q) > 0.0, "negative energy at {q}");
            if q.x > 20 {
                max_downstream_e = max_downstream_e.max(e.at(q));
            }
        }
    }
    assert!(
        max_downstream_e > 1.5,
        "no shock heating observed: max downstream e = {max_downstream_e}"
    );
}

#[test]
fn dt_respects_cfl_under_refinement() {
    // Adding a finer level must shrink the global dt by roughly the
    // refinement ratio (the synchronized-stepping CFL constraint).
    let regions = vec![
        RegionInit { rect: (0.0, 0.0, 0.5, 1.0), density: 1.0, energy: 2.5, xvel: 0.0, yvel: 0.0 },
        RegionInit {
            rect: (0.5, 0.0, 1.0, 1.0),
            density: 0.125,
            energy: 2.0,
            xvel: 0.0,
            yvel: 0.0,
        },
    ];
    let mut coarse_only = sim_with(regions.clone(), 32, 1);
    let mut refined = sim_with(regions, 32, 2);
    let dt_coarse = coarse_only.step(None).dt;
    let dt_refined = refined.step(None).dt;
    assert!(
        dt_refined < dt_coarse * 0.75,
        "refined dt {dt_refined} not limited by the fine level (coarse {dt_coarse})"
    );
    assert!(dt_refined > dt_coarse * 0.3, "refined dt too small: {dt_refined}");
}
