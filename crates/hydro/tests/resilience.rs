//! Checkpoint-rollback recovery under injected faults: transient faults
//! roll back and converge to the fault-free answer, persistent device
//! faults degrade the placement until the run survives, persistent
//! communication faults exhaust the retry budget with the same typed
//! error on every rank, and same-seed reruns reproduce identical fault
//! sites and recovery counters.

use rbamr_fault::{FaultKind, FaultPlan, FaultReport, FaultRule};
use rbamr_hydro::{
    HydroConfig, HydroSim, Placement, RecoveryPolicy, RecoveryStats, RegionInit, ResilienceError,
    ResilientSim, SimError, SimSpec,
};
use rbamr_netsim::Cluster;
use rbamr_perfmodel::{Clock, Machine};
use rbamr_telemetry::Recorder;
use std::time::Duration;

fn sod_regions() -> Vec<RegionInit> {
    vec![
        RegionInit { rect: (0.0, 0.0, 0.5, 1.0), density: 1.0, energy: 2.5, xvel: 0.0, yvel: 0.0 },
        RegionInit {
            rect: (0.5, 0.0, 1.0, 1.0),
            density: 0.125,
            energy: 2.0,
            xvel: 0.0,
            yvel: 0.0,
        },
    ]
}

fn sod_config() -> HydroConfig {
    let mut config =
        HydroConfig { regrid_interval: 5, max_patch_size: 8, ..HydroConfig::default() };
    config.regrid.cluster.min_size = 4;
    config
}

fn spec(placement: Placement, rank: usize, nranks: usize) -> SimSpec {
    let machine = match placement {
        Placement::Host => Machine::ipa_cpu_node(),
        _ => Machine::ipa_gpu(),
    };
    SimSpec {
        machine,
        placement,
        extent: (1.0, 1.0),
        coarse_cells: (24, 24),
        max_levels: 2,
        ratio: 2,
        config: sod_config(),
        regions: sod_regions(),
        rank,
        nranks,
    }
}

fn cluster(plan: FaultPlan) -> Cluster {
    Cluster::new(Machine::ipa_cpu_node())
        .with_deadlock_timeout(Duration::from_secs(5))
        .with_fault_plan(plan)
}

/// Per-rank outcome of a resilient cluster run, for cross-run and
/// cross-schedule comparison.
#[derive(Clone, Debug, PartialEq)]
struct RankOutcome {
    digest: u64,
    stats: RecoveryStats,
    report: FaultReport,
}

/// Run `steps` resilient Sod steps on `nranks` ranks under `plan`.
fn run_resilient(
    placement: Placement,
    nranks: usize,
    steps: usize,
    plan: FaultPlan,
    policy: RecoveryPolicy,
) -> Vec<Result<RankOutcome, ResilienceError>> {
    let mut out: Vec<_> = cluster(plan)
        .run(nranks, move |comm| {
            let rank = comm.rank();
            let recorder = Recorder::new(rank, comm.clock().clone());
            let mut sim =
                ResilientSim::new(spec(placement, rank, nranks), policy, recorder, Some(&comm))?;
            sim.run_steps(steps, Some(&comm))?;
            let report =
                comm.fault_injector().expect("cluster ranks always carry an injector").report();
            Ok(RankOutcome { digest: sim.sim().state_field_digest(), stats: sim.stats(), report })
        })
        .into_iter()
        .map(|r| (r.rank, r.value))
        .collect();
    out.sort_by_key(|(rank, _)| *rank);
    out.into_iter().map(|(_, v)| v).collect()
}

#[test]
fn fault_free_resilient_run_matches_plain_run() {
    let steps = 7;
    let mut plain = HydroSim::new(
        Machine::ipa_cpu_node(),
        Placement::Host,
        Clock::new(),
        (1.0, 1.0),
        (24, 24),
        2,
        2,
        sod_config(),
        sod_regions(),
        0,
        1,
    );
    plain.initialize(None);
    plain.run_steps(steps, None);

    let recorder = Recorder::new(0, Clock::new());
    let mut resilient = ResilientSim::new(
        spec(Placement::Host, 0, 1),
        RecoveryPolicy::default(),
        recorder.clone(),
        None,
    )
    .expect("fault-free initialisation cannot fail");
    resilient.run_steps(steps, None).expect("fault-free stepping cannot fail");

    assert_eq!(
        resilient.sim().state_field_digest(),
        plain.state_field_digest(),
        "recovery layer must be invisible without faults"
    );
    assert_eq!(resilient.stats().rollbacks, 0);
    assert_eq!(resilient.placement(), Placement::Host);
    // Initial checkpoint + one per interval (5) over 7 steps.
    assert_eq!(resilient.stats().checkpoints, 2);
    assert_eq!(recorder.counter("recovery.checkpoints"), 2);
    assert_eq!(recorder.counter("recovery.rollbacks"), 0);
    assert_eq!(recorder.counter("recovery.degraded_steps"), 0);
}

#[test]
fn transient_collective_fault_rolls_back_and_converges() {
    let steps = 8;
    let baseline =
        run_resilient(Placement::Host, 2, steps, FaultPlan::none(), RecoveryPolicy::default());
    let faulty = run_resilient(
        Placement::Host,
        2,
        steps,
        // One collective poisoned mid-run on rank 0; the commit verdict
        // makes both ranks roll back together.
        FaultPlan::new(7, vec![FaultRule::once_on(FaultKind::CollectiveFault, 0, 12)]),
        RecoveryPolicy::default(),
    );
    for (rank, (base, fault)) in baseline.iter().zip(&faulty).enumerate() {
        let base = base.as_ref().expect("baseline is fault-free");
        let fault = fault.as_ref().expect("a transient fault must be recovered");
        assert_eq!(
            fault.digest, base.digest,
            "rank {rank}: recovered run must converge to the fault-free answer"
        );
        assert!(fault.stats.rollbacks >= 1, "rank {rank}: the fault must cause a rollback");
        assert_eq!(fault.stats.degradations, 0, "rank {rank}: comm faults never degrade");
        assert_eq!(base.stats.rollbacks, 0);
    }
    assert_eq!(
        faulty[0].as_ref().unwrap().stats,
        faulty[1].as_ref().unwrap().stats,
        "recovery decisions are collective: both ranks walk the same path"
    );
    assert_eq!(faulty[0].as_ref().unwrap().report.total_fired(), 1);
}

#[test]
fn transient_message_faults_roll_back_and_converge() {
    let steps = 8;
    let baseline =
        run_resilient(Placement::Host, 2, steps, FaultPlan::none(), RecoveryPolicy::default());
    let faulty = run_resilient(
        Placement::Host,
        2,
        steps,
        FaultPlan::new(
            11,
            vec![
                FaultRule::once_on(FaultKind::MsgDrop, 0, 30),
                FaultRule::once_on(FaultKind::MsgCorrupt, 1, 60),
            ],
        ),
        RecoveryPolicy::default(),
    );
    for (rank, (base, fault)) in baseline.iter().zip(&faulty).enumerate() {
        let base = base.as_ref().expect("baseline is fault-free");
        let fault = fault.as_ref().expect("transient message faults must be recovered");
        assert_eq!(fault.digest, base.digest, "rank {rank}: digest must match fault-free");
        assert!(fault.stats.rollbacks >= 1, "rank {rank}: faults must cause rollbacks");
    }
}

#[test]
fn persistent_device_fault_degrades_to_host_and_completes() {
    let steps = 5;
    let policy = RecoveryPolicy { backoff_base: 0.01, ..RecoveryPolicy::default() };
    let results = run_resilient(
        Placement::Device,
        1,
        steps,
        // Every allocation on the device fails, forever: the placement
        // must walk Device -> DeviceCopyBack -> Host to survive.
        FaultPlan::new(3, vec![FaultRule::persistent(FaultKind::AllocFail, 0, 0)]),
        policy,
    );
    let outcome = results[0].as_ref().expect("the run must survive by degrading to the host");
    assert_eq!(outcome.stats.degradations, 2, "Device -> DeviceCopyBack -> Host is two steps");
    assert!(
        outcome.stats.degraded_steps >= steps as u64,
        "every committed step ran below the preferred placement"
    );
    assert!(outcome.report.fired[FaultKind::AllocFail.index()] > 0);

    // The degraded run still computes real physics: it matches a run
    // that asked for the host placement in the first place.
    let host = run_resilient(Placement::Host, 1, steps, FaultPlan::none(), policy);
    assert_eq!(
        outcome.digest,
        host[0].as_ref().unwrap().digest,
        "degraded-to-host physics must equal native host physics"
    );
}

#[test]
fn degraded_placement_is_observable() {
    let policy =
        RecoveryPolicy { backoff_base: 0.01, degrade_after: 1, ..RecoveryPolicy::default() };
    let results = cluster(FaultPlan::new(
        5,
        vec![FaultRule::persistent(FaultKind::AllocFail, 0, 0)],
    ))
    .run(1, move |comm| {
        let recorder = Recorder::new(0, comm.clock().clone());
        let mut sim =
            ResilientSim::new(spec(Placement::Device, 0, 1), policy, recorder.clone(), Some(&comm))
                .expect("must degrade to host and initialise");
        assert_eq!(sim.placement(), Placement::Host);
        sim.run_steps(2, Some(&comm)).expect("host placement has no device to fault");
        (sim.stats(), recorder.counter("recovery.degradations"), recorder.counter("fault.injected"))
    });
    let (stats, degradations_counter, injected) = results[0].value;
    assert_eq!(stats.degradations, 2);
    assert_eq!(degradations_counter, 2);
    assert!(injected > 0, "the device faults that drove degradation are counted");
}

#[test]
fn persistent_collective_fault_exhausts_retries_on_every_rank() {
    let policy = RecoveryPolicy { max_retries: 3, backoff_base: 0.01, ..RecoveryPolicy::default() };
    let results = run_resilient(
        Placement::Host,
        2,
        4,
        FaultPlan::new(13, vec![FaultRule::persistent(FaultKind::CollectiveFault, 0, 0)]),
        policy,
    );
    for (rank, result) in results.iter().enumerate() {
        let err = result.as_ref().expect_err("a persistent collective fault is unrecoverable");
        let ResilienceError::RetriesExhausted { attempts, last, .. } = err else {
            panic!("rank {rank}: expected RetriesExhausted, got {err:?}");
        };
        assert_eq!(*attempts, 3, "rank {rank}: the whole retry budget was spent");
        assert!(
            matches!(last, SimError::Comm { .. }),
            "rank {rank}: the verdict is a communication fault, got {last:?}"
        );
    }
}

#[test]
fn same_seed_reruns_reproduce_fault_sites_and_stats() {
    let plan = FaultPlan::new(
        99,
        vec![
            FaultRule::once_on(FaultKind::CollectiveFault, 1, 10),
            FaultRule::once_on(FaultKind::MsgDrop, 0, 40),
        ],
    );
    let a = run_resilient(Placement::Host, 2, 6, plan.clone(), RecoveryPolicy::default());
    let b = run_resilient(Placement::Host, 2, 6, plan, RecoveryPolicy::default());
    for (rank, (ra, rb)) in a.iter().zip(&b).enumerate() {
        let ra = ra.as_ref().expect("transient faults recover");
        let rb = rb.as_ref().expect("transient faults recover");
        assert_eq!(ra, rb, "rank {rank}: same seed must reproduce digests, stats and fault sites");
        assert!(ra.report.total_fired() > 0, "rank {rank}: the planned faults must fire");
    }
}

/// Permanent rank loss: the victim reports `Killed`, the survivor
/// detects the death structurally (no timeout), shrinks to one rank,
/// rolls back to the last adopted checkpoint, and replays to a digest
/// bitwise-identical to a fault-free run at the surviving rank count.
#[test]
fn rank_kill_shrinks_and_replays_to_the_survivor_baseline() {
    let steps = 8;
    let baseline =
        run_resilient(Placement::Host, 1, steps, FaultPlan::none(), RecoveryPolicy::default());
    let base = baseline[0].as_ref().expect("baseline is fault-free");

    let outcome = run_resilient(
        Placement::Host,
        2,
        steps,
        FaultPlan::new(21, vec![FaultRule::rank_kill(1, 3)]),
        RecoveryPolicy::default(),
    );
    assert!(
        matches!(outcome[1], Err(ResilienceError::Killed { rank: 1, at_step: 3 })),
        "the victim reports its own death, got {:?}",
        outcome[1]
    );
    let survivor = outcome[0].as_ref().expect("the survivor completes the run");
    assert_eq!(
        survivor.digest, base.digest,
        "survivor must finish bitwise-identical to the fault-free 1-rank run"
    );
    assert_eq!(survivor.stats.shrinks, 1);
    assert_eq!(survivor.stats.rank_losses, 1);
    assert!(survivor.stats.rollbacks >= 1, "the shrink rolls back to the checkpoint");
}

/// A kill firing *inside* the checkpoint-adoption collective: the
/// survivors' save is revoked (discarded collectively), the next step
/// fails structurally, and recovery shrinks as usual.
#[test]
fn rank_kill_during_checkpoint_adoption_is_survived() {
    let steps = 8;
    let baseline =
        run_resilient(Placement::Host, 1, steps, FaultPlan::none(), RecoveryPolicy::default());
    let base = baseline[0].as_ref().expect("baseline is fault-free");

    let outcome = run_resilient(
        Placement::Host,
        2,
        steps,
        // Step 5 is a checkpoint-interval step, so the victim dies
        // right before the survivors enter the adoption collective.
        FaultPlan::new(22, vec![FaultRule::rank_kill_at_adopt(1, 5)]),
        RecoveryPolicy::default(),
    );
    assert!(matches!(outcome[1], Err(ResilienceError::Killed { rank: 1, at_step: 5 })));
    let survivor = outcome[0].as_ref().expect("the survivor completes the run");
    assert_eq!(survivor.digest, base.digest);
    assert_eq!(survivor.stats.shrinks, 1);
}

/// Shrinking from four ranks to three renumbers the survivors: each
/// survivor's final digest matches the corresponding logical rank of a
/// fault-free three-rank run.
#[test]
fn four_rank_kill_matches_three_rank_baseline_per_logical_rank() {
    let steps = 6;
    let baseline =
        run_resilient(Placement::Host, 3, steps, FaultPlan::none(), RecoveryPolicy::default());
    let outcome = run_resilient(
        Placement::Host,
        4,
        steps,
        FaultPlan::new(23, vec![FaultRule::rank_kill(1, 2)]),
        RecoveryPolicy::default(),
    );
    assert!(matches!(outcome[1], Err(ResilienceError::Killed { rank: 1, at_step: 2 })));
    // Survivors 0, 2, 3 renumber to logical 0, 1, 2.
    for (original, logical) in [(0usize, 0usize), (2, 1), (3, 2)] {
        let survivor = outcome[original].as_ref().expect("survivors complete");
        let base = baseline[logical].as_ref().expect("baseline is fault-free");
        assert_eq!(
            survivor.digest, base.digest,
            "original rank {original} (logical {logical}) must match the 3-rank baseline"
        );
        assert_eq!(survivor.stats.rank_losses, 1);
    }
}

/// A loss below the policy's rank floor fails fast — with the same
/// typed error on every survivor, not a hang.
#[test]
fn loss_below_min_ranks_fails_fast_on_every_survivor() {
    let policy = RecoveryPolicy { min_ranks: 2, ..RecoveryPolicy::default() };
    let outcome = run_resilient(
        Placement::Host,
        2,
        6,
        FaultPlan::new(24, vec![FaultRule::rank_kill(0, 2)]),
        policy,
    );
    assert!(matches!(outcome[0], Err(ResilienceError::Killed { rank: 0, at_step: 2 })));
    assert_eq!(
        outcome[1],
        Err(ResilienceError::InsufficientRanks { survivors: 1, min_ranks: 2 }),
        "the survivor must fail fast below the configured rank floor"
    );
}
