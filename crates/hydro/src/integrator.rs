//! The hierarchy driver — CleverLeaf's `LagrangianEulerianIntegrator` /
//! `LagrangianEulerianLevelIntegrator` pair (paper Figure 6).
//!
//! [`HydroSim`] owns the patch hierarchy and orchestrates one timestep
//! across all levels with synchronised timestepping: a single global dt
//! (the only global reduction, Section V-B), lockstep phase execution on
//! every level (coarse to fine, so coarse-fine ghost interpolation uses
//! same-phase data), fine→coarse conservative synchronisation after the
//! step, and periodic regridding. The patch-local physics is entirely
//! behind [`PatchIntegrator`], so the same driver runs the CPU baseline
//! and the GPU-resident build — the paper's central design point.

use crate::batched::{self, Pass};
use crate::boundary::ReflectiveBoundary;
use crate::device_integrator::DevicePatchIntegrator;
use crate::host_integrator::HostPatchIntegrator;
use crate::state::{Fields, FlagThresholds, HydroTagger, PatchIntegrator, RegionInit, Summary};
use rbamr_amr::cluster::split_to_max;
use rbamr_amr::hostdata::HostCostHook;
use rbamr_amr::ops as host_ops;
use rbamr_amr::patchdata::PatchData as _;
use rbamr_amr::regrid::TransferSpec;
use rbamr_amr::restart::RestoreError;
use rbamr_amr::schedule::{CoarsenSpec, FillSpec};
use rbamr_amr::{
    balance, try_partition_hierarchy_metadata, BuildStrategy, CoarsenSchedule, GridGeometry,
    HostDataFactory, MetadataMode, PatchHierarchy, RefineOperator, RefineSchedule, RegridError,
    RegridOutcome, RegridParams, Regridder, ScheduleBuild, ScheduleCache, ScheduleError,
    VariableId, VariableRegistry,
};
use rbamr_device::{Device, Stream};
use rbamr_geometry::{BoxList, Centring, GBox, IntVector};
use rbamr_gpu_amr::{ops as dev_ops, BatchPlanCache, DeviceDataFactory};
use rbamr_netsim::{Comm, CommError};
use rbamr_perfmodel::{Category, Clock, CostModel, Machine};
use std::sync::Arc;

/// Where patch data lives — the paper's two builds of CleverLeaf.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Placement {
    /// Host memory, CPU kernels (the baseline).
    Host,
    /// Resident device memory, device kernels (the contribution).
    Device,
    /// Device kernels with per-phase full-array PCIe round trips — the
    /// non-resident Wang et al. baseline the paper's Related Work
    /// criticises. Identical physics to [`Placement::Device`]; only the
    /// transfer discipline differs.
    DeviceCopyBack,
}

/// Simulation parameters.
#[derive(Clone, Debug)]
pub struct HydroConfig {
    /// Ideal-gas ratio of specific heats.
    pub gamma: f64,
    /// CFL safety factor.
    pub cfl: f64,
    /// Hard upper bound on dt.
    pub dt_max: f64,
    /// Maximum dt growth per step.
    pub max_dt_growth: f64,
    /// Steps between regrids.
    pub regrid_interval: usize,
    /// Flagging thresholds.
    pub thresholds: FlagThresholds,
    /// Regridding parameters.
    pub regrid: RegridParams,
    /// Maximum patch extent on level 0, in cells.
    pub max_patch_size: i64,
    /// Reuse communication schedules across structure-preserving
    /// regrids via the structure-keyed [`ScheduleCache`]. Disable to
    /// rebuild every schedule on every regrid (the always-rebuild
    /// baseline the benchmarks compare against).
    pub schedule_caching: bool,
    /// How level metadata is held across ranks. `Replicated` (the
    /// default) keeps every level's full box array on every rank;
    /// `Partitioned` holds owned + ghosted views, converted in place at
    /// [`HydroSim::initialize`] and maintained (digest-verified) across
    /// regrids. Field output is bitwise identical between the modes.
    pub metadata_mode: MetadataMode,
    /// Batched per-level kernel launches with comm/compute overlap: one
    /// launch per kernel per level (indexed through the level's cached
    /// [`rbamr_gpu_amr::BatchPlan`] descriptor table) instead of one
    /// per patch, and each halo-fill window split so interior-region
    /// batches run while the exchange is in flight. Device placements
    /// only (ignored on [`Placement::Host`]); field output is bitwise
    /// identical to the per-patch path.
    pub batched: bool,
}

impl Default for HydroConfig {
    fn default() -> Self {
        Self {
            gamma: 1.4,
            cfl: 0.5,
            dt_max: 0.1,
            max_dt_growth: 1.5,
            regrid_interval: 10,
            thresholds: FlagThresholds::default(),
            regrid: RegridParams::default(),
            max_patch_size: 1 << 30,
            schedule_caching: true,
            metadata_mode: MetadataMode::default(),
            batched: false,
        }
    }
}

/// Per-step results.
#[derive(Clone, Copy, Debug)]
pub struct StepStats {
    /// Step number just completed (0-based).
    pub step: usize,
    /// The dt taken.
    pub dt: f64,
    /// Simulation time after the step.
    pub time: f64,
    /// Levels in the hierarchy.
    pub levels: usize,
    /// Total cells over all levels (global).
    pub total_cells: i64,
}

/// Why a step (or initialisation) could not be committed. The variant
/// is the *global* verdict: [`HydroSim::try_step_capped`] ends in a
/// commit collective that agrees on success and, on failure, on the
/// worst failure kind across ranks — so every rank returns the same
/// variant and a recovery driver makes identical decisions everywhere.
///
/// * `Comm` — a transport or metadata fault. Retry after rollback.
/// * `Device` — a device allocation or transfer fault. Retrying may
///   help for a transient fault; a persistent one calls for degrading
///   the placement (device → copy-back → host).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// A communication-layer fault (message drop/corruption, collective
    /// fault, metadata divergence) spoiled the step.
    Comm {
        /// The first locally observed fault, or a note that the fault
        /// was reported by a peer rank.
        detail: String,
    },
    /// A device fault (injected OOM or transfer failure) spoiled the
    /// step.
    Device {
        /// The first locally observed fault, or a note that the fault
        /// was reported by a peer rank.
        detail: String,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Comm { detail } => write!(f, "step aborted by a communication fault: {detail}"),
            Self::Device { detail } => write!(f, "step aborted by a device fault: {detail}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<CommError> for SimError {
    fn from(e: CommError) -> Self {
        Self::Comm { detail: e.to_string() }
    }
}

impl From<ScheduleError> for SimError {
    fn from(e: ScheduleError) -> Self {
        match e {
            ScheduleError::Comm(c) => Self::Comm { detail: c.to_string() },
            ScheduleError::Data(d) => Self::Device { detail: d.to_string() },
        }
    }
}

impl From<RegridError> for SimError {
    fn from(e: RegridError) -> Self {
        match e {
            RegridError::Comm(c) => Self::Comm { detail: c.to_string() },
            RegridError::Divergence(d) => Self::Comm { detail: d.to_string() },
            RegridError::Data(d) => Self::Device { detail: d.to_string() },
        }
    }
}

impl From<rbamr_device::DeviceError> for SimError {
    fn from(e: rbamr_device::DeviceError) -> Self {
        Self::Device { detail: e.to_string() }
    }
}

impl From<RestoreError> for SimError {
    fn from(e: RestoreError) -> Self {
        match &e {
            // Restore tags device-side upload faults so the recovery
            // driver's degradation policy sees them as device failures.
            RestoreError::Exchange { detail } if detail.starts_with("device fault") => {
                Self::Device { detail: detail.clone() }
            }
            _ => Self::Comm { detail: e.to_string() },
        }
    }
}

/// The CleverLeaf simulation object.
pub struct HydroSim {
    hierarchy: PatchHierarchy,
    registry: VariableRegistry,
    fields: Fields,
    integrator: Box<dyn PatchIntegrator>,
    boundary: ReflectiveBoundary,
    config: HydroConfig,
    placement: Placement,
    regions: Vec<RegionInit>,
    clock: Clock,
    device: Option<Device>,
    time: f64,
    step: usize,
    prev_dt: f64,
    /// Live fill schedules, one set per level; refreshed after regrids
    /// (through the cache when `config.schedule_caching`).
    fill_schedules: Vec<LevelSchedules>,
    sync_schedules: Vec<Arc<CoarsenSchedule>>,
    /// Structure-keyed schedule cache: a regrid that reproduces a
    /// level's structure resolves its schedules as `Arc` clones instead
    /// of rebuilding the plans.
    schedule_cache: ScheduleCache,
    /// Per-level batched-launch descriptor plans, keyed by the same
    /// structure digest discipline as the schedule cache: a regrid that
    /// preserves a level's boxes reuses the plan (and its one-time
    /// device descriptor upload). Only consulted when `config.batched`.
    batch_plans: BatchPlanCache,
    /// Telemetry handle; disabled unless wired via
    /// [`HydroSim::set_recorder`].
    recorder: rbamr_telemetry::Recorder,
}

struct LevelSchedules {
    start: Arc<RefineSchedule>,      // fill A: state fields before the step
    post_accel: Arc<RefineSchedule>, // fill B: advanced velocities
    post_sweep1: [Arc<RefineSchedule>; 2], // fill C per sweep direction
    mid_sweeps: Arc<RefineSchedule>, // fill D: state + velocities
    post_sweep2: [Arc<RefineSchedule>; 2], // fill E per sweep direction
}

impl HydroSim {
    /// Build a simulation.
    ///
    /// * `machine` — the modelled platform (must carry an accelerator
    ///   when `placement` is [`Placement::Device`]).
    /// * `clock` — the rank's virtual clock (share the `Comm`'s clock in
    ///   distributed runs).
    /// * `coarse_cells` — level-0 resolution `(nx, ny)` over the unit
    ///   physical extent given by `extent`.
    /// * `max_levels`, `ratio` — hierarchy shape (the paper: 3 levels,
    ///   ratio 2).
    /// * `regions` — initial state; `rank`/`nranks` — the job layout.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        machine: Machine,
        placement: Placement,
        clock: Clock,
        extent: (f64, f64),
        coarse_cells: (i64, i64),
        max_levels: usize,
        ratio: i64,
        config: HydroConfig,
        regions: Vec<RegionInit>,
        rank: usize,
        nranks: usize,
    ) -> Self {
        assert!(coarse_cells.0 > 0 && coarse_cells.1 > 0, "empty base grid");
        let cost = Arc::new(CostModel::new(machine.clone()));
        let (device, factory): (Option<Device>, Arc<dyn rbamr_amr::DataFactory>) = match placement {
            Placement::Host => {
                (None, Arc::new(HostDataFactory::with_costs(clock.clone(), Arc::clone(&cost))))
            }
            Placement::Device | Placement::DeviceCopyBack => {
                let dev = Device::new(machine.clone(), clock.clone());
                (Some(dev.clone()), Arc::new(DeviceDataFactory::new(dev)))
            }
        };
        let mut registry = VariableRegistry::new(factory);
        let fields = Fields::register(&mut registry);
        let boundary = ReflectiveBoundary::for_fields(&fields, registry.len());
        let integrator: Box<dyn PatchIntegrator> = match placement {
            Placement::Host => Box::new(HostPatchIntegrator::with_costs(HostCostHook {
                clock: clock.clone(),
                cost: Arc::clone(&cost),
            })),
            Placement::Device => Box::new(DevicePatchIntegrator::new()),
            Placement::DeviceCopyBack => {
                Box::new(crate::copyback_integrator::CopyBackPatchIntegrator::new())
            }
        };

        let geometry = GridGeometry {
            origin: (0.0, 0.0),
            dx0: (extent.0 / coarse_cells.0 as f64, extent.1 / coarse_cells.1 as f64),
        };
        let domain = GBox::from_coords(0, 0, coarse_cells.0, coarse_cells.1);
        let mut hierarchy = PatchHierarchy::new(
            geometry,
            BoxList::from_box(domain),
            IntVector::uniform(ratio),
            max_levels,
            rank,
            nranks,
        );
        // Level 0: split the domain into patches and distribute.
        let mut boxes = Vec::new();
        split_to_max(domain, config.max_patch_size, &mut boxes);
        let owners = balance::partition_sfc(&boxes, nranks);
        hierarchy.set_level(0, boxes, owners, &registry);

        let mut sim = Self {
            hierarchy,
            registry,
            fields,
            integrator,
            boundary,
            config,
            placement,
            regions,
            clock,
            device,
            time: 0.0,
            step: 0,
            prev_dt: f64::INFINITY,
            fill_schedules: Vec::new(),
            sync_schedules: Vec::new(),
            schedule_cache: ScheduleCache::new(),
            batch_plans: BatchPlanCache::new(),
            recorder: rbamr_telemetry::Recorder::disabled(),
        };
        sim.rebuild_schedules();
        sim
    }

    /// The hierarchy (inspection).
    pub fn hierarchy(&self) -> &PatchHierarchy {
        &self.hierarchy
    }

    /// The field registry.
    pub fn fields(&self) -> &Fields {
        &self.fields
    }

    /// The virtual clock.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// The device, when running the resident build.
    pub fn device(&self) -> Option<&Device> {
        self.device.as_ref()
    }

    /// Attach a telemetry recorder: the integrator, its hierarchy and
    /// its device (when present) all record spans and counters through
    /// it. The `Comm` used in distributed runs is wired separately via
    /// [`Comm::set_recorder`](rbamr_netsim::Comm::set_recorder).
    pub fn set_recorder(&mut self, recorder: rbamr_telemetry::Recorder) {
        if let Some(device) = &self.device {
            device.set_recorder(recorder.clone());
        }
        self.hierarchy.set_recorder(recorder.clone());
        self.recorder = recorder;
    }

    /// The attached recorder (disabled if never set).
    pub fn recorder(&self) -> &rbamr_telemetry::Recorder {
        &self.recorder
    }

    /// Current simulation time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Completed steps.
    pub fn steps_taken(&self) -> usize {
        self.step
    }

    /// The data placement.
    pub fn placement(&self) -> Placement {
        self.placement
    }

    /// The previous step's dt (growth limiting / restart).
    pub fn prev_dt(&self) -> f64 {
        self.prev_dt
    }

    /// Mutable hierarchy access for the checkpoint/restore machinery.
    pub(crate) fn hierarchy_mut(&mut self) -> &mut PatchHierarchy {
        &mut self.hierarchy
    }

    /// Rebuild one level from checkpointed structure.
    pub(crate) fn set_level_for_restart(&mut self, l: usize, boxes: Vec<GBox>, owners: Vec<usize>) {
        self.hierarchy.set_level(l, boxes, owners, &self.registry);
    }

    /// Drop levels beyond the checkpointed count.
    pub(crate) fn truncate_levels_for_restart(&mut self, num: usize) {
        self.hierarchy.truncate_levels(num);
    }

    /// Restore time/step/dt bookkeeping.
    pub(crate) fn set_progress_for_restart(&mut self, time: f64, step: usize, prev_dt: f64) {
        self.time = time;
        self.step = step;
        self.prev_dt = prev_dt;
    }

    /// Rebuild schedules and re-prime derived fields after a restore.
    ///
    /// # Errors
    /// [`RestoreError::Exchange`] when a fault interrupts the metadata
    /// conversion or the priming ghost fill. The metadata verdict is
    /// collective (every rank aborts together); a fill fault is
    /// rank-local but runs through, so the communication pattern stays
    /// aligned and the caller's commit reduction can make it symmetric.
    pub(crate) fn reprime_after_restart(
        &mut self,
        comm: Option<&Comm>,
    ) -> Result<(), RestoreError> {
        if self.config.metadata_mode == MetadataMode::Partitioned {
            // Restore rebuilds levels replicated; convert back before
            // schedules are rebuilt.
            try_partition_hierarchy_metadata(&mut self.hierarchy, self.config.regrid.margins, comm)
                .map_err(|e| RestoreError::Exchange { detail: e.to_string() })?;
        }
        self.rebuild_schedules();
        let refill = self.try_fill_start(comm);
        self.eos_and_viscosity();
        refill.map_err(|e| RestoreError::Exchange { detail: e.to_string() })
    }

    fn refine_op_for(&self, var: VariableId) -> Arc<dyn RefineOperator> {
        let centring = self.registry.get(var).centring;
        match (self.placement, centring) {
            (Placement::Host, Centring::Cell) => Arc::new(host_ops::ConservativeCellRefine),
            (Placement::Host, Centring::Node) => Arc::new(host_ops::LinearNodeRefine),
            (Placement::Host, Centring::Side(a)) => {
                Arc::new(host_ops::LinearSideRefine { axis: a })
            }
            (_, Centring::Cell) => Arc::new(dev_ops::DeviceConservativeCellRefine),
            (_, Centring::Node) => Arc::new(dev_ops::DeviceLinearNodeRefine),
            (_, Centring::Side(a)) => Arc::new(dev_ops::DeviceLinearSideRefine { axis: a }),
        }
    }

    fn fill_specs(&self, vars: &[VariableId]) -> Vec<FillSpec> {
        vars.iter().map(|&var| FillSpec { var, refine_op: Some(self.refine_op_for(var)) }).collect()
    }

    /// (Re)build the per-level fill and sync schedules.
    ///
    /// With `config.schedule_caching` (the default) every build is routed
    /// through the structure-keyed [`ScheduleCache`], so levels whose
    /// structure survived the last regrid resolve to `Arc` clones of the
    /// existing schedules in O(1) and only levels that actually changed
    /// pay for plan construction.
    fn rebuild_schedules(&mut self) {
        let mut cache = std::mem::take(&mut self.schedule_cache);
        let mut build = if self.config.schedule_caching {
            ScheduleBuild::with_cache(&mut cache)
        } else {
            ScheduleBuild::indexed()
        };
        if self.config.metadata_mode == MetadataMode::Partitioned {
            // Owner-computes planning over the held records; plans (and
            // so cache keys) are digest-identical to the indexed build.
            build.strategy = BuildStrategy::Partitioned;
        }
        let f = &self.fields;
        let start_vars = [f.density0, f.energy0, f.xvel0, f.yvel0];
        // After the Lagrangian phase: the advected velocities AND the
        // PdV-updated density/energy, whose depth-2 ghosts feed the van
        // Leer limiter of the first advection sweep (CloverLeaf fills
        // the same set before advection).
        let b_vars = [f.density1, f.energy1, f.xvel1, f.yvel1];
        let c_vars = |dir: usize| {
            [f.density1, f.energy1, if dir == 0 { f.mass_flux_x } else { f.mass_flux_y }]
        };
        let d_vars = [f.density1, f.energy1, f.xvel1, f.yvel1];
        let e_vars =
            |dir: usize| [f.density1, if dir == 0 { f.mass_flux_x } else { f.mass_flux_y }];
        self.fill_schedules = (0..self.hierarchy.num_levels())
            .map(|l| LevelSchedules {
                start: build.refine(
                    &self.hierarchy,
                    &self.registry,
                    l,
                    &self.fill_specs(&start_vars),
                ),
                post_accel: build.refine(
                    &self.hierarchy,
                    &self.registry,
                    l,
                    &self.fill_specs(&b_vars),
                ),
                post_sweep1: [0, 1].map(|d| {
                    build.refine(&self.hierarchy, &self.registry, l, &self.fill_specs(&c_vars(d)))
                }),
                mid_sweeps: build.refine(
                    &self.hierarchy,
                    &self.registry,
                    l,
                    &self.fill_specs(&d_vars),
                ),
                post_sweep2: [0, 1].map(|d| {
                    build.refine(&self.hierarchy, &self.registry, l, &self.fill_specs(&e_vars(d)))
                }),
            })
            .collect();

        let (vol_op, mass_op, inj_op): (
            Arc<dyn rbamr_amr::CoarsenOperator>,
            Arc<dyn rbamr_amr::CoarsenOperator>,
            Arc<dyn rbamr_amr::CoarsenOperator>,
        ) = match self.placement {
            Placement::Host => (
                Arc::new(host_ops::VolumeWeightedCoarsen),
                Arc::new(host_ops::MassWeightedCoarsen),
                Arc::new(host_ops::NodeInjectionCoarsen),
            ),
            Placement::Device | Placement::DeviceCopyBack => (
                Arc::new(dev_ops::DeviceVolumeWeightedCoarsen),
                Arc::new(dev_ops::DeviceMassWeightedCoarsen),
                Arc::new(dev_ops::DeviceNodeInjectionCoarsen),
            ),
        };
        self.sync_schedules = (1..self.hierarchy.num_levels())
            .map(|l| {
                build.coarsen(
                    &self.hierarchy,
                    &self.registry,
                    l,
                    &[
                        CoarsenSpec {
                            var: f.energy0,
                            op: Arc::clone(&mass_op),
                            aux: vec![f.density0],
                        },
                        CoarsenSpec { var: f.density0, op: Arc::clone(&vol_op), aux: vec![] },
                        CoarsenSpec { var: f.xvel0, op: Arc::clone(&inj_op), aux: vec![] },
                        CoarsenSpec { var: f.yvel0, op: Arc::clone(&inj_op), aux: vec![] },
                    ],
                )
            })
            .collect();
        self.schedule_cache = cache;
    }

    /// The structure-keyed schedule cache (hit/miss diagnostics).
    pub fn schedule_cache(&self) -> &ScheduleCache {
        &self.schedule_cache
    }

    /// The per-level batched-launch plan cache (hit/build diagnostics).
    /// Empty unless the simulation runs with `config.batched`.
    pub fn batch_plans(&self) -> &BatchPlanCache {
        &self.batch_plans
    }

    /// Whether this step executes through the batched per-level path.
    fn is_batched(&self) -> bool {
        self.config.batched && self.device.is_some()
    }

    /// Refresh every level's [`rbamr_gpu_amr::BatchPlan`]: a cache hit
    /// is a structure-key comparison; a miss rebuilds the descriptor
    /// table and uploads it to the device (the only extra PCIe traffic
    /// batching introduces).
    fn refresh_batch_plans(&mut self) {
        let device = self.device.clone().expect("batch plans need a device");
        for l in 0..self.hierarchy.num_levels() {
            let boxes: Vec<GBox> =
                self.hierarchy.level(l).local().iter().map(|p| p.cell_box()).collect();
            let plan = self.batch_plans.get_or_build(&device, l, &boxes);
            debug_assert_eq!(plan.slots().len(), boxes.len());
        }
    }

    /// Run one comm/compute-overlapped fill window over every level:
    ///
    /// 1. `begin_fill` on every level — interior copies, message
    ///    packing/sends and local coarse-source capture all read their
    ///    inputs *now*, so the exchanged bytes equal the oracle's.
    /// 2. The interior batches (`Pass::Interior`) run on per-level
    ///    streams while the messages are in flight; each stream records
    ///    an event at the end of its batch, and the elapsed kernel time
    ///    is banked as comm overlap credit (the receives in step 3
    ///    charge only the exposed remainder).
    /// 3. Per level, in order: `finish` consumes the level's messages,
    ///    then the boundary batch (`Pass::Boundary`) is gated behind
    ///    two explicit ordering edges — the exchange completion and the
    ///    level's own interior batch — surfaced as `stream-wait`
    ///    telemetry (`halo-exchange` / `interior-batch`).
    ///
    /// Interior regions are margin-proven not to observe any cell the
    /// fill writes, so the window is bitwise-identical to fill-then-
    /// compute (see [`crate::batched`] for the margin calculus).
    fn batched_window(
        &mut self,
        comm: Option<&Comm>,
        first: &mut Option<SimError>,
        which: impl Fn(&LevelSchedules) -> &Arc<RefineSchedule>,
        mut compute: impl FnMut(&mut Self, usize, Pass, &Stream),
    ) {
        let device = self.device.clone().expect("batched window needs a device");
        let nlevels = self.hierarchy.num_levels();
        let scheds: Vec<Arc<RefineSchedule>> =
            self.fill_schedules.iter().map(|s| Arc::clone(which(s))).collect();
        let mut pendings = Vec::with_capacity(nlevels);
        for sched in &scheds {
            pendings.push(sched.begin_fill(
                &mut self.hierarchy,
                &self.registry,
                comm,
                Category::HaloExchange,
            ));
        }
        let t0 = self.clock.total();
        let streams: Vec<Stream> = (0..nlevels).map(|_| Stream::new(&device)).collect();
        let mut interior_done = Vec::with_capacity(nlevels);
        for (l, stream) in streams.iter().enumerate() {
            compute(self, l, Pass::Interior, stream);
            interior_done.push(device.record_event(stream));
        }
        if let Some(comm) = comm {
            comm.bank_overlap_credit(self.clock.total() - t0);
        }
        let exchange_stream = Stream::new(&device);
        for (l, pending) in pendings.into_iter().enumerate() {
            if let Err(e) = pending.finish(
                &mut self.hierarchy,
                &self.boundary,
                comm,
                self.time,
                Category::HaloExchange,
            ) {
                first.get_or_insert(e.into());
            }
            exchange_stream.submit();
            let exchanged = device.record_event(&exchange_stream);
            device.stream_wait(&streams[l], &exchanged, "halo-exchange", Category::HaloExchange);
            device.stream_wait(
                &streams[l],
                &interior_done[l],
                "interior-batch",
                Category::HydroKernel,
            );
            let boundary_start = self.clock.total();
            compute(self, l, Pass::Boundary, &streams[l]);
            // Level l's boundary compute runs while the exchanges of
            // levels > l are still in flight: bank it as overlap
            // credit for their receives.
            if let Some(comm) = comm {
                if l + 1 < nlevels {
                    comm.bank_overlap_credit(self.clock.total() - boundary_start);
                }
            }
        }
        if let Some(comm) = comm {
            comm.clear_overlap_credit();
        }
    }

    /// Plan digests of every level's start-of-step fill schedule, in
    /// level order. Used by tests to check that cached schedules are
    /// plan-identical to fresh builds (e.g. across a restart).
    pub fn start_fill_digests(&self) -> Vec<Vec<String>> {
        self.fill_schedules.iter().map(|s| s.start.plan_digest()).collect()
    }

    /// Switch how level metadata is held ([`MetadataMode`]). Must be
    /// called before [`HydroSim::initialize`]: initialisation performs
    /// the replicated → partitioned conversion exchange.
    pub fn set_metadata_mode(&mut self, mode: MetadataMode) {
        self.config.metadata_mode = mode;
    }

    /// Order-independent digest over every local patch's packed field
    /// bytes (bound to level, patch index and variable), rank-local.
    /// Two runs whose digests agree on every rank hold bitwise
    /// identical resident state — the cross-crate tests use this to
    /// show `metadata_mode` does not perturb the solution.
    pub fn local_state_digest(&self) -> u64 {
        let vars: Vec<VariableId> = (0..self.registry.len()).map(VariableId).collect();
        self.digest_of_vars(&vars)
    }

    /// As [`HydroSim::local_state_digest`], restricted to the four
    /// persisted state fields (density, energy, velocities). Recovery
    /// gates compare this one: a rollback restores the persisted state
    /// and *recomputes* derived and work arrays, so only the persisted
    /// fields are meaningful to compare bitwise against a fault-free
    /// run.
    pub fn state_field_digest(&self) -> u64 {
        let f = self.fields;
        self.digest_of_vars(&[f.density0, f.energy0, f.xvel0, f.yvel0])
    }

    fn digest_of_vars(&self, vars: &[VariableId]) -> u64 {
        use rbamr_geometry::{BoxOverlap, Fnv64, UnorderedDigest};
        let mut set = UnorderedDigest::new();
        for l in 0..self.hierarchy.num_levels() {
            for patch in self.hierarchy.level(l).local() {
                for &var in vars {
                    let v = var.0;
                    let data = patch.data(var);
                    let ov = BoxOverlap {
                        dst_boxes: BoxList::from_box(data.data_box()),
                        shift: IntVector::ZERO,
                        centring: data.centring(),
                    };
                    let bytes = data.pack(&ov);
                    let mut f = Fnv64::new();
                    f.write_usize(l);
                    f.write_usize(patch.id().index);
                    f.write_usize(v);
                    for chunk in bytes.chunks(8) {
                        let mut w = [0u8; 8];
                        w[..chunk.len()].copy_from_slice(chunk);
                        f.write_u64(u64::from_le_bytes(w));
                    }
                    set.add(f.finish());
                }
            }
        }
        set.finish()
    }

    /// Initialise the hierarchy: set the initial state on level 0, then
    /// repeatedly flag/cluster/rebuild until all levels exist (the
    /// paper: "when the simulation is initialised, the error estimation
    /// and hierarchy generation procedure must be used to generate the
    /// hierarchy"), re-imposing the analytic initial condition on every
    /// new level.
    pub fn initialize(&mut self, comm: Option<&Comm>) {
        self.try_initialize(comm)
            .unwrap_or_else(|e| panic!("initialize: unhandled injected fault: {e}"));
    }

    /// Fault-aware [`HydroSim::initialize`]: injected faults surface as
    /// a typed [`SimError`] instead of a panic. Like
    /// [`HydroSim::try_step_capped`], the pass runs through — a fault
    /// never removes communication, so ranks stay lock-step — and ends
    /// in a commit collective, so every rank returns the same verdict.
    ///
    /// # Errors
    /// The globally agreed [`SimError`] when any rank observed a fault.
    pub fn try_initialize(&mut self, comm: Option<&Comm>) -> Result<(), SimError> {
        let rec = self.recorder.clone();
        let _span = rec.is_enabled().then(|| rec.span("initialize", Category::Other));
        let mut first: Option<SimError> = None;
        if self.config.metadata_mode == MetadataMode::Partitioned {
            // Convert the level-0 metadata to partitioned views before
            // the first regrid; the regrids below keep every level
            // partitioned from then on. The exchange verdict is
            // collective, so this early return is symmetric.
            try_partition_hierarchy_metadata(&mut self.hierarchy, self.config.regrid.margins, comm)
                .map_err(|e| SimError::Comm { detail: e.to_string() })?;
        }
        self.apply_initial_state();
        for _ in 0..self.hierarchy.max_levels() - 1 {
            let before = self.hierarchy.num_levels();
            // Ghost values must be valid before flagging: gradients at
            // patch borders would otherwise see uninitialised zeros.
            if let Err(e) = self.try_fill_start(comm) {
                first.get_or_insert(e);
            }
            if let Err(e) = self.try_regrid(comm) {
                first.get_or_insert(e);
            }
            self.apply_initial_state();
            if self.hierarchy.num_levels() == before {
                break;
            }
        }
        // Prime the EOS fields so diagnostics and the first dt are valid.
        if let Err(e) = self.try_fill_start(comm) {
            first.get_or_insert(e);
        }
        self.eos_and_viscosity();
        self.poll_device(&mut first);
        self.commit(comm, first)
    }

    fn apply_initial_state(&mut self) {
        let geometry = self.hierarchy.geometry();
        for l in 0..self.hierarchy.num_levels() {
            let dx = self.hierarchy.dx(l);
            let level = self.hierarchy.level_mut(l);
            for patch in level.local_mut() {
                self.integrator.init_regions(
                    patch,
                    &self.fields,
                    geometry.origin,
                    dx,
                    &self.regions,
                    self.config.gamma,
                );
            }
        }
    }

    /// Run one ghost-fill pass over every level, run-through: a level
    /// whose schedule faults still leaves the remaining levels' fills
    /// (and their sends to peers) executed, so the cross-rank
    /// communication pattern is identical whether or not a fault fired.
    fn try_fill(
        &mut self,
        which: impl Fn(&LevelSchedules) -> &RefineSchedule,
        comm: Option<&Comm>,
    ) -> Result<(), SimError> {
        let mut first: Option<SimError> = None;
        for l in 0..self.hierarchy.num_levels() {
            let sched = which(&self.fill_schedules[l]);
            if let Err(e) = sched.try_fill(
                &mut self.hierarchy,
                &self.registry,
                &self.boundary,
                comm,
                self.time,
                Category::HaloExchange,
            ) {
                first.get_or_insert(e.into());
            }
        }
        match first {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn try_fill_start(&mut self, comm: Option<&Comm>) -> Result<(), SimError> {
        self.try_fill(|s| &s.start, comm)
    }

    fn each_patch(
        &mut self,
        mut op: impl FnMut(&dyn PatchIntegrator, &mut rbamr_amr::Patch, &Fields, (f64, f64)),
    ) {
        for l in 0..self.hierarchy.num_levels() {
            let dx = self.hierarchy.dx(l);
            let level = self.hierarchy.level_mut(l);
            for patch in level.local_mut() {
                op(self.integrator.as_ref(), patch, &self.fields, dx);
            }
        }
    }

    fn eos_and_viscosity(&mut self) {
        let gamma = self.config.gamma;
        self.each_patch(|ig, p, f, dx| {
            ig.ideal_gas(p, f, gamma, false);
            ig.viscosity(p, f, dx);
        });
    }

    /// Compute the global dt: local CFL minimum, growth-limited, then
    /// the MPI allreduce (the application's only global reduction).
    ///
    /// Run-through: a faulted reduction records the error and falls
    /// back to the local value — the step continues (and is later
    /// rejected by the commit collective) rather than aborting
    /// mid-pattern. A non-finite dt without a recorded fault is still a
    /// hard bug and panics.
    fn try_compute_dt(&mut self, comm: Option<&Comm>, first: &mut Option<SimError>) -> f64 {
        let cfl = self.config.cfl;
        let mut dt_local = f64::INFINITY;
        if self.is_batched() {
            // One launch and one 8n-byte download per level; the
            // returned per-patch minima fold in the oracle's order.
            let f = self.fields;
            let copy_back = self.placement == Placement::DeviceCopyBack;
            for l in 0..self.hierarchy.num_levels() {
                let dx = self.hierarchy.dx(l);
                let level = self.hierarchy.level_mut(l);
                for dt in batched::calc_dt(level.local_mut(), &f, copy_back, dx, cfl) {
                    dt_local = dt_local.min(dt);
                }
            }
        } else {
            for l in 0..self.hierarchy.num_levels() {
                let dx = self.hierarchy.dx(l);
                let level = self.hierarchy.level_mut(l);
                for patch in level.local_mut() {
                    dt_local = dt_local.min(self.integrator.calc_dt(patch, &self.fields, dx, cfl));
                }
            }
        }
        let mut dt = dt_local.min(self.config.dt_max).min(self.prev_dt * self.config.max_dt_growth);
        if let Some(comm) = comm {
            match comm.try_allreduce_min(dt, Category::Timestep) {
                Ok(v) => dt = v,
                Err(e) => {
                    first.get_or_insert(e.into());
                }
            }
        }
        if !(dt.is_finite() && dt > 0.0) {
            assert!(first.is_some(), "non-finite dt {dt} without an injected fault");
            // Keep the doomed step numerically alive; the commit
            // collective will reject it and the driver rolls back.
            dt = self.config.dt_max;
        }
        dt
    }

    /// Advance the whole hierarchy by one synchronised timestep.
    pub fn step(&mut self, comm: Option<&Comm>) -> StepStats {
        self.step_capped(comm, None)
    }

    /// As [`HydroSim::step`], with an optional upper bound on dt (used
    /// by [`HydroSim::run_to_time`] to land exactly on the end time,
    /// as the paper's experiments "always run to the same physical end
    /// time").
    ///
    /// # Panics
    /// Panics on an injected fault; fault-tolerant callers use
    /// [`HydroSim::try_step_capped`] instead.
    pub fn step_capped(&mut self, comm: Option<&Comm>, dt_cap: Option<f64>) -> StepStats {
        self.try_step_capped(comm, dt_cap)
            .unwrap_or_else(|e| panic!("step: unhandled injected fault: {e}"))
    }

    /// Fault-aware [`HydroSim::step_capped`] — the tentpole of the
    /// recovery design. The step *runs through*: a fault never removes
    /// communication (dropped/corrupt frames are consumed, faulted
    /// collectives complete their rendezvous), so every rank executes
    /// the step's full communication pattern in lock-step whether or
    /// not it observed a fault. The first local error is recorded and
    /// carried to the end, where a commit collective (an all-reduce of
    /// the ok flag plus the worst failure kind) turns rank-local
    /// observations into one global verdict: `Ok` on every rank, or the
    /// same [`SimError`] variant on every rank. On `Err` the
    /// simulation state is *spoiled* — the caller must roll back to a
    /// checkpoint (see `resilience`).
    ///
    /// # Errors
    /// The globally agreed [`SimError`] when any rank observed a fault.
    pub fn try_step_capped(
        &mut self,
        comm: Option<&Comm>,
        dt_cap: Option<f64>,
    ) -> Result<StepStats, SimError> {
        let gamma = self.config.gamma;
        let rec = self.recorder.clone();
        let _step_span =
            rec.is_enabled().then(|| rec.span_arg("step", Category::Other, self.step as i64));
        let mut first: Option<SimError> = None;
        let batched = self.is_batched();
        let f = self.fields;
        let copy_back = self.placement == Placement::DeviceCopyBack;

        // --- Timestep phase ------------------------------------------
        {
            let _s = rec.is_enabled().then(|| rec.span("fill-start", Category::HaloExchange));
            if batched {
                self.refresh_batch_plans();
                self.batched_window(
                    comm,
                    &mut first,
                    |s| &s.start,
                    |sim, l, pass, stream| {
                        let dx = sim.hierarchy.dx(l);
                        let patches = sim.hierarchy.level_mut(l).local_mut();
                        batched::eos_viscosity(patches, &f, stream, copy_back, pass, gamma, dx);
                    },
                );
            } else if let Err(e) = self.try_fill_start(comm) {
                first.get_or_insert(e);
            }
        }
        if !batched {
            let _s = rec.is_enabled().then(|| rec.span("eos-viscosity", Category::HydroKernel));
            self.eos_and_viscosity();
        }
        let mut dt = {
            let _s = rec.is_enabled().then(|| rec.span("dt-reduction", Category::Timestep));
            self.try_compute_dt(comm, &mut first)
        };
        if let Some(cap) = dt_cap {
            assert!(cap > 0.0, "step_capped: non-positive dt cap");
            dt = dt.min(cap);
        }

        // --- Lagrangian phase ----------------------------------------
        {
            let _s = rec.is_enabled().then(|| rec.span("lagrangian", Category::HydroKernel));
            if batched {
                let device = self.device.clone().expect("batched path has a device");
                let stream = Stream::new(&device);
                for l in 0..self.hierarchy.num_levels() {
                    let dx = self.hierarchy.dx(l);
                    let patches = self.hierarchy.level_mut(l).local_mut();
                    batched::lagrangian_pre(patches, &f, &stream, copy_back, gamma, dx, dt);
                }
                self.batched_window(
                    comm,
                    &mut first,
                    |s| &s.post_accel,
                    |sim, l, pass, stream| {
                        let dx = sim.hierarchy.dx(l);
                        let patches = sim.hierarchy.level_mut(l).local_mut();
                        batched::flux_calc(patches, &f, stream, copy_back, pass, dx, dt);
                    },
                );
            } else {
                self.each_patch(|ig, p, f, dx| ig.pdv(p, f, dx, dt, true));
                self.each_patch(|ig, p, f, _dx| ig.ideal_gas(p, f, gamma, true));
                self.each_patch(|ig, p, f, _dx| ig.revert(p, f));
                self.each_patch(|ig, p, f, dx| ig.accelerate(p, f, dx, dt));
                self.each_patch(|ig, p, f, dx| ig.pdv(p, f, dx, dt, false));
                if let Err(e) = self.try_fill(|s| &s.post_accel, comm) {
                    first.get_or_insert(e);
                }
                self.each_patch(|ig, p, f, dx| ig.flux_calc(p, f, dx, dt));
            }
        }
        self.poll_device(&mut first);

        // --- Advection phase (alternating sweep order) ---------------
        {
            let _s = rec.is_enabled().then(|| rec.span("advection", Category::HydroKernel));
            let dirs = if self.step.is_multiple_of(2) { [0usize, 1] } else { [1, 0] };
            if batched {
                let device = self.device.clone().expect("batched path has a device");
                let nlevels = self.hierarchy.num_levels();
                let stream = Stream::new(&device);
                let mut cell_stash: Vec<batched::CellStash> = Vec::new();
                for l in 0..nlevels {
                    let dx = self.hierarchy.dx(l);
                    let patches = self.hierarchy.level_mut(l).local_mut();
                    batched::advec_cell(
                        patches,
                        &f,
                        &stream,
                        copy_back,
                        Pass::Full,
                        dx,
                        dirs[0],
                        1,
                        &mut cell_stash,
                    );
                }
                let mut mom_stashes: Vec<Vec<batched::MomStash>> =
                    (0..nlevels).map(|_| Vec::new()).collect();
                self.batched_window(
                    comm,
                    &mut first,
                    |s| &s.post_sweep1[dirs[0]],
                    |sim, l, pass, stream| {
                        let patches = sim.hierarchy.level_mut(l).local_mut();
                        batched::advec_mom(
                            patches,
                            &f,
                            stream,
                            copy_back,
                            pass,
                            dirs[0],
                            &mut mom_stashes[l],
                        );
                    },
                );
                let mut cell_stashes: Vec<Vec<batched::CellStash>> =
                    (0..nlevels).map(|_| Vec::new()).collect();
                self.batched_window(
                    comm,
                    &mut first,
                    |s| &s.mid_sweeps,
                    |sim, l, pass, stream| {
                        let dx = sim.hierarchy.dx(l);
                        let patches = sim.hierarchy.level_mut(l).local_mut();
                        batched::advec_cell(
                            patches,
                            &f,
                            stream,
                            copy_back,
                            pass,
                            dx,
                            dirs[1],
                            2,
                            &mut cell_stashes[l],
                        );
                    },
                );
                let mut mom_stashes: Vec<Vec<batched::MomStash>> =
                    (0..nlevels).map(|_| Vec::new()).collect();
                self.batched_window(
                    comm,
                    &mut first,
                    |s| &s.post_sweep2[dirs[1]],
                    |sim, l, pass, stream| {
                        let patches = sim.hierarchy.level_mut(l).local_mut();
                        batched::advec_mom(
                            patches,
                            &f,
                            stream,
                            copy_back,
                            pass,
                            dirs[1],
                            &mut mom_stashes[l],
                        );
                    },
                );
                for l in 0..nlevels {
                    let patches = self.hierarchy.level_mut(l).local_mut();
                    batched::reset(patches, &f, &stream, copy_back);
                }
            } else {
                self.each_patch(|ig, p, f, dx| ig.advec_cell(p, f, dx, dirs[0], 1));
                if let Err(e) = self.try_fill(|s| &s.post_sweep1[dirs[0]], comm) {
                    first.get_or_insert(e);
                }
                self.each_patch(|ig, p, f, dx| ig.advec_mom(p, f, dx, dirs[0], 1));
                if let Err(e) = self.try_fill(|s| &s.mid_sweeps, comm) {
                    first.get_or_insert(e);
                }
                self.each_patch(|ig, p, f, dx| ig.advec_cell(p, f, dx, dirs[1], 2));
                if let Err(e) = self.try_fill(|s| &s.post_sweep2[dirs[1]], comm) {
                    first.get_or_insert(e);
                }
                self.each_patch(|ig, p, f, dx| ig.advec_mom(p, f, dx, dirs[1], 2));
                self.each_patch(|ig, p, f, _dx| ig.reset(p, f));
            }
        }
        self.poll_device(&mut first);

        // --- Synchronisation: project fine onto coarse ----------------
        {
            let _s = rec.is_enabled().then(|| rec.span("synchronize", Category::Synchronize));
            for l in (1..self.hierarchy.num_levels()).rev() {
                if let Err(e) = self.sync_schedules[l - 1].try_run(
                    &mut self.hierarchy,
                    &self.registry,
                    comm,
                    Category::Synchronize,
                ) {
                    first.get_or_insert(e.into());
                }
            }
        }

        self.time += dt;
        self.step += 1;
        self.prev_dt = dt;

        // --- Regrid --------------------------------------------------
        if self.config.regrid_interval > 0 && self.step.is_multiple_of(self.config.regrid_interval)
        {
            let _s = rec.is_enabled().then(|| rec.span("regrid-phase", Category::Regrid));
            if let Err(e) = self.try_regrid(comm) {
                first.get_or_insert(e);
            }
        }
        self.poll_device(&mut first);

        // --- Commit: one global verdict per step ---------------------
        self.commit(comm, first)?;

        if rec.is_enabled() {
            rec.count("hydro.steps", 1);
            let local_cells: i64 = (0..self.hierarchy.num_levels())
                .map(|l| {
                    self.hierarchy
                        .level(l)
                        .local()
                        .iter()
                        .map(|p| p.cell_box().num_cells())
                        .sum::<i64>()
                })
                .sum();
            rec.count("hydro.cells_advanced", local_cells as u64);
        }

        Ok(StepStats {
            step: self.step - 1,
            dt,
            time: self.time,
            levels: self.hierarchy.num_levels(),
            total_cells: self.hierarchy.total_cells(),
        })
    }

    /// Drain the device's sticky fault latch (the simulated analogue of
    /// polling a CUDA error at a phase boundary) into the step's first
    /// recorded error.
    fn poll_device(&self, first: &mut Option<SimError>) {
        if let Some(device) = &self.device {
            if let Some(e) = device.take_injected_fault() {
                first.get_or_insert(e.into());
            }
        }
    }

    /// The per-step commit collective: agree globally on whether the
    /// pass ran clean and, if not, on the *worst* failure kind across
    /// ranks, so every rank returns the same [`SimError`] variant and a
    /// recovery driver makes identical rollback/degradation decisions
    /// everywhere. A fault in the commit collective itself is symmetric
    /// (the rendezvous carries the poison flag to every rank) and is
    /// reported as a `Comm` verdict.
    pub(crate) fn commit(
        &self,
        comm: Option<&Comm>,
        first: Option<SimError>,
    ) -> Result<(), SimError> {
        let Some(comm) = comm else {
            return match first {
                Some(e) => Err(e),
                None => Ok(()),
            };
        };
        let ok = if first.is_none() { 1.0 } else { 0.0 };
        let reason = match &first {
            None => 0.0,
            Some(SimError::Comm { .. }) => 1.0,
            Some(SimError::Device { .. }) => 2.0,
        };
        let agreed = comm.try_allreduce_min(ok, Category::Other).and_then(|all_ok| {
            comm.try_allreduce_max(reason, Category::Other).map(|worst| (all_ok, worst))
        });
        // Reuse the local error's inner detail rather than re-rendering
        // the whole error, so repeated commits don't nest prefixes.
        let inner = |e: SimError| match e {
            SimError::Comm { detail } | SimError::Device { detail } => detail,
        };
        match agreed {
            Ok((all_ok, _)) if all_ok >= 1.0 => Ok(()),
            Ok((_, worst)) => {
                let detail =
                    first.map(inner).unwrap_or_else(|| "a peer rank reported a fault".into());
                Err(if worst >= 2.0 {
                    SimError::Device { detail }
                } else {
                    SimError::Comm { detail }
                })
            }
            Err(e) => Err(SimError::Comm { detail: first.map_or_else(|| e.to_string(), inner) }),
        }
    }

    /// Run `n` steps; returns the last step's stats.
    pub fn run_steps(&mut self, n: usize, comm: Option<&Comm>) -> StepStats {
        assert!(n > 0, "run_steps: need at least one step");
        let mut last = self.step(comm);
        for _ in 1..n {
            last = self.step(comm);
        }
        last
    }

    /// Run until exactly `t_end`: the final step's dt is clipped so the
    /// simulation lands on the end time (the paper's protocol: "always
    /// run to the same physical end time regardless of the number of
    /// timesteps required").
    pub fn run_to_time(&mut self, t_end: f64, comm: Option<&Comm>) -> usize {
        let mut steps = 0;
        while self.time < t_end - 1e-14 {
            self.step_capped(comm, Some(t_end - self.time));
            steps += 1;
            assert!(steps < 1_000_000, "run_to_time: runaway step count");
        }
        steps
    }

    /// Spill every field of every local patch on `level` to host
    /// memory, releasing device allocations — the paper's Section VI
    /// future-work mechanism, usable between steps to run problems
    /// larger than device memory. No-op on the host placement.
    pub fn spill_level(&mut self, level: usize) {
        self.set_level_spilled(level, true);
    }

    /// Bring a spilled level back into device memory.
    pub fn unspill_level(&mut self, level: usize) {
        self.set_level_spilled(level, false);
    }

    fn set_level_spilled(&mut self, level: usize, spill: bool) {
        if self.placement == Placement::Host {
            return;
        }
        let nvars = self.registry.len();
        let lvl = self.hierarchy.level_mut(level);
        for patch in lvl.local_mut() {
            for v in 0..nvars {
                let data = patch
                    .data_mut(VariableId(v))
                    .as_any_mut()
                    .downcast_mut::<rbamr_gpu_amr::DeviceData<f64>>()
                    .expect("device placement holds DeviceData");
                if spill {
                    data.spill(Category::Other);
                } else {
                    data.unspill(Category::Other);
                }
            }
        }
    }

    /// Regrid the hierarchy and refresh all schedules. Returns the
    /// per-level outcome; with schedule caching on (the default),
    /// unchanged levels' schedules resolve as cache hits rather than
    /// being rebuilt.
    pub fn regrid(&mut self, comm: Option<&Comm>) -> RegridOutcome {
        self.try_regrid(comm).unwrap_or_else(|e| panic!("regrid: unhandled injected fault: {e}"))
    }

    /// Fault-aware [`HydroSim::regrid`]: injected faults surface as a
    /// typed [`SimError`]. Schedules are rebuilt from whatever
    /// structure the regrid left — structure decisions are
    /// rank-invariant even under data-plane faults, and collective
    /// verdicts abort every rank at the same point, so the rebuilt
    /// schedules stay consistent across ranks either way.
    ///
    /// # Errors
    /// [`SimError`] when the regrid's transport, metadata verification
    /// or patch-data transfer faulted.
    pub fn try_regrid(&mut self, comm: Option<&Comm>) -> Result<RegridOutcome, SimError> {
        let mut params = self.config.regrid.clone();
        params.metadata_mode = self.config.metadata_mode;
        let regridder = Regridder::new(params);
        let f = self.fields;
        let specs: Vec<TransferSpec> = [f.density0, f.energy0, f.xvel0, f.yvel0]
            .into_iter()
            .map(|var| TransferSpec { var, refine_op: self.refine_op_for(var) })
            .collect();
        let tagger = HydroTagger {
            integrator: self.integrator.as_ref(),
            fields: &self.fields,
            thresholds: self.config.thresholds,
        };
        let outcome = regridder.try_regrid(
            &mut self.hierarchy,
            &self.registry,
            &tagger,
            &specs,
            comm,
            self.time,
        );
        self.rebuild_schedules();
        outcome.map_err(SimError::from)
    }

    /// Conservation diagnostics over the whole hierarchy, excluding
    /// coarse cells covered by a finer level (so each physical region
    /// is counted exactly once). In distributed runs the caller reduces
    /// the per-field sums across ranks.
    pub fn summary(&self, comm: Option<&Comm>) -> Summary {
        let mut total = Summary::default();
        for l in 0..self.hierarchy.num_levels() {
            let dx = self.hierarchy.dx(l);
            // Region covered by the next finer level, in this level's
            // index space.
            let shadow: BoxList = if l + 1 < self.hierarchy.num_levels() {
                self.hierarchy
                    .level(l + 1)
                    .covered()
                    .coarsen(self.hierarchy.ratio_to_coarser(l + 1))
            } else {
                BoxList::new()
            };
            let level = self.hierarchy.level(l);
            for patch in level.local() {
                let mut visible = BoxList::from_box(patch.cell_box());
                visible.subtract(&shadow);
                for region in visible.boxes() {
                    total = total.merged(&self.integrator.field_summary(
                        patch,
                        &self.fields,
                        dx,
                        *region,
                    ));
                }
            }
        }
        if let Some(comm) = comm {
            total = Summary {
                volume: comm.allreduce_sum(total.volume, Category::Other),
                mass: comm.allreduce_sum(total.mass, Category::Other),
                internal_energy: comm.allreduce_sum(total.internal_energy, Category::Other),
                kinetic_energy: comm.allreduce_sum(total.kinetic_energy, Category::Other),
                pressure: comm.allreduce_sum(total.pressure, Category::Other),
            };
        }
        total
    }

    /// Sample the density field along the horizontal midline of the
    /// domain at the finest available resolution (validation against
    /// analytic solutions). Returns `(x, density)` pairs, sorted by x.
    /// Single-rank only.
    pub fn density_profile(&self) -> Vec<(f64, f64)> {
        assert_eq!(self.hierarchy.nranks(), 1, "density_profile: single-rank diagnostic");
        let geometry = self.hierarchy.geometry();
        let mut out: Vec<(f64, f64)> = Vec::new();
        // Finest-level-first sampling with coarse fill-in.
        let mut covered: Vec<(f64, f64)> = Vec::new();
        for l in (0..self.hierarchy.num_levels()).rev() {
            let dx = self.hierarchy.dx(l);
            let domain = self.hierarchy.level_domain(l).bounding();
            let mid_y = (domain.lo.y + domain.hi.y) / 2;
            let level = self.hierarchy.level(l);
            for patch in level.local() {
                let cb = patch.cell_box();
                if mid_y < cb.lo.y || mid_y >= cb.hi.y {
                    continue;
                }
                let data = self.read_cell_row(patch, self.fields.density0, mid_y);
                for (i, v) in data {
                    let x = geometry.origin.0 + (i as f64 + 0.5) * dx.0;
                    if covered.iter().any(|&(a, b)| x >= a && x < b) {
                        continue;
                    }
                    out.push((x, v));
                }
                covered.push((
                    geometry.origin.0 + cb.lo.x as f64 * dx.0,
                    geometry.origin.0 + cb.hi.x as f64 * dx.0,
                ));
            }
        }
        out.sort_by(|a, b| a.0.total_cmp(&b.0));
        out
    }

    /// Read one interior row of a cell field (x index, value) — a
    /// diagnostic full-row transfer on the device path.
    fn read_cell_row(&self, patch: &rbamr_amr::Patch, var: VariableId, y: i64) -> Vec<(i64, f64)> {
        let cb = patch.cell_box();
        match self.placement {
            Placement::Host => {
                let d = patch.host::<f64>(var);
                (cb.lo.x..cb.hi.x).map(|x| (x, d.at(IntVector::new(x, y)))).collect()
            }
            Placement::Device | Placement::DeviceCopyBack => {
                let d = patch
                    .data(var)
                    .as_any()
                    .downcast_ref::<rbamr_gpu_amr::DeviceData<f64>>()
                    .expect("device data");
                let all = d.download_all(Category::Other);
                let dbox = d.data_box();
                (cb.lo.x..cb.hi.x).map(|x| (x, all[dbox.offset_of(IntVector::new(x, y))])).collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sod_regions() -> Vec<RegionInit> {
        vec![
            RegionInit {
                rect: (0.0, 0.0, 0.5, 1.0),
                density: 1.0,
                energy: 2.5,
                xvel: 0.0,
                yvel: 0.0,
            },
            RegionInit {
                rect: (0.5, 0.0, 1.0, 1.0),
                density: 0.125,
                energy: 2.0,
                xvel: 0.0,
                yvel: 0.0,
            },
        ]
    }

    fn sim(placement: Placement, cells: i64, levels: usize) -> HydroSim {
        let machine = match placement {
            Placement::Host => Machine::ipa_cpu_node(),
            _ => Machine::ipa_gpu(),
        };
        let mut config = HydroConfig { regrid_interval: 5, ..HydroConfig::default() };
        config.regrid.cluster.min_size = 4;
        let mut s = HydroSim::new(
            machine,
            placement,
            Clock::new(),
            (1.0, 1.0),
            (cells, cells),
            levels,
            2,
            config,
            sod_regions(),
            0,
            1,
        );
        s.initialize(None);
        s
    }

    #[test]
    fn initialization_builds_refined_levels_over_the_interface() {
        let s = sim(Placement::Host, 32, 2);
        assert_eq!(s.hierarchy().num_levels(), 2);
        // The fine level covers the density interface at x = 0.5
        // (level-1 index 32 of 64).
        let covered = s.hierarchy().level(1).covered();
        assert!(covered.contains(IntVector::new(32, 32)), "interface not refined: {covered:?}");
    }

    /// The steady-state acceptance property: once the hierarchy has
    /// converged, a structure-preserving regrid performs zero schedule
    /// rebuilds — `schedule.builds` stays flat and every lookup is a
    /// cache hit.
    #[test]
    fn steady_regrid_rebuilds_no_schedules() {
        let mut s = sim(Placement::Host, 32, 2);
        let rec = rbamr_telemetry::Recorder::new(0, Clock::new());
        s.set_recorder(rec.clone());
        // Converge the structure (the state is not advanced, so the
        // tagger flags the same cells every pass).
        for _ in 0..4 {
            if !s.regrid(None).any_changed() {
                break;
            }
        }
        let builds = rec.counter("schedule.builds");
        let misses = rec.counter("schedule.cache_misses");
        let hits = rec.counter("schedule.cache_hits");
        let outcome = s.regrid(None);
        assert!(!outcome.any_changed(), "fixed state must be a structural fixed point");
        assert_eq!(rec.counter("schedule.builds"), builds, "steady regrid must not rebuild");
        assert_eq!(rec.counter("schedule.cache_misses"), misses);
        assert!(rec.counter("schedule.cache_hits") > hits, "every lookup must hit the cache");
        assert!(rec.counter("regrid.levels_unchanged") > 0);
    }

    #[test]
    fn single_step_advances_time_and_conserves_mass() {
        let mut s = sim(Placement::Host, 32, 1);
        let before = s.summary(None);
        let stats = s.step(None);
        assert!(stats.dt > 0.0 && stats.time > 0.0);
        let after = s.summary(None);
        assert!(
            ((after.mass - before.mass) / before.mass).abs() < 1e-12,
            "mass drift: {} -> {}",
            before.mass,
            after.mass
        );
        // Total energy is conserved to discretisation accuracy (the
        // scheme exchanges internal <-> kinetic through PdV work).
        assert!(
            ((after.total_energy() - before.total_energy()) / before.total_energy()).abs() < 1e-2,
            "energy drift: {} -> {}",
            before.total_energy(),
            after.total_energy()
        );
    }

    #[test]
    fn shock_waves_move_and_refinement_follows() {
        let mut s = sim(Placement::Host, 32, 2);
        for _ in 0..20 {
            s.step(None);
        }
        assert!(s.time() > 0.0);
        // The fine level still exists and tracks features.
        assert_eq!(s.hierarchy().num_levels(), 2);
        // Density midline profile is monotone-ish from left state to
        // right state (no NaN garbage).
        let profile = s.density_profile();
        assert!(!profile.is_empty());
        for (_, d) in &profile {
            assert!(d.is_finite() && *d > 0.0 && *d < 2.0, "unphysical density {d}");
        }
    }

    /// As [`sim`], with the batched executor toggled and the patch
    /// size capped so levels hold many patches (the regime batching
    /// exists for: launches scale with levels, not patches).
    fn sim_batched(placement: Placement, cells: i64, levels: usize, batched: bool) -> HydroSim {
        let machine = match placement {
            Placement::Host => Machine::ipa_cpu_node(),
            _ => Machine::ipa_gpu(),
        };
        let mut config = HydroConfig {
            regrid_interval: 5,
            batched,
            max_patch_size: 8,
            ..HydroConfig::default()
        };
        config.regrid.cluster.min_size = 4;
        config.regrid.max_patch_size = 8;
        let mut s = HydroSim::new(
            machine,
            placement,
            Clock::new(),
            (1.0, 1.0),
            (cells, cells),
            levels,
            2,
            config,
            sod_regions(),
            0,
            1,
        );
        s.initialize(None);
        s
    }

    /// The tentpole equivalence property, single-rank edition: the
    /// batched + overlapped executor is bitwise identical to the
    /// per-patch oracle — all fields, every step, through regrids —
    /// while issuing strictly fewer kernel launches.
    #[test]
    fn batched_build_is_bitwise_identical_to_per_patch_oracle() {
        let mut oracle = sim_batched(Placement::Device, 32, 2, false);
        let mut batched = sim_batched(Placement::Device, 32, 2, true);
        assert_eq!(oracle.local_state_digest(), batched.local_state_digest(), "after init");
        let dev_o = oracle.device().unwrap().clone();
        let dev_b = batched.device().unwrap().clone();
        for step in 0..8 {
            dev_o.reset_transfer_stats();
            dev_b.reset_transfer_stats();
            let so = oracle.step(None);
            let sb = batched.step(None);
            assert_eq!(so.dt.to_bits(), sb.dt.to_bits(), "dt diverged at step {step}");
            assert_eq!(
                oracle.local_state_digest(),
                batched.local_state_digest(),
                "state diverged at step {step}"
            );
            let (o, b) = (dev_o.stats(), dev_b.stats());
            assert!(
                b.kernel_launches < o.kernel_launches,
                "step {step}: batched issued {} launches, oracle {}",
                b.kernel_launches,
                o.kernel_launches
            );
        }
        assert!(batched.batch_plans().builds() > 0);
        assert!(batched.batch_plans().hits() > 0, "steady structure must hit the plan cache");
    }

    /// Copy-back placement under batching: same physics, same per-step
    /// PCIe byte totals as the per-patch copy-back oracle (round trips
    /// are batched per level but move identical bytes).
    #[test]
    fn batched_copy_back_matches_oracle_bytes_and_physics() {
        let mut oracle = sim_batched(Placement::DeviceCopyBack, 16, 1, false);
        let mut batched = sim_batched(Placement::DeviceCopyBack, 16, 1, true);
        let dev_o = oracle.device().unwrap().clone();
        let dev_b = batched.device().unwrap().clone();
        dev_o.reset_transfer_stats();
        dev_b.reset_transfer_stats();
        for _ in 0..3 {
            oracle.step(None);
            batched.step(None);
        }
        assert_eq!(oracle.local_state_digest(), batched.local_state_digest());
        let (o, b) = (dev_o.stats(), dev_b.stats());
        assert_eq!(o.d2h_bytes, b.d2h_bytes, "copy-back D2H bytes must match the oracle");
        // H2D matches the oracle exactly except for the one-time batch
        // descriptor uploads (the cost of batching itself).
        let descriptors = batched.batch_plans().uploaded_bytes();
        assert!(descriptors > 0);
        assert_eq!(
            o.h2d_bytes + descriptors,
            b.h2d_bytes,
            "copy-back H2D bytes must match the oracle modulo descriptor uploads"
        );
    }

    #[test]
    fn device_and_host_builds_agree() {
        let mut host = sim(Placement::Host, 16, 1);
        let mut dev = sim(Placement::Device, 16, 1);
        for _ in 0..5 {
            host.step(None);
            dev.step(None);
        }
        let hp = host.density_profile();
        let dp = dev.density_profile();
        assert_eq!(hp.len(), dp.len());
        for ((hx, hd), (dx_, dd)) in hp.iter().zip(&dp) {
            assert_eq!(hx, dx_);
            assert!((hd - dd).abs() < 1e-12, "host/device divergence at x={hx}: {hd} vs {dd}");
        }
    }

    #[test]
    fn run_to_time_lands_exactly_on_the_end_time() {
        let mut s = sim(Placement::Host, 16, 1);
        let t_end = 0.05;
        let steps = s.run_to_time(t_end, None);
        assert!(steps > 1);
        assert!((s.time() - t_end).abs() < 1e-12, "overshot: {} vs {t_end}", s.time());
    }

    #[test]
    fn copy_back_baseline_matches_resident_physics_with_huge_traffic() {
        let mut resident = sim(Placement::Device, 16, 1);
        let mut copyback = sim(Placement::DeviceCopyBack, 16, 1);
        let dev_r = resident.device().unwrap().clone();
        let dev_c = copyback.device().unwrap().clone();
        dev_r.reset_transfer_stats();
        dev_c.reset_transfer_stats();
        for _ in 0..3 {
            resident.step(None);
            copyback.step(None);
        }
        // Identical physics.
        let a = resident.density_profile();
        let b = copyback.density_profile();
        for ((xa, da), (xb, db)) in a.iter().zip(&b) {
            assert_eq!(xa, xb);
            assert_eq!(da, db, "copy-back changed the physics at x={xa}");
        }
        // Orders of magnitude more PCIe traffic (the Wang et al. tax).
        let r = dev_r.stats();
        let c = dev_c.stats();
        assert!(
            c.d2h_bytes > 100 * r.d2h_bytes.max(1),
            "copy-back D2H {} not >> resident {}",
            c.d2h_bytes,
            r.d2h_bytes
        );
        // And more modelled time.
        assert!(copyback.clock().total() > 2.0 * resident.clock().total());
    }

    #[test]
    fn level_spilling_frees_device_memory_and_preserves_physics() {
        let mut s = sim(Placement::Device, 16, 1);
        let device = s.device().unwrap().clone();
        s.step(None);
        let before_bytes = device.stats().allocated_bytes;
        let reference_profile = {
            let mut twin = sim(Placement::Device, 16, 1);
            twin.step(None);
            twin.step(None);
            twin.density_profile()
        };
        s.spill_level(0);
        assert!(device.stats().allocated_bytes < before_bytes / 2, "spill freed nothing");
        s.unspill_level(0);
        assert_eq!(device.stats().allocated_bytes, before_bytes);
        s.step(None);
        let profile = s.density_profile();
        for ((xa, da), (xb, db)) in profile.iter().zip(&reference_profile) {
            assert_eq!(xa, xb);
            assert_eq!(da, db, "spill cycle changed the solution at x={xa}");
        }
    }

    #[test]
    fn device_build_is_resident() {
        let mut s = sim(Placement::Device, 16, 1);
        let device = s.device().unwrap().clone();
        device.reset_transfer_stats();
        s.step(None);
        let stats = device.stats();
        // Per-step D2H: the dt scalar only (single rank, one patch, no
        // halos to pack, no regrid this step).
        assert_eq!(stats.d2h_bytes, 8, "non-resident D2H traffic: {stats:?}");
        assert_eq!(stats.h2d_bytes, 0, "non-resident H2D traffic: {stats:?}");
        assert!(stats.kernel_launches > 20, "suspiciously few launches");
    }
}
