//! Batched per-level kernel launches with interior/boundary splitting.
//!
//! The per-patch oracle ([`crate::device_integrator`]) pays one launch
//! per kernel per patch — the Figure 9 overhead that makes small grids
//! launch-bound. This module issues **one launch per kernel per level**:
//! the launch body loops over the level's patches (the logical element
//! index of the level's [`BatchPlan`](rbamr_gpu_amr::BatchPlan) spans
//! them all) and calls the *same* kernel functions on the same regions,
//! so the arithmetic is bitwise identical to the oracle while the fixed
//! launch latency is paid once per level.
//!
//! For communication/computation overlap, each phase can run as two
//! passes: [`Pass::Interior`] computes only patch cores that a
//! stencil-margin analysis proves cannot observe ghost cells (so it is
//! safe to run while the halo exchange is in flight), and
//! [`Pass::Boundary`] finishes the frame after the exchange lands.
//! Margins grow along a window's kernel chain (`margin(k) = 6 + 4(k-1)`)
//! so that, with a maximum stencil radius of 4 (2-cell van Leer upwind
//! reach + centring conversions + slack):
//!
//! * an interior-pass kernel only reads cells earlier interior kernels
//!   have already written (`m_k - r >= m_{k-1}`),
//! * a boundary-pass kernel never reads cells a *later* kernel's
//!   interior pass overwrote (`m_k - 1 + r < m_{k+1}`), and
//! * no interior-pass read reaches a ghost cell the concurrent fill
//!   writes (`m_1 - r >= 2`).
//!
//! A patch too small for a margin degrades gracefully: its interior is
//! empty and the whole kernel runs in the boundary pass, i.e. in the
//! oracle's unoverlapped order.

use crate::device_integrator::split_dev;
use crate::kernels as k;
use crate::state::{ComputeRegion, Fields, GHOSTS};
use rbamr_amr::patchdata::PatchData;
use rbamr_amr::{Patch, VariableId};
use rbamr_device::{DeviceBuffer, Kernel, Stream};
use rbamr_geometry::{Centring, GBox, IntVector};
use rbamr_gpu_amr::{interior_core, split_region, DeviceData};
use rbamr_perfmodel::{Category, KernelShape};

/// Which part of a phase a batched call executes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Pass {
    /// The whole region in one launch (phases outside overlap windows).
    Full,
    /// Only patch cores deep enough that no read can observe a ghost
    /// cell — safe while the halo exchange is in flight.
    Interior,
    /// The boundary frames, after the exchange completed.
    Boundary,
}

/// First-kernel interior margin: stencil radius (4, with slack) plus 2
/// so no interior read can land on a ghost or exchange-written cell.
const MARGIN_BASE: i64 = 6;
/// Margin growth per kernel ordinal: the maximum stencil radius, so
/// each interior kernel reads only inside the previous one's core.
const MARGIN_STEP: i64 = 4;

/// Upper bound on batched launches per level per step — the in-process
/// fig9 gate constant. Counting every kernel of the step's phase chain
/// with both passes of the five overlap windows gives 82; 96 leaves
/// headroom without ever permitting per-patch scaling.
pub const MAX_BATCHED_LAUNCHES_PER_LEVEL_STEP: u64 = 96;

/// Every kernel name the batched executor launches under. The names
/// are shared with the per-patch oracle (so traces line up), but no
/// halo-fill, sync, or regrid kernel uses them — in a batched run,
/// summing the `device.kernel_launches.<name>` counters over this
/// roster counts batched launches exactly.
pub const BATCHED_KERNEL_NAMES: &[&str] = &[
    "accelerate",
    "advec-cell",
    "advec-ener-flux",
    "advec-ener-update",
    "advec-mass-flux",
    "advec-post-vol",
    "advec-pre-vol",
    "calc-dt",
    "copy-field",
    "flux-calc",
    "ideal-gas-pressure",
    "ideal-gas-soundspeed",
    "mom-flux",
    "mom-node-flux",
    "mom-node-mass-post",
    "mom-node-mass-pre",
    "mom-save-vel",
    "mom-vel-update",
    "pdv-density",
    "pdv-energy",
    "revert-save",
    "viscosity",
];

fn margin(ordinal: u32) -> i64 {
    MARGIN_BASE + MARGIN_STEP * (i64::from(ordinal) - 1)
}

/// The region boxes kernel `ordinal` computes on `pass` for one patch,
/// given its nominal (oracle) region. Union over passes covers the
/// nominal region exactly once.
fn pass_regions(
    pass: Pass,
    ordinal: u32,
    cell_box: GBox,
    centring: Centring,
    nominal: GBox,
) -> Vec<GBox> {
    if nominal.is_empty() {
        return Vec::new();
    }
    match pass {
        Pass::Full => vec![nominal],
        Pass::Interior | Pass::Boundary => {
            let core = interior_core(cell_box, margin(ordinal));
            if core.is_empty() {
                return if pass == Pass::Boundary { vec![nominal] } else { Vec::new() };
            }
            let (inner, frames) = split_region(nominal, centring.data_box(core));
            if pass == Pass::Interior {
                if inner.is_empty() {
                    Vec::new()
                } else {
                    vec![inner]
                }
            } else {
                frames.into_iter().filter(|b| !b.is_empty()).collect()
            }
        }
    }
}

fn regions_for(
    patches: &[Patch],
    pass: Pass,
    ordinal: u32,
    centring: Centring,
    nominal_of: impl Fn(&Patch) -> GBox,
) -> Vec<Vec<GBox>> {
    patches
        .iter()
        .map(|p| pass_regions(pass, ordinal, p.cell_box(), centring, nominal_of(p)))
        .collect()
}

fn dev(data: &dyn PatchData) -> &DeviceData<f64> {
    data.as_any().downcast_ref::<DeviceData<f64>>().expect("batched executor on non-device data")
}

/// One patch's device handles, split into output and input variables.
type SplitHandles<'a> = (Vec<&'a mut DeviceData<f64>>, Vec<&'a DeviceData<f64>>);

/// One batched launch: a single kernel invocation whose body loops the
/// level's patches and applies `body` to each patch's region boxes.
/// Skipped entirely (no launch, no latency) when every region is empty.
#[allow(clippy::too_many_arguments)]
fn batched_launch(
    patches: &mut [Patch],
    stream: &Stream,
    name: &'static str,
    category: Category,
    vars: &[VariableId],
    arrays: u32,
    flops: u32,
    regions: &[Vec<GBox>],
    body: impl Fn(&Kernel<'_>, usize, &mut [f64], GBox, &[k::View<'_>], GBox),
) {
    let total: i64 = regions.iter().flatten().map(|b| b.num_cells()).sum();
    if total == 0 {
        return;
    }
    let mut all: Vec<Vec<&mut dyn PatchData>> =
        patches.iter_mut().map(|p| p.data_many_mut(vars)).collect();
    let mut handles: Vec<SplitHandles<'_>> = all.iter_mut().map(|d| split_dev(d, 1)).collect();
    let device = handles[0].0[0].device().clone();
    stream.submit();
    let shape = KernelShape::streaming(total, arrays, flops);
    device.launch_named(stream, name, category, shape, |kk| {
        for (i, (outs, ins)) in handles.iter_mut().enumerate() {
            if regions[i].is_empty() {
                continue;
            }
            let views: Vec<k::View> =
                ins.iter().map(|d| k::View::new(d.buffer().as_slice(&kk), d.data_box())).collect();
            let obox = outs[0].data_box();
            let out = outs[0].buffer_mut();
            for r in &regions[i] {
                body(&kk, i, out.as_mut_slice(&kk), obox, &views, *r);
            }
        }
    });
}

/// Per-phase full-array PCIe round trips for the copy-back placement:
/// the same variable lists as [`crate::CopyBackPatchIntegrator`], one
/// round trip per patch per phase, batched per level.
fn roundtrip(patches: &mut [Patch], vars: &[VariableId]) {
    for p in patches.iter_mut() {
        for &var in vars {
            let d = p
                .data_mut(var)
                .as_any_mut()
                .downcast_mut::<DeviceData<f64>>()
                .expect("batched executor on non-device data");
            let host = d.download_all(Category::HydroKernel);
            d.upload_all(&host, Category::HydroKernel);
        }
    }
}

/// EOS + viscosity — the compute half of the `fill-start` overlap
/// window. Kernel ordinals 1–3.
pub(crate) fn eos_viscosity(
    patches: &mut [Patch],
    f: &Fields,
    stream: &Stream,
    copy_back: bool,
    pass: Pass,
    gamma: f64,
    dx: (f64, f64),
) {
    if copy_back && pass != Pass::Boundary {
        roundtrip(patches, &[f.pressure, f.soundspeed, f.density0, f.energy0]);
        roundtrip(patches, &[f.viscosity, f.density0, f.soundspeed, f.xvel0, f.yvel0]);
    }
    let ghost = |p: &Patch| ComputeRegion::GhostBox.cell_box(p.cell_box());
    let regs = regions_for(patches, pass, 1, Centring::Cell, ghost);
    batched_launch(
        patches,
        stream,
        "ideal-gas-pressure",
        Category::HydroKernel,
        &[f.pressure, f.density0, f.energy0],
        3,
        3,
        &regs,
        |_kk, _i, p, pbox, v, r| k::ideal_gas_pressure(p, pbox, v[0], v[1], r, gamma),
    );
    let regs = regions_for(patches, pass, 2, Centring::Cell, ghost);
    batched_launch(
        patches,
        stream,
        "ideal-gas-soundspeed",
        Category::HydroKernel,
        &[f.soundspeed, f.pressure, f.density0],
        3,
        5,
        &regs,
        |_kk, _i, ss, ssbox, v, r| k::ideal_gas_soundspeed(ss, ssbox, v[0], v[1], r, gamma),
    );
    let regs = regions_for(patches, pass, 3, Centring::Cell, |p| {
        ComputeRegion::Grown(1).cell_box(p.cell_box())
    });
    batched_launch(
        patches,
        stream,
        "viscosity",
        Category::HydroKernel,
        &[f.viscosity, f.density0, f.soundspeed, f.xvel0, f.yvel0],
        5,
        15,
        &regs,
        |_kk, _i, q, qbox, v, r| k::viscosity(q, qbox, v[0], v[1], v[2], v[3], r, dx),
    );
}

/// Batched CFL reduction: every patch's minimum lands in one `n`-patch
/// device buffer from a single launch, and one `8n`-byte transfer
/// crosses PCIe per level instead of 8 bytes per patch. Returns the
/// per-patch minima in patch order so the caller folds them exactly as
/// the oracle does.
pub(crate) fn calc_dt(
    patches: &mut [Patch],
    f: &Fields,
    copy_back: bool,
    dx: (f64, f64),
    cfl: f64,
) -> Vec<f64> {
    if copy_back {
        roundtrip(patches, &[f.density0, f.pressure, f.viscosity, f.soundspeed, f.xvel0, f.yvel0]);
    }
    if patches.is_empty() {
        return Vec::new();
    }
    let device = dev(patches[0].data(f.density0)).device().clone();
    let stream = Stream::new(&device);
    stream.submit();
    let n = patches.len();
    let mut result = device.alloc::<f64>(n);
    let total: i64 = patches.iter().map(|p| p.cell_box().num_cells()).sum();
    let shape = KernelShape::streaming(total, 6, 20);
    device.launch_named(&stream, "calc-dt", Category::Timestep, shape, |kk| {
        for (i, p) in patches.iter().enumerate() {
            let view = |var: VariableId| {
                let d = dev(p.data(var));
                k::View::new(d.buffer().as_slice(&kk), d.data_box())
            };
            let dt = k::calc_dt(
                view(f.density0),
                view(f.pressure),
                view(f.viscosity),
                view(f.soundspeed),
                view(f.xvel0),
                view(f.yvel0),
                p.cell_box(),
                dx,
                cfl,
            );
            result.as_mut_slice(&kk)[i] = dt;
        }
    });
    let mut host = vec![0.0f64; n];
    device.download(&result, 0, &mut host, Category::Timestep);
    host
}

/// The Lagrangian pre-fill chain — predictor PdV, predictor EOS,
/// revert, accelerate, corrector PdV. No fill runs concurrently with
/// these, so they batch as full-region launches (10 per level).
pub(crate) fn lagrangian_pre(
    patches: &mut [Patch],
    f: &Fields,
    stream: &Stream,
    copy_back: bool,
    gamma: f64,
    dx: (f64, f64),
    dt: f64,
) {
    pdv(patches, f, stream, copy_back, dx, dt, true);
    // Predictor EOS on the half-stepped density/energy.
    if copy_back {
        roundtrip(patches, &[f.pressure, f.soundspeed, f.density1, f.energy1]);
    }
    let grown = |p: &Patch| ComputeRegion::Grown(1).cell_box(p.cell_box());
    let regs = regions_for(patches, Pass::Full, 1, Centring::Cell, grown);
    batched_launch(
        patches,
        stream,
        "ideal-gas-pressure",
        Category::HydroKernel,
        &[f.pressure, f.density1, f.energy1],
        3,
        3,
        &regs,
        |_kk, _i, p, pbox, v, r| k::ideal_gas_pressure(p, pbox, v[0], v[1], r, gamma),
    );
    batched_launch(
        patches,
        stream,
        "ideal-gas-soundspeed",
        Category::HydroKernel,
        &[f.soundspeed, f.pressure, f.density1],
        3,
        5,
        &regs,
        |_kk, _i, ss, ssbox, v, r| k::ideal_gas_soundspeed(ss, ssbox, v[0], v[1], r, gamma),
    );
    // Revert.
    if copy_back {
        roundtrip(patches, &[f.density1, f.energy1, f.density0, f.energy0]);
    }
    for (dst, src) in [(f.density1, f.density0), (f.energy1, f.energy0)] {
        batched_launch(
            patches,
            stream,
            "copy-field",
            Category::HydroKernel,
            &[dst, src],
            2,
            0,
            &regs,
            |_kk, _i, d, dbox, v, r| k::copy_field(d, dbox, v[0], r),
        );
    }
    // Accelerate.
    if copy_back {
        roundtrip(
            patches,
            &[f.xvel1, f.yvel1, f.xvel0, f.yvel0, f.density0, f.pressure, f.viscosity],
        );
    }
    let node = |p: &Patch| Centring::Node.data_box(p.cell_box());
    let regs = regions_for(patches, Pass::Full, 1, Centring::Node, node);
    for (axis, (v1, v0)) in [(0usize, (f.xvel1, f.xvel0)), (1, (f.yvel1, f.yvel0))] {
        batched_launch(
            patches,
            stream,
            "accelerate",
            Category::HydroKernel,
            &[v1, v0, f.density0, f.pressure, f.viscosity],
            5,
            20,
            &regs,
            |_kk, _i, out, nbox, v, r| {
                k::accelerate(out, nbox, v[0], v[1], v[2], v[3], r, dt, dx, axis);
            },
        );
    }
    pdv(patches, f, stream, copy_back, dx, dt, false);
}

fn pdv(
    patches: &mut [Patch],
    f: &Fields,
    stream: &Stream,
    copy_back: bool,
    dx: (f64, f64),
    dt: f64,
    predict: bool,
) {
    if copy_back {
        roundtrip(
            patches,
            &[
                f.energy1,
                f.density1,
                f.energy0,
                f.density0,
                f.pressure,
                f.viscosity,
                f.xvel0,
                f.xvel1,
                f.yvel0,
                f.yvel1,
            ],
        );
    }
    let dt_eff = if predict { 0.5 * dt } else { dt };
    let grown = |p: &Patch| ComputeRegion::Grown(1).cell_box(p.cell_box());
    let regs = regions_for(patches, Pass::Full, 1, Centring::Cell, grown);
    batched_launch(
        patches,
        stream,
        "pdv-energy",
        Category::HydroKernel,
        &[
            f.energy1,
            f.energy0,
            f.density0,
            f.pressure,
            f.viscosity,
            f.xvel0,
            f.xvel1,
            f.yvel0,
            f.yvel1,
        ],
        9,
        30,
        &regs,
        |_kk, _i, e1, ebox, v, r| {
            let (u1, v1) = if predict { (v[4], v[6]) } else { (v[5], v[7]) };
            k::pdv_energy(e1, ebox, v[0], v[1], v[2], v[3], v[4], u1, v[6], v1, r, dt_eff, dx);
        },
    );
    batched_launch(
        patches,
        stream,
        "pdv-density",
        Category::HydroKernel,
        &[f.density1, f.density0, f.xvel0, f.xvel1, f.yvel0, f.yvel1],
        6,
        25,
        &regs,
        |_kk, _i, r1, rbox, v, r| {
            let (u1, v1) = if predict { (v[1], v[3]) } else { (v[2], v[4]) };
            k::pdv_density(r1, rbox, v[0], v[1], u1, v[3], v1, r, dt_eff, dx);
        },
    );
}

/// Volume fluxes — the compute half of the `post-accel` overlap window.
/// Kernel ordinals 1–2.
pub(crate) fn flux_calc(
    patches: &mut [Patch],
    f: &Fields,
    stream: &Stream,
    copy_back: bool,
    pass: Pass,
    dx: (f64, f64),
    dt: f64,
) {
    if copy_back && pass != Pass::Boundary {
        roundtrip(patches, &[f.vol_flux_x, f.vol_flux_y, f.xvel0, f.xvel1, f.yvel0, f.yvel1]);
    }
    for (ordinal, (axis, (flux, v0, v1))) in
        [(0usize, (f.vol_flux_x, f.xvel0, f.xvel1)), (1, (f.vol_flux_y, f.yvel0, f.yvel1))]
            .into_iter()
            .enumerate()
    {
        let regs = regions_for(patches, pass, ordinal as u32 + 1, Centring::Side(axis), |p| {
            Centring::Side(axis).data_box(p.cell_box().grow(IntVector::uniform(GHOSTS)))
        });
        batched_launch(
            patches,
            stream,
            "flux-calc",
            Category::HydroKernel,
            &[flux, v0, v1],
            3,
            6,
            &regs,
            |_kk, _i, out, sbox, v, r| k::flux_calc(out, sbox, v[0], v[1], r, dt, dx, axis),
        );
    }
}

/// Staged pre-advection copies of energy1/density1 — the batched
/// revert-save. Captured in two pieces across the passes of the
/// `mid-sweeps` window: the interior piece *before* the fill finishes
/// (legal: the fill only writes ghost cells) and the frame piece after,
/// so each captured cell holds exactly the value the oracle captures.
pub(crate) struct CellStash {
    old_e: DeviceBuffer<f64>,
    old_r: DeviceBuffer<f64>,
    ebox: GBox,
}

/// Staged pre-update velocities for the momentum sweep. Full capture at
/// the interior pass: no in-window kernel before the capture writes the
/// velocities, and the concurrent fills never fill them.
pub(crate) struct MomStash {
    old: Vec<DeviceBuffer<f64>>,
    vbox: GBox,
}

/// Cell advection — standalone (first sweep, `Pass::Full`) or the
/// compute half of the `mid-sweeps` window. Kernel ordinals 1–7.
#[allow(clippy::too_many_arguments)]
pub(crate) fn advec_cell(
    patches: &mut [Patch],
    f: &Fields,
    stream: &Stream,
    copy_back: bool,
    pass: Pass,
    dx: (f64, f64),
    dir: usize,
    sweep: usize,
    stash: &mut Vec<CellStash>,
) {
    let mass_flux = if dir == 0 { f.mass_flux_x } else { f.mass_flux_y };
    let vol_flux = if dir == 0 { f.vol_flux_x } else { f.vol_flux_y };
    if copy_back && pass != Pass::Boundary {
        roundtrip(
            patches,
            &[f.density1, f.energy1, mass_flux, vol_flux, f.pre_vol, f.post_vol, f.ener_flux],
        );
    }
    let ghost = |p: &Patch| ComputeRegion::GhostBox.cell_box(p.cell_box());
    let regs = regions_for(patches, pass, 1, Centring::Cell, ghost);
    batched_launch(
        patches,
        stream,
        "advec-pre-vol",
        Category::HydroKernel,
        &[f.pre_vol, f.vol_flux_x, f.vol_flux_y],
        3,
        6,
        &regs,
        |_kk, _i, pre, cbox, v, r| k::advec_pre_vol(pre, cbox, v[0], v[1], r, dir, sweep, dx),
    );
    let regs = regions_for(patches, pass, 2, Centring::Cell, ghost);
    batched_launch(
        patches,
        stream,
        "advec-post-vol",
        Category::HydroKernel,
        &[f.post_vol, f.vol_flux_x, f.vol_flux_y],
        3,
        6,
        &regs,
        |_kk, _i, post, cbox, v, r| k::advec_post_vol(post, cbox, v[0], v[1], r, dir, sweep, dx),
    );
    let regs = regions_for(patches, pass, 3, Centring::Side(dir), |p| {
        let face = Centring::Side(dir).data_box(p.cell_box().grow(IntVector::uniform(GHOSTS)));
        face.intersect(p.data(mass_flux).data_box())
    });
    batched_launch(
        patches,
        stream,
        "advec-mass-flux",
        Category::HydroKernel,
        &[mass_flux, vol_flux, f.density1, f.pre_vol],
        4,
        20,
        &regs,
        |_kk, _i, mf, sbox, v, r| k::advec_mass_flux(mf, sbox, v[0], v[1], v[2], r, dir),
    );
    let regs = regions_for(patches, pass, 4, Centring::Cell, |p| p.cell_box().grow(IntVector::ONE));
    batched_launch(
        patches,
        stream,
        "advec-ener-flux",
        Category::HydroKernel,
        &[f.ener_flux, mass_flux, f.energy1, f.density1, f.pre_vol],
        5,
        20,
        &regs,
        |_kk, _i, ef, cbox, v, r| k::advec_ener_flux(ef, cbox, v[0], v[1], v[2], v[3], r, dir),
    );
    // Revert-save (ordinal 5): stage pre-advection energy1/density1.
    revert_save(patches, f, stream, pass, stash);
    let interior = |p: &Patch| p.cell_box();
    let regs = regions_for(patches, pass, 6, Centring::Cell, interior);
    batched_launch(
        patches,
        stream,
        "advec-cell",
        Category::HydroKernel,
        &[f.energy1, f.pre_vol, mass_flux, f.ener_flux],
        6,
        20,
        &regs,
        |kk, i, e1, ebox, v, r| {
            let st = &stash[i];
            let e_old = k::View::new(st.old_e.as_slice(kk), st.ebox);
            let r_old = k::View::new(st.old_r.as_slice(kk), st.ebox);
            k::advec_cell_energy(e1, ebox, e_old, r_old, v[0], v[1], v[2], r, dir);
        },
    );
    let regs = regions_for(patches, pass, 7, Centring::Cell, interior);
    batched_launch(
        patches,
        stream,
        "advec-ener-update",
        Category::HydroKernel,
        &[f.density1, f.pre_vol, mass_flux, vol_flux],
        5,
        15,
        &regs,
        |kk, i, r1, rbox, v, r| {
            let st = &stash[i];
            let r_old = k::View::new(st.old_r.as_slice(kk), st.ebox);
            k::advec_cell_density(r1, rbox, r_old, v[0], v[1], v[2], r, dir);
        },
    );
    if pass != Pass::Interior {
        stash.clear();
    }
}

fn revert_save(
    patches: &[Patch],
    f: &Fields,
    stream: &Stream,
    pass: Pass,
    stash: &mut Vec<CellStash>,
) {
    if patches.is_empty() {
        return;
    }
    let m = margin(5);
    let caps: Vec<Vec<GBox>> = patches
        .iter()
        .map(|p| {
            let ebox = dev(p.data(f.energy1)).data_box();
            match pass {
                Pass::Full => vec![ebox],
                Pass::Interior | Pass::Boundary => {
                    let core = interior_core(p.cell_box(), m);
                    if core.is_empty() {
                        return if pass == Pass::Boundary { vec![ebox] } else { Vec::new() };
                    }
                    let (inner, frames) = split_region(ebox, Centring::Cell.data_box(core));
                    if pass == Pass::Interior {
                        if inner.is_empty() {
                            Vec::new()
                        } else {
                            vec![inner]
                        }
                    } else {
                        frames.into_iter().filter(|b| !b.is_empty()).collect()
                    }
                }
            }
        })
        .collect();
    let device = dev(patches[0].data(f.energy1)).device().clone();
    if pass != Pass::Boundary {
        stash.clear();
        for p in patches.iter() {
            let e1 = dev(p.data(f.energy1));
            let r1 = dev(p.data(f.density1));
            stash.push(CellStash {
                old_e: device.alloc::<f64>(e1.buffer().len()),
                old_r: device.alloc::<f64>(r1.buffer().len()),
                ebox: e1.data_box(),
            });
        }
    }
    let total: i64 = caps.iter().flatten().map(|b| b.num_cells()).sum();
    if total == 0 {
        return;
    }
    stream.submit();
    let shape = KernelShape::streaming(total * 2, 4, 0);
    device.launch_named(stream, "revert-save", Category::HydroKernel, shape, |kk| {
        for (i, p) in patches.iter().enumerate() {
            if caps[i].is_empty() {
                continue;
            }
            let e1 = dev(p.data(f.energy1));
            let r1 = dev(p.data(f.density1));
            let st = &mut stash[i];
            for r in &caps[i] {
                k::copy_field(
                    st.old_e.as_mut_slice(&kk),
                    st.ebox,
                    k::View::new(e1.buffer().as_slice(&kk), e1.data_box()),
                    *r,
                );
                k::copy_field(
                    st.old_r.as_mut_slice(&kk),
                    st.ebox,
                    k::View::new(r1.buffer().as_slice(&kk), r1.data_box()),
                    *r,
                );
            }
        }
    });
}

/// Momentum advection — the compute half of the `post-sweep` overlap
/// windows. Kernel ordinals 1–9 (the two save-vel slots keep their
/// ordinal so later margins stay monotone).
#[allow(clippy::too_many_arguments)]
pub(crate) fn advec_mom(
    patches: &mut [Patch],
    f: &Fields,
    stream: &Stream,
    copy_back: bool,
    pass: Pass,
    dir: usize,
    stash: &mut Vec<MomStash>,
) {
    let mass_flux = if dir == 0 { f.mass_flux_x } else { f.mass_flux_y };
    if copy_back && pass != Pass::Boundary {
        roundtrip(
            patches,
            &[
                f.xvel1,
                f.yvel1,
                f.density1,
                mass_flux,
                f.node_flux,
                f.node_mass_post,
                f.node_mass_pre,
                f.mom_flux,
                f.post_vol,
                f.pre_vol,
            ],
        );
    }
    let node_region = |p: &Patch| Centring::Node.data_box(p.cell_box().grow(IntVector::ONE));
    let regs = regions_for(patches, pass, 1, Centring::Node, node_region);
    batched_launch(
        patches,
        stream,
        "mom-node-flux",
        Category::HydroKernel,
        &[f.node_flux, mass_flux],
        2,
        4,
        &regs,
        |_kk, _i, nf, nbox, v, r| k::mom_node_flux(nf, nbox, v[0], r, dir),
    );
    let regs = regions_for(patches, pass, 2, Centring::Node, node_region);
    batched_launch(
        patches,
        stream,
        "mom-node-mass-post",
        Category::HydroKernel,
        &[f.node_mass_post, f.density1, f.post_vol],
        3,
        8,
        &regs,
        |_kk, _i, nm, nbox, v, r| k::mom_node_mass_post(nm, nbox, v[0], v[1], r),
    );
    let regs = regions_for(patches, pass, 3, Centring::Node, node_region);
    batched_launch(
        patches,
        stream,
        "mom-node-mass-pre",
        Category::HydroKernel,
        &[f.node_mass_pre, f.node_mass_post, f.node_flux],
        3,
        2,
        &regs,
        |_kk, _i, nm, nbox, v, r| k::mom_node_mass_pre(nm, nbox, v[0], v[1], r, dir),
    );
    if pass != Pass::Boundary {
        stash.clear();
        for p in patches.iter() {
            let vbox = dev(p.data(f.xvel1)).data_box();
            stash.push(MomStash { old: Vec::new(), vbox });
        }
    }
    for (vi, vel) in [f.xvel1, f.yvel1].into_iter().enumerate() {
        let base = 4 + 3 * vi as u32;
        let regs = regions_for(patches, pass, base, Centring::Node, node_region);
        batched_launch(
            patches,
            stream,
            "mom-flux",
            Category::HydroKernel,
            &[f.mom_flux, vel, f.node_flux, f.node_mass_pre],
            4,
            25,
            &regs,
            |_kk, _i, mf, nbox, v, r| k::mom_flux(mf, nbox, v[0], v[1], v[2], r, dir),
        );
        // Save-vel (ordinal base+1): full capture of the untouched
        // velocity at the interior (or full) pass.
        if pass != Pass::Boundary && !patches.is_empty() {
            let device = dev(patches[0].data(vel)).device().clone();
            let total: i64 = stash.iter().map(|s| s.vbox.num_cells()).sum();
            for (i, p) in patches.iter().enumerate() {
                let v1 = dev(p.data(vel));
                stash[i].old.push(device.alloc::<f64>(v1.buffer().len()));
            }
            stream.submit();
            let shape = KernelShape::streaming(total, 2, 0);
            device.launch_named(stream, "mom-save-vel", Category::HydroKernel, shape, |kk| {
                for (i, p) in patches.iter().enumerate() {
                    let v1 = dev(p.data(vel));
                    stash[i].old[vi].as_mut_slice(&kk).copy_from_slice(v1.buffer().as_slice(&kk));
                }
            });
        }
        let regs = regions_for(patches, pass, base + 2, Centring::Node, |p| {
            Centring::Node.data_box(p.cell_box())
        });
        batched_launch(
            patches,
            stream,
            "mom-vel-update",
            Category::HydroKernel,
            &[vel, f.mom_flux, f.node_mass_pre, f.node_mass_post],
            5,
            10,
            &regs,
            |kk, i, out, obox, v, r| {
                let st = &stash[i];
                let v_old = k::View::new(st.old[vi].as_slice(kk), st.vbox);
                k::mom_vel_update(out, obox, v_old, v[0], v[1], v[2], r, dir);
            },
        );
    }
    if pass != Pass::Interior {
        stash.clear();
    }
}

/// End-of-step field reset: four full-region batched copies.
pub(crate) fn reset(patches: &mut [Patch], f: &Fields, stream: &Stream, copy_back: bool) {
    if copy_back {
        roundtrip(
            patches,
            &[f.density0, f.energy0, f.xvel0, f.yvel0, f.density1, f.energy1, f.xvel1, f.yvel1],
        );
    }
    for (dst, src, node) in [
        (f.density0, f.density1, false),
        (f.energy0, f.energy1, false),
        (f.xvel0, f.xvel1, true),
        (f.yvel0, f.yvel1, true),
    ] {
        let regs = regions_for(patches, Pass::Full, 1, Centring::Cell, |p| {
            if node {
                Centring::Node.data_box(p.cell_box())
            } else {
                p.cell_box()
            }
        });
        batched_launch(
            patches,
            stream,
            "copy-field",
            Category::HydroKernel,
            &[dst, src],
            2,
            0,
            &regs,
            |_kk, _i, d, dbox, v, r| k::copy_field(d, dbox, v[0], r),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn margins_are_monotone_with_stencil_gap() {
        for ord in 1..12u32 {
            assert_eq!(margin(ord + 1) - margin(ord), MARGIN_STEP);
        }
        assert!(margin(1) >= MARGIN_STEP + 2);
    }

    #[test]
    fn passes_partition_the_nominal_region() {
        let cell_box = GBox::from_coords(0, 0, 40, 40);
        for centring in [Centring::Cell, Centring::Node, Centring::Side(0), Centring::Side(1)] {
            let nominal = centring.data_box(cell_box.grow(IntVector::uniform(GHOSTS)));
            for ordinal in [1u32, 3, 7, 9] {
                let inner = pass_regions(Pass::Interior, ordinal, cell_box, centring, nominal);
                let frames = pass_regions(Pass::Boundary, ordinal, cell_box, centring, nominal);
                let full = pass_regions(Pass::Full, ordinal, cell_box, centring, nominal);
                let cells = |v: &[GBox]| v.iter().map(|b| b.num_cells()).sum::<i64>();
                assert_eq!(cells(&inner) + cells(&frames), cells(&full));
                assert_eq!(cells(&full), nominal.num_cells());
                for a in &inner {
                    for b in &frames {
                        assert!(a.intersect(*b).is_empty());
                    }
                }
            }
        }
    }

    #[test]
    fn small_patches_degrade_to_boundary_only() {
        let cell_box = GBox::from_coords(0, 0, 8, 8);
        let nominal = cell_box.grow(IntVector::uniform(GHOSTS));
        let ord = 9; // deepest margin of the momentum chain
        assert!(pass_regions(Pass::Interior, ord, cell_box, Centring::Cell, nominal).is_empty());
        assert_eq!(
            pass_regions(Pass::Boundary, ord, cell_box, Centring::Cell, nominal),
            vec![nominal]
        );
    }
}
