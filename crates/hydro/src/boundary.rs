//! Reflective physical boundaries (the CloverLeaf condition).
//!
//! Ghost values outside the domain mirror the interior; velocity
//! components normal to a wall (and fluxes through it) flip sign. Cell
//! quantities mirror evenly. The fill is index-precomputed on the host
//! (pure box arithmetic, no data) and applied either directly to host
//! data or as a device kernel — ghost filling never moves field data
//! across the PCIe bus.

use crate::state::Fields;
use rbamr_amr::{HostData, Patch, PhysicalBoundary, VariableId};
use rbamr_device::Stream;
use rbamr_geometry::{BoxList, Centring, GBox};
use rbamr_gpu_amr::DeviceData;
use rbamr_perfmodel::{Category, KernelShape};

/// Per-variable mirror parity: whether the value flips sign when
/// reflected across an x- or y-facing wall.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Parity {
    /// Sign flip across x-min/x-max walls.
    pub odd_x: bool,
    /// Sign flip across y-min/y-max walls.
    pub odd_y: bool,
}

/// Reflective boundary for the hydro field set.
pub struct ReflectiveBoundary {
    parities: Vec<Parity>,
}

impl ReflectiveBoundary {
    /// Build the parity table for the registered hydro fields:
    /// x-velocity and x-fluxes are odd in x, y-velocity and y-fluxes odd
    /// in y, everything else even.
    pub fn for_fields(f: &Fields, num_vars: usize) -> Self {
        let mut parities = vec![Parity::default(); num_vars];
        for v in [f.xvel0, f.xvel1, f.vol_flux_x, f.mass_flux_x] {
            parities[v.0] = Parity { odd_x: true, odd_y: false };
        }
        for v in [f.yvel0, f.yvel1, f.vol_flux_y, f.mass_flux_y] {
            parities[v.0] = Parity { odd_x: false, odd_y: true };
        }
        Self { parities }
    }

    /// Parity of one variable.
    pub fn parity(&self, var: VariableId) -> Parity {
        self.parities.get(var.0).copied().unwrap_or_default()
    }
}

/// Whether data with this centring sits on the reflection plane along
/// `axis` ("node-like") or between planes ("cell-like").
fn node_like(centring: Centring, axis: usize) -> bool {
    match centring {
        Centring::Cell => false,
        Centring::Node => true,
        Centring::Side(a) => a == axis,
    }
}

/// Compute the (target, source, sign) index pairs for a reflective fill
/// of `fill_boxes` (cell space, outside the domain). Pure index
/// arithmetic shared by the host and device paths.
pub fn mirror_pairs(
    data_box: GBox,
    centring: Centring,
    parity: Parity,
    fill_boxes: &BoxList,
    domain_cells: GBox,
) -> Vec<(usize, usize, f64)> {
    let domain_data = centring.data_box(domain_cells);
    let mut pairs = Vec::new();
    for b in fill_boxes.boxes() {
        for p in centring.data_box(*b).iter() {
            if domain_data.contains(p) || !data_box.contains(p) {
                continue;
            }
            let mut sign = 1.0;
            let mut q = p;
            for axis in 0..2 {
                let (lo, hi) = (domain_data.lo.get(axis), domain_data.hi.get(axis));
                let v = q.get(axis);
                let reflected = if node_like(centring, axis) {
                    // Wall plane at lo and hi-1 (the last node).
                    if v < lo {
                        2 * lo - v
                    } else if v > hi - 1 {
                        2 * (hi - 1) - v
                    } else {
                        v
                    }
                } else if v < lo {
                    2 * lo - 1 - v
                } else if v >= hi {
                    2 * hi - 1 - v
                } else {
                    v
                };
                if reflected != v {
                    let odd = if axis == 0 { parity.odd_x } else { parity.odd_y };
                    if odd {
                        sign = -sign;
                    }
                    q = q.with(axis, reflected);
                }
            }
            if q != p && data_box.contains(q) {
                pairs.push((data_box.offset_of(p), data_box.offset_of(q), sign));
            }
        }
    }
    pairs
}

impl PhysicalBoundary for ReflectiveBoundary {
    fn fill(
        &self,
        patch: &mut Patch,
        var: VariableId,
        boxes: &BoxList,
        domain_box: GBox,
        _time: f64,
    ) {
        let centring = patch.data(var).centring();
        let data_box = patch.data(var).data_box();
        let parity = self.parity(var);
        let pairs = mirror_pairs(data_box, centring, parity, boxes, domain_box);
        if pairs.is_empty() {
            return;
        }
        let data = patch.data_mut(var);
        if let Some(host) = data.as_any_mut().downcast_mut::<HostData<f64>>() {
            let slice = host.as_mut_slice();
            for &(t, s, sign) in &pairs {
                slice[t] = sign * slice[s];
            }
        } else if let Some(dev) = data.as_any_mut().downcast_mut::<DeviceData<f64>>() {
            let device = dev.device().clone();
            let stream = Stream::new(&device);
            stream.submit();
            let shape = KernelShape::streaming(pairs.len() as i64, 2, 1);
            let buf = dev.buffer_mut();
            device.launch_named(&stream, "physical-boundary", Category::HaloExchange, shape, |k| {
                let slice = buf.as_mut_slice(&k);
                // Sources are interior, targets are ghosts: disjoint
                // sets, so gather-then-scatter preserves the
                // one-thread-per-element semantics.
                let vals: Vec<f64> = pairs.iter().map(|&(_, s, sign)| sign * slice[s]).collect();
                for (&(t, _, _), v) in pairs.iter().zip(vals) {
                    slice[t] = v;
                }
            });
        } else {
            panic!("ReflectiveBoundary: unsupported data placement");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbamr_amr::patch::PatchId;
    use rbamr_amr::{HostDataFactory, VariableRegistry};
    use rbamr_geometry::IntVector;
    use std::sync::Arc;

    fn b(x0: i64, y0: i64, x1: i64, y1: i64) -> GBox {
        GBox::from_coords(x0, y0, x1, y1)
    }

    #[test]
    fn cell_mirror_is_even() {
        let data_box = b(-2, -2, 10, 10);
        let domain = b(0, 0, 8, 8);
        let fill = BoxList::from_box(b(-2, 0, 0, 8));
        let pairs = mirror_pairs(data_box, Centring::Cell, Parity::default(), &fill, domain);
        // Ghost (-1, y) <- (0, y); (-2, y) <- (1, y); all +1 sign.
        assert_eq!(pairs.len(), 16);
        for (t, s, sign) in pairs {
            assert_eq!(sign, 1.0);
            assert_ne!(t, s);
        }
    }

    #[test]
    fn node_mirror_reflects_about_wall_plane() {
        let domain = b(0, 0, 8, 8);
        let data_box = Centring::Node.data_box(domain.grow(IntVector::uniform(2)));
        let fill = BoxList::from_box(b(-2, 2, 0, 3));
        let parity = Parity { odd_x: true, odd_y: false };
        let pairs = mirror_pairs(data_box, Centring::Node, parity, &fill, domain);
        // Node x=-1 mirrors node x=+1 (the wall node x=0 is interior).
        let node_dbox = data_box;
        let t = node_dbox.offset_of(IntVector::new(-1, 2));
        let s = node_dbox.offset_of(IntVector::new(1, 2));
        assert!(pairs.contains(&(t, s, -1.0)), "missing odd mirror pair");
        // The wall node itself is never a target.
        assert!(pairs.iter().all(|&(tt, _, _)| tt != node_dbox.offset_of(IntVector::new(0, 2))));
    }

    #[test]
    fn corner_mirrors_flip_once_per_odd_axis() {
        let domain = b(0, 0, 4, 4);
        let data_box = b(-2, -2, 6, 6);
        let fill = BoxList::from_box(b(-2, -2, 0, 0));
        let parity = Parity { odd_x: true, odd_y: true };
        let pairs = mirror_pairs(data_box, Centring::Cell, parity, &fill, domain);
        // Corner ghost reflects across both axes: sign (+1) * (-1) * (-1).
        let t = data_box.offset_of(IntVector::new(-1, -1));
        let s = data_box.offset_of(IntVector::new(0, 0));
        assert!(pairs.contains(&(t, s, 1.0)));
    }

    #[test]
    fn host_fill_applies_reflection() {
        let mut reg = VariableRegistry::new(Arc::new(HostDataFactory::new()));
        let f = Fields::register(&mut reg);
        let boundary = ReflectiveBoundary::for_fields(&f, reg.len());
        let domain = b(0, 0, 8, 8);
        let mut patch = Patch::new(PatchId { level: 0, index: 0 }, domain, 0, &reg);
        // Seed interior velocity.
        for p in Centring::Node.data_box(domain).iter() {
            *patch.host_mut::<f64>(f.xvel0).at_mut(p) = (p.x + 1) as f64;
        }
        let fill = BoxList::from_box(b(-2, 0, 0, 8));
        boundary.fill(&mut patch, f.xvel0, &fill, domain, 0.0);
        let d = patch.host::<f64>(f.xvel0);
        // xvel is odd in x: ghost node -1 = -(node 1) = -2.
        assert_eq!(d.at(IntVector::new(-1, 3)), -2.0);
        assert_eq!(d.at(IntVector::new(-2, 3)), -3.0);
        // Density mirrors evenly.
        for p in domain.iter() {
            *patch.host_mut::<f64>(f.density0).at_mut(p) = (p.x + 1) as f64;
        }
        boundary.fill(&mut patch, f.density0, &fill, domain, 0.0);
        let d = patch.host::<f64>(f.density0);
        assert_eq!(d.at(IntVector::new(-1, 3)), 1.0);
        assert_eq!(d.at(IntVector::new(-2, 3)), 2.0);
    }

    #[test]
    fn parities_match_cloverleaf_field_types() {
        let mut reg = VariableRegistry::new(Arc::new(HostDataFactory::new()));
        let f = Fields::register(&mut reg);
        let bdy = ReflectiveBoundary::for_fields(&f, reg.len());
        assert_eq!(bdy.parity(f.xvel0), Parity { odd_x: true, odd_y: false });
        assert_eq!(bdy.parity(f.yvel1), Parity { odd_x: false, odd_y: true });
        assert_eq!(bdy.parity(f.mass_flux_x), Parity { odd_x: true, odd_y: false });
        assert_eq!(bdy.parity(f.density0), Parity::default());
        assert_eq!(bdy.parity(f.pressure), Parity::default());
    }
}
