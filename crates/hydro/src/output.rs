//! Visualisation output — legacy-VTK writers for the AMR hierarchy.
//!
//! In the original system SAMRAI's VisIt writer handles visualisation;
//! the paper lists it as one of the three situations where "relevant
//! regions of data are copied to the host memory" (regridding, boundary
//! updates, and synchronisation — plus initialisation/viz/restart as
//! whole-array transfers). This module reproduces that role with plain
//! legacy-VTK structured-points files, one per patch, plus a `.visit`
//! index — the format VisIt consumes for multi-block AMR data.

use crate::integrator::{HydroSim, Placement};
use crate::state::Fields;
use rbamr_amr::patchdata::PatchData;
use rbamr_amr::{HostData, Patch, VariableId};
use rbamr_gpu_amr::DeviceData;
use rbamr_perfmodel::Category;
use std::io::{self, Write};
use std::path::Path;

/// The cell fields a dump writes.
const DUMP_FIELDS: [&str; 3] = ["density", "energy", "pressure"];

fn field_ids(f: &Fields) -> [VariableId; 3] {
    [f.density0, f.energy0, f.pressure]
}

/// Read one full cell-centred array from either placement (interior
/// values only, row-major).
fn read_interior(patch: &Patch, var: VariableId) -> Vec<f64> {
    let cb = patch.cell_box();
    if let Some(h) = patch.data(var).as_any().downcast_ref::<HostData<f64>>() {
        cb.iter().map(|q| h.at(q)).collect()
    } else if let Some(d) = patch.data(var).as_any().downcast_ref::<DeviceData<f64>>() {
        let all = d.download_all(Category::Other);
        let dbox = d.data_box();
        cb.iter().map(|q| all[dbox.offset_of(q)]).collect()
    } else {
        panic!("vtk output: unsupported data placement");
    }
}

/// Write one patch as a legacy-VTK `STRUCTURED_POINTS` file.
fn write_patch_vtk(
    path: &Path,
    patch: &Patch,
    fields: &Fields,
    origin: (f64, f64),
    dx: (f64, f64),
) -> io::Result<()> {
    let cb = patch.cell_box();
    let (nx, ny) = (cb.size().x, cb.size().y);
    let mut out = io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(out, "# vtk DataFile Version 3.0")?;
    writeln!(out, "rbamr patch level {} index {}", patch.id().level, patch.id().index)?;
    writeln!(out, "ASCII")?;
    writeln!(out, "DATASET STRUCTURED_POINTS")?;
    writeln!(out, "DIMENSIONS {} {} 1", nx + 1, ny + 1)?;
    writeln!(
        out,
        "ORIGIN {} {} 0",
        origin.0 + cb.lo.x as f64 * dx.0,
        origin.1 + cb.lo.y as f64 * dx.1
    )?;
    writeln!(out, "SPACING {} {} 1", dx.0, dx.1)?;
    writeln!(out, "CELL_DATA {}", nx * ny)?;
    for (name, var) in DUMP_FIELDS.iter().zip(field_ids(fields)) {
        writeln!(out, "SCALARS {name} double 1")?;
        writeln!(out, "LOOKUP_TABLE default")?;
        for v in read_interior(patch, var) {
            writeln!(out, "{v}")?;
        }
    }
    out.flush()
}

impl HydroSim {
    /// Dump the hierarchy as VTK files into `dir`: one
    /// `patch_<level>_<index>.vtk` per locally owned patch plus a
    /// `dump.visit` index listing them (VisIt's multi-block format).
    /// Returns the number of patch files written.
    ///
    /// On the device build this is a sanctioned full-array D2H transfer
    /// per dumped field.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn write_vtk_dump(&self, dir: &Path) -> io::Result<usize> {
        let written = self.write_vtk_patches(dir)?;
        let index: Vec<String> = written.clone();
        let mut visit = io::BufWriter::new(std::fs::File::create(dir.join("dump.visit"))?);
        writeln!(visit, "!NBLOCKS {}", index.len())?;
        for name in &index {
            writeln!(visit, "{name}")?;
        }
        visit.flush()?;
        Ok(index.len())
    }

    /// Write this rank's patches only (no index). Distributed dumps
    /// call this on every rank — filenames carry the global patch index
    /// so they never collide — then rank 0 gathers the filename lists
    /// through the communicator and writes the index with
    /// [`HydroSim::write_vtk_dump_distributed`].
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn write_vtk_patches(&self, dir: &Path) -> io::Result<Vec<String>> {
        std::fs::create_dir_all(dir)?;
        let fields = *self.fields();
        let geometry = self.hierarchy().geometry();
        let mut index = Vec::new();
        for l in 0..self.hierarchy().num_levels() {
            let dx = self.hierarchy().dx(l);
            for patch in self.hierarchy().level(l).local() {
                let name = format!("patch_{}_{}.vtk", l, patch.id().index);
                write_patch_vtk(&dir.join(&name), patch, &fields, geometry.origin, dx)?;
                index.push(name);
            }
        }
        Ok(index)
    }

    /// Distributed dump: every rank writes its patches, the filename
    /// lists are gathered to rank 0, and rank 0 writes the `.visit`
    /// index. Returns the total block count (on rank 0; local count on
    /// other ranks).
    ///
    /// # Errors
    /// Propagates filesystem errors.
    ///
    /// # Panics
    /// Panics if a gathered filename is not valid UTF-8 (impossible for
    /// names this method generates).
    pub fn write_vtk_dump_distributed(
        &self,
        dir: &Path,
        comm: &rbamr_netsim::Comm,
    ) -> io::Result<usize> {
        let mine = self.write_vtk_patches(dir)?;
        let payload = bytes::Bytes::from(mine.join("\n").into_bytes());
        let gathered = comm.gather(0, payload, Category::Other);
        let local = mine.len();
        if let Some(parts) = gathered {
            let mut index = Vec::new();
            for part in parts {
                let text = std::str::from_utf8(&part).expect("utf8 filenames");
                index.extend(text.lines().filter(|l| !l.is_empty()).map(str::to_owned));
            }
            index.sort();
            let mut visit = io::BufWriter::new(std::fs::File::create(dir.join("dump.visit"))?);
            writeln!(visit, "!NBLOCKS {}", index.len())?;
            for name in &index {
                writeln!(visit, "{name}")?;
            }
            visit.flush()?;
            Ok(index.len())
        } else {
            Ok(local)
        }
    }

    /// The placement (host/device) — exposed for output tooling.
    pub fn is_device(&self) -> bool {
        self.placement() == Placement::Device
    }
}

#[cfg(test)]
mod tests {
    use crate::integrator::{HydroConfig, HydroSim, Placement};
    use crate::state::RegionInit;
    use rbamr_perfmodel::{Clock, Machine};

    fn build(placement: Placement) -> HydroSim {
        let machine = match placement {
            Placement::Host => Machine::ipa_cpu_node(),
            _ => Machine::ipa_gpu(),
        };
        let regions = vec![
            RegionInit {
                rect: (0.0, 0.0, 0.5, 1.0),
                density: 1.0,
                energy: 2.5,
                xvel: 0.0,
                yvel: 0.0,
            },
            RegionInit {
                rect: (0.5, 0.0, 1.0, 1.0),
                density: 0.125,
                energy: 2.0,
                xvel: 0.0,
                yvel: 0.0,
            },
        ];
        let mut sim = HydroSim::new(
            machine,
            placement,
            Clock::new(),
            (1.0, 1.0),
            (16, 16),
            2,
            2,
            HydroConfig::default(),
            regions,
            0,
            1,
        );
        sim.initialize(None);
        sim
    }

    #[test]
    fn dump_writes_every_patch_and_an_index() {
        let sim = build(Placement::Host);
        let dir = std::env::temp_dir().join(format!("rbamr_vtk_{}", std::process::id()));
        let n = sim.write_vtk_dump(&dir).expect("dump");
        let expected: usize =
            (0..sim.hierarchy().num_levels()).map(|l| sim.hierarchy().level(l).local().len()).sum();
        assert_eq!(n, expected);
        let index = std::fs::read_to_string(dir.join("dump.visit")).unwrap();
        assert!(index.starts_with(&format!("!NBLOCKS {n}")));
        // Spot-check one patch file's header and payload.
        let first = index.lines().nth(1).unwrap();
        let body = std::fs::read_to_string(dir.join(first)).unwrap();
        assert!(body.contains("DATASET STRUCTURED_POINTS"));
        assert!(body.contains("SCALARS density double 1"));
        assert!(body.contains("SCALARS pressure double 1"));
        // Sod left-state density appears.
        assert!(body.lines().any(|l| l.trim() == "1"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn distributed_dump_gathers_a_complete_index() {
        use rbamr_netsim::Cluster;
        let dir = std::env::temp_dir().join(format!("rbamr_vtk_dist_{}", std::process::id()));
        let dir2 = dir.clone();
        let cluster = Cluster::new(Machine::ipa_cpu_node());
        let results = cluster.run(3, move |comm| {
            let mut config = HydroConfig { max_patch_size: 8, ..HydroConfig::default() };
            config.regrid.max_patch_size = 8;
            let regions = vec![
                RegionInit {
                    rect: (0.0, 0.0, 0.5, 1.0),
                    density: 1.0,
                    energy: 2.5,
                    xvel: 0.0,
                    yvel: 0.0,
                },
                RegionInit {
                    rect: (0.5, 0.0, 1.0, 1.0),
                    density: 0.125,
                    energy: 2.0,
                    xvel: 0.0,
                    yvel: 0.0,
                },
            ];
            let mut sim = HydroSim::new(
                Machine::ipa_cpu_node(),
                Placement::Host,
                comm.clock().clone(),
                (1.0, 1.0),
                (16, 16),
                1,
                2,
                config,
                regions,
                comm.rank(),
                comm.size(),
            );
            sim.initialize(Some(&comm));
            sim.write_vtk_dump_distributed(&dir2, &comm).expect("distributed dump")
        });
        // Rank 0 reports the global block count = total patches.
        let total = results[0].value;
        assert_eq!(total, 4); // 16x16 split at max 8 => 4 patches
        let index = std::fs::read_to_string(dir.join("dump.visit")).unwrap();
        assert!(index.starts_with("!NBLOCKS 4"));
        for line in index.lines().skip(1) {
            assert!(dir.join(line).exists(), "missing {line}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn device_dump_matches_host_dump() {
        let host = build(Placement::Host);
        let dev = build(Placement::Device);
        let hdir = std::env::temp_dir().join(format!("rbamr_vtk_h_{}", std::process::id()));
        let ddir = std::env::temp_dir().join(format!("rbamr_vtk_d_{}", std::process::id()));
        host.write_vtk_dump(&hdir).unwrap();
        dev.write_vtk_dump(&ddir).unwrap();
        let index = std::fs::read_to_string(hdir.join("dump.visit")).unwrap();
        for name in index.lines().skip(1) {
            let a = std::fs::read_to_string(hdir.join(name)).unwrap();
            let b = std::fs::read_to_string(ddir.join(name)).unwrap();
            assert_eq!(a, b, "placement-dependent dump for {name}");
        }
        std::fs::remove_dir_all(&hdir).ok();
        std::fs::remove_dir_all(&ddir).ok();
    }
}
