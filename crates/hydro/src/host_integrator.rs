//! The CPU patch integrator — the baseline the paper compares against.

use crate::kernels as k;
use crate::state::{
    ComputeRegion, Fields, FlagThresholds, PatchIntegrator, RegionInit, Summary, GHOSTS,
};
use rbamr_amr::hostdata::HostCostHook;
use rbamr_amr::patchdata::PatchData;
use rbamr_amr::{HostData, Patch, TagBitmap, VariableId};
use rbamr_geometry::{Centring, GBox, IntVector};
use rbamr_perfmodel::{Category, KernelShape};

/// Advances a patch on the host. Optionally charges a virtual clock so
/// the CPU baseline's runtime is modelled with the same machinery as
/// the device build.
pub struct HostPatchIntegrator {
    hook: Option<HostCostHook>,
}

impl HostPatchIntegrator {
    /// Integrator without cost accounting.
    pub fn new() -> Self {
        Self { hook: None }
    }

    /// Integrator charging `hook`'s clock per kernel.
    pub fn with_costs(hook: HostCostHook) -> Self {
        Self { hook: Some(hook) }
    }

    fn charge(&self, category: Category, cells: i64, arrays: u32, flops: u32) {
        if let Some(h) = &self.hook {
            let shape = KernelShape::streaming(cells, arrays, flops);
            h.clock.advance(category, h.cost.host_kernel(shape));
        }
    }
}

impl Default for HostPatchIntegrator {
    fn default() -> Self {
        Self::new()
    }
}

fn split_out<'a>(
    datas: &'a mut [&mut dyn PatchData],
    n_out: usize,
) -> (Vec<(&'a mut [f64], GBox)>, Vec<k::View<'a>>) {
    let (outs, ins) = datas.split_at_mut(n_out);
    let outs = outs
        .iter_mut()
        .map(|d| {
            let dbox = d.data_box();
            let h = d
                .as_any_mut()
                .downcast_mut::<HostData<f64>>()
                .expect("host integrator on non-host data");
            (h.as_mut_slice(), dbox)
        })
        .collect();
    let ins = ins
        .iter()
        .map(|d| {
            let dbox = d.data_box();
            let h = d
                .as_any()
                .downcast_ref::<HostData<f64>>()
                .expect("host integrator on non-host data");
            k::View::new(h.as_slice(), dbox)
        })
        .collect();
    (outs, ins)
}

impl PatchIntegrator for HostPatchIntegrator {
    fn name(&self) -> &'static str {
        "host"
    }

    fn init_regions(
        &self,
        patch: &mut Patch,
        f: &Fields,
        origin: (f64, f64),
        dx: (f64, f64),
        regions: &[RegionInit],
        _gamma: f64,
    ) {
        let interior = patch.cell_box();
        let ghost = interior.grow(IntVector::uniform(GHOSTS));
        // Cell fields.
        for (var, pick) in [(f.density0, 0usize), (f.density1, 0), (f.energy0, 1), (f.energy1, 1)] {
            let d = patch.host_mut::<f64>(var);
            for p in Centring::Cell.data_box(ghost).iter() {
                let cx = origin.0 + (p.x as f64 + 0.5) * dx.0;
                let cy = origin.1 + (p.y as f64 + 0.5) * dx.1;
                let mut val = 0.0;
                for r in regions {
                    let (x0, y0, x1, y1) = r.rect;
                    if cx >= x0 && cx < x1 && cy >= y0 && cy < y1 {
                        val = if pick == 0 { r.density } else { r.energy };
                    }
                }
                *d.at_mut(p) = val;
            }
        }
        // Node velocities.
        for (var, pick) in [(f.xvel0, 0usize), (f.xvel1, 0), (f.yvel0, 1), (f.yvel1, 1)] {
            let d = patch.host_mut::<f64>(var);
            for p in Centring::Node.data_box(ghost).iter() {
                let cx = origin.0 + p.x as f64 * dx.0;
                let cy = origin.1 + p.y as f64 * dx.1;
                let mut val = 0.0;
                for r in regions {
                    let (x0, y0, x1, y1) = r.rect;
                    if cx >= x0 && cx <= x1 && cy >= y0 && cy <= y1 {
                        val = if pick == 0 { r.xvel } else { r.yvel };
                    }
                }
                *d.at_mut(p) = val;
            }
        }
    }

    fn ideal_gas(&self, patch: &mut Patch, f: &Fields, gamma: f64, predict: bool) {
        let region = if predict {
            ComputeRegion::Grown(1).cell_box(patch.cell_box())
        } else {
            ComputeRegion::GhostBox.cell_box(patch.cell_box())
        };
        let (rho, e) = if predict { (f.density1, f.energy1) } else { (f.density0, f.energy0) };
        let mut datas = patch.data_many_mut(&[f.pressure, f.soundspeed, rho, e]);
        let (mut outs, ins) = split_out(&mut datas, 2);
        let [(p, pbox), (ss, ssbox)] = &mut outs[..] else { unreachable!() };
        k::ideal_gas_pressure(p, *pbox, ins[0], ins[1], region, gamma);
        k::ideal_gas_soundspeed(ss, *ssbox, k::View::new(p, *pbox), ins[0], region, gamma);
        self.charge(Category::HydroKernel, region.num_cells() * 2, 3, 8);
    }

    fn viscosity(&self, patch: &mut Patch, f: &Fields, dx: (f64, f64)) {
        let region = ComputeRegion::Grown(1).cell_box(patch.cell_box());
        let mut datas =
            patch.data_many_mut(&[f.viscosity, f.density0, f.soundspeed, f.xvel0, f.yvel0]);
        let (mut outs, ins) = split_out(&mut datas, 1);
        let [(q, qbox)] = &mut outs[..] else { unreachable!() };
        k::viscosity(q, *qbox, ins[0], ins[1], ins[2], ins[3], region, dx);
        self.charge(Category::HydroKernel, region.num_cells(), 5, 15);
    }

    fn calc_dt(&self, patch: &mut Patch, f: &Fields, dx: (f64, f64), cfl: f64) -> f64 {
        let region = patch.cell_box();
        let mut datas = patch.data_many_mut(&[
            f.density0,
            f.pressure,
            f.viscosity,
            f.soundspeed,
            f.xvel0,
            f.yvel0,
        ]);
        let (_, ins) = split_out(&mut datas, 0);
        let dt = k::calc_dt(ins[0], ins[1], ins[2], ins[3], ins[4], ins[5], region, dx, cfl);
        self.charge(Category::Timestep, region.num_cells(), 6, 20);
        dt
    }

    fn pdv(&self, patch: &mut Patch, f: &Fields, dx: (f64, f64), dt: f64, predict: bool) {
        let region = ComputeRegion::Grown(1).cell_box(patch.cell_box());
        let dt_eff = if predict { 0.5 * dt } else { dt };
        {
            let mut datas = patch.data_many_mut(&[
                f.energy1,
                f.energy0,
                f.density0,
                f.pressure,
                f.viscosity,
                f.xvel0,
                f.xvel1,
                f.yvel0,
                f.yvel1,
            ]);
            let (mut outs, ins) = split_out(&mut datas, 1);
            let [(e1, ebox)] = &mut outs[..] else { unreachable!() };
            // The predictor time-averages with the start-of-step
            // velocities themselves (u1 := u0).
            let (u1, v1) = if predict { (ins[4], ins[6]) } else { (ins[5], ins[7]) };
            k::pdv_energy(
                e1, *ebox, ins[0], ins[1], ins[2], ins[3], ins[4], u1, ins[6], v1, region, dt_eff,
                dx,
            );
        }
        {
            let mut datas =
                patch.data_many_mut(&[f.density1, f.density0, f.xvel0, f.xvel1, f.yvel0, f.yvel1]);
            let (mut outs, ins) = split_out(&mut datas, 1);
            let [(r1, rbox)] = &mut outs[..] else { unreachable!() };
            let (u1, v1) = if predict { (ins[1], ins[3]) } else { (ins[2], ins[4]) };
            k::pdv_density(r1, *rbox, ins[0], ins[1], u1, ins[3], v1, region, dt_eff, dx);
        }
        self.charge(Category::HydroKernel, region.num_cells() * 2, 9, 30);
    }

    fn revert(&self, patch: &mut Patch, f: &Fields) {
        let region = ComputeRegion::Grown(1).cell_box(patch.cell_box());
        for (dst, src) in [(f.density1, f.density0), (f.energy1, f.energy0)] {
            let mut datas = patch.data_many_mut(&[dst, src]);
            let (mut outs, ins) = split_out(&mut datas, 1);
            let [(d, dbox)] = &mut outs[..] else { unreachable!() };
            k::copy_field(d, *dbox, ins[0], region);
        }
        self.charge(Category::HydroKernel, region.num_cells() * 2, 2, 0);
    }

    fn accelerate(&self, patch: &mut Patch, f: &Fields, dx: (f64, f64), dt: f64) {
        let region = Centring::Node.data_box(patch.cell_box());
        for (axis, (v1, v0)) in [(0usize, (f.xvel1, f.xvel0)), (1, (f.yvel1, f.yvel0))] {
            let mut datas = patch.data_many_mut(&[v1, v0, f.density0, f.pressure, f.viscosity]);
            let (mut outs, ins) = split_out(&mut datas, 1);
            let [(out, nbox)] = &mut outs[..] else { unreachable!() };
            k::accelerate(out, *nbox, ins[0], ins[1], ins[2], ins[3], region, dt, dx, axis);
        }
        self.charge(Category::HydroKernel, region.num_cells() * 2, 5, 20);
    }

    fn flux_calc(&self, patch: &mut Patch, f: &Fields, dx: (f64, f64), dt: f64) {
        let ghost = patch.cell_box().grow(IntVector::uniform(GHOSTS));
        for (axis, (flux, v0, v1)) in
            [(0usize, (f.vol_flux_x, f.xvel0, f.xvel1)), (1, (f.vol_flux_y, f.yvel0, f.yvel1))]
        {
            let region = Centring::Side(axis).data_box(ghost);
            let mut datas = patch.data_many_mut(&[flux, v0, v1]);
            let (mut outs, ins) = split_out(&mut datas, 1);
            let [(out, sbox)] = &mut outs[..] else { unreachable!() };
            k::flux_calc(out, *sbox, ins[0], ins[1], region, dt, dx, axis);
        }
        self.charge(Category::HydroKernel, ghost.num_cells() * 2, 3, 6);
    }

    fn advec_cell(&self, patch: &mut Patch, f: &Fields, dx: (f64, f64), dir: usize, sweep: usize) {
        let interior = patch.cell_box();
        let ghost = ComputeRegion::GhostBox.cell_box(interior);
        let mass_flux = if dir == 0 { f.mass_flux_x } else { f.mass_flux_y };
        let vol_flux = if dir == 0 { f.vol_flux_x } else { f.vol_flux_y };
        // Pre and post volumes over the full allocation.
        {
            let mut datas = patch.data_many_mut(&[f.pre_vol, f.vol_flux_x, f.vol_flux_y]);
            let (mut outs, ins) = split_out(&mut datas, 1);
            let [(pre, cbox)] = &mut outs[..] else { unreachable!() };
            k::advec_pre_vol(pre, *cbox, ins[0], ins[1], ghost, dir, sweep, dx);
        }
        {
            let mut datas = patch.data_many_mut(&[f.post_vol, f.vol_flux_x, f.vol_flux_y]);
            let (mut outs, ins) = split_out(&mut datas, 1);
            let [(post, cbox)] = &mut outs[..] else { unreachable!() };
            k::advec_post_vol(post, *cbox, ins[0], ins[1], ghost, dir, sweep, dx);
        }
        // Face mass fluxes over all locally computable faces.
        let face_region = Centring::Side(dir).data_box(interior.grow(IntVector::uniform(GHOSTS)));
        {
            let mut datas = patch.data_many_mut(&[mass_flux, vol_flux, f.density1, f.pre_vol]);
            let (mut outs, ins) = split_out(&mut datas, 1);
            let [(mf, sbox)] = &mut outs[..] else { unreachable!() };
            let region = face_region.intersect(*sbox);
            k::advec_mass_flux(mf, *sbox, ins[0], ins[1], ins[2], region, dir);
        }
        // Energy fluxes (cell-shaped, indexed by the face's low cell).
        let ef_region = interior.grow(IntVector::ONE);
        {
            let mut datas =
                patch.data_many_mut(&[f.ener_flux, mass_flux, f.energy1, f.density1, f.pre_vol]);
            let (mut outs, ins) = split_out(&mut datas, 1);
            let [(ef, cbox)] = &mut outs[..] else { unreachable!() };
            k::advec_ener_flux(ef, *cbox, ins[0], ins[1], ins[2], ins[3], ef_region, dir);
        }
        // Updates: energy first (it needs the pre-advection density).
        {
            // energy1/density1 are both inputs (old values) and outputs.
            // CloverLeaf reads and writes them in the same loop — safe
            // there because each cell only uses its own old value. The
            // shared kernels take distinct views, so stage the old
            // values in scratch copies.
            let old_e: Vec<f64>;
            let old_r: Vec<f64>;
            let ebox;
            {
                let d = patch.host::<f64>(f.energy1);
                old_e = d.as_slice().to_vec();
                ebox = d.data_box();
                old_r = patch.host::<f64>(f.density1).as_slice().to_vec();
            }
            let e_old = k::View::new(&old_e, ebox);
            let r_old = k::View::new(&old_r, ebox);
            {
                let mut datas =
                    patch.data_many_mut(&[f.energy1, f.pre_vol, mass_flux, f.ener_flux]);
                let (mut outs, ins) = split_out(&mut datas, 1);
                let [(e1, cbox)] = &mut outs[..] else { unreachable!() };
                k::advec_cell_energy(
                    e1, *cbox, e_old, r_old, ins[0], ins[1], ins[2], interior, dir,
                );
            }
            {
                let mut datas = patch.data_many_mut(&[f.density1, f.pre_vol, mass_flux, vol_flux]);
                let (mut outs, ins) = split_out(&mut datas, 1);
                let [(r1, cbox)] = &mut outs[..] else { unreachable!() };
                k::advec_cell_density(r1, *cbox, r_old, ins[0], ins[1], ins[2], interior, dir);
            }
        }
        self.charge(Category::HydroKernel, ghost.num_cells() * 6, 8, 40);
    }

    fn advec_mom(&self, patch: &mut Patch, f: &Fields, _dx: (f64, f64), dir: usize, _sweep: usize) {
        let interior = patch.cell_box();
        let node_region = Centring::Node.data_box(interior.grow(IntVector::ONE));
        let mass_flux = if dir == 0 { f.mass_flux_x } else { f.mass_flux_y };
        {
            let mut datas = patch.data_many_mut(&[f.node_flux, mass_flux]);
            let (mut outs, ins) = split_out(&mut datas, 1);
            let [(nf, nbox)] = &mut outs[..] else { unreachable!() };
            k::mom_node_flux(nf, *nbox, ins[0], node_region, dir);
        }
        {
            let mut datas = patch.data_many_mut(&[f.node_mass_post, f.density1, f.post_vol]);
            let (mut outs, ins) = split_out(&mut datas, 1);
            let [(nmp, nbox)] = &mut outs[..] else { unreachable!() };
            k::mom_node_mass_post(nmp, *nbox, ins[0], ins[1], node_region);
        }
        {
            let mut datas = patch.data_many_mut(&[f.node_mass_pre, f.node_mass_post, f.node_flux]);
            let (mut outs, ins) = split_out(&mut datas, 1);
            let [(nmp, nbox)] = &mut outs[..] else { unreachable!() };
            k::mom_node_mass_pre(nmp, *nbox, ins[0], ins[1], node_region, dir);
        }
        // Advect each velocity component.
        let vel_region = Centring::Node.data_box(interior);
        for vel in [f.xvel1, f.yvel1] {
            {
                let mut datas =
                    patch.data_many_mut(&[f.mom_flux, vel, f.node_flux, f.node_mass_pre]);
                let (mut outs, ins) = split_out(&mut datas, 1);
                let [(mf, nbox)] = &mut outs[..] else { unreachable!() };
                k::mom_flux(mf, *nbox, ins[0], ins[1], ins[2], node_region, dir);
            }
            {
                let old: Vec<f64>;
                let vbox;
                {
                    let d = patch.host::<f64>(vel);
                    old = d.as_slice().to_vec();
                    vbox = d.data_box();
                }
                let v_old = k::View::new(&old, vbox);
                let mut datas =
                    patch.data_many_mut(&[vel, f.mom_flux, f.node_mass_pre, f.node_mass_post]);
                let (mut outs, ins) = split_out(&mut datas, 1);
                let [(v1, nbox)] = &mut outs[..] else { unreachable!() };
                k::mom_vel_update(v1, *nbox, v_old, ins[0], ins[1], ins[2], vel_region, dir);
            }
        }
        self.charge(Category::HydroKernel, node_region.num_cells() * 7, 7, 30);
    }

    fn reset(&self, patch: &mut Patch, f: &Fields) {
        let region = ComputeRegion::Interior.cell_box(patch.cell_box());
        let node_region = Centring::Node.data_box(patch.cell_box());
        for (dst, src, reg) in [
            (f.density0, f.density1, region),
            (f.energy0, f.energy1, region),
            (f.xvel0, f.xvel1, node_region),
            (f.yvel0, f.yvel1, node_region),
        ] {
            let mut datas = patch.data_many_mut(&[dst, src]);
            let (mut outs, ins) = split_out(&mut datas, 1);
            let [(d, dbox)] = &mut outs[..] else { unreachable!() };
            k::copy_field(d, *dbox, ins[0], reg);
        }
        self.charge(Category::HydroKernel, region.num_cells() * 4, 2, 0);
    }

    fn flag_cells(&self, patch: &Patch, f: &Fields, thresholds: &FlagThresholds) -> TagBitmap {
        let region = patch.cell_box();
        let rho = patch.host::<f64>(f.density0);
        let e = patch.host::<f64>(f.energy0);
        let mut tags = vec![0i32; region.num_cells() as usize];
        k::flag_cells(
            &mut tags,
            k::View::new(rho.as_slice(), rho.data_box()),
            k::View::new(e.as_slice(), e.data_box()),
            region,
            thresholds.density,
            thresholds.energy,
        );
        self.charge(Category::Regrid, region.num_cells(), 3, 10);
        TagBitmap::compress(region, &tags)
    }

    fn field_summary(&self, patch: &Patch, f: &Fields, dx: (f64, f64), region: GBox) -> Summary {
        let region = region.intersect(patch.cell_box());
        let view = |v: VariableId| {
            let d = patch.host::<f64>(v);
            k::View::new(d.as_slice(), d.data_box())
        };
        self.charge(Category::Other, region.num_cells(), 5, 15);
        k::field_summary(
            view(f.density0),
            view(f.energy0),
            view(f.pressure),
            view(f.xvel0),
            view(f.yvel0),
            region,
            dx,
        )
    }
}
