//! CleverLeaf: explicit compressible-Euler shock hydrodynamics with AMR.
//!
//! This crate reproduces the application layer of the paper (Section
//! IV-C): the CloverLeaf staggered-grid Lagrangian–Eulerian scheme for
//! the 2D Euler equations, packaged as patch-local "black box"
//! integrators behind the [`PatchIntegrator`] trait — the paper's
//! Figure 6 structure, where the hierarchy/level drivers are oblivious
//! to whether a patch advances on the CPU ([`HostPatchIntegrator`]) or
//! on the resident GPU ([`DevicePatchIntegrator`]).
//!
//! The timestep follows CloverLeaf's `hydro` loop:
//!
//! 1. `ideal_gas` (EOS) + artificial `viscosity` + `calc_dt`
//!    (the only global reduction);
//! 2. predictor `pdv` → predicted EOS → `revert` → `accelerate`
//!    → corrector `pdv`;
//! 3. `flux_calc`, then directionally split second-order (van Leer)
//!    advection of mass/energy (`advec_cell`) and momentum
//!    (`advec_mom`), alternating sweep order each step;
//! 4. `reset` (copy new state to old).
//!
//! [`HydroSim`] drives the whole hierarchy with synchronised
//! timestepping (one global dt, all levels advanced in lockstep),
//! halo fills via the framework's refine schedules, fine→coarse
//! synchronisation (volume-weighted density, mass-weighted energy,
//! node-injected velocities) and periodic regridding driven by the
//! gradient flagging heuristic.
//!
//! Deviation from CloverLeaf, documented per `DESIGN.md`: the
//! artificial viscosity is the classic von Neumann–Richtmyer
//! quadratic+linear form rather than CloverLeaf's tensor-limited
//! variant — same role (shock spreading over ~2 cells), same memory
//! traffic, simpler coefficients.

pub mod batched;
pub mod boundary;
pub mod checkpoint;
pub mod copyback_integrator;
pub mod device_integrator;
pub mod host_integrator;
pub mod integrator;
pub mod kernels;
pub mod output;
pub mod resilience;
pub mod state;

pub use boundary::ReflectiveBoundary;
pub use copyback_integrator::CopyBackPatchIntegrator;
pub use device_integrator::DevicePatchIntegrator;
pub use host_integrator::HostPatchIntegrator;
pub use integrator::{HydroConfig, HydroSim, Placement, SimError, StepStats};
pub use rbamr_amr::MetadataMode;
pub use resilience::{RecoveryPolicy, RecoveryStats, ResilienceError, ResilientSim, SimSpec};
pub use state::{Fields, FlagThresholds, PatchIntegrator, RegionInit, Summary};
