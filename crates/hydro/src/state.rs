//! Field registry and the patch-integrator interface.

use rbamr_amr::regrid::CellTagger;
use rbamr_amr::{Patch, PatchHierarchy, TagBitmap, VariableId, VariableRegistry};
use rbamr_geometry::{Centring, GBox, IntVector};

/// Ghost width used by every hydro field (CloverLeaf's halo depth).
pub const GHOSTS: i64 = 2;

/// The registered hydro fields. CloverLeaf's field set: double-buffered
/// density/energy and node velocities, EOS outputs, face fluxes and the
/// advection work arrays.
#[derive(Clone, Copy, Debug)]
pub struct Fields {
    /// Cell density at step start.
    pub density0: VariableId,
    /// Cell density, working copy.
    pub density1: VariableId,
    /// Cell specific internal energy at step start.
    pub energy0: VariableId,
    /// Cell energy, working copy.
    pub energy1: VariableId,
    /// Cell pressure (EOS output).
    pub pressure: VariableId,
    /// Cell artificial viscosity.
    pub viscosity: VariableId,
    /// Cell sound speed (EOS output).
    pub soundspeed: VariableId,
    /// Node x-velocity at step start.
    pub xvel0: VariableId,
    /// Node x-velocity, working copy.
    pub xvel1: VariableId,
    /// Node y-velocity at step start.
    pub yvel0: VariableId,
    /// Node y-velocity, working copy.
    pub yvel1: VariableId,
    /// Volume flux through x-faces.
    pub vol_flux_x: VariableId,
    /// Volume flux through y-faces.
    pub vol_flux_y: VariableId,
    /// Mass flux through x-faces.
    pub mass_flux_x: VariableId,
    /// Mass flux through y-faces.
    pub mass_flux_y: VariableId,
    /// Cell work array: pre-advection volume.
    pub pre_vol: VariableId,
    /// Cell work array: post-advection volume.
    pub post_vol: VariableId,
    /// Cell work array: energy flux.
    pub ener_flux: VariableId,
    /// Node work array: nodal mass flux.
    pub node_flux: VariableId,
    /// Node work array: nodal mass after advection.
    pub node_mass_post: VariableId,
    /// Node work array: nodal mass before advection.
    pub node_mass_pre: VariableId,
    /// Node work array: advected velocity / momentum flux.
    pub mom_flux: VariableId,
}

impl Fields {
    /// Register every hydro field on `reg` with the standard ghost
    /// width and centrings.
    pub fn register(reg: &mut VariableRegistry) -> Fields {
        let g = IntVector::uniform(GHOSTS);
        let cell = |reg: &mut VariableRegistry, name: &str| reg.register(name, Centring::Cell, g);
        let node = |reg: &mut VariableRegistry, name: &str| reg.register(name, Centring::Node, g);
        Fields {
            density0: cell(reg, "density0"),
            density1: cell(reg, "density1"),
            energy0: cell(reg, "energy0"),
            energy1: cell(reg, "energy1"),
            pressure: cell(reg, "pressure"),
            viscosity: cell(reg, "viscosity"),
            soundspeed: cell(reg, "soundspeed"),
            xvel0: node(reg, "xvel0"),
            xvel1: node(reg, "xvel1"),
            yvel0: node(reg, "yvel0"),
            yvel1: node(reg, "yvel1"),
            vol_flux_x: reg.register("vol_flux_x", Centring::Side(0), g),
            vol_flux_y: reg.register("vol_flux_y", Centring::Side(1), g),
            mass_flux_x: reg.register("mass_flux_x", Centring::Side(0), g),
            mass_flux_y: reg.register("mass_flux_y", Centring::Side(1), g),
            pre_vol: cell(reg, "pre_vol"),
            post_vol: cell(reg, "post_vol"),
            ener_flux: cell(reg, "ener_flux"),
            node_flux: node(reg, "node_flux"),
            node_mass_post: node(reg, "node_mass_post"),
            node_mass_pre: node(reg, "node_mass_pre"),
            mom_flux: node(reg, "mom_flux"),
        }
    }

    /// The state fields that carry the solution between steps (filled,
    /// synchronised and transferred at regrid).
    pub fn state_fields(&self) -> [VariableId; 6] {
        [self.density0, self.energy0, self.xvel0, self.yvel0, self.pressure, self.viscosity]
    }
}

/// One rectangular initial-condition region: the CloverLeaf "state"
/// input block.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RegionInit {
    /// Physical region `[x0, x1) x [y0, y1)`; cells whose centre falls
    /// inside take this state. Later regions override earlier ones.
    pub rect: (f64, f64, f64, f64),
    /// Density.
    pub density: f64,
    /// Specific internal energy.
    pub energy: f64,
    /// Initial x velocity.
    pub xvel: f64,
    /// Initial y velocity.
    pub yvel: f64,
}

/// Gradient-flagging thresholds (the CleverLeaf heuristic: refine where
/// relative density/energy jumps exceed the threshold).
#[derive(Clone, Copy, Debug)]
pub struct FlagThresholds {
    /// Relative density jump across a cell that triggers refinement.
    pub density: f64,
    /// Relative energy jump across a cell that triggers refinement.
    pub energy: f64,
}

impl Default for FlagThresholds {
    fn default() -> Self {
        Self { density: 0.08, energy: 0.08 }
    }
}

/// Conserved/diagnostic totals over a region (CloverLeaf's
/// `field_summary`).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Summary {
    /// Total volume.
    pub volume: f64,
    /// Total mass `Σ ρ V`.
    pub mass: f64,
    /// Total internal energy `Σ ρ e V`.
    pub internal_energy: f64,
    /// Total kinetic energy `Σ ½ ρ |u|² V` (cell-averaged node
    /// velocities).
    pub kinetic_energy: f64,
    /// Volume-weighted pressure integral.
    pub pressure: f64,
}

impl Summary {
    /// Sum of two summaries.
    pub fn merged(&self, o: &Summary) -> Summary {
        Summary {
            volume: self.volume + o.volume,
            mass: self.mass + o.mass,
            internal_energy: self.internal_energy + o.internal_energy,
            kinetic_energy: self.kinetic_energy + o.kinetic_energy,
            pressure: self.pressure + o.pressure,
        }
    }

    /// Total energy (internal + kinetic).
    pub fn total_energy(&self) -> f64 {
        self.internal_energy + self.kinetic_energy
    }
}

/// The per-patch black box of the paper's Figure 6: every numerical
/// phase of the CloverLeaf step, on one patch. Two implementations
/// exist — host and device — and the level/hierarchy drivers never know
/// which they hold.
pub trait PatchIntegrator: Send + Sync {
    /// Implementation name ("host" / "device").
    fn name(&self) -> &'static str;

    /// Set the initial state from region definitions (the sanctioned
    /// initialisation-time full-array transfer on the device path).
    fn init_regions(
        &self,
        patch: &mut Patch,
        f: &Fields,
        origin: (f64, f64),
        dx: (f64, f64),
        regions: &[RegionInit],
        gamma: f64,
    );

    /// Equation of state: pressure and sound speed from density/energy
    /// (`predict` selects the working copies).
    fn ideal_gas(&self, patch: &mut Patch, f: &Fields, gamma: f64, predict: bool);

    /// Artificial viscosity from velocity gradients.
    fn viscosity(&self, patch: &mut Patch, f: &Fields, dx: (f64, f64));

    /// Per-patch stable timestep (CFL + divergence constraints).
    fn calc_dt(&self, patch: &mut Patch, f: &Fields, dx: (f64, f64), cfl: f64) -> f64;

    /// PdV energy/density update (predictor: half dt with old
    /// velocities; corrector: full dt with averaged velocities).
    fn pdv(&self, patch: &mut Patch, f: &Fields, dx: (f64, f64), dt: f64, predict: bool);

    /// Restore working density/energy to step-start values.
    fn revert(&self, patch: &mut Patch, f: &Fields);

    /// Node velocity update from pressure and viscosity gradients.
    fn accelerate(&self, patch: &mut Patch, f: &Fields, dx: (f64, f64), dt: f64);

    /// Face volume fluxes from time-averaged node velocities.
    fn flux_calc(&self, patch: &mut Patch, f: &Fields, dx: (f64, f64), dt: f64);

    /// Directionally split cell advection (density & energy). `dir` is
    /// the sweep axis; `sweep` is 1 or 2 within the step.
    fn advec_cell(&self, patch: &mut Patch, f: &Fields, dx: (f64, f64), dir: usize, sweep: usize);

    /// Momentum advection along `dir` for both velocity components.
    /// `sweep` as in [`PatchIntegrator::advec_cell`].
    fn advec_mom(&self, patch: &mut Patch, f: &Fields, dx: (f64, f64), dir: usize, sweep: usize);

    /// Copy the advanced state back to the step-start fields.
    fn reset(&self, patch: &mut Patch, f: &Fields);

    /// Evaluate the refinement heuristic; returns the compressed tag
    /// bitmap (the Section IV-C transfer format).
    fn flag_cells(&self, patch: &Patch, f: &Fields, thresholds: &FlagThresholds) -> TagBitmap;

    /// Conservation diagnostics over `region` (clipped to the patch
    /// interior). The region parameter lets the hierarchy driver exclude
    /// coarse cells covered by a finer level.
    fn field_summary(&self, patch: &Patch, f: &Fields, dx: (f64, f64), region: GBox) -> Summary;
}

/// [`CellTagger`] adapter running the integrator's flagging heuristic,
/// excluding cells already covered by a finer level (their features are
/// tracked there).
pub struct HydroTagger<'a> {
    /// The patch integrator evaluating the heuristic.
    pub integrator: &'a dyn PatchIntegrator,
    /// The field registry.
    pub fields: &'a Fields,
    /// Flagging thresholds.
    pub thresholds: FlagThresholds,
}

impl CellTagger for HydroTagger<'_> {
    fn tag_cells(&self, hierarchy: &PatchHierarchy, level: usize, _time: f64) -> Vec<TagBitmap> {
        hierarchy
            .level(level)
            .local()
            .iter()
            .map(|p| self.integrator.flag_cells(p, self.fields, &self.thresholds))
            .collect()
    }
}

/// Region of cells a kernel computes, relative to the patch interior.
/// See the phase plan in [`crate::integrator`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ComputeRegion {
    /// The patch interior.
    Interior,
    /// Interior grown by `n` cells (clipped to the ghost box).
    Grown(i64),
    /// The full allocation (interior + all ghosts).
    GhostBox,
}

impl ComputeRegion {
    /// Resolve against a patch's interior cell box.
    pub fn cell_box(self, interior: GBox) -> GBox {
        match self {
            ComputeRegion::Interior => interior,
            ComputeRegion::Grown(n) => interior.grow(IntVector::uniform(n.min(GHOSTS))),
            ComputeRegion::GhostBox => interior.grow(IntVector::uniform(GHOSTS)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbamr_amr::HostDataFactory;
    use std::sync::Arc;

    #[test]
    fn registration_creates_all_fields_with_right_centrings() {
        let mut reg = VariableRegistry::new(Arc::new(HostDataFactory::new()));
        let f = Fields::register(&mut reg);
        assert_eq!(reg.len(), 22);
        assert_eq!(reg.get(f.density0).centring, Centring::Cell);
        assert_eq!(reg.get(f.xvel0).centring, Centring::Node);
        assert_eq!(reg.get(f.vol_flux_x).centring, Centring::Side(0));
        assert_eq!(reg.get(f.mass_flux_y).centring, Centring::Side(1));
        for v in reg.iter() {
            assert_eq!(v.ghosts, IntVector::uniform(GHOSTS), "{}", v.name);
        }
    }

    #[test]
    fn compute_regions_resolve() {
        let interior = GBox::from_coords(0, 0, 8, 8);
        assert_eq!(ComputeRegion::Interior.cell_box(interior), interior);
        assert_eq!(ComputeRegion::Grown(1).cell_box(interior), GBox::from_coords(-1, -1, 9, 9));
        assert_eq!(ComputeRegion::GhostBox.cell_box(interior), GBox::from_coords(-2, -2, 10, 10));
        // Grown clamps at the ghost width.
        assert_eq!(ComputeRegion::Grown(99).cell_box(interior), GBox::from_coords(-2, -2, 10, 10));
    }

    #[test]
    fn summary_merge_and_total() {
        let a = Summary {
            volume: 1.0,
            mass: 2.0,
            internal_energy: 3.0,
            kinetic_energy: 4.0,
            pressure: 5.0,
        };
        let b = a;
        let m = a.merged(&b);
        assert_eq!(m.mass, 4.0);
        assert_eq!(m.total_energy(), 14.0);
    }
}
