//! The non-resident "copy-back" patch integrator — the Related Work
//! baseline the paper argues against (Wang et al.: "the required data
//! must be copied from the CPU to the GPU" at the beginning and end of
//! every GPU-based routine).
//!
//! Canonical data notionally lives on the host; every numerical phase
//! round-trips the full arrays it touches over PCIe before and after
//! its kernels. The kernels themselves are the resident
//! [`DevicePatchIntegrator`]'s — physics is identical; only the
//! transfer discipline differs, so the measured gap between
//! [`Placement::Device`](crate::Placement::Device) and
//! [`Placement::DeviceCopyBack`](crate::Placement::DeviceCopyBack) is
//! exactly the residency benefit the paper claims.

use crate::device_integrator::DevicePatchIntegrator;
use crate::state::{Fields, FlagThresholds, PatchIntegrator, RegionInit, Summary};
use rbamr_amr::{Patch, TagBitmap, VariableId};
use rbamr_gpu_amr::DeviceData;
use rbamr_perfmodel::Category;

/// Wraps the resident integrator with per-phase full-array PCIe
/// round trips.
pub struct CopyBackPatchIntegrator {
    inner: DevicePatchIntegrator,
}

impl CopyBackPatchIntegrator {
    /// Create the copy-back integrator.
    pub fn new() -> Self {
        Self { inner: DevicePatchIntegrator::new() }
    }

    /// Round-trip the named variables: D2H of the current values (the
    /// "result copy" of the previous phase in the Wang et al. scheme)
    /// followed by H2D (staging for the next kernel). Both transfers
    /// are real: counted by the device and charged to the clock.
    fn roundtrip(&self, patch: &mut Patch, vars: &[VariableId]) {
        for &var in vars {
            let data = patch
                .data_mut(var)
                .as_any_mut()
                .downcast_mut::<DeviceData<f64>>()
                .expect("copy-back integrator on non-device data");
            let host = data.download_all(Category::HydroKernel);
            data.upload_all(&host, Category::HydroKernel);
        }
    }
}

impl Default for CopyBackPatchIntegrator {
    fn default() -> Self {
        Self::new()
    }
}

impl PatchIntegrator for CopyBackPatchIntegrator {
    fn name(&self) -> &'static str {
        "device-copy-back"
    }

    fn init_regions(
        &self,
        patch: &mut Patch,
        f: &Fields,
        origin: (f64, f64),
        dx: (f64, f64),
        regions: &[RegionInit],
        gamma: f64,
    ) {
        self.inner.init_regions(patch, f, origin, dx, regions, gamma);
    }

    fn ideal_gas(&self, patch: &mut Patch, f: &Fields, gamma: f64, predict: bool) {
        let (rho, e) = if predict { (f.density1, f.energy1) } else { (f.density0, f.energy0) };
        self.roundtrip(patch, &[f.pressure, f.soundspeed, rho, e]);
        self.inner.ideal_gas(patch, f, gamma, predict);
    }

    fn viscosity(&self, patch: &mut Patch, f: &Fields, dx: (f64, f64)) {
        self.roundtrip(patch, &[f.viscosity, f.density0, f.soundspeed, f.xvel0, f.yvel0]);
        self.inner.viscosity(patch, f, dx);
    }

    fn calc_dt(&self, patch: &mut Patch, f: &Fields, dx: (f64, f64), cfl: f64) -> f64 {
        self.roundtrip(
            patch,
            &[f.density0, f.pressure, f.viscosity, f.soundspeed, f.xvel0, f.yvel0],
        );
        self.inner.calc_dt(patch, f, dx, cfl)
    }

    fn pdv(&self, patch: &mut Patch, f: &Fields, dx: (f64, f64), dt: f64, predict: bool) {
        self.roundtrip(
            patch,
            &[
                f.energy1,
                f.density1,
                f.energy0,
                f.density0,
                f.pressure,
                f.viscosity,
                f.xvel0,
                f.xvel1,
                f.yvel0,
                f.yvel1,
            ],
        );
        self.inner.pdv(patch, f, dx, dt, predict);
    }

    fn revert(&self, patch: &mut Patch, f: &Fields) {
        self.roundtrip(patch, &[f.density1, f.energy1, f.density0, f.energy0]);
        self.inner.revert(patch, f);
    }

    fn accelerate(&self, patch: &mut Patch, f: &Fields, dx: (f64, f64), dt: f64) {
        self.roundtrip(
            patch,
            &[f.xvel1, f.yvel1, f.xvel0, f.yvel0, f.density0, f.pressure, f.viscosity],
        );
        self.inner.accelerate(patch, f, dx, dt);
    }

    fn flux_calc(&self, patch: &mut Patch, f: &Fields, dx: (f64, f64), dt: f64) {
        self.roundtrip(patch, &[f.vol_flux_x, f.vol_flux_y, f.xvel0, f.xvel1, f.yvel0, f.yvel1]);
        self.inner.flux_calc(patch, f, dx, dt);
    }

    fn advec_cell(&self, patch: &mut Patch, f: &Fields, dx: (f64, f64), dir: usize, sweep: usize) {
        let mass_flux = if dir == 0 { f.mass_flux_x } else { f.mass_flux_y };
        let vol_flux = if dir == 0 { f.vol_flux_x } else { f.vol_flux_y };
        self.roundtrip(
            patch,
            &[f.density1, f.energy1, mass_flux, vol_flux, f.pre_vol, f.post_vol, f.ener_flux],
        );
        self.inner.advec_cell(patch, f, dx, dir, sweep);
    }

    fn advec_mom(&self, patch: &mut Patch, f: &Fields, dx: (f64, f64), dir: usize, sweep: usize) {
        let mass_flux = if dir == 0 { f.mass_flux_x } else { f.mass_flux_y };
        self.roundtrip(
            patch,
            &[
                f.xvel1,
                f.yvel1,
                f.density1,
                mass_flux,
                f.node_flux,
                f.node_mass_post,
                f.node_mass_pre,
                f.mom_flux,
                f.post_vol,
                f.pre_vol,
            ],
        );
        self.inner.advec_mom(patch, f, dx, dir, sweep);
    }

    fn reset(&self, patch: &mut Patch, f: &Fields) {
        self.roundtrip(
            patch,
            &[f.density0, f.energy0, f.xvel0, f.yvel0, f.density1, f.energy1, f.xvel1, f.yvel1],
        );
        self.inner.reset(patch, f);
    }

    fn flag_cells(&self, patch: &Patch, f: &Fields, thresholds: &FlagThresholds) -> TagBitmap {
        self.inner.flag_cells(patch, f, thresholds)
    }

    fn field_summary(
        &self,
        patch: &Patch,
        f: &Fields,
        dx: (f64, f64),
        region: rbamr_geometry::GBox,
    ) -> Summary {
        self.inner.field_summary(patch, f, dx, region)
    }
}
