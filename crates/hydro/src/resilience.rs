//! Checkpoint-rollback recovery with graceful device degradation — the
//! resilience driver over [`HydroSim`]'s fault-aware stepping.
//!
//! # The recovery state machine
//!
//! ```text
//!            ┌─────────────── Ok ────────────────┐
//!            ▼                                   │
//!   ┌─── STEPPING ── Err(SimError) ──► ROLLBACK ─┘
//!   │  (periodic checkpoint              │ attempts > max_retries
//!   │   every `checkpoint_interval`      ▼
//!   │   committed steps)            RetriesExhausted (typed, on
//!   │                                every rank — the verdict is
//!   │   degrade_after consecutive     collective by construction)
//!   │   Device verdicts:
//!   └── Device → DeviceCopyBack → Host
//! ```
//!
//! Every decision the driver makes — retry, degrade, give up — is a
//! function of the *global* step verdict ([`HydroSim::try_step_capped`]
//! ends in a commit collective), so all ranks walk the state machine in
//! lock-step without any extra coordination.
//!
//! A rollback rebuilds the simulation from its [`SimSpec`] at the
//! current (possibly degraded) placement and restores the last adopted
//! checkpoint; an exponential backoff is charged to the rank's virtual
//! clock between attempts, modelling the wall-clock cost of real
//! retry/degradation cycles. Checkpoint adoption is itself collective:
//! a save spoiled by an injected device fault is discarded on every
//! rank and the previous checkpoint stays live.
//!
//! Degrading `Device → DeviceCopyBack` preserves bitwise physics (the
//! copy-back build runs identical kernels with a different transfer
//! discipline); the final `→ Host` stage trades bitwise identity for
//! survival, which is why it is the last resort.

use crate::integrator::{HydroConfig, HydroSim, Placement, SimError, StepStats};
use crate::state::RegionInit;
use rbamr_amr::restart::Database;
use rbamr_netsim::Comm;
use rbamr_perfmodel::{Category, Clock, Machine};

/// Everything needed to (re)build a [`HydroSim`] from scratch — the
/// constructor arguments of [`HydroSim::new`], kept so a rollback can
/// produce a fresh simulation at any placement.
#[derive(Clone)]
pub struct SimSpec {
    /// The modelled platform.
    pub machine: Machine,
    /// The preferred (undegraded) data placement.
    pub placement: Placement,
    /// Physical domain extent.
    pub extent: (f64, f64),
    /// Level-0 resolution.
    pub coarse_cells: (i64, i64),
    /// Maximum AMR levels.
    pub max_levels: usize,
    /// Refinement ratio.
    pub ratio: i64,
    /// Physics and regridding configuration.
    pub config: HydroConfig,
    /// Initial-condition regions.
    pub regions: Vec<RegionInit>,
    /// This rank.
    pub rank: usize,
    /// Job size.
    pub nranks: usize,
}

impl SimSpec {
    /// Build a fresh simulation at `placement` on `clock`.
    pub fn build(&self, placement: Placement, clock: Clock) -> HydroSim {
        HydroSim::new(
            self.machine.clone(),
            placement,
            clock,
            self.extent,
            self.coarse_cells,
            self.max_levels,
            self.ratio,
            self.config.clone(),
            self.regions.clone(),
            self.rank,
            self.nranks,
        )
    }
}

/// Knobs of the recovery state machine.
#[derive(Clone, Copy, Debug)]
pub struct RecoveryPolicy {
    /// Adopt a checkpoint every this many committed steps (0 disables
    /// periodic checkpoints; the post-initialisation checkpoint is
    /// always taken).
    pub checkpoint_interval: usize,
    /// Consecutive failed attempts before the run gives up with
    /// [`ResilienceError::RetriesExhausted`].
    pub max_retries: usize,
    /// Consecutive `Device`-verdict failures at one placement before
    /// degrading to the next placement in the chain.
    pub degrade_after: usize,
    /// First retry's virtual-clock backoff in seconds; doubles per
    /// consecutive attempt.
    pub backoff_base: f64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        Self { checkpoint_interval: 5, max_retries: 8, degrade_after: 2, backoff_base: 0.5 }
    }
}

/// What recovery has done so far (mirrored on the telemetry counters
/// `recovery.rollbacks`, `recovery.degraded_steps`,
/// `recovery.checkpoints` and `recovery.degradations`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Rollback-and-retry cycles performed.
    pub rollbacks: u64,
    /// Steps committed while running below the preferred placement.
    pub degraded_steps: u64,
    /// Checkpoints adopted (including the initial one).
    pub checkpoints: u64,
    /// Placement degradations taken.
    pub degradations: u64,
}

/// The run is over: recovery could not commit further progress.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ResilienceError {
    /// `max_retries` consecutive attempts failed. The step verdicts
    /// driving this are collective, so every rank reports this error
    /// together, with the same counters.
    RetriesExhausted {
        /// The last committed step (the checkpoint the rollbacks
        /// targeted).
        step: usize,
        /// Consecutive failed attempts.
        attempts: usize,
        /// The final attempt's verdict.
        last: SimError,
    },
}

impl std::fmt::Display for ResilienceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::RetriesExhausted { step, attempts, last } => {
                write!(f, "recovery exhausted after {attempts} attempts at step {step}: {last}")
            }
        }
    }
}

impl std::error::Error for ResilienceError {}

/// A [`HydroSim`] wrapped in checkpoint-rollback recovery.
pub struct ResilientSim {
    spec: SimSpec,
    policy: RecoveryPolicy,
    /// Current placement — `spec.placement` until degradation.
    placement: Placement,
    sim: HydroSim,
    clock: Clock,
    /// The last adopted (collectively committed) checkpoint.
    checkpoint: Database,
    /// The step the checkpoint was taken at.
    checkpoint_step: usize,
    /// Consecutive failed attempts since the last committed step.
    attempts: usize,
    /// Consecutive `Device` verdicts at the current placement.
    device_strikes: usize,
    stats: RecoveryStats,
    recorder: rbamr_telemetry::Recorder,
}

impl ResilientSim {
    /// Build, initialise and take the first checkpoint, retrying under
    /// the policy if initialisation itself is hit by faults.
    ///
    /// # Errors
    /// [`ResilienceError::RetriesExhausted`] when initialisation cannot
    /// be committed within the retry budget.
    pub fn new(
        spec: SimSpec,
        policy: RecoveryPolicy,
        recorder: rbamr_telemetry::Recorder,
        comm: Option<&Comm>,
    ) -> Result<Self, ResilienceError> {
        let clock = comm.map_or_else(Clock::new, |c| c.clock().clone());
        let mut this = Self {
            placement: spec.placement,
            sim: spec.build(spec.placement, clock.clone()),
            spec,
            policy,
            clock,
            checkpoint: Database::new(),
            checkpoint_step: 0,
            attempts: 0,
            device_strikes: 0,
            stats: RecoveryStats::default(),
            recorder,
        };
        this.wire(comm);
        loop {
            let attempt =
                this.sim.try_initialize(comm).and_then(|()| this.try_adopt_checkpoint(comm));
            match attempt {
                Ok(()) => {
                    this.attempts = 0;
                    this.device_strikes = 0;
                    return Ok(this);
                }
                // No checkpoint exists yet, so "rollback" is a clean
                // rebuild-and-reinitialise at the (possibly degraded)
                // placement.
                Err(e) => {
                    this.note_failure(e)?;
                    this.stats.rollbacks += 1;
                    this.recorder.count("recovery.rollbacks", 1);
                    this.rebuild(comm);
                }
            }
        }
    }

    /// The wrapped simulation (diagnostics).
    pub fn sim(&self) -> &HydroSim {
        &self.sim
    }

    /// The current placement (shows degradation).
    pub fn placement(&self) -> Placement {
        self.placement
    }

    /// What recovery has done so far.
    pub fn stats(&self) -> RecoveryStats {
        self.stats
    }

    /// Advance one step past the furthest committed point,
    /// transparently rolling back, replaying and retrying (and
    /// degrading the placement) on faults. A rollback rewinds the
    /// simulation to the last checkpoint, so this keeps stepping until
    /// the replay has caught back up — the returned stats are always
    /// for a step the simulation had never committed before.
    ///
    /// # Errors
    /// [`ResilienceError::RetriesExhausted`] when the retry budget is
    /// spent; the verdict is identical on every rank.
    pub fn step(&mut self, comm: Option<&Comm>) -> Result<StepStats, ResilienceError> {
        let goal = self.sim.steps_taken() + 1;
        loop {
            match self.sim.try_step_capped(comm, None) {
                Ok(stats) => {
                    self.attempts = 0;
                    self.device_strikes = 0;
                    if self.placement != self.spec.placement {
                        self.stats.degraded_steps += 1;
                        self.recorder.count("recovery.degraded_steps", 1);
                    }
                    if self.policy.checkpoint_interval > 0
                        && self.sim.steps_taken().is_multiple_of(self.policy.checkpoint_interval)
                    {
                        // A spoiled save is discarded collectively and
                        // the previous checkpoint stays live — not a
                        // step failure.
                        let _ = self.try_adopt_checkpoint(comm);
                    }
                    if self.sim.steps_taken() >= goal {
                        return Ok(stats);
                    }
                }
                Err(e) => self.recover(e, comm)?,
            }
        }
    }

    /// Run `n` committed steps.
    ///
    /// # Errors
    /// As [`ResilientSim::step`].
    pub fn run_steps(
        &mut self,
        n: usize,
        comm: Option<&Comm>,
    ) -> Result<StepStats, ResilienceError> {
        assert!(n > 0, "run_steps: need at least one step");
        let mut last = self.step(comm)?;
        for _ in 1..n {
            last = self.step(comm)?;
        }
        Ok(last)
    }

    /// Attach the rank's fault injector and recorder to a (re)built
    /// simulation.
    fn wire(&mut self, comm: Option<&Comm>) {
        self.sim.set_recorder(self.recorder.clone());
        if let (Some(device), Some(injector)) =
            (self.sim.device(), comm.and_then(|c| c.fault_injector()))
        {
            device.set_fault_injector(std::sync::Arc::clone(injector));
        }
    }

    /// Rebuild a fresh simulation at the current placement, on the same
    /// clock (backoff and retry time keep accumulating on one
    /// timeline).
    fn rebuild(&mut self, comm: Option<&Comm>) {
        self.sim = self.spec.build(self.placement, self.clock.clone());
        self.wire(comm);
    }

    /// Save a checkpoint and adopt it collectively: a save spoiled by a
    /// device fault on *any* rank is discarded on *every* rank.
    fn try_adopt_checkpoint(&mut self, comm: Option<&Comm>) -> Result<(), SimError> {
        let db = self.sim.save_checkpoint();
        let mut local: Option<SimError> = None;
        if let Some(device) = self.sim.device() {
            if let Some(e) = device.take_injected_fault() {
                local = Some(e.into());
            }
        }
        self.sim.commit(comm, local)?;
        self.checkpoint = db;
        self.checkpoint_step = self.sim.steps_taken();
        self.stats.checkpoints += 1;
        self.recorder.count("recovery.checkpoints", 1);
        Ok(())
    }

    /// Book-keep one failed attempt: count it, give up if the budget is
    /// spent, degrade the placement on repeated device verdicts, and
    /// charge the exponential backoff to the virtual clock.
    fn note_failure(&mut self, e: SimError) -> Result<(), ResilienceError> {
        self.attempts += 1;
        if self.attempts > self.policy.max_retries {
            return Err(ResilienceError::RetriesExhausted {
                step: self.checkpoint_step,
                attempts: self.attempts - 1,
                last: e,
            });
        }
        if matches!(e, SimError::Device { .. }) {
            self.device_strikes += 1;
            if self.device_strikes >= self.policy.degrade_after {
                let next = match self.placement {
                    Placement::Device => Some(Placement::DeviceCopyBack),
                    Placement::DeviceCopyBack => Some(Placement::Host),
                    Placement::Host => None,
                };
                if let Some(next) = next {
                    self.placement = next;
                    self.device_strikes = 0;
                    self.stats.degradations += 1;
                    self.recorder.count("recovery.degradations", 1);
                }
            }
        } else {
            self.device_strikes = 0;
        }
        let backoff = self.policy.backoff_base * (1u64 << (self.attempts - 1).min(16)) as f64;
        self.clock.advance(Category::Other, backoff);
        Ok(())
    }

    /// One rollback-and-retry cycle: book-keep the failure, rebuild at
    /// the current placement and restore the last checkpoint. Restore
    /// is fault-aware and its verdict is made collective here, so a
    /// faulted restore simply counts as the next failed attempt on
    /// every rank.
    fn recover(&mut self, e: SimError, comm: Option<&Comm>) -> Result<(), ResilienceError> {
        self.note_failure(e)?;
        self.stats.rollbacks += 1;
        self.recorder.count("recovery.rollbacks", 1);
        self.rebuild(comm);
        let restored = self.sim.try_restore_checkpoint(&self.checkpoint, comm);
        match self.sim.commit(comm, restored.err().map(SimError::from)) {
            Ok(()) => Ok(()),
            Err(e2) => self.recover(e2, comm),
        }
    }
}
