//! Checkpoint-rollback recovery with graceful device degradation — the
//! resilience driver over [`HydroSim`]'s fault-aware stepping.
//!
//! # The recovery state machine
//!
//! ```text
//!            ┌─────────────── Ok ────────────────┐
//!            ▼                                   │
//!   ┌─── STEPPING ── Err(SimError) ──► ROLLBACK ─┘
//!   │  (periodic checkpoint              │ attempts > max_retries
//!   │   every `checkpoint_interval`      ▼
//!   │   committed steps)            RetriesExhausted (typed, on
//!   │                                every rank — the verdict is
//!   │   degrade_after consecutive     collective by construction)
//!   │   Device verdicts:
//!   └── Device → DeviceCopyBack → Host
//! ```
//!
//! Every decision the driver makes — retry, degrade, give up — is a
//! function of the *global* step verdict ([`HydroSim::try_step_capped`]
//! ends in a commit collective), so all ranks walk the state machine in
//! lock-step without any extra coordination.
//!
//! A rollback rebuilds the simulation from its [`SimSpec`] at the
//! current (possibly degraded) placement and restores the last adopted
//! checkpoint; an exponential backoff is charged to the rank's virtual
//! clock between attempts, modelling the wall-clock cost of real
//! retry/degradation cycles. Checkpoint adoption is itself collective:
//! a save spoiled by an injected device fault is discarded on every
//! rank and the previous checkpoint stays live.
//!
//! Degrading `Device → DeviceCopyBack` preserves bitwise physics (the
//! copy-back build runs identical kernels with a different transfer
//! discipline); the final `→ Host` stage trades bitwise identity for
//! survival, which is why it is the last resort.
//!
//! # Elastic shrink on permanent rank loss
//!
//! A [`rbamr_netsim::FaultKind::RankKill`] fault kills a rank for good:
//! the victim marks itself dead in the network and returns
//! [`ResilienceError::Killed`]. Survivors never poll a timeout —
//! detection is structural. The dead rank's frames black-hole and the
//! next collective completes among survivors with a *revoked* verdict,
//! so the survivors' step commit fails symmetrically and they all enter
//! [`recovery`](ResilientSim::step) together. There they observe the
//! grown dead set, rebuild the communicator at the surviving rank count
//! ([`Comm::shrink`] — a barrier whose completion freezes the accepted
//! dead set, so every survivor derives the same view), re-derive their
//! logical rank, and roll back to the last adopted checkpoint. Because
//! checkpoints are rank-count-independent global manifests, the restore
//! re-partitions every patch over the survivor set and the replay is
//! bitwise-identical to a fault-free run at that rank count. A loss
//! that would leave fewer than [`RecoveryPolicy::min_ranks`] survivors
//! fails fast with [`ResilienceError::InsufficientRanks`] on every
//! survivor.

use crate::integrator::{HydroConfig, HydroSim, Placement, SimError, StepStats};
use crate::state::RegionInit;
use rbamr_amr::restart::Database;
use rbamr_netsim::{Comm, FaultKind};
use rbamr_perfmodel::{Category, Clock, Machine};
use std::sync::Arc;

/// Everything needed to (re)build a [`HydroSim`] from scratch — the
/// constructor arguments of [`HydroSim::new`], kept so a rollback can
/// produce a fresh simulation at any placement.
#[derive(Clone)]
pub struct SimSpec {
    /// The modelled platform.
    pub machine: Machine,
    /// The preferred (undegraded) data placement.
    pub placement: Placement,
    /// Physical domain extent.
    pub extent: (f64, f64),
    /// Level-0 resolution.
    pub coarse_cells: (i64, i64),
    /// Maximum AMR levels.
    pub max_levels: usize,
    /// Refinement ratio.
    pub ratio: i64,
    /// Physics and regridding configuration.
    pub config: HydroConfig,
    /// Initial-condition regions.
    pub regions: Vec<RegionInit>,
    /// This rank.
    pub rank: usize,
    /// Job size.
    pub nranks: usize,
}

impl SimSpec {
    /// Build a fresh simulation at `placement` on `clock`.
    pub fn build(&self, placement: Placement, clock: Clock) -> HydroSim {
        HydroSim::new(
            self.machine.clone(),
            placement,
            clock,
            self.extent,
            self.coarse_cells,
            self.max_levels,
            self.ratio,
            self.config.clone(),
            self.regions.clone(),
            self.rank,
            self.nranks,
        )
    }
}

/// Knobs of the recovery state machine.
#[derive(Clone, Copy, Debug)]
pub struct RecoveryPolicy {
    /// Adopt a checkpoint every this many committed steps (0 disables
    /// periodic checkpoints; the post-initialisation checkpoint is
    /// always taken).
    pub checkpoint_interval: usize,
    /// Consecutive failed attempts before the run gives up with
    /// [`ResilienceError::RetriesExhausted`].
    pub max_retries: usize,
    /// Consecutive `Device`-verdict failures at one placement before
    /// degrading to the next placement in the chain.
    pub degrade_after: usize,
    /// First retry's virtual-clock backoff in seconds; doubles per
    /// consecutive attempt. Each charge is scaled by a deterministic
    /// seeded jitter factor in `[0.5, 1.5)` — a pure hash of
    /// `(fault seed, rank, attempt)` — so simulated retry storms
    /// decorrelate across ranks without giving up reproducibility.
    pub backoff_base: f64,
    /// Fewest ranks the job may shrink to after permanent rank losses.
    /// A loss that would leave fewer survivors fails fast with
    /// [`ResilienceError::InsufficientRanks`] on every survivor.
    pub min_ranks: usize,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        Self {
            checkpoint_interval: 5,
            max_retries: 8,
            degrade_after: 2,
            backoff_base: 0.5,
            min_ranks: 1,
        }
    }
}

/// What recovery has done so far (mirrored on the telemetry counters
/// `recovery.rollbacks`, `recovery.degraded_steps`,
/// `recovery.checkpoints` and `recovery.degradations`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Rollback-and-retry cycles performed.
    pub rollbacks: u64,
    /// Steps committed while running below the preferred placement.
    pub degraded_steps: u64,
    /// Checkpoints adopted (including the initial one).
    pub checkpoints: u64,
    /// Placement degradations taken.
    pub degradations: u64,
    /// Peer ranks observed permanently dead (mirrored on
    /// `recovery.rank_losses`).
    pub rank_losses: u64,
    /// Communicator shrinks performed (mirrored on `recovery.shrinks`).
    pub shrinks: u64,
}

/// The run is over: recovery could not commit further progress.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ResilienceError {
    /// `max_retries` consecutive attempts failed. The step verdicts
    /// driving this are collective, so every rank reports this error
    /// together, with the same counters.
    RetriesExhausted {
        /// The last committed step (the checkpoint the rollbacks
        /// targeted).
        step: usize,
        /// Consecutive failed attempts.
        attempts: usize,
        /// The final attempt's verdict.
        last: SimError,
    },
    /// *This* rank was permanently killed by an injected
    /// [`FaultKind::RankKill`]. The rank has already marked itself dead
    /// in the network; it must not communicate again. Survivors do not
    /// see this error — they observe the death structurally and shrink.
    Killed {
        /// The (logical) rank that died.
        rank: usize,
        /// The step the kill fired at.
        at_step: usize,
    },
    /// A permanent loss left fewer survivors than
    /// [`RecoveryPolicy::min_ranks`]; the job cannot shrink further.
    /// The verdict is derived from the frozen post-shrink survivor set,
    /// so every survivor reports it together.
    InsufficientRanks {
        /// Live ranks after the loss.
        survivors: usize,
        /// The configured floor.
        min_ranks: usize,
    },
}

impl std::fmt::Display for ResilienceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::RetriesExhausted { step, attempts, last } => {
                write!(f, "recovery exhausted after {attempts} attempts at step {step}: {last}")
            }
            Self::Killed { rank, at_step } => {
                write!(f, "rank {rank} permanently killed at step {at_step}")
            }
            Self::InsufficientRanks { survivors, min_ranks } => {
                write!(
                    f,
                    "unrecoverable rank loss: {survivors} survivors, policy requires {min_ranks}"
                )
            }
        }
    }
}

impl std::error::Error for ResilienceError {}

/// A [`HydroSim`] wrapped in checkpoint-rollback recovery.
pub struct ResilientSim {
    spec: SimSpec,
    policy: RecoveryPolicy,
    /// Current placement — `spec.placement` until degradation.
    placement: Placement,
    sim: HydroSim,
    clock: Clock,
    /// The last adopted (collectively committed) checkpoint.
    checkpoint: Database,
    /// The step the checkpoint was taken at.
    checkpoint_step: usize,
    /// Consecutive failed attempts since the last committed step.
    attempts: usize,
    /// Consecutive `Device` verdicts at the current placement.
    device_strikes: usize,
    /// The shrunken communicator after permanent rank losses. When
    /// set, it supersedes the caller-supplied comm for every
    /// collective — the caller's handle still addresses the original
    /// job size.
    shrunk: Option<Arc<Comm>>,
    /// Permanent deaths already folded into a shrink.
    accepted_deaths: usize,
    /// Seed for the deterministic backoff jitter (the fault plan's
    /// seed, or 0 without an injector).
    jitter_seed: u64,
    stats: RecoveryStats,
    recorder: rbamr_telemetry::Recorder,
}

/// splitmix64 — the standard 64-bit finalizer, used for the backoff
/// jitter so retry pacing is a pure function of `(seed, rank, attempt)`.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Deterministic jitter factor in `[0.5, 1.5)`.
fn jitter_factor(seed: u64, rank: u64, attempt: u64) -> f64 {
    let h = splitmix64(splitmix64(seed ^ rank.wrapping_mul(0x85EB_CA6B)) ^ attempt);
    0.5 + (h >> 11) as f64 / (1u64 << 53) as f64
}

impl ResilientSim {
    /// Build, initialise and take the first checkpoint, retrying under
    /// the policy if initialisation itself is hit by faults.
    ///
    /// # Errors
    /// [`ResilienceError::RetriesExhausted`] when initialisation cannot
    /// be committed within the retry budget.
    pub fn new(
        spec: SimSpec,
        policy: RecoveryPolicy,
        recorder: rbamr_telemetry::Recorder,
        comm: Option<&Comm>,
    ) -> Result<Self, ResilienceError> {
        let clock = comm.map_or_else(Clock::new, |c| c.clock().clone());
        let mut this = Self {
            placement: spec.placement,
            sim: spec.build(spec.placement, clock.clone()),
            spec,
            policy,
            clock,
            checkpoint: Database::new(),
            checkpoint_step: 0,
            attempts: 0,
            device_strikes: 0,
            shrunk: None,
            accepted_deaths: 0,
            jitter_seed: comm.and_then(|c| c.fault_injector()).map_or(0, |i| i.seed()),
            stats: RecoveryStats::default(),
            recorder,
        };
        this.wire(comm);
        loop {
            let attempt =
                this.sim.try_initialize(comm).and_then(|()| this.try_adopt_checkpoint(comm));
            match attempt {
                Ok(()) => {
                    this.attempts = 0;
                    this.device_strikes = 0;
                    return Ok(this);
                }
                // No checkpoint exists yet, so "rollback" is a clean
                // rebuild-and-reinitialise at the (possibly degraded)
                // placement.
                Err(e) => {
                    this.note_failure(e)?;
                    this.stats.rollbacks += 1;
                    this.recorder.count("recovery.rollbacks", 1);
                    this.rebuild(comm);
                }
            }
        }
    }

    /// The wrapped simulation (diagnostics).
    pub fn sim(&self) -> &HydroSim {
        &self.sim
    }

    /// The current placement (shows degradation).
    pub fn placement(&self) -> Placement {
        self.placement
    }

    /// What recovery has done so far.
    pub fn stats(&self) -> RecoveryStats {
        self.stats
    }

    /// This rank's current logical rank (renumbered by shrinks).
    pub fn rank(&self) -> usize {
        self.spec.rank
    }

    /// The current job size (reduced by shrinks).
    pub fn nranks(&self) -> usize {
        self.spec.nranks
    }

    /// The shrunken communicator, if a permanent rank loss has been
    /// absorbed. Collectives issued by the driver use this in place of
    /// the caller's original-size handle.
    pub fn shrunk_comm(&self) -> Option<&Comm> {
        self.shrunk.as_deref()
    }

    /// Advance one step past the furthest committed point,
    /// transparently rolling back, replaying and retrying (and
    /// degrading the placement) on faults. A rollback rewinds the
    /// simulation to the last checkpoint, so this keeps stepping until
    /// the replay has caught back up — the returned stats are always
    /// for a step the simulation had never committed before.
    ///
    /// # Errors
    /// [`ResilienceError::RetriesExhausted`] when the retry budget is
    /// spent; the verdict is identical on every rank.
    pub fn step(&mut self, comm: Option<&Comm>) -> Result<StepStats, ResilienceError> {
        let goal = self.sim.steps_taken() + 1;
        loop {
            // A shrink may have replaced the communicator; resolve the
            // active one fresh each attempt.
            let active = self.shrunk.clone();
            let cur = active.as_deref().or(comm);
            // RankKill site 1 of 2: occurrence 2s, "top of step s".
            // Every rank evaluates both sites every iteration so the
            // occurrence counters stay aligned across ranks (the rule
            // itself filters by rank).
            self.poll_rank_kill(cur, self.sim.steps_taken())?;
            match self.sim.try_step_capped(cur, None) {
                Ok(stats) => {
                    self.attempts = 0;
                    self.device_strikes = 0;
                    if self.placement != self.spec.placement {
                        self.stats.degraded_steps += 1;
                        self.recorder.count("recovery.degraded_steps", 1);
                    }
                    // RankKill site 2 of 2: occurrence 2s+1, "inside
                    // step s's checkpoint-adoption collective" — the
                    // victim dies here and the survivors' adoption (or
                    // next step) observes it structurally.
                    self.poll_rank_kill(cur, self.sim.steps_taken() - 1)?;
                    if self.policy.checkpoint_interval > 0
                        && self.sim.steps_taken().is_multiple_of(self.policy.checkpoint_interval)
                    {
                        // A spoiled save is discarded collectively and
                        // the previous checkpoint stays live — not a
                        // step failure.
                        let _ = self.try_adopt_checkpoint(cur);
                    }
                    if self.sim.steps_taken() >= goal {
                        return Ok(stats);
                    }
                }
                Err(e) => self.recover(e, comm)?,
            }
        }
    }

    /// Run `n` committed steps.
    ///
    /// # Errors
    /// As [`ResilientSim::step`].
    pub fn run_steps(
        &mut self,
        n: usize,
        comm: Option<&Comm>,
    ) -> Result<StepStats, ResilienceError> {
        assert!(n > 0, "run_steps: need at least one step");
        let mut last = self.step(comm)?;
        for _ in 1..n {
            last = self.step(comm)?;
        }
        Ok(last)
    }

    /// Attach the rank's fault injector and recorder to a (re)built
    /// simulation.
    fn wire(&mut self, comm: Option<&Comm>) {
        self.sim.set_recorder(self.recorder.clone());
        if let (Some(device), Some(injector)) =
            (self.sim.device(), comm.and_then(|c| c.fault_injector()))
        {
            device.set_fault_injector(std::sync::Arc::clone(injector));
        }
    }

    /// Rebuild a fresh simulation at the current placement, on the same
    /// clock (backoff and retry time keep accumulating on one
    /// timeline).
    fn rebuild(&mut self, comm: Option<&Comm>) {
        self.sim = self.spec.build(self.placement, self.clock.clone());
        self.wire(comm);
    }

    /// Save a global checkpoint manifest and adopt it collectively: a
    /// save spoiled by a device or transport fault on *any* rank is
    /// discarded on *every* rank. The adopted manifest is identical on
    /// every rank and rank-count-independent, so it stays restorable
    /// after the job shrinks.
    fn try_adopt_checkpoint(&mut self, comm: Option<&Comm>) -> Result<(), SimError> {
        let mut local: Option<SimError> = None;
        let db = match self.sim.try_save_checkpoint(comm) {
            Ok(db) => Some(db),
            Err(e) => {
                local = Some(e.into());
                None
            }
        };
        if let Some(device) = self.sim.device() {
            if let Some(e) = device.take_injected_fault() {
                local = Some(e.into());
            }
        }
        self.sim.commit(comm, local)?;
        self.checkpoint = db.expect("a committed save produced a manifest");
        self.checkpoint_step = self.sim.steps_taken();
        self.stats.checkpoints += 1;
        self.recorder.count("recovery.checkpoints", 1);
        Ok(())
    }

    /// Book-keep one failed attempt: count it, give up if the budget is
    /// spent, degrade the placement on repeated device verdicts, and
    /// charge the exponential backoff to the virtual clock.
    fn note_failure(&mut self, e: SimError) -> Result<(), ResilienceError> {
        self.attempts += 1;
        if self.attempts > self.policy.max_retries {
            return Err(ResilienceError::RetriesExhausted {
                step: self.checkpoint_step,
                attempts: self.attempts - 1,
                last: e,
            });
        }
        if matches!(e, SimError::Device { .. }) {
            self.device_strikes += 1;
            if self.device_strikes >= self.policy.degrade_after {
                let next = match self.placement {
                    Placement::Device => Some(Placement::DeviceCopyBack),
                    Placement::DeviceCopyBack => Some(Placement::Host),
                    Placement::Host => None,
                };
                if let Some(next) = next {
                    self.placement = next;
                    self.device_strikes = 0;
                    self.stats.degradations += 1;
                    self.recorder.count("recovery.degradations", 1);
                }
            }
        } else {
            self.device_strikes = 0;
        }
        let backoff = self.policy.backoff_base * (1u64 << (self.attempts - 1).min(16)) as f64;
        // Deterministic seeded jitter decorrelates the ranks' simulated
        // retry storms without sacrificing reproducibility: the factor
        // is a pure hash, never wall-clock randomness.
        let jitter =
            jitter_factor(self.jitter_seed, self.spec.rank as u64, self.attempts as u64);
        self.clock.advance(Category::Other, backoff * jitter);
        Ok(())
    }

    /// RankKill fault site: decide (deterministically) whether this
    /// rank dies here. The victim marks itself dead — so survivors
    /// observe the death structurally, with no timeout — and reports
    /// [`ResilienceError::Killed`]; it must not touch the communicator
    /// again.
    fn poll_rank_kill(
        &self,
        comm: Option<&Comm>,
        at_step: usize,
    ) -> Result<(), ResilienceError> {
        let Some(c) = comm else { return Ok(()) };
        let Some(inj) = c.fault_injector() else { return Ok(()) };
        if inj.should_fire(FaultKind::RankKill).is_some() {
            c.mark_dead();
            return Err(ResilienceError::Killed { rank: c.rank(), at_step });
        }
        Ok(())
    }

    /// Fold newly observed permanent deaths into a communicator shrink.
    ///
    /// Every survivor reaches this point together — the step verdict
    /// that failed is collective, and once a rank is dead every
    /// collective among the un-shrunk survivors carries a revoked
    /// verdict — so the shrink barrier cannot strand anyone. The
    /// survivor set is frozen by the barrier's completion, making the
    /// new logical numbering and the [`ResilienceError::InsufficientRanks`]
    /// verdict identical on every survivor.
    fn maybe_shrink(&mut self, comm: Option<&Comm>) -> Result<(), ResilienceError> {
        let active = self.shrunk.clone();
        let Some(c) = active.as_deref().or(comm) else { return Ok(()) };
        if c.dead_ranks().len() <= self.accepted_deaths {
            return Ok(());
        }
        let shrunk = c.shrink().expect("a live rank can always shrink");
        let lost = c.size() - shrunk.size();
        self.accepted_deaths += lost;
        self.stats.rank_losses += lost as u64;
        self.recorder.count("recovery.rank_losses", lost as u64);
        self.stats.shrinks += 1;
        self.recorder.count("recovery.shrinks", 1);
        // The rebuilt simulations live at the new logical coordinates;
        // restores re-partition patches over the survivor set.
        self.spec.rank = shrunk.rank();
        self.spec.nranks = shrunk.size();
        if shrunk.size() < self.policy.min_ranks.max(1) {
            return Err(ResilienceError::InsufficientRanks {
                survivors: shrunk.size(),
                min_ranks: self.policy.min_ranks,
            });
        }
        self.shrunk = Some(Arc::new(shrunk));
        Ok(())
    }

    /// One rollback-and-retry cycle: fold any newly observed permanent
    /// deaths into a shrink, book-keep the failure, rebuild at the
    /// current placement (and, after a shrink, the new logical rank)
    /// and restore the last checkpoint. Restore is fault-aware and its
    /// verdict is made collective here, so a faulted restore simply
    /// counts as the next failed attempt on every rank.
    fn recover(&mut self, e: SimError, comm: Option<&Comm>) -> Result<(), ResilienceError> {
        self.maybe_shrink(comm)?;
        self.note_failure(e)?;
        self.stats.rollbacks += 1;
        self.recorder.count("recovery.rollbacks", 1);
        let active = self.shrunk.clone();
        let cur = active.as_deref().or(comm);
        self.rebuild(cur);
        let restored = self.sim.try_restore_checkpoint(&self.checkpoint, cur);
        match self.sim.commit(cur, restored.err().map(SimError::from)) {
            Ok(()) => Ok(()),
            Err(e2) => self.recover(e2, comm),
        }
    }
}
