//! The GPU-resident patch integrator — the paper's device build.
//!
//! Every numerical phase runs as device kernel launches on the patch's
//! `DeviceData` buffers; the only PCIe traffic per step is the dt
//! scalar (here) plus the packed halos and compressed tag bitmaps the
//! framework moves. The kernel bodies are the *same functions* the
//! host integrator runs ([`crate::kernels`]), executed inside
//! [`Device::launch`] so every launch is counted and costed with the
//! K20x model.

use crate::kernels as k;
use crate::state::{
    ComputeRegion, Fields, FlagThresholds, PatchIntegrator, RegionInit, Summary, GHOSTS,
};
use rbamr_amr::patchdata::PatchData;
use rbamr_amr::{Patch, TagBitmap, VariableId};
use rbamr_device::{Device, Stream};
use rbamr_geometry::{Centring, GBox, IntVector};
use rbamr_gpu_amr::DeviceData;
use rbamr_perfmodel::{Category, KernelShape};

/// Advances a patch with device-resident data.
pub struct DevicePatchIntegrator;

impl DevicePatchIntegrator {
    /// Create the device integrator (stateless: the device handle lives
    /// in each patch's data).
    pub fn new() -> Self {
        Self
    }
}

impl Default for DevicePatchIntegrator {
    fn default() -> Self {
        Self::new()
    }
}

pub(crate) fn split_dev<'a>(
    datas: &'a mut [&mut dyn PatchData],
    n_out: usize,
) -> (Vec<&'a mut DeviceData<f64>>, Vec<&'a DeviceData<f64>>) {
    let (outs, ins) = datas.split_at_mut(n_out);
    let outs = outs
        .iter_mut()
        .map(|d| {
            d.as_any_mut()
                .downcast_mut::<DeviceData<f64>>()
                .expect("device integrator on non-device data")
        })
        .collect();
    let ins = ins
        .iter()
        .map(|d| {
            d.as_any()
                .downcast_ref::<DeviceData<f64>>()
                .expect("device integrator on non-device data")
        })
        .collect();
    (outs, ins)
}

/// Launch one hydro kernel: `body` receives the output slice + box and
/// input views, exactly as the host integrator would call it.
fn launch1(
    name: &'static str,
    out: &mut DeviceData<f64>,
    ins: &[&DeviceData<f64>],
    category: Category,
    shape: KernelShape,
    body: impl Fn(&mut [f64], GBox, &[k::View]) + Sync + Send,
) {
    let device = out.device().clone();
    let obox = out.data_box();
    out.stream().submit();
    let stream = out.stream().clone();
    let out_buf = out.buffer_mut();
    device.launch_named(&stream, name, category, shape, |kk| {
        let views: Vec<k::View> =
            ins.iter().map(|d| k::View::new(d.buffer().as_slice(&kk), d.data_box())).collect();
        body(out_buf.as_mut_slice(&kk), obox, &views);
    });
}

impl PatchIntegrator for DevicePatchIntegrator {
    fn name(&self) -> &'static str {
        "device"
    }

    fn init_regions(
        &self,
        patch: &mut Patch,
        f: &Fields,
        origin: (f64, f64),
        dx: (f64, f64),
        regions: &[RegionInit],
        _gamma: f64,
    ) {
        // Initialisation is a sanctioned full-array H2D transfer: build
        // the images on the host and upload once per field.
        let interior = patch.cell_box();
        let ghost = interior.grow(IntVector::uniform(GHOSTS));
        let sample = |dbox: GBox, node: bool, pick: usize| -> Vec<f64> {
            dbox.iter()
                .map(|p| {
                    let off = if node { 0.0 } else { 0.5 };
                    let cx = origin.0 + (p.x as f64 + off) * dx.0;
                    let cy = origin.1 + (p.y as f64 + off) * dx.1;
                    let mut val = 0.0;
                    for r in regions {
                        let (x0, y0, x1, y1) = r.rect;
                        let inside = if node {
                            cx >= x0 && cx <= x1 && cy >= y0 && cy <= y1
                        } else {
                            cx >= x0 && cx < x1 && cy >= y0 && cy < y1
                        };
                        if inside {
                            val = match pick {
                                0 => r.density,
                                1 => r.energy,
                                2 => r.xvel,
                                _ => r.yvel,
                            };
                        }
                    }
                    val
                })
                .collect()
        };
        let cell_dbox = Centring::Cell.data_box(ghost);
        let node_dbox = Centring::Node.data_box(ghost);
        for (var, pick, node) in [
            (f.density0, 0usize, false),
            (f.density1, 0, false),
            (f.energy0, 1, false),
            (f.energy1, 1, false),
            (f.xvel0, 2, true),
            (f.xvel1, 2, true),
            (f.yvel0, 3, true),
            (f.yvel1, 3, true),
        ] {
            let image = sample(if node { node_dbox } else { cell_dbox }, node, pick);
            let d = patch
                .data_mut(var)
                .as_any_mut()
                .downcast_mut::<DeviceData<f64>>()
                .expect("device integrator on non-device data");
            d.upload_all(&image, Category::Other);
        }
    }

    fn ideal_gas(&self, patch: &mut Patch, f: &Fields, gamma: f64, predict: bool) {
        let region = if predict {
            ComputeRegion::Grown(1).cell_box(patch.cell_box())
        } else {
            ComputeRegion::GhostBox.cell_box(patch.cell_box())
        };
        let (rho, e) = if predict { (f.density1, f.energy1) } else { (f.density0, f.energy0) };
        // Pressure kernel.
        {
            let mut datas = patch.data_many_mut(&[f.pressure, rho, e]);
            let (mut outs, ins) = split_dev(&mut datas, 1);
            let shape = KernelShape::streaming(region.num_cells(), 3, 3);
            launch1(
                "ideal-gas-pressure",
                outs[0],
                &ins,
                Category::HydroKernel,
                shape,
                |p, pbox, v| {
                    k::ideal_gas_pressure(p, pbox, v[0], v[1], region, gamma);
                },
            );
        }
        // Sound speed kernel.
        {
            let mut datas = patch.data_many_mut(&[f.soundspeed, f.pressure, rho]);
            let (mut outs, ins) = split_dev(&mut datas, 1);
            let shape = KernelShape::streaming(region.num_cells(), 3, 5);
            launch1(
                "ideal-gas-soundspeed",
                outs[0],
                &ins,
                Category::HydroKernel,
                shape,
                |ss, ssbox, v| {
                    k::ideal_gas_soundspeed(ss, ssbox, v[0], v[1], region, gamma);
                },
            );
        }
    }

    fn viscosity(&self, patch: &mut Patch, f: &Fields, dx: (f64, f64)) {
        let region = ComputeRegion::Grown(1).cell_box(patch.cell_box());
        let mut datas =
            patch.data_many_mut(&[f.viscosity, f.density0, f.soundspeed, f.xvel0, f.yvel0]);
        let (mut outs, ins) = split_dev(&mut datas, 1);
        let shape = KernelShape::streaming(region.num_cells(), 5, 15);
        launch1("viscosity", outs[0], &ins, Category::HydroKernel, shape, |q, qbox, v| {
            k::viscosity(q, qbox, v[0], v[1], v[2], v[3], region, dx);
        });
    }

    fn calc_dt(&self, patch: &mut Patch, f: &Fields, dx: (f64, f64), cfl: f64) -> f64 {
        let region = patch.cell_box();
        let mut datas = patch.data_many_mut(&[
            f.density0,
            f.pressure,
            f.viscosity,
            f.soundspeed,
            f.xvel0,
            f.yvel0,
        ]);
        let (_, ins) = split_dev(&mut datas, 0);
        let device: Device = ins[0].device().clone();
        let stream = Stream::new(&device);
        stream.submit();
        // Device reduction kernel: the min lands in a 1-element buffer,
        // then one 8-byte scalar crosses PCIe — "calculating the
        // timestep contains the only global reduction" (Section V-B).
        let mut result = device.alloc::<f64>(1);
        let shape = KernelShape::streaming(region.num_cells(), 6, 20);
        device.launch_named(&stream, "calc-dt", Category::Timestep, shape, |kk| {
            let views: Vec<k::View> =
                ins.iter().map(|d| k::View::new(d.buffer().as_slice(&kk), d.data_box())).collect();
            let dt = k::calc_dt(
                views[0], views[1], views[2], views[3], views[4], views[5], region, dx, cfl,
            );
            result.as_mut_slice(&kk)[0] = dt;
        });
        let mut host = [0.0f64];
        device.download(&result, 0, &mut host, Category::Timestep);
        host[0]
    }

    fn pdv(&self, patch: &mut Patch, f: &Fields, dx: (f64, f64), dt: f64, predict: bool) {
        let region = ComputeRegion::Grown(1).cell_box(patch.cell_box());
        let dt_eff = if predict { 0.5 * dt } else { dt };
        {
            let mut datas = patch.data_many_mut(&[
                f.energy1,
                f.energy0,
                f.density0,
                f.pressure,
                f.viscosity,
                f.xvel0,
                f.xvel1,
                f.yvel0,
                f.yvel1,
            ]);
            let (mut outs, ins) = split_dev(&mut datas, 1);
            let shape = KernelShape::streaming(region.num_cells(), 9, 30);
            launch1("pdv-energy", outs[0], &ins, Category::HydroKernel, shape, |e1, ebox, v| {
                // Predictor time-averages with the start velocities.
                let (u1, v1) = if predict { (v[4], v[6]) } else { (v[5], v[7]) };
                k::pdv_energy(
                    e1, ebox, v[0], v[1], v[2], v[3], v[4], u1, v[6], v1, region, dt_eff, dx,
                );
            });
        }
        {
            let mut datas =
                patch.data_many_mut(&[f.density1, f.density0, f.xvel0, f.xvel1, f.yvel0, f.yvel1]);
            let (mut outs, ins) = split_dev(&mut datas, 1);
            let shape = KernelShape::streaming(region.num_cells(), 6, 25);
            launch1("pdv-density", outs[0], &ins, Category::HydroKernel, shape, |r1, rbox, v| {
                let (u1, v1) = if predict { (v[1], v[3]) } else { (v[2], v[4]) };
                k::pdv_density(r1, rbox, v[0], v[1], u1, v[3], v1, region, dt_eff, dx);
            });
        }
    }

    fn revert(&self, patch: &mut Patch, f: &Fields) {
        let region = ComputeRegion::Grown(1).cell_box(patch.cell_box());
        for (dst, src) in [(f.density1, f.density0), (f.energy1, f.energy0)] {
            let mut datas = patch.data_many_mut(&[dst, src]);
            let (mut outs, ins) = split_dev(&mut datas, 1);
            let shape = KernelShape::streaming(region.num_cells(), 2, 0);
            launch1("copy-field", outs[0], &ins, Category::HydroKernel, shape, |d, dbox, v| {
                k::copy_field(d, dbox, v[0], region);
            });
        }
    }

    fn accelerate(&self, patch: &mut Patch, f: &Fields, dx: (f64, f64), dt: f64) {
        let region = Centring::Node.data_box(patch.cell_box());
        for (axis, (v1, v0)) in [(0usize, (f.xvel1, f.xvel0)), (1, (f.yvel1, f.yvel0))] {
            let mut datas = patch.data_many_mut(&[v1, v0, f.density0, f.pressure, f.viscosity]);
            let (mut outs, ins) = split_dev(&mut datas, 1);
            let shape = KernelShape::streaming(region.num_cells(), 5, 20);
            launch1("accelerate", outs[0], &ins, Category::HydroKernel, shape, |out, nbox, v| {
                k::accelerate(out, nbox, v[0], v[1], v[2], v[3], region, dt, dx, axis);
            });
        }
    }

    fn flux_calc(&self, patch: &mut Patch, f: &Fields, dx: (f64, f64), dt: f64) {
        let ghost = patch.cell_box().grow(IntVector::uniform(GHOSTS));
        for (axis, (flux, v0, v1)) in
            [(0usize, (f.vol_flux_x, f.xvel0, f.xvel1)), (1, (f.vol_flux_y, f.yvel0, f.yvel1))]
        {
            let region = Centring::Side(axis).data_box(ghost);
            let mut datas = patch.data_many_mut(&[flux, v0, v1]);
            let (mut outs, ins) = split_dev(&mut datas, 1);
            let shape = KernelShape::streaming(region.num_cells(), 3, 6);
            launch1("flux-calc", outs[0], &ins, Category::HydroKernel, shape, |out, sbox, v| {
                k::flux_calc(out, sbox, v[0], v[1], region, dt, dx, axis);
            });
        }
    }

    fn advec_cell(&self, patch: &mut Patch, f: &Fields, dx: (f64, f64), dir: usize, sweep: usize) {
        let interior = patch.cell_box();
        let ghost = ComputeRegion::GhostBox.cell_box(interior);
        let mass_flux = if dir == 0 { f.mass_flux_x } else { f.mass_flux_y };
        let vol_flux = if dir == 0 { f.vol_flux_x } else { f.vol_flux_y };
        {
            let mut datas = patch.data_many_mut(&[f.pre_vol, f.vol_flux_x, f.vol_flux_y]);
            let (mut outs, ins) = split_dev(&mut datas, 1);
            let shape = KernelShape::streaming(ghost.num_cells(), 3, 6);
            launch1(
                "advec-pre-vol",
                outs[0],
                &ins,
                Category::HydroKernel,
                shape,
                |pre, cbox, v| {
                    k::advec_pre_vol(pre, cbox, v[0], v[1], ghost, dir, sweep, dx);
                },
            );
        }
        {
            let mut datas = patch.data_many_mut(&[f.post_vol, f.vol_flux_x, f.vol_flux_y]);
            let (mut outs, ins) = split_dev(&mut datas, 1);
            let shape = KernelShape::streaming(ghost.num_cells(), 3, 6);
            launch1(
                "advec-post-vol",
                outs[0],
                &ins,
                Category::HydroKernel,
                shape,
                |post, cbox, v| {
                    k::advec_post_vol(post, cbox, v[0], v[1], ghost, dir, sweep, dx);
                },
            );
        }
        let face_region = Centring::Side(dir).data_box(ghost);
        {
            let mut datas = patch.data_many_mut(&[mass_flux, vol_flux, f.density1, f.pre_vol]);
            let (mut outs, ins) = split_dev(&mut datas, 1);
            let shape = KernelShape::streaming(face_region.num_cells(), 4, 20);
            let sbox = outs[0].data_box();
            let region = face_region.intersect(sbox);
            launch1(
                "advec-mass-flux",
                outs[0],
                &ins,
                Category::HydroKernel,
                shape,
                |mf, sbox, v| {
                    k::advec_mass_flux(mf, sbox, v[0], v[1], v[2], region, dir);
                },
            );
        }
        let ef_region = interior.grow(IntVector::ONE);
        {
            let mut datas =
                patch.data_many_mut(&[f.ener_flux, mass_flux, f.energy1, f.density1, f.pre_vol]);
            let (mut outs, ins) = split_dev(&mut datas, 1);
            let shape = KernelShape::streaming(ef_region.num_cells(), 5, 20);
            launch1(
                "advec-ener-flux",
                outs[0],
                &ins,
                Category::HydroKernel,
                shape,
                |ef, cbox, v| {
                    k::advec_ener_flux(ef, cbox, v[0], v[1], v[2], v[3], ef_region, dir);
                },
            );
        }
        // Stage old energy1/density1 in device work arrays: device-to-
        // device copies (the resident equivalent of CloverLeaf's
        // in-place read-modify loop).
        // node_mass_pre and node_mass_post are free at this point in the
        // phase order; reuse them as cell-shaped staging would mismatch
        // centring, so copy through a fresh device allocation instead.
        let (old_e, old_r, ebox) = {
            let e1 = patch
                .data(f.energy1)
                .as_any()
                .downcast_ref::<DeviceData<f64>>()
                .expect("device data");
            let r1 = patch
                .data(f.density1)
                .as_any()
                .downcast_ref::<DeviceData<f64>>()
                .expect("device data");
            let device = e1.device().clone();
            let ebox = e1.data_box();
            let mut old_e = device.alloc::<f64>(e1.buffer().len());
            let mut old_r = device.alloc::<f64>(r1.buffer().len());
            let stream = Stream::new(&device);
            stream.submit();
            let shape = KernelShape::streaming(ebox.num_cells() * 2, 4, 0);
            device.launch_named(&stream, "revert-save", Category::HydroKernel, shape, |kk| {
                old_e.as_mut_slice(&kk).copy_from_slice(e1.buffer().as_slice(&kk));
                old_r.as_mut_slice(&kk).copy_from_slice(r1.buffer().as_slice(&kk));
            });
            (old_e, old_r, ebox)
        };
        {
            let mut datas = patch.data_many_mut(&[f.energy1, f.pre_vol, mass_flux, f.ener_flux]);
            let (mut outs, ins) = split_dev(&mut datas, 1);
            let device = outs[0].device().clone();
            let obox = outs[0].data_box();
            outs[0].stream().submit();
            let stream = outs[0].stream().clone();
            let shape = KernelShape::streaming(interior.num_cells(), 6, 20);
            let out_buf = outs[0].buffer_mut();
            device.launch_named(&stream, "advec-cell", Category::HydroKernel, shape, |kk| {
                let v: Vec<k::View> = ins
                    .iter()
                    .map(|d| k::View::new(d.buffer().as_slice(&kk), d.data_box()))
                    .collect();
                let e_old = k::View::new(old_e.as_slice(&kk), ebox);
                let r_old = k::View::new(old_r.as_slice(&kk), ebox);
                k::advec_cell_energy(
                    out_buf.as_mut_slice(&kk),
                    obox,
                    e_old,
                    r_old,
                    v[0],
                    v[1],
                    v[2],
                    interior,
                    dir,
                );
            });
        }
        {
            let mut datas = patch.data_many_mut(&[f.density1, f.pre_vol, mass_flux, vol_flux]);
            let (mut outs, ins) = split_dev(&mut datas, 1);
            let device = outs[0].device().clone();
            let obox = outs[0].data_box();
            outs[0].stream().submit();
            let stream = outs[0].stream().clone();
            let shape = KernelShape::streaming(interior.num_cells(), 5, 15);
            let out_buf = outs[0].buffer_mut();
            device.launch_named(&stream, "advec-ener-update", Category::HydroKernel, shape, |kk| {
                let v: Vec<k::View> = ins
                    .iter()
                    .map(|d| k::View::new(d.buffer().as_slice(&kk), d.data_box()))
                    .collect();
                let r_old = k::View::new(old_r.as_slice(&kk), ebox);
                k::advec_cell_density(
                    out_buf.as_mut_slice(&kk),
                    obox,
                    r_old,
                    v[0],
                    v[1],
                    v[2],
                    interior,
                    dir,
                );
            });
        }
    }

    fn advec_mom(&self, patch: &mut Patch, f: &Fields, _dx: (f64, f64), dir: usize, _sweep: usize) {
        let interior = patch.cell_box();
        let node_region = Centring::Node.data_box(interior.grow(IntVector::ONE));
        let mass_flux = if dir == 0 { f.mass_flux_x } else { f.mass_flux_y };
        {
            let mut datas = patch.data_many_mut(&[f.node_flux, mass_flux]);
            let (mut outs, ins) = split_dev(&mut datas, 1);
            let shape = KernelShape::streaming(node_region.num_cells(), 2, 4);
            launch1("mom-node-flux", outs[0], &ins, Category::HydroKernel, shape, |nf, nbox, v| {
                k::mom_node_flux(nf, nbox, v[0], node_region, dir);
            });
        }
        {
            let mut datas = patch.data_many_mut(&[f.node_mass_post, f.density1, f.post_vol]);
            let (mut outs, ins) = split_dev(&mut datas, 1);
            let shape = KernelShape::streaming(node_region.num_cells(), 3, 8);
            launch1(
                "mom-node-mass-post",
                outs[0],
                &ins,
                Category::HydroKernel,
                shape,
                |nm, nbox, v| {
                    k::mom_node_mass_post(nm, nbox, v[0], v[1], node_region);
                },
            );
        }
        {
            let mut datas = patch.data_many_mut(&[f.node_mass_pre, f.node_mass_post, f.node_flux]);
            let (mut outs, ins) = split_dev(&mut datas, 1);
            let shape = KernelShape::streaming(node_region.num_cells(), 3, 2);
            launch1(
                "mom-node-mass-pre",
                outs[0],
                &ins,
                Category::HydroKernel,
                shape,
                |nm, nbox, v| {
                    k::mom_node_mass_pre(nm, nbox, v[0], v[1], node_region, dir);
                },
            );
        }
        let vel_region = Centring::Node.data_box(interior);
        for vel in [f.xvel1, f.yvel1] {
            {
                let mut datas =
                    patch.data_many_mut(&[f.mom_flux, vel, f.node_flux, f.node_mass_pre]);
                let (mut outs, ins) = split_dev(&mut datas, 1);
                let shape = KernelShape::streaming(node_region.num_cells(), 4, 25);
                launch1("mom-flux", outs[0], &ins, Category::HydroKernel, shape, |mf, nbox, v| {
                    k::mom_flux(mf, nbox, v[0], v[1], v[2], node_region, dir);
                });
            }
            {
                // Stage the old velocity on the device.
                let (old_v, vbox) = {
                    let v1 = patch
                        .data(vel)
                        .as_any()
                        .downcast_ref::<DeviceData<f64>>()
                        .expect("device data");
                    let device = v1.device().clone();
                    let vbox = v1.data_box();
                    let mut old = device.alloc::<f64>(v1.buffer().len());
                    let stream = Stream::new(&device);
                    stream.submit();
                    let shape = KernelShape::streaming(vbox.num_cells(), 2, 0);
                    device.launch_named(
                        &stream,
                        "mom-save-vel",
                        Category::HydroKernel,
                        shape,
                        |kk| {
                            old.as_mut_slice(&kk).copy_from_slice(v1.buffer().as_slice(&kk));
                        },
                    );
                    (old, vbox)
                };
                let mut datas =
                    patch.data_many_mut(&[vel, f.mom_flux, f.node_mass_pre, f.node_mass_post]);
                let (mut outs, ins) = split_dev(&mut datas, 1);
                let device = outs[0].device().clone();
                let obox = outs[0].data_box();
                outs[0].stream().submit();
                let stream = outs[0].stream().clone();
                let shape = KernelShape::streaming(vel_region.num_cells(), 5, 10);
                let out_buf = outs[0].buffer_mut();
                device.launch_named(
                    &stream,
                    "mom-vel-update",
                    Category::HydroKernel,
                    shape,
                    |kk| {
                        let v: Vec<k::View> = ins
                            .iter()
                            .map(|d| k::View::new(d.buffer().as_slice(&kk), d.data_box()))
                            .collect();
                        let v_old = k::View::new(old_v.as_slice(&kk), vbox);
                        k::mom_vel_update(
                            out_buf.as_mut_slice(&kk),
                            obox,
                            v_old,
                            v[0],
                            v[1],
                            v[2],
                            vel_region,
                            dir,
                        );
                    },
                );
            }
        }
    }

    fn reset(&self, patch: &mut Patch, f: &Fields) {
        let region = patch.cell_box();
        let node_region = Centring::Node.data_box(patch.cell_box());
        for (dst, src, reg) in [
            (f.density0, f.density1, region),
            (f.energy0, f.energy1, region),
            (f.xvel0, f.xvel1, node_region),
            (f.yvel0, f.yvel1, node_region),
        ] {
            let mut datas = patch.data_many_mut(&[dst, src]);
            let (mut outs, ins) = split_dev(&mut datas, 1);
            let shape = KernelShape::streaming(reg.num_cells(), 2, 0);
            launch1("copy-field", outs[0], &ins, Category::HydroKernel, shape, |d, dbox, v| {
                k::copy_field(d, dbox, v[0], reg);
            });
        }
    }

    fn flag_cells(&self, patch: &Patch, f: &Fields, thresholds: &FlagThresholds) -> TagBitmap {
        let region = patch.cell_box();
        let rho =
            patch.data(f.density0).as_any().downcast_ref::<DeviceData<f64>>().expect("device data");
        let e =
            patch.data(f.energy0).as_any().downcast_ref::<DeviceData<f64>>().expect("device data");
        let device = rho.device().clone();
        // Flag into a device tag field, then compress on the device and
        // move only the bitmap (Section IV-C).
        let mut tags = DeviceData::<i32>::new(&device, region, IntVector::ZERO, Centring::Cell);
        let stream = Stream::new(&device);
        stream.submit();
        let shape = KernelShape::streaming(region.num_cells(), 3, 10);
        let (dth, eth) = (thresholds.density, thresholds.energy);
        let tags_buf = tags.buffer_mut();
        device.launch_named(&stream, "flag-cells", Category::Regrid, shape, |kk| {
            let rho_v = k::View::new(rho.buffer().as_slice(&kk), rho.data_box());
            let e_v = k::View::new(e.buffer().as_slice(&kk), e.data_box());
            k::flag_cells(tags_buf.as_mut_slice(&kk), rho_v, e_v, region, dth, eth);
        });
        rbamr_gpu_amr::compress_tags(&tags, Category::Regrid)
    }

    fn field_summary(&self, patch: &Patch, f: &Fields, dx: (f64, f64), region: GBox) -> Summary {
        let region = region.intersect(patch.cell_box());
        let get = |v: VariableId| {
            patch.data(v).as_any().downcast_ref::<DeviceData<f64>>().expect("device data")
        };
        let (rho, e, p, u, vv) =
            (get(f.density0), get(f.energy0), get(f.pressure), get(f.xvel0), get(f.yvel0));
        let device = rho.device().clone();
        let stream = Stream::new(&device);
        stream.submit();
        let mut result = device.alloc::<f64>(5);
        let shape = KernelShape::streaming(region.num_cells(), 5, 15);
        device.launch_named(&stream, "field-summary", Category::Other, shape, |kk| {
            let s = k::field_summary(
                k::View::new(rho.buffer().as_slice(&kk), rho.data_box()),
                k::View::new(e.buffer().as_slice(&kk), e.data_box()),
                k::View::new(p.buffer().as_slice(&kk), p.data_box()),
                k::View::new(u.buffer().as_slice(&kk), u.data_box()),
                k::View::new(vv.buffer().as_slice(&kk), vv.data_box()),
                region,
                dx,
            );
            let out = result.as_mut_slice(&kk);
            out[0] = s.volume;
            out[1] = s.mass;
            out[2] = s.internal_energy;
            out[3] = s.kinetic_energy;
            out[4] = s.pressure;
        });
        let mut host = [0.0f64; 5];
        device.download(&result, 0, &mut host, Category::Other);
        Summary {
            volume: host[0],
            mass: host[1],
            internal_energy: host[2],
            kinetic_energy: host[3],
            pressure: host[4],
        }
    }
}
