//! Checkpoint/restart for the whole simulation — the end-to-end use of
//! the restart database from the paper's Figure 2 interface
//! (`putToRestart`/`getFromRestart`).
//!
//! A checkpoint stores the hierarchy structure (level boxes and owners)
//! and the full state arrays of every locally owned patch. On the
//! device build, writing a checkpoint is one of the three sanctioned
//! full-array D2H transfers (initialisation, visualisation, restart);
//! restoring uploads once per field.

use crate::integrator::HydroSim;
use crate::state::Fields;
use rbamr_amr::patchdata::PatchData;
use rbamr_amr::restart::{Database, Value};
use rbamr_amr::HostData;
use rbamr_geometry::GBox;
use rbamr_gpu_amr::DeviceData;
use rbamr_perfmodel::Category;

/// The state fields a checkpoint persists (everything else is
/// recomputed by the next step's EOS/fill phases).
fn checkpoint_fields(f: &Fields) -> [(&'static str, rbamr_amr::VariableId); 4] {
    [("density0", f.density0), ("energy0", f.energy0), ("xvel0", f.xvel0), ("yvel0", f.yvel0)]
}

/// Read a patch's full data array, from either placement.
fn read_values(data: &dyn PatchData) -> Vec<f64> {
    if let Some(h) = data.as_any().downcast_ref::<HostData<f64>>() {
        h.as_slice().to_vec()
    } else if let Some(d) = data.as_any().downcast_ref::<DeviceData<f64>>() {
        d.download_all(Category::Other)
    } else {
        panic!("checkpoint: unsupported data placement");
    }
}

/// Write a patch's full data array, to either placement.
fn write_values(data: &mut dyn PatchData, values: &[f64]) {
    if let Some(h) = data.as_any_mut().downcast_mut::<HostData<f64>>() {
        assert_eq!(values.len(), h.as_slice().len(), "checkpoint: size mismatch");
        h.as_mut_slice().copy_from_slice(values);
    } else if let Some(d) = data.as_any_mut().downcast_mut::<DeviceData<f64>>() {
        d.upload_all(values, Category::Other);
    } else {
        panic!("checkpoint: unsupported data placement");
    }
}

impl HydroSim {
    /// Serialise the simulation state into a restart database.
    ///
    /// Single-rank only (a distributed checkpoint would be one database
    /// per rank; the reproduction keeps the serial form).
    pub fn save_checkpoint(&self) -> Database {
        assert_eq!(self.hierarchy().nranks(), 1, "save_checkpoint: single-rank only");
        let mut db = Database::new();
        db.put("time", Value::F64(self.time()));
        db.put("step", Value::I64(self.steps_taken() as i64));
        db.put("prev_dt", Value::F64(self.prev_dt()));
        db.put("num_levels", Value::I64(self.hierarchy().num_levels() as i64));
        let fields = *self.fields();
        for l in 0..self.hierarchy().num_levels() {
            let level = self.hierarchy().level(l);
            let ldb = db.child(&format!("level_{l}"));
            let mut flat = Vec::new();
            for b in level.global_boxes() {
                flat.extend_from_slice(&[b.lo.x, b.lo.y, b.hi.x, b.hi.y]);
            }
            ldb.put("boxes", Value::VecI64(flat));
            for patch in level.local() {
                let pdb = ldb.child(&format!("patch_{}", patch.id().index));
                for (name, var) in checkpoint_fields(&fields) {
                    pdb.put(name, Value::VecF64(read_values(patch.data(var))));
                }
            }
        }
        db
    }

    /// Restore a checkpoint into this simulation.
    ///
    /// `self` must have been constructed with the same domain, physics
    /// configuration and placement as the checkpointed run (the
    /// database stores state, not configuration — matching SAMRAI,
    /// where the input deck travels separately). Rebuilds the level
    /// structure, loads the state arrays, and re-primes the derived
    /// fields.
    ///
    /// # Panics
    /// Panics on malformed databases or mismatched configuration.
    pub fn restore_checkpoint(&mut self, db: &Database) {
        assert_eq!(self.hierarchy().nranks(), 1, "restore_checkpoint: single-rank only");
        let num_levels = db.get_i64("num_levels").expect("restart: num_levels") as usize;
        assert!(
            num_levels <= self.hierarchy().max_levels(),
            "restart: checkpoint has more levels than this configuration allows"
        );
        let fields = *self.fields();
        // Rebuild the level structure.
        for l in 0..num_levels {
            let ldb = db.get_db(&format!("level_{l}")).expect("restart: missing level");
            let flat = match ldb.get("boxes") {
                Some(Value::VecI64(v)) => v.clone(),
                _ => panic!("restart: malformed boxes"),
            };
            let boxes: Vec<GBox> =
                flat.chunks_exact(4).map(|c| GBox::from_coords(c[0], c[1], c[2], c[3])).collect();
            let owners = vec![0; boxes.len()];
            self.set_level_for_restart(l, boxes, owners);
        }
        self.truncate_levels_for_restart(num_levels);
        // Load patch data.
        for l in 0..num_levels {
            let ldb = db.get_db(&format!("level_{l}")).expect("restart: missing level");
            let level = self.hierarchy_mut().level_mut(l);
            for patch in level.local_mut() {
                let pdb = ldb
                    .get_db(&format!("patch_{}", patch.id().index))
                    .expect("restart: missing patch");
                for (name, var) in checkpoint_fields(&fields) {
                    let values = pdb.get_vec_f64(name).expect("restart: missing field");
                    write_values(patch.data_mut(var), values);
                }
            }
        }
        // Restore integration state and re-prime derived fields.
        let time = db.get_f64("time").expect("restart: time");
        let step = db.get_i64("step").expect("restart: step") as usize;
        let prev_dt = db.get_f64("prev_dt").expect("restart: prev_dt");
        self.set_progress_for_restart(time, step, prev_dt);
        self.reprime_after_restart();
    }

    /// Write a checkpoint file ([`Database::save`] of
    /// [`HydroSim::save_checkpoint`]).
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn save_checkpoint_file(&self, path: &std::path::Path) -> std::io::Result<()> {
        self.save_checkpoint().save(path)
    }

    /// Restore from a checkpoint file written by
    /// [`HydroSim::save_checkpoint_file`].
    ///
    /// # Errors
    /// Propagates I/O errors; panics on corrupt content.
    pub fn restore_checkpoint_file(&mut self, path: &std::path::Path) -> std::io::Result<()> {
        self.restore_checkpoint(&Database::load(path)?);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::integrator::{HydroConfig, HydroSim, Placement};
    use crate::state::RegionInit;
    use rbamr_perfmodel::{Clock, Machine};

    fn sod_regions() -> Vec<RegionInit> {
        vec![
            RegionInit {
                rect: (0.0, 0.0, 0.5, 1.0),
                density: 1.0,
                energy: 2.5,
                xvel: 0.0,
                yvel: 0.0,
            },
            RegionInit {
                rect: (0.5, 0.0, 1.0, 1.0),
                density: 0.125,
                energy: 2.0,
                xvel: 0.0,
                yvel: 0.0,
            },
        ]
    }

    fn build(placement: Placement) -> HydroSim {
        let machine = match placement {
            Placement::Host => Machine::ipa_cpu_node(),
            _ => Machine::ipa_gpu(),
        };
        let config = HydroConfig { regrid_interval: 5, ..HydroConfig::default() };
        let mut sim = HydroSim::new(
            machine,
            placement,
            Clock::new(),
            (1.0, 1.0),
            (32, 32),
            2,
            2,
            config,
            sod_regions(),
            0,
            1,
        );
        sim.initialize(None);
        sim
    }

    fn check_roundtrip(placement: Placement) {
        // Reference: 12 uninterrupted steps.
        let mut reference = build(placement);
        for _ in 0..12 {
            reference.step(None);
        }

        // Checkpointed: 6 steps, save, restore into a fresh sim, 6 more.
        let mut first = build(placement);
        for _ in 0..6 {
            first.step(None);
        }
        let db = first.save_checkpoint();
        let mut resumed = build(placement);
        resumed.restore_checkpoint(&db);
        assert_eq!(resumed.steps_taken(), 6);
        assert!((resumed.time() - first.time()).abs() < 1e-15);
        for _ in 0..6 {
            resumed.step(None);
        }

        // Identical physics: the restart is exact.
        let a = reference.density_profile();
        let b = resumed.density_profile();
        assert_eq!(a.len(), b.len());
        for ((xa, da), (xb, dbv)) in a.iter().zip(&b) {
            assert_eq!(xa, xb);
            assert!((da - dbv).abs() < 1e-12, "restart diverged at x={xa}: {da} vs {dbv}");
        }
        let sa = reference.summary(None);
        let sb = resumed.summary(None);
        assert!((sa.mass - sb.mass).abs() < 1e-13);
        assert!((sa.total_energy() - sb.total_energy()).abs() < 1e-12);
    }

    #[test]
    fn host_checkpoint_roundtrip_is_exact() {
        check_roundtrip(Placement::Host);
    }

    #[test]
    fn device_checkpoint_roundtrip_is_exact() {
        check_roundtrip(Placement::Device);
    }

    #[test]
    fn checkpoint_file_roundtrip_is_exact() {
        let mut sim = build(Placement::Host);
        sim.run_steps(4, None);
        let path = std::env::temp_dir().join(format!("rbamr_ckpt_{}.bin", std::process::id()));
        sim.save_checkpoint_file(&path).unwrap();
        let mut resumed = build(Placement::Host);
        resumed.restore_checkpoint_file(&path).unwrap();
        assert_eq!(resumed.steps_taken(), 4);
        sim.step(None);
        resumed.step(None);
        let a = sim.density_profile();
        let b = resumed.density_profile();
        for ((xa, da), (xb, db_)) in a.iter().zip(&b) {
            assert_eq!(xa, xb);
            assert_eq!(da, db_);
        }
        std::fs::remove_file(&path).ok();
    }

    /// The acceptance case for the structure-keyed schedule cache
    /// across a restore: restoring a checkpoint whose structure the
    /// cache has already seen resolves schedules as hits, and the
    /// resulting plans are digest-identical to the originals.
    #[test]
    fn restore_hits_the_schedule_cache_with_identical_plans() {
        let mut sim = build(Placement::Host);
        sim.run_steps(6, None);
        let db = sim.save_checkpoint();
        let original = sim.start_fill_digests();

        let mut resumed = build(Placement::Host);
        resumed.restore_checkpoint(&db);
        // Level 0 never regrids, so at minimum its schedules come out
        // of the cache even if finer structure moved since construction.
        assert!(resumed.schedule_cache().hits() > 0, "restore must reuse cached schedules");
        assert_eq!(resumed.start_fill_digests(), original, "restored plans must match originals");

        // A second restore reproduces the structure exactly: every
        // schedule lookup hits and nothing is rebuilt.
        let hits = resumed.schedule_cache().hits();
        let misses = resumed.schedule_cache().misses();
        resumed.restore_checkpoint(&db);
        assert_eq!(
            resumed.schedule_cache().misses(),
            misses,
            "identical structure must not rebuild any schedule"
        );
        assert!(resumed.schedule_cache().hits() > hits);
        assert_eq!(resumed.start_fill_digests(), original);
    }

    #[test]
    fn checkpoint_stores_hierarchy_structure() {
        let mut sim = build(Placement::Host);
        sim.run_steps(3, None);
        let db = sim.save_checkpoint();
        assert_eq!(db.get_i64("num_levels"), Some(2));
        assert!(db.get_db("level_1").is_some());
        assert!(db.get_f64("time").unwrap() > 0.0);
    }
}
