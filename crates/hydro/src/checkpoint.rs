//! Checkpoint/restart for the whole simulation — the end-to-end use of
//! the restart database from the paper's Figure 2 interface
//! (`putToRestart`/`getFromRestart`).
//!
//! A checkpoint is a *rank-count-independent global manifest*
//! (format 2): per-patch records keyed by patch identity — index and
//! box, never owner rank — plus the full state arrays of every patch.
//! In distributed runs [`HydroSim::try_save_checkpoint`] allgathers the
//! per-rank records and patch payloads so every rank holds the same
//! complete database; restore re-derives ownership with the same
//! space-filling-curve partitioner the live run uses
//! ([`rbamr_amr::balance::partition_sfc`]), so a checkpoint written at
//! N ranks restores onto any rank count — including the shrunken
//! survivor set after a permanent rank loss. On the device build,
//! writing a checkpoint is one of the three sanctioned full-array D2H
//! transfers (initialisation, visualisation, restart); restoring
//! uploads once per field.
//!
//! Restore is *fault-aware*: it returns a typed [`RestoreError`]
//! instead of panicking, and in distributed runs its communication
//! pattern runs through faults in lock-step (an agreement reduction
//! sits between the structure exchange and the ghost-fill priming, so
//! no rank ever fills against a structure its peers failed to
//! assemble). That makes it safe to call from the recovery driver while
//! fault injection is live.

use crate::integrator::HydroSim;
use crate::state::Fields;
use rbamr_amr::patchdata::PatchData;
use rbamr_amr::restart::{Database, RestoreError, Value};
use rbamr_geometry::{BoxList, BoxOverlap, GBox, IntVector};
use rbamr_netsim::Comm;
use rbamr_perfmodel::Category;

/// The state fields a checkpoint persists (everything else is
/// recomputed by the next step's EOS/fill phases).
fn checkpoint_fields(f: &Fields) -> [(&'static str, rbamr_amr::VariableId); 4] {
    [("density0", f.density0), ("energy0", f.energy0), ("xvel0", f.xvel0), ("yvel0", f.yvel0)]
}

/// The full-array overlap of a patch datum — both placements serialise
/// through the same `pack`/`unpack` streams the halo exchange uses.
fn full_overlap(data: &dyn PatchData) -> BoxOverlap {
    BoxOverlap {
        dst_boxes: BoxList::from_box(data.data_box()),
        shift: IntVector::ZERO,
        centring: data.centring(),
    }
}

/// Read a patch's full data array, from either placement. On the
/// device placements this is a sanctioned full-array D2H transfer; an
/// injected transfer fault latches on the device and is drained by the
/// caller's next [`rbamr_device::Device::take_injected_fault`] poll.
fn read_values(data: &dyn PatchData) -> Vec<f64> {
    let bytes = data.pack(&full_overlap(data));
    bytes.chunks_exact(8).map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk"))).collect()
}

/// Write a patch's full data array, to either placement.
fn try_write_values(
    data: &mut dyn PatchData,
    values: &[f64],
    key: &str,
) -> Result<(), RestoreError> {
    let ov = full_overlap(data);
    let expected = data.stream_size(&ov) / std::mem::size_of::<f64>();
    if values.len() != expected {
        return Err(RestoreError::Malformed {
            key: key.to_owned(),
            expected: "field array of the patch's size",
        });
    }
    let mut bytes = Vec::with_capacity(values.len() * 8);
    for v in values {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    // The "device fault" prefix is what `SimError::from(RestoreError)`
    // keys on to classify the failure for the degradation policy.
    data.try_unpack(&ov, &bytes)
        .map_err(|e| RestoreError::Exchange { detail: format!("device fault: {e}") })
}

/// Checkpoint manifest format written by [`HydroSim::try_save_checkpoint`]
/// and required by [`HydroSim::try_restore_checkpoint`]. Format 2 is
/// the rank-count-independent global manifest: five identity words per
/// record (no owner rank) and every patch's payload present on every
/// rank.
const CHECKPOINT_FORMAT: i64 = 2;

/// Per-level structure records as stored in a checkpoint: five `i64`
/// words per record — `index, lo.x, lo.y, hi.x, hi.y`. Ownership is
/// deliberately *not* persisted: restore re-partitions onto whatever
/// rank count is running.
const RECORD_WORDS: usize = 5;

fn decode_records(words: &[i64]) -> Result<Vec<GBox>, RestoreError> {
    let malformed = |expected| RestoreError::Malformed { key: "records".to_owned(), expected };
    if !words.len().is_multiple_of(RECORD_WORDS) {
        return Err(malformed("multiple of 5 words per record"));
    }
    let mut recs: Vec<(i64, GBox)> = words
        .chunks_exact(RECORD_WORDS)
        .map(|c| (c[0], GBox::from_coords(c[1], c[2], c[3], c[4])))
        .collect();
    recs.sort_by_key(|&(i, _)| i);
    let mut boxes = Vec::with_capacity(recs.len());
    for (i, (idx, b)) in recs.into_iter().enumerate() {
        if idx != i as i64 {
            return Err(malformed("contiguous patch indices"));
        }
        boxes.push(b);
    }
    Ok(boxes)
}

/// Serialise one rank's owned patch payloads for a level into a flat
/// byte blob the structure allgather can carry: per patch, a `u64`
/// index followed by, for each checkpoint field in order, a `u64` word
/// count and that many `f64` little-endian words.
fn encode_patch_blob(entries: &[(usize, [Vec<f64>; 4])]) -> Vec<u8> {
    let mut blob = Vec::new();
    for (index, fields) in entries {
        blob.extend_from_slice(&(*index as u64).to_le_bytes());
        for values in fields {
            blob.extend_from_slice(&(values.len() as u64).to_le_bytes());
            for v in values {
                blob.extend_from_slice(&v.to_le_bytes());
            }
        }
    }
    blob
}

/// Decode a patch-payload blob back into `(index, fields)` entries.
fn decode_patch_blob(blob: &[u8]) -> Result<Vec<(usize, [Vec<f64>; 4])>, RestoreError> {
    let malformed = || RestoreError::Malformed {
        key: "patch payload".to_owned(),
        expected: "index and four length-prefixed field arrays per patch",
    };
    let mut entries = Vec::new();
    let mut at = 0usize;
    let read_u64 = |at: &mut usize| -> Result<u64, RestoreError> {
        let end = at.checked_add(8).ok_or_else(malformed)?;
        let bytes = blob.get(*at..end).ok_or_else(malformed)?;
        *at = end;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8-byte slice")))
    };
    while at < blob.len() {
        let index = read_u64(&mut at)? as usize;
        let mut fields: [Vec<f64>; 4] = Default::default();
        for f in fields.iter_mut() {
            let len = read_u64(&mut at)? as usize;
            let end = at.checked_add(len.checked_mul(8).ok_or_else(malformed)?);
            let bytes = end.and_then(|e| blob.get(at..e)).ok_or_else(malformed)?;
            *f = bytes
                .chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")))
                .collect();
            at += len * 8;
        }
        entries.push((index, fields));
    }
    Ok(entries)
}

impl HydroSim {
    /// Serialise the simulation state into a restart database
    /// (single-rank wrapper over [`HydroSim::try_save_checkpoint`]).
    ///
    /// Without a communicator the save is purely local, so on a
    /// single-rank simulation the database is the complete global
    /// manifest. Multi-rank simulations must use
    /// [`HydroSim::try_save_checkpoint`] with their communicator
    /// instead — a local save would cover only this rank's patches and
    /// fail the restore-side contiguity check.
    pub fn save_checkpoint(&self) -> Database {
        self.try_save_checkpoint(None).expect("a local checkpoint save cannot fail")
    }

    /// Serialise the simulation into a *global* checkpoint manifest.
    ///
    /// Every rank contributes its owned structure records and patch
    /// payloads; a per-level allgather merges them so every rank
    /// returns an identical database covering the whole simulation,
    /// keyed by patch identity rather than owner rank. That makes the
    /// checkpoint rank-count-independent: it restores onto any rank
    /// count, including the survivor set after a permanent rank loss.
    ///
    /// Run-through discipline: the exchanges execute for every level on
    /// every rank regardless of earlier errors, then an agreement
    /// reduction decides the verdict collectively — either every rank
    /// returns a usable manifest or every rank returns `Err` together.
    ///
    /// # Errors
    /// [`RestoreError::Exchange`] when a fault interrupts the merge
    /// exchanges, or the collective agreement reports a peer failure.
    pub fn try_save_checkpoint(&self, comm: Option<&Comm>) -> Result<Database, RestoreError> {
        let mut db = Database::new();
        db.put("format", Value::I64(CHECKPOINT_FORMAT));
        db.put("time", Value::F64(self.time()));
        db.put("step", Value::I64(self.steps_taken() as i64));
        db.put("prev_dt", Value::F64(self.prev_dt()));
        db.put("num_levels", Value::I64(self.hierarchy().num_levels() as i64));
        let fields = *self.fields();
        let mut first_err: Option<RestoreError> = None;
        for l in 0..self.hierarchy().num_levels() {
            let level = self.hierarchy().level(l);
            let mut rec_bytes = Vec::new();
            let mut entries = Vec::new();
            for patch in level.local() {
                let b = patch.cell_box();
                for w in [patch.id().index as i64, b.lo.x, b.lo.y, b.hi.x, b.hi.y] {
                    rec_bytes.extend_from_slice(&w.to_le_bytes());
                }
                let values = checkpoint_fields(&fields).map(|(_, var)| read_values(patch.data(var)));
                entries.push((patch.id().index, values));
            }
            let blob = encode_patch_blob(&entries);
            let (rec_parts, blob_parts) = if let Some(comm) = comm {
                let rec = match comm.try_allgatherv(bytes::Bytes::from(rec_bytes), Category::Other)
                {
                    Ok(parts) => parts,
                    Err(e) => {
                        first_err.get_or_insert(RestoreError::Exchange { detail: e.to_string() });
                        Vec::new()
                    }
                };
                let data = match comm.try_allgatherv(bytes::Bytes::from(blob), Category::Other) {
                    Ok(parts) => parts,
                    Err(e) => {
                        first_err.get_or_insert(RestoreError::Exchange { detail: e.to_string() });
                        Vec::new()
                    }
                };
                (rec, data)
            } else {
                (vec![bytes::Bytes::from(rec_bytes)], vec![bytes::Bytes::from(blob)])
            };

            // Merge into the canonical global form: records and patch
            // children sorted by patch index, identical on every rank.
            let mut words: Vec<i64> = rec_parts
                .iter()
                .flat_map(|p| p.chunks_exact(8))
                .map(|c| i64::from_le_bytes(c.try_into().expect("8-byte chunk")))
                .collect();
            if words.len().is_multiple_of(RECORD_WORDS) {
                let mut recs: Vec<[i64; RECORD_WORDS]> = words
                    .chunks_exact(RECORD_WORDS)
                    .map(|c| c.try_into().expect("record chunk"))
                    .collect();
                recs.sort_by_key(|r| r[0]);
                words = recs.into_iter().flatten().collect();
            }
            let ldb = db.child(&format!("level_{l}"));
            ldb.put("records", Value::VecI64(words));
            let mut merged = Vec::new();
            for part in &blob_parts {
                match decode_patch_blob(part) {
                    Ok(mut es) => merged.append(&mut es),
                    Err(e) => {
                        first_err.get_or_insert(e);
                    }
                }
            }
            merged.sort_by_key(|&(index, _)| index);
            for (index, values) in merged {
                let pdb = ldb.child(&format!("patch_{index}"));
                for ((name, _), v) in checkpoint_fields(&fields).into_iter().zip(values) {
                    pdb.put(name, Value::VecF64(v));
                }
            }
        }

        // Agreement: every rank adopts the manifest, or no rank does.
        if let Some(comm) = comm {
            let ok = if first_err.is_none() { 1.0 } else { 0.0 };
            match comm.try_allreduce_min(ok, Category::Other) {
                Ok(all_ok) if all_ok >= 1.0 => {}
                Ok(_) => {
                    return Err(first_err.unwrap_or_else(|| RestoreError::Exchange {
                        detail: "a peer rank failed to assemble the checkpoint manifest".into(),
                    }))
                }
                Err(e) => {
                    return Err(
                        first_err.unwrap_or(RestoreError::Exchange { detail: e.to_string() })
                    )
                }
            }
        } else if let Some(e) = first_err {
            return Err(e);
        }
        Ok(db)
    }

    /// Restore a checkpoint into this simulation.
    ///
    /// `self` must have been constructed with the same domain and
    /// physics configuration as the checkpointed run (the database
    /// stores state, not configuration — matching SAMRAI, where the
    /// input deck travels separately); the rank count may differ, since
    /// format-2 manifests are rank-count-independent. Panicking wrapper
    /// over [`HydroSim::try_restore_checkpoint`].
    ///
    /// # Panics
    /// Panics on malformed databases or injected faults.
    pub fn restore_checkpoint(&mut self, db: &Database, comm: Option<&Comm>) {
        self.try_restore_checkpoint(db, comm).unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fault-aware restore from a global (format 2) checkpoint
    /// manifest: rebuilds the level structure, re-derives patch
    /// ownership for the *current* rank count with the same
    /// space-filling-curve partitioner the live run uses, loads the
    /// owned state arrays, and re-primes the derived fields. Because
    /// the manifest carries no owner ranks, the checkpoint may have
    /// been written at any rank count.
    ///
    /// Run-through discipline: structure decoding is local (the
    /// manifest is already global), and an agreement reduction commits
    /// the decoded structure before any rank touches its hierarchy — a
    /// fault aborts every rank together, so the subsequent re-priming
    /// fills never run against divergent structure.
    ///
    /// # Errors
    /// A typed [`RestoreError`] for malformed databases
    /// (missing/misshapen keys, wrong manifest format) or injected
    /// transport faults. On `Err` the simulation state is unspecified;
    /// recovery rebuilds a fresh simulation and retries.
    pub fn try_restore_checkpoint(
        &mut self,
        db: &Database,
        comm: Option<&Comm>,
    ) -> Result<(), RestoreError> {
        match db.get_i64("format") {
            Some(CHECKPOINT_FORMAT) => {}
            Some(_) => {
                return Err(RestoreError::Malformed {
                    key: "format".to_owned(),
                    expected: "checkpoint manifest format 2",
                })
            }
            None => return Err(RestoreError::MissingKey { key: "format".to_owned() }),
        }
        let num_levels = db
            .get_i64("num_levels")
            .ok_or_else(|| RestoreError::MissingKey { key: "num_levels".to_owned() })?
            as usize;
        if num_levels > self.hierarchy().max_levels() || num_levels == 0 {
            return Err(RestoreError::Malformed {
                key: "num_levels".to_owned(),
                expected: "between 1 and this configuration's max_levels",
            });
        }
        let nranks = self.hierarchy().nranks();
        let mut first_err: Option<RestoreError> = None;

        // Phase 1 (local): decode every level's structure from the
        // global manifest and re-derive ownership for the current rank
        // count. No exchange is needed — the manifest already covers
        // the whole simulation — but errors are still carried to the
        // agreement below so every rank aborts together.
        let mut structures: Vec<Option<(Vec<GBox>, Vec<usize>)>> = Vec::with_capacity(num_levels);
        for l in 0..num_levels {
            let words: Vec<i64> = match db.get_db(&format!("level_{l}")) {
                Some(ldb) => match ldb.get("records") {
                    Some(Value::VecI64(v)) => v.clone(),
                    Some(_) => {
                        first_err.get_or_insert(RestoreError::Malformed {
                            key: "records".to_owned(),
                            expected: "integer array",
                        });
                        Vec::new()
                    }
                    None => {
                        first_err
                            .get_or_insert(RestoreError::MissingKey { key: "records".to_owned() });
                        Vec::new()
                    }
                },
                None => {
                    first_err.get_or_insert(RestoreError::MissingKey { key: format!("level_{l}") });
                    Vec::new()
                }
            };
            match decode_records(&words) {
                Ok(boxes) => {
                    let owners = rbamr_amr::balance::partition_sfc(&boxes, nranks);
                    structures.push(Some((boxes, owners)));
                }
                Err(e) => {
                    first_err.get_or_insert(e);
                    structures.push(None);
                }
            }
        }

        // Agreement: commit the structure on every rank, or abort on
        // every rank, before anyone rebuilds its hierarchy. Without
        // this a rank that failed assembly would skip the re-priming
        // fills its peers run, and the job would deadlock.
        if let Some(comm) = comm {
            let ok = if first_err.is_none() { 1.0 } else { 0.0 };
            match comm.try_allreduce_min(ok, Category::Other) {
                Ok(all_ok) if all_ok >= 1.0 => {}
                Ok(_) => {
                    return Err(first_err.unwrap_or_else(|| RestoreError::Exchange {
                        detail: "a peer rank failed to assemble the checkpoint structure".into(),
                    }))
                }
                Err(e) => {
                    return Err(
                        first_err.unwrap_or(RestoreError::Exchange { detail: e.to_string() })
                    )
                }
            }
        } else if let Some(e) = first_err.take() {
            return Err(e);
        }

        // Phase 2 (local): apply the structure and load patch data.
        // Data-load errors are recorded and carried through — the
        // re-priming below still runs its full communication pattern.
        let fields = *self.fields();
        for (l, s) in structures.into_iter().enumerate() {
            let (boxes, owners) = s.expect("structure committed by the agreement above");
            self.set_level_for_restart(l, boxes, owners);
        }
        self.truncate_levels_for_restart(num_levels);
        for l in 0..num_levels {
            let Some(ldb) = db.get_db(&format!("level_{l}")) else {
                continue; // recorded in phase 1; unreachable past the agreement
            };
            let level = self.hierarchy_mut().level_mut(l);
            for patch in level.local_mut() {
                let key = format!("patch_{}", patch.id().index);
                let Some(pdb) = ldb.get_db(&key) else {
                    first_err.get_or_insert(RestoreError::MissingKey { key });
                    continue;
                };
                for (name, var) in checkpoint_fields(&fields) {
                    let Some(values) = pdb.get_vec_f64(name) else {
                        first_err.get_or_insert(RestoreError::MissingKey { key: name.to_owned() });
                        continue;
                    };
                    if let Err(e) = try_write_values(patch.data_mut(var), values, name) {
                        first_err.get_or_insert(e);
                    }
                }
            }
        }

        // Restore integration state and re-prime derived fields.
        let time =
            db.get_f64("time").ok_or_else(|| RestoreError::MissingKey { key: "time".to_owned() });
        let step =
            db.get_i64("step").ok_or_else(|| RestoreError::MissingKey { key: "step".to_owned() });
        let prev_dt = db
            .get_f64("prev_dt")
            .ok_or_else(|| RestoreError::MissingKey { key: "prev_dt".to_owned() });
        match (time, step, prev_dt) {
            (Ok(t), Ok(s), Ok(p)) => self.set_progress_for_restart(t, s as usize, p),
            (t, s, p) => {
                let e = [t.err(), s.err(), p.err()].into_iter().flatten().next();
                first_err.get_or_insert(e.expect("at least one error"));
            }
        }
        if let Err(e) = self.reprime_after_restart(comm) {
            first_err.get_or_insert(e);
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Write a checkpoint file ([`Database::save`] of
    /// [`HydroSim::save_checkpoint`]).
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn save_checkpoint_file(&self, path: &std::path::Path) -> std::io::Result<()> {
        self.save_checkpoint().save(path)
    }

    /// Restore from a checkpoint file written by
    /// [`HydroSim::save_checkpoint_file`].
    ///
    /// # Errors
    /// A typed [`RestoreError`] for I/O failures, truncated or
    /// corrupted files, and malformed content — never a panic.
    pub fn restore_checkpoint_file(&mut self, path: &std::path::Path) -> Result<(), RestoreError> {
        self.try_restore_checkpoint(&Database::load(path)?, None)
    }
}

#[cfg(test)]
mod tests {
    use crate::integrator::{HydroConfig, HydroSim, Placement};
    use crate::state::RegionInit;
    use rbamr_amr::restart::RestoreError;
    use rbamr_perfmodel::{Clock, Machine};

    fn sod_regions() -> Vec<RegionInit> {
        vec![
            RegionInit {
                rect: (0.0, 0.0, 0.5, 1.0),
                density: 1.0,
                energy: 2.5,
                xvel: 0.0,
                yvel: 0.0,
            },
            RegionInit {
                rect: (0.5, 0.0, 1.0, 1.0),
                density: 0.125,
                energy: 2.0,
                xvel: 0.0,
                yvel: 0.0,
            },
        ]
    }

    fn build(placement: Placement) -> HydroSim {
        let machine = match placement {
            Placement::Host => Machine::ipa_cpu_node(),
            _ => Machine::ipa_gpu(),
        };
        let config = HydroConfig { regrid_interval: 5, ..HydroConfig::default() };
        let mut sim = HydroSim::new(
            machine,
            placement,
            Clock::new(),
            (1.0, 1.0),
            (32, 32),
            2,
            2,
            config,
            sod_regions(),
            0,
            1,
        );
        sim.initialize(None);
        sim
    }

    fn check_roundtrip(placement: Placement) {
        // Reference: 12 uninterrupted steps.
        let mut reference = build(placement);
        for _ in 0..12 {
            reference.step(None);
        }

        // Checkpointed: 6 steps, save, restore into a fresh sim, 6 more.
        let mut first = build(placement);
        for _ in 0..6 {
            first.step(None);
        }
        let db = first.save_checkpoint();
        let mut resumed = build(placement);
        resumed.restore_checkpoint(&db, None);
        assert_eq!(resumed.steps_taken(), 6);
        assert!((resumed.time() - first.time()).abs() < 1e-15);
        for _ in 0..6 {
            resumed.step(None);
        }

        // Identical physics: the restart is exact.
        let a = reference.density_profile();
        let b = resumed.density_profile();
        assert_eq!(a.len(), b.len());
        for ((xa, da), (xb, dbv)) in a.iter().zip(&b) {
            assert_eq!(xa, xb);
            assert!((da - dbv).abs() < 1e-12, "restart diverged at x={xa}: {da} vs {dbv}");
        }
        let sa = reference.summary(None);
        let sb = resumed.summary(None);
        assert!((sa.mass - sb.mass).abs() < 1e-13);
        assert!((sa.total_energy() - sb.total_energy()).abs() < 1e-12);
    }

    #[test]
    fn host_checkpoint_roundtrip_is_exact() {
        check_roundtrip(Placement::Host);
    }

    #[test]
    fn device_checkpoint_roundtrip_is_exact() {
        check_roundtrip(Placement::Device);
    }

    #[test]
    fn checkpoint_file_roundtrip_is_exact() {
        let mut sim = build(Placement::Host);
        sim.run_steps(4, None);
        let path = std::env::temp_dir().join(format!("rbamr_ckpt_{}.bin", std::process::id()));
        sim.save_checkpoint_file(&path).unwrap();
        let mut resumed = build(Placement::Host);
        resumed.restore_checkpoint_file(&path).unwrap();
        assert_eq!(resumed.steps_taken(), 4);
        sim.step(None);
        resumed.step(None);
        let a = sim.density_profile();
        let b = resumed.density_profile();
        for ((xa, da), (xb, db_)) in a.iter().zip(&b) {
            assert_eq!(xa, xb);
            assert_eq!(da, db_);
        }
        std::fs::remove_file(&path).ok();
    }

    /// Restore into a *fresh* (never-initialised) simulation must match
    /// restore into an initialised one bitwise — the recovery driver
    /// rebuilds its simulation from scratch on every rollback.
    #[test]
    fn restore_into_uninitialized_sim_is_exact() {
        let mut sim = build(Placement::Host);
        sim.run_steps(5, None);
        let db = sim.save_checkpoint();

        let mut warm = build(Placement::Host);
        warm.restore_checkpoint(&db, None);
        let config = HydroConfig { regrid_interval: 5, ..HydroConfig::default() };
        let mut cold = HydroSim::new(
            Machine::ipa_cpu_node(),
            Placement::Host,
            Clock::new(),
            (1.0, 1.0),
            (32, 32),
            2,
            2,
            config,
            sod_regions(),
            0,
            1,
        );
        cold.restore_checkpoint(&db, None);
        assert_eq!(cold.steps_taken(), warm.steps_taken());
        assert_eq!(cold.state_field_digest(), warm.state_field_digest());
        warm.step(None);
        cold.step(None);
        assert_eq!(cold.state_field_digest(), warm.state_field_digest());
    }

    /// A corrupted checkpoint surfaces as a typed error, never a panic.
    #[test]
    fn malformed_checkpoint_is_a_typed_error() {
        use rbamr_amr::restart::{Database, Value};
        let mut sim = build(Placement::Host);
        sim.run_steps(3, None);
        let mut resumed = build(Placement::Host);

        // Missing everything: the format gate fires first.
        assert_eq!(
            resumed.try_restore_checkpoint(&Database::new(), None),
            Err(RestoreError::MissingKey { key: "format".to_owned() })
        );

        // A pre-manifest (format 1 / per-rank) checkpoint is rejected
        // with a typed error, not misread.
        let mut db = sim.save_checkpoint();
        db.put("format", Value::I64(1));
        assert_eq!(
            resumed.try_restore_checkpoint(&db, None),
            Err(RestoreError::Malformed {
                key: "format".to_owned(),
                expected: "checkpoint manifest format 2",
            })
        );

        // Absurd level count.
        let mut db = sim.save_checkpoint();
        db.put("num_levels", Value::I64(99));
        assert!(matches!(
            resumed.try_restore_checkpoint(&db, None),
            Err(RestoreError::Malformed { .. })
        ));

        // Field array of the wrong size.
        let mut db = sim.save_checkpoint();
        db.child("level_0").child("patch_0").put("density0", Value::VecF64(vec![1.0; 3]));
        assert_eq!(
            resumed.try_restore_checkpoint(&db, None),
            Err(RestoreError::Malformed {
                key: "density0".to_owned(),
                expected: "field array of the patch's size",
            })
        );

        // Non-contiguous record indices.
        let mut db = sim.save_checkpoint();
        let words = match db.get_db("level_0").unwrap().get("records") {
            Some(Value::VecI64(v)) => {
                let mut w = v.clone();
                w[0] += 7;
                w
            }
            _ => panic!("records"),
        };
        db.child("level_0").put("records", Value::VecI64(words));
        assert!(matches!(
            resumed.try_restore_checkpoint(&db, None),
            Err(RestoreError::Malformed { .. })
        ));
    }

    /// The acceptance case for the structure-keyed schedule cache
    /// across a restore: restoring a checkpoint whose structure the
    /// cache has already seen resolves schedules as hits, and the
    /// resulting plans are digest-identical to the originals.
    #[test]
    fn restore_hits_the_schedule_cache_with_identical_plans() {
        let mut sim = build(Placement::Host);
        sim.run_steps(6, None);
        let db = sim.save_checkpoint();
        let original = sim.start_fill_digests();

        let mut resumed = build(Placement::Host);
        resumed.restore_checkpoint(&db, None);
        // Level 0 never regrids, so at minimum its schedules come out
        // of the cache even if finer structure moved since construction.
        assert!(resumed.schedule_cache().hits() > 0, "restore must reuse cached schedules");
        assert_eq!(resumed.start_fill_digests(), original, "restored plans must match originals");

        // A second restore reproduces the structure exactly: every
        // schedule lookup hits and nothing is rebuilt.
        let hits = resumed.schedule_cache().hits();
        let misses = resumed.schedule_cache().misses();
        resumed.restore_checkpoint(&db, None);
        assert_eq!(
            resumed.schedule_cache().misses(),
            misses,
            "identical structure must not rebuild any schedule"
        );
        assert!(resumed.schedule_cache().hits() > hits);
        assert_eq!(resumed.start_fill_digests(), original);
    }

    #[test]
    fn checkpoint_stores_hierarchy_structure() {
        let mut sim = build(Placement::Host);
        sim.run_steps(3, None);
        let db = sim.save_checkpoint();
        assert_eq!(db.get_i64("format"), Some(2));
        assert_eq!(db.get_i64("num_levels"), Some(2));
        assert!(db.get_db("level_1").is_some());
        assert!(db.get_f64("time").unwrap() > 0.0);
    }
}
