//! The CloverLeaf numerical kernels as pure, data-parallel functions.
//!
//! Every kernel here is shared verbatim by the two patch integrators:
//! the host integrator calls them directly on `HostData` slices; the
//! device integrator calls them *inside* `Device::launch`, on
//! `DeviceBuffer` slices — so the CPU baseline and the GPU-resident
//! build execute identical arithmetic and any divergence between the
//! two paths is a residency/communication bug, not a numerics bug.
//!
//! All kernels are elementwise or row-parallel: outputs are written
//! through disjoint row slices ([`par_rows`]), inputs are read through
//! immutable [`View`]s — the safe-Rust equivalent of the CUDA
//! one-thread-per-element formulation the paper uses.

use rayon::prelude::*;
use rbamr_geometry::GBox;

/// Read-only view of a row-major field.
#[derive(Clone, Copy)]
pub struct View<'a> {
    /// The values, row-major over `dbox`.
    pub data: &'a [f64],
    /// The index box the array covers.
    pub dbox: GBox,
}

impl<'a> View<'a> {
    /// Construct, checking the length.
    pub fn new(data: &'a [f64], dbox: GBox) -> Self {
        debug_assert_eq!(data.len(), dbox.num_cells() as usize, "View: shape mismatch");
        Self { data, dbox }
    }

    /// Value at `(x, y)`.
    #[inline]
    pub fn at(&self, x: i64, y: i64) -> f64 {
        debug_assert!(
            self.dbox.contains(rbamr_geometry::IntVector::new(x, y)),
            "View::at ({x},{y}) outside {:?}",
            self.dbox
        );
        self.data[((y - self.dbox.lo.y) * self.dbox.size().x + (x - self.dbox.lo.x)) as usize]
    }

    /// Value at `(x, y)`, clamped into the box (one-sided stencils at
    /// the edge of allocated data).
    #[inline]
    pub fn at_c(&self, x: i64, y: i64) -> f64 {
        let cx = x.clamp(self.dbox.lo.x, self.dbox.hi.x - 1);
        let cy = y.clamp(self.dbox.lo.y, self.dbox.hi.y - 1);
        self.at(cx, cy)
    }
}

/// Row-parallel write over `region` of an array laid out over `obox`:
/// `f(row, y)` receives the full row slice (index with
/// `(x - obox.lo.x)`) and the absolute row coordinate.
pub fn par_rows(
    out: &mut [f64],
    obox: GBox,
    region: GBox,
    f: impl Fn(&mut [f64], i64) + Sync + Send,
) {
    if region.is_empty() {
        return;
    }
    debug_assert!(obox.contains_box(region), "par_rows: region {region:?} escapes {obox:?}");
    let w = obox.size().x as usize;
    let first = (region.lo.y - obox.lo.y) as usize;
    let rows = region.size().y as usize;
    out.par_chunks_mut(w)
        .skip(first)
        .take(rows)
        .enumerate()
        .for_each(|(r, row)| f(row, region.lo.y + r as i64));
}

/// The sign-of-`b`, magnitude-limited minimum used by the van Leer
/// limiter.
#[inline]
fn sign(v: f64, s: f64) -> f64 {
    if s >= 0.0 {
        v.abs()
    } else {
        -v.abs()
    }
}

// --------------------------------------------------------------------
// Equation of state
// --------------------------------------------------------------------

/// Ideal-gas pressure: `p = (γ-1) ρ e`.
pub fn ideal_gas_pressure(p: &mut [f64], cbox: GBox, rho: View, e: View, region: GBox, gamma: f64) {
    par_rows(p, cbox, region, |row, y| {
        for x in region.lo.x..region.hi.x {
            row[(x - cbox.lo.x) as usize] = (gamma - 1.0) * rho.at(x, y) * e.at(x, y);
        }
    });
}

/// Ideal-gas sound speed: `c = sqrt(γ p / ρ)` (zero in vacuum).
pub fn ideal_gas_soundspeed(
    ss: &mut [f64],
    cbox: GBox,
    p: View,
    rho: View,
    region: GBox,
    gamma: f64,
) {
    par_rows(ss, cbox, region, |row, y| {
        for x in region.lo.x..region.hi.x {
            let d = rho.at(x, y);
            let v = if d > 0.0 { (gamma * p.at(x, y).max(0.0) / d).sqrt() } else { 0.0 };
            row[(x - cbox.lo.x) as usize] = v;
        }
    });
}

// --------------------------------------------------------------------
// Artificial viscosity (von Neumann–Richtmyer quadratic + linear)
// --------------------------------------------------------------------

/// Velocity jumps across cell `(x, y)`: `(Δu, Δv)` from the four
/// surrounding nodes.
#[inline]
fn cell_velocity_jumps(u: View, v: View, x: i64, y: i64) -> (f64, f64) {
    let du = 0.5 * ((u.at(x + 1, y) + u.at(x + 1, y + 1)) - (u.at(x, y) + u.at(x, y + 1)));
    let dv = 0.5 * ((v.at(x, y + 1) + v.at(x + 1, y + 1)) - (v.at(x, y) + v.at(x + 1, y)));
    (du, dv)
}

/// Artificial viscous pressure `q`: quadratic + linear in the
/// compressive velocity jump, zero in expansion.
#[allow(clippy::too_many_arguments)]
pub fn viscosity(
    q: &mut [f64],
    cbox: GBox,
    rho: View,
    ss: View,
    u: View,
    v: View,
    region: GBox,
    dx: (f64, f64),
) {
    const Q2: f64 = 2.0; // quadratic coefficient
    const Q1: f64 = 0.5; // linear coefficient
    par_rows(q, cbox, region, |row, y| {
        for x in region.lo.x..region.hi.x {
            let (du, dv) = cell_velocity_jumps(u, v, x, y);
            let div = du / dx.0 + dv / dx.1;
            let out = &mut row[(x - cbox.lo.x) as usize];
            if div < 0.0 {
                // Compressive jump magnitude.
                let jump = (-du).max(0.0) + (-dv).max(0.0);
                *out = rho.at(x, y) * (Q2 * jump * jump + Q1 * ss.at(x, y) * jump);
            } else {
                *out = 0.0;
            }
        }
    });
}

// --------------------------------------------------------------------
// Timestep
// --------------------------------------------------------------------

/// Per-patch stable dt: CFL on the effective signal speed plus a
/// divergence (volume-change) constraint. Returns `+inf` for an empty
/// region.
#[allow(clippy::too_many_arguments)]
pub fn calc_dt(
    rho: View,
    p: View,
    q: View,
    ss: View,
    u: View,
    v: View,
    region: GBox,
    dx: (f64, f64),
    cfl: f64,
) -> f64 {
    if region.is_empty() {
        return f64::INFINITY;
    }
    let _ = p;
    (region.lo.y..region.hi.y)
        .into_par_iter()
        .map(|y| {
            let mut dt = f64::INFINITY;
            for x in region.lo.x..region.hi.x {
                let d = rho.at(x, y).max(1e-300);
                // Effective signal speed: sound speed stiffened by the
                // viscous pressure.
                let cs = (ss.at(x, y) * ss.at(x, y) + 2.0 * q.at(x, y) / d).sqrt();
                let umax = u
                    .at(x, y)
                    .abs()
                    .max(u.at(x + 1, y).abs())
                    .max(u.at(x, y + 1).abs())
                    .max(u.at(x + 1, y + 1).abs());
                let vmax = v
                    .at(x, y)
                    .abs()
                    .max(v.at(x + 1, y).abs())
                    .max(v.at(x, y + 1).abs())
                    .max(v.at(x + 1, y + 1).abs());
                let dtx = dx.0 / (cs + umax + 1e-12);
                let dty = dx.1 / (cs + vmax + 1e-12);
                let (du, dv) = cell_velocity_jumps(u, v, x, y);
                let div = (du / dx.0 + dv / dx.1).abs();
                let dtdiv = 0.25 / div.max(1e-12);
                dt = dt.min(cfl * dtx.min(dty)).min(dtdiv);
            }
            dt
        })
        .reduce(|| f64::INFINITY, f64::min)
}

// --------------------------------------------------------------------
// PdV
// --------------------------------------------------------------------

/// Net swept volume of cell `(x, y)` over `dt_eff` from time-averaged
/// node velocities (`u0`/`u1` are the same view in the predictor).
#[inline]
#[allow(clippy::too_many_arguments)]
fn total_flux(
    u0: View,
    u1: View,
    v0: View,
    v1: View,
    x: i64,
    y: i64,
    dt_eff: f64,
    dx: (f64, f64),
) -> f64 {
    let (xarea, yarea) = (dx.1, dx.0);
    let left =
        0.25 * dt_eff * xarea * (u0.at(x, y) + u0.at(x, y + 1) + u1.at(x, y) + u1.at(x, y + 1));
    let right = 0.25
        * dt_eff
        * xarea
        * (u0.at(x + 1, y) + u0.at(x + 1, y + 1) + u1.at(x + 1, y) + u1.at(x + 1, y + 1));
    let bottom =
        0.25 * dt_eff * yarea * (v0.at(x, y) + v0.at(x + 1, y) + v1.at(x, y) + v1.at(x + 1, y));
    let top = 0.25
        * dt_eff
        * yarea
        * (v0.at(x, y + 1) + v0.at(x + 1, y + 1) + v1.at(x, y + 1) + v1.at(x + 1, y + 1));
    right - left + top - bottom
}

/// PdV energy update: `e1 = e0 - (p + q)/ρ0 · ΔV / V`.
#[allow(clippy::too_many_arguments)]
pub fn pdv_energy(
    e1: &mut [f64],
    cbox: GBox,
    e0: View,
    rho0: View,
    p: View,
    q: View,
    u0: View,
    u1: View,
    v0: View,
    v1: View,
    region: GBox,
    dt_eff: f64,
    dx: (f64, f64),
) {
    let vol = dx.0 * dx.1;
    par_rows(e1, cbox, region, |row, y| {
        for x in region.lo.x..region.hi.x {
            let tf = total_flux(u0, u1, v0, v1, x, y, dt_eff, dx);
            let d = rho0.at(x, y).max(1e-300);
            let ech = (p.at(x, y) + q.at(x, y)) / d * tf / vol;
            row[(x - cbox.lo.x) as usize] = e0.at(x, y) - ech;
        }
    });
}

/// PdV density update: `ρ1 = ρ0 · V / (V + ΔV)`.
#[allow(clippy::too_many_arguments)]
pub fn pdv_density(
    rho1: &mut [f64],
    cbox: GBox,
    rho0: View,
    u0: View,
    u1: View,
    v0: View,
    v1: View,
    region: GBox,
    dt_eff: f64,
    dx: (f64, f64),
) {
    let vol = dx.0 * dx.1;
    par_rows(rho1, cbox, region, |row, y| {
        for x in region.lo.x..region.hi.x {
            let tf = total_flux(u0, u1, v0, v1, x, y, dt_eff, dx);
            row[(x - cbox.lo.x) as usize] = rho0.at(x, y) * vol / (vol + tf);
        }
    });
}

/// Plain field copy over a region (revert / reset).
pub fn copy_field(dst: &mut [f64], dbox: GBox, src: View, region: GBox) {
    par_rows(dst, dbox, region, |row, y| {
        for x in region.lo.x..region.hi.x {
            row[(x - dbox.lo.x) as usize] = src.at(x, y);
        }
    });
}

// --------------------------------------------------------------------
// Acceleration
// --------------------------------------------------------------------

/// Node velocity update from pressure and viscosity gradients. `axis`
/// selects the component being updated (0 = u, 1 = v).
#[allow(clippy::too_many_arguments)]
pub fn accelerate(
    vel1: &mut [f64],
    nbox: GBox,
    vel0: View,
    rho0: View,
    p: View,
    q: View,
    region: GBox,
    dt: f64,
    dx: (f64, f64),
    axis: usize,
) {
    let vol = dx.0 * dx.1;
    let (xarea, yarea) = (dx.1, dx.0);
    par_rows(vel1, nbox, region, |row, y| {
        for x in region.lo.x..region.hi.x {
            let nodal_mass = 0.25
                * (rho0.at(x - 1, y - 1) + rho0.at(x, y - 1) + rho0.at(x, y) + rho0.at(x - 1, y))
                * vol;
            let sbm = 0.5 * dt / nodal_mass.max(1e-300);
            let grad = |f: View| -> f64 {
                if axis == 0 {
                    xarea * ((f.at(x, y) - f.at(x - 1, y)) + (f.at(x, y - 1) - f.at(x - 1, y - 1)))
                } else {
                    yarea * ((f.at(x, y) - f.at(x, y - 1)) + (f.at(x - 1, y) - f.at(x - 1, y - 1)))
                }
            };
            row[(x - nbox.lo.x) as usize] = vel0.at(x, y) - sbm * (grad(p) + grad(q));
        }
    });
}

// --------------------------------------------------------------------
// Volume fluxes
// --------------------------------------------------------------------

/// Face volume fluxes from time-averaged node velocities. `axis`
/// selects x-faces (0) or y-faces (1); `region` is in the side data
/// index space.
#[allow(clippy::too_many_arguments)]
pub fn flux_calc(
    vol_flux: &mut [f64],
    sbox: GBox,
    vel0: View,
    vel1: View,
    region: GBox,
    dt: f64,
    dx: (f64, f64),
    axis: usize,
) {
    let (xarea, yarea) = (dx.1, dx.0);
    par_rows(vol_flux, sbox, region, |row, y| {
        for x in region.lo.x..region.hi.x {
            let f = if axis == 0 {
                0.25 * dt
                    * xarea
                    * (vel0.at(x, y) + vel0.at(x, y + 1) + vel1.at(x, y) + vel1.at(x, y + 1))
            } else {
                0.25 * dt
                    * yarea
                    * (vel0.at(x, y) + vel0.at(x + 1, y) + vel1.at(x, y) + vel1.at(x + 1, y))
            };
            row[(x - sbox.lo.x) as usize] = f;
        }
    });
}

// --------------------------------------------------------------------
// Cell advection (van Leer second order, directionally split)
// --------------------------------------------------------------------

/// Pre-advection cell volume for the current sweep.
#[allow(clippy::too_many_arguments)]
pub fn advec_pre_vol(
    pre: &mut [f64],
    cbox: GBox,
    vfx: View,
    vfy: View,
    region: GBox,
    dir: usize,
    sweep: usize,
    dx: (f64, f64),
) {
    let vol = dx.0 * dx.1;
    par_rows(pre, cbox, region, |row, y| {
        for x in region.lo.x..region.hi.x {
            let dfx = vfx.at(x + 1, y) - vfx.at(x, y);
            let dfy = vfy.at(x, y + 1) - vfy.at(x, y);
            let v = if sweep == 1 {
                vol + dfx + dfy
            } else if dir == 0 {
                vol + dfx
            } else {
                vol + dfy
            };
            row[(x - cbox.lo.x) as usize] = v;
        }
    });
}

/// Post-advection cell volume for the current sweep.
#[allow(clippy::too_many_arguments)]
pub fn advec_post_vol(
    post: &mut [f64],
    cbox: GBox,
    vfx: View,
    vfy: View,
    region: GBox,
    dir: usize,
    sweep: usize,
    dx: (f64, f64),
) {
    let vol = dx.0 * dx.1;
    par_rows(post, cbox, region, |row, y| {
        for x in region.lo.x..region.hi.x {
            let dfx = vfx.at(x + 1, y) - vfx.at(x, y);
            let dfy = vfy.at(x, y + 1) - vfy.at(x, y);
            // post = pre - (sweep-direction flux difference).
            let v = if sweep == 1 {
                if dir == 0 {
                    vol + dfy
                } else {
                    vol + dfx
                }
            } else {
                vol
            };
            row[(x - cbox.lo.x) as usize] = v;
        }
    });
}

/// The van Leer face value limiter: second-order upwind-biased face
/// reconstruction of `field` at face `f` (between cells `f-1` and `f`
/// along `axis`), given the signed face volume flux.
#[inline]
fn van_leer_face(
    field: View,
    pre_vol: View,
    flux: f64,
    x: i64,
    y: i64,
    axis: usize,
    mass_weighted: Option<(View, View)>, // (mass_flux view, pre_mass denominator field = density)
) -> f64 {
    // Indices along the sweep axis.
    let cell = |k: i64| -> (i64, i64) {
        if axis == 0 {
            (k, y)
        } else {
            (x, k)
        }
    };
    let f0 = if axis == 0 { x } else { y };
    let (donor, upwind, downwind) =
        if flux > 0.0 { (f0 - 1, f0 - 2, f0) } else { (f0, f0 + 1, f0 - 1) };
    let (dx_, dy_) = cell(donor);
    let (ux, uy) = cell(upwind);
    let (wx, wy) = cell(downwind);
    let sigma = match mass_weighted {
        None => {
            let pv = pre_vol.at_c(dx_, dy_).max(1e-300);
            flux.abs() / pv
        }
        Some((mass_flux, density)) => {
            let pm = (density.at_c(dx_, dy_) * pre_vol.at_c(dx_, dy_)).max(1e-300);
            mass_flux.at(x, y).abs() / pm
        }
    };
    let val_d = field.at_c(dx_, dy_);
    let diffuw = val_d - field.at_c(ux, uy);
    let diffdw = field.at_c(wx, wy) - val_d;
    let limiter = if diffuw * diffdw > 0.0 {
        let auw = diffuw.abs();
        let adw = diffdw.abs();
        let wind = if diffdw >= 0.0 { 1.0 } else { -1.0 };
        (1.0 - sigma) * wind * auw.min(adw).min(((2.0 - sigma) * adw + (1.0 + sigma) * auw) / 6.0)
    } else {
        0.0
    };
    let _ = sign;
    val_d + limiter
}

/// Mass flux through the faces of the sweep axis:
/// `mass_flux = vol_flux · ρ_face` with the van Leer face density.
#[allow(clippy::too_many_arguments)]
pub fn advec_mass_flux(
    mass_flux: &mut [f64],
    sbox: GBox,
    vol_flux: View,
    density1: View,
    pre_vol: View,
    region: GBox,
    axis: usize,
) {
    par_rows(mass_flux, sbox, region, |row, y| {
        for x in region.lo.x..region.hi.x {
            let vf = vol_flux.at(x, y);
            let rho_face = van_leer_face(density1, pre_vol, vf, x, y, axis, None);
            row[(x - sbox.lo.x) as usize] = vf * rho_face;
        }
    });
}

/// Energy flux through the faces of the sweep axis:
/// `ener_flux = mass_flux · e_face` with the mass-coordinate van Leer
/// face energy. `ener_flux` is stored in a cell-shaped work array
/// indexed by the face's low cell.
#[allow(clippy::too_many_arguments)]
pub fn advec_ener_flux(
    ener_flux: &mut [f64],
    cbox: GBox,
    mass_flux: View,
    energy1: View,
    density1: View,
    pre_vol: View,
    region: GBox,
    axis: usize,
) {
    par_rows(ener_flux, cbox, region, |row, y| {
        for x in region.lo.x..region.hi.x {
            let mf = mass_flux.at(x, y);
            let e_face =
                van_leer_face(energy1, pre_vol, mf, x, y, axis, Some((mass_flux, density1)));
            row[(x - cbox.lo.x) as usize] = mf * e_face;
        }
    });
}

/// Cell energy update from the energy and mass fluxes (must run before
/// [`advec_cell_density`], which overwrites the pre-advection density).
#[allow(clippy::too_many_arguments)]
pub fn advec_cell_energy(
    energy1: &mut [f64],
    cbox: GBox,
    energy_old: View,
    density_old: View,
    pre_vol: View,
    mass_flux: View,
    ener_flux: View,
    region: GBox,
    axis: usize,
) {
    par_rows(energy1, cbox, region, |row, y| {
        for x in region.lo.x..region.hi.x {
            let (mf_lo, mf_hi, ef_lo, ef_hi) = if axis == 0 {
                (
                    mass_flux.at(x, y),
                    mass_flux.at(x + 1, y),
                    ener_flux.at(x, y),
                    ener_flux.at_c(x + 1, y),
                )
            } else {
                (
                    mass_flux.at(x, y),
                    mass_flux.at(x, y + 1),
                    ener_flux.at(x, y),
                    ener_flux.at_c(x, y + 1),
                )
            };
            let pre_mass = density_old.at(x, y) * pre_vol.at(x, y);
            let post_mass = pre_mass + mf_lo - mf_hi;
            row[(x - cbox.lo.x) as usize] =
                (energy_old.at(x, y) * pre_mass + ef_lo - ef_hi) / post_mass.max(1e-300);
        }
    });
}

/// Cell density update from the mass and volume fluxes.
#[allow(clippy::too_many_arguments)]
pub fn advec_cell_density(
    density1: &mut [f64],
    cbox: GBox,
    density_old: View,
    pre_vol: View,
    mass_flux: View,
    vol_flux: View,
    region: GBox,
    axis: usize,
) {
    par_rows(density1, cbox, region, |row, y| {
        for x in region.lo.x..region.hi.x {
            let (mf_lo, mf_hi, vf_lo, vf_hi) = if axis == 0 {
                (
                    mass_flux.at(x, y),
                    mass_flux.at(x + 1, y),
                    vol_flux.at(x, y),
                    vol_flux.at(x + 1, y),
                )
            } else {
                (
                    mass_flux.at(x, y),
                    mass_flux.at(x, y + 1),
                    vol_flux.at(x, y),
                    vol_flux.at(x, y + 1),
                )
            };
            let pre_mass = density_old.at(x, y) * pre_vol.at(x, y);
            let post_mass = pre_mass + mf_lo - mf_hi;
            let advec_vol = pre_vol.at(x, y) + vf_lo - vf_hi;
            row[(x - cbox.lo.x) as usize] = post_mass / advec_vol.max(1e-300);
        }
    });
}

// --------------------------------------------------------------------
// Momentum advection
// --------------------------------------------------------------------

/// Nodal mass flux: the average of the four adjacent face mass fluxes
/// along the sweep axis.
pub fn mom_node_flux(
    node_flux: &mut [f64],
    nbox: GBox,
    mass_flux: View,
    region: GBox,
    axis: usize,
) {
    par_rows(node_flux, nbox, region, |row, y| {
        for x in region.lo.x..region.hi.x {
            let v = if axis == 0 {
                0.25 * (mass_flux.at_c(x, y - 1)
                    + mass_flux.at_c(x, y)
                    + mass_flux.at_c(x + 1, y - 1)
                    + mass_flux.at_c(x + 1, y))
            } else {
                0.25 * (mass_flux.at_c(x - 1, y)
                    + mass_flux.at_c(x, y)
                    + mass_flux.at_c(x - 1, y + 1)
                    + mass_flux.at_c(x, y + 1))
            };
            row[(x - nbox.lo.x) as usize] = v;
        }
    });
}

/// Post-advection nodal mass: the average of the four adjacent cell
/// masses (post-sweep density × post volume).
pub fn mom_node_mass_post(
    node_mass_post: &mut [f64],
    nbox: GBox,
    density1: View,
    post_vol: View,
    region: GBox,
) {
    par_rows(node_mass_post, nbox, region, |row, y| {
        for x in region.lo.x..region.hi.x {
            let m = |i: i64, j: i64| density1.at_c(i, j) * post_vol.at_c(i, j);
            row[(x - nbox.lo.x) as usize] =
                0.25 * (m(x - 1, y - 1) + m(x, y - 1) + m(x - 1, y) + m(x, y));
        }
    });
}

/// Pre-advection nodal mass from the post mass and the nodal fluxes.
pub fn mom_node_mass_pre(
    node_mass_pre: &mut [f64],
    nbox: GBox,
    node_mass_post: View,
    node_flux: View,
    region: GBox,
    axis: usize,
) {
    par_rows(node_mass_pre, nbox, region, |row, y| {
        for x in region.lo.x..region.hi.x {
            let (lo_f, hi_f) = if axis == 0 {
                (node_flux.at_c(x - 1, y), node_flux.at(x, y))
            } else {
                (node_flux.at_c(x, y - 1), node_flux.at(x, y))
            };
            row[(x - nbox.lo.x) as usize] = node_mass_post.at(x, y) - lo_f + hi_f;
        }
    });
}

/// Momentum flux: the advected velocity times the nodal mass flux,
/// with the van Leer limited node-face velocity.
#[allow(clippy::too_many_arguments)]
pub fn mom_flux(
    mom_flux: &mut [f64],
    nbox: GBox,
    vel1: View,
    node_flux: View,
    node_mass_pre: View,
    region: GBox,
    axis: usize,
) {
    par_rows(mom_flux, nbox, region, |row, y| {
        for x in region.lo.x..region.hi.x {
            let nf = node_flux.at(x, y);
            let f0 = if axis == 0 { x } else { y };
            let (donor, upwind, downwind) =
                if nf < 0.0 { (f0 + 1, f0 + 2, f0) } else { (f0, f0 - 1, f0 + 1) };
            let node = |k: i64| -> (i64, i64) {
                if axis == 0 {
                    (k, y)
                } else {
                    (x, k)
                }
            };
            let (dxn, dyn_) = node(donor);
            let (uxn, uyn) = node(upwind);
            let (wxn, wyn) = node(downwind);
            let sigma = nf.abs() / node_mass_pre.at_c(dxn, dyn_).max(1e-300);
            let vd = vel1.at_c(dxn, dyn_);
            let vdiffuw = vd - vel1.at_c(uxn, uyn);
            let vdiffdw = vel1.at_c(wxn, wyn) - vd;
            let limiter = if vdiffuw * vdiffdw > 0.0 {
                let auw = vdiffuw.abs();
                let adw = vdiffdw.abs();
                let wind = if vdiffdw >= 0.0 { 1.0 } else { -1.0 };
                wind * auw.min(adw).min(((2.0 - sigma) * adw + (1.0 + sigma) * auw) / 6.0)
            } else {
                0.0
            };
            let advec_vel = vd + (1.0 - sigma) * limiter;
            row[(x - nbox.lo.x) as usize] = advec_vel * nf;
        }
    });
}

/// Node velocity update from the momentum fluxes and nodal masses.
#[allow(clippy::too_many_arguments)]
pub fn mom_vel_update(
    vel1: &mut [f64],
    nbox: GBox,
    vel_old: View,
    mom_flux: View,
    node_mass_pre: View,
    node_mass_post: View,
    region: GBox,
    axis: usize,
) {
    par_rows(vel1, nbox, region, |row, y| {
        for x in region.lo.x..region.hi.x {
            let (lo_f, hi_f) = if axis == 0 {
                (mom_flux.at_c(x - 1, y), mom_flux.at(x, y))
            } else {
                (mom_flux.at_c(x, y - 1), mom_flux.at(x, y))
            };
            row[(x - nbox.lo.x) as usize] = (vel_old.at(x, y) * node_mass_pre.at(x, y) + lo_f
                - hi_f)
                / node_mass_post.at(x, y).max(1e-300);
        }
    });
}

// --------------------------------------------------------------------
// Flagging and diagnostics
// --------------------------------------------------------------------

/// Gradient refinement heuristic: tag where the relative jump of
/// density or energy across the cell exceeds the thresholds. Writes
/// row-major `i32` tags (0/1) over `region` into `tags`.
///
/// # Panics
/// Panics if `tags.len()` does not match the region.
pub fn flag_cells(
    tags: &mut [i32],
    rho: View,
    e: View,
    region: GBox,
    density_threshold: f64,
    energy_threshold: f64,
) {
    let w = region.size().x;
    assert_eq!(tags.len(), region.num_cells() as usize, "flag_cells: tag buffer shape");
    tags.par_chunks_mut(w as usize).enumerate().for_each(|(r, row)| {
        let y = region.lo.y + r as i64;
        for x in region.lo.x..region.hi.x {
            let rel = |f: View, thresh: f64| {
                let c = f.at(x, y).abs().max(1e-300);
                let jx = (f.at_c(x + 1, y) - f.at_c(x - 1, y)).abs();
                let jy = (f.at_c(x, y + 1) - f.at_c(x, y - 1)).abs();
                jx.max(jy) / c > thresh
            };
            row[(x - region.lo.x) as usize] =
                i32::from(rel(rho, density_threshold) || rel(e, energy_threshold));
        }
    });
}

/// Conservation diagnostics over `region` (CloverLeaf `field_summary`).
#[allow(clippy::too_many_arguments)]
pub fn field_summary(
    rho: View,
    e: View,
    p: View,
    u: View,
    v: View,
    region: GBox,
    dx: (f64, f64),
) -> crate::state::Summary {
    let vol = dx.0 * dx.1;
    (region.lo.y..region.hi.y)
        .into_par_iter()
        .map(|y| {
            let mut s = crate::state::Summary::default();
            for x in region.lo.x..region.hi.x {
                let d = rho.at(x, y);
                let vsqrd = 0.25
                    * ((u.at(x, y).powi(2) + v.at(x, y).powi(2))
                        + (u.at(x + 1, y).powi(2) + v.at(x + 1, y).powi(2))
                        + (u.at(x, y + 1).powi(2) + v.at(x, y + 1).powi(2))
                        + (u.at(x + 1, y + 1).powi(2) + v.at(x + 1, y + 1).powi(2)));
                s.volume += vol;
                s.mass += d * vol;
                s.internal_energy += d * e.at(x, y) * vol;
                s.kinetic_energy += 0.5 * d * vsqrd * vol;
                s.pressure += p.at(x, y) * vol;
            }
            s
        })
        .reduce(crate::state::Summary::default, |a, b| a.merged(&b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbamr_geometry::IntVector;

    fn b(x0: i64, y0: i64, x1: i64, y1: i64) -> GBox {
        GBox::from_coords(x0, y0, x1, y1)
    }

    fn constant(dbox: GBox, v: f64) -> Vec<f64> {
        vec![v; dbox.num_cells() as usize]
    }

    #[test]
    fn view_indexing_and_clamping() {
        let dbox = b(-1, -1, 3, 3);
        let data: Vec<f64> = dbox.iter().map(|p| (p.x * 10 + p.y) as f64).collect();
        let v = View::new(&data, dbox);
        assert_eq!(v.at(0, 0), 0.0);
        assert_eq!(v.at(2, 1), 21.0);
        assert_eq!(v.at_c(5, 1), v.at(2, 1));
        assert_eq!(v.at_c(-9, -9), v.at(-1, -1));
    }

    #[test]
    fn ideal_gas_on_uniform_state() {
        let cbox = b(0, 0, 4, 4);
        let rho = constant(cbox, 1.0);
        let e = constant(cbox, 2.5);
        let mut p = constant(cbox, 0.0);
        let mut ss = constant(cbox, 0.0);
        ideal_gas_pressure(&mut p, cbox, View::new(&rho, cbox), View::new(&e, cbox), cbox, 1.4);
        assert!((p[0] - 1.0).abs() < 1e-14); // (1.4-1)*1*2.5 = 1
        ideal_gas_soundspeed(&mut ss, cbox, View::new(&p, cbox), View::new(&rho, cbox), cbox, 1.4);
        assert!((ss[0] - (1.4f64).sqrt()).abs() < 1e-14);
    }

    #[test]
    fn viscosity_zero_in_uniform_flow() {
        let cbox = b(0, 0, 4, 4);
        let nbox = b(0, 0, 5, 5);
        let rho = constant(cbox, 1.0);
        let ss = constant(cbox, 1.0);
        let u = constant(nbox, 3.0); // uniform motion: no compression
        let v = constant(nbox, -1.0);
        let mut q = constant(cbox, 9.0);
        viscosity(
            &mut q,
            cbox,
            View::new(&rho, cbox),
            View::new(&ss, cbox),
            View::new(&u, nbox),
            View::new(&v, nbox),
            cbox,
            (0.1, 0.1),
        );
        assert!(q.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn viscosity_positive_under_compression() {
        let cbox = b(0, 0, 2, 2);
        let nbox = b(0, 0, 3, 3);
        let rho = constant(cbox, 2.0);
        let ss = constant(cbox, 1.0);
        // Converging x-velocity: u = -x.
        let u: Vec<f64> = nbox.iter().map(|p| -(p.x as f64)).collect();
        let v = constant(nbox, 0.0);
        let mut q = constant(cbox, 0.0);
        viscosity(
            &mut q,
            cbox,
            View::new(&rho, cbox),
            View::new(&ss, cbox),
            View::new(&u, nbox),
            View::new(&v, nbox),
            cbox,
            (1.0, 1.0),
        );
        // jump = 1 -> q = 2*(2*1 + 0.5*1*1) = 5.
        assert!(q.iter().all(|&x| (x - 5.0).abs() < 1e-14), "{q:?}");
    }

    #[test]
    fn calc_dt_scales_with_cell_size() {
        let cbox = b(0, 0, 4, 4);
        let nbox = b(0, 0, 5, 5);
        let rho = constant(cbox, 1.0);
        let p = constant(cbox, 1.0);
        let q = constant(cbox, 0.0);
        let ss = constant(cbox, 2.0);
        let u = constant(nbox, 0.0);
        let v = constant(nbox, 0.0);
        let views = |d: &'static str| d;
        let _ = views;
        let dt1 = calc_dt(
            View::new(&rho, cbox),
            View::new(&p, cbox),
            View::new(&q, cbox),
            View::new(&ss, cbox),
            View::new(&u, nbox),
            View::new(&v, nbox),
            cbox,
            (0.1, 0.1),
            0.5,
        );
        let dt2 = calc_dt(
            View::new(&rho, cbox),
            View::new(&p, cbox),
            View::new(&q, cbox),
            View::new(&ss, cbox),
            View::new(&u, nbox),
            View::new(&v, nbox),
            cbox,
            (0.05, 0.05),
            0.5,
        );
        assert!((dt1 / dt2 - 2.0).abs() < 1e-12);
        // dt = cfl * dx / cs = 0.5*0.1/2.
        assert!((dt1 - 0.025).abs() < 1e-12);
        assert_eq!(
            calc_dt(
                View::new(&rho, cbox),
                View::new(&p, cbox),
                View::new(&q, cbox),
                View::new(&ss, cbox),
                View::new(&u, nbox),
                View::new(&v, nbox),
                GBox::EMPTY,
                (0.1, 0.1),
                0.5
            ),
            f64::INFINITY
        );
    }

    #[test]
    fn pdv_conserves_state_with_zero_velocity() {
        let cbox = b(0, 0, 4, 4);
        let nbox = b(0, 0, 5, 5);
        let rho0 = constant(cbox, 1.5);
        let e0 = constant(cbox, 2.0);
        let p = constant(cbox, 1.0);
        let q = constant(cbox, 0.0);
        let u = constant(nbox, 0.0);
        let v = constant(nbox, 0.0);
        let mut e1 = constant(cbox, 0.0);
        let mut rho1 = constant(cbox, 0.0);
        let uv = View::new(&u, nbox);
        let vv = View::new(&v, nbox);
        pdv_energy(
            &mut e1,
            cbox,
            View::new(&e0, cbox),
            View::new(&rho0, cbox),
            View::new(&p, cbox),
            View::new(&q, cbox),
            uv,
            uv,
            vv,
            vv,
            cbox,
            0.01,
            (0.1, 0.1),
        );
        pdv_density(
            &mut rho1,
            cbox,
            View::new(&rho0, cbox),
            uv,
            uv,
            vv,
            vv,
            cbox,
            0.01,
            (0.1, 0.1),
        );
        assert!(e1.iter().all(|&x| (x - 2.0).abs() < 1e-14));
        assert!(rho1.iter().all(|&x| (x - 1.5).abs() < 1e-14));
    }

    #[test]
    fn pdv_compression_heats_and_densifies() {
        // Uniformly converging flow: u = -x on nodes.
        let cbox = b(0, 0, 2, 2);
        let nbox = b(0, 0, 3, 3);
        let rho0 = constant(cbox, 1.0);
        let e0 = constant(cbox, 1.0);
        let p = constant(cbox, 0.4);
        let q = constant(cbox, 0.0);
        let u: Vec<f64> = nbox.iter().map(|pnt| -(pnt.x as f64)).collect();
        let v = constant(nbox, 0.0);
        let mut e1 = constant(cbox, 0.0);
        let mut rho1 = constant(cbox, 0.0);
        let uv = View::new(&u, nbox);
        let vv = View::new(&v, nbox);
        pdv_energy(
            &mut e1,
            cbox,
            View::new(&e0, cbox),
            View::new(&rho0, cbox),
            View::new(&p, cbox),
            View::new(&q, cbox),
            uv,
            uv,
            vv,
            vv,
            cbox,
            0.05,
            (1.0, 1.0),
        );
        pdv_density(
            &mut rho1,
            cbox,
            View::new(&rho0, cbox),
            uv,
            uv,
            vv,
            vv,
            cbox,
            0.05,
            (1.0, 1.0),
        );
        assert!(e1.iter().all(|&x| x > 1.0), "compression must heat: {e1:?}");
        assert!(rho1.iter().all(|&x| x > 1.0), "compression must densify: {rho1:?}");
    }

    #[test]
    fn accelerate_pushes_down_pressure_gradient() {
        let cbox = b(-1, -1, 4, 4);
        let nbox = b(0, 0, 4, 4);
        let rho0 = constant(cbox, 1.0);
        // Pressure increasing with x: force along -x.
        let p: Vec<f64> = cbox.iter().map(|pnt| pnt.x as f64).collect();
        let q = constant(cbox, 0.0);
        let u0 = constant(nbox, 0.0);
        let mut u1 = constant(nbox, 0.0);
        accelerate(
            &mut u1,
            nbox,
            View::new(&u0, nbox),
            View::new(&rho0, cbox),
            View::new(&p, cbox),
            View::new(&q, cbox),
            nbox,
            0.1,
            (1.0, 1.0),
            0,
        );
        assert!(u1.iter().all(|&x| x < 0.0), "{u1:?}");
    }

    #[test]
    fn flux_calc_zero_for_static_flow() {
        let nbox = b(0, 0, 5, 5);
        let sxbox = b(0, 0, 5, 4);
        let u = constant(nbox, 0.0);
        let mut vf = constant(sxbox, 1.0);
        flux_calc(
            &mut vf,
            sxbox,
            View::new(&u, nbox),
            View::new(&u, nbox),
            sxbox,
            0.1,
            (1.0, 1.0),
            0,
        );
        assert!(vf.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn advection_of_uniform_state_is_exact() {
        // A uniform density advected by uniform fluxes must stay
        // uniform (the telescoping test for the flux form).
        let cbox = b(-2, -2, 6, 6);
        let sxbox = b(-2, -2, 7, 6);
        let sybox = b(-2, -2, 6, 7);
        let rho = constant(cbox, 2.0);
        let e = constant(cbox, 1.0);
        let vol = 1.0;
        // Uniform positive x-flux, zero y-flux.
        let vfx = constant(sxbox, 0.1 * vol);
        let vfy = constant(sybox, 0.0);
        let mut pre = constant(cbox, 0.0);
        let mut post = constant(cbox, 0.0);
        advec_pre_vol(
            &mut pre,
            cbox,
            View::new(&vfx, sxbox),
            View::new(&vfy, sybox),
            cbox,
            0,
            1,
            (1.0, 1.0),
        );
        advec_post_vol(
            &mut post,
            cbox,
            View::new(&vfx, sxbox),
            View::new(&vfy, sybox),
            cbox,
            0,
            1,
            (1.0, 1.0),
        );
        assert!(pre.iter().all(|&x| (x - 1.0).abs() < 1e-14));
        let mut mfx = constant(sxbox, 0.0);
        let interior = b(0, 0, 4, 4);
        let faces = b(0, 0, 5, 4);
        advec_mass_flux(
            &mut mfx,
            sxbox,
            View::new(&vfx, sxbox),
            View::new(&rho, cbox),
            View::new(&pre, cbox),
            faces,
            0,
        );
        for p in faces.iter() {
            let got = mfx[sxbox.offset_of(p)];
            assert!((got - 0.2).abs() < 1e-14, "face {p}: {got}"); // 0.1 * rho 2.0
        }
        let mut ef = constant(cbox, 0.0);
        advec_ener_flux(
            &mut ef,
            cbox,
            View::new(&mfx, sxbox),
            View::new(&e, cbox),
            View::new(&rho, cbox),
            View::new(&pre, cbox),
            b(0, 0, 5, 4).intersect(cbox),
            0,
        );
        let mut e1 = constant(cbox, 0.0);
        let mut rho1 = constant(cbox, 0.0);
        advec_cell_energy(
            &mut e1,
            cbox,
            View::new(&e, cbox),
            View::new(&rho, cbox),
            View::new(&pre, cbox),
            View::new(&mfx, sxbox),
            View::new(&ef, cbox),
            interior,
            0,
        );
        advec_cell_density(
            &mut rho1,
            cbox,
            View::new(&rho, cbox),
            View::new(&pre, cbox),
            View::new(&mfx, sxbox),
            View::new(&vfx, sxbox),
            interior,
            0,
        );
        for p in interior.iter() {
            assert!((rho1[cbox.offset_of(p)] - 2.0).abs() < 1e-13, "rho at {p}");
            assert!((e1[cbox.offset_of(p)] - 1.0).abs() < 1e-13, "e at {p}");
        }
    }

    #[test]
    fn flagging_marks_jumps_only() {
        let region = b(0, 0, 8, 4);
        let dbox = b(-2, -2, 10, 6);
        let rho: Vec<f64> = dbox.iter().map(|p| if p.x < 4 { 1.0 } else { 2.0 }).collect();
        let e = constant(dbox, 1.0);
        let mut tags = vec![0i32; region.num_cells() as usize];
        flag_cells(&mut tags, View::new(&rho, dbox), View::new(&e, dbox), region, 0.1, 0.1);
        for (k, p) in region.iter().enumerate() {
            let expected = (3..=4).contains(&p.x);
            assert_eq!(tags[k] == 1, expected, "cell {p}");
        }
    }

    #[test]
    fn advection_mass_telescopes_exactly() {
        // With zero flux through the outer faces of a region, the total
        // advected mass over that region is exactly conserved for
        // arbitrary interior fluxes (the telescoping property the
        // finite-volume form guarantees).
        let cbox = b(-2, -2, 8, 8);
        let sxbox = b(-2, -2, 9, 8);
        let interior = b(0, 0, 6, 6);
        let mut rho: Vec<f64> = constant(cbox, 0.0);
        for (k, v) in rho.iter_mut().enumerate() {
            *v = 1.0 + 0.3 * ((k * 13 % 7) as f64);
        }
        // Random-ish interior x-fluxes, zero on the interior's outer
        // faces (x = 0 and x = 6) and beyond.
        let mut vfx: Vec<f64> = constant(sxbox, 0.0);
        for p in b(1, 0, 6, 6).iter() {
            vfx[sxbox.offset_of(p)] = 0.05 * (((p.x * 31 + p.y * 17) % 11) as f64 - 5.0) / 10.0;
        }
        let vfy = constant(b(-2, -2, 8, 9), 0.0);
        let mut pre = constant(cbox, 0.0);
        advec_pre_vol(
            &mut pre,
            cbox,
            View::new(&vfx, sxbox),
            View::new(&vfy, b(-2, -2, 8, 9)),
            cbox,
            0,
            1,
            (1.0, 1.0),
        );
        let mut mfx = constant(sxbox, 0.0);
        advec_mass_flux(
            &mut mfx,
            sxbox,
            View::new(&vfx, sxbox),
            View::new(&rho, cbox),
            View::new(&pre, cbox),
            b(0, 0, 7, 6),
            0,
        );
        let mut rho1 = constant(cbox, 0.0);
        advec_cell_density(
            &mut rho1,
            cbox,
            View::new(&rho, cbox),
            View::new(&pre, cbox),
            View::new(&mfx, sxbox),
            View::new(&vfx, sxbox),
            interior,
            0,
        );
        // Total mass over the interior: sum rho*pre before, rho1*advec_vol
        // after; with zero boundary fluxes these are equal.
        let before: f64 =
            interior.iter().map(|p| rho[cbox.offset_of(p)] * pre[cbox.offset_of(p)]).sum();
        let after: f64 = interior
            .iter()
            .map(|p| {
                let advec_vol = pre[cbox.offset_of(p)] + vfx[sxbox.offset_of(p)]
                    - vfx[sxbox.offset_of(p + IntVector::new(1, 0))];
                rho1[cbox.offset_of(p)] * advec_vol
            })
            .sum();
        assert!((before - after).abs() < 1e-12, "mass drift {before} -> {after}");
    }

    #[test]
    fn accelerate_is_zero_for_uniform_pressure() {
        let cbox = b(-1, -1, 5, 5);
        let nbox = b(0, 0, 5, 5);
        let rho0 = constant(cbox, 1.0);
        let p = constant(cbox, 2.5);
        let q = constant(cbox, 0.7);
        let u0: Vec<f64> = nbox.iter().map(|pnt| (pnt.x - pnt.y) as f64).collect();
        let mut u1 = constant(nbox, 0.0);
        accelerate(
            &mut u1,
            nbox,
            View::new(&u0, nbox),
            View::new(&rho0, cbox),
            View::new(&p, cbox),
            View::new(&q, cbox),
            nbox,
            0.1,
            (1.0, 1.0),
            0,
        );
        // No gradients: velocity unchanged.
        assert_eq!(u1, u0);
    }

    #[test]
    fn field_summary_totals() {
        let cbox = b(0, 0, 2, 2);
        let nbox = b(0, 0, 3, 3);
        let rho = constant(cbox, 2.0);
        let e = constant(cbox, 3.0);
        let p = constant(cbox, 1.0);
        let u = constant(nbox, 1.0);
        let v = constant(nbox, 0.0);
        let s = field_summary(
            View::new(&rho, cbox),
            View::new(&e, cbox),
            View::new(&p, cbox),
            View::new(&u, nbox),
            View::new(&v, nbox),
            cbox,
            (0.5, 0.5),
        );
        assert!((s.volume - 1.0).abs() < 1e-14);
        assert!((s.mass - 2.0).abs() < 1e-14);
        assert!((s.internal_energy - 6.0).abs() < 1e-14);
        assert!((s.kinetic_energy - 1.0).abs() < 1e-14); // 0.5*2*1*1
        assert!((s.pressure - 1.0).abs() < 1e-14);
        assert!((s.total_energy() - 7.0).abs() < 1e-14);
    }
}
