//! Virtual-time ablations of the paper's design choices (Section IV):
//!
//! * **residency** — the paper's resident design against the Wang et
//!   al. copy-back baseline its Related Work criticises (full array
//!   in/out over PCIe around every kernel);
//! * **tag-bitmap compression** (Section IV-C) against raw `int` tag
//!   transfers, including the "nothing tagged" fast path;
//! * **"any tagged" patch skip** on a hierarchy where most patches are
//!   clean.
//!
//! ```text
//! cargo run --release -p rbamr-bench --bin ablations
//! ```

use rbamr_bench::measure_profile;
use rbamr_device::Device;
use rbamr_geometry::{Centring, GBox, IntVector};
use rbamr_gpu_amr::{compress_tags, DeviceData};
use rbamr_hydro::{HydroConfig, HydroSim, Placement};
use rbamr_perfmodel::{Category, Clock, CostModel, Machine};
use rbamr_problems::sod_regions;

fn main() {
    residency_ablation();
    tag_compression_ablation();
    overlap_ablation();
    amr_vs_uniform_ablation();
}

/// The reason AMR exists (paper Section I): the same effective
/// resolution at a fraction of the cells and runtime, without losing
/// the solution. Compares a 3-level AMR Sod run against a uniform grid
/// at the AMR run's finest resolution.
fn amr_vs_uniform_ablation() {
    println!("\n=== ablation: AMR vs uniform fine grid (the paper's Section I case) ===\n");
    let coarse = 160i64;
    let levels = 3usize;
    let fine = coarse << (levels - 1); // 640^2 uniform equivalent

    let run = |cells: i64, levels: usize| -> (f64, f64, i64) {
        let config = HydroConfig { regrid_interval: 5, ..HydroConfig::default() };
        let mut sim = HydroSim::new(
            Machine::ipa_gpu(),
            Placement::Device,
            Clock::new(),
            (1.0, 1.0),
            (cells, cells),
            levels,
            2,
            config,
            sod_regions(),
            0,
            1,
        );
        sim.initialize(None);
        sim.run_to_time(0.1, None);
        let err = rbamr_problems::sod::sod_l1_error(&sim.density_profile(), sim.time());
        (sim.clock().total(), err, sim.hierarchy().total_cells())
    };

    let (t_amr, e_amr, c_amr) = run(coarse, levels);
    let (t_uni, e_uni, c_uni) = run(fine, 1);
    println!("Sod to t = 0.1, {fine}^2 effective resolution:");
    println!(
        "  AMR ({levels} levels)  : {:>8.2} s modelled, {:>9} cells, L1 error {:.4}",
        t_amr, c_amr, e_amr
    );
    println!(
        "  uniform fine    : {:>8.2} s modelled, {:>9} cells, L1 error {:.4}",
        t_uni, c_uni, e_uni
    );
    println!(
        "  AMR stores {:.1}x fewer cells (the motivation for fitting runs in the\n  K20x's 6 GB) at {:.2}x the uniform runtime and {:.1}x its L1 error;\n  the margin grows with resolution as the refined fraction shrinks",
        c_uni as f64 / c_amr as f64,
        t_amr / t_uni,
        e_amr / e_uni
    );
}

/// The paper's Section VI future work, implemented as a timing-model
/// extension: PCIe transfers hide behind banked kernel time.
fn overlap_ablation() {
    println!("\n=== extension: transfer/compute overlap (paper future work) ===\n");
    for placement in [Placement::Device, Placement::DeviceCopyBack] {
        let mut per_mode = Vec::new();
        for overlap in [false, true] {
            let mut config =
                HydroConfig { regrid_interval: 0, max_patch_size: 64, ..HydroConfig::default() };
            config.regrid.max_patch_size = 64;
            let mut sim = HydroSim::new(
                Machine::ipa_gpu(),
                placement,
                Clock::new(),
                (1.0, 1.0),
                (128, 128),
                2,
                2,
                config,
                sod_regions(),
                0,
                1,
            );
            sim.initialize(None);
            sim.device().unwrap().set_transfer_overlap(overlap);
            let profile = measure_profile(&mut sim, None, 3);
            per_mode.push(profile.per_step.total());
        }
        let name = if placement == Placement::Device { "resident" } else { "copy-back" };
        println!("{name} build, per-step virtual time (128^2 Sod, 64-cell patches):");
        println!("  transfers serialised      : {:>8.3} ms", per_mode[0] * 1e3);
        println!("  transfers overlapped      : {:>8.3} ms", per_mode[1] * 1e3);
        println!(
            "  overlap benefit           : {:>8.1} %\n",
            (1.0 - per_mode[1] / per_mode[0]) * 100.0
        );
    }
    println!("(the resident design leaves little to hide; overlap mainly rescues");
    println!(" the copy-back baseline — consistent with GAMER/Uintah, which need");
    println!(" overlap precisely because they are not resident)");
}

fn run_placement(placement: Placement) -> (f64, u64, u64) {
    let config = HydroConfig { regrid_interval: 0, ..HydroConfig::default() };
    let mut sim = HydroSim::new(
        Machine::ipa_gpu(),
        placement,
        Clock::new(),
        (1.0, 1.0),
        (256, 256),
        3,
        2,
        config,
        sod_regions(),
        0,
        1,
    );
    sim.initialize(None);
    let device = sim.device().unwrap().clone();
    device.reset_transfer_stats();
    let profile = measure_profile(&mut sim, None, 3);
    let stats = device.stats();
    (profile.per_step.total(), (stats.d2h_bytes + stats.h2d_bytes) / 4, stats.kernel_launches / 4)
}

fn residency_ablation() {
    println!("=== ablation: resident vs copy-back (Wang et al. style), both MEASURED ===\n");
    let (resident, resident_pcie, launches) = run_placement(Placement::Device);
    let (copy_back, copyback_pcie, _) = run_placement(Placement::DeviceCopyBack);
    println!("per-step results, 256^2 Sod, 3 levels (~{launches} kernel launches/step):");
    println!(
        "  resident (paper design)   : {:>9.2} ms, {:>12} B PCIe/step",
        resident * 1e3,
        resident_pcie
    );
    println!(
        "  copy-back (naive port)    : {:>9.2} ms, {:>12} B PCIe/step",
        copy_back * 1e3,
        copyback_pcie
    );
    println!("  residency speedup         : {:>9.2}x", copy_back / resident);
    println!(
        "  PCIe traffic ratio        : {:>9.0}x\n",
        copyback_pcie as f64 / resident_pcie.max(1) as f64
    );
}

#[allow(dead_code)]
fn residency_ablation_modeled() {
    let config = HydroConfig { regrid_interval: 0, ..HydroConfig::default() };
    let mut sim = HydroSim::new(
        Machine::ipa_gpu(),
        Placement::Device,
        Clock::new(),
        (1.0, 1.0),
        (256, 256),
        3,
        2,
        config,
        sod_regions(),
        0,
        1,
    );
    sim.initialize(None);
    let device = sim.device().unwrap().clone();
    device.reset_transfer_stats();
    let profile = measure_profile(&mut sim, None, 3);
    let stats = device.stats();
    let launches_per_step = stats.kernel_launches as f64 / 4.0;

    let resident = profile.per_step.total();
    // Copy-back model: every kernel round-trips its working set over
    // PCIe (CloverLeaf-style kernels touch ~4 arrays; patch arrays are
    // total_cells/launches-per-patch-step sized on average).
    let cost = CostModel::new(Machine::ipa_gpu());
    let cells = profile.total_cells as f64;
    let avg_arrays = 4.0;
    let patches = launches_per_step / 52.0; // hydro phases per patch per step
    let array_bytes = cells / patches.max(1.0) * 8.0;
    let per_kernel_pcie = 2.0 * cost.pcie((avg_arrays * array_bytes) as u64);
    let copy_back = resident + launches_per_step * per_kernel_pcie;

    println!("per-step virtual time, 256^2 Sod, 3 levels:");
    println!("  resident (paper design)   : {:>9.2} ms", resident * 1e3);
    println!("  copy-back (naive port)    : {:>9.2} ms", copy_back * 1e3);
    println!("  residency speedup         : {:>9.2}x", copy_back / resident);
    println!(
        "  per-step PCIe, resident   : {:>9} B (dt scalar + halo packs)",
        stats.d2h_bytes / 4 + stats.h2d_bytes / 4
    );
    println!(
        "  per-step PCIe, copy-back  : {:>9.0} MB\n",
        launches_per_step * avg_arrays * array_bytes * 2.0 / 1e6
    );
}

fn tag_compression_ablation() {
    println!("=== ablation: tag-bitmap compression (Section IV-C) ===\n");
    let device = Device::k20x();
    let n = 256i64;
    let cell_box = GBox::from_coords(0, 0, n, n);

    // A patch with a thin tagged front.
    let mut tags = DeviceData::<i32>::new(&device, cell_box, IntVector::ZERO, Centring::Cell);
    let mut vals = vec![0i32; (n * n) as usize];
    for j in 0..n {
        for i in 120..136 {
            vals[(j * n + i) as usize] = 1;
        }
    }
    tags.upload_all(&vals, Category::Regrid);

    device.reset_transfer_stats();
    let before = device.clock().total();
    let bm = compress_tags(&tags, Category::Regrid);
    let compressed_time = device.clock().total() - before;
    let compressed_bytes = device.stats().d2h_bytes;

    device.reset_transfer_stats();
    let before = device.clock().total();
    let _raw = tags.download_all(Category::Regrid);
    let raw_time = device.clock().total() - before;
    let raw_bytes = device.stats().d2h_bytes;

    println!("tagged patch ({n}x{n}, 6% tagged):");
    println!(
        "  compressed: {:>8} B, {:>8.1} us   raw ints: {:>8} B, {:>8.1} us",
        compressed_bytes,
        compressed_time * 1e6,
        raw_bytes,
        raw_time * 1e6
    );
    println!(
        "  transfer saved: {:.0}x bytes, {:.1}x virtual time",
        raw_bytes as f64 / compressed_bytes as f64,
        raw_time / compressed_time
    );
    assert!(bm.any());

    // The untagged fast path.
    let clean = DeviceData::<i32>::new(&device, cell_box, IntVector::ZERO, Centring::Cell);
    device.reset_transfer_stats();
    let bm = compress_tags(&clean, Category::Regrid);
    println!("\nuntagged patch fast path:");
    println!(
        "  transferred {} B (the 'tagged' flag only; raw would be {} B)",
        device.stats().d2h_bytes,
        (n * n * 4)
    );
    assert!(!bm.any());
}
