//! Regenerates the **Section V-B runtime breakdown**: the percentage of
//! runtime spent advancing the simulation, calculating the timestep and
//! synchronising levels, at one node versus the largest scale.
//!
//! Paper anchors: at 4,096 nodes — advancing 44%, timestep 6%,
//! synchronisation 3%; at one node — advancing 59%, synchronisation 1%,
//! timestep <1%; "the time taken to fill boundaries remains roughly
//! the same".
//!
//! ```text
//! cargo run --release -p rbamr-bench --bin breakdown
//! ```

use rbamr_problems::synthetic::WeakScalingModel;

fn main() {
    let model = WeakScalingModel::titan_paper();
    println!("Section V-B runtime breakdown (triple point, Titan model)\n");
    println!(
        "{:>6} {:>14} {:>10} {:>16} {:>12}",
        "nodes", "hydrodynamics", "timestep", "synchronisation", "regridding"
    );
    println!("{}", "-".repeat(64));
    for nodes in [1u32, 64, 4096] {
        let g = model.grind_times(nodes);
        let t = g.total();
        println!(
            "{:>6} {:>13.1}% {:>9.1}% {:>15.1}% {:>11.1}%",
            nodes,
            g.hydro / t * 100.0,
            g.timestep / t * 100.0,
            g.sync / t * 100.0,
            g.regrid / t * 100.0,
        );
    }
    println!("{}", "-".repeat(64));
    println!("\npaper anchors:");
    println!("  1 node    : advancing 59%, synchronisation 1%, timestep <1%");
    println!("  4096 nodes: advancing 44%, timestep 6%, synchronisation 3%");
    println!("\n(the paper's 'advancing' excludes boundary filling, which it reports");
    println!(" separately as roughly constant; the model's hydrodynamics column");
    println!(" includes halo exchange, as in Figure 11)");
}
