//! Regenerates **Figure 9**: serial performance of one NVIDIA K20x
//! against one dual-socket E5-2670 node on the Sod problem, 1000
//! timesteps, coarse resolutions from ~3,125 to 6.4 million zones, 3
//! levels of refinement, ratio 2.
//!
//! Also prints the Section V-A statistics: the average small-problem
//! slowdown (paper: ~1.6x below 200k cells), the average large-problem
//! speedup (paper: 1.99x at >= 200k) and the maximum (paper: 2.67x).
//!
//! ```text
//! cargo run --release -p rbamr-bench --bin fig9_serial [-- --full]
//! ```
//!
//! `--full` includes the 3.2M- and 6.4M-zone rungs (a few minutes of
//! real compute); the default stops at 800k and is representative.

use rbamr_bench::{csv_dir_arg, fig9_resolutions, fmt_secs, measure_profile, sod_sim, write_csv};
use rbamr_hydro::Placement;
use rbamr_perfmodel::{Clock, Machine};

const PAPER_STEPS: usize = 1000;
const REGRID_INTERVAL: usize = 10;
const LEVELS: usize = 3;

fn run_one(placement: Placement, nx: i64, ny: i64) -> (f64, i64) {
    let machine = match placement {
        Placement::Host => Machine::ipa_cpu_node(),
        _ => Machine::ipa_gpu(),
    };
    // Patches are capped at 1024^2 cells; small problems are a single
    // patch (the serial study has no parallel decomposition).
    let mut sim = sod_sim(machine, placement, Clock::new(), nx, ny, LEVELS, 1024, 0, 1);
    sim.initialize(None);
    let steps = if nx >= 1024 { 2 } else { 4 };
    let profile = measure_profile(&mut sim, None, steps);
    (profile.projected_runtime(PAPER_STEPS, REGRID_INTERVAL), profile.total_cells)
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let sizes = fig9_resolutions(full);
    println!("Figure 9: serial performance, Sod, {PAPER_STEPS} steps, {LEVELS} levels, ratio 2");
    println!("(runtimes are modelled K20x / E5-2670 times; numerics run for real)\n");
    println!(
        "{:>12} {:>12} {:>14} {:>14} {:>9}",
        "coarse zones", "total cells", "CPU runtime(s)", "GPU runtime(s)", "speedup"
    );
    println!("{}", "-".repeat(66));

    let mut small_ratios = Vec::new();
    let mut large_ratios = Vec::new();
    let mut rows = Vec::new();
    for &(nx, ny) in &sizes {
        let (cpu, cells) = run_one(Placement::Host, nx, ny);
        let (gpu, _) = run_one(Placement::Device, nx, ny);
        let speedup = cpu / gpu;
        println!(
            "{:>12} {:>12} {:>14} {:>14} {:>8.2}x",
            nx * ny,
            cells,
            fmt_secs(cpu),
            fmt_secs(gpu),
            speedup
        );
        rows.push(vec![(nx * ny) as f64, cells as f64, cpu, gpu, speedup]);
        if nx * ny < 200_000 {
            small_ratios.push(speedup);
        } else {
            large_ratios.push(speedup);
        }
    }
    if let Some(dir) = csv_dir_arg() {
        let p = write_csv(
            &dir,
            "fig9_serial.csv",
            "coarse_zones,total_cells,cpu_s,gpu_s,speedup",
            &rows,
        );
        println!("\nwrote {}", p.display());
    }
    println!("{}", "-".repeat(66));

    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    if !small_ratios.is_empty() {
        println!(
            "below 200k zones: GPU is {:.2}x slower on average   (paper: ~1.6x slower)",
            1.0 / avg(&small_ratios)
        );
    }
    if !large_ratios.is_empty() {
        println!(
            "at/above 200k zones: average speedup {:.2}x           (paper: 1.99x)",
            avg(&large_ratios)
        );
        println!(
            "maximum speedup {:.2}x                                (paper: 2.67x)",
            large_ratios.iter().fold(0.0f64, |a, &b| a.max(b))
        );
    }
    if !full {
        println!("\n(run with --full for the 3.2M and 6.4M rungs, where the maximum occurs)");
    }
}
