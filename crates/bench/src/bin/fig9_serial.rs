//! Regenerates **Figure 9**: serial performance of one NVIDIA K20x
//! against one dual-socket E5-2670 node on the Sod problem, 1000
//! timesteps, coarse resolutions from ~3,125 to 6.4 million zones, 3
//! levels of refinement, ratio 2.
//!
//! Also prints the Section V-A statistics: the average small-problem
//! slowdown (paper: ~1.6x below 200k cells), the average large-problem
//! speedup (paper: 1.99x at >= 200k) and the maximum (paper: 2.67x).
//!
//! ```text
//! cargo run --release -p rbamr-bench --bin fig9_serial [-- --full] [--batched] [--json <path>]
//! ```
//!
//! `--full` includes the 3.2M- and 6.4M-zone rungs (a few minutes of
//! real compute); the default stops at 800k and is representative.
//!
//! `--batched` adds an ablation column: the same GPU runs with batched
//! per-level launches. The run gates in-process that the batched
//! executor's launch count per step stays within
//! `levels x MAX_BATCHED_LAUNCHES_PER_LEVEL_STEP` — the launch-bound
//! regime that per-patch launching (which scales with patch count)
//! cannot satisfy at scale.
//!
//! `--json <path>` writes the table as a JSON artifact for CI.

use rbamr_bench::{
    csv_dir_arg, fig9_resolutions, fmt_secs, measure_profile, path_arg, sod_config, sod_sim,
    write_csv,
};
use rbamr_hydro::{
    batched::{BATCHED_KERNEL_NAMES, MAX_BATCHED_LAUNCHES_PER_LEVEL_STEP},
    HydroSim, Placement,
};
use rbamr_perfmodel::{Clock, Machine};
use rbamr_problems::sod::sod_regions;
use rbamr_telemetry::Recorder;
use std::fmt::Write as _;

const PAPER_STEPS: usize = 1000;
const REGRID_INTERVAL: usize = 10;
const LEVELS: usize = 3;

fn run_one(placement: Placement, nx: i64, ny: i64) -> (f64, i64) {
    let machine = match placement {
        Placement::Host => Machine::ipa_cpu_node(),
        _ => Machine::ipa_gpu(),
    };
    // Patches are capped at 1024^2 cells; small problems are a single
    // patch (the serial study has no parallel decomposition).
    let mut sim = sod_sim(machine, placement, Clock::new(), nx, ny, LEVELS, 1024, 0, 1);
    sim.initialize(None);
    let steps = if nx >= 1024 { 2 } else { 4 };
    let profile = measure_profile(&mut sim, None, steps);
    (profile.projected_runtime(PAPER_STEPS, REGRID_INTERVAL), profile.total_cells)
}

/// The batched ablation: same GPU deck with batched per-level launches.
/// Returns the projected runtime and the measured launches per step,
/// gated in-process against the levels x phases bound.
fn run_batched(nx: i64, ny: i64) -> (f64, f64) {
    let mut config = sod_config(1024);
    config.batched = true;
    let mut sim = HydroSim::new(
        Machine::ipa_gpu(),
        Placement::Device,
        Clock::new(),
        (1.0, 1.0),
        (nx, ny),
        LEVELS,
        2,
        config,
        sod_regions(),
        0,
        1,
    );
    let rec = Recorder::new(0, sim.clock().clone());
    sim.set_recorder(rec.clone());
    sim.initialize(None);
    let steps = if nx >= 1024 { 2 } else { 4 };
    // Count batched launches by name roster (halo-fill, sync, and
    // regrid kernels launch under other names and are outside the
    // batched executor's launch budget), and inline measure_profile so
    // the counting window covers only pure hydro steps.
    let batched_launches = |rec: &Recorder| -> u64 {
        BATCHED_KERNEL_NAMES
            .iter()
            .map(|name| rec.counter(&format!("device.kernel_launches.{name}")))
            .sum()
    };
    sim.step(None); // warm-up: first dt ramp (and batch-plan build)
    let launches0 = batched_launches(&rec);
    let before = sim.clock().snapshot();
    for _ in 0..steps {
        sim.step(None);
    }
    let after = sim.clock().snapshot();
    let launches_per_step = (batched_launches(&rec) - launches0) as f64 / steps as f64;
    let per_step = (after.total() - before.total()) / steps as f64;
    let before_rg = sim.clock().snapshot();
    sim.regrid(None);
    let regrid = sim.clock().snapshot().total() - before_rg.total();
    let projected = per_step * PAPER_STEPS as f64 + regrid * (PAPER_STEPS / REGRID_INTERVAL) as f64;

    let bound = (LEVELS as u64 * MAX_BATCHED_LAUNCHES_PER_LEVEL_STEP) as f64;
    assert!(
        launches_per_step <= bound,
        "{nx}x{ny}: batched run issued {launches_per_step:.0} launches/step, \
         above the levels x phases bound {bound:.0}"
    );
    (projected, launches_per_step)
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let batched = std::env::args().any(|a| a == "--batched");
    let sizes = fig9_resolutions(full);
    println!("Figure 9: serial performance, Sod, {PAPER_STEPS} steps, {LEVELS} levels, ratio 2");
    println!("(runtimes are modelled K20x / E5-2670 times; numerics run for real)\n");
    if batched {
        println!(
            "{:>12} {:>12} {:>14} {:>14} {:>9} {:>14} {:>12}",
            "coarse zones",
            "total cells",
            "CPU runtime(s)",
            "GPU runtime(s)",
            "speedup",
            "batched(s)",
            "launch/step"
        );
        println!("{}", "-".repeat(94));
    } else {
        println!(
            "{:>12} {:>12} {:>14} {:>14} {:>9}",
            "coarse zones", "total cells", "CPU runtime(s)", "GPU runtime(s)", "speedup"
        );
        println!("{}", "-".repeat(66));
    }

    let mut small_ratios = Vec::new();
    let mut large_ratios = Vec::new();
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for &(nx, ny) in &sizes {
        let (cpu, cells) = run_one(Placement::Host, nx, ny);
        let (gpu, _) = run_one(Placement::Device, nx, ny);
        let speedup = cpu / gpu;
        let mut row = vec![(nx * ny) as f64, cells as f64, cpu, gpu, speedup];
        let mut json = format!(
            "{{\"coarse_zones\": {}, \"total_cells\": {cells}, \"cpu_s\": {cpu:.6}, \
             \"gpu_s\": {gpu:.6}, \"speedup\": {speedup:.4}",
            nx * ny
        );
        if batched {
            let (gpu_b, launches) = run_batched(nx, ny);
            println!(
                "{:>12} {:>12} {:>14} {:>14} {:>8.2}x {:>14} {:>12.1}",
                nx * ny,
                cells,
                fmt_secs(cpu),
                fmt_secs(gpu),
                speedup,
                fmt_secs(gpu_b),
                launches
            );
            row.extend([gpu_b, cpu / gpu_b, launches]);
            let _ = write!(
                json,
                ", \"gpu_batched_s\": {gpu_b:.6}, \"batched_speedup\": {:.4}, \
                 \"batched_launches_per_step\": {launches:.1}",
                cpu / gpu_b
            );
        } else {
            println!(
                "{:>12} {:>12} {:>14} {:>14} {:>8.2}x",
                nx * ny,
                cells,
                fmt_secs(cpu),
                fmt_secs(gpu),
                speedup
            );
        }
        json.push('}');
        json_rows.push(json);
        rows.push(row);
        if nx * ny < 200_000 {
            small_ratios.push(speedup);
        } else {
            large_ratios.push(speedup);
        }
    }
    if let Some(dir) = csv_dir_arg() {
        let header = if batched {
            "coarse_zones,total_cells,cpu_s,gpu_s,speedup,gpu_batched_s,batched_speedup,\
             batched_launches_per_step"
        } else {
            "coarse_zones,total_cells,cpu_s,gpu_s,speedup"
        };
        let p = write_csv(&dir, "fig9_serial.csv", header, &rows);
        println!("\nwrote {}", p.display());
    }
    if let Some(path) = path_arg("--json") {
        let json = format!(
            "{{\n  \"steps\": {PAPER_STEPS},\n  \"levels\": {LEVELS},\n  \"batched\": {batched},\n  \
             \"rows\": [\n    {}\n  ]\n}}\n",
            json_rows.join(",\n    ")
        );
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).expect("fig9: create artifact dir");
        }
        std::fs::write(&path, json).expect("fig9: write artifact");
        println!("wrote {}", path.display());
    }
    println!("{}", "-".repeat(if batched { 94 } else { 66 }));

    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    if !small_ratios.is_empty() {
        println!(
            "below 200k zones: GPU is {:.2}x slower on average   (paper: ~1.6x slower)",
            1.0 / avg(&small_ratios)
        );
    }
    if !large_ratios.is_empty() {
        println!(
            "at/above 200k zones: average speedup {:.2}x           (paper: 1.99x)",
            avg(&large_ratios)
        );
        println!(
            "maximum speedup {:.2}x                                (paper: 2.67x)",
            large_ratios.iter().fold(0.0f64, |a, &b| a.max(b))
        );
    }
    if !full {
        println!("\n(run with --full for the 3.2M and 6.4M rungs, where the maximum occurs)");
    }
}
