//! Schedule-build scaling: indexed vs brute-force metadata cost.
//!
//! Measures wall-clock construction time of a ghost-fill
//! [`RefineSchedule`] (same-level + coarse-fine planning) at 64, 256,
//! 1024 and 4096 fine patches, comparing the spatial-index build
//! against the retained all-pairs oracle. This is the quadratic
//! metadata overhead behind the regrid-cost growth in the paper's
//! Fig. 11.
//!
//! ```text
//! cargo run --release -p rbamr-bench --bin schedule_bench [-- --smoke] [--json PATH]
//! ```
//!
//! `--smoke` restricts the sweep to 64/256 patches with one repetition
//! (CI). `--json PATH` writes the measurements for the perf trajectory.

use rbamr_amr::ops::ConservativeCellRefine;
use rbamr_amr::schedule::FillSpec;
use rbamr_amr::RefineSchedule;
use rbamr_bench::{path_arg, schedule_bench_hierarchy};
use std::sync::Arc;
use std::time::Instant;

/// Median wall-clock nanoseconds of `reps` runs of `f`.
fn median_ns(reps: usize, mut f: impl FnMut()) -> u128 {
    let mut samples: Vec<u128> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let json_path = path_arg("--json");
    let (sizes, reps): (&[usize], usize) =
        if smoke { (&[64, 256], 1) } else { (&[64, 256, 1024, 4096], 5) };

    println!("Schedule-build scaling: indexed vs brute-force (rank 0 of 4)");
    println!("{:>8} {:>14} {:>14} {:>9}", "patches", "indexed(us)", "brute(us)", "speedup");
    println!("{}", "-".repeat(49));

    let mut rows = Vec::new();
    for &patches in sizes {
        let (h, reg, var) = schedule_bench_hierarchy(patches, 0, 4);
        let specs = [FillSpec { var, refine_op: Some(Arc::new(ConservativeCellRefine)) }];
        // Warm-up (allocator, page faults), then measure.
        RefineSchedule::new(&h, &reg, 1, &specs);
        let indexed = median_ns(reps, || {
            RefineSchedule::new(&h, &reg, 1, &specs);
        });
        let brute = median_ns(reps, || {
            RefineSchedule::new_bruteforce(&h, &reg, 1, &specs);
        });
        let speedup = brute as f64 / indexed as f64;
        println!(
            "{:>8} {:>14.1} {:>14.1} {:>8.2}x",
            patches,
            indexed as f64 / 1e3,
            brute as f64 / 1e3,
            speedup
        );
        rows.push((patches, indexed, brute, speedup));
    }

    if let Some(path) = json_path {
        let entries: Vec<String> = rows
            .iter()
            .map(|(p, i, b, s)| {
                format!(
                    "  {{\"patches\": {p}, \"indexed_ns\": {i}, \"brute_ns\": {b}, \
                     \"speedup\": {s:.3}}}"
                )
            })
            .collect();
        let body = format!("[\n{}\n]\n", entries.join(",\n"));
        std::fs::write(&path, body).expect("schedule_bench: write json");
        println!("\nwrote {}", path.display());
    }
}
