//! Schedule-build scaling: indexed vs brute-force metadata cost.
//!
//! Measures wall-clock construction time of a ghost-fill
//! [`RefineSchedule`] (same-level + coarse-fine planning) at 64, 256,
//! 1024 and 4096 fine patches, comparing the spatial-index build
//! against the retained all-pairs oracle. This is the quadratic
//! metadata overhead behind the regrid-cost growth in the paper's
//! Fig. 11.
//!
//! ```text
//! cargo run --release -p rbamr-bench --bin schedule_bench [-- --smoke] [--json PATH]
//! cargo run --release -p rbamr-bench --bin schedule_bench -- --steady-regrid [--smoke] [--json PATH]
//! ```
//!
//! `--smoke` restricts the sweep to 64/256 patches with one repetition
//! (CI). `--json PATH` writes the measurements for the perf trajectory.
//!
//! `--steady-regrid` instead exercises the structure-keyed schedule
//! cache on the Sod deck: converge the hierarchy, then regrid
//! repeatedly with an unchanged structure and compare the regrid-path
//! schedule-build time against a `schedule_caching = false` twin. The
//! run asserts a 100% cache hit-rate (zero rebuilds) after convergence
//! and at least a 5x reduction in build time.

use rbamr_amr::ops::ConservativeCellRefine;
use rbamr_amr::schedule::FillSpec;
use rbamr_amr::RefineSchedule;
use rbamr_bench::{path_arg, schedule_bench_hierarchy, sod_config};
use rbamr_hydro::{HydroSim, Placement};
use rbamr_perfmodel::{Clock, Machine};
use rbamr_problems::sod_regions;
use rbamr_telemetry::Recorder;
use std::sync::Arc;
use std::time::Instant;

/// Median wall-clock nanoseconds of `reps` runs of `f`.
fn median_ns(reps: usize, mut f: impl FnMut()) -> u128 {
    let mut samples: Vec<u128> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Per-mode counter deltas of the steady-regrid window.
struct SteadyStats {
    builds: u64,
    build_ns: u64,
    hits: u64,
    misses: u64,
}

/// Converge a Sod hierarchy, then run `regrids` structure-preserving
/// regrids and return the schedule counter deltas over that window.
fn run_steady(caching: bool, nx: i64, levels: usize, regrids: usize) -> SteadyStats {
    let mut config = sod_config(16);
    config.schedule_caching = caching;
    let clock = Clock::new();
    let mut sim = HydroSim::new(
        Machine::ipa_cpu_node(),
        Placement::Host,
        clock.clone(),
        (1.0, 1.0),
        (nx, nx),
        levels,
        2,
        config,
        sod_regions(),
        0,
        1,
    );
    let rec = Recorder::new(0, clock);
    sim.set_recorder(rec.clone());
    sim.initialize(None);
    // Convergence: the state is not advanced, so regridding reaches a
    // structural fixed point within a few passes.
    let converged = (0..10).any(|_| !sim.regrid(None).any_changed());
    assert!(converged, "steady-regrid: hierarchy failed to converge");

    let builds = rec.counter("schedule.builds");
    let build_ns = rec.counter("schedule.build_ns");
    let hits = rec.counter("schedule.cache_hits");
    let misses = rec.counter("schedule.cache_misses");
    for _ in 0..regrids {
        let outcome = sim.regrid(None);
        assert!(!outcome.any_changed(), "steady-regrid: structure moved at a fixed point");
    }
    SteadyStats {
        builds: rec.counter("schedule.builds") - builds,
        build_ns: rec.counter("schedule.build_ns") - build_ns,
        hits: rec.counter("schedule.cache_hits") - hits,
        misses: rec.counter("schedule.cache_misses") - misses,
    }
}

fn steady_regrid_mode(smoke: bool, json_path: Option<std::path::PathBuf>) {
    let (nx, levels, regrids) = if smoke { (32, 2, 8) } else { (64, 3, 32) };
    println!("Steady-regrid schedule caching: Sod {nx}x{nx}, {levels} levels, {regrids} regrids");

    let cached = run_steady(true, nx, levels, regrids);
    let uncached = run_steady(false, nx, levels, regrids);

    let lookups = cached.hits + cached.misses;
    let hit_rate = cached.hits as f64 / lookups.max(1) as f64;
    let reduction = uncached.build_ns as f64 / cached.build_ns.max(1) as f64;
    println!(
        "  cached:   {} builds, {} ns build time, {}/{} lookups hit",
        cached.builds, cached.build_ns, cached.hits, lookups
    );
    println!("  uncached: {} builds, {} ns build time", uncached.builds, uncached.build_ns);
    println!("  hit rate {:.1}%  build-time reduction {reduction:.1}x", hit_rate * 100.0);

    if let Some(path) = json_path {
        let body = format!(
            "{{\n  \"mode\": \"steady-regrid\",\n  \"nx\": {nx},\n  \"levels\": {levels},\n  \
             \"steady_regrids\": {regrids},\n  \"cache_hits\": {},\n  \"cache_misses\": {},\n  \
             \"hit_rate\": {hit_rate:.4},\n  \"cached_builds\": {},\n  \
             \"cached_build_ns\": {},\n  \"uncached_builds\": {},\n  \
             \"uncached_build_ns\": {},\n  \"build_time_reduction\": {reduction:.3}\n}}\n",
            cached.hits,
            cached.misses,
            cached.builds,
            cached.build_ns,
            uncached.builds,
            uncached.build_ns,
        );
        std::fs::write(&path, body).expect("schedule_bench: write json");
        println!("wrote {}", path.display());
    }

    // Acceptance gates (CI smoke relies on these panicking on failure).
    assert!(cached.hits > 0, "steady regrids must hit the cache");
    assert_eq!(cached.misses, 0, "steady regrids must not miss: hit rate {hit_rate}");
    assert_eq!(cached.builds, 0, "steady regrids must perform zero schedule rebuilds");
    assert!(uncached.builds > 0, "the uncached twin must rebuild every regrid");
    assert!(
        reduction >= 5.0,
        "schedule caching must cut regrid-path build time >= 5x (got {reduction:.2}x)"
    );
    println!("steady-regrid: PASS");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let json_path = path_arg("--json");
    if std::env::args().any(|a| a == "--steady-regrid") {
        steady_regrid_mode(smoke, json_path);
        return;
    }
    let (sizes, reps): (&[usize], usize) =
        if smoke { (&[64, 256], 1) } else { (&[64, 256, 1024, 4096], 5) };

    println!("Schedule-build scaling: indexed vs brute-force (rank 0 of 4)");
    println!("{:>8} {:>14} {:>14} {:>9}", "patches", "indexed(us)", "brute(us)", "speedup");
    println!("{}", "-".repeat(49));

    let mut rows = Vec::new();
    for &patches in sizes {
        let (h, reg, var) = schedule_bench_hierarchy(patches, 0, 4);
        let specs = [FillSpec { var, refine_op: Some(Arc::new(ConservativeCellRefine)) }];
        // Warm-up (allocator, page faults), then measure.
        RefineSchedule::new(&h, &reg, 1, &specs);
        let indexed = median_ns(reps, || {
            RefineSchedule::new(&h, &reg, 1, &specs);
        });
        let brute = median_ns(reps, || {
            RefineSchedule::new_bruteforce(&h, &reg, 1, &specs);
        });
        let speedup = brute as f64 / indexed as f64;
        println!(
            "{:>8} {:>14.1} {:>14.1} {:>8.2}x",
            patches,
            indexed as f64 / 1e3,
            brute as f64 / 1e3,
            speedup
        );
        rows.push((patches, indexed, brute, speedup));
    }

    if let Some(path) = json_path {
        let entries: Vec<String> = rows
            .iter()
            .map(|(p, i, b, s)| {
                format!(
                    "  {{\"patches\": {p}, \"indexed_ns\": {i}, \"brute_ns\": {b}, \
                     \"speedup\": {s:.3}}}"
                )
            })
            .collect();
        let body = format!("[\n{}\n]\n", entries.join(",\n"));
        std::fs::write(&path, body).expect("schedule_bench: write json");
        println!("\nwrote {}", path.display());
    }
}
