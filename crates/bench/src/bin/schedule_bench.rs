//! Schedule-build scaling: indexed vs brute-force metadata cost.
//!
//! Measures wall-clock construction time of a ghost-fill
//! [`RefineSchedule`] (same-level + coarse-fine planning) at 64, 256,
//! 1024 and 4096 fine patches, comparing the spatial-index build
//! against the retained all-pairs oracle. This is the quadratic
//! metadata overhead behind the regrid-cost growth in the paper's
//! Fig. 11.
//!
//! ```text
//! cargo run --release -p rbamr-bench --bin schedule_bench [-- --smoke] [--json PATH]
//! cargo run --release -p rbamr-bench --bin schedule_bench -- --steady-regrid [--smoke] [--json PATH]
//! cargo run --release -p rbamr-bench --bin schedule_bench -- --partitioned [--smoke] [--json PATH]
//! ```
//!
//! `--smoke` restricts the sweep to 64/256 patches with one repetition
//! (CI). `--json PATH` writes the measurements for the perf trajectory.
//!
//! `--steady-regrid` instead exercises the structure-keyed schedule
//! cache on the Sod deck: converge the hierarchy, then regrid
//! repeatedly with an unchanged structure and compare the regrid-path
//! schedule-build time against a `schedule_caching = false` twin. The
//! run asserts a 100% cache hit-rate (zero rebuilds) after convergence
//! and at least a 5x reduction in build time.
//!
//! `--partitioned` measures the partitioned-metadata path on a
//! simulated cluster (8 and 16 ranks): each rank converts to an owned +
//! ghosted view through the digest-verified exchange, then plans with
//! the owner-computes `Partitioned` strategy. Reports worst-rank
//! retained metadata bytes against the replicated footprint and the
//! level-1 build time of both paths, asserting plan-digest agreement
//! with the replicated build and sublinear per-rank retention.

use rbamr_amr::ops::ConservativeCellRefine;
use rbamr_amr::partition::RECORD_BYTES;
use rbamr_amr::schedule::FillSpec;
use rbamr_amr::{
    partition_hierarchy_metadata, BuildStrategy, InterestMargins, RefineSchedule, ScheduleBuild,
};
use rbamr_bench::{path_arg, schedule_bench_hierarchy, schedule_bench_hierarchy_sfc, sod_config};
use rbamr_hydro::{HydroSim, Placement};
use rbamr_netsim::Cluster;
use rbamr_perfmodel::{Clock, Machine};
use rbamr_problems::sod_regions;
use rbamr_telemetry::Recorder;
use std::sync::Arc;
use std::time::Instant;

/// Median wall-clock nanoseconds of `reps` runs of `f`.
fn median_ns(reps: usize, mut f: impl FnMut()) -> u128 {
    let mut samples: Vec<u128> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Per-mode counter deltas of the steady-regrid window.
struct SteadyStats {
    builds: u64,
    build_ns: u64,
    hits: u64,
    misses: u64,
}

/// Converge a Sod hierarchy, then run `regrids` structure-preserving
/// regrids and return the schedule counter deltas over that window.
fn run_steady(caching: bool, nx: i64, levels: usize, regrids: usize) -> SteadyStats {
    let mut config = sod_config(16);
    config.schedule_caching = caching;
    let clock = Clock::new();
    let mut sim = HydroSim::new(
        Machine::ipa_cpu_node(),
        Placement::Host,
        clock.clone(),
        (1.0, 1.0),
        (nx, nx),
        levels,
        2,
        config,
        sod_regions(),
        0,
        1,
    );
    let rec = Recorder::new(0, clock);
    sim.set_recorder(rec.clone());
    sim.initialize(None);
    // Convergence: the state is not advanced, so regridding reaches a
    // structural fixed point within a few passes.
    let converged = (0..10).any(|_| !sim.regrid(None).any_changed());
    assert!(converged, "steady-regrid: hierarchy failed to converge");

    let builds = rec.counter("schedule.builds");
    let build_ns = rec.counter("schedule.build_ns");
    let hits = rec.counter("schedule.cache_hits");
    let misses = rec.counter("schedule.cache_misses");
    for _ in 0..regrids {
        let outcome = sim.regrid(None);
        assert!(!outcome.any_changed(), "steady-regrid: structure moved at a fixed point");
    }
    SteadyStats {
        builds: rec.counter("schedule.builds") - builds,
        build_ns: rec.counter("schedule.build_ns") - build_ns,
        hits: rec.counter("schedule.cache_hits") - hits,
        misses: rec.counter("schedule.cache_misses") - misses,
    }
}

fn steady_regrid_mode(smoke: bool, json_path: Option<std::path::PathBuf>) {
    let (nx, levels, regrids) = if smoke { (32, 2, 8) } else { (64, 3, 32) };
    println!("Steady-regrid schedule caching: Sod {nx}x{nx}, {levels} levels, {regrids} regrids");

    let cached = run_steady(true, nx, levels, regrids);
    let uncached = run_steady(false, nx, levels, regrids);

    let lookups = cached.hits + cached.misses;
    let hit_rate = cached.hits as f64 / lookups.max(1) as f64;
    let reduction = uncached.build_ns as f64 / cached.build_ns.max(1) as f64;
    println!(
        "  cached:   {} builds, {} ns build time, {}/{} lookups hit",
        cached.builds, cached.build_ns, cached.hits, lookups
    );
    println!("  uncached: {} builds, {} ns build time", uncached.builds, uncached.build_ns);
    println!("  hit rate {:.1}%  build-time reduction {reduction:.1}x", hit_rate * 100.0);

    if let Some(path) = json_path {
        let body = format!(
            "{{\n  \"mode\": \"steady-regrid\",\n  \"nx\": {nx},\n  \"levels\": {levels},\n  \
             \"steady_regrids\": {regrids},\n  \"cache_hits\": {},\n  \"cache_misses\": {},\n  \
             \"hit_rate\": {hit_rate:.4},\n  \"cached_builds\": {},\n  \
             \"cached_build_ns\": {},\n  \"uncached_builds\": {},\n  \
             \"uncached_build_ns\": {},\n  \"build_time_reduction\": {reduction:.3}\n}}\n",
            cached.hits,
            cached.misses,
            cached.builds,
            cached.build_ns,
            uncached.builds,
            uncached.build_ns,
        );
        std::fs::write(&path, body).expect("schedule_bench: write json");
        println!("wrote {}", path.display());
    }

    // Acceptance gates (CI smoke relies on these panicking on failure).
    assert!(cached.hits > 0, "steady regrids must hit the cache");
    assert_eq!(cached.misses, 0, "steady regrids must not miss: hit rate {hit_rate}");
    assert_eq!(cached.builds, 0, "steady regrids must perform zero schedule rebuilds");
    assert!(uncached.builds > 0, "the uncached twin must rebuild every regrid");
    assert!(
        reduction >= 5.0,
        "schedule caching must cut regrid-path build time >= 5x (got {reduction:.2}x)"
    );
    println!("steady-regrid: PASS");
}

/// Per-rank measurements from one partitioned-metadata configuration.
struct PartitionedRow {
    nranks: usize,
    patches: usize,
    global_records: usize,
    replicated_bytes: usize,
    max_partitioned_bytes: usize,
    indexed_ns: u128,
    partitioned_ns: u128,
}

/// `--partitioned`: owner-computes planning over owned + ghosted views
/// versus the replicated twin, with a live digest-verified exchange on
/// a simulated cluster. Reports per-rank metadata bytes and level-1
/// build time; asserts every rank's partitioned plans digest-match the
/// replicated build (and the brute-force oracle at the smallest size),
/// and that per-rank retention at the largest size is sublinear in the
/// global patch count.
fn partitioned_mode(smoke: bool, json_path: Option<std::path::PathBuf>) {
    // Retention only separates from the replicated footprint once the
    // level dwarfs the ghost margins, so the smoke sweep keeps a large
    // top size rather than a small one.
    let sizes: &[usize] = if smoke { &[64, 1024] } else { &[64, 256, 1024, 4096] };
    let reps = if smoke { 1 } else { 3 };
    let rank_counts: &[usize] = if smoke { &[8] } else { &[8, 16] };

    println!("Partitioned metadata: per-rank retention + build time vs replicated");
    println!(
        "{:>6} {:>8} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "ranks", "patches", "records", "repl(B)", "part-max(B)", "indexed(us)", "part(us)"
    );
    println!("{}", "-".repeat(78));

    let mut rows: Vec<PartitionedRow> = Vec::new();
    for &nranks in rank_counts {
        for &patches in sizes {
            let cluster = Cluster::new(Machine::ipa_cpu_node());
            let results = cluster.run(nranks, |comm| {
                let rank = comm.rank();
                let (h_rep, reg, var) = schedule_bench_hierarchy_sfc(patches, rank, comm.size());
                let (mut h_part, _, _) = schedule_bench_hierarchy_sfc(patches, rank, comm.size());
                // The production conversion: interest carving + allgatherv
                // exchange + digest-verified handshake.
                partition_hierarchy_metadata(&mut h_part, InterestMargins::default(), Some(&comm));
                let specs = [FillSpec { var, refine_op: Some(Arc::new(ConservativeCellRefine)) }];
                for level in 0..2 {
                    let part = ScheduleBuild::new(BuildStrategy::Partitioned)
                        .refine(&h_part, &reg, level, &specs);
                    let indexed = RefineSchedule::new(&h_rep, &reg, level, &specs);
                    assert_eq!(
                        part.plan_digest(),
                        indexed.plan_digest(),
                        "rank {rank}: partitioned plan diverges at level {level}, \
                         {patches} patches"
                    );
                    if patches <= 64 {
                        let oracle = RefineSchedule::new_bruteforce(&h_rep, &reg, level, &specs);
                        assert_eq!(part.plan_digest(), oracle.plan_digest());
                    }
                }
                let indexed_ns = median_ns(reps, || {
                    RefineSchedule::new(&h_rep, &reg, 1, &specs);
                });
                let partitioned_ns = median_ns(reps, || {
                    ScheduleBuild::new(BuildStrategy::Partitioned).refine(&h_part, &reg, 1, &specs);
                });
                let part_bytes: usize = (0..2)
                    .map(|l| h_part.level(l).view().expect("partitioned view").metadata_bytes())
                    .sum();
                let global_records: usize =
                    (0..2).map(|l| h_rep.level(l).global_boxes().len()).sum();
                (part_bytes, global_records, indexed_ns, partitioned_ns)
            });
            let global_records = results[0].value.1;
            let replicated_bytes = global_records * RECORD_BYTES;
            let max_partitioned_bytes = results.iter().map(|r| r.value.0).max().unwrap();
            let mut idx_ns: Vec<u128> = results.iter().map(|r| r.value.2).collect();
            let mut part_ns: Vec<u128> = results.iter().map(|r| r.value.3).collect();
            idx_ns.sort_unstable();
            part_ns.sort_unstable();
            let row = PartitionedRow {
                nranks,
                patches,
                global_records,
                replicated_bytes,
                max_partitioned_bytes,
                indexed_ns: idx_ns[idx_ns.len() / 2],
                partitioned_ns: part_ns[part_ns.len() / 2],
            };
            println!(
                "{:>6} {:>8} {:>10} {:>12} {:>12} {:>12.1} {:>12.1}",
                row.nranks,
                row.patches,
                row.global_records,
                row.replicated_bytes,
                row.max_partitioned_bytes,
                row.indexed_ns as f64 / 1e3,
                row.partitioned_ns as f64 / 1e3,
            );
            rows.push(row);
        }
    }

    if let Some(path) = json_path {
        let entries: Vec<String> = rows
            .iter()
            .map(|r| {
                format!(
                    "  {{\"nranks\": {}, \"patches\": {}, \"global_records\": {}, \
                     \"replicated_bytes\": {}, \"max_partitioned_bytes\": {}, \
                     \"indexed_ns\": {}, \"partitioned_ns\": {}}}",
                    r.nranks,
                    r.patches,
                    r.global_records,
                    r.replicated_bytes,
                    r.max_partitioned_bytes,
                    r.indexed_ns,
                    r.partitioned_ns
                )
            })
            .collect();
        let body = format!("[\n{}\n]\n", entries.join(",\n"));
        std::fs::write(&path, body).expect("schedule_bench: write json");
        println!("\nwrote {}", path.display());
    }

    // Acceptance gates (plan-digest agreement already asserted on every
    // rank inside the cluster): at the largest size every rank count
    // must retain well under the replicated footprint, and growing the
    // global patch count 4x must grow worst-rank retention strictly
    // slower (sublinear scaling).
    let largest = *sizes.last().unwrap();
    let smallest = sizes[0];
    for &nranks in rank_counts {
        let big = rows.iter().find(|r| r.nranks == nranks && r.patches == largest).unwrap();
        let small = rows.iter().find(|r| r.nranks == nranks && r.patches == smallest).unwrap();
        assert!(
            2 * big.max_partitioned_bytes < big.replicated_bytes,
            "{nranks} ranks, {largest} patches: partitioned retention \
             {} B is not well under replicated {} B",
            big.max_partitioned_bytes,
            big.replicated_bytes
        );
        let growth = big.max_partitioned_bytes as f64 / small.max_partitioned_bytes as f64;
        let global_growth = big.global_records as f64 / small.global_records as f64;
        assert!(
            growth < global_growth,
            "{nranks} ranks: retention grew {growth:.2}x against a \
             {global_growth:.2}x global growth — not sublinear"
        );
    }
    println!("partitioned: PASS");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let json_path = path_arg("--json");
    if std::env::args().any(|a| a == "--partitioned") {
        partitioned_mode(smoke, json_path);
        return;
    }
    if std::env::args().any(|a| a == "--steady-regrid") {
        steady_regrid_mode(smoke, json_path);
        return;
    }
    let (sizes, reps): (&[usize], usize) =
        if smoke { (&[64, 256], 1) } else { (&[64, 256, 1024, 4096], 5) };

    println!("Schedule-build scaling: indexed vs brute-force (rank 0 of 4)");
    println!("{:>8} {:>14} {:>14} {:>9}", "patches", "indexed(us)", "brute(us)", "speedup");
    println!("{}", "-".repeat(49));

    let mut rows = Vec::new();
    for &patches in sizes {
        let (h, reg, var) = schedule_bench_hierarchy(patches, 0, 4);
        let specs = [FillSpec { var, refine_op: Some(Arc::new(ConservativeCellRefine)) }];
        // Warm-up (allocator, page faults), then measure.
        RefineSchedule::new(&h, &reg, 1, &specs);
        let indexed = median_ns(reps, || {
            RefineSchedule::new(&h, &reg, 1, &specs);
        });
        let brute = median_ns(reps, || {
            RefineSchedule::new_bruteforce(&h, &reg, 1, &specs);
        });
        let speedup = brute as f64 / indexed as f64;
        println!(
            "{:>8} {:>14.1} {:>14.1} {:>8.2}x",
            patches,
            indexed as f64 / 1e3,
            brute as f64 / 1e3,
            speedup
        );
        rows.push((patches, indexed, brute, speedup));
    }

    if let Some(path) = json_path {
        let entries: Vec<String> = rows
            .iter()
            .map(|(p, i, b, s)| {
                format!(
                    "  {{\"patches\": {p}, \"indexed_ns\": {i}, \"brute_ns\": {b}, \
                     \"speedup\": {s:.3}}}"
                )
            })
            .collect();
        let body = format!("[\n{}\n]\n", entries.join(",\n"));
        std::fs::write(&path, body).expect("schedule_bench: write json");
        println!("\nwrote {}", path.display());
    }
}
