//! CI perf-regression gate: runs the Sod and triple-point decks at
//! 1/2/4 ranks with full telemetry, derives a flat metric set (step
//! makespan, causal attribution buckets, critical-path composition,
//! per-phase times, key counters), and compares it against the
//! committed baseline `BENCH_perf_gate.json` with per-metric
//! tolerances.
//!
//! All times are **virtual** (deterministic), so the gate is exact on
//! counters and tight (2%) on seconds, and the same source tree always
//! produces a byte-identical metrics file.
//!
//! ```text
//! cargo run --release -p rbamr-bench --bin perf_gate              # compare
//! cargo run --release -p rbamr-bench --bin perf_gate -- --bless   # rewrite baseline
//! ```
//!
//! Flags:
//! * `--bless` — overwrite the baseline with the current metrics.
//! * `--baseline <path>` — baseline location (default
//!   `BENCH_perf_gate.json` in the working directory).
//! * `--json <path>` — also write the current metrics to `<path>`
//!   (CI artifact).
//! * `--trace <dir>` — write one Chrome trace per deck/rank combo to
//!   `<dir>` (message arrows render in Perfetto).
//!
//! Exit status 1 on regression or baseline mismatch.

use rbamr_bench::{path_arg, sod_config};
use rbamr_hydro::{HydroConfig, HydroSim, Placement};
use rbamr_netsim::Cluster;
use rbamr_perfmodel::Machine;
use rbamr_problems::sod::sod_regions;
use rbamr_problems::triple_point::{triple_point_regions, TRIPLE_POINT_EXTENT};
use rbamr_telemetry::{analyze, chrome_trace, CausalAnalysis, MetricsSnapshot, Recorder};
use std::collections::BTreeMap;

/// Relative tolerance for virtual-seconds metrics. Counters are exact.
const SECONDS_TOL: f64 = 0.02;
/// Absolute floor below which seconds differences are noise.
const SECONDS_ABS_FLOOR: f64 = 1e-9;
const STEPS: usize = 4;

struct Combo {
    deck: &'static str,
    ranks: usize,
    recorders: Vec<Recorder>,
    analysis: CausalAnalysis,
}

fn run_combo(deck: &'static str, ranks: usize) -> Combo {
    // `<deck>_batched` runs the same deck with batched per-level
    // launches and comm/compute overlap.
    let batched = deck.ends_with("_batched");
    let base = deck.trim_end_matches("_batched");
    let (machine, placement) = match base {
        "sod" => (Machine::ipa_gpu(), Placement::Device),
        _ => (Machine::titan(), Placement::Device),
    };
    let cluster = Cluster::new(machine.clone());
    let results = cluster.run(ranks, |mut comm| {
        let rec = Recorder::new(comm.rank(), comm.clock().clone());
        comm.set_recorder(rec.clone());
        let mut sim = match base {
            "sod" => {
                let mut config = sod_config(32);
                config.regrid_interval = 2;
                config.batched = batched;
                HydroSim::new(
                    machine.clone(),
                    placement,
                    comm.clock().clone(),
                    (1.0, 1.0),
                    (96, 96),
                    3,
                    2,
                    config,
                    sod_regions(),
                    comm.rank(),
                    comm.size(),
                )
            }
            _ => {
                let mut config = HydroConfig {
                    regrid_interval: 2,
                    max_patch_size: 16,
                    batched,
                    ..HydroConfig::default()
                };
                config.regrid.max_patch_size = 16;
                HydroSim::new(
                    machine.clone(),
                    placement,
                    comm.clock().clone(),
                    TRIPLE_POINT_EXTENT,
                    (70, 30),
                    3,
                    2,
                    config,
                    triple_point_regions(),
                    comm.rank(),
                    comm.size(),
                )
            }
        };
        sim.set_recorder(rec.clone());
        sim.initialize(Some(&comm));
        for _ in 0..STEPS {
            sim.step(Some(&comm));
        }
        rec
    });
    let recorders: Vec<Recorder> = results.into_iter().map(|r| r.value).collect();
    // Honesty checks before any number is reported: spans must cover
    // the clock, buckets must sum to the makespan.
    let snap = MetricsSnapshot::from_recorders(&recorders);
    assert!(
        snap.agreement_within(0.01),
        "{deck} r{ranks}: span-derived breakdown disagrees with the clock by more than 1%"
    );
    let analysis =
        analyze(&recorders).unwrap_or_else(|e| panic!("{deck} r{ranks}: causal DAG failed: {e}"));
    if std::env::var("PERF_GATE_DEBUG").is_ok() {
        let mut by_cat: BTreeMap<String, f64> = BTreeMap::new();
        for rec in &recorders {
            for e in rec.edges() {
                if e.name != "send" {
                    *by_cat.entry(format!("{:?}.{}", e.category, e.name)).or_insert(0.0) += e.cost;
                }
            }
        }
        println!("  {deck} r{ranks} recv/collective cost by category: {by_cat:?}");
    }
    for rb in &analysis.ranks {
        let err = (rb.buckets.total() - analysis.makespan).abs();
        assert!(
            err <= 1e-6 * analysis.makespan.max(1e-12),
            "{deck} r{ranks}: rank {} buckets do not sum to the makespan",
            rb.rank
        );
    }
    Combo { deck, ranks, recorders, analysis }
}

/// Flatten one combo into `prefix.metric -> value` entries.
fn collect_metrics(out: &mut BTreeMap<String, f64>, combo: &Combo) {
    let p = format!("{}.r{}", combo.deck, combo.ranks);
    let a = &combo.analysis;
    out.insert(format!("{p}.makespan_s"), a.makespan);
    let mut sum = [0.0f64; 4];
    for rb in &a.ranks {
        sum[0] += rb.buckets.compute;
        sum[1] += rb.buckets.exposed_comm;
        sum[2] += rb.buckets.late_sender_wait;
        sum[3] += rb.buckets.imbalance;
    }
    out.insert(format!("{p}.bucket.compute_s"), sum[0]);
    out.insert(format!("{p}.bucket.exposed_comm_s"), sum[1]);
    out.insert(format!("{p}.bucket.late_sender_wait_s"), sum[2]);
    out.insert(format!("{p}.bucket.imbalance_s"), sum[3]);
    out.insert(format!("{p}.critical_path.compute_s"), a.critical_path.compute);
    out.insert(format!("{p}.critical_path.comm_s"), a.critical_path.comm);
    out.insert(
        format!("{p}.counter.critical_path.cross_edges"),
        a.critical_path.cross_edges as f64,
    );
    // Phase breakdown: depth-1 spans, summed across ranks by name.
    let mut phases: BTreeMap<&'static str, f64> = BTreeMap::new();
    for rec in &combo.recorders {
        for span in rec.spans() {
            if span.depth == 1 {
                *phases.entry(span.name).or_insert(0.0) += span.elapsed().total();
            }
        }
    }
    for (name, secs) in phases {
        out.insert(format!("{p}.phase.{name}_s"), secs);
    }
    // Counters: summed across ranks. Wall-clock counters (`*_ns`) are
    // excluded — they are not deterministic.
    let snap = MetricsSnapshot::from_recorders(&combo.recorders);
    for (name, v) in &snap.counters {
        if name.ends_with("_ns") {
            continue;
        }
        out.insert(format!("{p}.counter.{name}"), *v as f64);
    }
}

/// Serialise metrics as one-entry-per-line JSON (trivially diffable
/// and line-parseable; the workspace vendors no JSON crate).
fn metrics_to_json(metrics: &BTreeMap<String, f64>) -> String {
    let mut out = String::from("{\n");
    for (i, (k, v)) in metrics.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        if k.contains(".counter.") {
            out.push_str(&format!("\"{k}\": {}", *v as u64));
        } else {
            out.push_str(&format!("\"{k}\": {v:.9e}"));
        }
    }
    out.push_str("\n}\n");
    out
}

/// Parse the one-entry-per-line JSON written by [`metrics_to_json`].
fn parse_metrics(text: &str) -> Result<BTreeMap<String, f64>, String> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        if line.is_empty() || line == "{" || line == "}" {
            continue;
        }
        let (key, value) =
            line.split_once(':').ok_or_else(|| format!("baseline: malformed line {line:?}"))?;
        let key = key.trim().trim_matches('"').to_string();
        let value: f64 = value
            .trim()
            .parse()
            .map_err(|e| format!("baseline: bad value on line {line:?}: {e}"))?;
        out.insert(key, value);
    }
    Ok(out)
}

enum Verdict {
    Ok,
    Improved { base: f64, now: f64 },
    Regressed { base: f64, now: f64 },
}

fn judge(key: &str, base: f64, now: f64) -> Verdict {
    if key.contains(".counter.") {
        if now == base {
            Verdict::Ok
        } else if now < base {
            Verdict::Improved { base, now }
        } else {
            Verdict::Regressed { base, now }
        }
    } else {
        let tol = (base.abs() * SECONDS_TOL).max(SECONDS_ABS_FLOOR);
        if now > base + tol {
            Verdict::Regressed { base, now }
        } else if now < base - tol {
            Verdict::Improved { base, now }
        } else {
            Verdict::Ok
        }
    }
}

fn main() {
    let bless = std::env::args().any(|a| a == "--bless");
    let baseline_path =
        path_arg("--baseline").unwrap_or_else(|| std::path::PathBuf::from("BENCH_perf_gate.json"));

    let mut metrics = BTreeMap::new();
    let mut combos = Vec::new();
    for deck in ["sod", "triple_point", "sod_batched", "triple_point_batched"] {
        for ranks in [1usize, 2, 4] {
            println!("running {deck} at {ranks} rank(s)...");
            let combo = run_combo(deck, ranks);
            collect_metrics(&mut metrics, &combo);
            combos.push(combo);
        }
    }
    let json = metrics_to_json(&metrics);

    // Overlap gates, independent of the committed baseline: batching
    // must hide >=30% of the exposed communication on the triple-point
    // deck at 4 ranks and issue fewer kernel launches than per-patch
    // launching on every deck at every rank count.
    let get = |key: &str| *metrics.get(key).unwrap_or_else(|| panic!("missing metric {key}"));
    let exposed = get("triple_point.r4.bucket.exposed_comm_s");
    let exposed_batched = get("triple_point_batched.r4.bucket.exposed_comm_s");
    assert!(
        exposed_batched <= 0.7 * exposed,
        "overlap gate: batched exposed_comm {exposed_batched:.3e}s is not >=30% below \
         unbatched {exposed:.3e}s on triple_point at 4 ranks"
    );
    println!(
        "overlap gate: triple_point r4 exposed_comm {exposed:.3e}s -> {exposed_batched:.3e}s \
         ({:.0}% hidden)",
        100.0 * (1.0 - exposed_batched / exposed)
    );
    for deck in ["sod", "triple_point"] {
        for ranks in [1usize, 2, 4] {
            let oracle = get(&format!("{deck}.r{ranks}.counter.device.kernel_launches"));
            let batched = get(&format!("{deck}_batched.r{ranks}.counter.device.kernel_launches"));
            assert!(
                batched < oracle,
                "launch gate: {deck} r{ranks}: batched issued {batched} launches, oracle {oracle}"
            );
        }
    }

    if let Some(dir) = path_arg("--trace") {
        std::fs::create_dir_all(&dir).expect("trace: create dir");
        for combo in &combos {
            let path = dir.join(format!("trace_{}_r{}.json", combo.deck, combo.ranks));
            std::fs::write(&path, chrome_trace(&combo.recorders)).expect("trace: write");
            println!("wrote {}", path.display());
        }
    }
    if let Some(path) = path_arg("--json") {
        std::fs::write(&path, &json).expect("metrics: write");
        println!("wrote {}", path.display());
    }

    if bless {
        std::fs::write(&baseline_path, &json).expect("baseline: write");
        println!("blessed baseline: {} ({} metrics)", baseline_path.display(), metrics.len());
        return;
    }

    let baseline_text = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "no baseline at {} ({e}); run with --bless to create one",
                baseline_path.display()
            );
            std::process::exit(1);
        }
    };
    let baseline = match parse_metrics(&baseline_text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };

    let mut regressions = Vec::new();
    let mut improvements = Vec::new();
    for (key, &base) in &baseline {
        match metrics.get(key) {
            None => regressions.push(format!("{key}: present in baseline, missing from run")),
            Some(&now) => match judge(key, base, now) {
                Verdict::Ok => {}
                Verdict::Improved { base, now } => {
                    improvements.push(format!("{key}: {base:.6e} -> {now:.6e}"));
                }
                Verdict::Regressed { base, now } => {
                    regressions.push(format!("{key}: {base:.6e} -> {now:.6e}"));
                }
            },
        }
    }
    for key in metrics.keys() {
        if !baseline.contains_key(key) {
            regressions.push(format!("{key}: new metric not in baseline (bless to accept)"));
        }
    }

    println!("\nperf gate: {} metrics checked against {}", baseline.len(), baseline_path.display());
    if !improvements.is_empty() {
        println!("improvements ({}):", improvements.len());
        for line in &improvements {
            println!("  {line}");
        }
        println!("  (bless the baseline to lock these in)");
    }
    if regressions.is_empty() {
        println!("PASS: no regressions (seconds tolerance {:.0}%)", SECONDS_TOL * 100.0);
    } else {
        println!("FAIL: {} regression(s):", regressions.len());
        for line in &regressions {
            println!("  {line}");
        }
        std::process::exit(1);
    }
}
