//! Regenerates **Figure 10**: strong scaling on IPA — the 6.4M-zone Sod
//! problem, 1000 timesteps, on 1–8 nodes, GPU build (2 K20x per node)
//! against the CPU build (16 cores per node as 2 socket-ranks).
//!
//! Paper anchors: on one node the two GPUs beat the two CPU sockets by
//! 4.87x; at eight nodes the advantage shrinks to 1.92x (Amdahl: halo
//! exchange and host-side regridding stop shrinking with the per-rank
//! work).
//!
//! ```text
//! cargo run --release -p rbamr-bench --bin fig10_strong [-- --full]
//! ```
//!
//! The default runs the sweep at 1.6M zones (a quarter of the paper's
//! problem, minutes of real compute); `--full` uses the paper's 6.4M.

use rbamr_bench::{csv_dir_arg, fmt_secs, measure_profile, sod_sim, write_csv, StepProfile};
use rbamr_hydro::Placement;
use rbamr_netsim::Cluster;
use rbamr_perfmodel::Machine;
use rbamr_telemetry::{MetricsSnapshot, Recorder};

const PAPER_STEPS: usize = 1000;
const REGRID_INTERVAL: usize = 10;
const LEVELS: usize = 3;

/// Run one configuration: `ranks` ranks of the given placement, all of
/// them `machine`-modelled, and return the slowest rank's projected
/// runtime for the paper's step count.
fn run_config(placement: Placement, machine: Machine, ranks: usize, nx: i64, ny: i64) -> f64 {
    let cluster = Cluster::new(machine.clone());
    // Enough patches to feed every rank (~4 level-0 patches per rank),
    // as SAMRAI's gridding parameters would be chosen for the job size.
    let max_patch = (nx as f64 / (ranks as f64).sqrt() / 2.0).clamp(32.0, 512.0) as i64;
    let results = cluster.run(ranks, |mut comm| {
        let rec = Recorder::new(comm.rank(), comm.clock().clone());
        comm.set_recorder(rec.clone());
        let mut sim = sod_sim(
            machine.clone(),
            placement,
            comm.clock().clone(),
            nx,
            ny,
            LEVELS,
            max_patch,
            comm.rank(),
            comm.size(),
        );
        sim.set_recorder(rec.clone());
        sim.initialize(Some(&comm));
        let steps = if nx >= 1024 { 2 } else { 3 };
        (measure_profile(&mut sim, Some(&comm), steps), rec)
    });
    // The same telemetry honesty check fig11_weak runs: the
    // span-derived breakdown must agree with the raw clock within 1%
    // of total runtime on every category.
    let recorders: Vec<Recorder> = results
        .iter()
        .map(|r: &rbamr_netsim::RankResult<(StepProfile, Recorder)>| r.value.1.clone())
        .collect();
    let snap = MetricsSnapshot::from_recorders(&recorders);
    assert!(
        snap.agreement_within(0.01),
        "span-derived breakdown disagrees with the clock by more than 1% \
         (coverage {:.4}): instrumentation has a gap",
        snap.coverage()
    );
    // BSP: the slowest rank paces the job.
    results
        .iter()
        .map(|r| r.value.0.projected_runtime(PAPER_STEPS, REGRID_INTERVAL))
        .fold(0.0, f64::max)
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let quick = std::env::args().any(|a| a == "--quick");
    let (nx, ny) = if full {
        (2530, 2530)
    } else if quick {
        (320, 320)
    } else {
        (1264, 1264)
    };
    println!(
        "Figure 10: strong scaling on IPA, Sod {} zones, {PAPER_STEPS} steps, {LEVELS} levels",
        nx * ny
    );
    println!("(GPU: 2 K20x/node; CPU: 2 socket-ranks/node = 16 cores)\n");
    println!(
        "{:>6} {:>6} {:>16} {:>16} {:>12}",
        "nodes", "ranks", "CPU runtime(s)", "GPU runtime(s)", "GPU speedup"
    );
    println!("{}", "-".repeat(62));

    let mut first_speedup = None;
    let mut last_speedup = None;
    let mut gpu_times = Vec::new();
    let mut rows = Vec::new();
    for nodes in [1usize, 2, 4, 8] {
        let ranks = nodes * 2; // 2 GPUs or 2 sockets per node
        let gpu = run_config(Placement::Device, Machine::ipa_gpu(), ranks, nx, ny);
        let cpu = run_config(Placement::Host, Machine::ipa_cpu_socket(), ranks, nx, ny);
        let speedup = cpu / gpu;
        println!(
            "{:>6} {:>6} {:>16} {:>16} {:>11.2}x",
            nodes,
            ranks,
            fmt_secs(cpu),
            fmt_secs(gpu),
            speedup
        );
        rows.push(vec![nodes as f64, ranks as f64, cpu, gpu, speedup]);
        if nodes == 1 {
            first_speedup = Some(speedup);
        }
        last_speedup = Some(speedup);
        gpu_times.push((nodes, gpu));
    }
    if let Some(dir) = csv_dir_arg() {
        let p = write_csv(&dir, "fig10_strong.csv", "nodes,ranks,cpu_s,gpu_s,speedup", &rows);
        println!("wrote {}", p.display());
    }
    println!("{}", "-".repeat(62));
    println!("one-node GPU advantage: {:.2}x   (paper: 4.87x)", first_speedup.unwrap_or(0.0));
    println!("eight-node GPU advantage: {:.2}x (paper: 1.92x)", last_speedup.unwrap_or(0.0));
    if let (Some(&(_, t1)), Some(&(_, t8))) = (gpu_times.first(), gpu_times.last()) {
        println!("GPU parallel efficiency 1->8 nodes: {:.0}%", t1 / t8 / 8.0 * 100.0);
    }
    if !full {
        println!("\n(run with --full for the paper's 6.4M-zone problem)");
    }
}
