//! Chaos harness: seeded fault schedules against the resilient Sod run.
//!
//! Runs 29 deterministic fault schedules (plus per-placement fault-free
//! baselines at both the full and the surviving rank count) on a small
//! Sod deck at 2 ranks and checks, per schedule:
//!
//! * **recoverable** schedules complete and their per-rank final-state
//!   digests are bitwise identical to the fault-free baseline at the
//!   same placement;
//! * **degrading** schedules (persistent device faults) complete after
//!   walking Device → DeviceCopyBack → Host, and their digests match
//!   the *host* baseline (the last degradation step trades the device
//!   for survival, and host physics is the reference);
//! * **unrecoverable** schedules end in a typed
//!   [`ResilienceError::RetriesExhausted`] on *every* rank;
//! * every schedule, rerun with the same seed, reproduces identical
//!   fault sites, recovery counters and digests;
//! * **delay** schedules (`MsgDelay`) are pure virtual-clock charges:
//!   they must inflate the job's *virtual* seconds versus the
//!   fault-free baseline while leaving *wall* time unaffected (gated
//!   against a generous multiple of the baseline wall time — a real
//!   sleep in the transport path would blow through it immediately);
//! * **batched** schedules run with per-level batched launches and
//!   comm/compute overlap, so faults land while interior compute is in
//!   flight; their recovered digests must match the *unbatched*
//!   device baseline (batching is bitwise inert, even across
//!   rollbacks);
//! * **shrinking** schedules (`RankKill`) permanently lose a rank —
//!   at step 0, mid-run, on the regrid step, and inside the
//!   checkpoint-adoption collective. The victim must report a typed
//!   [`ResilienceError::Killed`]; the survivors must shrink, replay,
//!   and finish bitwise identical to a fault-free baseline at the
//!   *surviving* rank count.
//!
//! The run emits a JSON artifact (default `target/chaos_bench.json`,
//! override with `--json <path>`) with per-schedule recovery stats
//! (rollbacks, shrinks, rank losses, degraded steps) for CI to
//! archive, and exits non-zero if any gate fails — enumerating every
//! failing schedule by name, not just the first.

use rbamr_hydro::{
    Placement, RecoveryPolicy, RecoveryStats, ResilienceError, ResilientSim, SimSpec,
};
use rbamr_netsim::{Cluster, FaultKind, FaultPlan, FaultReport, FaultRule};
use rbamr_perfmodel::Machine;
use rbamr_problems::deck::parse_deck;
use rbamr_telemetry::Recorder;
use std::fmt::Write as _;
use std::time::Duration;

const RANKS: usize = 2;
const STEPS: usize = 8;

/// The Sod deck driving every chaos run, carrying the resilience keys.
const CHAOS_DECK: &str = "
*clover
 state 1 density=0.125 energy=2.0
 state 2 density=1.0 energy=2.5 geometry=rectangle xmin=0.0 xmax=0.5 ymin=0.0 ymax=1.0
 x_cells=24
 y_cells=24
 max_levels=2
 end_step=8
 checkpoint_interval=5
 max_retries=4
 min_ranks=1
*endclover
";

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Expectation {
    /// Completes; digests match the same-placement baseline.
    Recoverable,
    /// Completes by degrading to the host; digests match the host
    /// baseline.
    DegradesToHost,
    /// Every rank reports `RetriesExhausted`.
    Unrecoverable,
    /// The victim reports `Killed`; the survivors shrink and finish
    /// bitwise identical to the fault-free baseline at the surviving
    /// rank count.
    Shrinks { victim: usize, at_step: usize },
}

impl Expectation {
    fn name(self) -> &'static str {
        match self {
            Self::Recoverable => "recoverable",
            Self::DegradesToHost => "degrades_to_host",
            Self::Unrecoverable => "unrecoverable",
            Self::Shrinks { .. } => "shrinks",
        }
    }
}

struct Schedule {
    name: &'static str,
    seed: u64,
    placement: Placement,
    /// Run with batched per-level launches and comm/compute overlap:
    /// faults land while interior compute is in flight, and recovery
    /// must still reproduce the *unbatched* fault-free digest.
    batched: bool,
    rules: Vec<FaultRule>,
    expectation: Expectation,
}

/// The ≥20 seeded fault schedules. Occurrence indices are chosen to
/// land inside the run (the 2-rank 8-step Sod run evaluates ~50+
/// point-to-point and ~34 collective sites per rank).
fn schedules() -> Vec<Schedule> {
    use Expectation::{DegradesToHost, Recoverable, Unrecoverable};
    use FaultKind::{AllocFail, CollectiveFault, CopyFail, MsgCorrupt, MsgDelay, MsgDrop};
    let host = Placement::Host;
    let device = Placement::Device;
    let mut out = Vec::new();
    let mut add = |name, seed, placement, rules, expectation| {
        out.push(Schedule { name, seed, placement, batched: false, rules, expectation });
    };

    // Transient collective faults at different points of the run.
    add(
        "collective_early_r0",
        101,
        host,
        vec![FaultRule::once_on(CollectiveFault, 0, 2)],
        Recoverable,
    );
    add(
        "collective_mid_r0",
        102,
        host,
        vec![FaultRule::once_on(CollectiveFault, 0, 12)],
        Recoverable,
    );
    add(
        "collective_late_r1",
        103,
        host,
        vec![FaultRule::once_on(CollectiveFault, 1, 25)],
        Recoverable,
    );
    add("collective_both_ranks", 104, host, vec![FaultRule::once(CollectiveFault, 8)], Recoverable);
    add(
        "collective_double_r0",
        105,
        host,
        vec![FaultRule::once_on(CollectiveFault, 0, 6), FaultRule::once_on(CollectiveFault, 0, 20)],
        Recoverable,
    );

    // Transient point-to-point faults.
    add("msg_drop_early_r0", 201, host, vec![FaultRule::once_on(MsgDrop, 0, 5)], Recoverable);
    add("msg_drop_late_r0", 202, host, vec![FaultRule::once_on(MsgDrop, 0, 40)], Recoverable);
    add("msg_corrupt_r1", 203, host, vec![FaultRule::once_on(MsgCorrupt, 1, 30)], Recoverable);
    add("msg_corrupt_both", 204, host, vec![FaultRule::once(MsgCorrupt, 15)], Recoverable);
    add(
        "msg_drop_burst_r1",
        205,
        host,
        vec![FaultRule {
            kind: MsgDrop,
            ranks: Some(vec![1]),
            after: 20,
            count: 3,
            probability: 1.0,
        }],
        Recoverable,
    );

    // Delays perturb virtual time only — no error, no rollback.
    add(
        "msg_delay_persistent",
        301,
        host,
        vec![FaultRule {
            kind: MsgDelay,
            ranks: None,
            after: 0,
            count: u64::MAX,
            probability: 1.0,
        }],
        Recoverable,
    );
    add(
        "msg_delay_random",
        302,
        host,
        vec![FaultRule {
            kind: MsgDelay,
            ranks: None,
            after: 0,
            count: u64::MAX,
            probability: 0.3,
        }],
        Recoverable,
    );

    // Mixed transient schedules.
    add(
        "mixed_drop_collective",
        401,
        host,
        vec![FaultRule::once_on(MsgDrop, 0, 10), FaultRule::once_on(CollectiveFault, 1, 22)],
        Recoverable,
    );
    add(
        "mixed_corrupt_drop",
        402,
        host,
        vec![FaultRule::once_on(MsgCorrupt, 1, 45), FaultRule::once_on(MsgDrop, 1, 60)],
        Recoverable,
    );
    // A random 10% corruption rate over a bounded window: rollbacks
    // advance the occurrence counters past the window, so recovery
    // always out-runs it (an unbounded 10% rate would statistically
    // corrupt every retry, including the restores, and exhaust the
    // budget).
    add(
        "random_corrupt_p10_window",
        403,
        host,
        vec![FaultRule { kind: MsgCorrupt, ranks: None, after: 25, count: 15, probability: 0.1 }],
        Recoverable,
    );

    // Transient device faults retry in place (strikes stay below the
    // degradation threshold), so the device digest gate still applies.
    add(
        "alloc_fail_transient",
        501,
        device,
        vec![FaultRule::once_on(AllocFail, 0, 50)],
        Recoverable,
    );
    add("copy_fail_transient", 502, device, vec![FaultRule::once_on(CopyFail, 0, 30)], Recoverable);

    // Persistent device faults force the full degradation walk.
    add(
        "alloc_fail_persistent",
        601,
        device,
        vec![FaultRule::persistent(AllocFail, 0, 0)],
        DegradesToHost,
    );
    add(
        "copy_fail_persistent",
        602,
        device,
        vec![FaultRule::persistent(CopyFail, 0, 0)],
        DegradesToHost,
    );

    // Persistent collective faults cannot be out-run by rollbacks.
    add(
        "collective_persistent_r0",
        701,
        host,
        vec![FaultRule::persistent(CollectiveFault, 0, 0)],
        Unrecoverable,
    );
    add(
        "collective_persistent_r1",
        702,
        host,
        vec![FaultRule::persistent(CollectiveFault, 1, 0)],
        Unrecoverable,
    );

    // Overlap-under-chaos: the same deck with batched per-level
    // launches, so the halo exchange is in flight *while* interior
    // compute runs. Faults land mid-overlap; recovery must reproduce
    // the unbatched fault-free device digest (batching is bitwise
    // inert even across rollbacks).
    let mut add_batched = |name, seed, rules, expectation| {
        out.push(Schedule { name, seed, placement: device, batched: true, rules, expectation });
    };
    add_batched(
        "batched_delay_overlap",
        801,
        vec![FaultRule {
            kind: MsgDelay,
            ranks: None,
            after: 0,
            count: u64::MAX,
            probability: 1.0,
        }],
        Recoverable,
    );
    add_batched(
        "batched_corrupt_in_flight",
        802,
        vec![FaultRule::once_on(MsgCorrupt, 1, 20)],
        Recoverable,
    );
    add_batched(
        "batched_drop_in_flight",
        803,
        vec![FaultRule::once_on(MsgDrop, 0, 12)],
        Recoverable,
    );
    add_batched(
        "batched_delay_plus_corrupt",
        804,
        vec![
            FaultRule { kind: MsgDelay, ranks: None, after: 0, count: u64::MAX, probability: 0.3 },
            FaultRule::once_on(MsgCorrupt, 0, 35),
        ],
        Recoverable,
    );

    // Permanent rank loss: the victim dies, the survivor shrinks to one
    // rank, restores the last adopted manifest, and replays. Each kill
    // site exercises a different recovery path; all are gated on digest
    // identity to the fault-free 1-rank baseline.
    let mut add_kill = |name, seed, rules, victim, at_step| {
        out.push(Schedule {
            name,
            seed,
            placement: host,
            batched: false,
            rules,
            expectation: Expectation::Shrinks { victim, at_step },
        });
    };
    // Before any step commits: rollback targets the initial manifest.
    add_kill("rank_kill_at_step0", 901, vec![FaultRule::rank_kill(1, 0)], 1, 0);
    // Mid-run, between checkpoint intervals.
    add_kill("rank_kill_midrun", 902, vec![FaultRule::rank_kill(1, 3)], 1, 3);
    // Right before the regrid step (regrid_interval = 5): the death is
    // detected inside the regrid's own transfer collectives.
    add_kill("rank_kill_during_regrid", 903, vec![FaultRule::rank_kill(1, 5)], 1, 5);
    // Inside the checkpoint-adoption collective after step 5 commits:
    // the survivors' save is revoked and discarded collectively.
    add_kill("rank_kill_in_collective", 904, vec![FaultRule::rank_kill_at_adopt(1, 5)], 1, 5);

    out
}

#[derive(Clone, Debug, PartialEq)]
struct RankOutcome {
    digest: u64,
    stats: RecoveryStats,
    report: FaultReport,
    placement: Placement,
}

type RunResult = Vec<Result<RankOutcome, ResilienceError>>;

/// One chaos run plus its timing observables. Wall and virtual time
/// stay *out* of the determinism comparison (wall time is inherently
/// noisy; virtual time is only gated for the delay schedules).
struct ChaosRun {
    outcome: RunResult,
    wall: Duration,
    /// Job virtual time (per-category max over ranks, summed).
    virtual_total: f64,
}

fn run(
    placement: Placement,
    batched: bool,
    plan: FaultPlan,
    policy: RecoveryPolicy,
    nranks: usize,
) -> ChaosRun {
    let deck = parse_deck(CHAOS_DECK).expect("chaos deck parses");
    let machine = match placement {
        Placement::Host => Machine::ipa_cpu_node(),
        _ => Machine::ipa_gpu(),
    };
    let started = std::time::Instant::now();
    let results = Cluster::new(machine.clone())
        .with_deadlock_timeout(Duration::from_secs(10))
        .with_fault_plan(plan)
        .run(nranks, move |comm| {
            let rank = comm.rank();
            let mut config = rbamr_hydro::HydroConfig {
                regrid_interval: 5,
                max_patch_size: 8,
                metadata_mode: deck.metadata_mode,
                batched,
                ..rbamr_hydro::HydroConfig::default()
            };
            config.regrid.cluster.min_size = 4;
            let spec = SimSpec {
                machine: machine.clone(),
                placement,
                extent: deck.extent,
                coarse_cells: deck.cells,
                max_levels: deck.max_levels,
                ratio: 2,
                config,
                regions: deck.regions.clone(),
                rank,
                nranks,
            };
            let recorder = Recorder::new(rank, comm.clock().clone());
            let mut sim = ResilientSim::new(spec, policy, recorder, Some(&comm))?;
            sim.run_steps(deck.end_step.unwrap_or(STEPS), Some(&comm))?;
            let report = comm.fault_injector().expect("cluster ranks carry injectors").report();
            Ok(RankOutcome {
                digest: sim.sim().state_field_digest(),
                stats: sim.stats(),
                report,
                placement: sim.placement(),
            })
        });
    let wall = started.elapsed();
    let virtual_total = Cluster::job_time(&results).total();
    let mut out: Vec<_> = results.into_iter().map(|r| (r.rank, r.value)).collect();
    out.sort_by_key(|(rank, _)| *rank);
    ChaosRun { outcome: out.into_iter().map(|(_, v)| v).collect(), wall, virtual_total }
}

fn policy_from_deck() -> RecoveryPolicy {
    let deck = parse_deck(CHAOS_DECK).expect("chaos deck parses");
    RecoveryPolicy {
        checkpoint_interval: deck.checkpoint_interval.unwrap_or(5),
        max_retries: deck.max_retries.unwrap_or(8),
        min_ranks: deck.min_ranks.unwrap_or(1),
        backoff_base: 0.05,
        ..RecoveryPolicy::default()
    }
}

fn main() {
    let json_path = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--json")
            .and_then(|i| args.get(i + 1))
            .map_or_else(|| std::path::PathBuf::from("target/chaos_bench.json"), Into::into)
    };
    let policy = policy_from_deck();

    println!("chaos_bench: {RANKS} ranks, {STEPS} steps, policy {policy:?}");
    let baseline_host = run(Placement::Host, false, FaultPlan::none(), policy, RANKS);
    let baseline_device = run(Placement::Device, false, FaultPlan::none(), policy, RANKS);
    let baseline_batched = run(Placement::Device, true, FaultPlan::none(), policy, RANKS);
    // Fault-free run at the surviving rank count: the digest gate for
    // the rank-kill schedules (one victim, so RANKS - 1 survivors).
    let baseline_survivor = run(Placement::Host, false, FaultPlan::none(), policy, RANKS - 1);
    // Batching is bitwise inert: the fault-free batched run must match
    // the unbatched device baseline before any chaos schedule runs.
    for rank in 0..RANKS {
        let unbatched = baseline_device.outcome[rank].as_ref().expect("baseline").digest;
        let batched = baseline_batched.outcome[rank].as_ref().expect("baseline").digest;
        assert_eq!(
            unbatched, batched,
            "rank {rank}: fault-free batched digest diverges from the unbatched baseline"
        );
    }
    let baseline_digest = |placement: Placement, rank: usize| -> u64 {
        let base = match placement {
            Placement::Host => &baseline_host.outcome,
            _ => &baseline_device.outcome,
        };
        base[rank].as_ref().expect("baselines are fault-free").digest
    };

    let mut failed_names: Vec<String> = Vec::new();
    let mut rows = Vec::new();
    for s in schedules() {
        let plan = FaultPlan::new(s.seed, s.rules.clone());
        let first = run(s.placement, s.batched, plan.clone(), policy, RANKS);
        let second = run(s.placement, s.batched, plan, policy, RANKS);

        let deterministic = (0..RANKS).all(|r| match (&first.outcome[r], &second.outcome[r]) {
            (Ok(a), Ok(b)) => a == b,
            (Err(a), Err(b)) => a == b,
            _ => false,
        });
        let fired: u64 = first
            .outcome
            .iter()
            .filter_map(|r| r.as_ref().ok())
            .map(|o| o.report.total_fired())
            .sum();

        let (mut ok, mut detail) =
            check(&s, &first.outcome, &baseline_digest, &baseline_survivor.outcome);
        // Delay faults must be pure virtual-clock charges: virtual
        // seconds inflate versus the fault-free baseline, wall time
        // does not. A sleep smuggled into the transport path would
        // fire here on hundreds of delayed messages per run.
        if ok && s.rules.iter().any(|r| r.kind == FaultKind::MsgDelay) {
            let baseline = match (s.placement, s.batched) {
                (Placement::Host, _) => &baseline_host,
                (_, true) => &baseline_batched,
                _ => &baseline_device,
            };
            let wall_budget = baseline.wall * 10 + Duration::from_secs(2);
            if first.virtual_total <= baseline.virtual_total {
                ok = false;
                detail = format!(
                    "delay did not inflate virtual time ({} vs baseline {})",
                    first.virtual_total, baseline.virtual_total
                );
            } else if first.wall > wall_budget {
                ok = false;
                detail = format!(
                    "delay inflated wall time ({:?} vs budget {wall_budget:?}) — \
                     delays must charge virtual time only",
                    first.wall
                );
            } else {
                let _ = write!(
                    detail,
                    " delay-gate: virtual {:.3}s > {:.3}s, wall {:?} within budget",
                    first.virtual_total, baseline.virtual_total, first.wall
                );
            }
        }
        let verdict = if ok && deterministic { "pass" } else { "FAIL" };
        if !(ok && deterministic) {
            failed_names.push(s.name.to_string());
        }
        println!(
            "  [{verdict}] {:28} seed={:<4} {:12} fired={fired:<3} {detail}{}",
            s.name,
            s.seed,
            s.expectation.name(),
            if deterministic { "" } else { " NONDETERMINISTIC-RERUN" },
        );
        rows.push(json_row(&s, &first, deterministic, ok, &detail));
    }

    let json = format!(
        "{{\n  \"ranks\": {RANKS},\n  \"steps\": {STEPS},\n  \"schedules\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    if let Some(dir) = json_path.parent() {
        std::fs::create_dir_all(dir).expect("chaos: create artifact dir");
    }
    std::fs::write(&json_path, json).expect("chaos: write artifact");
    println!("artifact: {}", json_path.display());

    if !failed_names.is_empty() {
        eprintln!(
            "chaos_bench: {} schedule(s) failed: {}",
            failed_names.len(),
            failed_names.join(", ")
        );
        std::process::exit(1);
    }
    println!("chaos_bench: all {} schedules pass", schedules().len());
}

/// Check one schedule's outcome against its expectation. Returns
/// (pass, human detail).
fn check(
    s: &Schedule,
    result: &RunResult,
    baseline_digest: impl Fn(Placement, usize) -> u64,
    survivor_baseline: &RunResult,
) -> (bool, String) {
    match s.expectation {
        Expectation::Recoverable => {
            for (rank, r) in result.iter().enumerate() {
                let Ok(o) = r else {
                    return (false, format!("rank {rank} failed: {}", r.as_ref().unwrap_err()));
                };
                if o.digest != baseline_digest(s.placement, rank) {
                    return (false, format!("rank {rank} digest diverges from fault-free"));
                }
                if o.stats.degradations != 0 {
                    return (false, format!("rank {rank} degraded unexpectedly"));
                }
            }
            let rollbacks = result[0].as_ref().unwrap().stats.rollbacks;
            (true, format!("rollbacks={rollbacks} digests match baseline"))
        }
        Expectation::DegradesToHost => {
            for (rank, r) in result.iter().enumerate() {
                let Ok(o) = r else {
                    return (false, format!("rank {rank} failed: {}", r.as_ref().unwrap_err()));
                };
                if o.placement != Placement::Host {
                    return (false, format!("rank {rank} ended at {:?}, not Host", o.placement));
                }
                if o.digest != baseline_digest(Placement::Host, rank) {
                    return (false, format!("rank {rank} digest diverges from host baseline"));
                }
            }
            let stats = result[0].as_ref().unwrap().stats;
            (
                true,
                format!(
                    "degradations={} degraded_steps={}",
                    stats.degradations, stats.degraded_steps
                ),
            )
        }
        Expectation::Unrecoverable => {
            for (rank, r) in result.iter().enumerate() {
                match r {
                    Ok(_) => return (false, format!("rank {rank} completed unexpectedly")),
                    Err(ResilienceError::RetriesExhausted { attempts, .. }) => {
                        if *attempts == 0 {
                            return (false, format!("rank {rank} gave up without retrying"));
                        }
                    }
                    Err(e) => return (false, format!("rank {rank}: wrong error {e}")),
                }
            }
            (true, "typed RetriesExhausted on every rank".into())
        }
        Expectation::Shrinks { victim, at_step } => {
            match &result[victim] {
                Err(ResilienceError::Killed { rank, at_step: fired }) => {
                    if *rank != victim || *fired != at_step {
                        return (
                            false,
                            format!("victim reported Killed at rank {rank} step {fired}"),
                        );
                    }
                }
                other => {
                    return (false, format!("victim did not report Killed, got {other:?}"));
                }
            }
            // Survivors renumber in ascending original-rank order; each
            // must match the corresponding logical rank of the
            // fault-free run at the surviving rank count.
            let survivors: Vec<usize> = (0..result.len()).filter(|&r| r != victim).collect();
            for (logical, &original) in survivors.iter().enumerate() {
                let Ok(o) = &result[original] else {
                    return (
                        false,
                        format!(
                            "survivor {original} failed: {}",
                            result[original].as_ref().unwrap_err()
                        ),
                    );
                };
                let base = survivor_baseline[logical]
                    .as_ref()
                    .expect("the surviving-rank-count baseline is fault-free");
                if o.digest != base.digest {
                    return (
                        false,
                        format!(
                            "survivor {original} (logical {logical}) digest diverges from the \
                             {}-rank baseline",
                            survivors.len()
                        ),
                    );
                }
                if o.stats.shrinks != 1 || o.stats.rank_losses != 1 {
                    return (
                        false,
                        format!(
                            "survivor {original} counters off: shrinks={} rank_losses={}",
                            o.stats.shrinks, o.stats.rank_losses
                        ),
                    );
                }
            }
            let stats = result[survivors[0]].as_ref().unwrap().stats;
            (
                true,
                format!(
                    "shrinks={} rollbacks={} survivors match the {}-rank baseline",
                    stats.shrinks,
                    stats.rollbacks,
                    survivors.len()
                ),
            )
        }
    }
}

fn json_row(s: &Schedule, run: &ChaosRun, deterministic: bool, pass: bool, detail: &str) -> String {
    let mut ranks = Vec::new();
    for (rank, r) in run.outcome.iter().enumerate() {
        let row = match r {
            Ok(o) => format!(
                "{{\"rank\": {rank}, \"outcome\": \"completed\", \"digest\": \"{:016x}\", \
                 \"rollbacks\": {}, \"degradations\": {}, \"degraded_steps\": {}, \
                 \"checkpoints\": {}, \"shrinks\": {}, \"rank_losses\": {}, \
                 \"faults_fired\": {}}}",
                o.digest,
                o.stats.rollbacks,
                o.stats.degradations,
                o.stats.degraded_steps,
                o.stats.checkpoints,
                o.stats.shrinks,
                o.stats.rank_losses,
                o.report.total_fired(),
            ),
            Err(ResilienceError::RetriesExhausted { step, attempts, .. }) => format!(
                "{{\"rank\": {rank}, \"outcome\": \"retries_exhausted\", \
                 \"checkpoint_step\": {step}, \"attempts\": {attempts}}}"
            ),
            Err(ResilienceError::Killed { rank: victim, at_step }) => format!(
                "{{\"rank\": {rank}, \"outcome\": \"killed\", \"victim\": {victim}, \
                 \"at_step\": {at_step}}}"
            ),
            Err(ResilienceError::InsufficientRanks { survivors, min_ranks }) => format!(
                "{{\"rank\": {rank}, \"outcome\": \"insufficient_ranks\", \
                 \"survivors\": {survivors}, \"min_ranks\": {min_ranks}}}"
            ),
        };
        ranks.push(row);
    }
    let mut out = String::new();
    let _ = write!(
        out,
        "    {{\"name\": \"{}\", \"seed\": {}, \"placement\": \"{:?}\", \"batched\": {}, \
         \"expectation\": \"{}\", \"pass\": {pass}, \"deterministic\": {deterministic}, \
         \"wall_ms\": {}, \"virtual_seconds\": {:.6}, \
         \"detail\": \"{detail}\", \"ranks\": [{}]}}",
        s.name,
        s.seed,
        s.placement,
        s.batched,
        s.expectation.name(),
        run.wall.as_millis(),
        run.virtual_total,
        ranks.join(", "),
    );
    out
}
