//! Regenerates **Table I**: the hardware and software configuration of
//! the two evaluation platforms, as encoded in the cost models that
//! drive every other experiment.
//!
//! ```text
//! cargo run --release -p rbamr-bench --bin table1_machines
//! ```

use rbamr_perfmodel::Machine;

fn main() {
    println!("Table I: IPA and Titan hardware/software configurations (as modelled)");
    println!("{}", "=".repeat(110));
    println!(
        "{:<18} {:<34} {:<22} {:>5} {:>6} {:>6}  Interconnect",
        "Machine", "Processor", "Accelerator", "Nodes", "Cores", "GPUs"
    );
    println!("{}", "-".repeat(110));
    for m in [Machine::ipa_gpu(), Machine::ipa_cpu_node(), Machine::titan()] {
        println!("{}", m.table_row());
    }
    println!("{}", "-".repeat(110));
    println!("\nCalibrated model parameters:");
    for m in [Machine::ipa_gpu(), Machine::titan()] {
        let d = m.device();
        println!(
            "  {:<16}: host {:>5.0} GB/s | device {:>5.0} GB/s, launch {:>4.1} us | PCIe {:>4.1} GB/s, {:>4.1} us | net {:>4.1} GB/s, {:>4.2} us",
            m.name,
            m.host.mem_bandwidth / 1e9,
            d.mem_bandwidth / 1e9,
            d.kernel_latency * 1e6,
            d.pcie_bandwidth / 1e9,
            d.pcie_latency * 1e6,
            m.network.bandwidth / 1e9,
            m.network.latency * 1e6,
        );
    }
    let cpu = Machine::ipa_cpu_node();
    println!(
        "  {:<16}: host {:>5.0} GB/s (no accelerator) | net {:>4.1} GB/s, {:>4.2} us",
        cpu.name,
        cpu.host.mem_bandwidth / 1e9,
        cpu.network.bandwidth / 1e9,
        cpu.network.latency * 1e6,
    );
    println!("\npaper: Intel 13.1 compilers, MVAPICH/Cray MPT, CUDA 5.5 — substituted by");
    println!("rustc + the rbamr-netsim message runtime + the rbamr-device simulated K20x.");
}
