//! Regenerates **Figure 11**: weak scaling of the triple-point problem
//! on Titan — per-cell grind times of the runtime components (Total,
//! Hydrodynamics, Synchronisation, Regridding) at 1 to 4,096 nodes,
//! ~2 million effective cells per node, 3 levels, ratio 2.
//!
//! Method (the documented Titan substitution, DESIGN.md): the paper's
//! 8-billion-cell meshes cannot be instantiated, so the harness
//!
//! 1. runs the *real* triple-point simulation on simulated Titan ranks
//!    to measure the structural constants of a step — kernel launches
//!    per patch, device bytes per cell, refined coverage fractions;
//! 2. validates the analytic model ([`WeakScalingModel`]) against those
//!    fully simulated runs at small node counts, with the model
//!    configured to the *same* small-scale structure;
//! 3. evaluates the model along the paper's node axis at the paper's
//!    per-node workload.
//!
//! ```text
//! cargo run --release -p rbamr-bench --bin fig11_weak
//! ```
//!
//! Two extra modes exercise the event-driven rank scheduler at scale:
//!
//! * `--ranks N [--metadata replicated|partitioned]` runs the real
//!   triple-point problem on `N` simulated ranks (small per-rank
//!   workload, 2 steps) under the requested metadata mode and prints
//!   one `SCALE_JSON {...}` line with wall time and the process
//!   peak-RSS (`VmHWM`).
//! * `--scale-smoke [--metadata ...] [--json <path>]` re-executes this
//!   binary as a child process at 256 and then 1,024 ranks (`VmHWM` is
//!   a process-lifetime high-water mark, so each rank count needs a
//!   fresh process), gates per-rank memory sublinearity and wall-clock
//!   budgets, and writes a combined JSON artifact for CI. With
//!   `--metadata partitioned` it additionally runs a replicated
//!   1,024-rank comparison child, requires partitioned metadata to win
//!   on peak per-rank RSS, and gates the per-`allgatherv` frame count
//!   of the log-depth collectives in process.

use rbamr_bench::{
    csv_dir_arg, measure_profile, metrics_path_arg, path_arg, trace_path_arg, vm_hwm_kb, write_csv,
};
use rbamr_hydro::{HydroConfig, HydroSim, MetadataMode, Placement};
use rbamr_netsim::Cluster;
use rbamr_perfmodel::{Category, Machine};
use rbamr_problems::synthetic::WeakScalingModel;
use rbamr_problems::triple_point::{triple_point_regions, TRIPLE_POINT_EXTENT};
use rbamr_telemetry::{chrome_trace, fig11_report, metrics_json, MetricsSnapshot, Recorder};

const LEVELS: usize = 3;

struct RealRun {
    /// Per-rank per-step component times (slowest rank).
    hydro: f64,
    timestep: f64,
    sync: f64,
    regrid: f64,
    /// Stored cells per rank, per level.
    cells_per_level: Vec<f64>,
    /// Patches per rank.
    patches_per_rank: f64,
    /// Device kernel launches per rank per step.
    launches_per_step: f64,
    /// Per-rank telemetry recorders (span traces and counters).
    recorders: Vec<Recorder>,
}

fn run_real(ranks: usize, coarse_per_rank: i64, max_patch: i64) -> RealRun {
    let cluster = Cluster::new(Machine::titan());
    let total_coarse = coarse_per_rank * ranks as i64;
    let ny = ((total_coarse as f64 / (7.0 / 3.0)).sqrt()) as i64;
    let nx = ny * 7 / 3;
    let results = cluster.run(ranks, |mut comm| {
        let rec = Recorder::new(comm.rank(), comm.clock().clone());
        comm.set_recorder(rec.clone());
        let mut config =
            HydroConfig { regrid_interval: 0, max_patch_size: max_patch, ..HydroConfig::default() };
        config.regrid.max_patch_size = max_patch;
        let mut sim = HydroSim::new(
            Machine::titan(),
            Placement::Device,
            comm.clock().clone(),
            TRIPLE_POINT_EXTENT,
            (nx, ny),
            LEVELS,
            2,
            config,
            triple_point_regions(),
            comm.rank(),
            comm.size(),
        );
        sim.set_recorder(rec.clone());
        sim.initialize(Some(&comm));
        let dev = sim.device().expect("device build").clone();
        dev.reset_transfer_stats();
        let profile = measure_profile(&mut sim, Some(&comm), 3);
        let launches = dev.stats().kernel_launches as f64 / 4.0; // warm-up + 3 steps
        let cells_per_level: Vec<f64> = (0..sim.hierarchy().num_levels())
            .map(|l| sim.hierarchy().level(l).num_cells() as f64 / comm.size() as f64)
            .collect();
        let patches: usize =
            (0..sim.hierarchy().num_levels()).map(|l| sim.hierarchy().level(l).num_patches()).sum();
        (profile, cells_per_level, patches as f64 / comm.size() as f64, launches, rec)
    });
    let mut out = RealRun {
        hydro: 0.0,
        timestep: 0.0,
        sync: 0.0,
        regrid: 0.0,
        cells_per_level: results[0].value.1.clone(),
        patches_per_rank: results[0].value.2,
        launches_per_step: 0.0,
        recorders: results.iter().map(|r| r.value.4.clone()).collect(),
    };
    for r in &results {
        out.hydro = out.hydro.max(r.value.0.per_step.hydrodynamics());
        out.timestep = out.timestep.max(r.value.0.per_step.get(Category::Timestep));
        out.sync = out.sync.max(r.value.0.per_step.get(Category::Synchronize));
        out.regrid =
            out.regrid.max(r.value.0.per_step.get(Category::Regrid) + r.value.0.regrid / 10.0);
        out.launches_per_step = out.launches_per_step.max(r.value.3);
    }
    out
}

impl RealRun {
    fn stored_cells(&self) -> f64 {
        self.cells_per_level.iter().sum()
    }

    fn grind_total(&self) -> f64 {
        (self.hydro + self.timestep + self.sync + self.regrid) / self.stored_cells()
    }

    /// A model configured to this run's measured structure.
    fn matching_model(&self, calibrated: &WeakScalingModel) -> WeakScalingModel {
        let mut m = calibrated.clone();
        let coarse = self.cells_per_level[0];
        m.effective_cells_per_node = coarse * 16.0;
        m.refined_fraction = self
            .cells_per_level
            .iter()
            .enumerate()
            .map(|(l, &c)| (c / (coarse * 4f64.powi(l as i32))).min(1.0))
            .collect();
        m.patch_size = (self.stored_cells() / self.patches_per_rank).sqrt();
        m
    }
}

/// Coarse cells per rank in the scale-smoke runs: small enough that
/// 1,024 simulated ranks finish in seconds on one box, large enough
/// that every rank owns real patches and sends real halos.
const SCALE_COARSE_PER_RANK: i64 = 256;

fn metadata_name(mode: MetadataMode) -> &'static str {
    match mode {
        MetadataMode::Replicated => "replicated",
        MetadataMode::Partitioned => "partitioned",
    }
}

fn metadata_arg(args: &[String]) -> MetadataMode {
    match args.iter().position(|a| a == "--metadata") {
        Some(i) => match args.get(i + 1).map(String::as_str) {
            Some("replicated") => MetadataMode::Replicated,
            Some("partitioned") => MetadataMode::Partitioned,
            other => panic!("usage: --metadata replicated|partitioned (got {other:?})"),
        },
        None => MetadataMode::Replicated,
    }
}

/// One `--ranks N` run: the real triple-point problem at `N` simulated
/// ranks, weak-scaled workload. Prints a machine-readable `SCALE_JSON`
/// line for the `--scale-smoke` parent.
///
/// Both metadata modes are viable here since the log-depth collectives
/// landed: the partitioned conversion's `allgatherv` costs
/// O(N log N) frames per level refresh instead of the old all-to-all
/// N·(N-1), so each rank durably holds only its interest neighborhood
/// instead of the replicated global box list. The replicated mode
/// gates the *rank execution model*; the partitioned mode additionally
/// gates the metadata memory win.
fn scale_run(ranks: usize, mode: MetadataMode) {
    let started = std::time::Instant::now();
    let total_coarse = SCALE_COARSE_PER_RANK * ranks as i64;
    let ny = ((total_coarse as f64 / (7.0 / 3.0)).sqrt()).round() as i64;
    let nx = ny * 7 / 3;
    println!(
        "fig11_weak --ranks {ranks}: triple point, {nx}x{ny} coarse, {LEVELS} levels, \
         {} metadata",
        metadata_name(mode)
    );
    let results = Cluster::new(Machine::titan()).with_stack_size(1 << 20).run(ranks, move |comm| {
        let mut config = HydroConfig {
            regrid_interval: 0,
            max_patch_size: 16,
            metadata_mode: mode,
            ..HydroConfig::default()
        };
        config.regrid.max_patch_size = 16;
        let mut sim = HydroSim::new(
            Machine::titan(),
            Placement::Device,
            comm.clock().clone(),
            TRIPLE_POINT_EXTENT,
            (nx, ny),
            LEVELS,
            2,
            config,
            triple_point_regions(),
            comm.rank(),
            comm.size(),
        );
        sim.initialize(Some(&comm));
        for _ in 0..2 {
            sim.step(Some(&comm));
        }
        sim.hierarchy().total_cells()
    });
    let wall = started.elapsed();
    let virtual_seconds = Cluster::job_time(&results).total();
    let stored_cells = results[0].value;
    let hwm = vm_hwm_kb().unwrap_or(0);
    println!(
        "SCALE_JSON {{\"ranks\": {ranks}, \"metadata\": \"{}\", \"wall_ms\": {}, \
         \"vm_hwm_kb\": {hwm}, \"stored_cells\": {stored_cells}, \
         \"virtual_seconds\": {virtual_seconds:.6}}}",
        metadata_name(mode),
        wall.as_millis(),
    );
}

/// One child measurement parsed back from its `SCALE_JSON` line.
struct ScaleSample {
    ranks: usize,
    wall_ms: u64,
    vm_hwm_kb: u64,
    json: String,
}

fn scale_child(ranks: usize, mode: MetadataMode) -> ScaleSample {
    let exe = std::env::current_exe().expect("scale-smoke: current_exe");
    let out = std::process::Command::new(exe)
        .args(["--ranks", &ranks.to_string(), "--metadata", metadata_name(mode)])
        .output()
        .expect("scale-smoke: spawn child");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "scale-smoke: --ranks {ranks} child failed ({}):\n{stdout}\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let json = stdout
        .lines()
        .find_map(|l| l.strip_prefix("SCALE_JSON "))
        .unwrap_or_else(|| panic!("scale-smoke: no SCALE_JSON line in:\n{stdout}"))
        .to_string();
    let field = |name: &str| -> u64 {
        json.split(&format!("\"{name}\": "))
            .nth(1)
            .and_then(|rest| rest.split([',', '}']).next())
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or_else(|| panic!("scale-smoke: missing field {name} in {json}"))
    };
    ScaleSample { ranks, wall_ms: field("wall_ms"), vm_hwm_kb: field("vm_hwm_kb"), json }
}

/// In-process gate on collective frame complexity: one small
/// `allgatherv` at 1,024 ranks under the default (log-depth) algorithm
/// must cost O(N log N) frames, not the flat fan's N·(N-1). The
/// `net.sends` counters include every collective-internal frame, so
/// summing them over the ranks counts the wire traffic exactly.
fn frames_gate(failures: &mut Vec<String>) -> (u64, u64) {
    use bytes::Bytes;
    use rbamr_telemetry::Recorder;
    let n: usize = 1024;
    let results = Cluster::new(Machine::titan()).with_workers(4).with_stack_size(192 * 1024).run(
        n,
        |mut comm| {
            let rec = Recorder::new(comm.rank(), comm.clock().clone());
            comm.set_recorder(rec.clone());
            let parts = comm.allgatherv(Bytes::from(vec![comm.rank() as u8; 8]), Category::Regrid);
            assert_eq!(parts.len(), comm.size());
            rec.counter("net.sends")
        },
    );
    let frames: u64 = results.iter().map(|r| r.value).sum();
    let bound = (n * (n.ilog2() as usize + 2)) as u64;
    let flat = (n * (n - 1)) as u64;
    println!(
        "  frames gate: {frames} frames for one allgatherv at {n} ranks \
         (log-depth bound {bound}, flat fan {flat})"
    );
    if frames > bound {
        failures.push(format!(
            "allgatherv frame count not log-depth: {frames} frames at {n} ranks > {bound} \
             (flat all-to-all is {flat})"
        ));
    }
    (frames, bound)
}

/// CI gate: the event-driven scheduler must hold per-rank memory
/// sublinear and wall time bounded as simulated ranks quadruple. Under
/// partitioned metadata, the mode must additionally *win* on peak
/// per-rank RSS against a replicated run at 1,024 ranks, and the
/// collectives behind the exchange must be log-depth.
fn scale_smoke(mode: MetadataMode) {
    // Wall budgets are ~5x the measured values on a single-core CI-class
    // box (release build: 3.0 s at 256 ranks, 26 s at 1,024), so they
    // catch order-of-magnitude regressions — a return to
    // thread-per-rank scheduling or a wall-clock sleep — not jitter.
    const WALL_BUDGET_256_MS: u64 = 15_000;
    const WALL_BUDGET_1024_MS: u64 = 120_000;
    // Per-rank peak-RSS ceiling at 1,024 ranks (measured ~480 KiB).
    // Thread-per-rank needs a multi-MiB touched stack per rank; the
    // cooperative scheduler with 1 MiB carrier stacks stays well under.
    const PER_RANK_KB_CEILING: u64 = 1024;

    println!(
        "fig11_weak --scale-smoke: 256 -> 1,024 simulated ranks, {} metadata \
         (fresh child per count)",
        metadata_name(mode)
    );
    let small = scale_child(256, mode);
    println!("  256 ranks: wall {} ms, VmHWM {} KiB", small.wall_ms, small.vm_hwm_kb);
    let large = scale_child(1024, mode);
    println!("  1024 ranks: wall {} ms, VmHWM {} KiB", large.wall_ms, large.vm_hwm_kb);

    let mut failures = Vec::new();
    // Per-rank memory sublinearity: rank count x4 while peak RSS per
    // rank must not grow past 1.5x (measured: flat, 464 -> 477 KiB).
    // Anything per-rank that secretly scales with *global* size — a
    // replicated O(ranks) structure per rank, per-peer transport state
    // — shows up here as superlinear total growth.
    let small_per_rank_kb = small.vm_hwm_kb / small.ranks as u64;
    let per_rank_kb = large.vm_hwm_kb / large.ranks as u64;
    if 2 * per_rank_kb >= 3 * small_per_rank_kb {
        failures.push(format!(
            "per-rank memory not sublinear: {per_rank_kb} KiB/rank at 1024 ranks >= 1.5x the \
             {small_per_rank_kb} KiB/rank at 256 ranks"
        ));
    }
    if per_rank_kb >= PER_RANK_KB_CEILING {
        failures.push(format!(
            "per-rank peak RSS {per_rank_kb} KiB at 1024 ranks >= {PER_RANK_KB_CEILING} KiB ceiling"
        ));
    }
    for (sample, budget) in [(&small, WALL_BUDGET_256_MS), (&large, WALL_BUDGET_1024_MS)] {
        if sample.wall_ms > budget {
            failures.push(format!(
                "wall budget blown at {} ranks: {} ms > {budget} ms",
                sample.ranks, sample.wall_ms
            ));
        }
    }

    // Partitioned metadata must *win* on peak per-rank RSS against a
    // replicated run of the identical workload at 1,024 ranks, and the
    // exchange's collectives must be log-depth on the wire.
    let mut runs = vec![small.json.clone(), large.json.clone()];
    let mut extra_fields = String::new();
    if mode == MetadataMode::Partitioned {
        let repl = scale_child(1024, MetadataMode::Replicated);
        println!(
            "  1024 ranks (replicated comparison): wall {} ms, VmHWM {} KiB",
            repl.wall_ms, repl.vm_hwm_kb
        );
        if large.vm_hwm_kb >= repl.vm_hwm_kb {
            failures.push(format!(
                "partitioned metadata does not beat replicated on peak RSS at 1024 ranks: \
                 {} KiB >= {} KiB",
                large.vm_hwm_kb, repl.vm_hwm_kb
            ));
        } else {
            println!(
                "  partitioned beats replicated on peak RSS: {} KiB < {} KiB ({:.1}% saved)",
                large.vm_hwm_kb,
                repl.vm_hwm_kb,
                (1.0 - large.vm_hwm_kb as f64 / repl.vm_hwm_kb as f64) * 100.0
            );
        }
        let (frames, bound) = frames_gate(&mut failures);
        extra_fields = format!(
            ",\n  \"allgatherv_frames_1024\": {frames},\n  \"allgatherv_frame_bound\": {bound}"
        );
        runs.push(repl.json.clone());
    }

    let json_path =
        path_arg("--json").unwrap_or_else(|| std::path::PathBuf::from("target/scale_smoke.json"));
    let json = format!(
        "{{\n  \"pass\": {},\n  \"metadata\": \"{}\",\n  \"per_rank_growth_limit\": 1.5,\n  \
         \"per_rank_kb_ceiling\": {PER_RANK_KB_CEILING},\n  \"wall_budgets_ms\": \
         [{WALL_BUDGET_256_MS}, {WALL_BUDGET_1024_MS}]{extra_fields},\n  \"failures\": [{}],\n  \
         \"runs\": [\n    {}\n  ]\n}}\n",
        failures.is_empty(),
        metadata_name(mode),
        failures.iter().map(|f| format!("\"{f}\"")).collect::<Vec<_>>().join(", "),
        runs.join(",\n    "),
    );
    if let Some(dir) = json_path.parent() {
        std::fs::create_dir_all(dir).expect("scale-smoke: create artifact dir");
    }
    std::fs::write(&json_path, json).expect("scale-smoke: write artifact");
    println!("artifact: {}", json_path.display());

    if failures.is_empty() {
        println!(
            "scale-smoke PASS: {} -> {} KiB/rank peak RSS for x4 ranks, \
             VmHWM {} -> {} KiB total",
            small_per_rank_kb, per_rank_kb, small.vm_hwm_kb, large.vm_hwm_kb
        );
    } else {
        for f in &failures {
            eprintln!("scale-smoke FAIL: {f}");
        }
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--ranks") {
        let ranks =
            args.get(i + 1).and_then(|v| v.parse().ok()).expect("usage: fig11_weak --ranks <N>");
        scale_run(ranks, metadata_arg(&args));
        return;
    }
    if args.iter().any(|a| a == "--scale-smoke") {
        scale_smoke(metadata_arg(&args));
        return;
    }

    println!("Figure 11: weak scaling on Titan, triple point, 3 levels, ratio 2");
    println!("(grind times in s/cell; structural constants measured from full");
    println!(" simulated runs, extrapolated with the DESIGN.md cost model)\n");

    // --- Phase 1: measure structural constants from a real run --------
    let base = run_real(2, 40_000, 64);
    let dev = Machine::titan();
    let k = dev.device();
    let launch_per_patch = base.launches_per_step / base.patches_per_rank;
    // Separate launch latency from bandwidth in the measured hydro time.
    let launch_time = base.launches_per_step * k.kernel_latency;
    let bytes_per_cell =
        ((base.hydro - launch_time).max(0.0) * k.mem_bandwidth / base.stored_cells()).max(500.0);
    println!("measured step structure (2 ranks, 40k coarse cells/rank):");
    println!("  kernel launches / patch / step : {launch_per_patch:.1}");
    println!("  device bytes / cell / step     : {bytes_per_cell:.0}");
    println!(
        "  refined coverage fractions     : {:?}",
        base.cells_per_level
            .iter()
            .enumerate()
            .map(|(l, &c)| (c / (base.cells_per_level[0] * 4f64.powi(l as i32)) * 100.0).round())
            .collect::<Vec<_>>()
    );

    // --- Telemetry: span-derived breakdown vs. the raw clock ----------
    let snap = MetricsSnapshot::from_recorders(&base.recorders);
    println!("\nspan-derived breakdown (Fig. 11 series, clock vs. spans):");
    print!("{}", fig11_report(&snap.clock, &snap.spans));
    assert!(
        snap.agreement_within(0.01),
        "span-derived breakdown disagrees with the clock by more than 1% \
         (coverage {:.4}): instrumentation has a gap",
        snap.coverage()
    );
    println!(
        "span coverage of clock-charged time: {:.2}% (agreement within 1%)",
        snap.coverage() * 100.0
    );
    if let Some(path) = trace_path_arg() {
        std::fs::write(&path, chrome_trace(&base.recorders)).expect("write trace");
        println!("wrote Chrome trace to {}", path.display());
    }
    if let Some(path) = metrics_path_arg() {
        std::fs::write(&path, metrics_json(&base.recorders)).expect("write metrics");
        println!("wrote metrics snapshot to {}", path.display());
    }

    let mut model = WeakScalingModel::titan_paper();
    model.calib.kernel_launches_per_patch_step = launch_per_patch;
    model.calib.bytes_per_cell_step = bytes_per_cell;

    // --- Phase 2: validate the model at fully simulated scales --------
    println!("\nmodel validation (model configured to the measured small-scale structure):");
    println!("{:>6} {:>14} {:>14} {:>8}", "ranks", "simulated", "model", "ratio");
    for ranks in [1usize, 2, 4] {
        let real = run_real(ranks, 40_000, 64);
        let m = real.matching_model(&model).grind_times(ranks as u32);
        println!(
            "{:>6} {:>11.3e} {:>11.3e} {:>8.2}",
            ranks,
            real.grind_total(),
            m.total(),
            real.grind_total() / m.total()
        );
    }

    // --- Phase 3: the paper's node axis at paper scale -----------------
    println!("\npaper-scale series (2M effective cells/node, 256^2 patches):");
    println!(
        "{:>6} {:>13} {:>15} {:>15} {:>13}",
        "nodes", "Total", "Hydrodynamics", "Synchronisation", "Regridding"
    );
    println!("{}", "-".repeat(68));
    let mut rows = Vec::new();
    for nodes in [1u32, 4, 16, 64, 256, 1024, 4096] {
        let g = model.grind_times(nodes);
        println!(
            "{:>6} {:>13.3e} {:>15.3e} {:>15.3e} {:>13.3e}",
            nodes,
            g.total(),
            g.hydro,
            g.sync,
            g.regrid
        );
        rows.push(vec![f64::from(nodes), g.total(), g.hydro, g.timestep, g.sync, g.regrid]);
    }
    println!("{}", "-".repeat(68));
    if let Some(dir) = csv_dir_arg() {
        let p = write_csv(
            &dir,
            "fig11_weak.csv",
            "nodes,total_s_per_cell,hydro,timestep,sync,regrid",
            &rows,
        );
        println!("wrote {}", p.display());
    }
    let g1 = model.grind_times(1);
    let g4k = model.grind_times(4096);
    println!(
        "\ngrowth 1 -> 4096 nodes: total {:.2}x (paper: gradual, well under 10x)",
        g4k.total() / g1.total()
    );
    println!(
        "hydrodynamics share: {:.0}% at 1 node, {:.0}% at 4096 (majority everywhere, as in the paper)",
        g1.hydro / g1.total() * 100.0,
        g4k.hydro / g4k.total() * 100.0
    );
    println!(
        "timestep share grows {:.1}% -> {:.1}% (paper: <1% -> 6%)",
        g1.timestep / g1.total() * 100.0,
        g4k.timestep / g4k.total() * 100.0
    );
    println!(
        "synchronisation share: {:.1}% -> {:.1}% (paper: 1% -> 3%)",
        g1.sync / g1.total() * 100.0,
        g4k.sync / g4k.total() * 100.0
    );
}
