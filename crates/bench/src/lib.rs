//! Shared harness utilities for the figure-regeneration binaries.
//!
//! Each binary regenerates one table or figure of the paper's Section V
//! (see `DESIGN.md`'s experiment index and `EXPERIMENTS.md` for
//! paper-vs-measured results):
//!
//! * `table1_machines` — Table I.
//! * `fig9_serial` — Figure 9, the serial K20x vs dual-socket sweep.
//! * `fig10_strong` — Figure 10, strong scaling on IPA.
//! * `fig11_weak` — Figure 11, weak scaling on Titan.
//! * `breakdown` — the Section V-B runtime-component percentages.
//!
//! Runtimes are **virtual** (the calibrated machine models of
//! `rbamr-perfmodel`); the numerics execute for real. Large
//! paper-scale configurations run a few real steps and scale to the
//! paper's 1000 (per-step cost is stationary once the hierarchy
//! exists); regrid cost is measured separately and amortised at the
//! regrid interval.

use rbamr_hydro::{HydroConfig, HydroSim, Placement};
use rbamr_netsim::Comm;
use rbamr_perfmodel::{Category, Clock, Machine, TimeBreakdown};
use rbamr_problems::sod_regions;

/// A measured per-step virtual-time profile of a configuration.
#[derive(Clone, Copy, Debug)]
pub struct StepProfile {
    /// Average per-step breakdown (excluding regridding).
    pub per_step: TimeBreakdown,
    /// Virtual seconds of one regrid pass.
    pub regrid: f64,
    /// Stored cells over all levels.
    pub total_cells: i64,
}

impl StepProfile {
    /// Projected runtime of `steps` paper steps with regridding every
    /// `interval` steps.
    pub fn projected_runtime(&self, steps: usize, interval: usize) -> f64 {
        let regrids = steps.checked_div(interval).unwrap_or(0);
        self.per_step.total() * steps as f64 + self.regrid * regrids as f64
    }

    /// Projected per-category seconds for `steps` steps.
    pub fn projected_components(&self, steps: usize, interval: usize) -> Vec<(Category, f64)> {
        let regrids = steps.checked_div(interval).unwrap_or(0);
        Category::ALL
            .iter()
            .map(|&c| {
                let mut v = self.per_step.get(c) * steps as f64;
                if c == Category::Regrid {
                    v += self.regrid * regrids as f64;
                }
                (c, v)
            })
            .collect()
    }
}

/// Standard experiment configuration for the Sod studies. The harness
/// regrids explicitly (interval 0) so step and regrid costs can be
/// measured separately and recombined at the paper's cadence.
pub fn sod_config(max_patch: i64) -> HydroConfig {
    let mut config =
        HydroConfig { regrid_interval: 0, max_patch_size: max_patch, ..HydroConfig::default() };
    config.regrid.max_patch_size = max_patch;
    config.regrid.cluster.max_size = max_patch.min(1 << 20);
    config
}

/// Build a Sod simulation on an `nx x ny` coarse grid.
#[allow(clippy::too_many_arguments)]
pub fn sod_sim(
    machine: Machine,
    placement: Placement,
    clock: Clock,
    nx: i64,
    ny: i64,
    levels: usize,
    max_patch: i64,
    rank: usize,
    nranks: usize,
) -> HydroSim {
    HydroSim::new(
        machine,
        placement,
        clock,
        (1.0, 1.0),
        (nx, ny),
        levels,
        2,
        sod_config(max_patch),
        sod_regions(),
        rank,
        nranks,
    )
}

/// Measure the per-step virtual-time profile of `sim`: one warm-up
/// step, `measure_steps` measured steps, then one explicit regrid.
pub fn measure_profile(
    sim: &mut HydroSim,
    comm: Option<&Comm>,
    measure_steps: usize,
) -> StepProfile {
    assert!(measure_steps > 0, "need at least one measured step");
    sim.step(comm); // warm-up: first dt ramp
    let before = sim.clock().snapshot();
    for _ in 0..measure_steps {
        sim.step(comm);
    }
    let after = sim.clock().snapshot();
    let per_step = diff_scaled(&before, &after, 1.0 / measure_steps as f64);

    let before_rg = sim.clock().snapshot();
    sim.regrid(comm);
    let after_rg = sim.clock().snapshot();
    let regrid = after_rg.total() - before_rg.total();

    StepProfile { per_step, regrid, total_cells: sim.hierarchy().total_cells() }
}

/// As [`measure_profile`], also returning the telemetry snapshot of the
/// simulation's recorder (counters, gauges, and the span-derived time
/// breakdown). The snapshot is empty unless a recorder was attached via
/// [`HydroSim::set_recorder`] before stepping.
pub fn measure_profile_traced(
    sim: &mut HydroSim,
    comm: Option<&Comm>,
    measure_steps: usize,
) -> (StepProfile, rbamr_telemetry::MetricsSnapshot) {
    let profile = measure_profile(sim, comm, measure_steps);
    let snapshot = rbamr_telemetry::MetricsSnapshot::from_recorder(sim.recorder());
    (profile, snapshot)
}

/// `(after - before) * scale`, per category.
pub fn diff_scaled(before: &TimeBreakdown, after: &TimeBreakdown, scale: f64) -> TimeBreakdown {
    let clock = Clock::new();
    for c in Category::ALL {
        let d = (after.get(c) - before.get(c)).max(0.0) * scale;
        if d > 0.0 {
            clock.advance(c, d);
        }
    }
    clock.snapshot()
}

/// Format seconds compactly.
pub fn fmt_secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.1}")
    } else if s >= 1.0 {
        format!("{s:.2}")
    } else {
        format!("{s:.4}")
    }
}

/// Write a CSV series file (gnuplot/pandas-ready) when the user passed
/// `--csv <dir>`; returns the path written.
///
/// # Panics
/// Panics on I/O errors — the harness should fail loudly.
pub fn write_csv(
    dir: &std::path::Path,
    name: &str,
    header: &str,
    rows: &[Vec<f64>],
) -> std::path::PathBuf {
    std::fs::create_dir_all(dir).expect("csv: create dir");
    let path = dir.join(name);
    let mut out = String::new();
    out.push_str(header);
    out.push('\n');
    for row in rows {
        let cells: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    std::fs::write(&path, out).expect("csv: write");
    path
}

/// Parse an optional `--csv <dir>` argument.
pub fn csv_dir_arg() -> Option<std::path::PathBuf> {
    path_arg("--csv")
}

/// Parse an optional `--trace <file>` argument (Chrome trace-event JSON
/// output path).
pub fn trace_path_arg() -> Option<std::path::PathBuf> {
    path_arg("--trace")
}

/// Parse an optional `--metrics <file>` argument (flat JSON metrics
/// snapshot output path).
pub fn metrics_path_arg() -> Option<std::path::PathBuf> {
    path_arg("--metrics")
}

/// Peak resident set size of this process in KiB (`VmHWM` from
/// `/proc/self/status`). Returns `None` off Linux or when the field is
/// unreadable. Note this is a *process-lifetime high-water mark*: it
/// never decreases, so comparing two configurations requires running
/// each in a fresh process (see `fig11_weak --scale-smoke`).
pub fn vm_hwm_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:")?.trim().strip_suffix("kB")?.trim().parse().ok())
}

/// Parse an optional `<flag> <path>` pair from the process arguments.
pub fn path_arg(flag: &str) -> Option<std::path::PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(std::path::PathBuf::from)
}

/// Build the two-level hierarchy the schedule-build benchmarks use:
/// `fine_patches` (a perfect square with even side) 4×4-cell patches
/// tiling a square refined region, over a fully tiled coarse level with
/// one quarter as many 4×4 patches, owners round-robin over `nranks`.
/// Returns the hierarchy as seen from `rank`, plus a registry holding
/// one cell-centred variable with two ghost cells.
///
/// # Panics
/// Panics if `fine_patches` is not a perfect square with an even side.
pub fn schedule_bench_hierarchy(
    fine_patches: usize,
    rank: usize,
    nranks: usize,
) -> (rbamr_amr::PatchHierarchy, rbamr_amr::VariableRegistry, rbamr_amr::VariableId) {
    bench_hierarchy(fine_patches, rank, nranks, |boxes, n| {
        (0..boxes.len()).map(|i| i % n).collect()
    })
}

/// As [`schedule_bench_hierarchy`], with owners assigned by the
/// production space-filling-curve partitioner
/// ([`rbamr_amr::balance::partition_sfc`]) instead of round-robin, so
/// each rank owns a compact block. Used by the partitioned-metadata
/// benchmark, where per-rank retention depends on ownership locality.
pub fn schedule_bench_hierarchy_sfc(
    fine_patches: usize,
    rank: usize,
    nranks: usize,
) -> (rbamr_amr::PatchHierarchy, rbamr_amr::VariableRegistry, rbamr_amr::VariableId) {
    bench_hierarchy(fine_patches, rank, nranks, rbamr_amr::balance::partition_sfc)
}

fn bench_hierarchy(
    fine_patches: usize,
    rank: usize,
    nranks: usize,
    owners: impl Fn(&[rbamr_geometry::GBox], usize) -> Vec<usize>,
) -> (rbamr_amr::PatchHierarchy, rbamr_amr::VariableRegistry, rbamr_amr::VariableId) {
    use rbamr_amr::{GridGeometry, HostDataFactory, PatchHierarchy, VariableRegistry};
    use rbamr_geometry::{BoxList, Centring, GBox, IntVector};
    let side = (fine_patches as f64).sqrt().round() as i64;
    assert!(
        side * side == fine_patches as i64 && side % 2 == 0,
        "fine_patches must be a perfect square with an even side"
    );
    let tiles = |n: i64, size: i64| -> Vec<GBox> {
        let mut out = Vec::with_capacity((n * n) as usize);
        for j in 0..n {
            for i in 0..n {
                let lo = IntVector::new(i * size, j * size);
                out.push(GBox::new(lo, lo + IntVector::uniform(size)));
            }
        }
        out
    };
    let mut reg = VariableRegistry::new(std::sync::Arc::new(HostDataFactory::new()));
    let var = reg.register("q", Centring::Cell, IntVector::uniform(2));
    // Coarse level: 2*side cells per axis in 4x4 tiles; fine level
    // refines the full domain (ratio 2) into side^2 4x4 tiles.
    let mut h = PatchHierarchy::new(
        GridGeometry::unit(1.0),
        BoxList::from_box(GBox::from_coords(0, 0, 2 * side, 2 * side)),
        IntVector::uniform(2),
        2,
        rank,
        nranks,
    );
    let coarse = tiles(side / 2, 4);
    let coarse_owners = owners(&coarse, nranks);
    h.set_level(0, coarse, coarse_owners, &reg);
    let fine = tiles(side, 4);
    let fine_owners = owners(&fine, nranks);
    h.set_level(1, fine, fine_owners, &reg);
    (h, reg, var)
}

/// The Figure 9/10 resolution ladder: coarse zone counts from ~3,125 to
/// 6.4 million (square grids, quadrupling per rung as in the paper).
/// The two largest rungs only run with `--full`.
pub fn fig9_resolutions(full: bool) -> Vec<(i64, i64)> {
    let mut sizes = vec![(56, 56), (112, 112), (224, 224), (448, 448), (896, 896)];
    if full {
        sizes.push((1792, 1792));
        sizes.push((2530, 2530));
    }
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_projection_amortises_regrids() {
        let clock = Clock::new();
        clock.advance(Category::HydroKernel, 2.0);
        let p = StepProfile { per_step: clock.snapshot(), regrid: 5.0, total_cells: 100 };
        assert_eq!(p.projected_runtime(10, 0), 20.0);
        assert_eq!(p.projected_runtime(10, 5), 30.0);
        let comps = p.projected_components(10, 5);
        let regrid = comps.iter().find(|(c, _)| *c == Category::Regrid).unwrap().1;
        assert_eq!(regrid, 10.0);
    }

    #[test]
    fn sod_profile_measures_something() {
        let mut sim =
            sod_sim(Machine::ipa_gpu(), Placement::Device, Clock::new(), 32, 32, 2, 1 << 20, 0, 1);
        sim.initialize(None);
        let p = measure_profile(&mut sim, None, 2);
        assert!(p.per_step.total() > 0.0);
        assert!(p.regrid > 0.0);
        assert!(p.total_cells >= 32 * 32);
    }

    #[test]
    fn diff_scaled_subtracts() {
        let a = Clock::new();
        a.advance(Category::HydroKernel, 1.0);
        let before = a.snapshot();
        a.advance(Category::HydroKernel, 3.0);
        let after = a.snapshot();
        let d = diff_scaled(&before, &after, 0.5);
        assert_eq!(d.get(Category::HydroKernel), 1.5);
    }
}
