//! Acceptance sweep for elastic shrink-and-recover (ISSUE 10): a seeded
//! `RankKill` on the Sod and triple-point decks must complete with
//! `state_field_digest` bitwise-identical to a fault-free run at the
//! surviving rank count — across 2–8 ranks, both netsim engines, and
//! both metadata modes. The rank-count-independent checkpoint manifest
//! is what makes this possible: survivors repartition the last adopted
//! checkpoint by patch identity, not by the original rank layout.
//!
//! One test per (deck, engine, metadata mode) cell; each sweeps the
//! rank counts so the per-cell cost stays bounded while the full
//! cross-product is still exercised.

use rbamr_hydro::{
    HydroConfig, MetadataMode, Placement, RecoveryPolicy, ResilienceError, ResilientSim, SimSpec,
};
use rbamr_netsim::{Cluster, Engine, FaultPlan, FaultRule};
use rbamr_perfmodel::Machine;
use rbamr_problems::{sod_regions, triple_point_regions, TRIPLE_POINT_EXTENT};
use rbamr_telemetry::Recorder;
use std::time::Duration;

const STEPS: usize = 8;
/// Mid-run kill: after the initial checkpoint, before the step-5
/// regrid/checkpoint, so recovery must roll back and replay.
const KILL_STEP: usize = 3;
const VICTIM: usize = 1;

#[derive(Clone, Copy, Debug)]
enum Deck {
    Sod,
    TriplePoint,
}

fn spec(deck: Deck, mode: MetadataMode, rank: usize, nranks: usize) -> SimSpec {
    let (extent, coarse_cells, regions) = match deck {
        Deck::Sod => ((1.0, 1.0), (24, 24), sod_regions()),
        Deck::TriplePoint => (TRIPLE_POINT_EXTENT, (28, 12), triple_point_regions()),
    };
    let mut config = HydroConfig {
        regrid_interval: 5,
        max_patch_size: 8,
        metadata_mode: mode,
        ..HydroConfig::default()
    };
    config.regrid.cluster.min_size = 4;
    SimSpec {
        machine: Machine::ipa_cpu_node(),
        placement: Placement::Host,
        extent,
        coarse_cells,
        max_levels: 2,
        ratio: 2,
        config,
        regions,
        rank,
        nranks,
    }
}

fn policy() -> RecoveryPolicy {
    RecoveryPolicy { checkpoint_interval: 5, backoff_base: 0.05, ..RecoveryPolicy::default() }
}

/// Run `STEPS` resilient steps on `nranks` ranks; per-rank results in
/// ascending original-rank order.
fn run(
    deck: Deck,
    engine: Engine,
    mode: MetadataMode,
    nranks: usize,
    plan: FaultPlan,
    policy: RecoveryPolicy,
) -> Vec<Result<u64, ResilienceError>> {
    let mut out: Vec<_> = Cluster::new(Machine::ipa_cpu_node())
        .with_engine(engine)
        .with_deadlock_timeout(Duration::from_secs(30))
        .with_fault_plan(plan)
        .run(nranks, move |comm| {
            let rank = comm.rank();
            let recorder = Recorder::new(rank, comm.clock().clone());
            let mut sim =
                ResilientSim::new(spec(deck, mode, rank, nranks), policy, recorder, Some(&comm))?;
            sim.run_steps(STEPS, Some(&comm))?;
            let stats = sim.stats();
            assert_eq!(stats.shrinks, if comm.dead_ranks().is_empty() { 0 } else { 1 });
            assert_eq!(stats.rank_losses, comm.dead_ranks().len() as u64);
            Ok(sim.sim().state_field_digest())
        })
        .into_iter()
        .map(|r| (r.rank, r.value))
        .collect();
    out.sort_by_key(|(rank, _)| *rank);
    out.into_iter().map(|(_, v)| v).collect()
}

/// Kill rank `VICTIM` at `KILL_STEP` on `nranks` ranks and require the
/// survivors' digests to match a fault-free run at `nranks - 1`.
fn assert_shrink_matches_survivor_baseline(deck: Deck, engine: Engine, mode: MetadataMode) {
    for nranks in [2usize, 4, 8] {
        let baseline =
            run(deck, engine, mode, nranks - 1, FaultPlan::none(), policy());
        let plan =
            FaultPlan::new(1000 + nranks as u64, vec![FaultRule::rank_kill(VICTIM, KILL_STEP as u64)]);
        let killed = run(deck, engine, mode, nranks, plan, policy());

        assert_eq!(
            killed[VICTIM],
            Err(ResilienceError::Killed { rank: VICTIM, at_step: KILL_STEP }),
            "{deck:?}/{engine:?}/{mode:?}/{nranks}r: victim must report its own death"
        );
        // Survivors in ascending original-rank order take logical
        // ranks 0.. after the shrink; each must match the fault-free
        // run at the surviving rank count bitwise.
        let mut logical = 0;
        for (orig, outcome) in killed.iter().enumerate() {
            if orig == VICTIM {
                continue;
            }
            let digest = outcome.as_ref().unwrap_or_else(|e| {
                panic!("{deck:?}/{engine:?}/{mode:?}/{nranks}r: survivor {orig} failed: {e}")
            });
            let expect = baseline[logical].as_ref().expect("fault-free baseline cannot fail");
            assert_eq!(
                digest, expect,
                "{deck:?}/{engine:?}/{mode:?}/{nranks}r: survivor {orig} (logical {logical}) \
                 diverged from the {}-rank fault-free baseline",
                nranks - 1
            );
            logical += 1;
        }
    }
}

#[test]
fn sod_shrinks_event_driven_replicated() {
    assert_shrink_matches_survivor_baseline(Deck::Sod, Engine::EventDriven, MetadataMode::Replicated);
}

#[test]
fn sod_shrinks_event_driven_partitioned() {
    assert_shrink_matches_survivor_baseline(
        Deck::Sod,
        Engine::EventDriven,
        MetadataMode::Partitioned,
    );
}

#[test]
fn sod_shrinks_oracle_engine_replicated() {
    assert_shrink_matches_survivor_baseline(
        Deck::Sod,
        Engine::ThreadPerRank,
        MetadataMode::Replicated,
    );
}

#[test]
fn sod_shrinks_oracle_engine_partitioned() {
    assert_shrink_matches_survivor_baseline(
        Deck::Sod,
        Engine::ThreadPerRank,
        MetadataMode::Partitioned,
    );
}

#[test]
fn triple_point_shrinks_event_driven_replicated() {
    assert_shrink_matches_survivor_baseline(
        Deck::TriplePoint,
        Engine::EventDriven,
        MetadataMode::Replicated,
    );
}

#[test]
fn triple_point_shrinks_event_driven_partitioned() {
    assert_shrink_matches_survivor_baseline(
        Deck::TriplePoint,
        Engine::EventDriven,
        MetadataMode::Partitioned,
    );
}

#[test]
fn triple_point_shrinks_oracle_engine_replicated() {
    assert_shrink_matches_survivor_baseline(
        Deck::TriplePoint,
        Engine::ThreadPerRank,
        MetadataMode::Replicated,
    );
}

#[test]
fn triple_point_shrinks_oracle_engine_partitioned() {
    assert_shrink_matches_survivor_baseline(
        Deck::TriplePoint,
        Engine::ThreadPerRank,
        MetadataMode::Partitioned,
    );
}

/// A loss that would shrink below `min_ranks` fails fast with the same
/// typed error on every survivor — no hang, no partial recovery.
#[test]
fn loss_below_min_ranks_fails_fast_on_every_survivor() {
    let policy = RecoveryPolicy { min_ranks: 4, ..policy() };
    let plan = FaultPlan::new(77, vec![FaultRule::rank_kill(VICTIM, KILL_STEP as u64)]);
    let results =
        run(Deck::Sod, Engine::EventDriven, MetadataMode::Replicated, 4, plan, policy);
    assert_eq!(
        results[VICTIM],
        Err(ResilienceError::Killed { rank: VICTIM, at_step: KILL_STEP })
    );
    for orig in [0usize, 2, 3] {
        assert_eq!(
            results[orig],
            Err(ResilienceError::InsufficientRanks { survivors: 3, min_ranks: 4 }),
            "survivor {orig} must fail fast with the typed insufficient-ranks error"
        );
    }
}
