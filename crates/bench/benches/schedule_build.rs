//! Criterion benchmark of communication-schedule construction: the
//! spatial-index build (`RefineSchedule::new`) against the retained
//! all-pairs oracle (`new_bruteforce`) on two-level hierarchies of 64
//! to 4096 fine patches, viewed from rank 0 of a 4-rank job.
//!
//! The indexed build is O(N log N) in the patch count; the oracle is
//! O(N²). The gap is the regrid-time metadata overhead the paper's
//! Fig. 11 shows growing with scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rbamr_amr::ops::ConservativeCellRefine;
use rbamr_amr::schedule::FillSpec;
use rbamr_amr::RefineSchedule;
use rbamr_bench::schedule_bench_hierarchy;
use std::sync::Arc;

fn bench_schedule_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule-build");
    group.sample_size(10);
    for &patches in &[64usize, 256, 1024, 4096] {
        let (h, reg, var) = schedule_bench_hierarchy(patches, 0, 4);
        let specs = [FillSpec { var, refine_op: Some(Arc::new(ConservativeCellRefine)) }];
        group.bench_with_input(BenchmarkId::new("indexed", patches), &patches, |b, _| {
            b.iter(|| RefineSchedule::new(&h, &reg, 1, &specs));
        });
        // The oracle is quadratic: skip its largest rung so the suite
        // stays quick.
        if patches <= 1024 {
            group.bench_with_input(BenchmarkId::new("bruteforce", patches), &patches, |b, _| {
                b.iter(|| RefineSchedule::new_bruteforce(&h, &reg, 1, &specs));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_schedule_build);
criterion_main!(benches);
