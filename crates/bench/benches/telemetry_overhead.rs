//! Criterion benchmark of the telemetry recorder's overhead on the hot
//! path: a full Sod hydro step with the recorder disabled (the default)
//! versus attached. The disabled case must match the un-instrumented
//! baseline — every call site guards on `Recorder::is_enabled`, so a
//! disabled recorder costs one relaxed atomic load per guard.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rbamr_bench::sod_sim;
use rbamr_hydro::Placement;
use rbamr_perfmodel::{Clock, Machine};
use rbamr_telemetry::Recorder;

fn bench_step_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry");
    group.sample_size(10);
    for &n in &[32i64, 64] {
        let mut sim =
            sod_sim(Machine::ipa_gpu(), Placement::Device, Clock::new(), n, n, 2, 1 << 20, 0, 1);
        sim.initialize(None);
        sim.step(None); // warm-up: dt ramp + lazy allocations
        group.bench_with_input(BenchmarkId::new("step-disabled", n), &n, |b, _| {
            b.iter(|| sim.step(None));
        });

        let clock = Clock::new();
        let mut traced =
            sod_sim(Machine::ipa_gpu(), Placement::Device, clock.clone(), n, n, 2, 1 << 20, 0, 1);
        traced.set_recorder(Recorder::new(0, clock));
        traced.initialize(None);
        traced.step(None);
        group.bench_with_input(BenchmarkId::new("step-recording", n), &n, |b, _| {
            b.iter(|| traced.step(None));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_step_overhead);
criterion_main!(benches);
