//! Ablation micro-benchmarks for the design choices DESIGN.md calls
//! out: tag-bitmap compression vs raw tag transfer, and patch
//! granularity (the kernel-launch overhead trade-off). Wall-clock
//! numbers; the virtual-time ablations (resident vs copy-back, PCIe
//! volumes) are printed by the `ablations` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rbamr_device::Device;
use rbamr_geometry::{Centring, GBox, IntVector};
use rbamr_gpu_amr::{compress_tags, DeviceData};
use rbamr_hydro::{HydroConfig, HydroSim, Placement};
use rbamr_perfmodel::{Category, Clock, Machine};
use rbamr_problems::sod_regions;

fn tag_field(device: &Device, n: i64) -> DeviceData<i32> {
    let cell_box = GBox::from_coords(0, 0, n, n);
    let mut d = DeviceData::<i32>::new(device, cell_box, IntVector::ZERO, Centring::Cell);
    let mut vals = vec![0i32; (n * n) as usize];
    for (i, v) in vals.iter_mut().enumerate() {
        if i % 37 == 0 {
            *v = 1;
        }
    }
    d.upload_all(&vals, Category::Regrid);
    d
}

fn bench_tag_compression(c: &mut Criterion) {
    let mut group = c.benchmark_group("tag-transfer");
    group.sample_size(10);
    for &n in &[128i64, 512] {
        let device = Device::k20x();
        let tags = tag_field(&device, n);
        group.bench_with_input(BenchmarkId::new("compressed-bitmap", n), &n, |b, _| {
            b.iter(|| compress_tags(&tags, Category::Regrid));
        });
        group.bench_with_input(BenchmarkId::new("raw-int-download", n), &n, |b, _| {
            b.iter(|| tags.download_all(Category::Regrid));
        });
    }
    group.finish();
}

fn bench_patch_granularity(c: &mut Criterion) {
    let mut group = c.benchmark_group("patch-granularity");
    group.sample_size(10);
    for &max_patch in &[16i64, 64] {
        let mut config =
            HydroConfig { regrid_interval: 0, max_patch_size: max_patch, ..HydroConfig::default() };
        config.regrid.max_patch_size = max_patch;
        let mut sim = HydroSim::new(
            Machine::ipa_gpu(),
            Placement::Device,
            Clock::new(),
            (1.0, 1.0),
            (64, 64),
            2,
            2,
            config,
            sod_regions(),
            0,
            1,
        );
        sim.initialize(None);
        group.bench_with_input(BenchmarkId::new("device-step", max_patch), &max_patch, |b, _| {
            b.iter(|| sim.step(None));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tag_compression, bench_patch_granularity);
criterion_main!(benches);
