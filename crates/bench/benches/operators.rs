//! Criterion micro-benchmarks of the paper's data-parallel operators —
//! wall-clock time of the *actual computation* (host reference vs the
//! simulated-device execution path, which adds the launch/token
//! machinery on top of the same kernels).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rbamr_amr::ops as host_ops;
use rbamr_amr::ops::{CoarsenOperator, RefineOperator};
use rbamr_amr::patchdata::PatchData;
use rbamr_amr::HostData;
use rbamr_device::Device;
use rbamr_geometry::{BoxList, Centring, GBox, IntVector};
use rbamr_gpu_amr::{ops as dev_ops, DeviceData};
use rbamr_perfmodel::Category;

const R2: IntVector = IntVector::uniform(2);

fn host_pair(n: i64, centring: Centring) -> (HostData<f64>, HostData<f64>) {
    let coarse = GBox::from_coords(0, 0, n, n);
    let fine = coarse.refine(R2);
    let mut src = HostData::new(coarse, IntVector::ONE, centring);
    for (i, v) in src.as_mut_slice().iter_mut().enumerate() {
        *v = (i as f64 * 0.7).sin();
    }
    let dst = HostData::new(fine, IntVector::uniform(2), centring);
    (src, dst)
}

fn device_pair(device: &Device, n: i64, centring: Centring) -> (DeviceData<f64>, DeviceData<f64>) {
    let coarse = GBox::from_coords(0, 0, n, n);
    let fine = coarse.refine(R2);
    let mut src = DeviceData::new(device, coarse, IntVector::ONE, centring);
    let image: Vec<f64> = (0..src.buffer().len()).map(|i| (i as f64 * 0.7).sin()).collect();
    src.upload_all(&image, Category::Other);
    let dst = DeviceData::new(device, fine, IntVector::uniform(2), centring);
    (src, dst)
}

fn bench_refine(c: &mut Criterion) {
    let mut group = c.benchmark_group("refine");
    group.sample_size(10);
    for &n in &[64i64, 256] {
        let fine_box = GBox::from_coords(0, 0, n, n).refine(R2);
        let fill = BoxList::from_box(fine_box);

        let (hsrc, mut hdst) = host_pair(n, Centring::Node);
        group.bench_with_input(BenchmarkId::new("node-linear-host", n), &n, |b, _| {
            b.iter(|| host_ops::LinearNodeRefine.refine(&mut hdst, &hsrc, &fill, R2));
        });

        let device = Device::k20x();
        let (dsrc, mut ddst) = device_pair(&device, n, Centring::Node);
        group.bench_with_input(BenchmarkId::new("node-linear-device", n), &n, |b, _| {
            b.iter(|| dev_ops::DeviceLinearNodeRefine.refine(&mut ddst, &dsrc, &fill, R2));
        });

        let (hsrc, mut hdst) = host_pair(n, Centring::Cell);
        group.bench_with_input(BenchmarkId::new("cell-conservative-host", n), &n, |b, _| {
            b.iter(|| host_ops::ConservativeCellRefine.refine(&mut hdst, &hsrc, &fill, R2));
        });

        let (dsrc, mut ddst) = device_pair(&device, n, Centring::Cell);
        group.bench_with_input(BenchmarkId::new("cell-conservative-device", n), &n, |b, _| {
            b.iter(|| dev_ops::DeviceConservativeCellRefine.refine(&mut ddst, &dsrc, &fill, R2));
        });
    }
    group.finish();
}

fn bench_coarsen(c: &mut Criterion) {
    let mut group = c.benchmark_group("coarsen");
    group.sample_size(10);
    for &n in &[64i64, 256] {
        let coarse_box = GBox::from_coords(0, 0, n, n);
        let fill = BoxList::from_box(coarse_box);

        let mut fine = HostData::<f64>::cell(coarse_box.refine(R2), IntVector::ZERO);
        for (i, v) in fine.as_mut_slice().iter_mut().enumerate() {
            *v = (i % 97) as f64;
        }
        let mut rho = HostData::<f64>::cell(coarse_box.refine(R2), IntVector::ZERO);
        rho.fill(1.3);
        let mut coarse = HostData::<f64>::cell(coarse_box, IntVector::ZERO);

        group.bench_with_input(BenchmarkId::new("volume-weighted-host", n), &n, |b, _| {
            b.iter(|| host_ops::VolumeWeightedCoarsen.coarsen(&mut coarse, &fine, &[], &fill, R2));
        });
        group.bench_with_input(BenchmarkId::new("mass-weighted-host", n), &n, |b, _| {
            b.iter(|| {
                host_ops::MassWeightedCoarsen.coarsen(&mut coarse, &fine, &[&rho], &fill, R2)
            });
        });

        let device = Device::k20x();
        let mut dfine =
            DeviceData::<f64>::new(&device, coarse_box.refine(R2), IntVector::ZERO, Centring::Cell);
        let image: Vec<f64> = (0..dfine.buffer().len()).map(|i| (i % 97) as f64).collect();
        dfine.upload_all(&image, Category::Other);
        let mut drho =
            DeviceData::<f64>::new(&device, coarse_box.refine(R2), IntVector::ZERO, Centring::Cell);
        let ones = vec![1.3; drho.buffer().len()];
        drho.upload_all(&ones, Category::Other);
        let mut dcoarse =
            DeviceData::<f64>::new(&device, coarse_box, IntVector::ZERO, Centring::Cell);

        group.bench_with_input(BenchmarkId::new("volume-weighted-device", n), &n, |b, _| {
            b.iter(|| {
                dev_ops::DeviceVolumeWeightedCoarsen.coarsen(&mut dcoarse, &dfine, &[], &fill, R2)
            });
        });
        group.bench_with_input(BenchmarkId::new("mass-weighted-device", n), &n, |b, _| {
            b.iter(|| {
                dev_ops::DeviceMassWeightedCoarsen.coarsen(
                    &mut dcoarse,
                    &dfine,
                    &[&drho],
                    &fill,
                    R2,
                )
            });
        });
    }
    group.finish();
}

fn bench_pack(c: &mut Criterion) {
    let mut group = c.benchmark_group("pack-unpack");
    group.sample_size(10);
    for &n in &[64i64, 512] {
        let cell_box = GBox::from_coords(0, 0, n, n);
        let ghosts = IntVector::uniform(2);
        // A two-deep ghost strip along one face: the halo payload shape.
        let ov = rbamr_geometry::ghost_overlaps(
            GBox::from_coords(n, 0, 2 * n, n),
            ghosts,
            cell_box,
            Centring::Cell,
            IntVector::ZERO,
        );

        let mut h = HostData::<f64>::cell(cell_box, ghosts);
        for (i, v) in h.as_mut_slice().iter_mut().enumerate() {
            *v = i as f64;
        }
        group.bench_with_input(BenchmarkId::new("pack-host", n), &n, |b, _| {
            b.iter(|| h.pack(&ov));
        });

        let device = Device::k20x();
        let mut d = DeviceData::<f64>::new(&device, cell_box, ghosts, Centring::Cell);
        let image: Vec<f64> = (0..d.buffer().len()).map(|i| i as f64).collect();
        d.upload_all(&image, Category::Other);
        group.bench_with_input(BenchmarkId::new("pack-device", n), &n, |b, _| {
            b.iter(|| d.pack(&ov));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_refine, bench_coarsen, bench_pack);
criterion_main!(benches);
