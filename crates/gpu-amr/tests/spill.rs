//! Tests of the patch-spilling extension — the paper's Section VI
//! future work: "allowing patches to be 'spilled' into CPU memory and
//! then be transferred back to the device when necessary. Using both
//! CPU and GPU resources will allow larger problems to be solved."

use rbamr_device::Device;
use rbamr_geometry::{Centring, GBox, IntVector};
use rbamr_gpu_amr::DeviceData;
use rbamr_perfmodel::Category;

fn filled(device: &Device, n: i64) -> DeviceData<f64> {
    let mut d = DeviceData::<f64>::new(
        device,
        GBox::from_coords(0, 0, n, n),
        IntVector::uniform(2),
        Centring::Cell,
    );
    let image: Vec<f64> = (0..d.buffer().len()).map(|i| (i as f64).sqrt()).collect();
    d.upload_all(&image, Category::Other);
    d
}

#[test]
fn spill_releases_device_memory_and_preserves_values() {
    let device = Device::k20x();
    let mut d = filled(&device, 64);
    let bytes = (64 + 4) * (64 + 4) * 8;
    assert_eq!(device.stats().allocated_bytes, bytes);
    let reference = d.download_all(Category::Other);

    d.spill(Category::Other);
    assert!(d.is_spilled());
    assert_eq!(device.stats().allocated_bytes, 0, "device bytes not released");

    d.unspill(Category::Other);
    assert!(!d.is_spilled());
    assert_eq!(device.stats().allocated_bytes, bytes);
    assert_eq!(d.download_all(Category::Other), reference, "values corrupted by spill cycle");
}

#[test]
fn spill_and_unspill_are_idempotent() {
    let device = Device::k20x();
    let mut d = filled(&device, 16);
    device.reset_transfer_stats();
    d.spill(Category::Other);
    d.spill(Category::Other); // no second transfer
    assert_eq!(device.stats().d2h_transfers, 1);
    d.unspill(Category::Other);
    d.unspill(Category::Other);
    assert_eq!(device.stats().h2d_transfers, 1);
}

#[test]
#[should_panic(expected = "spilled patch data")]
fn kernel_access_to_spilled_data_faults() {
    let device = Device::k20x();
    let mut d = filled(&device, 16);
    d.spill(Category::Other);
    let _ = d.buffer(); // dangling device pointer: must fault loudly
}

#[test]
fn spilling_lets_a_device_oversubscribe() {
    // Two allocations that together exceed a tiny device: spilling the
    // first makes room for the second — the paper's "larger problems"
    // scenario in miniature.
    let mut machine = rbamr_perfmodel::Machine::ipa_gpu();
    machine.device.as_mut().unwrap().memory_bytes = 100 * 100 * 8 * 3 / 2;
    let device = Device::new(machine, rbamr_perfmodel::Clock::new());

    let mut a = DeviceData::<f64>::new(
        &device,
        GBox::from_coords(0, 0, 100, 100),
        IntVector::ZERO,
        Centring::Cell,
    );
    // A second resident allocation would exceed capacity...
    assert!(device.try_alloc::<f64>(100 * 100).is_err());
    // ...but spilling `a` frees the room.
    a.spill(Category::Other);
    let b = DeviceData::<f64>::new(
        &device,
        GBox::from_coords(0, 0, 100, 100),
        IntVector::ZERO,
        Centring::Cell,
    );
    drop(b);
    a.unspill(Category::Other);
    assert!(!a.is_spilled());
}

#[test]
fn spill_cycle_counts_exact_pcie_traffic() {
    let device = Device::k20x();
    let mut d = filled(&device, 32);
    let bytes = d.buffer().size_bytes();
    device.reset_transfer_stats();
    d.spill(Category::Other);
    d.unspill(Category::Other);
    let s = device.stats();
    assert_eq!(s.d2h_bytes, bytes);
    assert_eq!(s.h2d_bytes, bytes);
}
