//! Property tests: every device operator equals its host reference
//! bit-for-bit on random data, boxes, ratios and partial fill regions —
//! the correctness contract of the paper's "first data-parallel
//! implementations" claim, explored beyond the fixed cases.

use proptest::prelude::*;
use rbamr_amr::ops as host_ops;
use rbamr_amr::ops::{CoarsenOperator, RefineOperator};
use rbamr_amr::patchdata::PatchData;
use rbamr_amr::HostData;
use rbamr_device::Device;
use rbamr_geometry::{BoxList, Centring, GBox, IntVector};
use rbamr_gpu_amr::{ops as dev_ops, DeviceData};
use rbamr_perfmodel::Category;

fn arb_ratio() -> impl Strategy<Value = i64> {
    prop::sample::select(vec![2i64, 3, 4])
}

/// Random sub-box of `b` (non-empty).
fn sub_box(b: GBox, fx: f64, fy: f64, fw: f64, fh: f64) -> GBox {
    let w = b.size().x;
    let h = b.size().y;
    let x0 = b.lo.x + ((w - 1) as f64 * fx) as i64;
    let y0 = b.lo.y + ((h - 1) as f64 * fy) as i64;
    let x1 = x0 + 1 + ((b.hi.x - x0 - 1) as f64 * fw) as i64;
    let y1 = y0 + 1 + ((b.hi.y - y0 - 1) as f64 * fh) as i64;
    GBox::from_coords(x0, y0, x1, y1)
}

fn pair(
    device: &Device,
    cell_box: GBox,
    ghosts: i64,
    centring: Centring,
    values: &[f64],
) -> (HostData<f64>, DeviceData<f64>) {
    let g = IntVector::uniform(ghosts);
    let mut h = HostData::<f64>::new(cell_box, g, centring);
    let n = h.as_slice().len();
    for (i, v) in h.as_mut_slice().iter_mut().enumerate() {
        *v = values[i % values.len()] + i as f64 * 1e-3;
    }
    let mut d = DeviceData::<f64>::new(device, cell_box, g, centring);
    let image: Vec<f64> = h.as_slice().to_vec();
    d.upload_all(&image, Category::Other);
    let _ = n;
    (h, d)
}

fn assert_equal(h: &HostData<f64>, d: &DeviceData<f64>, what: &str) {
    let dv = d.download_all(Category::Other);
    for (i, (a, b)) in h.as_slice().iter().zip(&dv).enumerate() {
        assert_eq!(a, b, "{what}: divergence at linear index {i}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// All four refine operators agree on random data and partial fill
    /// regions for every ratio and centring they serve.
    #[test]
    fn refine_ops_agree(
        vals in prop::collection::vec(-5.0f64..5.0, 8),
        ratio in arb_ratio(),
        fx in 0.0f64..1.0, fy in 0.0f64..1.0, fw in 0.0f64..1.0, fh in 0.0f64..1.0,
        which in 0usize..4,
    ) {
        let device = Device::k20x();
        let r = IntVector::uniform(ratio);
        let coarse_box = GBox::from_coords(0, 0, 7, 9);
        let fine_box = coarse_box.refine(r);
        let (host_op, dev_op, centring): (Box<dyn RefineOperator>, Box<dyn RefineOperator>, Centring) =
            match which {
                0 => (Box::new(host_ops::LinearNodeRefine), Box::new(dev_ops::DeviceLinearNodeRefine), Centring::Node),
                1 => (Box::new(host_ops::ConservativeCellRefine), Box::new(dev_ops::DeviceConservativeCellRefine), Centring::Cell),
                2 => (Box::new(host_ops::ConstantRefine), Box::new(dev_ops::DeviceConstantRefine), Centring::Cell),
                _ => (Box::new(host_ops::LinearSideRefine { axis: 1 }), Box::new(dev_ops::DeviceLinearSideRefine { axis: 1 }), Centring::Side(1)),
            };
        let (hsrc, dsrc) = pair(&device, coarse_box, 1, centring, &vals);
        let (mut hdst, mut ddst) = pair(&device, fine_box, 2, centring, &vals);
        let fill = BoxList::from_box(sub_box(centring.data_box(fine_box), fx, fy, fw, fh));
        host_op.refine(&mut hdst, &hsrc, &fill, r);
        dev_op.refine(&mut ddst, &dsrc, &fill, r);
        assert_equal(&hdst, &ddst, &format!("refine op {which} ratio {ratio}"));
    }

    /// The three coarsen operators agree on random data and partial
    /// coarse regions.
    #[test]
    fn coarsen_ops_agree(
        vals in prop::collection::vec(0.1f64..5.0, 8),
        ratio in arb_ratio(),
        fx in 0.0f64..1.0, fy in 0.0f64..1.0, fw in 0.0f64..1.0, fh in 0.0f64..1.0,
        which in 0usize..3,
    ) {
        let device = Device::k20x();
        let r = IntVector::uniform(ratio);
        let coarse_box = GBox::from_coords(0, 0, 6, 5);
        let fine_box = coarse_box.refine(r);
        let (host_op, dev_op, centring, naux): (Box<dyn CoarsenOperator>, Box<dyn CoarsenOperator>, Centring, usize) =
            match which {
                0 => (Box::new(host_ops::VolumeWeightedCoarsen), Box::new(dev_ops::DeviceVolumeWeightedCoarsen), Centring::Cell, 0),
                1 => (Box::new(host_ops::MassWeightedCoarsen), Box::new(dev_ops::DeviceMassWeightedCoarsen), Centring::Cell, 1),
                _ => (Box::new(host_ops::NodeInjectionCoarsen), Box::new(dev_ops::DeviceNodeInjectionCoarsen), Centring::Node, 0),
            };
        let (hsrc, dsrc) = pair(&device, fine_box, 0, centring, &vals);
        let (hrho, drho) = pair(&device, fine_box, 0, centring, &vals);
        let (mut hdst, mut ddst) = pair(&device, coarse_box, 0, centring, &vals);
        let fill = BoxList::from_box(sub_box(centring.data_box(coarse_box), fx, fy, fw, fh));
        let haux: Vec<&dyn PatchData> = if naux == 1 { vec![&hrho] } else { vec![] };
        let daux: Vec<&dyn PatchData> = if naux == 1 { vec![&drho] } else { vec![] };
        host_op.coarsen(&mut hdst, &hsrc, &haux, &fill, r);
        dev_op.coarsen(&mut ddst, &dsrc, &daux, &fill, r);
        assert_equal(&hdst, &ddst, &format!("coarsen op {which} ratio {ratio}"));
    }

    /// Pack on one placement, unpack on the other: device and host data
    /// interoperate through the same wire format in both directions.
    #[test]
    fn cross_placement_streams(
        vals in prop::collection::vec(-9.0f64..9.0, 8),
        g in 1i64..3,
        device_packs in any::<bool>(),
    ) {
        let device = Device::k20x();
        let src_box = GBox::from_coords(4, 0, 10, 6);
        let dst_box = GBox::from_coords(0, 0, 4, 6);
        let ov = rbamr_geometry::ghost_overlaps(
            dst_box, IntVector::uniform(g), src_box, Centring::Cell, IntVector::ZERO,
        );
        prop_assume!(!ov.is_empty());
        let (hsrc, dsrc) = pair(&device, src_box, g, Centring::Cell, &vals);
        let (mut hdst, mut ddst) = pair(&device, dst_box, g, Centring::Cell, &vals);
        if device_packs {
            let stream = dsrc.pack(&ov);
            hdst.unpack(&ov, &stream);
            // Reference: pure-host path.
            let href = hsrc.pack(&ov);
            prop_assert_eq!(&stream[..], &href[..]);
        } else {
            let stream = hsrc.pack(&ov);
            ddst.unpack(&ov, &stream);
            let mut href = pair(&device, dst_box, g, Centring::Cell, &vals).0;
            href.unpack(&ov, &stream);
            assert_equal(&href, &ddst, "host->device unpack");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Device tag compression equals the host bitmap for arbitrary tag
    /// patterns and box positions, and only the compressed bytes cross
    /// PCIe.
    #[test]
    fn tag_compression_matches_host(
        seeds in prop::collection::vec(0usize..400, 0..40),
        off_x in -5i64..5,
        off_y in -5i64..5,
    ) {
        use rbamr_amr::TagBitmap;
        use rbamr_gpu_amr::compress_tags;
        let cell_box = GBox::from_coords(off_x, off_y, off_x + 20, off_y + 20);
        let n = cell_box.num_cells() as usize;
        let mut tags = vec![0i32; n];
        for s in &seeds {
            tags[s % n] = 1;
        }
        let host_bm = TagBitmap::compress(cell_box, &tags);

        let device = Device::k20x();
        let mut d = DeviceData::<i32>::new(&device, cell_box, IntVector::ZERO, Centring::Cell);
        d.upload_all(&tags, Category::Regrid);
        device.reset_transfer_stats();
        let dev_bm = compress_tags(&d, Category::Regrid);

        prop_assert_eq!(&dev_bm, &host_bm);
        let stats = device.stats();
        if host_bm.any() {
            // 4-byte flag + one bit per cell.
            prop_assert_eq!(stats.d2h_bytes, 4 + n.div_ceil(8) as u64);
        } else {
            prop_assert_eq!(stats.d2h_bytes, 4);
        }
    }
}
