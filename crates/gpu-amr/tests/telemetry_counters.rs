//! Telemetry counter integration tests: the `pack.bytes` /
//! `unpack.bytes` counters recorded by the device pack/unpack path must
//! equal the analytically known halo byte counts of a small two-level
//! hierarchy configuration.

use rbamr_amr::patchdata::PatchData;
use rbamr_device::Device;
use rbamr_geometry::{copy_overlap, ghost_overlaps, Centring, GBox, IntVector};
use rbamr_gpu_amr::DeviceData;
use rbamr_perfmodel::{Category, Clock};
use rbamr_telemetry::Recorder;

fn b(x0: i64, y0: i64, x1: i64, y1: i64) -> GBox {
    GBox::from_coords(x0, y0, x1, y1)
}

#[test]
fn pack_unpack_counters_match_analytic_halo_bytes() {
    // The fine level of a two-level hierarchy: two adjacent 8x8 fine
    // patches with 2 ghost cells, plus a coarse-to-fine scratch region
    // — the exact transfers a refine-schedule halo fill performs.
    let clock = Clock::new();
    let device = Device::new(rbamr_perfmodel::Machine::ipa_gpu(), clock.clone());
    let rec = Recorder::new(0, clock);
    device.set_recorder(rec.clone());

    let ghosts = IntVector::uniform(2);
    let left = {
        let mut d = DeviceData::<f64>::new(&device, b(0, 0, 8, 8), ghosts, Centring::Cell);
        let vals: Vec<f64> = d.data_box().iter().map(|p| (p.x * 10 + p.y) as f64).collect();
        d.upload_all(&vals, Category::Other);
        d
    };
    let mut right = DeviceData::<f64>::new(&device, b(8, 0, 16, 8), ghosts, Centring::Cell);

    // Sibling halo: the right patch's ghost region overlapping the left
    // patch is the 2-column x 8-row strip at x in [6, 8) — 16 cells.
    let ov = ghost_overlaps(b(8, 0, 16, 8), ghosts, b(0, 0, 8, 8), Centring::Cell, IntVector::ZERO);
    let sibling_cells = 2 * 8;
    assert_eq!(ov.num_values(), sibling_cells);
    let stream = left.pack(&ov);
    right.unpack(&ov, &stream);

    let sibling_bytes = (sibling_cells * 8) as u64;
    assert_eq!(stream.len() as u64, sibling_bytes);
    assert_eq!(rec.counter("pack.bytes"), sibling_bytes);
    assert_eq!(rec.counter("unpack.bytes"), sibling_bytes);

    // Coarse-to-fine: a refine fill stages the coarse source region
    // covering the fine patch (plus stencil), here the full 8x8 coarse
    // scratch box — 64 more cells through the same pack/unpack path.
    let coarse = {
        let mut d = DeviceData::<f64>::new(&device, b(0, 0, 8, 8), IntVector::ZERO, Centring::Cell);
        let vals: Vec<f64> = d.data_box().iter().map(|p| (p.x + p.y) as f64).collect();
        d.upload_all(&vals, Category::Regrid);
        d
    };
    let mut scratch =
        DeviceData::<f64>::new(&device, b(0, 0, 8, 8), IntVector::ZERO, Centring::Cell);
    let cov = copy_overlap(b(0, 0, 8, 8), b(0, 0, 8, 8), Centring::Cell);
    let coarse_cells = 8 * 8;
    assert_eq!(cov.num_values(), coarse_cells);
    let cstream = coarse.pack(&cov);
    scratch.unpack(&cov, &cstream);

    let total_bytes = sibling_bytes + (coarse_cells * 8) as u64;
    assert_eq!(rec.counter("pack.bytes"), total_bytes);
    assert_eq!(rec.counter("unpack.bytes"), total_bytes);

    // The PCIe byte counters agree: a pack is one D2H transfer of the
    // packed bytes, an unpack one H2D, beyond the initial uploads.
    assert_eq!(rec.counter("device.d2h_bytes"), total_bytes);
}

#[test]
fn disabled_recorder_records_nothing() {
    let device = Device::k20x();
    let src = {
        let mut d = DeviceData::<f64>::new(&device, b(0, 0, 4, 4), IntVector::ONE, Centring::Cell);
        let ones = vec![1.0; d.data_box().num_cells() as usize];
        d.upload_all(&ones, Category::Other);
        d
    };
    let ov = copy_overlap(b(0, 0, 4, 4), b(0, 0, 4, 4), Centring::Cell);
    let _ = src.pack(&ov);
    let rec = device.recorder();
    assert!(!rec.is_enabled());
    assert_eq!(rec.counter("pack.bytes"), 0);
    assert!(rec.spans().is_empty());
}
