//! Data-parallel region copy / pack / unpack kernels (paper Figure 4).
//!
//! Each kernel launches one logical thread per element of the region
//! being moved ("we launch one CUDA thread per element to be packed into
//! the buffer, ensuring the maximum amount of parallelism is exposed").
//! In the simulated device, thread-per-element becomes
//! row-parallel iteration over disjoint `&mut` row slices — the same
//! independence structure, expressed safely.

use rayon::prelude::*;
use rbamr_geometry::{GBox, IntVector};

/// Number of elements a 2D launch covers (`fill` box).
pub fn region_threads(fill: GBox) -> usize {
    fill.num_cells().max(0) as usize
}

/// Copy `fill` (a box in the destination's index space) from `src` into
/// `dst`. `src_index = dst_index - shift`. `dst_dbox`/`src_dbox`
/// describe the row-major layouts of the two arrays.
///
/// # Panics
/// Panics (in debug) if the fill region escapes either array.
pub fn copy_region<T: Copy + Send + Sync>(
    dst: &mut [T],
    dst_dbox: GBox,
    src: &[T],
    src_dbox: GBox,
    fill: GBox,
    shift: IntVector,
) {
    if fill.is_empty() {
        return;
    }
    debug_assert!(dst_dbox.contains_box(fill), "copy_region: fill escapes dst");
    debug_assert!(src_dbox.contains_box(fill.shift(-shift)), "copy_region: fill escapes src");
    let dst_w = dst_dbox.size().x as usize;
    let src_w = src_dbox.size().x as usize;
    // Rows of dst intersecting the fill box are disjoint chunks.
    let first_row = (fill.lo.y - dst_dbox.lo.y) as usize;
    let n_rows = fill.size().y as usize;
    let x0 = (fill.lo.x - dst_dbox.lo.x) as usize;
    let w = fill.size().x as usize;
    dst.par_chunks_mut(dst_w).skip(first_row).take(n_rows).enumerate().for_each(|(r, row)| {
        let sy = fill.lo.y + r as i64 - shift.y;
        let sx0 = (fill.lo.x - shift.x - src_dbox.lo.x) as usize;
        let s_off = (sy - src_dbox.lo.y) as usize * src_w + sx0;
        row[x0..x0 + w].copy_from_slice(&src[s_off..s_off + w]);
    });
}

/// Pack `fill` (in the source's index space after un-shifting) from
/// `src` into the contiguous `out` buffer, row-major. `out.len()` must
/// equal the region size.
pub fn pack_region<T: Copy + Send + Sync>(
    out: &mut [T],
    src: &[T],
    src_dbox: GBox,
    fill: GBox,
    shift: IntVector,
) {
    if fill.is_empty() {
        return;
    }
    let src_fill = fill.shift(-shift);
    debug_assert!(src_dbox.contains_box(src_fill), "pack_region: fill escapes src");
    assert_eq!(out.len(), region_threads(fill), "pack_region: buffer size mismatch");
    let src_w = src_dbox.size().x as usize;
    let w = fill.size().x as usize;
    out.par_chunks_mut(w).enumerate().for_each(|(r, row)| {
        let sy = src_fill.lo.y + r as i64;
        let s_off =
            (sy - src_dbox.lo.y) as usize * src_w + (src_fill.lo.x - src_dbox.lo.x) as usize;
        row.copy_from_slice(&src[s_off..s_off + w]);
    });
}

/// Unpack a contiguous row-major buffer into `fill` of `dst`.
pub fn unpack_region<T: Copy + Send + Sync>(
    dst: &mut [T],
    dst_dbox: GBox,
    input: &[T],
    fill: GBox,
) {
    if fill.is_empty() {
        return;
    }
    debug_assert!(dst_dbox.contains_box(fill), "unpack_region: fill escapes dst");
    assert_eq!(input.len(), region_threads(fill), "unpack_region: buffer size mismatch");
    let dst_w = dst_dbox.size().x as usize;
    let first_row = (fill.lo.y - dst_dbox.lo.y) as usize;
    let n_rows = fill.size().y as usize;
    let x0 = (fill.lo.x - dst_dbox.lo.x) as usize;
    let w = fill.size().x as usize;
    dst.par_chunks_mut(dst_w).skip(first_row).take(n_rows).enumerate().for_each(|(r, row)| {
        row[x0..x0 + w].copy_from_slice(&input[r * w..(r + 1) * w]);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(x0: i64, y0: i64, x1: i64, y1: i64) -> GBox {
        GBox::from_coords(x0, y0, x1, y1)
    }

    fn field(dbox: GBox) -> Vec<f64> {
        dbox.iter().map(|p| (p.x * 1000 + p.y) as f64).collect()
    }

    #[test]
    fn copy_region_moves_exactly_the_fill() {
        let dst_dbox = b(0, 0, 6, 6);
        let src_dbox = b(4, 0, 10, 6);
        let src = field(src_dbox);
        let mut dst = vec![0.0; 36];
        let fill = b(4, 1, 6, 4);
        copy_region(&mut dst, dst_dbox, &src, src_dbox, fill, IntVector::ZERO);
        for p in dst_dbox.iter() {
            let got = dst[dst_dbox.offset_of(p)];
            if fill.contains(p) {
                assert_eq!(got, (p.x * 1000 + p.y) as f64, "at {p}");
            } else {
                assert_eq!(got, 0.0, "at {p}");
            }
        }
    }

    #[test]
    fn copy_region_applies_shift() {
        let dbox = b(0, 0, 4, 4);
        let src = field(dbox);
        let mut dst = vec![0.0; 16];
        // Destination index p reads source p - (1, 0).
        let fill = b(1, 0, 4, 4);
        copy_region(&mut dst, dbox, &src, dbox, fill, IntVector::new(1, 0));
        assert_eq!(dst[dbox.offset_of(IntVector::new(1, 2))], 2.0); // src (0,2)
    }

    #[test]
    fn pack_then_unpack_is_identity() {
        let src_dbox = b(-2, -2, 6, 6);
        let src = field(src_dbox);
        let fill = b(0, 0, 4, 3);
        let mut buf = vec![0.0; region_threads(fill)];
        pack_region(&mut buf, &src, src_dbox, fill, IntVector::ZERO);
        let dst_dbox = b(-1, -1, 5, 5);
        let mut dst = vec![0.0; 36];
        unpack_region(&mut dst, dst_dbox, &buf, fill);
        for p in fill.iter() {
            assert_eq!(dst[dst_dbox.offset_of(p)], (p.x * 1000 + p.y) as f64);
        }
    }

    #[test]
    fn pack_order_is_row_major() {
        let dbox = b(0, 0, 3, 3);
        let src: Vec<f64> = (0..9).map(f64::from).collect();
        let fill = b(1, 0, 3, 2);
        let mut buf = vec![0.0; 4];
        pack_region(&mut buf, &src, dbox, fill, IntVector::ZERO);
        assert_eq!(buf, vec![1.0, 2.0, 4.0, 5.0]);
    }

    #[test]
    fn empty_fill_is_a_noop() {
        let mut dst = vec![1.0; 4];
        copy_region(
            &mut dst,
            b(0, 0, 2, 2),
            &[0.0; 4],
            b(0, 0, 2, 2),
            GBox::EMPTY,
            IntVector::ZERO,
        );
        assert_eq!(dst, vec![1.0; 4]);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn unpack_checks_buffer_size() {
        let mut dst = vec![0.0; 4];
        unpack_region(&mut dst, b(0, 0, 2, 2), &[0.0; 3], b(0, 0, 2, 2));
    }
}
