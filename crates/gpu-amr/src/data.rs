//! Device-resident patch data — the `CudaArrayData`/`CudaCellData`/
//! `CudaNodeData`/`CudaSideData` family (paper Figure 3).

use crate::pack::{copy_region, pack_region, region_threads, unpack_region};
use bytes::Bytes;
use rbamr_amr::patchdata::{validate_overlap, Element, PatchData, PatchDataError};
use rbamr_amr::variable::{DataFactory, Variable};
use rbamr_device::memory::DeviceCopy;
use rbamr_device::{Device, DeviceBuffer, Stream};
use rbamr_geometry::{BoxOverlap, Centring, GBox, IntVector};
use rbamr_perfmodel::{Category, KernelShape};
use std::any::Any;

/// Elements that can live in device patch data: the intersection of the
/// framework's [`Element`] types and the device's [`DeviceCopy`] types
/// (`f64` quantities and `i32` tags).
pub trait DeviceElement: Element + DeviceCopy {}
impl DeviceElement for f64 {}
impl DeviceElement for i32 {}

/// One simulation quantity on one patch, stored in (simulated) device
/// memory at all times.
///
/// This is the paper's `Cuda*Data`: a box-shaped, centring-adjusted
/// array whose backing store is a contiguous device allocation
/// (`CudaArrayData`'s `double* d_cuda_buffer`). The [`PatchData`]
/// methods are implemented with data-parallel kernels:
///
/// * `copy_from` — device-to-device region copy (one thread per
///   element).
/// * `pack` — device pack kernel into a contiguous staging buffer,
///   followed by one D2H PCIe transfer of exactly the packed bytes
///   (Figure 4); SAMRAI (the `amr` crate here) then handles MPI.
/// * `unpack` — one H2D transfer of the packed buffer, then a
///   data-parallel unpack kernel.
///
/// Host code cannot touch the values: reads outside kernels are a
/// compile error (no [`Kernel`](rbamr_device::Kernel) token), which is
/// the residency property the paper's design enforces by convention.
pub struct DeviceData<T: DeviceElement> {
    cell_box: GBox,
    ghosts: IntVector,
    centring: Centring,
    dbox: GBox,
    buf: DeviceBuffer<T>,
    stream: Stream,
    time: f64,
    category: Category,
    /// Host-side image when the data is spilled out of device memory
    /// (the paper's future-work extension, Section VI). `Some` means
    /// the device allocation has been released.
    spilled: Option<Vec<T>>,
}

impl<T: DeviceElement> DeviceData<T> {
    /// Allocate zeroed device data over `cell_box` grown by `ghosts`.
    ///
    /// # Panics
    /// Panics if the device is out of memory (matching the original's
    /// fatal `cudaMalloc` failure) or the box is empty.
    pub fn new(device: &Device, cell_box: GBox, ghosts: IntVector, centring: Centring) -> Self {
        assert!(!cell_box.is_empty(), "DeviceData: empty cell box");
        assert!(ghosts.all_ge(IntVector::ZERO), "DeviceData: negative ghost width");
        let dbox = centring.data_box(cell_box.grow(ghosts));
        let buf = device.alloc::<T>(dbox.num_cells() as usize);
        let stream = Stream::new(device);
        Self {
            cell_box,
            ghosts,
            centring,
            dbox,
            buf,
            stream,
            time: 0.0,
            category: Category::Other,
            spilled: None,
        }
    }

    /// True if the data currently lives in host memory (spilled).
    pub fn is_spilled(&self) -> bool {
        self.spilled.is_some()
    }

    /// Spill the array to host memory, releasing its device allocation
    /// — the paper's future-work mechanism for oversubscribing the
    /// 6 GB device ("allowing patches to be 'spilled' into CPU memory
    /// and then be transferred back to the device when necessary").
    /// One D2H transfer; idempotent.
    pub fn spill(&mut self, category: Category) {
        if self.spilled.is_some() {
            return;
        }
        let device = self.buf.device().clone();
        let mut host = vec![T::default(); self.buf.len()];
        device.download(&self.buf, 0, &mut host, category);
        // Release the device bytes by replacing the buffer with an
        // empty allocation.
        self.buf = device.alloc::<T>(0);
        self.spilled = Some(host);
    }

    /// Bring spilled data back into device memory (one H2D transfer).
    /// Idempotent.
    ///
    /// # Panics
    /// Panics if the device is out of memory.
    pub fn unspill(&mut self, category: Category) {
        let Some(host) = self.spilled.take() else { return };
        let device = self.buf.device().clone();
        let mut buf = device.alloc::<T>(host.len());
        device.upload(&mut buf, 0, &host, category);
        self.buf = buf;
    }

    fn assert_resident(&self, what: &str) {
        assert!(
            self.spilled.is_none(),
            "{what} on spilled patch data (cell box {:?}): call unspill() first",
            self.cell_box
        );
    }

    /// The device this data lives on.
    pub fn device(&self) -> &Device {
        self.buf.device()
    }

    /// The data's stream (per-patch streams, as in the paper's
    /// Figure 5a host code).
    pub fn stream(&self) -> &Stream {
        &self.stream
    }

    /// The current transfer category (what the next kernel charges).
    pub fn category(&self) -> Category {
        self.category
    }

    /// The backing device buffer (for kernels in this crate and the
    /// hydro device integrator).
    ///
    /// # Panics
    /// Panics if the data is spilled — the device pointer would be
    /// dangling, exactly the fault the real mechanism must prevent.
    pub fn buffer(&self) -> &DeviceBuffer<T> {
        self.assert_resident("kernel access");
        &self.buf
    }

    /// Mutable backing device buffer.
    ///
    /// # Panics
    /// Panics if the data is spilled.
    pub fn buffer_mut(&mut self) -> &mut DeviceBuffer<T> {
        self.assert_resident("kernel access");
        &mut self.buf
    }

    /// Upload a full host image into the device array — permitted only
    /// for initialisation and restart (the sanctioned full-array
    /// transfers). Values are row-major over [`PatchData::data_box`].
    pub fn upload_all(&mut self, values: &[T], category: Category) {
        assert_eq!(values.len(), self.buf.len(), "upload_all: size mismatch");
        let dev = self.buf.device().clone();
        dev.upload(&mut self.buf, 0, values, category);
    }

    /// Download the full array to the host — visualisation, checkpoint
    /// and test interop only.
    pub fn download_all(&self, category: Category) -> Vec<T> {
        let mut out = vec![T::default(); self.buf.len()];
        self.buf.device().download(&self.buf, 0, &mut out, category);
        out
    }

    /// Linear index of `p` within the device array.
    #[inline]
    pub fn index(&self, p: IntVector) -> usize {
        self.dbox.offset_of(p)
    }
}

impl<T: DeviceElement> PatchData for DeviceData<T> {
    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn cell_box(&self) -> GBox {
        self.cell_box
    }

    fn ghosts(&self) -> IntVector {
        self.ghosts
    }

    fn centring(&self) -> Centring {
        self.centring
    }

    fn time(&self) -> f64 {
        self.time
    }

    fn set_time(&mut self, time: f64) {
        self.time = time;
    }

    fn set_transfer_category(&mut self, category: Category) {
        self.category = category;
    }

    fn copy_from(&mut self, src: &dyn PatchData, overlap: &BoxOverlap) {
        let src = src
            .as_any()
            .downcast_ref::<DeviceData<T>>()
            .expect("DeviceData::copy_from: source is not DeviceData of the same element type");
        validate_overlap(overlap, src.dbox, self.dbox, self.centring);
        if overlap.is_empty() {
            return;
        }
        let device = self.buf.device().clone();
        let category = self.category;
        let dst_dbox = self.dbox;
        // One batched launch covers every region of the overlap (one
        // logical thread per element; the row decomposition is the
        // safe-Rust shape of the Figure 4 kernel).
        let shape = KernelShape::streaming(overlap.num_values(), 2, 0);
        self.stream.submit();
        let (dst_buf, src_buf, src_dbox) = (&mut self.buf, &src.buf, src.dbox);
        device.launch_named(&self.stream, "copy-region", category, shape, |k| {
            let src_slice = src_buf.as_slice(&k);
            let dst_slice = dst_buf.as_mut_slice(&k);
            for fill in overlap.dst_boxes.boxes() {
                copy_region(dst_slice, dst_dbox, src_slice, src_dbox, *fill, overlap.shift);
            }
        });
    }

    fn stream_size(&self, overlap: &BoxOverlap) -> usize {
        overlap.num_values() as usize * T::BYTES
    }

    fn pack(&self, overlap: &BoxOverlap) -> Bytes {
        let device = self.buf.device().clone();
        let total = overlap.num_values() as usize;
        device.recorder().count("pack.bytes", (total * T::BYTES) as u64);
        // Stage the packed values in device memory (the contiguous
        // `cuda_stream` buffer of Figure 4), then one D2H transfer.
        let mut staging = device.alloc::<T>(total);
        if total > 0 {
            let shape = KernelShape::streaming(total as i64, 2, 0);
            self.stream.submit();
            let (src_buf, src_dbox) = (&self.buf, self.dbox);
            let staging_ref = &mut staging;
            device.launch_named(&self.stream, "pack", self.category, shape, |k| {
                let src_slice = src_buf.as_slice(&k);
                let out = staging_ref.as_mut_slice(&k);
                let mut offset = 0usize;
                for fill in overlap.dst_boxes.boxes() {
                    let n = region_threads(*fill);
                    pack_region(
                        &mut out[offset..offset + n],
                        src_slice,
                        src_dbox,
                        *fill,
                        overlap.shift,
                    );
                    offset += n;
                }
            });
        }
        let host: Vec<T> = {
            let mut tmp = vec![T::default(); total];
            device.download(&staging, 0, &mut tmp, self.category);
            tmp
        };
        let mut out = Vec::with_capacity(total * T::BYTES);
        for v in host {
            v.write_to(&mut out);
        }
        Bytes::from(out)
    }

    fn try_pack(&self, overlap: &BoxOverlap) -> Result<Bytes, PatchDataError> {
        let device = self.buf.device().clone();
        let total = overlap.num_values() as usize;
        device.recorder().count("pack.bytes", (total * T::BYTES) as u64);
        let mut staging = device
            .try_alloc::<T>(total)
            .map_err(|e| PatchDataError::Allocation { detail: e.to_string() })?;
        if total > 0 {
            let shape = KernelShape::streaming(total as i64, 2, 0);
            self.stream.submit();
            let (src_buf, src_dbox) = (&self.buf, self.dbox);
            let staging_ref = &mut staging;
            device.launch_named(&self.stream, "pack", self.category, shape, |k| {
                let src_slice = src_buf.as_slice(&k);
                let out = staging_ref.as_mut_slice(&k);
                let mut offset = 0usize;
                for fill in overlap.dst_boxes.boxes() {
                    let n = region_threads(*fill);
                    pack_region(
                        &mut out[offset..offset + n],
                        src_slice,
                        src_dbox,
                        *fill,
                        overlap.shift,
                    );
                    offset += n;
                }
            });
        }
        let mut tmp = vec![T::default(); total];
        device
            .try_download(&staging, 0, &mut tmp, self.category)
            .map_err(|e| PatchDataError::Transfer { detail: e.to_string() })?;
        let mut out = Vec::with_capacity(total * T::BYTES);
        for v in tmp {
            v.write_to(&mut out);
        }
        Ok(Bytes::from(out))
    }

    fn try_unpack(&mut self, overlap: &BoxOverlap, stream: &[u8]) -> Result<(), PatchDataError> {
        assert_eq!(stream.len(), self.stream_size(overlap), "unpack: stream length mismatch");
        let device = self.buf.device().clone();
        let total = overlap.num_values() as usize;
        device.recorder().count("unpack.bytes", (total * T::BYTES) as u64);
        let mut host = Vec::with_capacity(total);
        let mut cursor = 0usize;
        for _ in 0..total {
            host.push(T::read_from(&stream[cursor..]));
            cursor += T::BYTES;
        }
        let mut staging = device
            .try_alloc::<T>(total)
            .map_err(|e| PatchDataError::Allocation { detail: e.to_string() })?;
        device
            .try_upload(&mut staging, 0, &host, self.category)
            .map_err(|e| PatchDataError::Transfer { detail: e.to_string() })?;
        let dst_dbox = self.dbox;
        if total > 0 {
            let shape = KernelShape::streaming(total as i64, 2, 0);
            self.stream.submit();
            let dst_buf = &mut self.buf;
            let staging_ref = &staging;
            device.launch_named(&self.stream, "unpack", self.category, shape, |k| {
                let input = staging_ref.as_slice(&k);
                let dst_slice = dst_buf.as_mut_slice(&k);
                let mut offset = 0usize;
                for fill in overlap.dst_boxes.boxes() {
                    let n = region_threads(*fill);
                    unpack_region(dst_slice, dst_dbox, &input[offset..offset + n], *fill);
                    offset += n;
                }
            });
        }
        Ok(())
    }

    fn extend_uncovered(&mut self, covered: &rbamr_geometry::BoxList) {
        let pairs = rbamr_amr::patchdata::extension_pairs(self.dbox, covered);
        if pairs.is_empty() {
            return;
        }
        let device = self.buf.device().clone();
        self.stream.submit();
        let shape = KernelShape::streaming(pairs.len() as i64, 2, 0);
        let buf = &mut self.buf;
        device.launch_named(&self.stream, "extend-uncovered", self.category, shape, |k| {
            let slice = buf.as_mut_slice(&k);
            // Sources are covered cells, targets uncovered: disjoint.
            let vals: Vec<T> = pairs.iter().map(|&(_, s)| slice[s]).collect();
            for (&(t, _), v) in pairs.iter().zip(vals) {
                slice[t] = v;
            }
        });
    }

    fn unpack(&mut self, overlap: &BoxOverlap, stream: &[u8]) {
        assert_eq!(stream.len(), self.stream_size(overlap), "unpack: stream length mismatch");
        let device = self.buf.device().clone();
        let total = overlap.num_values() as usize;
        device.recorder().count("unpack.bytes", (total * T::BYTES) as u64);
        let mut host = Vec::with_capacity(total);
        let mut cursor = 0usize;
        for _ in 0..total {
            host.push(T::read_from(&stream[cursor..]));
            cursor += T::BYTES;
        }
        // One H2D transfer of the packed buffer, then parallel unpack.
        let mut staging = device.alloc::<T>(total);
        device.upload(&mut staging, 0, &host, self.category);
        let dst_dbox = self.dbox;
        if total > 0 {
            let shape = KernelShape::streaming(total as i64, 2, 0);
            self.stream.submit();
            let dst_buf = &mut self.buf;
            let staging_ref = &staging;
            device.launch_named(&self.stream, "unpack", self.category, shape, |k| {
                let input = staging_ref.as_slice(&k);
                let dst_slice = dst_buf.as_mut_slice(&k);
                let mut offset = 0usize;
                for fill in overlap.dst_boxes.boxes() {
                    let n = region_threads(*fill);
                    unpack_region(dst_slice, dst_dbox, &input[offset..offset + n], *fill);
                    offset += n;
                }
            });
        }
    }
}

/// Factory producing [`DeviceData<f64>`] for simulation variables — the
/// GPU-resident data placement. Swapping [`HostDataFactory`]
/// (rbamr-amr) for this type is the entire difference between the CPU
/// and GPU builds of the application, exactly as the paper's Figure 6
/// shows for CleverLeaf's two patch integrators.
///
/// [`HostDataFactory`]: rbamr_amr::HostDataFactory
#[derive(Clone)]
pub struct DeviceDataFactory {
    device: Device,
}

impl DeviceDataFactory {
    /// A factory allocating on `device`.
    pub fn new(device: Device) -> Self {
        Self { device }
    }

    /// The device.
    pub fn device(&self) -> &Device {
        &self.device
    }
}

impl DataFactory for DeviceDataFactory {
    fn make(&self, var: &Variable, cell_box: GBox) -> Box<dyn PatchData> {
        Box::new(DeviceData::<f64>::new(&self.device, cell_box, var.ghosts, var.centring))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbamr_geometry::{copy_overlap, ghost_overlaps};

    fn b(x0: i64, y0: i64, x1: i64, y1: i64) -> GBox {
        GBox::from_coords(x0, y0, x1, y1)
    }

    fn dev() -> Device {
        Device::k20x()
    }

    fn filled(device: &Device, cell_box: GBox, ghosts: IntVector) -> DeviceData<f64> {
        let mut d = DeviceData::<f64>::new(device, cell_box, ghosts, Centring::Cell);
        let values: Vec<f64> = d.dbox.iter().map(|p| (p.x * 100 + p.y) as f64).collect();
        d.upload_all(&values, Category::Other);
        d
    }

    #[test]
    fn allocation_and_layout_match_host() {
        let device = dev();
        let d =
            DeviceData::<f64>::new(&device, b(0, 0, 4, 4), IntVector::uniform(2), Centring::Node);
        assert_eq!(d.data_box(), b(-2, -2, 7, 7));
        assert_eq!(d.buffer().len(), 81);
        assert_eq!(device.stats().allocated_bytes, 81 * 8);
    }

    #[test]
    fn device_copy_matches_host_copy() {
        let device = dev();
        let ghosts = IntVector::uniform(2);
        let src = filled(&device, b(4, 0, 8, 4), ghosts);
        let mut dst = DeviceData::<f64>::new(&device, b(0, 0, 4, 4), ghosts, Centring::Cell);
        let ov =
            ghost_overlaps(b(0, 0, 4, 4), ghosts, b(4, 0, 8, 4), Centring::Cell, IntVector::ZERO);
        dst.copy_from(&src, &ov);
        let host = dst.download_all(Category::Other);
        let dbox = dst.data_box();
        assert_eq!(host[dbox.offset_of(IntVector::new(4, 2))], 402.0);
        assert_eq!(host[dbox.offset_of(IntVector::new(5, 3))], 503.0);
        assert_eq!(host[dbox.offset_of(IntVector::new(3, 3))], 0.0); // interior untouched
    }

    #[test]
    fn pack_stream_matches_host_format() {
        // A device pack must be byte-identical to the host pack of the
        // same values, so device and host ranks interoperate.
        let device = dev();
        let ghosts = IntVector::uniform(1);
        let cell_box = b(0, 0, 4, 4);
        let ddata = filled(&device, cell_box, ghosts);
        let mut hdata = rbamr_amr::HostData::<f64>::cell(cell_box, ghosts);
        for p in hdata.data_box().iter() {
            *hdata.at_mut(p) = (p.x * 100 + p.y) as f64;
        }
        let ov = copy_overlap(b(2, 2, 6, 6), cell_box, Centring::Cell);
        assert_eq!(ddata.pack(&ov), hdata.pack(&ov));
    }

    #[test]
    fn pack_unpack_roundtrip_on_device() {
        let device = dev();
        let ghosts = IntVector::uniform(2);
        let src = filled(&device, b(4, 0, 8, 4), ghosts);
        let ov =
            ghost_overlaps(b(0, 0, 4, 4), ghosts, b(4, 0, 8, 4), Centring::Cell, IntVector::ZERO);
        let stream = src.pack(&ov);
        assert_eq!(stream.len(), src.stream_size(&ov));
        let mut dst = DeviceData::<f64>::new(&device, b(0, 0, 4, 4), ghosts, Centring::Cell);
        dst.unpack(&ov, &stream);
        let host = dst.download_all(Category::Other);
        let dbox = dst.data_box();
        assert_eq!(host[dbox.offset_of(IntVector::new(4, 1))], 401.0);
    }

    #[test]
    fn pack_transfers_only_packed_bytes() {
        // Residency: the D2H traffic of a pack is exactly the overlap
        // size, not the whole array.
        let device = dev();
        let ghosts = IntVector::uniform(2);
        let src = filled(&device, b(0, 0, 64, 64), ghosts);
        device.reset_transfer_stats();
        let ov = ghost_overlaps(
            b(64, 0, 128, 64),
            ghosts,
            b(0, 0, 64, 64),
            Centring::Cell,
            IntVector::ZERO,
        );
        let stream = src.pack(&ov);
        let stats = device.stats();
        assert_eq!(stats.d2h_bytes, stream.len() as u64);
        assert_eq!(stats.d2h_transfers, 1);
        assert_eq!(stats.h2d_bytes, 0);
        // 2 ghost columns x 64 rows x 8 bytes.
        assert_eq!(stream.len(), 2 * 64 * 8);
    }

    #[test]
    fn kernels_charge_the_set_category() {
        let device = dev();
        let ghosts = IntVector::uniform(1);
        let src = filled(&device, b(4, 0, 8, 4), ghosts);
        let mut dst = DeviceData::<f64>::new(&device, b(0, 0, 4, 4), ghosts, Centring::Cell);
        dst.set_transfer_category(Category::HaloExchange);
        let before = device.clock().snapshot().get(Category::HaloExchange);
        let ov =
            ghost_overlaps(b(0, 0, 4, 4), ghosts, b(4, 0, 8, 4), Centring::Cell, IntVector::ZERO);
        dst.copy_from(&src, &ov);
        assert!(device.clock().snapshot().get(Category::HaloExchange) > before);
    }

    #[test]
    fn factory_allocates_on_its_device() {
        let device = dev();
        let factory = DeviceDataFactory::new(device.clone());
        let var = Variable {
            id: rbamr_amr::VariableId(0),
            name: "q".into(),
            centring: Centring::Cell,
            ghosts: IntVector::uniform(2),
        };
        let data = factory.make(&var, b(0, 0, 8, 8));
        assert_eq!(data.cell_box(), b(0, 0, 8, 8));
        assert!(device.stats().allocated_bytes >= 12 * 12 * 8);
    }

    #[test]
    fn i32_tag_data_roundtrips() {
        let device = dev();
        let mut d = DeviceData::<i32>::new(&device, b(0, 0, 4, 4), IntVector::ZERO, Centring::Cell);
        let mut vals = vec![0i32; 16];
        vals[5] = 1;
        d.upload_all(&vals, Category::Regrid);
        let back = d.download_all(Category::Regrid);
        assert_eq!(back, vals);
    }
}
