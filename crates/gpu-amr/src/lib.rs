//! Device-resident patch data and data-parallel AMR operators — the
//! reproduction of the paper's `CudaPatchData` library (Section IV-B).
//!
//! The original library has two packages, mirrored here:
//!
//! * **pdat** ([`data`]) — `CudaArrayData` (a contiguous device
//!   allocation for a box region, Figure 3) behind the three
//!   data-centring classes, implementing SAMRAI's `PatchData` interface
//!   so that "simulation data is stored in GPU memory at all times" and
//!   only packed halo buffers, compressed tag bitmaps and scalars cross
//!   the PCIe bus.
//! * **geom** ([`ops`]) — the data-parallel coarsen and refine
//!   operators: linear node refine (Figure 5), conservative linear
//!   cell/side refine, node injection, and the volume- and mass-weighted
//!   coarsen kernels (Figures 7 and 8) the paper claims as the first
//!   data-parallel implementations.
//!
//! [`pack`] holds the data-parallel buffer pack/unpack kernels of
//! Figure 4, and [`tags`] the flag-compression path of Section IV-C
//! (int tags → bitmaps → a single `tagged` flag when nothing is set).
//!
//! Every operator is tested for exact agreement with the host reference
//! implementation in `rbamr-amr` on randomised data.

pub mod batch;
pub mod data;
pub mod ops;
pub mod pack;
pub mod tags;

pub use batch::{interior_core, split_region, BatchPlan, BatchPlanCache, PatchSlot};
pub use data::{DeviceData, DeviceDataFactory};
pub use tags::compress_tags;
