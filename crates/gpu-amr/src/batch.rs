//! Batched per-level launch planning.
//!
//! The paper's Figure 9 shows per-patch kernel launches dominating below
//! ~200k cells: every patch pays the fixed launch latency. The fix (the
//! first open ROADMAP item) is to fuse all patches of a level into *one*
//! launch per kernel, indexed by a variable-size patch-descriptor array
//! — one logical element index spans every patch, and the descriptor
//! table maps it back to (patch, local offset). A [`BatchPlan`] is that
//! descriptor table: built once per level whenever the level's box
//! structure changes, cached alongside the structure-keyed
//! `ScheduleBuild`, and its device-resident copy uploaded once per
//! rebuild (the only extra PCIe traffic batching introduces).
//!
//! The plan also owns the *interior/boundary* split geometry used for
//! communication/computation overlap: [`interior_core`] shrinks a patch
//! box by a stencil-dependent margin, and [`split_region`] divides a
//! kernel's nominal region into the core part (safe to compute while
//! halo exchange is in flight) and the boundary frame (must wait for
//! the exchange).

use rbamr_device::{Device, DeviceBuffer};
use rbamr_geometry::digest::Fnv64;
use rbamr_geometry::{GBox, IntVector};
use rbamr_perfmodel::Category;
use std::collections::HashMap;
use std::sync::Arc;

/// Number of `i64` words one patch occupies in the packed descriptor
/// array: box lo/hi (4) plus the running element offset (1).
pub const DESCRIPTOR_WORDS: usize = 5;

/// One patch's entry in a [`BatchPlan`]: where the patch sits in the
/// level's patch array, its cell box, and where its elements begin in
/// the batched logical index space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatchSlot {
    /// Index into the level's local patch array.
    pub patch_index: usize,
    /// The patch's interior cell box.
    pub cell_box: GBox,
    /// First logical element of this patch in a batched launch (running
    /// sum of cell counts over the preceding slots).
    pub elem_offset: u64,
}

/// The descriptor table for one level's batched launches.
///
/// Holds the host-side slot array, the structure key it was built from,
/// and the device-resident packed descriptor buffer (uploaded once at
/// build time — batched kernels index it instead of receiving per-patch
/// arguments).
pub struct BatchPlan {
    level_no: usize,
    structure_key: u64,
    slots: Vec<PatchSlot>,
    total_cells: u64,
    descriptors: DeviceBuffer<i64>,
}

impl BatchPlan {
    /// Build the plan for `level_no` from the level's local patch cell
    /// boxes (in patch-array order) and upload the packed descriptor
    /// array to `device`.
    pub fn build(device: &Device, level_no: usize, cell_boxes: &[GBox]) -> Self {
        let mut slots = Vec::with_capacity(cell_boxes.len());
        let mut offset = 0u64;
        let mut packed = Vec::with_capacity(cell_boxes.len() * DESCRIPTOR_WORDS);
        for (patch_index, &cell_box) in cell_boxes.iter().enumerate() {
            slots.push(PatchSlot { patch_index, cell_box, elem_offset: offset });
            packed.extend_from_slice(&[
                cell_box.lo.x,
                cell_box.lo.y,
                cell_box.hi.x,
                cell_box.hi.y,
                offset as i64,
            ]);
            offset += cell_box.num_cells() as u64;
        }
        let mut descriptors = device.alloc::<i64>(packed.len().max(1));
        if !packed.is_empty() {
            device.upload(&mut descriptors, 0, &packed, Category::Other);
        }
        Self {
            level_no,
            structure_key: structure_key(level_no, cell_boxes),
            slots,
            total_cells: offset,
            descriptors,
        }
    }

    /// The level this plan describes.
    pub fn level_no(&self) -> usize {
        self.level_no
    }

    /// The structure key the plan was built from.
    pub fn structure_key(&self) -> u64 {
        self.structure_key
    }

    /// Per-patch slots in patch-array order.
    pub fn slots(&self) -> &[PatchSlot] {
        &self.slots
    }

    /// Total interior cells across all slots (the batched logical index
    /// space for a cell-centred interior launch).
    pub fn total_cells(&self) -> u64 {
        self.total_cells
    }

    /// Size of the device-resident descriptor array in bytes.
    pub fn descriptor_bytes(&self) -> u64 {
        self.descriptors.size_bytes()
    }
}

/// Digest of a level's box structure: what a [`BatchPlan`] is keyed by.
pub fn structure_key(level_no: usize, cell_boxes: &[GBox]) -> u64 {
    let mut h = Fnv64::new();
    h.write_usize(level_no);
    h.write_usize(cell_boxes.len());
    for b in cell_boxes {
        h.write_gbox(*b);
    }
    h.finish()
}

/// Cache of batch plans keyed by level, invalidated by structure key —
/// the batching analogue of the schedule cache: a regrid that leaves a
/// level's boxes unchanged reuses the plan (and its device descriptor
/// upload) untouched.
#[derive(Default)]
pub struct BatchPlanCache {
    plans: HashMap<usize, Arc<BatchPlan>>,
    hits: u64,
    builds: u64,
    uploaded_bytes: u64,
}

impl BatchPlanCache {
    /// Create an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Return the cached plan for `level_no` if its structure key still
    /// matches, else build (and cache) a fresh one.
    pub fn get_or_build(
        &mut self,
        device: &Device,
        level_no: usize,
        cell_boxes: &[GBox],
    ) -> Arc<BatchPlan> {
        let key = structure_key(level_no, cell_boxes);
        if let Some(plan) = self.plans.get(&level_no) {
            if plan.structure_key() == key {
                self.hits += 1;
                return Arc::clone(plan);
            }
        }
        self.builds += 1;
        let plan = Arc::new(BatchPlan::build(device, level_no, cell_boxes));
        self.uploaded_bytes += plan.descriptor_bytes();
        self.plans.insert(level_no, Arc::clone(&plan));
        plan
    }

    /// Drop every cached plan (e.g. when the device is replaced).
    pub fn clear(&mut self) {
        self.plans.clear();
    }

    /// Structure-key cache hits since creation.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Plan builds since creation.
    pub fn builds(&self) -> u64 {
        self.builds
    }

    /// Total descriptor bytes uploaded to the device across all builds
    /// (the batching overhead on top of the oracle's H2D traffic).
    pub fn uploaded_bytes(&self) -> u64 {
        self.uploaded_bytes
    }
}

/// The interior core of a patch: `cell_box` shrunk by `margin` cells on
/// every side. Returns an empty box when the patch is too small — the
/// caller then runs the whole kernel in the boundary pass, which
/// degrades gracefully to the unoverlapped order.
pub fn interior_core(cell_box: GBox, margin: i64) -> GBox {
    let core = cell_box.grow(IntVector::uniform(-margin));
    if core.is_empty() {
        GBox::from_coords(0, 0, 0, 0)
    } else {
        core
    }
}

/// Split a kernel's nominal `region` against an interior `core` data
/// box: the part inside the core (computable while halo exchange is in
/// flight) and the boundary frame boxes covering the rest exactly once.
pub fn split_region(region: GBox, core: GBox) -> (GBox, Vec<GBox>) {
    let inner = region.intersect(core);
    if inner.is_empty() {
        return (GBox::from_coords(0, 0, 0, 0), vec![region]);
    }
    let mut frames = Vec::new();
    region.subtract_into(inner, &mut frames);
    (inner, frames)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(x0: i64, y0: i64, x1: i64, y1: i64) -> GBox {
        GBox::from_coords(x0, y0, x1, y1)
    }

    #[test]
    fn plan_offsets_span_patches() {
        let dev = Device::k20x();
        let boxes = [b(0, 0, 8, 8), b(8, 0, 16, 8), b(0, 8, 8, 16)];
        let plan = BatchPlan::build(&dev, 1, &boxes);
        assert_eq!(plan.level_no(), 1);
        assert_eq!(plan.slots().len(), 3);
        assert_eq!(plan.slots()[0].elem_offset, 0);
        assert_eq!(plan.slots()[1].elem_offset, 64);
        assert_eq!(plan.slots()[2].elem_offset, 128);
        assert_eq!(plan.total_cells(), 192);
        assert_eq!(plan.descriptor_bytes(), (3 * DESCRIPTOR_WORDS * 8) as u64);
    }

    #[test]
    fn cache_reuses_plan_until_structure_changes() {
        let dev = Device::k20x();
        let mut cache = BatchPlanCache::new();
        let boxes = vec![b(0, 0, 8, 8), b(8, 0, 16, 8)];
        let p1 = cache.get_or_build(&dev, 0, &boxes);
        let p2 = cache.get_or_build(&dev, 0, &boxes);
        assert!(Arc::ptr_eq(&p1, &p2));
        assert_eq!((cache.builds(), cache.hits()), (1, 1));
        let p3 = cache.get_or_build(&dev, 0, &[b(0, 0, 8, 8)]);
        assert!(!Arc::ptr_eq(&p1, &p3));
        assert_eq!((cache.builds(), cache.hits()), (2, 1));
    }

    #[test]
    fn interior_core_empties_on_small_patches() {
        assert_eq!(interior_core(b(0, 0, 32, 32), 6), b(6, 6, 26, 26));
        assert!(interior_core(b(0, 0, 10, 10), 6).is_empty());
    }

    #[test]
    fn split_region_covers_exactly_once() {
        let region = b(-2, -2, 34, 34);
        let core = b(6, 6, 26, 26);
        let (inner, frames) = split_region(region, core);
        assert_eq!(inner, core);
        let total: i64 = frames.iter().map(|f| f.num_cells()).sum::<i64>() + inner.num_cells();
        assert_eq!(total, region.num_cells());
        for f in &frames {
            assert!(!f.intersects(inner) || f.intersect(inner).is_empty());
        }
    }

    #[test]
    fn split_region_degrades_to_boundary_only() {
        let region = b(0, 0, 8, 8);
        let (inner, frames) = split_region(region, interior_core(b(0, 0, 8, 8), 6));
        assert!(inner.is_empty());
        assert_eq!(frames, vec![region]);
    }
}
