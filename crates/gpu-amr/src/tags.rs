//! Device tag compression — the Section IV-C transfer optimisation.
//!
//! "To transfer the data, we compress the array of tags (stored as
//! ints) to an array of bits … Additionally, we store a `tagged` flag
//! for each patch. If no cells in a patch are flagged for refinement
//! then we don't copy data."
//!
//! The compression kernel runs on the device (one thread per output
//! byte, each reading eight tags); only the bit array — or nothing but
//! the flag, when the patch is clean — crosses the PCIe bus.

use crate::data::DeviceData;
use rayon::prelude::*;
use rbamr_amr::patchdata::PatchData;
use rbamr_amr::TagBitmap;
use rbamr_device::{Device, DeviceBuffer, Stream};
use rbamr_geometry::GBox;
use rbamr_perfmodel::{Category, KernelShape};

/// Compress a device-resident `i32` tag field into a host-side
/// [`TagBitmap`], transferring only the compressed form.
///
/// The interior (non-ghost) tags of `tags` are compressed. Returns the
/// bitmap; PCIe traffic is `ceil(cells/8) + 1` bytes when any cell is
/// tagged, and a single flag byte otherwise (modelled as a 4-byte
/// scalar readback).
pub fn compress_tags(tags: &DeviceData<i32>, category: Category) -> TagBitmap {
    let device = tags.device().clone();
    let cell_box = tags.cell_box();
    let dbox = tags.data_box();
    let n = cell_box.num_cells() as usize;
    let nbytes = n.div_ceil(8);

    // Kernel 1: any-tagged reduction (one scalar crosses the bus).
    let any = device_any_tagged(&device, tags, cell_box, dbox, category);
    if !any {
        return TagBitmap::empty(cell_box);
    }

    // Kernel 2: bit compression, one thread per output byte.
    let mut bits: DeviceBuffer<u8> = device.alloc(nbytes);
    let stream = Stream::new(&device);
    stream.submit();
    let shape = KernelShape::streaming(n as i64, 1, 2);
    let src_buf = tags.buffer();
    let width = cell_box.size().x;
    device.launch_named(&stream, "compress-tags", category, shape, |k| {
        let src = src_buf.as_slice(&k);
        bits.as_mut_slice(&k).par_iter_mut().enumerate().for_each(|(byte_idx, out)| {
            let mut b = 0u8;
            for bit in 0..8 {
                let cell = byte_idx * 8 + bit;
                if cell >= n {
                    break;
                }
                let p = rbamr_geometry::IntVector::new(
                    cell_box.lo.x + (cell as i64 % width),
                    cell_box.lo.y + (cell as i64 / width),
                );
                if src[dbox.offset_of(p)] != 0 {
                    b |= 1 << bit;
                }
            }
            *out = b;
        });
    });

    // Transfer the compressed bits (D2H) and rebuild the bitmap.
    let mut host_bits = vec![0u8; nbytes];
    device.download(&bits, 0, &mut host_bits, category);
    // Reconstruct through the shared TagBitmap type so host and device
    // paths agree bit for bit.
    let mut tags_host = vec![0i32; n];
    for (k, t) in tags_host.iter_mut().enumerate() {
        if host_bits[k / 8] & (1 << (k % 8)) != 0 {
            *t = 1;
        }
    }
    TagBitmap::compress(cell_box, &tags_host)
}

/// The "any tagged" device reduction: one kernel plus one 4-byte D2H
/// scalar.
fn device_any_tagged(
    device: &Device,
    tags: &DeviceData<i32>,
    cell_box: GBox,
    dbox: GBox,
    category: Category,
) -> bool {
    let stream = Stream::new(device);
    stream.submit();
    let n = cell_box.num_cells();
    let shape = KernelShape::streaming(n, 1, 1);
    let src_buf = tags.buffer();
    let mut result: DeviceBuffer<i32> = device.alloc(1);
    device.launch_named(&stream, "any-tagged", category, shape, |k| {
        let src = src_buf.as_slice(&k);
        let any =
            cell_box.iter().collect::<Vec<_>>().par_iter().any(|p| src[dbox.offset_of(*p)] != 0);
        result.as_mut_slice(&k)[0] = i32::from(any);
    });
    let mut host = [0i32; 1];
    device.download(&result, 0, &mut host, category);
    host[0] != 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbamr_geometry::{Centring, IntVector};

    fn tag_field(device: &Device, cell_box: GBox, tagged: &[IntVector]) -> DeviceData<i32> {
        let mut d = DeviceData::<i32>::new(device, cell_box, IntVector::ZERO, Centring::Cell);
        let dbox = d.data_box();
        let mut vals = vec![0i32; dbox.num_cells() as usize];
        for p in tagged {
            vals[dbox.offset_of(*p)] = 1;
        }
        d.upload_all(&vals, Category::Regrid);
        d
    }

    #[test]
    fn device_compression_matches_host_bitmap() {
        let device = Device::k20x();
        let cell_box = GBox::from_coords(2, 3, 12, 9);
        let tagged = vec![IntVector::new(2, 3), IntVector::new(7, 5), IntVector::new(11, 8)];
        let dtags = tag_field(&device, cell_box, &tagged);
        let bm = compress_tags(&dtags, Category::Regrid);
        assert!(bm.any());
        assert_eq!(bm.tagged_cells(), tagged);
    }

    #[test]
    fn untagged_patch_moves_only_a_scalar() {
        let device = Device::k20x();
        let cell_box = GBox::from_coords(0, 0, 64, 64);
        let dtags = tag_field(&device, cell_box, &[]);
        device.reset_transfer_stats();
        let bm = compress_tags(&dtags, Category::Regrid);
        assert!(!bm.any());
        let stats = device.stats();
        // Only the 4-byte any-flag crossed the bus.
        assert_eq!(stats.d2h_bytes, 4);
        assert_eq!(stats.d2h_transfers, 1);
    }

    #[test]
    fn tagged_patch_moves_compressed_bits_only() {
        let device = Device::k20x();
        let cell_box = GBox::from_coords(0, 0, 64, 64);
        let dtags = tag_field(&device, cell_box, &[IntVector::new(10, 10)]);
        device.reset_transfer_stats();
        let bm = compress_tags(&dtags, Category::Regrid);
        assert!(bm.any());
        let stats = device.stats();
        // Flag scalar (4 B) + bit array (64*64/8 = 512 B); the naive
        // int transfer would be 16 KiB.
        assert_eq!(stats.d2h_bytes, 4 + 512);
        assert!(stats.d2h_bytes < bm.uncompressed_bytes() / 30);
    }

    #[test]
    fn ghosted_tag_fields_compress_interior_only() {
        let device = Device::k20x();
        let cell_box = GBox::from_coords(0, 0, 8, 8);
        let mut d = DeviceData::<i32>::new(&device, cell_box, IntVector::ONE, Centring::Cell);
        let dbox = d.data_box();
        let mut vals = vec![0i32; dbox.num_cells() as usize];
        // Tag a ghost cell (must be ignored) and an interior cell.
        vals[dbox.offset_of(IntVector::new(-1, 0))] = 1;
        vals[dbox.offset_of(IntVector::new(3, 3))] = 1;
        d.upload_all(&vals, Category::Regrid);
        let bm = compress_tags(&d, Category::Regrid);
        assert_eq!(bm.tagged_cells(), vec![IntVector::new(3, 3)]);
    }
}
