//! Data-parallel refine and coarsen operators — the paper's `geom`
//! package ("these are, to the best of our knowledge, the first
//! data-parallel implementations for each of these operators").
//!
//! Each operator mirrors its host reference in `rbamr_amr::ops` exactly
//! (the test suite checks bit-identical agreement on random data) but
//! executes as device kernels: one logical thread per *fine* value for
//! refinement (Figure 5) and one per *coarse* value for coarsening
//! (Figures 7 and 8), with the stream/event protocol of the Figure 5a
//! host listing around each launch.

use crate::data::DeviceData;
use rayon::prelude::*;
use rbamr_amr::ops::{CoarsenOperator, RefineOperator};
use rbamr_amr::patchdata::PatchData;
use rbamr_device::Event;
use rbamr_geometry::{BoxList, GBox, IntVector};
use rbamr_perfmodel::KernelShape;

fn device_data(d: &dyn PatchData) -> &DeviceData<f64> {
    d.as_any().downcast_ref().expect("device operator applied to non-device data")
}

fn device_data_mut(d: &mut dyn PatchData) -> &mut DeviceData<f64> {
    d.as_any_mut().downcast_mut().expect("device operator applied to non-device data")
}

#[inline]
fn clamp_to(b: GBox, p: IntVector) -> IntVector {
    IntVector::new(p.x.clamp(b.lo.x, b.hi.x - 1), p.y.clamp(b.lo.y, b.hi.y - 1))
}

#[inline]
fn minmod(a: f64, b: f64) -> f64 {
    if a * b <= 0.0 {
        0.0
    } else if a.abs() < b.abs() {
        a
    } else {
        b
    }
}

/// Run one refine-style kernel: the Figure 5a protocol (synchronise the
/// coarse stream, launch on the fine stream, record an event, make the
/// coarse stream wait), then the row-parallel body over each fill box.
///
/// `body(dst_row_slice, y, x_range, src_slice)` computes one row of
/// fine values; rows are independent, as in the one-thread-per-node
/// CUDA kernel.
fn launch_refine(
    dst: &mut DeviceData<f64>,
    src: &DeviceData<f64>,
    fine_boxes: &BoxList,
    arrays_touched: u32,
    flops_per_elem: u32,
    body: impl Fn(&mut [f64], i64, (i64, i64), &[f64]) + Sync + Send,
) {
    let device = dst.device().clone();
    let category = dst.category();
    let dst_dbox = dst.data_box();
    if fine_boxes.is_empty() {
        return;
    }
    // Figure 5a: coarse stream sync, fine-stream launch (one batched
    // launch covering every fill region), event record, coarse wait.
    let coarse_stream = src.stream().clone();
    coarse_stream.synchronize();
    let total: i64 = fine_boxes.num_cells();
    let shape = KernelShape::streaming(total, arrays_touched, flops_per_elem);
    let _cfg = rbamr_device::LaunchConfig::for_elements(total.max(0) as usize);
    dst.stream().submit();
    let fine_stream = dst.stream().clone();
    let dst_w = dst_dbox.size().x as usize;
    let (dst_buf, src_buf) = (dst.buffer_mut(), src.buffer());
    device.launch_named(&fine_stream, "refine-interp", category, shape, |k| {
        let src_slice = src_buf.as_slice(&k);
        let dst_slice = dst_buf.as_mut_slice(&k);
        for fill in fine_boxes.boxes() {
            debug_assert!(dst_dbox.contains_box(*fill), "refine fill escapes dst");
            let first_row = (fill.lo.y - dst_dbox.lo.y) as usize;
            let n_rows = fill.size().y as usize;
            dst_slice.par_chunks_mut(dst_w).skip(first_row).take(n_rows).enumerate().for_each(
                |(r, row)| {
                    let y = fill.lo.y + r as i64;
                    body(row, y, (fill.lo.x, fill.hi.x), src_slice);
                },
            );
        }
    });
    let event = Event::new(&device);
    event.record(&fine_stream);
    coarse_stream.wait_event(&event);
}

/// As [`launch_refine`] but indexed per *coarse* row, for coarsening
/// kernels (Figures 7/8: one thread per coarse value).
fn launch_coarsen(
    dst: &mut DeviceData<f64>,
    srcs: &[&DeviceData<f64>],
    coarse_boxes: &BoxList,
    arrays_touched: u32,
    flops_per_elem: u32,
    body: impl Fn(&mut [f64], i64, (i64, i64), &[&[f64]]) + Sync + Send,
) {
    let device = dst.device().clone();
    let category = dst.category();
    let dst_dbox = dst.data_box();
    if coarse_boxes.is_empty() {
        return;
    }
    let shape = KernelShape::streaming(coarse_boxes.num_cells(), arrays_touched, flops_per_elem);
    dst.stream().submit();
    let stream = dst.stream().clone();
    let dst_w = dst_dbox.size().x as usize;
    let dst_buf = dst.buffer_mut();
    device.launch_named(&stream, "coarsen-project", category, shape, |k| {
        let src_slices: Vec<&[f64]> = srcs.iter().map(|s| s.buffer().as_slice(&k)).collect();
        let dst_slice = dst_buf.as_mut_slice(&k);
        for fill in coarse_boxes.boxes() {
            debug_assert!(dst_dbox.contains_box(*fill), "coarsen fill escapes dst");
            let first_row = (fill.lo.y - dst_dbox.lo.y) as usize;
            let n_rows = fill.size().y as usize;
            dst_slice.par_chunks_mut(dst_w).skip(first_row).take(n_rows).enumerate().for_each(
                |(r, row)| {
                    let y = fill.lo.y + r as i64;
                    body(row, y, (fill.lo.x, fill.hi.x), &src_slices);
                },
            );
        }
    });
}

/// Device bilinear node refinement — the exact kernel of Figure 5b.
pub struct DeviceLinearNodeRefine;

impl RefineOperator for DeviceLinearNodeRefine {
    fn name(&self) -> &'static str {
        "device-linear-node-refine"
    }

    fn stencil_width(&self) -> IntVector {
        IntVector::ONE
    }

    fn refine(
        &self,
        dst: &mut dyn PatchData,
        src: &dyn PatchData,
        fine_boxes: &BoxList,
        ratio: IntVector,
    ) {
        let src = device_data(src);
        let dst = device_data_mut(dst);
        let sbox = src.data_box();
        let dst_dbox = dst.data_box();
        let (rx, ry) = (ratio.x, ratio.y);
        let (realrat0, realrat1) = (1.0 / rx as f64, 1.0 / ry as f64);
        let sw = sbox.size().x;
        launch_refine(dst, src, fine_boxes, 2, 10, move |row, y, (x0, x1), srcs| {
            // Figure 5b, one thread per fine node along the row.
            let ic1 = y.div_euclid(ry);
            let ir1 = y - ic1 * ry;
            let yy = ir1 as f64 * realrat1;
            for x in x0..x1 {
                let ic0 = x.div_euclid(rx);
                let ir0 = x - ic0 * rx;
                let xx = ir0 as f64 * realrat0;
                let c = |i: i64, j: i64| {
                    let q = clamp_to(sbox, IntVector::new(i, j));
                    srcs[((q.y - sbox.lo.y) * sw + (q.x - sbox.lo.x)) as usize]
                };
                let v = (c(ic0, ic1) * (1.0 - xx) + c(ic0 + 1, ic1) * xx) * (1.0 - yy)
                    + (c(ic0, ic1 + 1) * (1.0 - xx) + c(ic0 + 1, ic1 + 1) * xx) * yy;
                row[(x - dst_dbox.lo.x) as usize] = v;
            }
        });
    }
}

/// Device conservative linear cell refinement.
pub struct DeviceConservativeCellRefine;

impl RefineOperator for DeviceConservativeCellRefine {
    fn name(&self) -> &'static str {
        "device-conservative-linear-cell-refine"
    }

    fn stencil_width(&self) -> IntVector {
        IntVector::ONE
    }

    fn refine(
        &self,
        dst: &mut dyn PatchData,
        src: &dyn PatchData,
        fine_boxes: &BoxList,
        ratio: IntVector,
    ) {
        let src = device_data(src);
        let dst = device_data_mut(dst);
        let sbox = src.data_box();
        let dst_dbox = dst.data_box();
        let (rx, ry) = (ratio.x, ratio.y);
        let sw = sbox.size().x;
        launch_refine(dst, src, fine_boxes, 2, 14, move |row, y, (x0, x1), srcs| {
            let icy = y.div_euclid(ry);
            let eta = ((y - icy * ry) as f64 + 0.5) / ry as f64 - 0.5;
            for x in x0..x1 {
                let icx = x.div_euclid(rx);
                let c = |i: i64, j: i64| {
                    let q = clamp_to(sbox, IntVector::new(i, j));
                    srcs[((q.y - sbox.lo.y) * sw + (q.x - sbox.lo.x)) as usize]
                };
                let v0 = c(icx, icy);
                let sx = minmod(v0 - c(icx - 1, icy), c(icx + 1, icy) - v0);
                let sy = minmod(v0 - c(icx, icy - 1), c(icx, icy + 1) - v0);
                let xi = ((x - icx * rx) as f64 + 0.5) / rx as f64 - 0.5;
                row[(x - dst_dbox.lo.x) as usize] = v0 + sx * xi + sy * eta;
            }
        });
    }
}

/// Device piecewise-constant refinement.
pub struct DeviceConstantRefine;

impl RefineOperator for DeviceConstantRefine {
    fn name(&self) -> &'static str {
        "device-constant-refine"
    }

    fn stencil_width(&self) -> IntVector {
        IntVector::ZERO
    }

    fn refine(
        &self,
        dst: &mut dyn PatchData,
        src: &dyn PatchData,
        fine_boxes: &BoxList,
        ratio: IntVector,
    ) {
        let src = device_data(src);
        let dst = device_data_mut(dst);
        let sbox = src.data_box();
        let dst_dbox = dst.data_box();
        let sw = sbox.size().x;
        launch_refine(dst, src, fine_boxes, 2, 2, move |row, y, (x0, x1), srcs| {
            let icy = y.div_euclid(ratio.y);
            for x in x0..x1 {
                let q = clamp_to(sbox, IntVector::new(x.div_euclid(ratio.x), icy));
                row[(x - dst_dbox.lo.x) as usize] =
                    srcs[((q.y - sbox.lo.y) * sw + (q.x - sbox.lo.x)) as usize];
            }
        });
    }
}

/// Device linear side refinement (normal-axis interpolation).
pub struct DeviceLinearSideRefine {
    /// The face-normal axis of the data this operator serves.
    pub axis: usize,
}

impl RefineOperator for DeviceLinearSideRefine {
    fn name(&self) -> &'static str {
        "device-linear-side-refine"
    }

    fn stencil_width(&self) -> IntVector {
        IntVector::ONE
    }

    fn refine(
        &self,
        dst: &mut dyn PatchData,
        src: &dyn PatchData,
        fine_boxes: &BoxList,
        ratio: IntVector,
    ) {
        let src = device_data(src);
        let dst = device_data_mut(dst);
        let sbox = src.data_box();
        let dst_dbox = dst.data_box();
        let axis = self.axis;
        let r_n = ratio.get(axis);
        let sw = sbox.size().x;
        launch_refine(dst, src, fine_boxes, 2, 6, move |row, y, (x0, x1), srcs| {
            for x in x0..x1 {
                let p = IntVector::new(x, y);
                let ic = p.div_floor(ratio);
                let irn = p.get(axis) - ic.get(axis) * r_n;
                let t = irn as f64 / r_n as f64;
                let read = |q: IntVector| {
                    let q = clamp_to(sbox, q);
                    srcs[((q.y - sbox.lo.y) * sw + (q.x - sbox.lo.x)) as usize]
                };
                row[(x - dst_dbox.lo.x) as usize] =
                    read(ic) * (1.0 - t) + read(ic + IntVector::unit(axis)) * t;
            }
        });
    }
}

/// Device node-injection coarsening.
pub struct DeviceNodeInjectionCoarsen;

impl CoarsenOperator for DeviceNodeInjectionCoarsen {
    fn name(&self) -> &'static str {
        "device-node-injection-coarsen"
    }

    fn coarsen(
        &self,
        dst: &mut dyn PatchData,
        src: &dyn PatchData,
        aux: &[&dyn PatchData],
        coarse_boxes: &BoxList,
        ratio: IntVector,
    ) {
        assert!(aux.is_empty(), "injection takes no auxiliary data");
        let src = device_data(src);
        let dst = device_data_mut(dst);
        let sbox = src.data_box();
        let dst_dbox = dst.data_box();
        let sw = sbox.size().x;
        launch_coarsen(dst, &[src], coarse_boxes, 2, 1, move |row, y, (x0, x1), srcs| {
            let s = srcs[0];
            let fy = y * ratio.y;
            for x in x0..x1 {
                let fx = x * ratio.x;
                row[(x - dst_dbox.lo.x) as usize] =
                    s[((fy - sbox.lo.y) * sw + (fx - sbox.lo.x)) as usize];
            }
        });
    }
}

/// Device volume-weighted coarsening — the exact kernel of Figure 8:
/// one thread per coarse value, each summing its `r_x × r_y` fine
/// covering values weighted by cell volume.
pub struct DeviceVolumeWeightedCoarsen;

impl CoarsenOperator for DeviceVolumeWeightedCoarsen {
    fn name(&self) -> &'static str {
        "device-volume-weighted-coarsen"
    }

    fn coarsen(
        &self,
        dst: &mut dyn PatchData,
        src: &dyn PatchData,
        aux: &[&dyn PatchData],
        coarse_boxes: &BoxList,
        ratio: IntVector,
    ) {
        assert!(aux.is_empty(), "volume-weighted coarsen takes no auxiliary data");
        let src = device_data(src);
        let dst = device_data_mut(dst);
        let sbox = src.data_box();
        let dst_dbox = dst.data_box();
        let sw = sbox.size().x;
        let vf = 1.0;
        let vc = (ratio.x * ratio.y) as f64 * vf;
        let flops = (2 * ratio.x * ratio.y + 1) as u32;
        launch_coarsen(dst, &[src], coarse_boxes, 2, flops, move |row, y, (x0, x1), srcs| {
            // Figure 8, row-sliced: spv accumulates fine_data * Vf.
            let s = srcs[0];
            for x in x0..x1 {
                let f0 = IntVector::new(x * ratio.x, y * ratio.y);
                let mut spv = 0.0;
                for j in 0..ratio.y {
                    for i in 0..ratio.x {
                        let q = f0 + IntVector::new(i, j);
                        spv += s[((q.y - sbox.lo.y) * sw + (q.x - sbox.lo.x)) as usize] * vf;
                    }
                }
                row[(x - dst_dbox.lo.x) as usize] = spv / vc;
            }
        });
    }
}

/// Device mass-weighted coarsening: weights each fine value by its cell
/// mass (density × volume), conserving `Σ ρ e V` across levels.
pub struct DeviceMassWeightedCoarsen;

impl CoarsenOperator for DeviceMassWeightedCoarsen {
    fn name(&self) -> &'static str {
        "device-mass-weighted-coarsen"
    }

    fn num_aux(&self) -> usize {
        1
    }

    fn coarsen(
        &self,
        dst: &mut dyn PatchData,
        src: &dyn PatchData,
        aux: &[&dyn PatchData],
        coarse_boxes: &BoxList,
        ratio: IntVector,
    ) {
        assert_eq!(aux.len(), 1, "mass-weighted coarsen needs the fine density");
        let src = device_data(src);
        let rho = device_data(aux[0]);
        assert_eq!(rho.data_box(), src.data_box(), "density layout mismatch");
        let dst = device_data_mut(dst);
        let sbox = src.data_box();
        let dst_dbox = dst.data_box();
        let sw = sbox.size().x;
        let n = (ratio.x * ratio.y) as f64;
        let flops = (5 * ratio.x * ratio.y + 2) as u32;
        launch_coarsen(dst, &[src, rho], coarse_boxes, 3, flops, move |row, y, (x0, x1), srcs| {
            let (s, m) = (srcs[0], srcs[1]);
            for x in x0..x1 {
                let f0 = IntVector::new(x * ratio.x, y * ratio.y);
                let mut mass = 0.0;
                let mut weighted = 0.0;
                let mut plain = 0.0;
                for j in 0..ratio.y {
                    for i in 0..ratio.x {
                        let q = f0 + IntVector::new(i, j);
                        let idx = ((q.y - sbox.lo.y) * sw + (q.x - sbox.lo.x)) as usize;
                        mass += m[idx];
                        weighted += s[idx] * m[idx];
                        plain += s[idx];
                    }
                }
                row[(x - dst_dbox.lo.x) as usize] =
                    if mass > 0.0 { weighted / mass } else { plain / n };
            }
        });
    }
}

#[cfg(test)]
mod tests {
    //! Every device operator must agree exactly with its host reference
    //! on random data — the correctness contract of the reproduction.

    use super::*;
    use rand::{Rng, SeedableRng};
    use rbamr_amr::ops as host_ops;
    use rbamr_amr::HostData;
    use rbamr_device::Device;
    use rbamr_geometry::Centring;
    use rbamr_perfmodel::Category;

    const R2: IntVector = IntVector::uniform(2);
    const R4: IntVector = IntVector::uniform(4);

    fn b(x0: i64, y0: i64, x1: i64, y1: i64) -> GBox {
        GBox::from_coords(x0, y0, x1, y1)
    }

    /// Build matching host and device data with identical random values.
    fn random_pair(
        device: &Device,
        cell_box: GBox,
        ghosts: IntVector,
        centring: Centring,
        seed: u64,
    ) -> (HostData<f64>, DeviceData<f64>) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut h = HostData::<f64>::new(cell_box, ghosts, centring);
        for v in h.as_mut_slice() {
            *v = rng.gen_range(-10.0..10.0);
        }
        let mut d = DeviceData::<f64>::new(device, cell_box, ghosts, centring);
        d.upload_all(h.as_slice(), Category::Other);
        (h, d)
    }

    fn assert_matches(h: &HostData<f64>, d: &DeviceData<f64>) {
        let dev_vals = d.download_all(Category::Other);
        for (i, (a, b)) in h.as_slice().iter().zip(&dev_vals).enumerate() {
            assert_eq!(a, b, "device/host mismatch at linear index {i}");
        }
    }

    fn check_refine(
        host_op: &dyn RefineOperator,
        dev_op: &dyn RefineOperator,
        centring: Centring,
        ratio: IntVector,
        seed: u64,
    ) {
        let device = Device::k20x();
        let coarse_box = b(0, 0, 10, 8);
        let fine_box = coarse_box.refine(ratio);
        let (hsrc, dsrc) = random_pair(&device, coarse_box, IntVector::ONE, centring, seed);
        let (mut hdst, mut ddst) =
            random_pair(&device, fine_box, IntVector::uniform(2), centring, seed + 1);
        // Fill region: the fine interior data box plus part of the ghosts.
        let fill = BoxList::from_box(centring.data_box(fine_box.grow(IntVector::ONE)));
        host_op.refine(&mut hdst, &hsrc, &fill, ratio);
        dev_op.refine(&mut ddst, &dsrc, &fill, ratio);
        assert_matches(&hdst, &ddst);
    }

    #[test]
    fn node_refine_matches_host() {
        check_refine(&host_ops::LinearNodeRefine, &DeviceLinearNodeRefine, Centring::Node, R2, 7);
        check_refine(&host_ops::LinearNodeRefine, &DeviceLinearNodeRefine, Centring::Node, R4, 8);
    }

    #[test]
    fn cell_refine_matches_host() {
        check_refine(
            &host_ops::ConservativeCellRefine,
            &DeviceConservativeCellRefine,
            Centring::Cell,
            R2,
            17,
        );
        check_refine(
            &host_ops::ConservativeCellRefine,
            &DeviceConservativeCellRefine,
            Centring::Cell,
            R4,
            18,
        );
    }

    #[test]
    fn constant_refine_matches_host() {
        check_refine(&host_ops::ConstantRefine, &DeviceConstantRefine, Centring::Cell, R2, 27);
    }

    #[test]
    fn side_refine_matches_host() {
        for axis in 0..2 {
            check_refine(
                &host_ops::LinearSideRefine { axis },
                &DeviceLinearSideRefine { axis },
                Centring::Side(axis),
                R2,
                37 + axis as u64,
            );
        }
    }

    fn check_coarsen(
        host_op: &dyn CoarsenOperator,
        dev_op: &dyn CoarsenOperator,
        centring: Centring,
        ratio: IntVector,
        with_density: bool,
        seed: u64,
    ) {
        let device = Device::k20x();
        let coarse_box = b(0, 0, 6, 5);
        let fine_box = coarse_box.refine(ratio);
        let (hsrc, dsrc) = random_pair(&device, fine_box, IntVector::ZERO, centring, seed);
        let (hrho, drho) = random_pair(&device, fine_box, IntVector::ZERO, centring, seed + 5);
        let (mut hdst, mut ddst) =
            random_pair(&device, coarse_box, IntVector::ZERO, centring, seed + 9);
        let fill = BoxList::from_box(centring.data_box(coarse_box));
        let haux: Vec<&dyn PatchData> = if with_density { vec![&hrho] } else { vec![] };
        let daux: Vec<&dyn PatchData> = if with_density { vec![&drho] } else { vec![] };
        host_op.coarsen(&mut hdst, &hsrc, &haux, &fill, ratio);
        dev_op.coarsen(&mut ddst, &dsrc, &daux, &fill, ratio);
        assert_matches(&hdst, &ddst);
    }

    #[test]
    fn volume_weighted_matches_host() {
        check_coarsen(
            &host_ops::VolumeWeightedCoarsen,
            &DeviceVolumeWeightedCoarsen,
            Centring::Cell,
            R2,
            false,
            47,
        );
        check_coarsen(
            &host_ops::VolumeWeightedCoarsen,
            &DeviceVolumeWeightedCoarsen,
            Centring::Cell,
            R4,
            false,
            48,
        );
    }

    #[test]
    fn mass_weighted_matches_host() {
        check_coarsen(
            &host_ops::MassWeightedCoarsen,
            &DeviceMassWeightedCoarsen,
            Centring::Cell,
            R2,
            true,
            57,
        );
    }

    #[test]
    fn node_injection_matches_host() {
        check_coarsen(
            &host_ops::NodeInjectionCoarsen,
            &DeviceNodeInjectionCoarsen,
            Centring::Node,
            R2,
            false,
            67,
        );
    }

    #[test]
    fn refine_batches_boxes_into_one_launch() {
        let device = Device::k20x();
        let (_, dsrc) = random_pair(&device, b(0, 0, 8, 8), IntVector::ONE, Centring::Cell, 1);
        let (_, mut ddst) =
            random_pair(&device, b(0, 0, 16, 16), IntVector::ONE, Centring::Cell, 2);
        device.reset_transfer_stats();
        let fill = BoxList::from_boxes([b(0, 0, 4, 4), b(8, 8, 12, 12)]);
        DeviceConservativeCellRefine.refine(&mut ddst, &dsrc, &fill, R2);
        assert_eq!(device.stats().kernel_launches, 1);
        // No PCIe traffic: refinement is device-resident.
        assert_eq!(device.stats().h2d_bytes, 0);
        assert_eq!(device.stats().d2h_bytes, 0);
    }
}
