//! Property tests of the simulated device: transfer integrity for
//! arbitrary offsets/sizes, allocation accounting under random
//! alloc/free sequences, and cost monotonicity.

use proptest::prelude::*;
use rbamr_device::{Device, Stream};
use rbamr_perfmodel::{Category, KernelShape};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Upload then download over any in-bounds window is the identity,
    /// and bytes are counted exactly.
    #[test]
    fn windowed_transfer_roundtrip(
        len in 1usize..2048,
        off_frac in 0.0f64..1.0,
        win_frac in 0.0f64..1.0,
    ) {
        let dev = Device::k20x();
        let mut buf = dev.alloc::<f64>(len);
        let offset = ((len - 1) as f64 * off_frac) as usize;
        let window = 1 + ((len - offset - 1) as f64 * win_frac) as usize;
        let src: Vec<f64> = (0..window).map(|i| i as f64 * 0.5 - 3.0).collect();
        dev.reset_transfer_stats();
        dev.upload(&mut buf, offset, &src, Category::Other);
        let mut out = vec![0.0; window];
        dev.download(&buf, offset, &mut out, Category::Other);
        prop_assert_eq!(&out, &src);
        let s = dev.stats();
        prop_assert_eq!(s.h2d_bytes, (window * 8) as u64);
        prop_assert_eq!(s.d2h_bytes, (window * 8) as u64);
        // Untouched prefix remains zero.
        if offset > 0 {
            let mut head = vec![9.0; offset];
            dev.download(&buf, 0, &mut head, Category::Other);
            prop_assert!(head.iter().all(|&v| v == 0.0));
        }
    }

    /// Allocation gauge: any sequence of allocs and frees leaves the
    /// gauge equal to the live total, and the peak equals the true
    /// high-water mark.
    #[test]
    fn allocation_accounting(ops in prop::collection::vec((1usize..4096, any::<bool>()), 1..30)) {
        let dev = Device::k20x();
        let mut live = Vec::new();
        let mut live_bytes = 0u64;
        let mut peak = 0u64;
        for (len, free_one) in ops {
            if free_one && !live.is_empty() {
                let (buf, bytes): (rbamr_device::DeviceBuffer<f64>, u64) = live.pop().unwrap();
                drop(buf);
                live_bytes -= bytes;
            } else {
                let buf = dev.alloc::<f64>(len);
                let bytes = (len * 8) as u64;
                live_bytes += bytes;
                peak = peak.max(live_bytes);
                live.push((buf, bytes));
            }
            prop_assert_eq!(dev.stats().allocated_bytes, live_bytes);
        }
        prop_assert_eq!(dev.stats().peak_allocated_bytes, peak);
    }

    /// Kernel cost is monotone in the work size and bounded below by
    /// the launch latency.
    #[test]
    fn kernel_cost_monotone(a in 1i64..1_000_000, b in 1i64..1_000_000) {
        let dev = Device::k20x();
        let stream = Stream::new(&dev);
        let (small, big) = (a.min(b), a.max(b));
        let t0 = dev.clock().total();
        dev.launch(&stream, Category::HydroKernel, KernelShape::streaming(small, 3, 5), |_k| ());
        let t1 = dev.clock().total();
        dev.launch(&stream, Category::HydroKernel, KernelShape::streaming(big, 3, 5), |_k| ());
        let t2 = dev.clock().total();
        let (c_small, c_big) = (t1 - t0, t2 - t1);
        prop_assert!(c_big >= c_small);
        let latency = dev.cost_model().machine().device().kernel_latency;
        prop_assert!(c_small >= latency);
    }
}

#[test]
fn capacity_is_a_hard_limit_across_many_buffers() {
    let dev = Device::k20x();
    let cap = dev.cost_model().machine().device().memory_bytes;
    let chunk = (cap / 4) as usize; // bytes
    let b1 = dev.alloc::<u8>(chunk);
    let b2 = dev.alloc::<u8>(chunk);
    let b3 = dev.alloc::<u8>(chunk);
    // A fourth chunk plus one byte must fail...
    assert!(dev.try_alloc::<u8>(chunk + 1).is_err());
    // ...and the failed attempt must not leak gauge bytes.
    assert_eq!(dev.stats().allocated_bytes, 3 * chunk as u64);
    drop((b1, b2, b3));
    assert_eq!(dev.stats().allocated_bytes, 0);
}
