//! Streams and events — the ordering constructs of the paper's host code.
//!
//! The original implementation launches the refine kernel on the fine
//! patch's stream, records an event, and makes the coarse stream wait on
//! it (Figure 5a). The simulated device executes synchronously, so
//! streams and events do not change *what* happens — but they preserve
//! the *structure* of the original host code (the `gpu-amr` operators
//! mirror Figure 5a line for line) and they validate usage: waiting on
//! an event that was never recorded, or on an event recorded on another
//! device's stream, is a programming error the real API would silently
//! deadlock or misorder on; here it is a typed [`StreamError`] and the
//! infallible path panics with it.

use crate::Device;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static NEXT_STREAM_ID: AtomicU64 = AtomicU64::new(0);

/// A stream/event protocol violation.
///
/// The simulated device executes synchronously, so these never corrupt
/// data — but each one corresponds to a real-API failure mode (deadlock
/// or silent misordering), so they are surfaced as typed errors and the
/// infallible [`Stream::wait_event`] panics with the error's message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamError {
    /// A stream waited on an event that was never recorded
    /// (`cudaStreamWaitEvent` on a fresh `cudaEvent_t` deadlocks).
    UnrecordedEvent { stream_id: u64 },
    /// A stream waited on an event recorded on a stream that lives on a
    /// *different* device — cross-device ordering the single-device
    /// model cannot express. Before the record point carried its device
    /// this passed validation silently whenever the event object itself
    /// was created on the waiter's device.
    CrossDeviceWait { stream_id: u64, stream_device: u64, event_device: u64 },
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::UnrecordedEvent { stream_id } => {
                write!(f, "stream {stream_id} waited on event that was never recorded")
            }
            StreamError::CrossDeviceWait { stream_id, stream_device, event_device } => write!(
                f,
                "stream {stream_id} (device {stream_device}) waited on an event from another \
                 device (recorded on device {event_device})"
            ),
        }
    }
}

impl std::error::Error for StreamError {}

/// An in-order execution queue on a device.
#[derive(Clone)]
pub struct Stream {
    id: u64,
    device_id: u64,
    /// Number of operations submitted to this stream so far.
    submitted: Arc<AtomicU64>,
}

impl Stream {
    /// Create a stream on `device`.
    pub fn new(device: &Device) -> Self {
        Self {
            id: NEXT_STREAM_ID.fetch_add(1, Ordering::Relaxed),
            device_id: device.id(),
            submitted: Arc::new(AtomicU64::new(0)),
        }
    }

    /// This stream's id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The id of the device the stream lives on.
    pub fn device_id(&self) -> u64 {
        self.device_id
    }

    /// Record that one operation was submitted; returns its sequence
    /// number within the stream.
    pub fn submit(&self) -> u64 {
        self.submitted.fetch_add(1, Ordering::Relaxed)
    }

    /// Number of operations submitted so far.
    pub fn submitted(&self) -> u64 {
        self.submitted.load(Ordering::Relaxed)
    }

    /// Block until all submitted work completes (`cudaStreamSynchronize`).
    /// Execution is synchronous, so this only validates the handle.
    pub fn synchronize(&self) {}

    /// Make this stream wait for `event` (`cudaStreamWaitEvent`).
    ///
    /// # Panics
    /// Panics with the [`StreamError`] message if the event was never
    /// recorded, or if its record point lives on a stream of a
    /// different device — the real API would deadlock or misorder;
    /// surfacing the bug loudly is strictly better.
    pub fn wait_event(&self, event: &Event) {
        if let Err(e) = self.try_wait_event(event) {
            panic!("{e}");
        }
    }

    /// Validating [`Stream::wait_event`]: checks the event is recorded
    /// and that the *record point's* stream lives on this stream's
    /// device (not merely the device the event object was created on).
    ///
    /// # Errors
    /// [`StreamError::UnrecordedEvent`] if the event was never
    /// recorded; [`StreamError::CrossDeviceWait`] if it was recorded on
    /// a stream of a different device.
    pub fn try_wait_event(&self, event: &Event) -> Result<(), StreamError> {
        let Some(point) = event.record_point() else {
            return Err(StreamError::UnrecordedEvent { stream_id: self.id });
        };
        if point.device_id != self.device_id {
            return Err(StreamError::CrossDeviceWait {
                stream_id: self.id,
                stream_device: self.device_id,
                event_device: point.device_id,
            });
        }
        Ok(())
    }
}

impl std::fmt::Debug for Stream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Stream#{} (device {})", self.id, self.device_id)
    }
}

/// Where an [`Event`] was recorded: stream, device, and the stream's
/// submission count at the record point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordPoint {
    pub stream_id: u64,
    pub device_id: u64,
    pub seq: u64,
}

/// A marker in a stream's timeline (`cudaEvent_t`).
pub struct Event {
    device_id: u64,
    /// The record point, if recorded. Carries the *recording stream's*
    /// device so a cross-device wait is caught even if the event object
    /// itself was created on the waiter's device.
    recorded_at: Mutex<Option<RecordPoint>>,
}

impl Event {
    /// Create an unrecorded event on `device` (`cudaEventCreate`).
    pub fn new(device: &Device) -> Self {
        Self { device_id: device.id(), recorded_at: Mutex::new(None) }
    }

    /// Record the event on `stream` (`cudaEventRecord`).
    ///
    /// # Panics
    /// Panics if the stream lives on a different device.
    pub fn record(&self, stream: &Stream) {
        assert_eq!(
            self.device_id,
            stream.device_id(),
            "event recorded on a stream from another device"
        );
        *self.recorded_at.lock() = Some(RecordPoint {
            stream_id: stream.id(),
            device_id: stream.device_id(),
            seq: stream.submitted(),
        });
    }

    /// True once the event has been recorded.
    pub fn is_recorded(&self) -> bool {
        self.recorded_at.lock().is_some()
    }

    /// The record point, if recorded.
    pub fn record_point(&self) -> Option<RecordPoint> {
        *self.recorded_at.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_count_submissions() {
        let dev = Device::k20x();
        let s = Stream::new(&dev);
        assert_eq!(s.submitted(), 0);
        assert_eq!(s.submit(), 0);
        assert_eq!(s.submit(), 1);
        assert_eq!(s.submitted(), 2);
        s.synchronize();
    }

    #[test]
    fn figure_5a_event_protocol() {
        // The exact sequence from the paper's host listing:
        // sync coarse; launch on fine; record event on fine; coarse waits.
        let dev = Device::k20x();
        let coarse = Stream::new(&dev);
        let fine = Stream::new(&dev);
        coarse.synchronize();
        fine.submit(); // the refine kernel
        let ev = Event::new(&dev);
        ev.record(&fine);
        coarse.wait_event(&ev);
        assert_eq!(
            ev.record_point(),
            Some(RecordPoint { stream_id: fine.id(), device_id: dev.id(), seq: 1 })
        );
    }

    #[test]
    #[should_panic(expected = "never recorded")]
    fn waiting_on_unrecorded_event_panics() {
        let dev = Device::k20x();
        let s = Stream::new(&dev);
        let ev = Event::new(&dev);
        s.wait_event(&ev);
    }

    #[test]
    #[should_panic(expected = "another device")]
    fn cross_device_event_record_panics() {
        let a = Device::k20x();
        let b = Device::k20x();
        let s = Stream::new(&a);
        let ev = Event::new(&b);
        ev.record(&s);
    }

    #[test]
    #[should_panic(expected = "another device")]
    fn cross_device_event_wait_panics() {
        // The gap this closes: the event is created *and* recorded on
        // device B — internally consistent, so `record` passes — but
        // the wait comes from a stream on device A. Validating only the
        // event's creation device would let this through.
        let a = Device::k20x();
        let b = Device::k20x();
        let b_stream = Stream::new(&b);
        let ev = Event::new(&b);
        ev.record(&b_stream);
        let a_stream = Stream::new(&a);
        a_stream.wait_event(&ev);
    }

    #[test]
    fn try_wait_event_returns_typed_errors() {
        let a = Device::k20x();
        let b = Device::k20x();
        let a_stream = Stream::new(&a);
        let ev = Event::new(&b);
        assert_eq!(
            a_stream.try_wait_event(&ev),
            Err(StreamError::UnrecordedEvent { stream_id: a_stream.id() })
        );
        let b_stream = Stream::new(&b);
        ev.record(&b_stream);
        assert_eq!(
            a_stream.try_wait_event(&ev),
            Err(StreamError::CrossDeviceWait {
                stream_id: a_stream.id(),
                stream_device: a.id(),
                event_device: b.id(),
            })
        );
        let ok_stream = Stream::new(&b);
        assert_eq!(ok_stream.try_wait_event(&ev), Ok(()));
    }

    #[test]
    fn stream_ids_are_unique() {
        let dev = Device::k20x();
        assert_ne!(Stream::new(&dev).id(), Stream::new(&dev).id());
    }
}
