//! Streams and events — the ordering constructs of the paper's host code.
//!
//! The original implementation launches the refine kernel on the fine
//! patch's stream, records an event, and makes the coarse stream wait on
//! it (Figure 5a). The simulated device executes synchronously, so
//! streams and events do not change *what* happens — but they preserve
//! the *structure* of the original host code (the `gpu-amr` operators
//! mirror Figure 5a line for line) and they validate usage: waiting on
//! an event that was never recorded is a programming error the real API
//! would silently deadlock on; here it panics.

use crate::Device;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static NEXT_STREAM_ID: AtomicU64 = AtomicU64::new(0);

/// An in-order execution queue on a device.
#[derive(Clone)]
pub struct Stream {
    id: u64,
    device_id: u64,
    /// Number of operations submitted to this stream so far.
    submitted: Arc<AtomicU64>,
}

impl Stream {
    /// Create a stream on `device`.
    pub fn new(device: &Device) -> Self {
        Self {
            id: NEXT_STREAM_ID.fetch_add(1, Ordering::Relaxed),
            device_id: device.id(),
            submitted: Arc::new(AtomicU64::new(0)),
        }
    }

    /// This stream's id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The id of the device the stream lives on.
    pub fn device_id(&self) -> u64 {
        self.device_id
    }

    /// Record that one operation was submitted; returns its sequence
    /// number within the stream.
    pub fn submit(&self) -> u64 {
        self.submitted.fetch_add(1, Ordering::Relaxed)
    }

    /// Number of operations submitted so far.
    pub fn submitted(&self) -> u64 {
        self.submitted.load(Ordering::Relaxed)
    }

    /// Block until all submitted work completes (`cudaStreamSynchronize`).
    /// Execution is synchronous, so this only validates the handle.
    pub fn synchronize(&self) {}

    /// Make this stream wait for `event` (`cudaStreamWaitEvent`).
    ///
    /// # Panics
    /// Panics if the event was never recorded — the real API would
    /// deadlock or misorder; surfacing the bug loudly is strictly better.
    pub fn wait_event(&self, event: &Event) {
        assert!(event.is_recorded(), "stream {} waited on event that was never recorded", self.id);
        assert_eq!(
            self.device_id, event.device_id,
            "stream {} waited on an event from another device",
            self.id
        );
    }
}

impl std::fmt::Debug for Stream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Stream#{} (device {})", self.id, self.device_id)
    }
}

/// A marker in a stream's timeline (`cudaEvent_t`).
pub struct Event {
    device_id: u64,
    /// `(stream id, sequence)` at the record point, if recorded.
    recorded_at: Mutex<Option<(u64, u64)>>,
}

impl Event {
    /// Create an unrecorded event on `device` (`cudaEventCreate`).
    pub fn new(device: &Device) -> Self {
        Self { device_id: device.id(), recorded_at: Mutex::new(None) }
    }

    /// Record the event on `stream` (`cudaEventRecord`).
    ///
    /// # Panics
    /// Panics if the stream lives on a different device.
    pub fn record(&self, stream: &Stream) {
        assert_eq!(
            self.device_id,
            stream.device_id(),
            "event recorded on a stream from another device"
        );
        *self.recorded_at.lock() = Some((stream.id(), stream.submitted()));
    }

    /// True once the event has been recorded.
    pub fn is_recorded(&self) -> bool {
        self.recorded_at.lock().is_some()
    }

    /// The `(stream id, sequence)` of the record point.
    pub fn record_point(&self) -> Option<(u64, u64)> {
        *self.recorded_at.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_count_submissions() {
        let dev = Device::k20x();
        let s = Stream::new(&dev);
        assert_eq!(s.submitted(), 0);
        assert_eq!(s.submit(), 0);
        assert_eq!(s.submit(), 1);
        assert_eq!(s.submitted(), 2);
        s.synchronize();
    }

    #[test]
    fn figure_5a_event_protocol() {
        // The exact sequence from the paper's host listing:
        // sync coarse; launch on fine; record event on fine; coarse waits.
        let dev = Device::k20x();
        let coarse = Stream::new(&dev);
        let fine = Stream::new(&dev);
        coarse.synchronize();
        fine.submit(); // the refine kernel
        let ev = Event::new(&dev);
        ev.record(&fine);
        coarse.wait_event(&ev);
        assert_eq!(ev.record_point(), Some((fine.id(), 1)));
    }

    #[test]
    #[should_panic(expected = "never recorded")]
    fn waiting_on_unrecorded_event_panics() {
        let dev = Device::k20x();
        let s = Stream::new(&dev);
        let ev = Event::new(&dev);
        s.wait_event(&ev);
    }

    #[test]
    #[should_panic(expected = "another device")]
    fn cross_device_event_record_panics() {
        let a = Device::k20x();
        let b = Device::k20x();
        let s = Stream::new(&a);
        let ev = Event::new(&b);
        ev.record(&s);
    }

    #[test]
    fn stream_ids_are_unique() {
        let dev = Device::k20x();
        assert_ne!(Stream::new(&dev).id(), Stream::new(&dev).id());
    }
}
