//! A simulated accelerator with a distinct memory space.
//!
//! The paper's central claim is *residency*: "all data is stored
//! exclusively on the GPU", with host↔device traffic limited to packed
//! halo buffers, compressed tag bitmaps and dt scalars. Lacking a
//! physical GPU, this crate substitutes a **simulated device** that makes
//! residency an *enforceable, testable invariant* rather than a
//! convention:
//!
//! * [`DeviceBuffer`] holds data the host cannot read or write directly —
//!   the only safe accessors require a [`Kernel`] token, which is only
//!   handed out inside [`Device::launch`].
//! * Transfers go through [`Device::upload`] / [`Device::download`]
//!   (or their offset variants), which count every byte. Tests and the
//!   benchmark harness read [`Device::stats`] to assert that a timestep
//!   moves exactly the packed-halo + tag-bitmap + scalar traffic the
//!   paper describes, and nothing more.
//! * Kernel bodies execute for real, data-parallel, on the host's
//!   thread pool (rayon); each launch also advances the rank's virtual
//!   [`rbamr_perfmodel::Clock`] by the modelled K20x kernel cost.
//! * [`Stream`]s and [`Event`]s reproduce the ordering constructs of the
//!   paper's Figure 5a host code.

pub mod launch;
pub mod memory;
pub mod stream;

pub use launch::{Kernel, LaunchConfig};
pub use memory::{DeviceBuffer, DeviceError};
pub use stream::{Event, RecordPoint, Stream, StreamError};

use parking_lot::Mutex;
use rbamr_fault::{FaultInjector, FaultKind};
use rbamr_perfmodel::{Category, Clock, CostModel, KernelShape, Machine};
use rbamr_telemetry::Recorder;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Transfer and allocation statistics for one device.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeviceStats {
    /// Bytes copied host → device.
    pub h2d_bytes: u64,
    /// Bytes copied device → host.
    pub d2h_bytes: u64,
    /// Number of host → device transfers.
    pub h2d_transfers: u64,
    /// Number of device → host transfers.
    pub d2h_transfers: u64,
    /// Number of kernel launches.
    pub kernel_launches: u64,
    /// Bytes currently allocated on the device.
    pub allocated_bytes: u64,
    /// High-water mark of allocated bytes.
    pub peak_allocated_bytes: u64,
}

struct DeviceInner {
    cost: CostModel,
    clock: Clock,
    /// Transfer/compute overlap (the paper's Section VI future work):
    /// when enabled, PCIe transfer time hides behind accumulated kernel
    /// time instead of serialising after it.
    overlap_enabled: std::sync::atomic::AtomicBool,
    /// Kernel seconds available to hide transfers behind, bounded by
    /// [`OVERLAP_WINDOW`].
    overlap_credit: Mutex<f64>,
    h2d_bytes: AtomicU64,
    d2h_bytes: AtomicU64,
    h2d_transfers: AtomicU64,
    d2h_transfers: AtomicU64,
    kernel_launches: AtomicU64,
    allocated: AtomicU64,
    peak_allocated: AtomicU64,
    /// Telemetry handle; the flag mirrors `recorder.is_enabled()` so
    /// the disabled path costs one relaxed load, no lock.
    recorder: Mutex<Recorder>,
    telemetry_on: AtomicBool,
    /// Device id, for diagnostics when several devices exist in one
    /// process (one per simulated rank).
    id: u64,
    /// Serialises "stream 0" semantics where needed.
    _default_stream: Mutex<()>,
    /// Seeded fault injector, shared with the rank's communicator.
    injector: Mutex<Option<Arc<FaultInjector>>>,
    /// CUDA-style sticky error: a fault injected on an infallible path
    /// (factory allocation, spill transfer) is latched here and the
    /// operation completes with valid data; the resilience driver polls
    /// [`Device::take_injected_fault`] at phase boundaries.
    pending_fault: Mutex<Option<DeviceError>>,
}

static NEXT_DEVICE_ID: AtomicU64 = AtomicU64::new(0);

/// Maximum kernel time a device may bank for hiding transfers — the
/// depth of the asynchronous pipeline (a handful of kernel launches'
/// worth on real hardware).
const OVERLAP_WINDOW: f64 = 1.0e-3;

/// A handle to one simulated accelerator. Cloning shares the device.
#[derive(Clone)]
pub struct Device {
    inner: Arc<DeviceInner>,
}

impl Device {
    /// Create a device modelled after `machine` (which must have an
    /// accelerator), charging virtual time to `clock`.
    ///
    /// # Panics
    /// Panics if `machine` has no accelerator.
    pub fn new(machine: Machine, clock: Clock) -> Self {
        assert!(
            machine.device.is_some(),
            "Device::new: machine {} has no accelerator",
            machine.name
        );
        Self {
            inner: Arc::new(DeviceInner {
                cost: CostModel::new(machine),
                clock,
                overlap_enabled: std::sync::atomic::AtomicBool::new(false),
                overlap_credit: Mutex::new(0.0),
                h2d_bytes: AtomicU64::new(0),
                d2h_bytes: AtomicU64::new(0),
                h2d_transfers: AtomicU64::new(0),
                d2h_transfers: AtomicU64::new(0),
                kernel_launches: AtomicU64::new(0),
                allocated: AtomicU64::new(0),
                peak_allocated: AtomicU64::new(0),
                recorder: Mutex::new(Recorder::disabled()),
                telemetry_on: AtomicBool::new(false),
                id: NEXT_DEVICE_ID.fetch_add(1, Ordering::Relaxed),
                _default_stream: Mutex::new(()),
                injector: Mutex::new(None),
                pending_fault: Mutex::new(None),
            }),
        }
    }

    /// A K20x-modelled device with a private clock — convenient for
    /// tests and examples.
    pub fn k20x() -> Self {
        Self::new(Machine::ipa_gpu(), Clock::new())
    }

    /// This device's id (unique within the process).
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// The virtual clock charged by this device.
    pub fn clock(&self) -> &Clock {
        &self.inner.clock
    }

    /// The cost model (machine parameters) behind this device.
    pub fn cost_model(&self) -> &CostModel {
        &self.inner.cost
    }

    /// Attach a telemetry recorder; every launch, transfer, and
    /// allocation reports spans/counters through it from then on.
    pub fn set_recorder(&self, recorder: Recorder) {
        self.inner.telemetry_on.store(recorder.is_enabled(), Ordering::Relaxed);
        *self.inner.recorder.lock() = recorder;
    }

    /// The attached recorder (a disabled one if never set), for layers
    /// above the device (pack/unpack, tag kernels) to record through.
    pub fn recorder(&self) -> Recorder {
        if self.inner.telemetry_on.load(Ordering::Relaxed) {
            self.inner.recorder.lock().clone()
        } else {
            Recorder::disabled()
        }
    }

    #[inline]
    fn telemetry(&self) -> Option<Recorder> {
        if self.inner.telemetry_on.load(Ordering::Relaxed) {
            Some(self.inner.recorder.lock().clone())
        } else {
            None
        }
    }

    /// Attach a seeded fault injector (usually the same one wired into
    /// the rank's communicator): allocations and transfers consult it
    /// for injected out-of-memory and copy faults.
    pub fn set_fault_injector(&self, injector: Arc<FaultInjector>) {
        *self.inner.injector.lock() = Some(injector);
    }

    /// The attached fault injector, if any.
    pub fn fault_injector(&self) -> Option<Arc<FaultInjector>> {
        self.inner.injector.lock().clone()
    }

    /// Take (and clear) the latched sticky fault, if an injected fault
    /// fired on an infallible path since the last poll. The resilience
    /// driver checks this at phase boundaries; the data written by the
    /// faulting op itself is valid (the fault is synthetic), so rolling
    /// back to the last checkpoint is always safe.
    pub fn take_injected_fault(&self) -> Option<DeviceError> {
        self.inner.pending_fault.lock().take()
    }

    /// Evaluate the injector for `kind`; counts `fault.injected` when
    /// it fires.
    fn injected(&self, kind: FaultKind) -> bool {
        let fired = match &*self.inner.injector.lock() {
            Some(inj) => inj.should_fire(kind).is_some(),
            None => false,
        };
        if fired {
            if let Some(rec) = self.telemetry() {
                rec.count("fault.injected", 1);
            }
        }
        fired
    }

    /// Latch `err` as the sticky fault (first one wins).
    fn latch_fault(&self, err: DeviceError) {
        self.inner.pending_fault.lock().get_or_insert(err);
    }

    /// Enable or disable transfer/compute overlap — the paper's Section
    /// VI future work ("overlapping data transfer and computation").
    /// When enabled, PCIe transfers hide behind kernel time accumulated
    /// since the last transfer (up to a bounded pipeline window), so
    /// only the exposed remainder is charged to the clock. Data
    /// semantics are unchanged; only the timing model differs.
    pub fn set_transfer_overlap(&self, enabled: bool) {
        self.inner.overlap_enabled.store(enabled, std::sync::atomic::Ordering::Relaxed);
        if !enabled {
            *self.inner.overlap_credit.lock() = 0.0;
        }
    }

    /// True if transfer/compute overlap is enabled.
    pub fn transfer_overlap(&self) -> bool {
        self.inner.overlap_enabled.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Charge a transfer, hiding as much as the overlap credit allows.
    fn charge_transfer(&self, category: Category, seconds: f64) {
        let exposed = if self.transfer_overlap() {
            let mut credit = self.inner.overlap_credit.lock();
            let hidden = seconds.min(*credit);
            *credit -= hidden;
            seconds - hidden
        } else {
            seconds
        };
        self.inner.clock.advance(category, exposed);
    }

    /// Bank kernel time as overlap credit.
    fn bank_credit(&self, seconds: f64) {
        if self.transfer_overlap() {
            let mut credit = self.inner.overlap_credit.lock();
            *credit = (*credit + seconds).min(OVERLAP_WINDOW);
        }
    }

    /// Allocate a zero-initialised device buffer of `len` elements.
    ///
    /// # Errors
    /// Returns [`DeviceError::OutOfMemory`] if the allocation would
    /// exceed the modelled device capacity (6 GB for the K20x), or if
    /// an attached fault injector simulates exhaustion at this
    /// allocation site.
    pub fn try_alloc<T: memory::DeviceCopy>(
        &self,
        len: usize,
    ) -> Result<DeviceBuffer<T>, DeviceError> {
        let bytes = (len * std::mem::size_of::<T>()) as u64;
        if self.injected(FaultKind::AllocFail) {
            return Err(DeviceError::OutOfMemory {
                requested: bytes,
                in_use: self.inner.allocated.load(Ordering::Relaxed),
                capacity: self.inner.cost.machine().device().memory_bytes,
            });
        }
        self.alloc_impl(len, bytes)
    }

    fn alloc_impl<T: memory::DeviceCopy>(
        &self,
        len: usize,
        bytes: u64,
    ) -> Result<DeviceBuffer<T>, DeviceError> {
        let capacity = self.inner.cost.machine().device().memory_bytes;
        let prev = self.inner.allocated.fetch_add(bytes, Ordering::Relaxed);
        if prev + bytes > capacity {
            self.inner.allocated.fetch_sub(bytes, Ordering::Relaxed);
            return Err(DeviceError::OutOfMemory { requested: bytes, in_use: prev, capacity });
        }
        self.inner.peak_allocated.fetch_max(prev + bytes, Ordering::Relaxed);
        if let Some(rec) = self.telemetry() {
            rec.count("device.allocs", 1);
            rec.count("device.alloc_bytes", bytes);
            rec.gauge_max("device.peak_bytes", prev + bytes);
        }
        Ok(DeviceBuffer::new_zeroed(len, self.clone()))
    }

    /// Allocate, panicking on genuine exhaustion (most call sites size
    /// buffers from problem configuration and treat exhaustion as fatal,
    /// exactly as `cudaMalloc` failure was fatal in the original code).
    ///
    /// An *injected* allocation fault does not panic: it is latched as a
    /// sticky error (see [`Device::take_injected_fault`]) and the
    /// allocation proceeds, mirroring how a CUDA sticky error leaves the
    /// API callable while poisoning the context.
    pub fn alloc<T: memory::DeviceCopy>(&self, len: usize) -> DeviceBuffer<T> {
        let bytes = (len * std::mem::size_of::<T>()) as u64;
        if self.injected(FaultKind::AllocFail) {
            self.latch_fault(DeviceError::OutOfMemory {
                requested: bytes,
                in_use: self.inner.allocated.load(Ordering::Relaxed),
                capacity: self.inner.cost.machine().device().memory_bytes,
            });
        }
        self.alloc_impl(len, bytes).unwrap_or_else(|e| panic!("device allocation failed: {e}"))
    }

    pub(crate) fn release_bytes(&self, bytes: u64) {
        self.inner.allocated.fetch_sub(bytes, Ordering::Relaxed);
    }

    /// Copy `src` into the device buffer starting at element `offset`
    /// (H2D). Advances the clock by the modelled PCIe cost, attributed
    /// to `category`.
    ///
    /// An injected copy fault is latched as a sticky error (see
    /// [`Device::take_injected_fault`]); the copy itself still happens.
    ///
    /// # Panics
    /// Panics if the destination range is out of bounds.
    pub fn upload<T: memory::DeviceCopy>(
        &self,
        dst: &mut DeviceBuffer<T>,
        offset: usize,
        src: &[T],
        category: Category,
    ) {
        if self.injected(FaultKind::CopyFail) {
            self.latch_fault(DeviceError::TransferFault {
                direction: "h2d",
                bytes: std::mem::size_of_val(src) as u64,
            });
        }
        self.upload_impl(dst, offset, src, category);
    }

    /// [`Device::upload`] surfacing an injected copy fault as a typed
    /// error instead of latching it. The copy is not performed on
    /// failure (a failed `cudaMemcpy` leaves the destination
    /// undefined).
    pub fn try_upload<T: memory::DeviceCopy>(
        &self,
        dst: &mut DeviceBuffer<T>,
        offset: usize,
        src: &[T],
        category: Category,
    ) -> Result<(), DeviceError> {
        if self.injected(FaultKind::CopyFail) {
            return Err(DeviceError::TransferFault {
                direction: "h2d",
                bytes: std::mem::size_of_val(src) as u64,
            });
        }
        self.upload_impl(dst, offset, src, category);
        Ok(())
    }

    fn upload_impl<T: memory::DeviceCopy>(
        &self,
        dst: &mut DeviceBuffer<T>,
        offset: usize,
        src: &[T],
        category: Category,
    ) {
        let rec = self.telemetry();
        let _span = rec.as_ref().map(|r| r.span("h2d-copy", category));
        dst.host_write(offset, src);
        let bytes = std::mem::size_of_val(src) as u64;
        self.inner.h2d_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.inner.h2d_transfers.fetch_add(1, Ordering::Relaxed);
        self.charge_transfer(category, self.inner.cost.pcie(bytes));
        if let Some(rec) = &rec {
            rec.count("device.h2d_bytes", bytes);
            rec.count("device.h2d_transfers", 1);
        }
    }

    /// Copy from the device buffer starting at element `offset` into
    /// `dst` (D2H). Advances the clock by the modelled PCIe cost.
    ///
    /// An injected copy fault is latched as a sticky error (see
    /// [`Device::take_injected_fault`]); the copy itself still happens.
    ///
    /// # Panics
    /// Panics if the source range is out of bounds.
    pub fn download<T: memory::DeviceCopy>(
        &self,
        src: &DeviceBuffer<T>,
        offset: usize,
        dst: &mut [T],
        category: Category,
    ) {
        if self.injected(FaultKind::CopyFail) {
            self.latch_fault(DeviceError::TransferFault {
                direction: "d2h",
                bytes: std::mem::size_of_val(dst) as u64,
            });
        }
        self.download_impl(src, offset, dst, category);
    }

    /// [`Device::download`] surfacing an injected copy fault as a typed
    /// error instead of latching it. The copy is not performed on
    /// failure.
    pub fn try_download<T: memory::DeviceCopy>(
        &self,
        src: &DeviceBuffer<T>,
        offset: usize,
        dst: &mut [T],
        category: Category,
    ) -> Result<(), DeviceError> {
        if self.injected(FaultKind::CopyFail) {
            return Err(DeviceError::TransferFault {
                direction: "d2h",
                bytes: std::mem::size_of_val(dst) as u64,
            });
        }
        self.download_impl(src, offset, dst, category);
        Ok(())
    }

    fn download_impl<T: memory::DeviceCopy>(
        &self,
        src: &DeviceBuffer<T>,
        offset: usize,
        dst: &mut [T],
        category: Category,
    ) {
        let rec = self.telemetry();
        let _span = rec.as_ref().map(|r| r.span("d2h-copy", category));
        src.host_read(offset, dst);
        let bytes = std::mem::size_of_val(dst) as u64;
        self.inner.d2h_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.inner.d2h_transfers.fetch_add(1, Ordering::Relaxed);
        self.charge_transfer(category, self.inner.cost.pcie(bytes));
        if let Some(rec) = &rec {
            rec.count("device.d2h_bytes", bytes);
            rec.count("device.d2h_transfers", 1);
        }
    }

    /// Launch a kernel: run `body` with a [`Kernel`] access token, count
    /// the launch, and advance the clock by the modelled device cost of
    /// `shape` attributed to `category`.
    ///
    /// The body executes synchronously (the original code's streams are
    /// modelled by [`Stream`] ordering bookkeeping; computation/transfer
    /// overlap is not exploited, matching the paper, which defers
    /// overlap to future work).
    pub fn launch<R>(
        &self,
        stream: &Stream,
        category: Category,
        shape: KernelShape,
        body: impl FnOnce(Kernel<'_>) -> R,
    ) -> R {
        self.launch_named(stream, "kernel", category, shape, body)
    }

    /// [`Device::launch`] with a kernel name for telemetry: the launch
    /// is recorded as a span and counted under
    /// `device.kernel_launches.<name>`.
    pub fn launch_named<R>(
        &self,
        _stream: &Stream,
        name: &'static str,
        category: Category,
        shape: KernelShape,
        body: impl FnOnce(Kernel<'_>) -> R,
    ) -> R {
        self.inner.kernel_launches.fetch_add(1, Ordering::Relaxed);
        let rec = self.telemetry();
        let _span = rec.as_ref().map(|r| r.span(name, category));
        if let Some(rec) = &rec {
            rec.count("device.kernel_launches", 1);
            // Static label pieces: no per-launch string allocation on
            // the hot path; the full name is composed at snapshot time.
            rec.count_scoped("device.kernel_launches.", name, 1);
        }
        let kernel_cost = self.inner.cost.device_kernel(shape);
        self.inner.clock.advance(category, kernel_cost);
        self.bank_credit(kernel_cost);
        body(Kernel::new(self))
    }

    /// Record an event at `stream`'s current position
    /// (`cudaEventRecord` on a fresh event) and count it under
    /// `device.events_recorded`. The returned event carries the record
    /// point — stream, device, and sequence — so later waits validate
    /// against where the event was *recorded*, not merely created.
    pub fn record_event(&self, stream: &Stream) -> Event {
        let event = Event::new(self);
        event.record(stream);
        if let Some(rec) = self.telemetry() {
            rec.count("device.events_recorded", 1);
        }
        event
    }

    /// Make `stream` wait on `event` (`cudaStreamWaitEvent`), surfacing
    /// the ordering edge as telemetry: a `stream-wait` span plus
    /// `device.stream_waits` and `device.stream_waits.<label>` counters.
    /// The label names the dependency being enforced (e.g.
    /// `halo-exchange` for a boundary batch gated on netsim completion,
    /// `interior-batch` for a copy gated on compute).
    ///
    /// # Panics
    /// Panics with the typed [`StreamError`] if the event was never
    /// recorded or its record point lives on another device.
    pub fn stream_wait(
        &self,
        stream: &Stream,
        event: &Event,
        label: &'static str,
        category: Category,
    ) {
        if let Some(rec) = self.telemetry() {
            let _span = rec.span("stream-wait", category);
            rec.count("device.stream_waits", 1);
            rec.count_scoped("device.stream_waits.", label, 1);
        }
        if let Err(e) = stream.try_wait_event(event) {
            panic!("{e}");
        }
    }

    /// Snapshot the transfer/allocation counters.
    pub fn stats(&self) -> DeviceStats {
        DeviceStats {
            h2d_bytes: self.inner.h2d_bytes.load(Ordering::Relaxed),
            d2h_bytes: self.inner.d2h_bytes.load(Ordering::Relaxed),
            h2d_transfers: self.inner.h2d_transfers.load(Ordering::Relaxed),
            d2h_transfers: self.inner.d2h_transfers.load(Ordering::Relaxed),
            kernel_launches: self.inner.kernel_launches.load(Ordering::Relaxed),
            allocated_bytes: self.inner.allocated.load(Ordering::Relaxed),
            peak_allocated_bytes: self.inner.peak_allocated.load(Ordering::Relaxed),
        }
    }

    /// Reset the transfer counters (not the allocation gauges). Used by
    /// tests that assert per-phase traffic.
    pub fn reset_transfer_stats(&self) {
        self.inner.h2d_bytes.store(0, Ordering::Relaxed);
        self.inner.d2h_bytes.store(0, Ordering::Relaxed);
        self.inner.h2d_transfers.store(0, Ordering::Relaxed);
        self.inner.d2h_transfers.store(0, Ordering::Relaxed);
        self.inner.kernel_launches.store(0, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Device")
            .field("id", &self.inner.id)
            .field("machine", &self.inner.cost.machine().name)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upload_download_roundtrip_counts_bytes() {
        let dev = Device::k20x();
        let mut buf = dev.alloc::<f64>(16);
        let src: Vec<f64> = (0..8).map(|i| i as f64).collect();
        dev.upload(&mut buf, 4, &src, Category::Other);
        let mut out = vec![0.0; 8];
        dev.download(&buf, 4, &mut out, Category::Other);
        assert_eq!(out, src);
        let s = dev.stats();
        assert_eq!(s.h2d_bytes, 64);
        assert_eq!(s.d2h_bytes, 64);
        assert_eq!(s.h2d_transfers, 1);
        assert_eq!(s.d2h_transfers, 1);
    }

    #[test]
    fn transfers_advance_the_clock() {
        let dev = Device::k20x();
        let mut buf = dev.alloc::<f64>(1024);
        let before = dev.clock().total();
        dev.upload(&mut buf, 0, &vec![1.0; 1024], Category::HaloExchange);
        let after = dev.clock().total();
        assert!(after > before);
        // The time lands in the right category.
        assert!(dev.clock().snapshot().get(Category::HaloExchange) > 0.0);
        assert_eq!(dev.clock().snapshot().get(Category::HydroKernel), 0.0);
    }

    #[test]
    fn launches_are_counted_and_costed() {
        let dev = Device::k20x();
        let stream = Stream::new(&dev);
        let shape = KernelShape::streaming(1000, 2, 1);
        let out = dev.launch(&stream, Category::HydroKernel, shape, |_k| 42);
        assert_eq!(out, 42);
        assert_eq!(dev.stats().kernel_launches, 1);
        let t = dev.clock().snapshot().get(Category::HydroKernel);
        assert!(t >= dev.cost_model().machine().device().kernel_latency);
    }

    #[test]
    fn allocation_tracks_capacity() {
        let dev = Device::k20x();
        let cap = dev.cost_model().machine().device().memory_bytes;
        let a = dev.alloc::<u8>((cap / 2) as usize);
        assert_eq!(dev.stats().allocated_bytes, cap / 2);
        let err = dev.try_alloc::<u8>((cap / 2 + 1) as usize).unwrap_err();
        match err {
            DeviceError::OutOfMemory { capacity, .. } => assert_eq!(capacity, cap),
            other => panic!("expected OutOfMemory, got {other}"),
        }
        drop(a);
        assert_eq!(dev.stats().allocated_bytes, 0);
        assert_eq!(dev.stats().peak_allocated_bytes, cap / 2);
    }

    #[test]
    fn kernel_token_grants_data_access() {
        let dev = Device::k20x();
        let stream = Stream::new(&dev);
        let mut buf = dev.alloc::<f64>(8);
        dev.launch(&stream, Category::Other, KernelShape::default(), |k| {
            for (i, v) in buf.as_mut_slice(&k).iter_mut().enumerate() {
                *v = i as f64;
            }
        });
        let mut out = vec![0.0; 8];
        dev.download(&buf, 0, &mut out, Category::Other);
        assert_eq!(out[7], 7.0);
    }

    #[test]
    fn device_ids_are_unique() {
        let a = Device::k20x();
        let b = Device::k20x();
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn reset_clears_transfer_counters_only() {
        let dev = Device::k20x();
        let mut buf = dev.alloc::<f64>(4);
        dev.upload(&mut buf, 0, &[1.0], Category::Other);
        dev.reset_transfer_stats();
        let s = dev.stats();
        assert_eq!(s.h2d_bytes, 0);
        assert_eq!(s.allocated_bytes, 32);
    }

    #[test]
    fn overlap_hides_transfer_time_behind_kernels() {
        let dev = Device::k20x();
        let stream = Stream::new(&dev);
        let mut buf = dev.alloc::<f64>(1 << 16);
        let payload = vec![0.0f64; 1 << 16];

        // Without overlap: kernel + transfer serialise.
        let shape = KernelShape::streaming(1 << 20, 4, 1);
        dev.launch(&stream, Category::HydroKernel, shape, |_k| ());
        let t0 = dev.clock().total();
        dev.upload(&mut buf, 0, &payload, Category::HaloExchange);
        let serial = dev.clock().total() - t0;

        // With overlap: the same transfer hides behind banked kernel time.
        dev.set_transfer_overlap(true);
        dev.launch(&stream, Category::HydroKernel, shape, |_k| ());
        let t1 = dev.clock().total();
        dev.upload(&mut buf, 0, &payload, Category::HaloExchange);
        let overlapped = dev.clock().total() - t1;

        assert!(overlapped < serial * 0.1, "overlap hid nothing: {overlapped} vs {serial}");
        // Credit is consumed: a second immediate transfer is exposed again.
        let t2 = dev.clock().total();
        dev.upload(&mut buf, 0, &payload, Category::HaloExchange);
        let second = dev.clock().total() - t2;
        assert!(second > overlapped, "credit not consumed");
        dev.set_transfer_overlap(false);
    }

    #[test]
    fn overlap_window_is_bounded() {
        let dev = Device::k20x();
        let stream = Stream::new(&dev);
        dev.set_transfer_overlap(true);
        // Bank far more kernel time than the window allows.
        for _ in 0..100 {
            dev.launch(
                &stream,
                Category::HydroKernel,
                KernelShape::streaming(1 << 20, 8, 1),
                |_k| (),
            );
        }
        // A transfer bigger than the window is only partially hidden.
        let big = vec![0.0f64; 4 << 20]; // 32 MB ~ 6 ms of PCIe
        let mut buf = dev.alloc::<f64>(4 << 20);
        let t0 = dev.clock().total();
        dev.upload(&mut buf, 0, &big, Category::HaloExchange);
        let charged = dev.clock().total() - t0;
        let full = dev.cost_model().pcie((32 << 20) as u64);
        assert!(charged > full - 1.1e-3, "more than the window was hidden");
        dev.set_transfer_overlap(false);
    }

    #[test]
    #[should_panic(expected = "has no accelerator")]
    fn cpu_only_machine_rejected() {
        let _ = Device::new(Machine::ipa_cpu_node(), Clock::new());
    }

    #[test]
    fn injected_alloc_fault_is_a_typed_error_on_try_alloc() {
        use rbamr_fault::{FaultPlan, FaultRule};
        let dev = Device::k20x();
        let plan = FaultPlan::new(3, vec![FaultRule::once(rbamr_fault::FaultKind::AllocFail, 1)]);
        dev.set_fault_injector(rbamr_fault::FaultInjector::new(Arc::new(plan), 0));
        let _a = dev.try_alloc::<f64>(8).expect("occurrence 0 is clean");
        let err = dev.try_alloc::<f64>(8).unwrap_err();
        assert!(matches!(err, DeviceError::OutOfMemory { requested: 64, .. }), "got {err}");
        let _b = dev.try_alloc::<f64>(8).expect("one-shot rule stops firing");
        // The failed allocation must not leak accounting.
        assert_eq!(dev.stats().allocated_bytes, 2 * 64);
    }

    #[test]
    fn injected_fault_on_infallible_paths_is_sticky_not_fatal() {
        use rbamr_fault::{FaultInjector, FaultKind, FaultPlan, FaultRule};
        let dev = Device::k20x();
        let plan = FaultPlan::new(
            5,
            vec![FaultRule::once(FaultKind::AllocFail, 0), FaultRule::once(FaultKind::CopyFail, 1)],
        );
        dev.set_fault_injector(FaultInjector::new(Arc::new(plan), 0));
        // Injected alloc fault: latched, allocation still succeeds.
        let mut buf = dev.alloc::<f64>(4);
        let latched = dev.take_injected_fault().expect("alloc fault latched");
        assert!(matches!(latched, DeviceError::OutOfMemory { .. }));
        assert!(dev.take_injected_fault().is_none(), "take clears the latch");
        // Copy occurrence 0 clean, occurrence 1 latched — data intact.
        dev.upload(&mut buf, 0, &[1.0, 2.0], Category::Other);
        dev.upload(&mut buf, 2, &[3.0, 4.0], Category::Other);
        let latched = dev.take_injected_fault().expect("copy fault latched");
        assert!(matches!(latched, DeviceError::TransferFault { direction: "h2d", .. }));
        let mut out = vec![0.0; 4];
        dev.download(&buf, 0, &mut out, Category::Other);
        assert_eq!(out, vec![1.0, 2.0, 3.0, 4.0], "sticky faults never corrupt data");
    }

    #[test]
    fn try_transfer_surfaces_injected_copy_fault() {
        use rbamr_fault::{FaultInjector, FaultKind, FaultPlan, FaultRule};
        let dev = Device::k20x();
        let plan = FaultPlan::new(8, vec![FaultRule::once(FaultKind::CopyFail, 0)]);
        dev.set_fault_injector(FaultInjector::new(Arc::new(plan), 0));
        let buf = dev.alloc::<f64>(4);
        let mut out = vec![7.0; 4];
        let err = dev.try_download(&buf, 0, &mut out, Category::Other).unwrap_err();
        assert_eq!(err, DeviceError::TransferFault { direction: "d2h", bytes: 32 });
        assert_eq!(out, vec![7.0; 4], "failed copy leaves the destination untouched");
        assert!(dev.try_download(&buf, 0, &mut out, Category::Other).is_ok());
        assert_eq!(out, vec![0.0; 4]);
        assert!(dev.take_injected_fault().is_none(), "try paths do not latch");
    }
}
