//! Device memory: typed buffers the host cannot touch directly.

use crate::launch::Kernel;
use crate::Device;
use std::fmt;

/// Types that may live in device memory (the analogue of CUDA's
/// requirement that device data be trivially copyable).
pub trait DeviceCopy: Copy + Send + Sync + Default + 'static {}

impl DeviceCopy for f64 {}
impl DeviceCopy for f32 {}
impl DeviceCopy for i64 {}
impl DeviceCopy for i32 {}
impl DeviceCopy for u64 {}
impl DeviceCopy for u32 {}
impl DeviceCopy for u8 {}

/// Errors from device operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceError {
    /// The allocation would exceed the modelled device memory capacity
    /// (or a fault injector simulated exhaustion).
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Bytes already allocated.
        in_use: u64,
        /// Device capacity in bytes.
        capacity: u64,
    },
    /// A host↔device transfer failed (injected fault — the simulated
    /// analogue of a `cudaMemcpy` error).
    TransferFault {
        /// `"h2d"` or `"d2h"`.
        direction: &'static str,
        /// Size of the failed transfer.
        bytes: u64,
    },
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::OutOfMemory { requested, in_use, capacity } => write!(
                f,
                "device out of memory: requested {requested} B with {in_use} B in use of {capacity} B"
            ),
            DeviceError::TransferFault { direction, bytes } => {
                write!(f, "device {direction} transfer of {bytes} B failed (injected fault)")
            }
        }
    }
}

impl std::error::Error for DeviceError {}

/// A contiguous allocation in device memory.
///
/// This is the analogue of the raw `double* d_cuda_buffer` inside the
/// paper's `CudaArrayData` (Figure 3). Host code cannot read or write
/// the contents: the only accessors are
///
/// * [`DeviceBuffer::as_slice`] / [`DeviceBuffer::as_mut_slice`], which
///   require a [`Kernel`] token (only available inside
///   [`Device::launch`](crate::Device::launch)), and
/// * [`Device::upload`](crate::Device::upload) /
///   [`Device::download`](crate::Device::download), which model and
///   count PCIe traffic.
///
/// Dropping the buffer returns its bytes to the device's allocation
/// gauge.
pub struct DeviceBuffer<T: DeviceCopy> {
    data: Vec<T>,
    device: Device,
}

impl<T: DeviceCopy> DeviceBuffer<T> {
    pub(crate) fn new_zeroed(len: usize, device: Device) -> Self {
        Self { data: vec![T::default(); len], device }
    }

    /// Number of elements in the buffer.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size of the buffer in bytes.
    pub fn size_bytes(&self) -> u64 {
        (self.data.len() * std::mem::size_of::<T>()) as u64
    }

    /// The device owning this buffer.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Read access from inside a kernel.
    ///
    /// # Panics
    /// Panics if the kernel token belongs to a different device —
    /// dereferencing another GPU's pointer is a bug the real hardware
    /// would also fault on.
    #[inline]
    pub fn as_slice(&self, kernel: &Kernel<'_>) -> &[T] {
        kernel.check_device(&self.device);
        &self.data
    }

    /// Write access from inside a kernel.
    ///
    /// # Panics
    /// Panics if the kernel token belongs to a different device.
    #[inline]
    pub fn as_mut_slice(&mut self, kernel: &Kernel<'_>) -> &mut [T] {
        kernel.check_device(&self.device);
        &mut self.data
    }

    pub(crate) fn host_write(&mut self, offset: usize, src: &[T]) {
        let end = offset.checked_add(src.len()).expect("DeviceBuffer: transfer range overflow");
        assert!(
            end <= self.data.len(),
            "DeviceBuffer: H2D range {offset}..{end} out of bounds (len {})",
            self.data.len()
        );
        self.data[offset..end].copy_from_slice(src);
    }

    pub(crate) fn host_read(&self, offset: usize, dst: &mut [T]) {
        let end = offset.checked_add(dst.len()).expect("DeviceBuffer: transfer range overflow");
        assert!(
            end <= self.data.len(),
            "DeviceBuffer: D2H range {offset}..{end} out of bounds (len {})",
            self.data.len()
        );
        dst.copy_from_slice(&self.data[offset..end]);
    }
}

impl<T: DeviceCopy> Drop for DeviceBuffer<T> {
    fn drop(&mut self) {
        self.device.release_bytes(self.size_bytes());
    }
}

impl<T: DeviceCopy> fmt::Debug for DeviceBuffer<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DeviceBuffer<{}>[{}] on device {}",
            std::any::type_name::<T>(),
            self.len(),
            self.device.id()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbamr_perfmodel::Category;

    #[test]
    fn buffers_start_zeroed() {
        let dev = Device::k20x();
        let buf = dev.alloc::<f64>(5);
        let mut out = vec![9.0; 5];
        dev.download(&buf, 0, &mut out, Category::Other);
        assert_eq!(out, vec![0.0; 5]);
    }

    #[test]
    fn size_accounting() {
        let dev = Device::k20x();
        let buf = dev.alloc::<u32>(10);
        assert_eq!(buf.len(), 10);
        assert_eq!(buf.size_bytes(), 40);
        assert!(!buf.is_empty());
        assert!(dev.alloc::<u8>(0).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn upload_out_of_bounds_panics() {
        let dev = Device::k20x();
        let mut buf = dev.alloc::<f64>(4);
        dev.upload(&mut buf, 2, &[1.0, 2.0, 3.0], Category::Other);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn download_out_of_bounds_panics() {
        let dev = Device::k20x();
        let buf = dev.alloc::<f64>(4);
        let mut out = vec![0.0; 5];
        dev.download(&buf, 0, &mut out, Category::Other);
    }

    #[test]
    #[should_panic(expected = "different device")]
    fn cross_device_access_faults() {
        let dev_a = Device::k20x();
        let dev_b = Device::k20x();
        let buf_b = dev_b.alloc::<f64>(4);
        let stream = crate::Stream::new(&dev_a);
        dev_a.launch(&stream, Category::Other, Default::default(), |k| {
            let _ = buf_b.as_slice(&k); // wrong device: must panic
        });
    }

    #[test]
    fn error_display_is_informative() {
        let e = DeviceError::OutOfMemory { requested: 10, in_use: 5, capacity: 12 };
        let s = e.to_string();
        assert!(s.contains("10") && s.contains("5") && s.contains("12"));
    }
}
