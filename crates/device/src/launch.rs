//! Kernel launch machinery: access tokens and data-parallel helpers.

use crate::Device;
use rayon::prelude::*;

/// Capability token proving code is executing "on the device".
///
/// A `Kernel` is only constructed inside
/// [`Device::launch`](crate::Device::launch); holding one is what lets a
/// kernel body call [`DeviceBuffer::as_slice`](crate::DeviceBuffer::as_slice)
/// and [`DeviceBuffer::as_mut_slice`](crate::DeviceBuffer::as_mut_slice).
/// This is the mechanism that turns the paper's residency claim into a
/// compile-time property: host code that tries to peek at device data
/// simply has no token.
pub struct Kernel<'d> {
    device: &'d Device,
}

impl<'d> Kernel<'d> {
    pub(crate) fn new(device: &'d Device) -> Self {
        Self { device }
    }

    pub(crate) fn check_device(&self, other: &Device) {
        assert!(
            std::ptr::eq(
                std::sync::Arc::as_ptr(&self.device.inner),
                std::sync::Arc::as_ptr(&other.inner)
            ),
            "kernel on device {} accessed a buffer on a different device {}",
            self.device.id(),
            other.id()
        );
    }

    /// The device this kernel runs on.
    pub fn device(&self) -> &Device {
        self.device
    }
}

/// Grid configuration for a launch, mirroring the `<<<nblocks,
/// BLOCK_SIZE>>>` computation in the paper's Figure 5a. The simulated
/// device does not need the block decomposition to execute, but the
/// config is part of the public API so kernels document their intended
/// thread geometry and tests can assert it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Total number of logical threads (one per element, per the paper:
    /// "we launch one CUDA thread per element").
    pub threads: usize,
    /// Threads per block.
    pub block_size: usize,
}

impl LaunchConfig {
    /// The paper's fixed block size.
    pub const BLOCK_SIZE: usize = 256;

    /// One thread per element with the default block size.
    pub fn for_elements(elements: usize) -> Self {
        Self { threads: elements, block_size: Self::BLOCK_SIZE }
    }

    /// Number of blocks: `(threads + block_size - 1) / block_size`,
    /// exactly the Figure 5a computation.
    pub fn blocks(&self) -> usize {
        self.threads.div_ceil(self.block_size)
    }
}

/// Run `f` for every logical thread index `0..threads` in parallel.
///
/// This is the execution model of a 1D CUDA grid: every invocation is
/// independent (the borrow checker enforces what CUDA merely assumes).
/// Bodies receive the global thread index.
pub fn par_for_each(threads: usize, f: impl Fn(usize) + Sync + Send) {
    (0..threads).into_par_iter().for_each(f);
}

/// Data-parallel map over the rows of a row-major 2D array: `f(row_index,
/// row_slice)` runs concurrently per row. `data.len()` must be a
/// multiple of `row_len`.
///
/// Writing kernels row-wise rather than element-wise lets safe Rust
/// express the same independence a CUDA thread-per-element kernel has,
/// without interior mutability: each row is a disjoint `&mut` chunk.
pub fn par_rows_mut(data: &mut [f64], row_len: usize, f: impl Fn(usize, &mut [f64]) + Sync + Send) {
    assert!(row_len > 0, "par_rows_mut: zero row length");
    assert_eq!(data.len() % row_len, 0, "par_rows_mut: data not a whole number of rows");
    data.par_chunks_mut(row_len).enumerate().for_each(|(r, row)| f(r, row));
}

/// Parallel reduction to a minimum over `0..n`, evaluating `f(i)` per
/// logical thread — the shape of the device dt-reduction kernel.
pub fn par_reduce_min(n: usize, f: impl Fn(usize) -> f64 + Sync + Send) -> f64 {
    (0..n).into_par_iter().map(f).reduce(|| f64::INFINITY, f64::min)
}

/// Parallel reduction to a sum over `0..n`.
///
/// Summation order is non-deterministic across the thread pool; callers
/// needing bitwise reproducibility (the dt reduction does not — it is a
/// min) should reduce on sorted keys instead.
pub fn par_reduce_sum(n: usize, f: impl Fn(usize) -> f64 + Sync + Send) -> f64 {
    (0..n).into_par_iter().map(f).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn launch_config_matches_figure_5a() {
        let cfg = LaunchConfig::for_elements(1000);
        assert_eq!(cfg.block_size, 256);
        assert_eq!(cfg.blocks(), 4); // (1000 + 255) / 256
        assert_eq!(LaunchConfig::for_elements(0).blocks(), 0);
        assert_eq!(LaunchConfig::for_elements(256).blocks(), 1);
        assert_eq!(LaunchConfig::for_elements(257).blocks(), 2);
    }

    #[test]
    fn par_for_each_visits_every_thread_once() {
        let n = 10_000;
        let hits = AtomicUsize::new(0);
        par_for_each(n, |_i| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), n);
    }

    #[test]
    fn par_rows_mut_gives_disjoint_rows() {
        let mut data = vec![0.0; 12];
        par_rows_mut(&mut data, 4, |r, row| {
            for (c, v) in row.iter_mut().enumerate() {
                *v = (r * 4 + c) as f64;
            }
        });
        let expect: Vec<f64> = (0..12).map(|i| i as f64).collect();
        assert_eq!(data, expect);
    }

    #[test]
    #[should_panic(expected = "whole number of rows")]
    fn par_rows_mut_checks_shape() {
        let mut data = vec![0.0; 10];
        par_rows_mut(&mut data, 4, |_, _| {});
    }

    #[test]
    fn reductions() {
        let v: Vec<f64> = vec![5.0, 2.0, 8.0, -1.0];
        assert_eq!(par_reduce_min(v.len(), |i| v[i]), -1.0);
        assert_eq!(par_reduce_sum(v.len(), |i| v[i]), 14.0);
        assert_eq!(par_reduce_min(0, |_| 0.0), f64::INFINITY);
        assert_eq!(par_reduce_sum(0, |_| 0.0), 0.0);
    }
}
