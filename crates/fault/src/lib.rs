//! Seeded, deterministic fault injection.
//!
//! A [`FaultPlan`] is a seed plus a schedule of fault rules. Each rank
//! builds one [`FaultInjector`] from the plan and threads it through its
//! communicator (`rbamr-netsim`) and its device (`rbamr-device`); every
//! potential fault site asks the injector whether to fire. Decisions are
//! pure functions of `(seed, kind, rank, occurrence)` — a splitmix64
//! hash, no RNG state — so a rerun with the same plan reproduces the
//! same fault sites bit for bit, regardless of thread interleaving,
//! as long as each rank's op sequence is deterministic (which the
//! run-through recovery protocol guarantees: every step attempt
//! executes the same op sequence on every rank whether or not faults
//! fire, and failure is only declared at the collective step commit).
//!
//! The injector never panics and never blocks: it only answers "does
//! occurrence `n` of kind `k` on this rank fire?" and records what
//! fired, for reproducibility checks and telemetry.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The kinds of faults the layer can inject.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultKind {
    /// A point-to-point message is lost on the wire: the frame arrives
    /// (so the receiver stays in lock-step) but carries no payload.
    MsgDrop,
    /// A point-to-point payload arrives bit-flipped; the frame is
    /// flagged so the receiver detects it (the stand-in for a real
    /// checksum mismatch).
    MsgCorrupt,
    /// A point-to-point message is delayed: delivery charges extra
    /// virtual time but the payload is intact. No error is raised.
    MsgDelay,
    /// A collective (allreduce / barrier / digest) fails; every
    /// participating rank observes the same typed error.
    CollectiveFault,
    /// A device allocation reports out-of-memory.
    AllocFail,
    /// A host↔device transfer fails.
    CopyFail,
    /// A box record in a partitioned-metadata exchange is corrupted in
    /// flight, tripping the digest verification on every rank.
    MetadataCorrupt,
    /// The rank dies permanently: it marks itself dead in the network,
    /// returns a typed error from its program, and never communicates
    /// again. Survivors observe [`rbamr_netsim`]'s dead-rank state
    /// (typed send errors, revoked collectives) and may shrink the job.
    ///
    /// Evaluated at the recovery driver's step boundaries — twice per
    /// step (once at the top of the step, once before checkpoint
    /// adoption), so occurrence `2*s` is "at the start of step s" and
    /// `2*s + 1` is "inside step s's checkpoint-adoption collective".
    RankKill,
}

/// Number of distinct [`FaultKind`]s (for per-kind counter arrays).
pub const NUM_KINDS: usize = 8;

impl FaultKind {
    /// Dense index for per-kind counters.
    pub fn index(self) -> usize {
        match self {
            FaultKind::MsgDrop => 0,
            FaultKind::MsgCorrupt => 1,
            FaultKind::MsgDelay => 2,
            FaultKind::CollectiveFault => 3,
            FaultKind::AllocFail => 4,
            FaultKind::CopyFail => 5,
            FaultKind::MetadataCorrupt => 6,
            FaultKind::RankKill => 7,
        }
    }

    /// All kinds, in `index()` order.
    pub fn all() -> [FaultKind; NUM_KINDS] {
        [
            FaultKind::MsgDrop,
            FaultKind::MsgCorrupt,
            FaultKind::MsgDelay,
            FaultKind::CollectiveFault,
            FaultKind::AllocFail,
            FaultKind::CopyFail,
            FaultKind::MetadataCorrupt,
            FaultKind::RankKill,
        ]
    }

    /// Short stable name (telemetry / JSON artifacts).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::MsgDrop => "msg_drop",
            FaultKind::MsgCorrupt => "msg_corrupt",
            FaultKind::MsgDelay => "msg_delay",
            FaultKind::CollectiveFault => "collective",
            FaultKind::AllocFail => "alloc_fail",
            FaultKind::CopyFail => "copy_fail",
            FaultKind::MetadataCorrupt => "metadata_corrupt",
            FaultKind::RankKill => "rank_kill",
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One rule in a fault schedule: fire faults of `kind` on the selected
/// ranks, within an occurrence window, with a given probability.
#[derive(Clone, Debug)]
pub struct FaultRule {
    /// What to inject.
    pub kind: FaultKind,
    /// Ranks the rule applies to; `None` means every rank.
    pub ranks: Option<Vec<usize>>,
    /// The window opens at this occurrence index (0-based, counted
    /// per rank per kind over the whole run — occurrence counters are
    /// never reset, so a transient window naturally stops firing after
    /// a rollback retries past it).
    pub after: u64,
    /// Number of in-window occurrences; `u64::MAX` makes the fault
    /// persistent (it keeps firing on every retry, driving degradation
    /// or retry exhaustion).
    pub count: u64,
    /// Per-occurrence firing probability in `[0, 1]`, evaluated as a
    /// pure hash of `(seed, kind, rank, occurrence)`.
    pub probability: f64,
}

impl FaultRule {
    /// A rule firing exactly once, at occurrence `at`, on every rank.
    pub fn once(kind: FaultKind, at: u64) -> Self {
        Self { kind, ranks: None, after: at, count: 1, probability: 1.0 }
    }

    /// A rule firing exactly once, at occurrence `at`, on one rank.
    pub fn once_on(kind: FaultKind, rank: usize, at: u64) -> Self {
        Self { kind, ranks: Some(vec![rank]), after: at, count: 1, probability: 1.0 }
    }

    /// A persistent rule: fires on every occurrence from `at` onwards.
    pub fn persistent(kind: FaultKind, rank: usize, at: u64) -> Self {
        Self { kind, ranks: Some(vec![rank]), after: at, count: u64::MAX, probability: 1.0 }
    }

    /// Kill `rank` permanently at the top of step `at_step` (0-based,
    /// counted over the run). See [`FaultKind::RankKill`] for the
    /// occurrence convention.
    pub fn rank_kill(rank: usize, at_step: u64) -> Self {
        Self::once_on(FaultKind::RankKill, rank, 2 * at_step)
    }

    /// Kill `rank` permanently inside step `at_step`'s
    /// checkpoint-adoption collective — survivors detect the death
    /// mid-collective rather than at a step boundary.
    pub fn rank_kill_at_adopt(rank: usize, at_step: u64) -> Self {
        Self::once_on(FaultKind::RankKill, rank, 2 * at_step + 1)
    }

    fn applies(&self, rank: usize, occurrence: u64) -> bool {
        if let Some(ranks) = &self.ranks {
            if !ranks.contains(&rank) {
                return false;
            }
        }
        occurrence >= self.after && occurrence - self.after < self.count
    }
}

/// A seed plus a schedule of fault rules — the whole input of a chaos
/// run. Cloning is cheap to share across ranks via `Arc`.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Seed mixed into every firing decision.
    pub seed: u64,
    /// The schedule.
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty (fault-free) plan.
    pub fn none() -> Self {
        Self::default()
    }

    /// A plan with the given seed and rules.
    pub fn new(seed: u64, rules: Vec<FaultRule>) -> Self {
        Self { seed, rules }
    }
}

/// A fault that fired: which kind, on which rank, at which occurrence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultSite {
    /// The injected kind.
    pub kind: FaultKind,
    /// The rank it fired on.
    pub rank: usize,
    /// The per-rank per-kind occurrence index it fired at.
    pub occurrence: u64,
}

impl std::fmt::Display for FaultSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}@rank{}#{}", self.kind, self.rank, self.occurrence)
    }
}

/// What one rank's injector did over a run: per-kind evaluation and
/// fire counts plus the ordered log of fired sites. Two runs of the
/// same plan over the same deterministic program must produce equal
/// reports — `chaos_bench` asserts exactly that.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct FaultReport {
    /// Occurrences evaluated, by `FaultKind::index()`.
    pub evaluated: [u64; NUM_KINDS],
    /// Faults fired, by `FaultKind::index()`.
    pub fired: [u64; NUM_KINDS],
    /// Every fired site, in firing order.
    pub sites: Vec<FaultSite>,
}

impl FaultReport {
    /// Total faults fired across all kinds.
    pub fn total_fired(&self) -> u64 {
        self.fired.iter().sum()
    }
}

/// splitmix64 — the standard 64-bit finalizer; enough mixing that
/// consecutive occurrences decorrelate.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// One rank's view of a [`FaultPlan`]: answers "does this occurrence
/// fire?" and keeps deterministic counters. Shared (via `Arc`) by the
/// rank's communicator and device.
pub struct FaultInjector {
    plan: Arc<FaultPlan>,
    rank: usize,
    evaluated: [AtomicU64; NUM_KINDS],
    fired: [AtomicU64; NUM_KINDS],
    sites: Mutex<Vec<FaultSite>>,
}

impl FaultInjector {
    /// An injector for `rank` under `plan`.
    pub fn new(plan: Arc<FaultPlan>, rank: usize) -> Arc<Self> {
        Arc::new(Self {
            plan,
            rank,
            evaluated: Default::default(),
            fired: Default::default(),
            sites: Mutex::new(Vec::new()),
        })
    }

    /// A no-op injector (empty plan) — convenient default.
    pub fn disabled(rank: usize) -> Arc<Self> {
        Self::new(Arc::new(FaultPlan::none()), rank)
    }

    /// The rank this injector serves.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.plan.seed
    }

    /// The deterministic decision hash for `(kind, occurrence)` on this
    /// rank — also used by call sites that need reproducible "random"
    /// choices (which byte to flip, how long to delay).
    pub fn decision_word(&self, kind: FaultKind, occurrence: u64) -> u64 {
        let mut h = splitmix64(self.plan.seed ^ 0xA5A5_5A5A_0F0F_F0F0);
        h = splitmix64(h ^ (kind.index() as u64).wrapping_mul(0x9E37_79B9));
        h = splitmix64(h ^ (self.rank as u64).wrapping_mul(0x85EB_CA6B));
        splitmix64(h ^ occurrence)
    }

    /// Advance the occurrence counter for `kind` and decide whether
    /// this occurrence fires. Records the site when it does. This is
    /// the single entry point for all fault sites.
    pub fn should_fire(&self, kind: FaultKind) -> Option<FaultSite> {
        if self.plan.rules.is_empty() {
            return None;
        }
        let occurrence = self.evaluated[kind.index()].fetch_add(1, Ordering::Relaxed);
        let mut fires = false;
        for rule in &self.plan.rules {
            if rule.kind == kind && rule.applies(self.rank, occurrence) {
                if rule.probability >= 1.0 {
                    fires = true;
                } else if rule.probability > 0.0 {
                    // Map the decision word to [0, 1).
                    let u =
                        (self.decision_word(kind, occurrence) >> 11) as f64 / (1u64 << 53) as f64;
                    fires |= u < rule.probability;
                }
                if fires {
                    break;
                }
            }
        }
        if !fires {
            return None;
        }
        let site = FaultSite { kind, rank: self.rank, occurrence };
        self.fired[kind.index()].fetch_add(1, Ordering::Relaxed);
        self.sites.lock().expect("fault site log poisoned").push(site);
        Some(site)
    }

    /// Total faults fired so far on this rank.
    pub fn total_fired(&self) -> u64 {
        self.fired.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Faults fired so far for one kind.
    pub fn fired_count(&self, kind: FaultKind) -> u64 {
        self.fired[kind.index()].load(Ordering::Relaxed)
    }

    /// Snapshot the run's report (counters + ordered fired-site log).
    pub fn report(&self) -> FaultReport {
        let mut out = FaultReport::default();
        for i in 0..NUM_KINDS {
            out.evaluated[i] = self.evaluated[i].load(Ordering::Relaxed);
            out.fired[i] = self.fired[i].load(Ordering::Relaxed);
        }
        out.sites = self.sites.lock().expect("fault site log poisoned").clone();
        out
    }
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("rank", &self.rank)
            .field("seed", &self.plan.seed)
            .field("rules", &self.plan.rules.len())
            .field("fired", &self.total_fired())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(rules: Vec<FaultRule>) -> Arc<FaultPlan> {
        Arc::new(FaultPlan::new(42, rules))
    }

    #[test]
    fn empty_plan_never_fires_and_counts_nothing() {
        let inj = FaultInjector::disabled(0);
        for _ in 0..100 {
            assert!(inj.should_fire(FaultKind::MsgDrop).is_none());
        }
        assert_eq!(inj.report(), FaultReport::default());
    }

    #[test]
    fn window_semantics() {
        let inj = FaultInjector::new(
            plan(vec![FaultRule {
                kind: FaultKind::AllocFail,
                ranks: None,
                after: 3,
                count: 2,
                probability: 1.0,
            }]),
            0,
        );
        let fired: Vec<bool> =
            (0..8).map(|_| inj.should_fire(FaultKind::AllocFail).is_some()).collect();
        assert_eq!(fired, vec![false, false, false, true, true, false, false, false]);
        let rep = inj.report();
        assert_eq!(rep.evaluated[FaultKind::AllocFail.index()], 8);
        assert_eq!(rep.fired[FaultKind::AllocFail.index()], 2);
        assert_eq!(
            rep.sites,
            vec![
                FaultSite { kind: FaultKind::AllocFail, rank: 0, occurrence: 3 },
                FaultSite { kind: FaultKind::AllocFail, rank: 0, occurrence: 4 },
            ]
        );
    }

    #[test]
    fn rank_filter_applies() {
        let rules = vec![FaultRule {
            kind: FaultKind::MsgDrop,
            ranks: Some(vec![1]),
            after: 0,
            count: u64::MAX,
            probability: 1.0,
        }];
        let r0 = FaultInjector::new(plan(rules.clone()), 0);
        let r1 = FaultInjector::new(plan(rules), 1);
        assert!(r0.should_fire(FaultKind::MsgDrop).is_none());
        assert!(r1.should_fire(FaultKind::MsgDrop).is_some());
    }

    #[test]
    fn kinds_do_not_cross_talk() {
        let inj = FaultInjector::new(plan(vec![FaultRule::once(FaultKind::MsgCorrupt, 0)]), 0);
        assert!(inj.should_fire(FaultKind::MsgDrop).is_none());
        assert!(inj.should_fire(FaultKind::CollectiveFault).is_none());
        assert!(inj.should_fire(FaultKind::MsgCorrupt).is_some());
        assert!(inj.should_fire(FaultKind::MsgCorrupt).is_none(), "count=1 window closed");
    }

    #[test]
    fn decisions_are_reproducible_across_instances() {
        let rules = vec![FaultRule {
            kind: FaultKind::MsgCorrupt,
            ranks: None,
            after: 0,
            count: u64::MAX,
            probability: 0.3,
        }];
        let a = FaultInjector::new(plan(rules.clone()), 2);
        let b = FaultInjector::new(plan(rules), 2);
        let da: Vec<bool> =
            (0..200).map(|_| a.should_fire(FaultKind::MsgCorrupt).is_some()).collect();
        let db: Vec<bool> =
            (0..200).map(|_| b.should_fire(FaultKind::MsgCorrupt).is_some()).collect();
        assert_eq!(da, db);
        assert_eq!(a.report(), b.report());
        // A probability of 0.3 over 200 trials fires some but not all.
        let n = da.iter().filter(|&&x| x).count();
        assert!(n > 10 && n < 190, "p=0.3 fired {n}/200");
    }

    #[test]
    fn different_seeds_differ() {
        let mk = |seed| {
            FaultInjector::new(
                Arc::new(FaultPlan::new(
                    seed,
                    vec![FaultRule {
                        kind: FaultKind::MsgDrop,
                        ranks: None,
                        after: 0,
                        count: u64::MAX,
                        probability: 0.5,
                    }],
                )),
                0,
            )
        };
        let a = mk(1);
        let b = mk(2);
        let da: Vec<bool> = (0..64).map(|_| a.should_fire(FaultKind::MsgDrop).is_some()).collect();
        let db: Vec<bool> = (0..64).map(|_| b.should_fire(FaultKind::MsgDrop).is_some()).collect();
        assert_ne!(da, db);
    }

    #[test]
    fn decision_word_is_pure() {
        let inj = FaultInjector::disabled(3);
        assert_eq!(
            inj.decision_word(FaultKind::MsgDelay, 7),
            inj.decision_word(FaultKind::MsgDelay, 7)
        );
        assert_ne!(
            inj.decision_word(FaultKind::MsgDelay, 7),
            inj.decision_word(FaultKind::MsgDelay, 8)
        );
    }
}
