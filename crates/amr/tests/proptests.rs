//! Property-based tests of the AMR framework's global invariants:
//! ghost filling reproduces a global reference field for arbitrary
//! patch layouts, clustering covers every tag with disjoint boxes,
//! nesting holds after arbitrary regrids, and partitioning is a
//! permutation-stable total assignment.

use proptest::prelude::*;
use rbamr_amr::boundary::ZeroGradientBoundary;
use rbamr_amr::cluster::{cluster_tags, ClusterParams};
use rbamr_amr::ops::ConservativeCellRefine;
use rbamr_amr::schedule::FillSpec;
use rbamr_amr::{
    balance, GridGeometry, HostData, HostDataFactory, PatchHierarchy, RefineSchedule,
    VariableRegistry,
};
use rbamr_geometry::{BoxList, Centring, GBox, IntVector};
use std::sync::Arc;

/// Carve the domain `[0,n)²` into 1–4 disjoint rectangles by random
/// guillotine cuts.
fn arb_layout(n: i64) -> impl Strategy<Value = Vec<GBox>> {
    (1i64..n - 1, 1i64..n - 1, 0u8..4).prop_map(move |(cx, cy, mode)| {
        let d = GBox::from_coords(0, 0, n, n);
        match mode {
            0 => vec![d],
            1 => {
                let (a, b) = d.split(0, cx);
                vec![a, b]
            }
            2 => {
                let (a, b) = d.split(1, cy);
                vec![a, b]
            }
            _ => {
                let (a, b) = d.split(0, cx);
                let (a1, a2) = a.split(1, cy);
                let (b1, b2) = b.split(1, cy);
                vec![a1, a2, b1, b2]
            }
        }
    })
}

fn global_field(p: IntVector) -> f64 {
    (p.x * 37 + p.y * 101) as f64 * 0.25
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Ghost filling is layout invariant: however the level is carved
    /// into patches, after a fill every in-domain ghost cell holds the
    /// value of the global reference field.
    #[test]
    fn ghost_fill_reproduces_global_field(layout in arb_layout(16)) {
        let mut reg = VariableRegistry::new(Arc::new(HostDataFactory::new()));
        let var = reg.register("q", Centring::Cell, IntVector::uniform(2));
        let domain = GBox::from_coords(0, 0, 16, 16);
        let mut h = PatchHierarchy::new(
            GridGeometry::unit(1.0),
            BoxList::from_box(domain),
            IntVector::uniform(2),
            1,
            0,
            1,
        );
        let owners = vec![0; layout.len()];
        h.set_level(0, layout, owners, &reg);
        // Fill interiors from the reference field.
        for p in h.level_mut(0).local_mut() {
            let cb = p.cell_box();
            let d = p.host_mut::<f64>(var);
            for q in cb.iter() {
                *d.at_mut(q) = global_field(q);
            }
        }
        let sched = RefineSchedule::new(&h, &reg, 0, &[FillSpec { var, refine_op: None }]);
        sched.fill(&mut h, &reg, &ZeroGradientBoundary, None, 0.0, rbamr_perfmodel::Category::HaloExchange);
        for p in h.level(0).local() {
            let d: &HostData<f64> = p.host(var);
            for q in p.data(var).ghost_cell_box().iter() {
                if domain.contains(q) {
                    prop_assert_eq!(d.at(q), global_field(q), "cell {} of patch {:?}", q, p.id());
                }
            }
        }
    }

    /// Clustering covers every tagged cell with disjoint boxes whose
    /// overall efficiency is at least half the requested threshold
    /// (the bound is loose near min_size, never vacuous).
    #[test]
    fn clustering_covers_with_disjoint_boxes(
        seeds in prop::collection::vec((0i64..40, 0i64..40), 1..30),
        eff in 0.5f64..0.95,
    ) {
        let tags: Vec<IntVector> = seeds
            .into_iter()
            .map(|(x, y)| IntVector::new(x, y))
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let params = ClusterParams { efficiency: eff, min_size: 2, max_size: 64 };
        let boxes = cluster_tags(&tags, &params);
        for t in &tags {
            prop_assert!(boxes.iter().any(|b| b.contains(*t)), "tag {t} uncovered");
        }
        for (i, a) in boxes.iter().enumerate() {
            for b in &boxes[i + 1..] {
                prop_assert!(!a.intersects(*b), "{a:?} overlaps {b:?}");
            }
            prop_assert!(a.size().x <= 64 && a.size().y <= 64);
        }
    }

    /// SFC partitioning assigns every box exactly once, uses only valid
    /// ranks, and never leaves a rank idle when there are enough boxes.
    #[test]
    fn partitioning_is_total_and_balanced(
        nx in 2i64..6,
        ny in 2i64..6,
        nranks in 1usize..6,
    ) {
        let mut boxes = Vec::new();
        for j in 0..ny {
            for i in 0..nx {
                boxes.push(GBox::from_coords(i * 8, j * 8, i * 8 + 8, j * 8 + 8));
            }
        }
        let owners = balance::partition_sfc(&boxes, nranks);
        prop_assert_eq!(owners.len(), boxes.len());
        for &o in &owners {
            prop_assert!(o < nranks);
        }
        if boxes.len() >= nranks {
            for r in 0..nranks {
                prop_assert!(owners.contains(&r), "rank {r} idle");
            }
            // Equal tiles: imbalance bounded by one tile's share.
            let imb = balance::imbalance(&boxes, &owners, nranks);
            let bound = 1.0 + nranks as f64 / boxes.len() as f64;
            prop_assert!(imb <= bound + 1e-9, "imbalance {imb} > {bound}");
        }
    }

    /// Conservative refinement preserves the coarse mean for arbitrary
    /// random data and both paper ratios.
    #[test]
    fn conservative_refine_preserves_means(
        vals in prop::collection::vec(-10.0f64..10.0, 36),
        ratio in prop::sample::select(vec![2i64, 4]),
    ) {
        use rbamr_amr::ops::RefineOperator;
        let coarse_box = GBox::from_coords(0, 0, 6, 6);
        let mut src = HostData::<f64>::cell(coarse_box, IntVector::ZERO);
        src.as_mut_slice().copy_from_slice(&vals);
        let r = IntVector::uniform(ratio);
        let fine_box = coarse_box.refine(r);
        let mut dst = HostData::<f64>::cell(fine_box, IntVector::ZERO);
        ConservativeCellRefine.refine(&mut dst, &src, &BoxList::from_box(fine_box), r);
        for cp in coarse_box.iter() {
            let mut sum = 0.0;
            for j in 0..ratio {
                for i in 0..ratio {
                    sum += dst.at(cp.scale(r) + IntVector::new(i, j));
                }
            }
            let mean = sum / (ratio * ratio) as f64;
            prop_assert!((mean - src.at(cp)).abs() < 1e-12, "cell {cp}: {mean} vs {}", src.at(cp));
        }
    }

    /// Pack/unpack over an arbitrary ghost overlap is exactly a copy.
    #[test]
    fn stream_roundtrip_equals_copy(
        dst_x in -8i64..8,
        src_off in 1i64..6,
        g in 1i64..3,
    ) {
        use rbamr_amr::patchdata::PatchData;
        let ghosts = IntVector::uniform(g);
        let dst_box = GBox::from_coords(dst_x, 0, dst_x + 6, 6);
        let src_box = dst_box.shift(IntVector::new(src_off, 0));
        let mut src = HostData::<f64>::cell(src_box, ghosts);
        for q in src.data_box().iter() {
            *src.at_mut(q) = global_field(q);
        }
        let ov = rbamr_geometry::ghost_overlaps(dst_box, ghosts, src_box, Centring::Cell, IntVector::ZERO);
        let mut a = HostData::<f64>::cell(dst_box, ghosts);
        let mut b = HostData::<f64>::cell(dst_box, ghosts);
        a.copy_from(&src, &ov);
        let stream = src.pack(&ov);
        prop_assert_eq!(stream.len(), src.stream_size(&ov));
        b.unpack(&ov, &stream);
        for q in a.data_box().iter() {
            prop_assert_eq!(a.at(q), b.at(q), "mismatch at {}", q);
        }
    }
}
