//! Property tests of the structure-keyed schedule cache.
//!
//! Over arbitrary two-level hierarchies viewed from every rank of a
//! 1–4 rank job:
//!
//! * rebuilding schedules for a hierarchy with identical structure
//!   (the steady-regrid / checkpoint-restore case: a *fresh*
//!   `PatchHierarchy` object with the same boxes and owners) is a pure
//!   cache hit, and the cached schedule is plan-identical to a fresh
//!   uncached build;
//! * any box or owner change invalidates exactly the affected levels —
//!   a fine-level change leaves the level-0 fill cached but misses the
//!   fine fill and the coarsen sync; a coarse-level change misses
//!   everything (the fine fill interpolates from the coarse level, so
//!   its key binds the coarser digest too).

use proptest::prelude::*;
use rbamr_amr::ops::{ConservativeCellRefine, VolumeWeightedCoarsen};
use rbamr_amr::schedule::{CoarsenSpec, FillSpec};
use rbamr_amr::{
    GridGeometry, HostDataFactory, PatchHierarchy, ScheduleBuild, ScheduleCache, VariableRegistry,
};
use rbamr_geometry::{BoxList, Centring, GBox, IntVector};
use std::sync::Arc;

/// Boxes for the tiles selected by `mask` on an `n`×`n` grid of
/// `size`×`size` tiles.
fn masked_tiles(mask: u64, n: i64, size: i64) -> Vec<GBox> {
    let mut out = Vec::new();
    for t in 0..(n * n) {
        if mask >> t & 1 == 1 {
            let lo = IntVector::new(t % n * size, t / n * size);
            out.push(GBox::new(lo, lo + IntVector::uniform(size)));
        }
    }
    out
}

struct Structure {
    coarse_boxes: Vec<GBox>,
    coarse_owners: Vec<usize>,
    fine_boxes: Vec<GBox>,
    fine_owners: Vec<usize>,
}

/// A fresh registry + hierarchy with the given replicated structure, as
/// seen from `rank` (this is exactly what a checkpoint restore does:
/// brand-new objects, identical structure).
fn setup(
    s: &Structure,
    rank: usize,
    nranks: usize,
) -> (PatchHierarchy, VariableRegistry, FillSpec) {
    let mut reg = VariableRegistry::new(Arc::new(HostDataFactory::new()));
    let q = reg.register("q", Centring::Cell, IntVector::uniform(2));
    let mut h = PatchHierarchy::new(
        GridGeometry::unit(1.0),
        BoxList::from_box(GBox::from_coords(0, 0, 32, 32)),
        IntVector::uniform(2),
        2,
        rank,
        nranks,
    );
    h.set_level(0, s.coarse_boxes.clone(), s.coarse_owners.clone(), &reg);
    h.set_level(1, s.fine_boxes.clone(), s.fine_owners.clone(), &reg);
    let fill = FillSpec { var: q, refine_op: Some(Arc::new(ConservativeCellRefine)) };
    (h, reg, fill)
}

fn sync_specs(fill: &FillSpec) -> [CoarsenSpec; 1] {
    [CoarsenSpec { var: fill.var, op: Arc::new(VolumeWeightedCoarsen), aux: vec![] }]
}

fn structure(coarse_mask: u32, fine_bits: u64, owner_seed: &[usize], nranks: usize) -> Structure {
    let coarse_boxes = masked_tiles(coarse_mask as u64, 4, 8);
    let fine_boxes = masked_tiles(fine_bits, 8, 8);
    let coarse_owners = (0..coarse_boxes.len()).map(|i| owner_seed[i] % nranks).collect();
    let fine_owners = (0..fine_boxes.len()).map(|i| owner_seed[16 + i] % nranks).collect();
    Structure { coarse_boxes, coarse_owners, fine_boxes, fine_owners }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Same structure in a fresh hierarchy object → every lookup hits,
    /// the hit returns the identical `Arc`, and the cached plan equals
    /// a fresh uncached build digest-for-digest.
    #[test]
    fn identical_structure_is_a_pure_cache_hit(
        nranks in 1usize..5,
        coarse_mask in 1u32..65536,
        fine_bits in 1u64..(1 << 48),
        owner_seed in proptest::collection::vec(0usize..4, 80),
    ) {
        let s = structure(coarse_mask, fine_bits, &owner_seed, nranks);
        for rank in 0..nranks {
            let (h1, reg1, fill1) = setup(&s, rank, nranks);
            let mut cache = ScheduleCache::new();
            let (first_r0, first_r1, first_c) = {
                let mut build = ScheduleBuild::with_cache(&mut cache);
                (
                    build.refine(&h1, &reg1, 0, std::slice::from_ref(&fill1)),
                    build.refine(&h1, &reg1, 1, std::slice::from_ref(&fill1)),
                    build.coarsen(&h1, &reg1, 1, &sync_specs(&fill1)),
                )
            };
            prop_assert_eq!(cache.misses(), 3);
            prop_assert_eq!(cache.hits(), 0);

            // Restore-like: brand-new hierarchy/registry, same structure.
            let (h2, reg2, fill2) = setup(&s, rank, nranks);
            let mut build = ScheduleBuild::with_cache(&mut cache);
            let again_r0 = build.refine(&h2, &reg2, 0, std::slice::from_ref(&fill2));
            let again_r1 = build.refine(&h2, &reg2, 1, std::slice::from_ref(&fill2));
            let again_c = build.coarsen(&h2, &reg2, 1, &sync_specs(&fill2));
            prop_assert_eq!(cache.misses(), 3, "rebuild must not miss");
            prop_assert_eq!(cache.hits(), 3, "rebuild must hit every lookup");
            prop_assert!(Arc::ptr_eq(&first_r0, &again_r0));
            prop_assert!(Arc::ptr_eq(&first_r1, &again_r1));
            prop_assert!(Arc::ptr_eq(&first_c, &again_c));

            // Cached plans are exactly what an uncached build produces.
            let mut fresh = ScheduleBuild::indexed();
            prop_assert_eq!(
                again_r0.plan_digest(),
                fresh.refine(&h2, &reg2, 0, std::slice::from_ref(&fill2)).plan_digest()
            );
            prop_assert_eq!(
                again_r1.plan_digest(),
                fresh.refine(&h2, &reg2, 1, std::slice::from_ref(&fill2)).plan_digest()
            );
            prop_assert_eq!(
                again_c.plan_digest(),
                fresh.coarsen(&h2, &reg2, 1, &sync_specs(&fill2)).plan_digest()
            );
        }
    }

    /// A box or owner change on the fine level invalidates the fine
    /// fill and the coarsen sync but leaves the level-0 fill cached; a
    /// coarse-level change invalidates everything.
    #[test]
    fn structure_change_invalidates_exactly_the_affected_levels(
        nranks in 1usize..5,
        coarse_mask in 1u32..65536,
        fine_bits in 1u64..(1 << 48),
        owner_seed in proptest::collection::vec(0usize..4, 80),
        flip_tile in 0u32..48,
        change_owner in any::<bool>(),
    ) {
        let s = structure(coarse_mask, fine_bits, &owner_seed, nranks);
        // Mutate the fine level: either flip one tile of the mask (a
        // box change) or, in multi-rank jobs, reassign one patch (an
        // owner change that keeps every box identical).
        let owner_change_possible = nranks > 1 && !s.fine_owners.is_empty();
        let mutated_bits = if change_owner && owner_change_possible {
            fine_bits
        } else {
            let flipped = fine_bits ^ (1 << flip_tile);
            if flipped == 0 { fine_bits | 2 } else { flipped }
        };
        let mut fine = structure(coarse_mask, mutated_bits, &owner_seed, nranks);
        if change_owner && owner_change_possible {
            fine.fine_owners[0] = (fine.fine_owners[0] + 1) % nranks;
        }

        for rank in 0..nranks {
            let (h1, reg1, fill1) = setup(&s, rank, nranks);
            let mut cache = ScheduleCache::new();
            {
                let mut build = ScheduleBuild::with_cache(&mut cache);
                build.refine(&h1, &reg1, 0, std::slice::from_ref(&fill1));
                build.refine(&h1, &reg1, 1, std::slice::from_ref(&fill1));
                build.coarsen(&h1, &reg1, 1, &sync_specs(&fill1));
            }
            prop_assert_eq!((cache.hits(), cache.misses()), (0, 3));

            // Fine-level change: level-0 fill hits, the rest miss.
            let (h2, reg2, fill2) = setup(&fine, rank, nranks);
            prop_assert_ne!(h1.structure_digest(1), h2.structure_digest(1));
            prop_assert_eq!(h1.structure_digest(0), h2.structure_digest(0));
            {
                let mut build = ScheduleBuild::with_cache(&mut cache);
                build.refine(&h2, &reg2, 0, std::slice::from_ref(&fill2));
                build.refine(&h2, &reg2, 1, std::slice::from_ref(&fill2));
                build.coarsen(&h2, &reg2, 1, &sync_specs(&fill2));
            }
            prop_assert_eq!(
                (cache.hits(), cache.misses()),
                (1, 5),
                "fine change: only the level-0 fill may hit"
            );

            // Coarse-level change: nothing hits (the fine fill's key
            // binds the coarser digest because it interpolates).
            let coarse = structure(coarse_mask ^ 1 | 2, fine_bits, &owner_seed, nranks);
            let (h3, reg3, fill3) = setup(&coarse, rank, nranks);
            prop_assert_ne!(h1.structure_digest(0), h3.structure_digest(0));
            {
                let mut build = ScheduleBuild::with_cache(&mut cache);
                build.refine(&h3, &reg3, 0, std::slice::from_ref(&fill3));
                build.refine(&h3, &reg3, 1, std::slice::from_ref(&fill3));
                build.coarsen(&h3, &reg3, 1, &sync_specs(&fill3));
            }
            prop_assert_eq!(
                (cache.hits(), cache.misses()),
                (1, 8),
                "coarse change: every lookup must miss"
            );
        }
    }
}
