//! Plan-identity property test for the spatial-index schedule builds.
//!
//! The indexed `RefineSchedule`/`CoarsenSchedule` constructors must
//! produce byte-identical plans to the retained brute-force oracle
//! (`new_bruteforce`) on arbitrary two-level hierarchies viewed from
//! every rank of a 1–4 rank job: same copies, sends, recvs, interps,
//! physical fills and sync jobs, in the same canonical order.

use proptest::prelude::*;
use rbamr_amr::ops::{ConservativeCellRefine, LinearNodeRefine, VolumeWeightedCoarsen};
use rbamr_amr::schedule::{CoarsenSpec, FillSpec};
use rbamr_amr::{
    CoarsenSchedule, GridGeometry, HostDataFactory, PatchHierarchy, RefineSchedule,
    VariableRegistry,
};
use rbamr_geometry::{BoxList, Centring, GBox, IntVector};
use std::sync::Arc;

fn b(x0: i64, y0: i64, x1: i64, y1: i64) -> GBox {
    GBox::from_coords(x0, y0, x1, y1)
}

/// Boxes for the tiles selected by `mask` on an `n`×`n` grid of
/// `size`×`size` tiles.
fn masked_tiles(mask: u64, n: i64, size: i64) -> Vec<GBox> {
    let mut out = Vec::new();
    for t in 0..(n * n) {
        if mask >> t & 1 == 1 {
            let lo = IntVector::new(t % n * size, t / n * size);
            out.push(GBox::new(lo, lo + IntVector::uniform(size)));
        }
    }
    out
}

/// Default 24 cases; `PROPTEST_CASES` scales up in CI.
fn cases() -> u32 {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(24)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    #[test]
    fn indexed_schedule_matches_bruteforce(
        nranks in 1usize..5,
        coarse_mask in 1u32..65536,
        fine_mask in (any::<u32>(), any::<u32>()),
        owner_seed in proptest::collection::vec(0usize..4, 80),
    ) {
        // Level 0: selected 8x8 tiles of a 4x4 grid over [0,32)^2.
        // Level 1: selected 8x8 fine tiles of an 8x8 grid over [0,64)^2
        // (ratio 2); forced non-empty so the coarse-fine and coarsen
        // paths are always exercised.
        let coarse_boxes = masked_tiles(coarse_mask as u64, 4, 8);
        let fine_bits = (fine_mask.0 as u64) << 32 | fine_mask.1 as u64;
        let fine_boxes = masked_tiles(if fine_bits == 0 { 1 << 27 } else { fine_bits }, 8, 8);
        let coarse_owners: Vec<usize> =
            (0..coarse_boxes.len()).map(|i| owner_seed[i] % nranks).collect();
        let fine_owners: Vec<usize> =
            (0..fine_boxes.len()).map(|i| owner_seed[16 + i] % nranks).collect();

        // Every rank builds its own view of the same hierarchy, exactly
        // as the distributed runtime does (replicated metadata).
        for rank in 0..nranks {
            let mut reg = VariableRegistry::new(Arc::new(HostDataFactory::new()));
            let qc = reg.register("qc", Centring::Cell, IntVector::uniform(2));
            let qn = reg.register("qn", Centring::Node, IntVector::ONE);
            let mut h = PatchHierarchy::new(
                GridGeometry::unit(1.0),
                BoxList::from_box(b(0, 0, 32, 32)),
                IntVector::uniform(2),
                2,
                rank,
                nranks,
            );
            h.set_level(0, coarse_boxes.clone(), coarse_owners.clone(), &reg);
            h.set_level(1, fine_boxes.clone(), fine_owners.clone(), &reg);

            let fills = [
                FillSpec { var: qc, refine_op: Some(Arc::new(ConservativeCellRefine)) },
                FillSpec { var: qn, refine_op: Some(Arc::new(LinearNodeRefine)) },
            ];
            for level_no in 0..2 {
                let fast = RefineSchedule::new(&h, &reg, level_no, &fills);
                let slow = RefineSchedule::new_bruteforce(&h, &reg, level_no, &fills);
                prop_assert_eq!(
                    fast.plan_digest(),
                    slow.plan_digest(),
                    "refine plans diverge: level {} rank {}/{}",
                    level_no,
                    rank,
                    nranks
                );
            }

            let syncs = [CoarsenSpec { var: qc, op: Arc::new(VolumeWeightedCoarsen), aux: vec![] }];
            let fast = CoarsenSchedule::new(&h, &reg, 1, &syncs);
            let slow = CoarsenSchedule::new_bruteforce(&h, &reg, 1, &syncs);
            prop_assert_eq!(
                fast.plan_digest(),
                slow.plan_digest(),
                "coarsen plans diverge: rank {}/{}",
                rank,
                nranks
            );
        }
    }
}
