//! Partitioned-metadata equivalence and fault-injection tests.
//!
//! The partitioned planning path (owner-computes over owned + ghosted
//! views) must be plan-digest-identical to the replicated indexed build
//! *and* the brute-force oracle from every rank's perspective, on
//! arbitrary 2–3 level hierarchies at 2–8 ranks, and across both
//! structure-preserving and structure-changing regrids. A corrupted
//! exchange must surface as a typed [`MetadataDivergence`] on every
//! rank — never a hang, never a silently divergent plan.

use proptest::prelude::*;
use rbamr_amr::ops::{ConservativeCellRefine, LinearNodeRefine, VolumeWeightedCoarsen};
use rbamr_amr::partition::{BoxRecord, ExchangeError};
use rbamr_amr::regrid::{CellTagger, TransferSpec};
use rbamr_amr::schedule::{CoarsenSpec, FillSpec};
use rbamr_amr::tagging::TagBitmap;
use rbamr_amr::{
    interest_for_level, view_from_global, BuildStrategy, CoarsenSchedule, GridGeometry,
    HostDataFactory, InterestMargins, MetadataMode, PatchHierarchy, RefineSchedule, RegridParams,
    Regridder, ScheduleBuild, VariableRegistry,
};
use rbamr_geometry::{BoxList, Centring, GBox, IntVector};
use rbamr_netsim::Cluster;
use rbamr_perfmodel::{Category, Machine};
use std::sync::Arc;

fn b(x0: i64, y0: i64, x1: i64, y1: i64) -> GBox {
    GBox::from_coords(x0, y0, x1, y1)
}

/// Boxes for the tiles selected by `mask` on an `n`×`n` grid of
/// `size`×`size` tiles.
fn masked_tiles(mask: u64, n: i64, size: i64) -> Vec<GBox> {
    let mut out = Vec::new();
    for t in 0..(n * n) {
        if mask >> t & 1 == 1 {
            let lo = IntVector::new(t % n * size, t / n * size);
            out.push(GBox::new(lo, lo + IntVector::uniform(size)));
        }
    }
    out
}

fn registry() -> (VariableRegistry, rbamr_amr::VariableId, rbamr_amr::VariableId) {
    let mut reg = VariableRegistry::new(Arc::new(HostDataFactory::new()));
    let qc = reg.register("qc", Centring::Cell, IntVector::uniform(2));
    let qn = reg.register("qn", Centring::Node, IntVector::ONE);
    (reg, qc, qn)
}

fn replicated_hierarchy(
    levels: &[(Vec<GBox>, Vec<usize>)],
    rank: usize,
    nranks: usize,
    reg: &VariableRegistry,
) -> PatchHierarchy {
    let mut h = PatchHierarchy::new(
        GridGeometry::unit(1.0),
        BoxList::from_box(b(0, 0, 32, 32)),
        IntVector::uniform(2),
        3,
        rank,
        nranks,
    );
    for (l, (boxes, owners)) in levels.iter().enumerate() {
        h.set_level(l, boxes.clone(), owners.clone(), reg);
    }
    h
}

/// Convert every level of `h` to a partitioned view carved with the
/// production interest rules — the full structure is available here
/// (the test is the oracle), so no exchange is needed.
fn partition_in_place(h: &mut PatchHierarchy, levels: &[(Vec<GBox>, Vec<usize>)], rank: usize) {
    let margins = InterestMargins::default();
    let owned_of = |l: usize| -> Vec<GBox> {
        levels[l]
            .0
            .iter()
            .zip(&levels[l].1)
            .filter(|&(_, &o)| o == rank)
            .map(|(&bx, _)| bx)
            .collect()
    };
    for l in 0..levels.len() {
        let owned = owned_of(l);
        let coarser: Option<(Vec<GBox>, IntVector)> =
            (l > 0).then(|| (owned_of(l - 1), h.ratio_to_coarser(l)));
        let finer: Option<(Vec<GBox>, IntVector)> =
            (l + 1 < levels.len()).then(|| (owned_of(l + 1), h.ratio_to_coarser(l + 1)));
        let spec = interest_for_level(
            &owned,
            coarser.as_ref().map(|(bx, r)| (bx.as_slice(), *r)),
            finer.as_ref().map(|(bx, r)| (bx.as_slice(), *r)),
            margins,
        );
        let view = view_from_global(
            l,
            h.level(l).ratio(),
            &h.level_domain(l),
            &levels[l].0,
            &levels[l].1,
            rank,
            &spec,
        );
        h.level_mut(l).adopt_view(view, rank);
    }
}

/// Default 24 cases; `PROPTEST_CASES` scales up in CI.
fn cases() -> u32 {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(24)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// Every rank's partitioned plans digest-match the replicated
    /// indexed build and the brute-force oracle on random 2–3 level
    /// hierarchies at 2–8 ranks.
    #[test]
    fn partitioned_plans_match_replicated_and_oracle(
        nranks in 2usize..9,
        coarse_mask in 1u32..65536,
        fine_mask in (any::<u32>(), any::<u32>()),
        finest_mask in any::<u32>(),
        three_levels in any::<bool>(),
        owner_seed in proptest::collection::vec(0usize..8, 120),
    ) {
        // Level 0: 8x8 tiles of a 4x4 grid over [0,32)^2. Level 1: 8x8
        // tiles of an 8x8 grid over [0,64)^2, forced non-empty. Level 2
        // (sometimes): 16x16 tiles of a 8x8 grid over [0,128)^2.
        let coarse_boxes = masked_tiles(coarse_mask as u64, 4, 8);
        let fine_bits = (fine_mask.0 as u64) << 32 | fine_mask.1 as u64;
        let fine_boxes = masked_tiles(if fine_bits == 0 { 1 << 27 } else { fine_bits }, 8, 8);
        let finest_boxes = masked_tiles(
            if finest_mask == 0 { 1 << 9 } else { finest_mask as u64 }, 8, 16);
        let mut levels = vec![(coarse_boxes, Vec::new()), (fine_boxes, Vec::new())];
        if three_levels {
            levels.push((finest_boxes, Vec::new()));
        }
        let mut seed = owner_seed.iter().cycle();
        for (boxes, owners) in &mut levels {
            *owners = boxes.iter().map(|_| seed.next().unwrap() % nranks).collect();
        }

        for rank in 0..nranks {
            let (reg, qc, qn) = registry();
            let h_rep = replicated_hierarchy(&levels, rank, nranks, &reg);
            let mut h_part = replicated_hierarchy(&levels, rank, nranks, &reg);
            partition_in_place(&mut h_part, &levels, rank);

            let fills = [
                FillSpec { var: qc, refine_op: Some(Arc::new(ConservativeCellRefine)) },
                FillSpec { var: qn, refine_op: Some(Arc::new(LinearNodeRefine)) },
            ];
            let mut part_build = ScheduleBuild::new(BuildStrategy::Partitioned);
            for level_no in 0..levels.len() {
                let indexed = RefineSchedule::new(&h_rep, &reg, level_no, &fills);
                let oracle = RefineSchedule::new_bruteforce(&h_rep, &reg, level_no, &fills);
                let part = part_build.refine(&h_part, &reg, level_no, &fills);
                prop_assert_eq!(
                    part.plan_digest(),
                    indexed.plan_digest(),
                    "partitioned refine plan diverges from indexed: level {} rank {}/{}",
                    level_no, rank, nranks
                );
                prop_assert_eq!(
                    part.plan_digest(),
                    oracle.plan_digest(),
                    "partitioned refine plan diverges from oracle: level {} rank {}/{}",
                    level_no, rank, nranks
                );
            }

            let syncs = [CoarsenSpec { var: qc, op: Arc::new(VolumeWeightedCoarsen), aux: vec![] }];
            for fine_no in 1..levels.len() {
                let indexed = CoarsenSchedule::new(&h_rep, &reg, fine_no, &syncs);
                let oracle = CoarsenSchedule::new_bruteforce(&h_rep, &reg, fine_no, &syncs);
                let part = part_build.coarsen(&h_part, &reg, fine_no, &syncs);
                prop_assert_eq!(
                    part.plan_digest(),
                    indexed.plan_digest(),
                    "partitioned coarsen plan diverges from indexed: level {} rank {}/{}",
                    fine_no, rank, nranks
                );
                prop_assert_eq!(
                    part.plan_digest(),
                    oracle.plan_digest(),
                    "partitioned coarsen plan diverges from oracle: level {} rank {}/{}",
                    fine_no, rank, nranks
                );
            }
        }
    }
}

/// Tags a fixed box of level-0 cells.
struct BoxTagger {
    region: GBox,
}

impl CellTagger for BoxTagger {
    fn tag_cells(&self, h: &PatchHierarchy, level: usize, _time: f64) -> Vec<TagBitmap> {
        h.level(level)
            .local()
            .iter()
            .map(|p| {
                let cells: Vec<i32> = p
                    .cell_box()
                    .iter()
                    .map(|q| i32::from(level == 0 && self.region.contains(q)))
                    .collect();
                TagBitmap::compress(p.cell_box(), &cells)
            })
            .collect()
    }
}

/// Structure-changing then structure-preserving regrids keep the
/// partitioned hierarchy digest- and plan-identical to the replicated
/// twin, per rank, with live communication.
#[test]
fn regrids_keep_partitioned_twin_identical() {
    for nranks in [2usize, 4, 8] {
        let cluster = Cluster::new(Machine::ipa_cpu_node());
        let results = cluster.run(nranks, |comm| {
            let rank = comm.rank();
            let nranks = comm.size();
            let (reg, qc, _qn) = registry();
            let levels =
                vec![(masked_tiles(0xffff, 4, 8), (0..16).map(|i| i % nranks).collect::<Vec<_>>())];
            let mut h_rep = replicated_hierarchy(&levels, rank, nranks, &reg);
            let mut h_part = replicated_hierarchy(&levels, rank, nranks, &reg);
            partition_in_place(&mut h_part, &levels, rank);

            // Seed identical data so the solution transfer is comparable.
            for h in [&mut h_rep, &mut h_part] {
                for p in h.level_mut(0).local_mut() {
                    let cb = p.data(qc).ghost_cell_box();
                    let d = p.host_mut::<f64>(qc);
                    for q in cb.iter() {
                        *d.at_mut(q) = (q.x * 1000 + q.y) as f64;
                    }
                }
            }

            let specs = [TransferSpec { var: qc, refine_op: Arc::new(ConservativeCellRefine) }];
            let rep = Regridder::new(RegridParams::default());
            let part = Regridder::new(RegridParams {
                metadata_mode: MetadataMode::Partitioned,
                ..RegridParams::default()
            });
            let fills = [FillSpec { var: qc, refine_op: Some(Arc::new(ConservativeCellRefine)) }];

            // (num_levels, levels_changed, tags_flagged, structure
            // digests, plan digests) per regrid pass.
            type PassLog = (usize, Vec<bool>, u64, Vec<u64>, Vec<Vec<String>>);
            let mut log: Vec<PassLog> = Vec::new();
            // Pass 1 grows a level over one region (structure-changing);
            // pass 2 repeats it (structure-preserving); pass 3 moves it
            // (structure-changing again).
            for region in [b(8, 8, 16, 16), b(8, 8, 16, 16), b(14, 14, 24, 24)] {
                let tagger = BoxTagger { region };
                let o_rep = rep.regrid(&mut h_rep, &reg, &tagger, &specs, Some(&comm), 0.0);
                let o_part = part.regrid(&mut h_part, &reg, &tagger, &specs, Some(&comm), 0.0);
                assert_eq!(o_rep.num_levels, o_part.num_levels, "outcome num_levels");
                assert_eq!(o_rep.levels_changed, o_part.levels_changed, "outcome levels_changed");
                assert_eq!(o_rep.tags_flagged, o_part.tags_flagged, "outcome tags_flagged");
                let digests: Vec<u64> =
                    (0..h_rep.num_levels()).map(|l| h_rep.structure_digest(l)).collect();
                let part_digests: Vec<u64> =
                    (0..h_part.num_levels()).map(|l| h_part.structure_digest(l)).collect();
                assert_eq!(digests, part_digests, "structure digests");
                // Schedules planned over the partitioned views match the
                // replicated build after each regrid.
                let plans: Vec<Vec<String>> = (0..h_rep.num_levels())
                    .map(|l| RefineSchedule::new(&h_rep, &reg, l, &fills).plan_digest())
                    .collect();
                let part_plans: Vec<Vec<String>> = (0..h_part.num_levels())
                    .map(|l| {
                        ScheduleBuild::new(BuildStrategy::Partitioned)
                            .refine(&h_part, &reg, l, &fills)
                            .plan_digest()
                    })
                    .collect();
                assert_eq!(plans, part_plans, "post-regrid plan digests");
                // Transferred data is bitwise identical patch by patch.
                for l in 0..h_rep.num_levels() {
                    for p in h_rep.level(l).local() {
                        let q = h_part
                            .level(l)
                            .local_by_index(p.id().index)
                            .expect("partitioned twin misses a local patch");
                        let (dp, dq) = (p.host::<f64>(qc), q.host::<f64>(qc));
                        for cell in p.cell_box().iter() {
                            assert!(
                                dp.at(cell).to_bits() == dq.at(cell).to_bits(),
                                "data diverges at {cell:?} level {l}"
                            );
                        }
                    }
                }
                log.push((
                    o_rep.num_levels,
                    o_rep.levels_changed,
                    o_rep.tags_flagged,
                    digests,
                    plans,
                ));
            }
            assert!(log[0].1.iter().any(|&c| c), "first regrid must change structure");
            assert!(!log[1].1.iter().any(|&c| c), "second regrid must preserve structure");
            assert!(log[2].1.iter().any(|&c| c), "third regrid must change structure");
            log
        });
        // The per-rank logs agree on the rank-invariant facts.
        for r in &results {
            assert_eq!(r.value.len(), 3);
            for (a, b) in r.value.iter().zip(&results[0].value) {
                assert_eq!(a.0, b.0);
                assert_eq!(&a.1, &b.1);
                assert_eq!(a.2, b.2);
                assert_eq!(&a.3, &b.3, "ranks disagree on structure digests");
            }
        }
    }
}

/// One rank's injected metadata corruption surfaces as a typed
/// divergence error on *every* rank — no hang, no silently divergent
/// view — and the same seed reproduces the same fault sites.
#[test]
fn corrupted_exchange_fails_on_every_rank() {
    use rbamr_netsim::{FaultKind, FaultPlan, FaultRule};
    let nranks = 4;
    let plan = FaultPlan {
        seed: 0xC0FFEE,
        rules: vec![FaultRule::once_on(FaultKind::MetadataCorrupt, 2, 0)],
    };
    let run_once = || {
        let cluster = Cluster::new(Machine::ipa_cpu_node()).with_fault_plan(plan.clone());
        cluster.run(nranks, |comm| {
            let rank = comm.rank();
            let boxes = masked_tiles(0xffff, 4, 8);
            let owners: Vec<usize> = (0..boxes.len()).map(|i| i % comm.size()).collect();
            let owned: Vec<BoxRecord> = boxes
                .iter()
                .zip(&owners)
                .enumerate()
                .filter(|&(_, (_, &o))| o == rank)
                .map(|(i, (&bx, &o))| (i, bx, o))
                .collect();
            let owned_boxes: Vec<GBox> = owned.iter().map(|&(_, bx, _)| bx).collect();
            let spec = interest_for_level(&owned_boxes, None, None, InterestMargins::default());
            let domain = BoxList::from_box(b(0, 0, 32, 32));
            let out = rbamr_amr::exchange_level_view(
                Some(&comm),
                0,
                IntVector::ONE,
                &domain,
                &owned,
                &spec,
                rank,
            );
            (out, comm.fault_injector().expect("injector attached").report())
        })
    };
    let first = run_once();
    for r in &first {
        let (out, _) = &r.value;
        match out.as_ref().expect_err("corrupted exchange must fail on every rank") {
            ExchangeError::Divergence(err) => {
                assert_eq!(err.level_no, 0);
                if r.rank == 2 {
                    assert_ne!(
                        err.observed_digest, err.expected_digest,
                        "rank 2 saw the corruption"
                    );
                }
            }
            other => panic!("expected divergence, got {other}"),
        }
    }
    // Determinism: the same seed reproduces identical fault reports.
    let second = run_once();
    for (a, c) in first.iter().zip(&second) {
        assert_eq!(a.value.1, c.value.1, "rank {}: fault reports must reproduce", a.rank);
    }
}

/// Empty levels exchange and verify cleanly at several rank counts, and
/// a single-rank tamper still raises the typed error (edge cases of the
/// fault-injection path).
#[test]
fn exchange_edge_cases() {
    for nranks in [1usize, 2, 4] {
        let cluster = Cluster::new(Machine::ipa_cpu_node());
        let results = cluster.run(nranks, |comm| {
            let domain = BoxList::from_box(b(0, 0, 32, 32));
            let spec = interest_for_level(&[], None, None, InterestMargins::default());
            let view = rbamr_amr::exchange_level_view(
                Some(&comm),
                1,
                IntVector::uniform(2),
                &domain,
                &[],
                &spec,
                comm.rank(),
            )
            .expect("empty level must verify cleanly");
            assert!(view.is_empty());
            assert_eq!(view.num_global(), 0);
            // Keep the collective counters visible in telemetry.
            comm.barrier(Category::Other);
            view.metadata_bytes()
        });
        for r in &results {
            assert_eq!(r.value, 0);
        }
    }

    // Single-rank injected corruption: typed error even with no peers
    // to disagree with.
    use rbamr_netsim::{FaultKind, FaultPlan, FaultRule};
    let plan = FaultPlan { seed: 11, rules: vec![FaultRule::once(FaultKind::MetadataCorrupt, 0)] };
    let cluster = Cluster::new(Machine::ipa_cpu_node()).with_fault_plan(plan);
    let results = cluster.run(1, |comm| {
        let boxes = vec![b(0, 0, 16, 16), b(16, 0, 32, 16)];
        let owned: Vec<BoxRecord> = boxes.iter().enumerate().map(|(i, &bx)| (i, bx, 0)).collect();
        let spec = interest_for_level(&boxes, None, None, InterestMargins::default());
        let domain = BoxList::from_box(b(0, 0, 32, 32));
        rbamr_amr::exchange_level_view(Some(&comm), 0, IntVector::ONE, &domain, &owned, &spec, 0)
    });
    match results[0].value.as_ref().expect_err("single-rank corruption must fail") {
        ExchangeError::Divergence(err) => assert_eq!(err.rank, 0),
        other => panic!("expected divergence, got {other}"),
    }
}
