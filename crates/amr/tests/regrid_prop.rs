//! Property tests of the regridding driver: for arbitrary tag patterns,
//! the rebuilt hierarchy covers every tag, nests properly, respects
//! patch-size caps, and transfers a linear field exactly (conservative
//! interpolation reproduces linear data).

use proptest::prelude::*;
use rbamr_amr::nesting::is_properly_nested;
use rbamr_amr::ops::ConservativeCellRefine;
use rbamr_amr::regrid::{CellTagger, TransferSpec};
use rbamr_amr::{
    GridGeometry, HostDataFactory, PatchHierarchy, RegridParams, Regridder, TagBitmap,
    VariableRegistry,
};
use rbamr_geometry::{BoxList, Centring, GBox, IntVector};
use std::sync::Arc;

struct SeedTagger {
    /// Tagged cells on level 0 (level-0 index space).
    seeds: Vec<IntVector>,
}

impl CellTagger for SeedTagger {
    fn tag_cells(&self, h: &PatchHierarchy, level: usize, _t: f64) -> Vec<TagBitmap> {
        h.level(level)
            .local()
            .iter()
            .map(|p| {
                let cells: Vec<i32> = p
                    .cell_box()
                    .iter()
                    .map(|q| {
                        // Tag the same *physical* cells on every level
                        // (refined seeds on finer levels), so multi-level
                        // hierarchies form around them.
                        let ratio = h.cumulative_ratio(level);
                        let hit = self.seeds.iter().any(|s| {
                            s.scale(ratio) == q
                                || GBox::new(s.scale(ratio), (*s + IntVector::ONE).scale(ratio))
                                    .contains(q)
                        });
                        i32::from(hit)
                    })
                    .collect();
                TagBitmap::compress(p.cell_box(), &cells)
            })
            .collect()
    }
}

fn setup() -> (PatchHierarchy, VariableRegistry, rbamr_amr::VariableId) {
    let mut reg = VariableRegistry::new(Arc::new(HostDataFactory::new()));
    let var = reg.register("q", Centring::Cell, IntVector::uniform(2));
    let mut h = PatchHierarchy::new(
        GridGeometry::unit(1.0),
        BoxList::from_box(GBox::from_coords(0, 0, 24, 24)),
        IntVector::uniform(2),
        3,
        0,
        1,
    );
    h.set_level(0, vec![GBox::from_coords(0, 0, 24, 24)], vec![0], &reg);
    (h, reg, var)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn regrid_invariants(
        seeds in prop::collection::vec((2i64..22, 2i64..22), 1..8),
        max_patch in prop::sample::select(vec![16i64, 32, 1 << 20]),
    ) {
        let seeds: Vec<IntVector> = seeds.into_iter().map(|(x, y)| IntVector::new(x, y)).collect();
        let (mut h, reg, var) = setup();
        // Seed a linear field on level 0 (ghosts included).
        {
            let p = h.level_mut(0).local_by_index_mut(0).unwrap();
            let db = p.data(var).data_box();
            let d = p.host_mut::<f64>(var);
            for q in db.iter() {
                *d.at_mut(q) = 3.0 + 0.5 * q.x as f64 - 0.25 * q.y as f64;
            }
        }
        let mut params = RegridParams::default();
        params.cluster.min_size = 2;
        params.max_patch_size = max_patch;
        let regridder = Regridder::new(params);
        let tagger = SeedTagger { seeds: seeds.clone() };
        let outcome = regridder.regrid(
            &mut h,
            &reg,
            &tagger,
            &[TransferSpec { var, refine_op: Arc::new(ConservativeCellRefine) }],
            None,
            0.0,
        );
        prop_assert!(outcome.num_levels >= 2, "tags must create at least one fine level");
        prop_assert_eq!(outcome.levels_changed.len(), outcome.num_levels);
        prop_assert!(!outcome.levels_changed[0], "level 0 is never regridded");

        // 1. Every tagged cell is covered by level 1 (refined).
        let covered = h.level(1).covered();
        for s in &seeds {
            let fine = s.scale(IntVector::uniform(2));
            prop_assert!(covered.contains(fine), "seed {s} not covered");
        }

        // 2. Patch-size cap.
        for l in 1..h.num_levels() {
            for b in h.level(l).global_boxes() {
                prop_assert!(b.size().x <= max_patch && b.size().y <= max_patch);
            }
        }

        // 3. Proper nesting of every adjacent level pair.
        for l in 2..h.num_levels() {
            let ok = is_properly_nested(
                h.level(l).global_boxes(),
                &h.level(l - 1).covered(),
                &h.level_domain(l - 1),
                IntVector::ONE,
                IntVector::uniform(2),
            );
            prop_assert!(ok, "level {l} not nested");
        }

        // 4. Linear fields transfer exactly: the conservative linear
        // interpolant reproduces linear data (fine cell centre value).
        for l in 1..h.num_levels() {
            let ratio = h.cumulative_ratio(l);
            for p in h.level(l).local() {
                let d = p.host::<f64>(var);
                for q in p.cell_box().iter() {
                    // Physical centre in level-0 cell coordinates.
                    let cx = (q.x as f64 + 0.5) / ratio.x as f64 - 0.5;
                    let cy = (q.y as f64 + 0.5) / ratio.y as f64 - 0.5;
                    let expect = 3.0 + 0.5 * cx - 0.25 * cy;
                    prop_assert!(
                        (d.at(q) - expect).abs() < 1e-11,
                        "level {l} cell {q}: {} vs {expect}",
                        d.at(q)
                    );
                }
            }
        }
    }

    /// Repeated regridding with fixed tags converges: each pass can add
    /// at most one level (a regrid only targets `finest + 1`), and once
    /// all levels exist the structure is a fixed point.
    #[test]
    fn regrid_converges_to_a_fixed_point(
        seeds in prop::collection::vec((2i64..22, 2i64..22), 1..6)
    ) {
        let seeds: Vec<IntVector> = seeds.into_iter().map(|(x, y)| IntVector::new(x, y)).collect();
        let (mut h, reg, var) = setup();
        let regridder = Regridder::new(RegridParams::default());
        let tagger = SeedTagger { seeds };
        let specs = [TransferSpec { var, refine_op: Arc::new(ConservativeCellRefine) }];
        // One pass per possible level, as HydroSim::initialize does.
        for _ in 0..h.max_levels() - 1 {
            regridder.regrid(&mut h, &reg, &tagger, &specs, None, 0.0);
        }
        let stable: Vec<Vec<GBox>> = (0..h.num_levels())
            .map(|l| h.level(l).global_boxes().to_vec())
            .collect();
        let digests: Vec<u64> = (0..h.num_levels()).map(|l| h.structure_digest(l)).collect();
        let outcome = regridder.regrid(&mut h, &reg, &tagger, &specs, None, 0.0);
        let after: Vec<Vec<GBox>> = (0..h.num_levels())
            .map(|l| h.level(l).global_boxes().to_vec())
            .collect();
        prop_assert_eq!(stable, after);
        // The fixed point is visible in the outcome and the digests.
        prop_assert!(!outcome.any_changed(), "fixed point must report no change");
        let digests_after: Vec<u64> = (0..h.num_levels()).map(|l| h.structure_digest(l)).collect();
        prop_assert_eq!(digests, digests_after);
    }
}
