//! A minimal restart database — the target of Figure 2's
//! `putToRestart`/`getFromRestart` methods.
//!
//! SAMRAI serialises everything through a hierarchical key-value
//! database. This reproduction keeps the same shape: nested string-keyed
//! databases with typed scalar/array leaves, plus helpers to serialise
//! [`HostData`] (a resident GPU build downloads the array once at
//! checkpoint time — checkpointing is one of the three sanctioned
//! full-array transfers, along with initialisation and visualisation).

use crate::hostdata::HostData;
use crate::patchdata::PatchData;
use rbamr_geometry::{Centring, GBox, IntVector};
use std::collections::BTreeMap;

/// A value in the database.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Double scalar.
    F64(f64),
    /// Integer scalar.
    I64(i64),
    /// String.
    Str(String),
    /// Double array.
    VecF64(Vec<f64>),
    /// Integer array.
    VecI64(Vec<i64>),
    /// Nested database.
    Db(Database),
}

/// A hierarchical key-value store (deterministically ordered).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Database {
    entries: BTreeMap<String, Value>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert or overwrite a value.
    pub fn put(&mut self, key: &str, value: Value) {
        self.entries.insert(key.to_owned(), value);
    }

    /// Look up a value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.get(key)
    }

    /// Typed accessors; `None` if missing or of the wrong type.
    pub fn get_f64(&self, key: &str) -> Option<f64> {
        match self.get(key) {
            Some(Value::F64(v)) => Some(*v),
            _ => None,
        }
    }

    /// Integer accessor.
    pub fn get_i64(&self, key: &str) -> Option<i64> {
        match self.get(key) {
            Some(Value::I64(v)) => Some(*v),
            _ => None,
        }
    }

    /// Double-array accessor.
    pub fn get_vec_f64(&self, key: &str) -> Option<&[f64]> {
        match self.get(key) {
            Some(Value::VecF64(v)) => Some(v),
            _ => None,
        }
    }

    /// Nested-database accessor.
    pub fn get_db(&self, key: &str) -> Option<&Database> {
        match self.get(key) {
            Some(Value::Db(d)) => Some(d),
            _ => None,
        }
    }

    /// Create (or fetch) a nested database and return it mutably.
    pub fn child(&mut self, key: &str) -> &mut Database {
        let entry =
            self.entries.entry(key.to_owned()).or_insert_with(|| Value::Db(Database::new()));
        match entry {
            Value::Db(d) => d,
            _ => panic!("restart key {key:?} exists with a non-database type"),
        }
    }

    /// Number of keys at this nesting level.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Serialise host data into a database (`putToRestart`).
pub fn put_host_data(data: &HostData<f64>, db: &mut Database) {
    let cb = data.cell_box();
    db.put("box", Value::VecI64(vec![cb.lo.x, cb.lo.y, cb.hi.x, cb.hi.y]));
    db.put("ghosts", Value::VecI64(vec![data.ghosts().x, data.ghosts().y]));
    let centring_code = match data.centring() {
        Centring::Cell => 0,
        Centring::Node => 1,
        Centring::Side(a) => 2 + a as i64,
    };
    db.put("centring", Value::I64(centring_code));
    db.put("time", Value::F64(data.time()));
    db.put("values", Value::VecF64(data.as_slice().to_vec()));
}

/// Reconstruct host data from a database (`getFromRestart`).
///
/// # Panics
/// Panics on missing or malformed entries — a corrupt checkpoint.
pub fn get_host_data(db: &Database) -> HostData<f64> {
    let b = db.get("box").and_then(|v| match v {
        Value::VecI64(v) if v.len() == 4 => Some(GBox::from_coords(v[0], v[1], v[2], v[3])),
        _ => None,
    });
    let g = db.get("ghosts").and_then(|v| match v {
        Value::VecI64(v) if v.len() == 2 => Some(IntVector::new(v[0], v[1])),
        _ => None,
    });
    let centring = match db.get_i64("centring") {
        Some(0) => Centring::Cell,
        Some(1) => Centring::Node,
        Some(c @ (2 | 3)) => Centring::Side((c - 2) as usize),
        other => panic!("restart: bad centring {other:?}"),
    };
    let cell_box = b.expect("restart: missing box");
    let ghosts = g.expect("restart: missing ghosts");
    let mut data = HostData::new(cell_box, ghosts, centring);
    let values = db.get_vec_f64("values").expect("restart: missing values");
    assert_eq!(values.len(), data.as_slice().len(), "restart: value count mismatch");
    data.as_mut_slice().copy_from_slice(values);
    data.set_time(db.get_f64("time").unwrap_or(0.0));
    data
}

/// Binary wire/file format for databases: a tiny self-describing
/// tag-length-value encoding (no external format dependency), stable
/// across runs.
impl Database {
    /// Serialise to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        write_db(self, &mut out);
        out
    }

    /// Deserialise from bytes produced by [`Database::to_bytes`].
    ///
    /// # Panics
    /// Panics on malformed input — a corrupt checkpoint file.
    pub fn from_bytes(bytes: &[u8]) -> Database {
        let mut cursor = 0usize;
        let db = read_db(bytes, &mut cursor);
        assert_eq!(cursor, bytes.len(), "restart: trailing bytes in stream");
        db
    }

    /// Write the database to a file.
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }

    /// Read a database from a file written by [`Database::save`].
    ///
    /// # Errors
    /// Propagates I/O errors; panics on corrupt content.
    pub fn load(path: &std::path::Path) -> std::io::Result<Database> {
        Ok(Database::from_bytes(&std::fs::read(path)?))
    }
}

fn write_str(s: &str, out: &mut Vec<u8>) {
    out.extend_from_slice(&(s.len() as u64).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn write_db(db: &Database, out: &mut Vec<u8>) {
    out.extend_from_slice(&(db.entries.len() as u64).to_le_bytes());
    for (k, v) in &db.entries {
        write_str(k, out);
        match v {
            Value::F64(x) => {
                out.push(0);
                out.extend_from_slice(&x.to_le_bytes());
            }
            Value::I64(x) => {
                out.push(1);
                out.extend_from_slice(&x.to_le_bytes());
            }
            Value::Str(s) => {
                out.push(2);
                write_str(s, out);
            }
            Value::VecF64(v) => {
                out.push(3);
                out.extend_from_slice(&(v.len() as u64).to_le_bytes());
                for x in v {
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
            Value::VecI64(v) => {
                out.push(4);
                out.extend_from_slice(&(v.len() as u64).to_le_bytes());
                for x in v {
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
            Value::Db(d) => {
                out.push(5);
                write_db(d, out);
            }
        }
    }
}

fn read_u64(bytes: &[u8], cursor: &mut usize) -> u64 {
    let v =
        u64::from_le_bytes(bytes[*cursor..*cursor + 8].try_into().expect("restart: short stream"));
    *cursor += 8;
    v
}

fn read_str(bytes: &[u8], cursor: &mut usize) -> String {
    let len = read_u64(bytes, cursor) as usize;
    let s = std::str::from_utf8(&bytes[*cursor..*cursor + len]).expect("restart: bad utf8");
    *cursor += len;
    s.to_owned()
}

fn read_db(bytes: &[u8], cursor: &mut usize) -> Database {
    let n = read_u64(bytes, cursor);
    let mut db = Database::new();
    for _ in 0..n {
        let key = read_str(bytes, cursor);
        let tag = bytes[*cursor];
        *cursor += 1;
        let value = match tag {
            0 => {
                let v = f64::from_bits(read_u64(bytes, cursor));
                Value::F64(v)
            }
            1 => Value::I64(read_u64(bytes, cursor) as i64),
            2 => Value::Str(read_str(bytes, cursor)),
            3 => {
                let len = read_u64(bytes, cursor) as usize;
                Value::VecF64((0..len).map(|_| f64::from_bits(read_u64(bytes, cursor))).collect())
            }
            4 => {
                let len = read_u64(bytes, cursor) as usize;
                Value::VecI64((0..len).map(|_| read_u64(bytes, cursor) as i64).collect())
            }
            5 => Value::Db(read_db(bytes, cursor)),
            other => panic!("restart: unknown tag {other}"),
        };
        db.put(&key, value);
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut db = Database::new();
        db.put("dt", Value::F64(0.004));
        db.put("step", Value::I64(42));
        db.put("problem", Value::Str("sod".into()));
        assert_eq!(db.get_f64("dt"), Some(0.004));
        assert_eq!(db.get_i64("step"), Some(42));
        assert_eq!(db.get("problem"), Some(&Value::Str("sod".into())));
        assert_eq!(db.get_f64("step"), None); // wrong type
        assert_eq!(db.get_f64("missing"), None);
    }

    #[test]
    fn nested_databases() {
        let mut db = Database::new();
        db.child("level_0").put("npatches", Value::I64(4));
        db.child("level_0").child("patch_0").put("cells", Value::I64(256));
        assert_eq!(db.get_db("level_0").unwrap().get_i64("npatches"), Some(4));
        assert_eq!(
            db.get_db("level_0").unwrap().get_db("patch_0").unwrap().get_i64("cells"),
            Some(256)
        );
    }

    #[test]
    fn host_data_roundtrip() {
        let mut data = HostData::<f64>::node(GBox::from_coords(2, 2, 6, 6), IntVector::ONE);
        for (k, v) in data.as_mut_slice().iter_mut().enumerate() {
            *v = k as f64 * 0.25;
        }
        data.set_time(1.5);
        let mut db = Database::new();
        put_host_data(&data, &mut db);
        let back = get_host_data(&db);
        assert_eq!(back.cell_box(), data.cell_box());
        assert_eq!(back.centring(), data.centring());
        assert_eq!(back.ghosts(), data.ghosts());
        assert_eq!(back.time(), 1.5);
        assert_eq!(back.as_slice(), data.as_slice());
    }

    #[test]
    fn binary_roundtrip_preserves_everything() {
        let mut db = Database::new();
        db.put("dt", Value::F64(-0.25));
        db.put("neg", Value::I64(-42));
        db.put("name", Value::Str("sod".into()));
        db.put("xs", Value::VecF64(vec![1.5, -2.5, f64::MIN_POSITIVE]));
        db.put("is", Value::VecI64(vec![-1, 0, i64::MAX]));
        db.child("nested").put("deep", Value::F64(7.0));
        db.child("nested").child("deeper").put("x", Value::I64(1));
        let bytes = db.to_bytes();
        let back = Database::from_bytes(&bytes);
        assert_eq!(back, db);
    }

    #[test]
    fn file_roundtrip() {
        let mut db = Database::new();
        db.put("v", Value::VecF64((0..100).map(f64::from).collect()));
        let path = std::env::temp_dir().join(format!("rbamr_restart_{}.bin", std::process::id()));
        db.save(&path).unwrap();
        let back = Database::load(&path).unwrap();
        assert_eq!(back, db);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "trailing bytes")]
    fn corrupt_stream_rejected() {
        let db = Database::new();
        let mut bytes = db.to_bytes();
        bytes.push(0xFF);
        Database::from_bytes(&bytes);
    }

    #[test]
    #[should_panic(expected = "non-database type")]
    fn child_type_conflicts_panic() {
        let mut db = Database::new();
        db.put("x", Value::F64(1.0));
        db.child("x");
    }
}
