//! A minimal restart database — the target of Figure 2's
//! `putToRestart`/`getFromRestart` methods.
//!
//! SAMRAI serialises everything through a hierarchical key-value
//! database. This reproduction keeps the same shape: nested string-keyed
//! databases with typed scalar/array leaves, plus helpers to serialise
//! [`HostData`] (a resident GPU build downloads the array once at
//! checkpoint time — checkpointing is one of the three sanctioned
//! full-array transfers, along with initialisation and visualisation).

use crate::hostdata::HostData;
use crate::patchdata::PatchData;
use rbamr_geometry::{Centring, GBox, IntVector};
use std::collections::BTreeMap;

/// A corrupt, truncated, or inconsistent restart stream.
///
/// Every decode path reports through this type instead of panicking: a
/// damaged checkpoint file must surface as a recoverable error so the
/// resilience driver can fall back to an older checkpoint (or report
/// cleanly) rather than killing the job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RestoreError {
    /// The stream ended before a value was fully read.
    ShortStream {
        /// Byte offset at which more data was expected.
        at: usize,
    },
    /// Bytes remain after the root database was decoded.
    TrailingBytes {
        /// How many bytes were left over.
        extra: usize,
    },
    /// An unknown value-type tag.
    UnknownTag {
        /// The offending tag byte.
        tag: u8,
    },
    /// A key was not valid UTF-8.
    BadUtf8 {
        /// Byte offset of the string.
        at: usize,
    },
    /// A required key is missing from the database.
    MissingKey {
        /// The key.
        key: String,
    },
    /// A key exists but holds the wrong type or shape.
    Malformed {
        /// The key.
        key: String,
        /// What was expected.
        expected: &'static str,
    },
    /// Reading the checkpoint file failed.
    Io {
        /// The I/O error rendered as text (keeps this type `Eq`).
        detail: String,
    },
    /// A communication or data-movement fault interrupted a distributed
    /// restore (the database itself was well-formed).
    Exchange {
        /// The underlying fault, rendered as text.
        detail: String,
    },
    /// The checkpoint container failed validation: bad magic, unsupported
    /// container version, torn payload, or checksum mismatch. A torn or
    /// bit-rotted file must never decode to a silently wrong database.
    Corrupt {
        /// What failed to validate.
        detail: String,
    },
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ShortStream { at } => write!(f, "restore: stream truncated at byte {at}"),
            Self::TrailingBytes { extra } => {
                write!(f, "restore: {extra} trailing bytes after the root database")
            }
            Self::UnknownTag { tag } => write!(f, "restore: unknown value tag {tag}"),
            Self::BadUtf8 { at } => write!(f, "restore: invalid utf-8 key at byte {at}"),
            Self::MissingKey { key } => write!(f, "restore: missing key {key:?}"),
            Self::Malformed { key, expected } => {
                write!(f, "restore: key {key:?} is not a well-formed {expected}")
            }
            Self::Io { detail } => write!(f, "restore: i/o failure: {detail}"),
            Self::Exchange { detail } => write!(f, "restore: exchange fault: {detail}"),
            Self::Corrupt { detail } => write!(f, "restore: corrupt checkpoint: {detail}"),
        }
    }
}

impl std::error::Error for RestoreError {}

impl From<std::io::Error> for RestoreError {
    fn from(e: std::io::Error) -> Self {
        Self::Io { detail: e.to_string() }
    }
}

/// A value in the database.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Double scalar.
    F64(f64),
    /// Integer scalar.
    I64(i64),
    /// String.
    Str(String),
    /// Double array.
    VecF64(Vec<f64>),
    /// Integer array.
    VecI64(Vec<i64>),
    /// Nested database.
    Db(Database),
}

/// A hierarchical key-value store (deterministically ordered).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Database {
    entries: BTreeMap<String, Value>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert or overwrite a value.
    pub fn put(&mut self, key: &str, value: Value) {
        self.entries.insert(key.to_owned(), value);
    }

    /// Look up a value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.get(key)
    }

    /// Typed accessors; `None` if missing or of the wrong type.
    pub fn get_f64(&self, key: &str) -> Option<f64> {
        match self.get(key) {
            Some(Value::F64(v)) => Some(*v),
            _ => None,
        }
    }

    /// Integer accessor.
    pub fn get_i64(&self, key: &str) -> Option<i64> {
        match self.get(key) {
            Some(Value::I64(v)) => Some(*v),
            _ => None,
        }
    }

    /// Double-array accessor.
    pub fn get_vec_f64(&self, key: &str) -> Option<&[f64]> {
        match self.get(key) {
            Some(Value::VecF64(v)) => Some(v),
            _ => None,
        }
    }

    /// Nested-database accessor.
    pub fn get_db(&self, key: &str) -> Option<&Database> {
        match self.get(key) {
            Some(Value::Db(d)) => Some(d),
            _ => None,
        }
    }

    /// Create (or fetch) a nested database and return it mutably.
    pub fn child(&mut self, key: &str) -> &mut Database {
        let entry =
            self.entries.entry(key.to_owned()).or_insert_with(|| Value::Db(Database::new()));
        match entry {
            Value::Db(d) => d,
            _ => panic!("restart key {key:?} exists with a non-database type"),
        }
    }

    /// Number of keys at this nesting level.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Serialise host data into a database (`putToRestart`).
pub fn put_host_data(data: &HostData<f64>, db: &mut Database) {
    let cb = data.cell_box();
    db.put("box", Value::VecI64(vec![cb.lo.x, cb.lo.y, cb.hi.x, cb.hi.y]));
    db.put("ghosts", Value::VecI64(vec![data.ghosts().x, data.ghosts().y]));
    let centring_code = match data.centring() {
        Centring::Cell => 0,
        Centring::Node => 1,
        Centring::Side(a) => 2 + a as i64,
    };
    db.put("centring", Value::I64(centring_code));
    db.put("time", Value::F64(data.time()));
    db.put("values", Value::VecF64(data.as_slice().to_vec()));
}

/// Reconstruct host data from a database (`getFromRestart`).
///
/// # Panics
/// Panics on missing or malformed entries — callers handling possibly
/// corrupt checkpoints use [`try_get_host_data`] instead.
pub fn get_host_data(db: &Database) -> HostData<f64> {
    try_get_host_data(db).unwrap_or_else(|e| panic!("{e}"))
}

/// Fault-tolerant [`get_host_data`]: every missing or malformed entry
/// surfaces as a typed [`RestoreError`].
pub fn try_get_host_data(db: &Database) -> Result<HostData<f64>, RestoreError> {
    let missing = |key: &str| RestoreError::MissingKey { key: key.to_owned() };
    let malformed = |key: &str, expected: &'static str| RestoreError::Malformed {
        key: key.to_owned(),
        expected,
    };
    let cell_box = match db.get("box").ok_or_else(|| missing("box"))? {
        Value::VecI64(v) if v.len() == 4 => GBox::from_coords(v[0], v[1], v[2], v[3]),
        _ => return Err(malformed("box", "4-element integer array")),
    };
    let ghosts = match db.get("ghosts").ok_or_else(|| missing("ghosts"))? {
        Value::VecI64(v) if v.len() == 2 => IntVector::new(v[0], v[1]),
        _ => return Err(malformed("ghosts", "2-element integer array")),
    };
    let centring = match db.get_i64("centring") {
        Some(0) => Centring::Cell,
        Some(1) => Centring::Node,
        Some(c @ (2 | 3)) => Centring::Side((c - 2) as usize),
        Some(_) => return Err(malformed("centring", "centring code 0..=3")),
        None => return Err(missing("centring")),
    };
    if cell_box.is_empty() {
        return Err(malformed("box", "non-empty cell box"));
    }
    if ghosts.x < 0 || ghosts.y < 0 {
        return Err(malformed("ghosts", "non-negative ghost width"));
    }
    let mut data = HostData::new(cell_box, ghosts, centring);
    let values = db.get_vec_f64("values").ok_or_else(|| missing("values"))?;
    if values.len() != data.as_slice().len() {
        return Err(malformed("values", "value array matching the data box"));
    }
    data.as_mut_slice().copy_from_slice(values);
    data.set_time(db.get_f64("time").unwrap_or(0.0));
    Ok(data)
}

/// Binary wire/file format for databases: a tiny self-describing
/// tag-length-value encoding (no external format dependency), stable
/// across runs.
impl Database {
    /// Serialise to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        write_db(self, &mut out);
        out
    }

    /// Deserialise from bytes produced by [`Database::to_bytes`].
    ///
    /// # Errors
    /// A typed [`RestoreError`] on truncated, trailing, or otherwise
    /// malformed input — corrupt checkpoints must be recoverable, not
    /// fatal.
    pub fn from_bytes(bytes: &[u8]) -> Result<Database, RestoreError> {
        let mut cursor = 0usize;
        let db = read_db(bytes, &mut cursor)?;
        if cursor != bytes.len() {
            return Err(RestoreError::TrailingBytes { extra: bytes.len() - cursor });
        }
        Ok(db)
    }

    /// Write the database to a file, atomically and self-validatingly.
    ///
    /// The payload is wrapped in a versioned container header carrying a
    /// checksum, written to a temporary sibling file, fsynced, and then
    /// renamed into place — a crash mid-write leaves either the old file
    /// or no file, never a torn one, and a torn/bit-rotted file that does
    /// appear is caught by [`Database::load`] as a typed
    /// [`RestoreError::Corrupt`].
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        use std::io::Write;
        let payload = self.to_bytes();
        let mut out = Vec::with_capacity(FILE_HEADER_LEN + payload.len());
        out.extend_from_slice(FILE_MAGIC);
        out.extend_from_slice(&FILE_VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&fnv64(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(format!(".tmp.{}", std::process::id()));
        let tmp = std::path::PathBuf::from(tmp);
        let result = (|| {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(&out)?;
            file.sync_all()?;
            drop(file);
            std::fs::rename(&tmp, path)
        })();
        if result.is_err() {
            std::fs::remove_file(&tmp).ok();
        }
        result
    }

    /// Read a database from a file written by [`Database::save`].
    ///
    /// # Errors
    /// [`RestoreError::Io`] when the file cannot be read;
    /// [`RestoreError::Corrupt`] when the container header or checksum
    /// fails validation (torn write, bit rot, wrong file); decode errors
    /// on corrupt content that somehow passes the checksum.
    pub fn load(path: &std::path::Path) -> Result<Database, RestoreError> {
        let bytes = std::fs::read(path)?;
        let corrupt = |detail: &str| RestoreError::Corrupt { detail: detail.to_owned() };
        if bytes.len() < FILE_HEADER_LEN {
            return Err(corrupt("file shorter than the container header"));
        }
        if &bytes[..8] != FILE_MAGIC {
            return Err(corrupt("bad magic (not a checkpoint container)"));
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != FILE_VERSION {
            return Err(RestoreError::Corrupt {
                detail: format!("unsupported container version {version}"),
            });
        }
        let payload_len = u64::from_le_bytes(bytes[12..20].try_into().unwrap()) as usize;
        let stored_sum = u64::from_le_bytes(bytes[20..28].try_into().unwrap());
        let payload = &bytes[FILE_HEADER_LEN..];
        if payload.len() != payload_len {
            return Err(RestoreError::Corrupt {
                detail: format!(
                    "torn payload: header promises {payload_len} bytes, file holds {}",
                    payload.len()
                ),
            });
        }
        if fnv64(payload) != stored_sum {
            return Err(corrupt("payload checksum mismatch"));
        }
        Database::from_bytes(payload)
    }
}

/// Container magic for checkpoint files written by [`Database::save`].
const FILE_MAGIC: &[u8; 8] = b"RBAMRDB\0";
/// Container format version (bumped on any header/layout change).
const FILE_VERSION: u32 = 1;
/// magic (8) + version (4) + payload length (8) + checksum (8).
const FILE_HEADER_LEN: usize = 28;

/// FNV-1a over the payload — cheap, dependency-free, and plenty to catch
/// torn writes and bit rot (this is integrity, not authentication).
fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn write_str(s: &str, out: &mut Vec<u8>) {
    out.extend_from_slice(&(s.len() as u64).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn write_db(db: &Database, out: &mut Vec<u8>) {
    out.extend_from_slice(&(db.entries.len() as u64).to_le_bytes());
    for (k, v) in &db.entries {
        write_str(k, out);
        match v {
            Value::F64(x) => {
                out.push(0);
                out.extend_from_slice(&x.to_le_bytes());
            }
            Value::I64(x) => {
                out.push(1);
                out.extend_from_slice(&x.to_le_bytes());
            }
            Value::Str(s) => {
                out.push(2);
                write_str(s, out);
            }
            Value::VecF64(v) => {
                out.push(3);
                out.extend_from_slice(&(v.len() as u64).to_le_bytes());
                for x in v {
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
            Value::VecI64(v) => {
                out.push(4);
                out.extend_from_slice(&(v.len() as u64).to_le_bytes());
                for x in v {
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
            Value::Db(d) => {
                out.push(5);
                write_db(d, out);
            }
        }
    }
}

fn read_u64(bytes: &[u8], cursor: &mut usize) -> Result<u64, RestoreError> {
    let end = cursor.checked_add(8).filter(|&e| e <= bytes.len());
    let Some(end) = end else {
        return Err(RestoreError::ShortStream { at: *cursor });
    };
    let v = u64::from_le_bytes(bytes[*cursor..end].try_into().unwrap());
    *cursor = end;
    Ok(v)
}

fn read_str(bytes: &[u8], cursor: &mut usize) -> Result<String, RestoreError> {
    let len = read_u64(bytes, cursor)? as usize;
    let end = cursor.checked_add(len).filter(|&e| e <= bytes.len());
    let Some(end) = end else {
        return Err(RestoreError::ShortStream { at: *cursor });
    };
    let s = std::str::from_utf8(&bytes[*cursor..end])
        .map_err(|_| RestoreError::BadUtf8 { at: *cursor })?;
    *cursor = end;
    Ok(s.to_owned())
}

fn read_db(bytes: &[u8], cursor: &mut usize) -> Result<Database, RestoreError> {
    let n = read_u64(bytes, cursor)?;
    let mut db = Database::new();
    for _ in 0..n {
        let key = read_str(bytes, cursor)?;
        let Some(&tag) = bytes.get(*cursor) else {
            return Err(RestoreError::ShortStream { at: *cursor });
        };
        *cursor += 1;
        let value = match tag {
            0 => Value::F64(f64::from_bits(read_u64(bytes, cursor)?)),
            1 => Value::I64(read_u64(bytes, cursor)? as i64),
            2 => Value::Str(read_str(bytes, cursor)?),
            3 => {
                let len = read_u64(bytes, cursor)? as usize;
                // Pre-check against the remaining bytes so a corrupted
                // (huge) length fails cleanly instead of attempting an
                // absurd allocation.
                if bytes.len() - *cursor < len.saturating_mul(8) {
                    return Err(RestoreError::ShortStream { at: *cursor });
                }
                let mut v = Vec::with_capacity(len);
                for _ in 0..len {
                    v.push(f64::from_bits(read_u64(bytes, cursor)?));
                }
                Value::VecF64(v)
            }
            4 => {
                let len = read_u64(bytes, cursor)? as usize;
                if bytes.len() - *cursor < len.saturating_mul(8) {
                    return Err(RestoreError::ShortStream { at: *cursor });
                }
                let mut v = Vec::with_capacity(len);
                for _ in 0..len {
                    v.push(read_u64(bytes, cursor)? as i64);
                }
                Value::VecI64(v)
            }
            5 => Value::Db(read_db(bytes, cursor)?),
            other => return Err(RestoreError::UnknownTag { tag: other }),
        };
        db.put(&key, value);
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut db = Database::new();
        db.put("dt", Value::F64(0.004));
        db.put("step", Value::I64(42));
        db.put("problem", Value::Str("sod".into()));
        assert_eq!(db.get_f64("dt"), Some(0.004));
        assert_eq!(db.get_i64("step"), Some(42));
        assert_eq!(db.get("problem"), Some(&Value::Str("sod".into())));
        assert_eq!(db.get_f64("step"), None); // wrong type
        assert_eq!(db.get_f64("missing"), None);
    }

    #[test]
    fn nested_databases() {
        let mut db = Database::new();
        db.child("level_0").put("npatches", Value::I64(4));
        db.child("level_0").child("patch_0").put("cells", Value::I64(256));
        assert_eq!(db.get_db("level_0").unwrap().get_i64("npatches"), Some(4));
        assert_eq!(
            db.get_db("level_0").unwrap().get_db("patch_0").unwrap().get_i64("cells"),
            Some(256)
        );
    }

    #[test]
    fn host_data_roundtrip() {
        let mut data = HostData::<f64>::node(GBox::from_coords(2, 2, 6, 6), IntVector::ONE);
        for (k, v) in data.as_mut_slice().iter_mut().enumerate() {
            *v = k as f64 * 0.25;
        }
        data.set_time(1.5);
        let mut db = Database::new();
        put_host_data(&data, &mut db);
        let back = get_host_data(&db);
        assert_eq!(back.cell_box(), data.cell_box());
        assert_eq!(back.centring(), data.centring());
        assert_eq!(back.ghosts(), data.ghosts());
        assert_eq!(back.time(), 1.5);
        assert_eq!(back.as_slice(), data.as_slice());
    }

    #[test]
    fn binary_roundtrip_preserves_everything() {
        let mut db = Database::new();
        db.put("dt", Value::F64(-0.25));
        db.put("neg", Value::I64(-42));
        db.put("name", Value::Str("sod".into()));
        db.put("xs", Value::VecF64(vec![1.5, -2.5, f64::MIN_POSITIVE]));
        db.put("is", Value::VecI64(vec![-1, 0, i64::MAX]));
        db.child("nested").put("deep", Value::F64(7.0));
        db.child("nested").child("deeper").put("x", Value::I64(1));
        let bytes = db.to_bytes();
        let back = Database::from_bytes(&bytes).unwrap();
        assert_eq!(back, db);
    }

    #[test]
    fn file_roundtrip() {
        let mut db = Database::new();
        db.put("v", Value::VecF64((0..100).map(f64::from).collect()));
        let path = std::env::temp_dir().join(format!("rbamr_restart_{}.bin", std::process::id()));
        db.save(&path).unwrap();
        let back = Database::load(&path).unwrap();
        assert_eq!(back, db);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_or_corrupted_file_is_a_typed_corrupt_error() {
        let mut db = Database::new();
        db.put("v", Value::VecF64((0..64).map(f64::from).collect()));
        db.put("step", Value::I64(7));
        let dir = std::env::temp_dir();
        let path = dir.join(format!("rbamr_restart_corrupt_{}.bin", std::process::id()));
        db.save(&path).unwrap();
        let good = std::fs::read(&path).unwrap();

        // Torn write: every strict prefix must be rejected as Corrupt.
        for cut in [0, 4, FILE_HEADER_LEN - 1, FILE_HEADER_LEN, good.len() - 1] {
            std::fs::write(&path, &good[..cut]).unwrap();
            let err = Database::load(&path).expect_err("torn file must not load");
            assert!(matches!(err, RestoreError::Corrupt { .. }), "cut {cut}: got {err}");
        }

        // Payload bit rot: checksum must catch it.
        let mut rotted = good.clone();
        *rotted.last_mut().unwrap() ^= 0x40;
        std::fs::write(&path, &rotted).unwrap();
        assert!(matches!(
            Database::load(&path).expect_err("rotted file must not load"),
            RestoreError::Corrupt { .. }
        ));

        // Wrong magic and wrong version are both Corrupt.
        let mut wrong_magic = good.clone();
        wrong_magic[0] ^= 0xFF;
        std::fs::write(&path, &wrong_magic).unwrap();
        assert!(matches!(Database::load(&path).unwrap_err(), RestoreError::Corrupt { .. }));
        let mut wrong_version = good.clone();
        wrong_version[8] = 0xEE;
        std::fs::write(&path, &wrong_version).unwrap();
        assert!(matches!(Database::load(&path).unwrap_err(), RestoreError::Corrupt { .. }));

        // The pristine bytes still load.
        std::fs::write(&path, &good).unwrap();
        assert_eq!(Database::load(&path).unwrap(), db);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_leaves_no_temp_file_behind() {
        let mut db = Database::new();
        db.put("x", Value::I64(1));
        let dir = std::env::temp_dir();
        let path = dir.join(format!("rbamr_restart_atomic_{}.bin", std::process::id()));
        db.save(&path).unwrap();
        let tmp = dir.join(format!(
            "rbamr_restart_atomic_{pid}.bin.tmp.{pid}",
            pid = std::process::id()
        ));
        assert!(!tmp.exists(), "temporary file must be renamed away");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trailing_bytes_are_a_typed_error() {
        let db = Database::new();
        let mut bytes = db.to_bytes();
        bytes.push(0xFF);
        assert_eq!(Database::from_bytes(&bytes), Err(RestoreError::TrailingBytes { extra: 1 }));
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let mut db = Database::new();
        db.put("dt", Value::F64(0.25));
        db.put("name", Value::Str("sod".into()));
        db.put("xs", Value::VecF64(vec![1.0, 2.0]));
        db.put("is", Value::VecI64(vec![3, 4]));
        db.child("nested").put("x", Value::I64(7));
        let bytes = db.to_bytes();
        for cut in 0..bytes.len() {
            let err =
                Database::from_bytes(&bytes[..cut]).expect_err("truncated stream must not decode");
            assert!(
                matches!(err, RestoreError::ShortStream { .. }),
                "cut at {cut}: expected ShortStream, got {err}"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_rejected_or_decodes_cleanly() {
        let mut db = Database::new();
        db.put("dt", Value::F64(0.25));
        db.put("name", Value::Str("sod".into()));
        db.put("xs", Value::VecF64(vec![1.0, 2.0]));
        db.child("nested").put("x", Value::I64(7));
        let bytes = db.to_bytes();
        for pos in 0..bytes.len() {
            for bit in 0..8 {
                let mut flipped = bytes.clone();
                flipped[pos] ^= 1 << bit;
                // A flip may corrupt a value without breaking framing
                // (then it decodes, possibly to different content) or
                // break framing (then it must be a typed error, never a
                // panic). Either way the call below must return.
                let _ = Database::from_bytes(&flipped);
            }
        }
    }

    #[test]
    fn unknown_tag_is_a_typed_error() {
        let mut db = Database::new();
        db.put("k", Value::I64(1));
        let mut bytes = db.to_bytes();
        // Layout: count u64, key len u64, key "k", tag byte.
        let tag_at = 8 + 8 + 1;
        bytes[tag_at] = 9;
        assert_eq!(Database::from_bytes(&bytes), Err(RestoreError::UnknownTag { tag: 9 }));
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = Database::load(std::path::Path::new("/nonexistent/rbamr_restart_missing.bin"))
            .expect_err("missing file must not load");
        assert!(matches!(err, RestoreError::Io { .. }));
    }

    #[test]
    #[should_panic(expected = "non-database type")]
    fn child_type_conflicts_panic() {
        let mut db = Database::new();
        db.put("x", Value::F64(1.0));
        db.child("x");
    }
}
